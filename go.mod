module queuemachine

go 1.24
