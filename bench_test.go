package queuemachine

// The benchmark harness: one benchmark per table and figure of the thesis's
// evaluation. The Chapter 3 benchmarks exercise the enumeration and
// pipelined-ALU studies; the Chapter 6 benchmarks compile the OCCAM
// workloads once and simulate the full multiprocessor at every machine
// size, reporting the simulated cycle count (and the throughput ratio
// against one processing element) as benchmark metrics. Every benchmarked
// simulation also verifies its computed result against the bit-exact Go
// reference.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"queuemachine/internal/amdahl"
	"queuemachine/internal/bintree"
	"queuemachine/internal/compile"
	"queuemachine/internal/dfg"
	"queuemachine/internal/experiments"
	"queuemachine/internal/exprgen"
	"queuemachine/internal/isa"
	"queuemachine/internal/mcache"
	"queuemachine/internal/pipesim"
	"queuemachine/internal/queue"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// BenchmarkTable31 regenerates the queue-vs-stack instruction sequence
// traces for f := a*b + (c-d)/e.
func BenchmarkTable31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table31(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig31 regenerates the parse tree, level order and conjugate tree.
func BenchmarkFig31(b *testing.B) {
	tree := bintree.MustParseExpr("a*b + (c-d)/e")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bintree.LevelOrder(tree); len(got) != 9 {
			b.Fatal("wrong traversal")
		}
	}
}

// BenchmarkTable32 sweeps every parse tree up to 11 nodes on the two-stage
// pipelined ALU under both fetch/execute cases.
func BenchmarkTable32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table32Rows()
		if len(rows) != 22 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkTable33 sweeps pipeline depths one to six on the 11-node trees.
func BenchmarkTable33(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for s := 1; s <= 6; s++ {
			pipesim.Sweep(11, s, pipesim.Case1, exprgen.ForEach)
			pipesim.Sweep(11, s, pipesim.Case2, exprgen.ForEach)
		}
	}
}

// BenchmarkTable34 regenerates the indexed-queue sequence for the shared
// subexpression example and evaluates it on the abstract machine.
func BenchmarkTable34(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table34(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable43 builds the Table 4.3 intermediate form table.
func BenchmarkTable43(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table43(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable44 runs the P*/I*/C analysis of the Figure 4.14 graph.
func BenchmarkTable44(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table44(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable45 computes the π_I input weights.
func BenchmarkTable45(b *testing.B) {
	g := dfg.New()
	a := g.Input("a")
	bb := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	plus := g.AddOp("+", a, bb)
	neg := g.AddOp("-", c)
	mul := g.AddOp("*", plus, neg)
	div := g.AddOp("/", mul, d)
	g.AddOp("e", div)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an := g.Analyze()
		if got := an.InputWeight(a); got != 27 {
			b.Fatalf("W(a) = %d", got)
		}
	}
}

// BenchmarkTable53 drives the message-cache state machine through send,
// receive and fetch-and-φ transitions under eviction pressure.
func BenchmarkTable53(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := mcache.New(4)
		for ch := int32(1); ch <= 64; ch++ {
			if _, _, err := c.Send(ch, ch, mcache.ContextRef{Ctx: 1}); err != nil {
				b.Fatal(err)
			}
		}
		for ch := int32(1); ch <= 64; ch++ {
			done, _, err := c.Recv(ch, mcache.ContextRef{Ctx: 2})
			if err != nil || done == nil || done.Value != ch {
				b.Fatalf("ch %d: %v %v", ch, done, err)
			}
		}
	}
}

// BenchmarkFig66 tabulates Amdahl's law (f = 0.93).
func BenchmarkFig66(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range experiments.PECounts {
			if amdahl.Speedup(0.93, n) <= 0 {
				b.Fatal("bad speedup")
			}
		}
	}
}

// BenchmarkFig67 tabulates the modified law (f = 0.63, g = 0.3).
func BenchmarkFig67(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range experiments.PECounts {
			if amdahl.ModifiedSpeedup(0.63, 0.3, n) <= 0 {
				b.Fatal("bad speedup")
			}
		}
	}
}

// benchParams is the simulation configuration every gated benchmark runs
// under. QSIM_HOSTPAR overrides the host engine (worker count, clamped to
// the machine's partition count) without touching the benchmark table: the
// CI cycle gate re-runs the whole suite under the parallel engine at
// several worker counts against the same exact baselines, which is the
// end-to-end bit-exactness check.
func benchParams(pes int) sim.Params {
	params := sim.DefaultParams()
	if v := os.Getenv("QSIM_HOSTPAR"); v != "" {
		w, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("QSIM_HOSTPAR=%q: %v", v, err))
		}
		if parts := params.PartitionCount(pes); w > parts {
			w = parts
		}
		params.HostParallel = w
	}
	return params
}

// benchWorkload compiles a workload once and benchmarks the multiprocessor
// simulation at each machine size, verifying the result every iteration and
// reporting simulated cycles and the throughput ratio.
func benchWorkload(b *testing.B, wl workloads.Workload, peCounts []int) {
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	baseline := map[int]int64{}
	for _, pes := range peCounts {
		pes := pes
		b.Run(fmt.Sprintf("pes-%d", pes), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(art.Object, pes, benchParams(pes))
				if err != nil {
					b.Fatal(err)
				}
				if err := wl.Check(art, res.Data); err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
			if pes == peCounts[0] {
				baseline[0] = cycles
			} else if baseline[0] != 0 {
				b.ReportMetric(float64(baseline[0])/float64(cycles), "speedup")
			}
		})
	}
}

// BenchmarkFig68Matmul is the Figure 6.8 / Table 6.2 experiment: 8×8 matrix
// multiplication across one to eight processing elements.
func BenchmarkFig68Matmul(b *testing.B) {
	benchWorkload(b, workloads.MatMul(8), experiments.PECounts)
}

// BenchmarkFig610FFT is the Figure 6.10 / Table 6.3 experiment: the
// 64-point fixed-point FFT.
func BenchmarkFig610FFT(b *testing.B) {
	benchWorkload(b, workloads.FFT(6), experiments.PECounts)
}

// BenchmarkFig611Cholesky is the Figure 6.11 / Table 6.4 experiment: 8×8
// integer Cholesky decomposition.
func BenchmarkFig611Cholesky(b *testing.B) {
	benchWorkload(b, workloads.Cholesky(8), experiments.PECounts)
}

// BenchmarkFig612Congruence is the Figure 6.12 / Table 6.5 experiment: the
// 8×8 congruence transformation B = PᵀAP.
func BenchmarkFig612Congruence(b *testing.B) {
	benchWorkload(b, workloads.Congruence(8), experiments.PECounts)
}

// BenchmarkFig69 compares the binary-recursive and iterative summation
// procedures.
func BenchmarkFig69(b *testing.B) {
	for _, wl := range []workloads.Workload{
		workloads.BinaryRecursiveSum(32),
		workloads.IterativeSum(32),
	} {
		wl := wl
		art, err := compile.Compile(wl.Source, compile.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(wl.Name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(art.Object, 4, benchParams(4))
				if err != nil {
					b.Fatal(err)
				}
				if err := wl.Check(art, res.Data); err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// benchHost compiles a workload once and benchmarks the host-side cost of
// simulating it: wall-clock time per run, allocations per run, and the
// simulated-instruction throughput of the simulator itself as a
// "simInstrs/s" metric. Where benchWorkload reports what the simulated
// machine did, benchHost reports how fast the host executed the simulation.
func benchHost(b *testing.B, wl workloads.Workload, peCounts []int) {
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, pes := range peCounts {
		pes := pes
		b.Run(fmt.Sprintf("pes-%d", pes), func(b *testing.B) {
			b.ReportAllocs()
			var instrs int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(art.Object, pes, benchParams(pes))
				if err != nil {
					b.Fatal(err)
				}
				if err := wl.Check(art, res.Data); err != nil {
					b.Fatal(err)
				}
				instrs += res.Instructions
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(instrs)/secs, "simInstrs/s")
			}
		})
	}
}

// BenchmarkHostMatmul measures host throughput on the Figure 6.8 matrix
// multiplication across the full machine-size sweep.
func BenchmarkHostMatmul(b *testing.B) {
	benchHost(b, workloads.MatMul(8), experiments.PECounts)
}

// BenchmarkHostFFT measures host throughput on the Figure 6.10 FFT at
// eight processing elements.
func BenchmarkHostFFT(b *testing.B) {
	benchHost(b, workloads.FFT(6), []int{8})
}

// BenchmarkHostCholesky measures host throughput on the Figure 6.11
// Cholesky decomposition at eight processing elements.
func BenchmarkHostCholesky(b *testing.B) {
	benchHost(b, workloads.Cholesky(8), []int{8})
}

// BenchmarkHostCongruence measures host throughput on the Figure 6.12
// congruence transformation at eight processing elements.
func BenchmarkHostCongruence(b *testing.B) {
	benchHost(b, workloads.Congruence(8), []int{8})
}

// hostParCounts is the worker sweep for the BenchmarkHostPar family:
// sequential engine first as the within-benchmark baseline, then doubling
// worker counts up to the ISSUE's eight-worker target.
var hostParCounts = []int{0, 1, 2, 4, 8}

// benchHostPar benchmarks the host-parallel engine against the sequential
// one on a fixed machine size: same workload, same simulated statistics
// (verified every iteration), only the host engine varies. Reported
// simInstrs/s across the worker sweep is the engine's scaling curve on
// this host; on a single-core host the curve is flat and the interesting
// number is the lookahead overhead of workers-1 versus workers-0.
func benchHostPar(b *testing.B, wl workloads.Workload, pes int, workerCounts []int) {
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	params := sim.DefaultParams()
	var seqCycles int64
	for _, w := range workerCounts {
		w := w
		if parts := params.PartitionCount(pes); w > parts {
			continue
		}
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			p := params
			p.HostParallel = w
			var instrs int64
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(art.Object, pes, p)
				if err != nil {
					b.Fatal(err)
				}
				if err := wl.Check(art, res.Data); err != nil {
					b.Fatal(err)
				}
				instrs += res.Instructions
				cycles = res.Cycles
			}
			if w == 0 {
				seqCycles = cycles
			} else if cycles != seqCycles && seqCycles != 0 {
				b.Fatalf("parallel engine at %d workers simulated %d cycles, sequential %d",
					w, cycles, seqCycles)
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(instrs)/secs, "simInstrs/s")
			}
		})
	}
}

// BenchmarkHostParMatmul sweeps the host engine on the Figure 6.8 matrix
// multiplication at 64 processing elements (32 ring partitions).
func BenchmarkHostParMatmul(b *testing.B) {
	benchHostPar(b, workloads.MatMul(8), 64, hostParCounts)
}

// BenchmarkHostParFFT sweeps the host engine on the Figure 6.10 FFT at 64
// processing elements.
func BenchmarkHostParFFT(b *testing.B) {
	benchHostPar(b, workloads.FFT(6), 64, hostParCounts)
}

// BenchmarkHostParCholesky sweeps the host engine on the Figure 6.11
// Cholesky decomposition at 64 processing elements.
func BenchmarkHostParCholesky(b *testing.B) {
	benchHostPar(b, workloads.Cholesky(8), 64, hostParCounts)
}

// BenchmarkHostParCongruence sweeps the host engine on the Figure 6.12
// congruence transformation at 64 processing elements.
func BenchmarkHostParCongruence(b *testing.B) {
	benchHostPar(b, workloads.Congruence(8), 64, hostParCounts)
}

// BenchmarkTable66 measures each compiler optimization's effect on the
// matrix multiplication benchmark at four processing elements.
func BenchmarkTable66(b *testing.B) {
	wl := workloads.MatMul(6)
	for _, cse := range experiments.OptimizationCases() {
		cse := cse
		art, err := compile.Compile(wl.Source, cse.Opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(cse.Name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(art.Object, 4, benchParams(4))
				if err != nil {
					b.Fatal(err)
				}
				if err := wl.Check(art, res.Data); err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// gen2PECounts is the machine-size sweep for the second-generation suite;
// the qbench gate holds an exact cycle baseline for every point.
var gen2PECounts = []int{1, 2, 4, 8}

// BenchmarkGen2Bitonic sorts 16 keys through the full bitonic network, one
// replicated par of compare-exchange contexts per stage.
func BenchmarkGen2Bitonic(b *testing.B) {
	benchWorkload(b, workloads.Bitonic(4), gen2PECounts)
}

// BenchmarkGen2LU factors an exactly decomposable 6×6 integer matrix with
// Doolittle elimination, a U-row and L-column fan-out per step.
func BenchmarkGen2LU(b *testing.B) {
	benchWorkload(b, workloads.LU(6), gen2PECounts)
}

// BenchmarkGen2Stencil runs four three-point sweeps over 16 cells,
// ping-ponging between buffers with one context per interior cell.
func BenchmarkGen2Stencil(b *testing.B) {
	benchWorkload(b, workloads.Stencil(16, 4), gen2PECounts)
}

// BenchmarkGen2Chain pushes 24 values through the four-stage rendezvous
// pipeline; the run is dominated by channel traffic on the ring and mcache.
func BenchmarkGen2Chain(b *testing.B) {
	benchWorkload(b, workloads.Chain(24), gen2PECounts)
}

// BenchmarkCompiler measures the OCCAM compiler itself on the largest
// benchmark program.
func BenchmarkCompiler(b *testing.B) {
	src := workloads.MatMul(8).Source
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(src, compile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembler measures instruction encode/decode round trips.
func BenchmarkAssembler(b *testing.B) {
	in := isa.Instr{Op: isa.OpPlus, Src1: isa.Window(0), Src2: isa.Window(1),
		Dst1: 0, Dst2: 2, QPInc: 2}
	for i := 0; i < b.N; i++ {
		words, err := in.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := isa.Decode(words); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbstractQueue measures the abstract simple-queue evaluator on
// the Table 3.1 program.
func BenchmarkAbstractQueue(b *testing.B) {
	tree := bintree.MustParseExpr("a*b + (c-d)/e")
	env := queue.Env{"a": 7, "b": 3, "c": 20, "d": 6, "e": 2}
	seq, err := queue.CompileTree(bintree.LevelOrder(tree), env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v, err := queue.EvalSimple(seq); err != nil || v != 7*3+(20-6)/2 {
			b.Fatalf("eval: %d, %v", v, err)
		}
	}
}
