// Command occ is the OCCAM compiler driver (the thesis's scanparse →
// semantic → dataflow → grapher → sequencer → coder pipeline).
//
// Usage:
//
//	occ prog.occ                  compile, write prog.qobj (JSON object file)
//	occ -S prog.occ               print the generated assembly
//	occ -dump-ift prog.occ        print the Intermediate Form Table
//	occ -dump-dfg prog.occ        print every context graph
//	occ -run 4 prog.occ           compile and execute on 4 processing elements
//	occ -no-input-order ...       disable individual optimizations
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"queuemachine/internal/compile"
	"queuemachine/internal/ift"
	"queuemachine/internal/sim"
)

func main() {
	var (
		printAsm = flag.Bool("S", false, "print generated assembly")
		dumpIFT  = flag.Bool("dump-ift", false, "print the intermediate form table")
		dumpDFG  = flag.Bool("dump-dfg", false, "print the context data-flow graphs")
		runPEs   = flag.Int("run", 0, "execute on this many processing elements")
		outFile  = flag.String("o", "", "object file output path (default: input with .qobj)")
		opts     compile.Options
	)
	flag.BoolVar(&opts.NoInputOrder, "no-input-order", false, "disable pi_I input ordering")
	flag.BoolVar(&opts.NoLiveFilter, "no-live-filter", false, "disable live-value filtering")
	flag.BoolVar(&opts.NoPriority, "no-priority", false, "disable priority sequencing")
	flag.BoolVar(&opts.NoConstFold, "no-const-fold", false, "disable constant folding and immediates")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: occ [flags] program.occ")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	art, err := compile.Compile(string(src), opts)
	if err != nil {
		fatal(err)
	}

	switch {
	case *dumpIFT:
		fmt.Printf("%-4s %-10s %-26s %-26s %s\n", "idx", "type", "I", "O", "E")
		for _, e := range art.Table.Entries {
			if e.Kind == ift.KMain {
				continue
			}
			fmt.Printf("%-4d %-10v %-26v %-26v %v\n", e.Index, e.Kind, e.Inputs(), e.Outputs(), e.E)
		}
	case *dumpDFG:
		for _, info := range art.Graphs {
			fmt.Printf("graph %s  ins=%v outs=%v\n", info.Name, info.Ins, info.Outs)
			for i, n := range info.Order {
				var args []string
				for _, e := range n.Args {
					args = append(args, e.From.String())
				}
				var order []string
				for _, p := range n.Order {
					order = append(order, p.String())
				}
				line := fmt.Sprintf("  %3d: %s(%s)", i, n.String(), strings.Join(args, ", "))
				if len(order) > 0 {
					line += " after{" + strings.Join(order, ", ") + "}"
				}
				fmt.Println(line)
			}
		}
	case *printAsm:
		fmt.Print(art.Assembly)
	case *runPEs > 0:
		res, err := sim.Run(art.Object, *runPEs, sim.DefaultParams())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cycles       %d\n", res.Cycles)
		fmt.Printf("instructions %d\n", res.Instructions)
		fmt.Printf("contexts     %d\n", res.Kernel.ContextsCreated)
		fmt.Printf("utilization  %.2f\n", res.Utilization())
		fmt.Printf("data segment (%d words):\n", len(res.Data))
		for i, v := range res.Data {
			if v != 0 {
				fmt.Printf("  [%d] = %d\n", i, v)
			}
		}
	default:
		out := *outFile
		if out == "" {
			out = strings.TrimSuffix(path, ".occ") + ".qobj"
		}
		blob, err := json.MarshalIndent(art.Object, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d graphs, %d data words)\n", out, len(art.Object.Graphs), art.Object.DataWords)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "occ: %v\n", err)
	os.Exit(1)
}
