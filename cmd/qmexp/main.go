// Command qmexp regenerates the thesis's tables and figures.
//
// Usage:
//
//	qmexp -list            list experiment identifiers
//	qmexp -e table3.2      run one experiment
//	qmexp -all             run every experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"queuemachine/internal/experiments"
)

func main() {
	var (
		list = flag.Bool("list", false, "list experiments")
		id   = flag.String("e", "", "experiment id to run")
		all  = flag.Bool("all", false, "run every experiment")
	)
	flag.Parse()
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			if err := e.Run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "qmexp: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "qmexp: unknown experiment %q (try -list)\n", *id)
			os.Exit(2)
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "qmexp: %v\n", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
