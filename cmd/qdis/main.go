// Command qdis disassembles a JSON object file back to assembly text.
//
// Usage:
//
//	qdis prog.qobj
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"queuemachine/internal/asm"
	"queuemachine/internal/isa"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qdis program.qobj")
		os.Exit(2)
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var obj isa.Object
	if err := json.Unmarshal(blob, &obj); err != nil {
		fatal(err)
	}
	if err := obj.Validate(); err != nil {
		fatal(err)
	}
	text, err := asm.Disassemble(&obj)
	if err != nil {
		fatal(err)
	}
	fmt.Print(text)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qdis: %v\n", err)
	os.Exit(1)
}
