// Command qmd is the queue machine daemon: a long-running HTTP service
// that compiles OCCAM programs and executes them on the simulated
// multiprocessor, with a content-addressed artifact cache, a bounded
// worker pool that sheds overload with 429s, per-request deadlines, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	qmd                          serve on :8344 with defaults
//	qmd -addr :9000 -workers 8   explicit listen address and pool size
//	qmd -log-format json         structured request logs as JSON lines
//	qmd -cache-dir /var/qmd      persist compiled artifacts across restarts
//	qmd -self http://a:8344 -peers http://a:8344,http://b:8344
//	                             join a replica fleet: artifact misses ask
//	                             the ring owner before compiling locally
//
// Endpoints: POST /compile, POST /run, GET /healthz, GET /statsz,
// GET /metrics (Prometheus text), GET /debugz/traces (the flight
// recorder of recently traced requests), and — with -pprof —
// GET /debug/pprof/*.
// Example:
//
//	curl -s localhost:8344/run -d '{"source": "var v[1]:\nseq\n  v[0] := 42\n", "pes": 4}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"queuemachine/internal/service"
	"queuemachine/internal/xtrace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8344", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "admission queue depth (0: 4x workers)")
		cache     = flag.Int("cache", 128, "artifact cache entries")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxBody   = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
		pprof     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		cacheDir  = flag.String("cache-dir", "", "persist compiled artifacts under this directory (empty: memory only)")
		self      = flag.String("self", "", "this replica's base URL in the peer ring (required with -peers)")
		peers     = flag.String("peers", "", "comma-separated base URLs of all replicas (including -self); empty: no peering")
		peerTO    = flag.Duration("peer-timeout", 10*time.Second, "peer artifact fetch deadline")
		slo       = flag.String("slo", "", "per-route latency objectives, e.g. run=2s,compile=500ms (empty: no SLO tracking)")
		traceRing = flag.Int("trace-ring", 0, "flight recorder capacity in traces (0: default 256)")
		traceSlow = flag.Duration("trace-slow", 0, "retain traces at least this slow as outliers (0: default 1s)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qmd [flags]")
		os.Exit(2)
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "qmd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	objectives, err := xtrace.ParseObjectives(*slo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmd: -slo: %v\n", err)
		os.Exit(2)
	}
	// The replica's own URL is the most useful process lane name in a
	// stitched multi-replica trace; fall back to the generic default when
	// running unfleeted.
	process := *self
	svc, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		EnablePprof:    *pprof,
		CacheDir:       *cacheDir,
		Self:           *self,
		Peers:          peerList,
		PeerTimeout:    *peerTO,
		Process:        process,
		TraceCapacity:  *traceRing,
		TraceSlow:      *traceSlow,
		SLOs:           objectives,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmd: %v\n", err)
		os.Exit(1)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.AccessLog(logger, svc.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelError),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("serving", slog.String("addr", *addr))

	select {
	case err := <-errCh:
		logger.Error("listen", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("draining", slog.Duration("budget", *drain))
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("http shutdown", slog.Any("err", err))
	}
	if err := svc.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("drain", slog.Any("err", err))
	}
	logger.Info("bye")
}
