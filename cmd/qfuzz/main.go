// qfuzz drives the end-to-end differential fuzzer: random whole OCCAM
// programs (internal/occamgen) run through the reference interpreter and
// through the compiler→simulator pipeline under every optimization
// configuration and several machine sizes, requiring bit-identical vector
// contents everywhere.
//
//	qfuzz -n 500              # seeds 0..499
//	qfuzz -seed 44 -n 1       # reproduce one seed
//	qfuzz -n 200 -start 1000  # a different seed window
//
// On divergence it prints the failing stage, a reproduction line, and a
// shrunken minimal program, then exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"queuemachine/internal/occamgen"
)

func main() {
	n := flag.Int("n", 200, "number of seeds to run")
	start := flag.Int64("start", 0, "first seed")
	seed := flag.Int64("seed", -1, "run this single seed (overrides -start)")
	budget := flag.Int("budget", 0, "statement budget per program (0: default)")
	noShrink := flag.Bool("no-shrink", false, "report failures without minimizing")
	maxFail := flag.Int("max-failures", 1, "stop after this many divergences")
	quiet := flag.Bool("quiet", false, "suppress the progress line")
	flag.Parse()

	cfg := occamgen.DefaultConfig()
	if *budget > 0 {
		cfg.Budget = *budget
	}
	first := *start
	if *seed >= 0 {
		first = *seed
		*n = 1
	}

	t0 := time.Now()
	failures := 0
	for s := first; s < first+int64(*n); s++ {
		f := check(s, cfg, *noShrink)
		if f != nil {
			fmt.Print(f.Error())
			failures++
			if failures >= *maxFail {
				break
			}
		}
		if !*quiet && (s-first+1)%100 == 0 {
			fmt.Fprintf(os.Stderr, "qfuzz: %d/%d seeds, %d divergences, %.1fs\n",
				s-first+1, *n, failures, time.Since(t0).Seconds())
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "qfuzz: %d divergence(s) in %d seeds\n", failures, *n)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "qfuzz: %d seeds clean in %.1fs\n", *n, time.Since(t0).Seconds())
	}
}

func check(seed int64, cfg occamgen.Config, noShrink bool) *occamgen.Failure {
	if noShrink {
		src := occamgen.GenerateSeed(seed, cfg)
		f := occamgen.CheckProgram(src)
		if f != nil {
			f.Seed = seed
		}
		return f
	}
	return occamgen.CheckSeed(seed, cfg)
}
