// Command qasm assembles queue machine assembly source into a JSON object
// file.
//
// Usage:
//
//	qasm prog.qasm [-o prog.qobj]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"queuemachine/internal/asm"
)

func main() {
	out := flag.String("o", "", "output path (default: input with .qobj)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qasm [-o out.qobj] program.qasm")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(path, ".qasm") + ".qobj"
	}
	blob, err := json.MarshalIndent(obj, "", " ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(dest, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d graphs)\n", dest, len(obj.Graphs))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qasm: %v\n", err)
	os.Exit(1)
}
