// Command qbench turns `go test -bench` output into a benchmark-regression
// gate on the simulated cycle counts. The simulator is deterministic, so the
// "simcycles" metric each Chapter 6 benchmark reports is exact: any drift
// from the committed baseline is a behavioural change, not noise, and the
// gate compares for equality rather than within a tolerance.
//
// Usage:
//
//	go test -bench 'Fig6|Table6' -benchtime 1x | qbench -out BENCH_ci.json
//	    record a run: parse the bench output and write the cycle counts
//
//	go test -bench ... | qbench -baseline BENCH_baseline.json -out BENCH_ci.json
//	    gate a run: additionally compare against the committed baseline and
//	    exit 1 when any benchmark drifted or disappeared
//
//	go test -bench BenchmarkHost -benchtime 5x | qbench -host -out BENCH_host.json
//	    record host throughput: parse the wall-clock "simInstrs/s" metric the
//	    BenchmarkHost* benchmarks report and write it as a trajectory
//	    artifact. Host time is machine- and load-dependent, so -host is
//	    report-only and never gates: -baseline is rejected with it.
//
//	qbench -profile -out profiles/
//	    run representative Chapter 6 workloads under the cycle-attribution
//	    profiler, write each run's attribution and critical path as JSON
//	    into the directory, and exit 1 if any run's attribution fails to
//	    sum exactly to PEs × makespan (the profiler's defining invariant —
//	    a violation means the accounting itself broke, which gates CI).
//
//	qbench -sweep -out sweep.json
//	    run the scheduler design-space explorer: the Chapter 6 suite across
//	    every scheduling policy × machine sizes (× message-cache and ring
//	    partition variants when requested), writing per-point cycles,
//	    profiler cause attribution and Amdahl fits as JSON. -sweep-smoke
//	    selects the small report-only CI grid; -sweep-benches,
//	    -sweep-policies, -sweep-pes, -sweep-mcache and -sweep-partitions
//	    override the grid axes (comma-separated).
//
// Bench output is read from the named file argument, or stdin when absent.
// Benchmarks present in the run but not the baseline are reported as new
// without failing the gate (commit the refreshed file to accept them).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"queuemachine/internal/compile"
	"queuemachine/internal/experiments"
	"queuemachine/internal/profile"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// Report is the JSON document qbench reads and writes. Cycle counts are
// keyed by benchmark name with the -GOMAXPROCS suffix stripped, so the gate
// is insensitive to the machine the run happened on.
type Report struct {
	Metric     string           `json:"metric"`
	Benchmarks map[string]int64 `json:"benchmarks"`
}

// HostReport is the JSON document -host writes: wall-clock simulator
// throughput per benchmark. Unlike cycle counts these are real-valued and
// machine-dependent, so they are recorded as a trajectory, never gated.
type HostReport struct {
	Metric     string             `json:"metric"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// procSuffix matches the "-8" GOMAXPROCS suffix go test appends to benchmark
// names when GOMAXPROCS > 1. Sub-benchmark names also end in digits
// ("pes-4"), so parse only strips a suffix every benchmark line of the run
// shares — that uniformity is what distinguishes the GOMAXPROCS suffix from
// a name that happens to end in a number.
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline JSON to gate against")
		outPath      = flag.String("out", "", "write this run's cycle counts as JSON")
		hostMode     = flag.Bool("host", false,
			"record the simInstrs/s host-throughput metric (report-only, no gating)")
		profileMode = flag.Bool("profile", false,
			"profile representative benchmarks and gate the attribution-sum invariant")
		sweepMode = flag.Bool("sweep", false,
			"run the scheduler design-space sweep and write the report JSON")
		sweepSmoke = flag.Bool("sweep-smoke", false,
			"use the small CI smoke grid (implies -sweep)")
		sweepBenches = flag.String("sweep-benches", "",
			"comma-separated benchmark subset for -sweep")
		sweepPolicies = flag.String("sweep-policies", "",
			"comma-separated policy subset for -sweep")
		sweepPEs = flag.String("sweep-pes", "",
			"comma-separated machine sizes for -sweep")
		sweepMCache = flag.String("sweep-mcache", "",
			"comma-separated message-cache capacities for -sweep")
		sweepParts = flag.String("sweep-partitions", "",
			"comma-separated ring partition counts for -sweep")
	)
	flag.Parse()
	if *hostMode && *baselinePath != "" {
		fatal(fmt.Errorf("-host throughput is machine-dependent and report-only; -baseline is not allowed"))
	}
	if *sweepMode || *sweepSmoke {
		if *hostMode || *profileMode || *baselinePath != "" {
			fatal(fmt.Errorf("-sweep runs its own simulations; -host, -profile and -baseline are not allowed"))
		}
		runSweep(*outPath, *sweepSmoke, *sweepBenches, *sweepPolicies,
			*sweepPEs, *sweepMCache, *sweepParts)
		return
	}
	if *profileMode {
		if *hostMode || *baselinePath != "" {
			fatal(fmt.Errorf("-profile runs its own simulations; -host and -baseline are not allowed"))
		}
		runProfiles(*outPath)
		return
	}

	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	default:
		fmt.Fprintln(os.Stderr, "usage: qbench [-baseline file] [-out file] [bench-output]")
		os.Exit(2)
	}

	if *hostMode {
		vals, err := parseMetric(in, "simInstrs/s")
		if err != nil {
			fatal(err)
		}
		if len(vals) == 0 {
			fatal(fmt.Errorf("no simInstrs/s metrics found in bench output"))
		}
		rep := &HostReport{Metric: "simInstrs/s", Benchmarks: vals}
		if *outPath != "" {
			blob, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}
		for _, name := range sortedFloatKeys(rep.Benchmarks) {
			fmt.Printf("qbench: %s: %.0f simInstrs/s\n", name, rep.Benchmarks[name])
		}
		fmt.Printf("qbench: recorded host throughput for %d benchmarks\n", len(rep.Benchmarks))
		return
	}

	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current.Benchmarks) == 0 {
		fatal(fmt.Errorf("no simcycles metrics found in bench output"))
	}
	if *outPath != "" {
		blob, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *baselinePath == "" {
		fmt.Printf("qbench: recorded %d benchmarks\n", len(current.Benchmarks))
		return
	}

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var baseline Report
	if err := json.Unmarshal(blob, &baseline); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *baselinePath, err))
	}

	var drifted, missing, fresh []string
	for _, name := range sortedKeys(baseline.Benchmarks) {
		want := baseline.Benchmarks[name]
		got, ok := current.Benchmarks[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if got != want {
			drifted = append(drifted,
				fmt.Sprintf("%s: %d cycles, baseline %d (%+d)", name, got, want, got-want))
		}
	}
	for _, name := range sortedKeys(current.Benchmarks) {
		if _, ok := baseline.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}

	for _, name := range fresh {
		fmt.Printf("qbench: new benchmark %s (%d cycles, not gated)\n",
			name, current.Benchmarks[name])
	}
	if len(drifted) == 0 && len(missing) == 0 {
		fmt.Printf("qbench: %d benchmarks match the baseline exactly\n",
			len(baseline.Benchmarks)-len(missing))
		return
	}
	for _, line := range drifted {
		fmt.Fprintf(os.Stderr, "qbench: cycle drift: %s\n", line)
	}
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "qbench: benchmark %s missing from this run\n", name)
	}
	fmt.Fprintf(os.Stderr,
		"qbench: FAIL: %d drifted, %d missing (refresh %s if the change is intended)\n",
		len(drifted), len(missing), *baselinePath)
	os.Exit(1)
}

// parse extracts the simcycles metric from go test bench output lines, e.g.
//
//	BenchmarkFig68Matmul/pes-4-8   1   937432 ns/op   51742 simcycles   ...
func parse(r io.Reader) (*Report, error) {
	vals, err := parseMetric(r, "simcycles")
	if err != nil {
		return nil, err
	}
	rep := &Report{Metric: "simcycles", Benchmarks: make(map[string]int64, len(vals))}
	for name, v := range vals {
		rep.Benchmarks[name] = int64(v)
	}
	return rep, nil
}

// parseMetric extracts one named custom metric from go test bench output,
// keyed by benchmark name with any uniform GOMAXPROCS suffix stripped.
func parseMetric(r io.Reader, metric string) (map[string]float64, error) {
	vals := map[string]float64{}
	var allNames []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		allNames = append(allNames, name)
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad %s %q", name, metric, fields[i])
			}
			vals[name] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if suffix := commonProcSuffix(allNames); suffix != "" {
		trimmed := make(map[string]float64, len(vals))
		for name, v := range vals {
			trimmed[strings.TrimSuffix(name, suffix)] = v
		}
		vals = trimmed
	}
	return vals, nil
}

// commonProcSuffix returns the "-N" GOMAXPROCS suffix when every benchmark
// in the run — including top-level names like BenchmarkFig66, which never
// end in digits of their own — carries the same one, and "" otherwise (in
// particular on GOMAXPROCS=1 runs, where go test appends nothing).
func commonProcSuffix(names []string) string {
	suffix := ""
	for _, name := range names {
		s := procSuffix.FindString(name)
		if s == "" {
			return ""
		}
		if suffix == "" {
			suffix = s
		} else if s != suffix {
			return ""
		}
	}
	return suffix
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// profileCases are the representative benchmarks the -profile gate runs:
// one per program shape (regular matrix product, butterfly communication,
// triangular dependence, and a channel-bound rendezvous pipeline), all at
// the full 8-element machine where the rendezvous and ring machinery is
// busiest.
func profileCases() []struct {
	name string
	wl   workloads.Workload
	pes  int
} {
	return []struct {
		name string
		wl   workloads.Workload
		pes  int
	}{
		{"fig68-matmul-8", workloads.MatMul(8), 8},
		{"fig610-fft-6", workloads.FFT(6), 8},
		{"fig611-cholesky-8", workloads.Cholesky(8), 8},
		{"gen2-chain-24", workloads.Chain(24), 8},
	}
}

// runProfiles simulates the representative benchmarks under the profiler,
// verifies the attribution-sum invariant, and writes each profile as JSON
// into outDir (when set). Any invariant violation or failed run exits 1.
func runProfiles(outDir string) {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	failed := false
	for _, c := range profileCases() {
		art, err := compile.Compile(c.wl.Source, compile.Options{})
		if err != nil {
			fatal(fmt.Errorf("%s: compile: %w", c.name, err))
		}
		sys, err := sim.New(art.Object, c.pes, sim.DefaultParams())
		if err != nil {
			fatal(fmt.Errorf("%s: %w", c.name, err))
		}
		p := profile.New(c.pes)
		names := make([]string, len(art.Object.Graphs))
		for i, g := range art.Object.Graphs {
			names[i] = g.Name
		}
		p.SetGraphNames(names)
		sys.SetRecorder(p)
		res, err := sys.Run()
		if err != nil {
			fatal(fmt.Errorf("%s: run: %w", c.name, err))
		}
		if err := c.wl.Check(art, res.Data); err != nil {
			fatal(fmt.Errorf("%s: wrong answer: %w", c.name, err))
		}
		prof := p.Finalize(res.Cycles)

		var sum int64
		for _, v := range prof.Causes {
			sum += v
		}
		want := int64(c.pes) * res.Cycles
		if sum != want {
			fmt.Fprintf(os.Stderr,
				"qbench: FAIL %s: attribution sums to %d cycles, want %d PEs × %d = %d\n",
				c.name, sum, c.pes, res.Cycles, want)
			failed = true
		}
		var pathSum int64
		for _, v := range prof.CriticalPath.Causes {
			pathSum += v
		}
		if pathSum != res.Cycles {
			fmt.Fprintf(os.Stderr,
				"qbench: FAIL %s: critical path sums to %d cycles, want makespan %d\n",
				c.name, pathSum, res.Cycles)
			failed = true
		}
		fmt.Printf("qbench: %s: %d cycles on %d PEs, execute %.1f%%, critical path %.1f%% compute\n",
			c.name, res.Cycles, c.pes,
			100*float64(prof.Causes["execute"])/float64(want),
			100*float64(prof.CriticalPath.Causes["execute"])/float64(res.Cycles))

		if outDir != "" {
			blob, err := json.MarshalIndent(prof, "", "  ")
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(outDir, c.name+".json")
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "qbench: FAIL: attribution invariant violated")
		os.Exit(1)
	}
	fmt.Printf("qbench: %d profiles verified: attribution sums to PEs × makespan\n", len(profileCases()))
}

// runSweep drives the scheduler design-space explorer. The report is
// written as JSON to outPath (when set) and a per-point progress line plus
// a winners summary go to stdout. Sweeps are report-only: any simulation
// failure or wrong answer exits 1, but a policy losing to the baseline
// never does.
func runSweep(outPath string, smoke bool, benches, policies, pes, mcache, parts string) {
	spec := experiments.DefaultSweepSpec()
	if smoke {
		spec = experiments.SmokeSweepSpec()
	}
	if benches != "" {
		spec.Benchmarks = splitList(benches)
	}
	if policies != "" {
		spec.Policies = splitList(policies)
	}
	var err error
	if pes != "" {
		if spec.PECounts, err = splitInts(pes); err != nil {
			fatal(fmt.Errorf("-sweep-pes: %w", err))
		}
	}
	if mcache != "" {
		if spec.MCacheEntries, err = splitInts(mcache); err != nil {
			fatal(fmt.Errorf("-sweep-mcache: %w", err))
		}
	}
	if parts != "" {
		if spec.Partitions, err = splitInts(parts); err != nil {
			fatal(fmt.Errorf("-sweep-partitions: %w", err))
		}
	}
	rep, err := experiments.RunPolicySweep(context.Background(), spec, os.Stdout)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	experiments.WriteSweepSummary(os.Stdout, rep)
	if outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("qbench: wrote %d sweep points to %s\n", len(rep.Points), outPath)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qbench: %v\n", err)
	os.Exit(1)
}
