package main

import (
	"strings"
	"testing"
)

const singleCPU = `goos: linux
BenchmarkFig66            	       1	       780.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig68Matmul/pes-1 	       1	  1000 ns/op	  201878 simcycles	 10 B/op	 1 allocs/op
BenchmarkFig68Matmul/pes-4 	       1	  1000 ns/op	   54969 simcycles	 3.672 speedup	 10 B/op	 1 allocs/op
PASS
`

const multiCPU = `goos: linux
BenchmarkFig66-8            	       1	       780.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig68Matmul/pes-1-8 	       1	  1000 ns/op	  201878 simcycles	 10 B/op	 1 allocs/op
BenchmarkFig68Matmul/pes-4-8 	       1	  1000 ns/op	   54969 simcycles	 3.672 speedup	 10 B/op	 1 allocs/op
PASS
`

// TestParseNormalizesProcSuffix checks the property the gate depends on: a
// GOMAXPROCS=1 run and a GOMAXPROCS=8 run of the same benchmarks parse to
// identical keys, and "pes-4" style names are never truncated.
func TestParseNormalizesProcSuffix(t *testing.T) {
	for _, tc := range []struct {
		name, out string
	}{{"single-cpu", singleCPU}, {"multi-cpu", multiCPU}} {
		rep, err := parse(strings.NewReader(tc.out))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		want := map[string]int64{
			"BenchmarkFig68Matmul/pes-1": 201878,
			"BenchmarkFig68Matmul/pes-4": 54969,
		}
		if len(rep.Benchmarks) != len(want) {
			t.Fatalf("%s: parsed %v, want %v", tc.name, rep.Benchmarks, want)
		}
		for k, v := range want {
			if rep.Benchmarks[k] != v {
				t.Errorf("%s: %s = %d, want %d", tc.name, k, rep.Benchmarks[k], v)
			}
		}
	}
}

const hostBench = `goos: linux
BenchmarkHostMatmul/pes-1-8 	       5	  61000000 ns/op	  1201878.5 simInstrs/s	 10 B/op	 1 allocs/op
BenchmarkHostMatmul/pes-8-8 	       5	  17000000 ns/op	  2484010 simInstrs/s	  54969 wrongmetric	 10 B/op	 1 allocs/op
BenchmarkHostFFT/pes-8-8 	       5	   9800000 ns/op	  3661933 simInstrs/s	 10 B/op	 1 allocs/op
PASS
`

// TestParseMetricHost checks -host parsing: the real-valued simInstrs/s
// metric is extracted per benchmark, other metrics on the same line are
// ignored, and the GOMAXPROCS suffix is still normalized away.
func TestParseMetricHost(t *testing.T) {
	vals, err := parseMetric(strings.NewReader(hostBench), "simInstrs/s")
	if err != nil {
		t.Fatalf("parseMetric: %v", err)
	}
	want := map[string]float64{
		"BenchmarkHostMatmul/pes-1": 1201878.5,
		"BenchmarkHostMatmul/pes-8": 2484010,
		"BenchmarkHostFFT/pes-8":    3661933,
	}
	if len(vals) != len(want) {
		t.Fatalf("parsed %v, want %v", vals, want)
	}
	for k, v := range want {
		if vals[k] != v {
			t.Errorf("%s = %v, want %v", k, vals[k], v)
		}
	}
}

// TestCommonProcSuffix pins the heuristic's edge cases.
func TestCommonProcSuffix(t *testing.T) {
	for _, tc := range []struct {
		names []string
		want  string
	}{
		{[]string{"BenchmarkA-8", "BenchmarkB/pes-4-8"}, "-8"},
		{[]string{"BenchmarkA", "BenchmarkB/pes-4"}, ""},
		// Mixed endings mean the digits belong to the names, not GOMAXPROCS.
		{[]string{"BenchmarkB/pes-4", "BenchmarkB/pes-8"}, ""},
		{nil, ""},
	} {
		if got := commonProcSuffix(tc.names); got != tc.want {
			t.Errorf("commonProcSuffix(%v) = %q, want %q", tc.names, got, tc.want)
		}
	}
}
