// Command qload drives open-loop load against a qmd replica or a qgate
// front proxy and reports throughput, cache and coalescing behaviour,
// and latency quantiles.
//
// Usage:
//
//	qload -target http://localhost:8450 -rate 1000 -duration 20s
//	qload -target ... -skew 1.3 -corpus all -json report.json
//
// The generator is open-loop: requests fire at the offered rate
// regardless of how the server keeps up, bounded only by -max-inflight
// (beyond which scheduled requests are counted as dropped, not delayed).
//
// With -min-coalesced, -max-5xx, and/or -slo-p99, qload doubles as a CI
// gate: it exits non-zero when the run saw fewer coalesced responses or
// more 5xx responses than allowed, or missed its p99 latency objective
// (-slo-report-only prints the verdict without failing). With
// -trace-sample N every Nth request carries a fresh X-Qmd-Trace id; the
// serving tier records those requests in its flight recorders and the
// report lists the sampled ids slowest-first for retrieval from
// /debugz/traces.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"queuemachine/internal/load"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of the qmd or qgate to load (required)")
		rate        = flag.Float64("rate", 100, "offered request rate, req/s")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		skew        = flag.Float64("skew", 1.1, "zipf skew over the corpus (> 1; larger is hotter)")
		seed        = flag.Uint64("seed", 1, "program-sequence seed")
		pes         = flag.Int("pes", 2, "simulated machine size per run")
		corpus      = flag.String("corpus", "chapter6", "program corpus: chapter6, gen2, or all")
		maxInflight = flag.Int("max-inflight", 256, "outstanding-request bound; excess scheduled requests are dropped")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		jsonPath    = flag.String("json", "", "also write the full report as JSON to this file (- for stdout)")
		minCoal     = flag.Int64("min-coalesced", -1, "fail unless at least this many responses were coalesced (-1: no gate)")
		max5xx      = flag.Int64("max-5xx", -1, "fail if more than this many responses were 5xx (-1: no gate)")
		traceSample = flag.Int("trace-sample", 0, "send a fresh X-Qmd-Trace id on every Nth request (0: no tracing); sampled ids land in the report, slowest first")
		sloP99      = flag.Duration("slo-p99", 0, "p99 latency objective; the run fails when missed unless -slo-report-only (0: no objective)")
		sloReport   = flag.Bool("slo-report-only", false, "report the -slo-p99 verdict without failing the run")
	)
	flag.Parse()
	if *target == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qload -target URL [flags]")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := load.Run(ctx, *target, load.Options{
		Rate:        *rate,
		Duration:    *duration,
		Skew:        *skew,
		Seed:        *seed,
		PEs:         *pes,
		MaxInFlight: *maxInflight,
		Timeout:     *timeout,
		Corpus:      *corpus,
		TraceSample: *traceSample,
		SLOP99:      *sloP99,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qload: %v\n", err)
		os.Exit(1)
	}
	rep.WriteText(os.Stdout)
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "qload: marshal report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "qload: write report: %v\n", err)
			os.Exit(1)
		}
	}

	failed := false
	if *minCoal >= 0 {
		if coal := rep.Cache["coalesced"]; coal < *minCoal {
			fmt.Fprintf(os.Stderr, "qload: GATE FAIL: %d coalesced responses, want >= %d\n", coal, *minCoal)
			failed = true
		}
	}
	if *max5xx >= 0 && rep.Server5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "qload: GATE FAIL: %d 5xx responses, allowed <= %d\n", rep.Server5xx, *max5xx)
		failed = true
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		msg := "GATE FAIL"
		if *sloReport {
			msg = "SLO MISS (report-only)"
		}
		fmt.Fprintf(os.Stderr, "qload: %s: p99 %.3fs over objective %.3fs\n",
			msg, rep.SLO.P99Seconds, rep.SLO.TargetP99Seconds)
		if !*sloReport {
			failed = true
		}
	}
	if rep.Completed == 0 {
		fmt.Fprintln(os.Stderr, "qload: GATE FAIL: no requests completed")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
