// Command qgate is the fleet front proxy: it shards compile and run
// requests across a set of qmd replicas by artifact fingerprint on a
// consistent-hash ring, health-checks the replicas, and fails over past
// dead ones without surfacing the failure to clients.
//
// Usage:
//
//	qgate -replicas http://a:8344,http://b:8344,http://c:8344
//	qgate -addr :8450 -replicas ... -health-interval 5s
//
// Endpoints: POST /compile and POST /run (proxied, with an
// X-Qmd-Replica response header naming the serving replica), GET
// /healthz (200 while at least one replica is live), GET /statsz (gate
// counters plus each replica's own /statsz), GET /metrics (Prometheus
// text with per-replica latency histograms), GET /debugz/traces
// (?id=T stitches the gate's and every replica's spans for trace T into
// one fleet-wide view; &format=chrome renders it for chrome://tracing).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"queuemachine/internal/gate"
	"queuemachine/internal/service"
	"queuemachine/internal/xtrace"
)

func main() {
	var (
		addr      = flag.String("addr", ":8450", "listen address")
		replicas  = flag.String("replicas", "", "comma-separated qmd base URLs (required)")
		vnodes    = flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0: default; must match the replicas' -peers ring)")
		healthInt = flag.Duration("health-interval", 2*time.Second, "replica health probe period")
		maxBody   = flag.Int64("max-body", 1<<20, "request body limit in bytes")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		slo       = flag.String("slo", "", "per-route latency objectives measured at the gate, e.g. run=2s (empty: no SLO tracking)")
		traceRing = flag.Int("trace-ring", 0, "flight recorder capacity in traces (0: default 256)")
		traceSlow = flag.Duration("trace-slow", 0, "retain traces at least this slow as outliers (0: default 1s)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qgate -replicas url,url,... [flags]")
		os.Exit(2)
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "qgate: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	var urls []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			urls = append(urls, r)
		}
	}
	objectives, err := xtrace.ParseObjectives(*slo)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgate: -slo: %v\n", err)
		os.Exit(2)
	}
	g, err := gate.New(gate.Config{
		Replicas:       urls,
		VirtualNodes:   *vnodes,
		HealthInterval: *healthInt,
		MaxBodyBytes:   *maxBody,
		TraceCapacity:  *traceRing,
		TraceSlow:      *traceSlow,
		SLOs:           objectives,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qgate: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g.Start(ctx)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           service.AccessLog(logger, g.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          slog.NewLogLogger(handler, slog.LevelError),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("proxying", slog.String("addr", *addr), slog.Int("replicas", len(urls)))

	select {
	case err := <-errCh:
		logger.Error("listen", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("http shutdown", slog.Any("err", err))
	}
	logger.Info("bye")
}
