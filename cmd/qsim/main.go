// Command qsim executes a JSON object file on the simulated queue machine
// multiprocessor and reports the run statistics of the Chapter 6 tables.
//
// Usage:
//
//	qsim -pes 4 prog.qobj
//	qsim -pes 8 -sched steal prog.qobj    run under a scheduling policy
//	                                      (fifo, locality, steal, critpath)
//	qsim -pes 8 -dump prog.qobj           also dump the final data segment
//	qsim -pes 4 -json prog.qobj           emit statistics as JSON (the qmd wire format)
//	qsim -pes 4 -trace run.json prog.qobj write a Chrome trace-event file
//	qsim -pes 4 -timeline 1000 prog.qobj  sample machine gauges every 1000 cycles
//	qsim -pes 4 -profile run.pb.gz prog.qobj
//	                                      attribute every cycle to a cause, print
//	                                      the critical-path summary, and write a
//	                                      pprof profile (load with go tool pprof)
//	qsim -pes 64 -hostpar 4 prog.qobj     run the host-parallel engine on 4 worker
//	                                      goroutines (results are bit-identical to
//	                                      the sequential engine; -hostpar -1 picks
//	                                      the worker count automatically)
//
// Exit status: 0 on success, 1 on error, 2 on usage, and 3 when the
// simulated program deadlocks (the kernel's context snapshot goes to
// stderr, so scripts and CI can detect hangs without parsing stdout).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"queuemachine/internal/isa"
	"queuemachine/internal/profile"
	"queuemachine/internal/sched"
	"queuemachine/internal/service"
	"queuemachine/internal/sim"
	"queuemachine/internal/trace"
)

func main() {
	var (
		pes       = flag.Int("pes", 1, "number of processing elements")
		schedName = flag.String("sched", "",
			"kernel scheduling policy: fifo (default), locality, steal, critpath")
		dump     = flag.Bool("dump", false, "dump the final data segment")
		jsonOut  = flag.Bool("json", false, "emit run statistics as JSON")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON file (load in chrome://tracing)")
		timeline = flag.Int64("timeline", 0, "sample a machine time series every N cycles (0: off)")
		profOut  = flag.String("profile", "", "write a pprof cycle-attribution profile (load with go tool pprof)")
		hostPar  = flag.Int("hostpar", 0,
			"host-parallel worker goroutines (0: sequential engine, -1: auto; results are bit-identical)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qsim [-pes N] [-hostpar N] [-dump] [-json] [-trace out.json] [-timeline N] [-profile out.pb.gz] program.qobj")
		os.Exit(2)
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var obj isa.Object
	if err := json.Unmarshal(blob, &obj); err != nil {
		fatal(err)
	}

	params := sim.DefaultParams()
	params.HostParallel = *hostPar
	params.Scheduler = sched.Config{Policy: *schedName}
	if !sched.Valid(*schedName) {
		fmt.Fprintf(os.Stderr, "qsim: unknown scheduler %q (valid: %s)\n",
			*schedName, strings.Join(sched.Names(), ", "))
		os.Exit(2)
	}
	sys, err := sim.New(&obj, *pes, params)
	if err != nil {
		fatal(err)
	}
	var (
		chrome   *trace.Chrome
		series   *trace.Timeline
		profiler *profile.Profiler
		recs     []trace.Recorder
	)
	if *traceOut != "" {
		chrome = trace.NewChrome(*timeline)
		recs = append(recs, chrome)
	}
	if *timeline > 0 {
		series = trace.NewTimeline(*timeline)
		recs = append(recs, series)
	}
	if *profOut != "" {
		profiler = profile.New(*pes)
		names := make([]string, len(obj.Graphs))
		for i, g := range obj.Graphs {
			names[i] = g.Name
		}
		profiler.SetGraphNames(names)
		recs = append(recs, profiler)
	}
	sys.SetRecorder(trace.Multi(recs...))

	start := time.Now()
	res, err := sys.Run()
	hostTime := time.Since(start)
	if err != nil {
		var dl *sim.DeadlockError
		if errors.As(err, &dl) {
			fmt.Fprintf(os.Stderr, "qsim: %v\n", dl)
			os.Exit(3)
		}
		fatal(err)
	}
	if chrome != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := chrome.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	var prof *profile.Profile
	if profiler != nil {
		prof = profiler.Finalize(res.Cycles)
		f, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		if err := prof.WritePprof(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	stats := service.NewRunStats(res, *dump)
	stats.Scheduler = params.Scheduler.Name()
	stats.SetHostTime(hostTime)
	if series != nil {
		stats.Timeline = series.Series()
	}
	stats.Profile = prof
	if *jsonOut {
		// The same document the qmd service serves from /run.
		out, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	fmt.Printf("processing elements  %d\n", res.NumPEs)
	fmt.Printf("scheduler            %s (%d migrations, %d steals)\n",
		params.Scheduler.Name(), res.Kernel.Migrations, res.Kernel.Steals)
	fmt.Printf("cycles               %d\n", res.Cycles)
	fmt.Printf("instructions         %d\n", res.Instructions)
	fmt.Printf("utilization          %.3f\n", res.Utilization())
	fmt.Printf("contexts created     %d (rfork %d, ifork %d)\n",
		res.Kernel.ContextsCreated, res.Kernel.RForks, res.Kernel.IForks)
	fmt.Printf("context switches     %d (+%d resumes, %d registers rolled out)\n",
		res.Switches, res.Resumes, res.RolledRegisters)
	fmt.Printf("channel rendezvous   %d (cache hits %d, misses %d, evictions %d)\n",
		res.Cache.Rendezvous, res.Cache.Hits, res.Cache.Misses, res.Cache.Evictions)
	fmt.Printf("ring messages        %d (%d wait cycles)\n", res.Ring.Messages, res.Ring.WaitCycles)
	fmt.Printf("memory traffic       %d reads, %d writes\n", res.MemReads, res.MemWrites)
	fmt.Printf("avg queue length     %.2f words\n", res.AvgQueueLength())
	fmt.Printf("host time            %.3fs (%.2f MIPS simulated)\n",
		stats.HostSeconds, stats.HostMIPS)
	if res.Host.Workers > 0 {
		fmt.Printf("host parallel        %d workers (%d epochs, %d barriers, %d cross-shard messages)\n",
			res.Host.Workers, res.Host.Epochs, res.Host.Barriers, res.Host.CrossMessages)
	}
	if series != nil {
		printTimeline(series.Series())
	}
	if prof != nil {
		prof.WriteSummary(os.Stdout)
		fmt.Printf("profile written to %s (go tool pprof %s)\n", *profOut, *profOut)
	}
	if *dump {
		fmt.Printf("data segment (%d words):\n", len(res.Data))
		for i, v := range res.Data {
			if v != 0 {
				fmt.Printf("  [%d] = %d\n", i, v)
			}
		}
	}
}

func printTimeline(s *trace.Series) {
	fmt.Printf("timeline (bucket %d cycles):\n", s.BucketCycles)
	fmt.Printf("  %10s %6s %5s %6s %8s %7s %9s\n",
		"cycle", "util", "live", "ready", "instr", "q-len", "cache-hit")
	for _, b := range s.Buckets {
		fmt.Printf("  %10d %6.3f %5d %6d %8d %7.2f %9.3f\n",
			b.EndCycle, b.Utilization, b.LiveContexts, b.ReadyContexts,
			b.Instructions, b.AvgQueueLength, b.CacheHitRate)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qsim: %v\n", err)
	os.Exit(1)
}
