// Command qsim executes a JSON object file on the simulated queue machine
// multiprocessor and reports the run statistics of the Chapter 6 tables.
//
// Usage:
//
//	qsim -pes 4 prog.qobj
//	qsim -pes 8 -dump prog.qobj     also dump the final data segment
//	qsim -pes 4 -json prog.qobj     emit statistics as JSON (the qmd wire format)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"queuemachine/internal/isa"
	"queuemachine/internal/service"
	"queuemachine/internal/sim"
)

func main() {
	var (
		pes     = flag.Int("pes", 1, "number of processing elements")
		dump    = flag.Bool("dump", false, "dump the final data segment")
		jsonOut = flag.Bool("json", false, "emit run statistics as JSON")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qsim [-pes N] [-dump] program.qobj")
		os.Exit(2)
	}
	blob, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var obj isa.Object
	if err := json.Unmarshal(blob, &obj); err != nil {
		fatal(err)
	}
	res, err := sim.Run(&obj, *pes, sim.DefaultParams())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		// The same document the qmd service serves from /run.
		out, err := json.MarshalIndent(service.NewRunStats(res, *dump), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	fmt.Printf("processing elements  %d\n", res.NumPEs)
	fmt.Printf("cycles               %d\n", res.Cycles)
	fmt.Printf("instructions         %d\n", res.Instructions)
	fmt.Printf("utilization          %.3f\n", res.Utilization())
	fmt.Printf("contexts created     %d (rfork %d, ifork %d)\n",
		res.Kernel.ContextsCreated, res.Kernel.RForks, res.Kernel.IForks)
	fmt.Printf("context switches     %d (+%d resumes, %d registers rolled out)\n",
		res.Switches, res.Resumes, res.RolledRegisters)
	fmt.Printf("channel rendezvous   %d (cache hits %d, misses %d, evictions %d)\n",
		res.Cache.Rendezvous, res.Cache.Hits, res.Cache.Misses, res.Cache.Evictions)
	fmt.Printf("ring messages        %d (%d wait cycles)\n", res.Ring.Messages, res.Ring.WaitCycles)
	fmt.Printf("memory traffic       %d reads, %d writes\n", res.MemReads, res.MemWrites)
	fmt.Printf("avg queue length     %.2f words\n", res.AvgQueueLength())
	if *dump {
		fmt.Printf("data segment (%d words):\n", len(res.Data))
		for i, v := range res.Data {
			if v != 0 {
				fmt.Printf("  [%d] = %d\n", i, v)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qsim: %v\n", err)
	os.Exit(1)
}
