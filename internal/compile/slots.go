package compile

import (
	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
)

// A transfer slot is one rendezvous value of a splice protocol. Data values
// occupy one slot each; ALL control tokens of a transfer share a single
// slot — a construct has a single completion, so one ∧-combined token (the
// Figure 4.9 and-actor output) vouches for every vector it touched and for
// its channel I/O at once. Combining matters: sends on one channel
// serialize on the rendezvous, so every saved slot shortens the protocol's
// critical path.
type slot []ift.Value

// packSlots groups an ordered value list into transfer slots; the token
// group sits at the position of the first token.
func packSlots(vals []ift.Value) []slot {
	var out []slot
	tokenIdx := -1
	for _, v := range vals {
		if v.Token {
			if tokenIdx < 0 {
				tokenIdx = len(out)
				out = append(out, slot{v})
			} else {
				out[tokenIdx] = append(out[tokenIdx], v)
			}
			continue
		}
		out = append(out, slot{v})
	}
	return out
}

// flattenSlots lists the slot contents in order (for diagnostics).
func flattenSlots(slots []slot) []ift.Value {
	var out []ift.Value
	for _, sl := range slots {
		out = append(out, sl...)
	}
	return out
}

// materializeTokenGroup builds the combined control token for a token slot:
// a single word ordered after every member's relevant state. Members with
// write flavor (per the write predicate; nil means all) wait for the
// vector's outstanding readers as well as its last write; read-flavored
// members wait only for the last write. The global K always uses its full
// chain.
func (gc *graphCtx) materializeTokenGroup(vals []ift.Value, write func(ift.Value) bool) *dfg.Node {
	var deps []*dfg.Node
	for _, v := range vals {
		if v.Sym == nil {
			if gc.lastK != nil {
				deps = append(deps, gc.lastK)
			}
			continue
		}
		st := gc.vec(v.Sym)
		if st.lastWrite != nil {
			deps = append(deps, st.lastWrite)
		}
		if write == nil || write(v) {
			deps = append(deps, st.readers...)
		}
	}
	if len(deps) == 0 {
		return gc.konst(-1)
	}
	tok := gc.g.AddOp("token")
	tok.Aux = int32(-1)
	gc.g.AddOrder(tok, deps...)
	return tok
}

// materializeSlot builds the value node for one transfer slot in this
// graph's frame: the environment value for a data slot, the combined token
// for a token slot.
func (gc *graphCtx) materializeSlot(sl slot, write func(ift.Value) bool) *dfg.Node {
	if len(sl) == 1 && !sl[0].Token {
		return gc.value(sl[0])
	}
	return gc.materializeTokenGroup(sl, write)
}
