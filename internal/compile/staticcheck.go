package compile

import (
	"fmt"

	"queuemachine/internal/occam"
)

// maxDataWords bounds the static data segment (4 MiB of words). Each vector
// is already capped by sema; this stops a short program from summing many
// large vectors into an allocation every consumer of the object must make.
const maxDataWords = 1 << 20

// checkStatic runs the compiler's whole-program sanity checks on the
// original (pre-desugar) AST, so positions and shapes match the source.
func checkStatic(prog *occam.Program) error {
	return checkTopLevelChannels(prog.Body)
}

// checkTopLevelChannels rejects a channel operation the initial thread
// executes unconditionally with no enclosing par: there is no other thread
// to rendezvous with, so the operation can never complete. Only that
// provable subset is flagged — anything under a par, an if, a while, a
// replicator, or inside a proc body (whose pairing depends on the call
// site) is left to run-time deadlock detection.
func checkTopLevelChannels(p occam.Process) error {
	switch n := p.(type) {
	case *occam.Scope:
		return checkTopLevelChannels(n.Body)
	case *occam.Seq:
		if n.Rep != nil {
			return nil
		}
		for _, b := range n.Body {
			if err := checkTopLevelChannels(b); err != nil {
				return err
			}
		}
	case *occam.Input:
		return fmt.Errorf("compile: %v: receive on %q outside any par has no partner and can never complete", n.P, n.Chan.Name)
	case *occam.Output:
		return fmt.Errorf("compile: %v: send on %q outside any par has no partner and can never complete", n.P, n.Chan.Name)
	}
	return nil
}
