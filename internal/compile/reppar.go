package compile

import (
	"fmt"

	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
	"queuemachine/internal/occam"
)

// replicatedPar implements dynamic process creation (Figure 4.10): a
// replicated par spawns one context per instance through a binary-splitting
// spawn tree, so context creation itself parallelizes in O(log n) depth.
// Three graphs are emitted per construct:
//
//   - the body graph, executing one instance with the replicator index
//     bound to its received lower bound;
//   - the spawn graph, which receives (lo, n, closure...), splits the index
//     range in half, rforks the appropriate graph for each half (selected
//     with sel actors: another spawn, a single body, or the null graph for
//     an empty half), forwards the closure, and joins the halves' result
//     tokens with ∧ actors;
//   - the null graph, which passes the closure's tokens straight through
//     (the n = 0 case).
//
// Instances may write only vector elements (checked by the IFT builder), so
// the values returned up the tree are control tokens, combined with ∧
// exactly as in Figure 4.9(b).
func (c *compiler) replicatedPar(gc *graphCtx, n *occam.Par) error {
	entry, err := c.table.Entry(n)
	if err != nil {
		return err
	}
	rep := n.Rep
	bodyEntry, err := c.table.Entry(n.Body[0])
	if err != nil {
		return err
	}
	liveOuts := c.outsOf(entry)
	for _, v := range liveOuts {
		if !v.Token {
			return fmt.Errorf("compile: %v: replicated par cannot export scalar %v", n.P, v)
		}
	}
	// Closure: everything the body needs except the index, plus the
	// tokens that must flow back out (for pass-through in the null graph).
	loVal := ift.Val(rep.Sym)
	nSym := newSymbol(c.prog, "__rpn", occam.SymVar)
	nVal := ift.Val(nSym)
	var bodyIns []ift.Value
	for _, v := range bodyEntry.Inputs() {
		if v != loVal {
			bodyIns = append(bodyIns, v)
		}
	}
	closure := dedupeValues(bodyIns, liveOuts)
	ins := append([]ift.Value{loVal, nVal}, closure...)
	base := fmt.Sprintf("rp%d", n.P.Line)

	// Body graph: one instance, index = lo.
	bodyCh := c.openChild(base+"_body", ins)
	if err := c.stmt(bodyCh.gc, n.Body[0]); err != nil {
		return err
	}
	// π_I order, but lo and n forced first: the spawn graph needs them
	// before anything else to get the next forks out early.
	perm := c.inputOrder(bodyCh)
	perm = frontLoad(perm, bodyCh.slots, loVal, nVal)
	bodyCh.chainInputs(perm)
	slots := bodyCh.slots
	bodyCh.sendOutputs(liveOuts)

	// Null graph: pass the tokens through.
	nullCh := c.openChildSlots(base+"_null", slots)
	nullCh.sendOutputs(liveOuts)

	// Spawn graph.
	spawnCh := c.openChildSlots(base+"_spawn", slots)
	sg := spawnCh.gc
	spawnIdx := int32(sg.idx)
	bodyIdx := int32(bodyCh.gc.idx)
	nullIdx := int32(nullCh.gc.idx)
	outSlots := packSlots(liveOuts)

	lo := sg.value(loVal)
	cnt := sg.value(nVal)
	nl := sg.binNode("rshift", sg.binNode("plus", cnt, sg.konst(1)), sg.konst(1))
	nr := sg.binNode("minus", cnt, nl)
	lo2 := sg.binNode("plus", lo, nl)

	targetFor := func(count *dfg.Node) *dfg.Node {
		single := sg.sel(sg.binNode("eq", count, sg.konst(0)), sg.konst(nullIdx), sg.konst(bodyIdx))
		return sg.sel(sg.binNode("gt", count, sg.konst(1)), sg.konst(spawnIdx), single)
	}

	// Each half receives its own (lo, n) and a fresh materialization of
	// the closure slots (token materializations are mutually unordered,
	// so the halves proceed in parallel).
	forkHalf := func(loNode, nNode *dfg.Node, accept func(ift.Value, *dfg.Node)) (*spliceHandles, error) {
		insNodes := make([]*dfg.Node, len(slots))
		for i, sl := range slots {
			switch {
			case len(sl) == 1 && sl[0] == loVal:
				insNodes[i] = loNode
			case len(sl) == 1 && sl[0] == nVal:
				insNodes[i] = nNode
			default:
				insNodes[i] = sg.materializeSlot(sl, nil)
			}
		}
		return c.spliceTo(sg, "rfork", targetFor(nNode), insNodes, outSlots, accept)
	}
	left := map[ift.Value]*dfg.Node{}
	right := map[ift.Value]*dfg.Node{}
	lh, err := forkHalf(lo, nl, func(v ift.Value, node *dfg.Node) { left[v] = node })
	if err != nil {
		return err
	}
	rh, err := forkHalf(lo2, nr, func(v ift.Value, node *dfg.Node) { right[v] = node })
	if err != nil {
		return err
	}
	// Instances in different halves may communicate: feed both halves
	// before awaiting either.
	if lh.firstRecv != nil && rh.lastSend != nil {
		sg.g.AddOrder(lh.firstRecv, rh.lastSend)
	}
	if rh.firstRecv != nil && lh.lastSend != nil {
		sg.g.AddOrder(rh.firstRecv, lh.lastSend)
	}
	// Join the halves' tokens with ∧ and send the combination up: one
	// and-actor per output slot.
	if len(outSlots) > 0 {
		cout := sg.coutNode()
		for _, sl := range outSlots {
			joined := sg.binNode("and", left[sl[0]], right[sl[0]])
			s := sg.addOpImm("send", cout, joined)
			sg.chainOn(cout, s)
		}
	}
	c.infos[sg.idx].Outs = liveOuts

	// Parent: splice to the appropriate root graph for the whole range.
	from, err := gc.expr(rep.From)
	if err != nil {
		return err
	}
	count, err := gc.expr(rep.Count)
	if err != nil {
		return err
	}
	parentTarget := func(countNode *dfg.Node) *dfg.Node {
		single := gc.sel(gc.binNode("eq", countNode, gc.konst(0)), gc.konst(nullIdx), gc.konst(bodyIdx))
		return gc.sel(gc.binNode("gt", countNode, gc.konst(1)), gc.konst(spawnIdx), single)
	}
	insNodes := make([]*dfg.Node, len(slots))
	for i, sl := range slots {
		switch {
		case len(sl) == 1 && sl[0] == loVal:
			insNodes[i] = from
		case len(sl) == 1 && sl[0] == nVal:
			insNodes[i] = count
		default:
			insNodes[i] = gc.materializeSlot(sl, entry.WritesValue)
		}
	}
	_, err = c.spliceTo(gc, "rfork", parentTarget(count), insNodes, outSlots, entryAccept(gc, entry))
	return err
}

// frontLoad moves the slots holding the given values to the front of the
// permutation, preserving the rest of the order.
func frontLoad(perm []int, slots []slot, first ...ift.Value) []int {
	rank := func(idx int) int {
		sl := slots[idx]
		for r, v := range first {
			if len(sl) == 1 && sl[0] == v {
				return r
			}
		}
		return len(first)
	}
	out := make([]int, 0, len(perm))
	for r := 0; r <= len(first); r++ {
		for _, p := range perm {
			if rank(p) == r {
				out = append(out, p)
			}
		}
	}
	return out
}
