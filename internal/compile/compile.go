// Package compile is the back half of the thesis's OCCAM compiler (§4.8):
// it partitions the analyzed program into acyclic data-flow graphs connected
// by the dynamic graph-splicing protocol of §4.2 (the grapher), orders each
// graph's nodes with the priority heuristic of Figure 4.20 (the sequencer),
// and emits indexed-queue-machine object code (the coder and assembler
// stages).
//
// Context partitioning follows Chapter 4 exactly: sequential and parallel
// composition merge into the surrounding graph (Figure 4.9, with ∧-joins
// for parallel control tokens); a new graph — hence a run-time context — is
// created for every proc body, every while-loop iteration (test, body and
// terminator graphs spliced with ifork, Figure 4.6), every if branch
// (selected with the sel actor), and every replicated-par instance (a
// binary-splitting spawn tree of contexts, Figure 4.10). Replicated seq
// desugars to a while loop. Intercontext values travel over rendezvous
// channels in an order chosen by the π_I input-sequencing analysis; only
// values the live-value analysis marks live are sent back.
package compile

import (
	"fmt"

	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
	"queuemachine/internal/isa"
	"queuemachine/internal/occam"
)

// Options selects the compiler's optimizations (Table 6.6 toggles them
// individually to measure their effect).
type Options struct {
	// NoInputOrder disables the π_I input-sequencing optimization;
	// intercontext values are then sent in declaration (IFT set) order.
	NoInputOrder bool
	// NoLiveFilter disables live-value filtering: every construct output
	// is sent back, not just the live ones.
	NoLiveFilter bool
	// NoPriority disables the Figure 4.20 priority heuristic; graphs are
	// sequenced in plain topological (creation) order.
	NoPriority bool
	// NoConstFold disables compile-time constant folding (address
	// arithmetic, Boolean normalization); every constant then flows
	// through the operand queue.
	NoConstFold bool
}

// GraphInfo records one compiled context graph for diagnostics and dumps.
type GraphInfo struct {
	Name string
	G    *dfg.Graph
	// Ins and Outs are the intercontext protocol value lists, in final
	// (π_I-ordered) transfer order, in the graph's own frame.
	Ins, Outs []ift.Value
	// Order is the emitted node sequence.
	Order []*dfg.Node
}

// Artifact is a compiled program.
type Artifact struct {
	Object *isa.Object
	Prog   *occam.Program
	Table  *ift.Table
	Graphs []*GraphInfo
	// Layout maps every vector symbol to its base word address in the
	// static data segment.
	Layout map[*occam.Symbol]int
	// Assembly is the generated assembly text (before assembling).
	Assembly string
}

// VectorBase returns the byte base address of a vector by name (outermost
// declaration wins), for test verification.
func (a *Artifact) VectorBase(name string) (int32, error) {
	var best *occam.Symbol
	for sym := range a.Layout {
		if sym.Name == name && (best == nil || sym.ID < best.ID) {
			best = sym
		}
	}
	if best == nil {
		return 0, fmt.Errorf("compile: no vector %q", name)
	}
	return int32(a.Layout[best] * isa.WordSize), nil
}

// Compile translates OCCAM source text into a queue machine object program.
func Compile(src string, opts Options) (*Artifact, error) {
	prog, err := occam.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileProgram(prog, opts)
}

// CompileProgram compiles an already-parsed program.
func CompileProgram(prog *occam.Program, opts Options) (*Artifact, error) {
	if err := checkStatic(prog); err != nil {
		return nil, err
	}
	desugar(prog)
	table, err := ift.Build(prog)
	if err != nil {
		return nil, err
	}
	c := &compiler{
		prog:   prog,
		table:  table,
		opts:   opts,
		layout: map[*occam.Symbol]int{},
		procs:  map[*occam.Symbol]*procInfo{},
	}
	c.layoutVectors(prog.Body)
	if c.dataWords > maxDataWords {
		return nil, fmt.Errorf("compile: data segment needs %d words, above the %d-word limit", c.dataWords, maxDataWords)
	}
	if err := c.build(); err != nil {
		return nil, err
	}
	obj, asmText, err := c.emit()
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Object:   obj,
		Prog:     prog,
		Table:    table,
		Graphs:   c.infos,
		Layout:   c.layout,
		Assembly: asmText,
	}, nil
}

type procInfo struct {
	graphIdx int
	// ins and outs in the callee frame, final transfer order.
	ins, outs []ift.Value
	// writes marks the callee-frame tokens the body may regenerate by
	// writing, for the call protocol's read/write flavors.
	writes map[ift.Value]bool
}

type compiler struct {
	prog  *occam.Program
	table *ift.Table
	opts  Options

	layout    map[*occam.Symbol]int
	dataWords int

	graphs []*graphCtx
	infos  []*GraphInfo
	procs  map[*occam.Symbol]*procInfo
}

// layoutVectors assigns every vector (word or channel) a static base
// address, walking the whole program in declaration order.
func (c *compiler) layoutVectors(p occam.Process) {
	switch n := p.(type) {
	case *occam.Scope:
		for _, d := range n.Decls {
			switch d.Kind {
			case occam.DeclVar, occam.DeclChan:
				for _, item := range d.Items {
					if item.Sym.IsVector() {
						c.layout[item.Sym] = c.dataWords
						if item.Sym.Kind == occam.SymVecByteVar {
							c.dataWords += (item.Sym.Size + 3) / 4
						} else {
							c.dataWords += item.Sym.Size
						}
					}
				}
			case occam.DeclProc:
				c.layoutVectors(d.Body)
			}
		}
		c.layoutVectors(n.Body)
	case *occam.Seq:
		for _, b := range n.Body {
			c.layoutVectors(b)
		}
	case *occam.Par:
		for _, b := range n.Body {
			c.layoutVectors(b)
		}
	case *occam.If:
		for _, g := range n.Branches {
			c.layoutVectors(g.Body)
		}
	case *occam.While:
		c.layoutVectors(n.Body)
	}
}

// build compiles the whole program, starting from the main graph (graph 0,
// the initial context's instruction sequence).
func (c *compiler) build() error {
	main := c.newGraph("main")
	return c.stmt(main, c.prog.Body)
}

// newGraph opens a fresh context graph.
func (c *compiler) newGraph(name string) *graphCtx {
	gc := &graphCtx{
		c:      c,
		name:   name,
		g:      dfg.New(),
		idx:    len(c.graphs),
		env:    map[ift.Value]*dfg.Node{},
		vecs:   map[*occam.Symbol]*vecState{},
		chains: map[*dfg.Node]*dfg.Node{},
		consts: map[int32]*dfg.Node{},
	}
	c.graphs = append(c.graphs, gc)
	c.infos = append(c.infos, &GraphInfo{Name: name, G: gc.g})
	return gc
}
