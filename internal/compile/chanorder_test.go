package compile

import "testing"

// Regression tests for two rendezvous-scheduling deadlocks the
// differential fuzzer (internal/occamgen, cmd/qfuzz) found. Both are
// instruction-ordering bugs in the context protocol, not channel-matching
// bugs, so each needs a specific shape to fire.

// TestChannelSendAfterAllInputs pins the input-side ordering rule: a
// branch's rendezvous ops must come after all its input receives. Before
// the fix, π_I could schedule the c1 send (which depends only on s4)
// ahead of the s2 input receive; the branch then blocked on the
// rendezvous with the parent still holding s2 in flight, and the sibling
// owning the channel's other end was never fed. Found as qfuzz seed 44.
func TestChannelSendAfterAllInputs(t *testing.T) {
	src := `var v[1], s2, s4, s5:
chan c1:
seq
  s4 := 9
  par
    seq
      c1 ! (- (s4 \/ -17))
      seq r0 = [0 for 2]
        par
          seq
            s2 := r0
    seq
      c1 ? s5
  v[0] := s5
`
	for _, pes := range []int{1, 3} {
		res, art := compileRun(t, src, pes, Options{})
		// s4 \/ -17 = -17 (the OR adds no bits), so s5 = 17.
		if got := vecWord(t, res, art, "v", 0); got != 17 {
			t.Errorf("%d PEs: v[0] = %d, want 17", pes, got)
		}
	}
}

// TestChannelOpsBeforeOutputs pins the output-side ordering rule: a
// branch must finish its rendezvous script before publishing results.
// Before the fix, the receiver could interleave its result send between
// two channel receives; the parent awaits branches in a fixed order, so
// the sender branch (awaited first) blocked on the second rendezvous the
// receiver never reached. Found as qfuzz seed 13.
func TestChannelOpsBeforeOutputs(t *testing.T) {
	src := `var v[3], s1, s3, s4:
chan c2:
seq
  par
    seq
      c2 ! 13
      c2 ! 29
      s1 := -7
    seq
      c2 ? s4
      c2 ? s3
  v[0] := s1
  v[1] := s3
  v[2] := s4
`
	for _, pes := range []int{1, 3} {
		res, art := compileRun(t, src, pes, Options{})
		for i, want := range []int32{-7, 29, 13} {
			if got := vecWord(t, res, art, "v", i); got != want {
				t.Errorf("%d PEs: v[%d] = %d, want %d", pes, i, got, want)
			}
		}
	}
}
