package compile

import (
	"strings"
	"testing"
)

func TestStaticChecks(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"top-level send",
			"chan c:\nc ! 1\n", "no partner"},
		{"top-level receive",
			"chan c:\nvar x:\nc ? x\n", "no partner"},
		{"top-level op in seq",
			"chan c:\nvar x:\nseq\n  x := 1\n  c ! x\n", "no partner"},
		{"data segment cap",
			"var a[1048576], b[1048576]:\nskip\n", "word limit"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want %q", c.name, err, c.want)
		}
	}

	// The check flags only the provable subset: conditional or replicated
	// contexts and proc bodies are left to run-time detection, and ops
	// under a par are legal.
	ok := []struct{ name, src string }{
		{"under if",
			"chan c:\nvar x:\nif\n  x = 1\n    c ! 1\n"},
		{"under while",
			"chan c:\nvar x:\nwhile x > 0\n  c ? x\n"},
		{"under replicated seq",
			"chan c:\nvar x:\nseq i = [0 for 0]\n  c ! i\n"},
		{"in proc body",
			"chan c:\nproc p() =\n  c ! 1\nvar x:\npar\n  p()\n  c ? x\n"},
		{"paired under par",
			"chan c:\nvar x:\npar\n  c ! 7\n  c ? x\n"},
	}
	for _, c := range ok {
		if _, err := Compile(c.src, Options{}); err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
	}
}
