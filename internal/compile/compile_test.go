package compile

import (
	"strings"
	"testing"

	"queuemachine/internal/sim"
)

// compileRun compiles a source program and executes it on numPEs simulated
// processing elements.
func compileRun(t *testing.T, src string, numPEs int, opts Options) (*sim.Result, *Artifact) {
	t.Helper()
	art, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	res, err := sim.Run(art.Object, numPEs, sim.DefaultParams())
	if err != nil {
		t.Fatalf("Run: %v\nassembly:\n%s", err, art.Assembly)
	}
	return res, art
}

// vecWord reads word i of the named vector from the final memory.
func vecWord(t *testing.T, res *sim.Result, art *Artifact, name string, i int) int32 {
	t.Helper()
	base, err := art.VectorBase(name)
	if err != nil {
		t.Fatal(err)
	}
	idx := int(base)/4 + i
	if idx >= len(res.Data) {
		t.Fatalf("vector %s[%d] outside data segment", name, i)
	}
	return res.Data[idx]
}

// allOpts exercises every compiler configuration of Table 6.6.
var allOpts = map[string]Options{
	"default":        {},
	"no-input-order": {NoInputOrder: true},
	"no-live-filter": {NoLiveFilter: true},
	"no-priority":    {NoPriority: true},
	"no-const-fold":  {NoConstFold: true},
	"all-off":        {NoInputOrder: true, NoLiveFilter: true, NoPriority: true, NoConstFold: true},
}

func TestStraightLine(t *testing.T) {
	src := `var v[2], x:
seq
  x := 2 + 3 * 4
  v[0] := x
  v[1] := x - 20
`
	for name, opts := range allOpts {
		res, art := compileRun(t, src, 1, opts)
		if got := vecWord(t, res, art, "v", 0); got != 14 {
			t.Errorf("%s: v[0] = %d, want 14", name, got)
		}
		if got := vecWord(t, res, art, "v", 1); got != -6 {
			t.Errorf("%s: v[1] = %d, want -6", name, got)
		}
	}
}

func TestVectorReadWrite(t *testing.T) {
	src := `var v[4], i:
seq
  v[0] := 5
  v[1] := v[0] + 1
  i := 2
  v[i] := v[1] * v[0]
  v[3] := v[i] - 1
`
	res, art := compileRun(t, src, 1, Options{})
	want := []int32{5, 6, 30, 29}
	for i, w := range want {
		if got := vecWord(t, res, art, "v", i); got != w {
			t.Errorf("v[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	src := `var v[1], sum, k:
seq
  sum := 0
  k := 1
  while k <= 10
    seq
      sum := sum + k
      k := k + 1
  v[0] := sum
`
	for name, opts := range allOpts {
		res, art := compileRun(t, src, 2, opts)
		if got := vecWord(t, res, art, "v", 0); got != 55 {
			t.Errorf("%s: sum = %d, want 55", name, got)
		}
	}
}

func TestWhileFalseOnEntry(t *testing.T) {
	src := `var v[1], k:
seq
  v[0] := 7
  k := 10
  while k < 10
    seq
      v[0] := 0
      k := k + 1
`
	res, art := compileRun(t, src, 1, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 7 {
		t.Errorf("v[0] = %d, want 7 (loop body must not run)", got)
	}
}

func TestIfBranches(t *testing.T) {
	src := `var v[3], x:
seq
  x := 5
  if
    x < 3
      v[0] := 1
    x < 10
      v[0] := 2
    x >= 10
      v[0] := 3
  if
    x = 99
      v[1] := 1
  v[2] := v[0] + 10
`
	for name, opts := range allOpts {
		res, art := compileRun(t, src, 2, opts)
		if got := vecWord(t, res, art, "v", 0); got != 2 {
			t.Errorf("%s: v[0] = %d, want 2", name, got)
		}
		if got := vecWord(t, res, art, "v", 1); got != 0 {
			t.Errorf("%s: v[1] = %d, want 0 (no guard true => skip)", name, got)
		}
		if got := vecWord(t, res, art, "v", 2); got != 12 {
			t.Errorf("%s: v[2] = %d, want 12", name, got)
		}
	}
}

func TestIfValueFlow(t *testing.T) {
	// Values assigned in branches must flow back to the parent context.
	src := `var v[1], x, y:
seq
  x := 4
  if
    x > 0
      y := x * 10
    x <= 0
      y := 0 - x
  v[0] := y + 2
`
	res, art := compileRun(t, src, 2, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 42 {
		t.Errorf("v[0] = %d, want 42", got)
	}
}

func TestProcValueAndVarParams(t *testing.T) {
	src := `var v[1], a, b:
proc addmul(value x, value y, var out) =
  out := (x + y) * 2
seq
  a := 3
  addmul(a, 4, b)
  v[0] := b
`
	for name, opts := range allOpts {
		res, art := compileRun(t, src, 2, opts)
		if got := vecWord(t, res, art, "v", 0); got != 14 {
			t.Errorf("%s: v[0] = %d, want 14", name, got)
		}
	}
}

func TestProcVecParam(t *testing.T) {
	src := `var v[4], w[4]:
proc fill(vec d, value base) =
  var k:
  seq
    k := 0
    while k < 4
      seq
        d[k] := base + k
        k := k + 1
seq
  fill(v, 10)
  fill(w, 20)
  v[0] := v[0] + w[3]
`
	res, art := compileRun(t, src, 2, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 10+23 {
		t.Errorf("v[0] = %d, want 33", got)
	}
	if got := vecWord(t, res, art, "w", 2); got != 22 {
		t.Errorf("w[2] = %d, want 22", got)
	}
}

func TestRecursion(t *testing.T) {
	// Factorial via the Figure 4.5 function-call mechanism.
	src := `var v[1], r:
proc fact(value n, var out) =
  var sub:
  if
    n <= 1
      out := 1
    n > 1
      seq
        fact(n - 1, sub)
        out := n * sub
seq
  fact(6, r)
  v[0] := r
`
	res, art := compileRun(t, src, 4, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 720 {
		t.Errorf("6! = %d, want 720", got)
	}
	if res.Kernel.ContextsCreated < 6 {
		t.Errorf("contexts = %d; recursion should create one per level", res.Kernel.ContextsCreated)
	}
}

func TestPlainParMerged(t *testing.T) {
	// Pure-computation branches merge into one graph (Figure 4.9).
	src := `var v[2], a, b:
seq
  par
    a := 2 + 3
    b := 4 * 5
  v[0] := a
  v[1] := b
`
	res, art := compileRun(t, src, 2, Options{})
	if vecWord(t, res, art, "v", 0) != 5 || vecWord(t, res, art, "v", 1) != 20 {
		t.Errorf("par results wrong: %d %d", vecWord(t, res, art, "v", 0), vecWord(t, res, art, "v", 1))
	}
}

func TestPlainParChannels(t *testing.T) {
	// Communicating branches splice into separate contexts and rendezvous
	// over the declared channel.
	src := `var v[1], x:
chan c:
seq
  par
    c ! 6 * 7
    c ? x
  v[0] := x
`
	for _, pes := range []int{1, 2, 4} {
		res, art := compileRun(t, src, pes, Options{})
		if got := vecWord(t, res, art, "v", 0); got != 42 {
			t.Errorf("%d PEs: v[0] = %d, want 42", pes, got)
		}
	}
}

func TestReplicatedSeq(t *testing.T) {
	// The Figure 4.6 iteration example.
	src := `var v[1], sum:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  v[0] := sum
`
	res, art := compileRun(t, src, 2, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestReplicatedPar(t *testing.T) {
	// The Figure 4.10 dynamic process creation example.
	src := `def n = 10:
var v[n]:
seq
  par i = [0 for n]
    var square:
    seq
      square := i * i
      v[i] := square
  v[0] := v[9] + v[1]
`
	for _, pes := range []int{1, 2, 4, 8} {
		res, art := compileRun(t, src, pes, Options{})
		if got := vecWord(t, res, art, "v", 0); got != 82 {
			t.Errorf("%d PEs: v[0] = %d, want 82", pes, got)
		}
		for i := 1; i < 10; i++ {
			if got := vecWord(t, res, art, "v", i); got != int32(i*i) {
				t.Errorf("%d PEs: v[%d] = %d, want %d", pes, i, got, i*i)
			}
		}
	}
}

func TestReplicatedParZeroAndOne(t *testing.T) {
	src := `var v[4], n:
seq
  n := 0
  par i = [0 for n]
    v[i] := 9
  n := 1
  par i = [2 for n]
    v[i] := 9
  v[3] := 1
`
	res, art := compileRun(t, src, 2, Options{})
	if vecWord(t, res, art, "v", 0) != 0 || vecWord(t, res, art, "v", 1) != 0 {
		t.Error("zero-count par ran its body")
	}
	if got := vecWord(t, res, art, "v", 2); got != 9 {
		t.Errorf("v[2] = %d, want 9", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `var v[1], i, j, acc:
seq
  acc := 0
  i := 0
  while i < 4
    seq
      j := 0
      while j < 3
        seq
          acc := acc + (i * j)
          j := j + 1
      i := i + 1
  v[0] := acc
`
	res, art := compileRun(t, src, 2, Options{})
	want := int32(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			want += int32(i * j)
		}
	}
	if got := vecWord(t, res, art, "v", 0); got != want {
		t.Errorf("acc = %d, want %d", got, want)
	}
}

func TestChannelThroughProc(t *testing.T) {
	src := `var v[1], x:
chan c:
proc produce(chan out, value n) =
  out ! n * 2
seq
  par
    produce(c, 21)
    c ? x
  v[0] := x
`
	res, art := compileRun(t, src, 2, Options{})
	if got := vecWord(t, res, art, "v", 0); got != 42 {
		t.Errorf("v[0] = %d, want 42", got)
	}
}

func TestDeterministicCompile(t *testing.T) {
	src := `var v[1], sum:
seq
  sum := 0
  seq k = [1 for 5]
    sum := sum + k
  v[0] := sum
`
	a1, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Assembly != a2.Assembly {
		t.Error("compilation is not deterministic")
	}
}

func TestAssemblyDump(t *testing.T) {
	_, art := compileRun(t, `var v[1]:
v[0] := 42
`, 1, Options{})
	if !strings.Contains(art.Assembly, ".graph main") {
		t.Errorf("assembly:\n%s", art.Assembly)
	}
	if !strings.Contains(art.Assembly, "store") {
		t.Error("no store emitted")
	}
}

func TestVectorBaseErrors(t *testing.T) {
	_, art := compileRun(t, `var v[1]:
v[0] := 1
`, 1, Options{})
	if _, err := art.VectorBase("nothere"); err == nil {
		t.Error("missing vector resolved")
	}
}

// TestByteVectors compiles the Figure 4.19 example — byte-vector accesses
// sequenced under the multiple-readers/single-writer discipline — and
// checks fchb/storb semantics end to end, including byte truncation.
func TestByteVectors(t *testing.T) {
	src := `var c[byte 3], out[4], w, x, y, z:
seq
  c[byte 0] := 65
  c[byte 1] := 66
  c[byte 2] := 67
  w := 300
  seq
    x := c[byte 0]
    y := c[byte 1]
    z := c[byte 2]
    c[byte 0] := w
  out[0] := x
  out[1] := y
  out[2] := z
  out[3] := c[byte 0]
`
	for name, opts := range allOpts {
		res, art := compileRun(t, src, 2, opts)
		want := []int32{65, 66, 67, 300 & 0xff}
		for i, w := range want {
			if got := vecWord(t, res, art, "out", i); got != w {
				t.Errorf("%s: out[%d] = %d, want %d", name, i, got, w)
			}
		}
	}
}

// TestByteVectorPacking checks the in-memory layout: three bytes pack into
// one word, little-endian.
func TestByteVectorPacking(t *testing.T) {
	src := `var c[byte 4]:
seq
  c[byte 0] := 1
  c[byte 1] := 2
  c[byte 2] := 3
  c[byte 3] := 4
`
	res, art := compileRun(t, src, 1, Options{})
	base, err := art.VectorBase("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Data[base/4]; got != 0x04030201 {
		t.Errorf("packed word = %#x, want 0x04030201", got)
	}
}

// TestByteVectorErrors checks the byte-subscript agreement rules.
func TestByteVectorErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"var c[byte 3]:\nc[0] := 1\n", "needs a [byte"},
		{"var v[3]:\nv[byte 0] := 1\n", "not a byte vector"},
		{"chan c[byte 3]:\nskip\n", "var vectors only"},
		{"var x[byte 0]:\nskip\n", "non-positive"},
	}
	for _, c := range cases {
		if _, err := Compile(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want %q", c.src, err, c.want)
		}
	}
}
