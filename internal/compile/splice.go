package compile

import (
	"fmt"

	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
	"queuemachine/internal/occam"
)

// childGraph is a context graph during protocol construction. Its protocol
// values are organized into transfer slots (see slots.go); the receive for
// a token slot delivers the combined completion token of every member.
type childGraph struct {
	gc       *graphCtx
	slots    []slot
	recvs    []*dfg.Node // aligned with slots
	cin      *dfg.Node
	lastRecv *dfg.Node
}

// openChild creates a context graph that begins by receiving the given
// values from its in channel, one rendezvous per slot. The receives are
// left unchained so the π_I analysis can pick their final order after the
// body is built; use openChildSlots when the order is already fixed.
func (c *compiler) openChild(name string, ins []ift.Value) *childGraph {
	return c.openChildPacked(name, packSlots(ins), false)
}

// openChildSlots creates a context graph whose input slots (and their
// order) are fixed, chaining the receives immediately.
func (c *compiler) openChildSlots(name string, slots []slot) *childGraph {
	return c.openChildPacked(name, slots, true)
}

func (c *compiler) openChildPacked(name string, slots []slot, chain bool) *childGraph {
	gc := c.newGraph(name)
	ch := &childGraph{gc: gc, slots: slots}
	if len(slots) > 0 {
		ch.cin = gc.cinNode()
		for _, sl := range slots {
			r := gc.g.AddOp("recv", ch.cin)
			ch.recvs = append(ch.recvs, r)
			gc.inRecvs = append(gc.inRecvs, r)
			for _, v := range sl {
				gc.acceptValue(v, r)
			}
		}
	}
	if chain {
		ch.chainInputs(identityPerm(len(slots)))
	}
	return ch
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// inputOrder decides the transfer order of a child's input slots: the π_I
// order (descending downstream cost, the §4.5 heuristic) unless disabled.
// It returns a permutation of slot indices.
func (c *compiler) inputOrder(ch *childGraph) []int {
	perm := identityPerm(len(ch.slots))
	if c.opts.NoInputOrder || len(ch.slots) < 2 {
		return perm
	}
	a := ch.gc.g.Analyze()
	weight := make([]int, len(ch.slots))
	for i, r := range ch.recvs {
		weight[i] = a.DescendantCost(r)
	}
	// Stable insertion sort by descending weight.
	for i := 1; i < len(perm); i++ {
		j := i
		for j > 0 && weight[perm[j]] > weight[perm[j-1]] {
			perm[j], perm[j-1] = perm[j-1], perm[j]
			j--
		}
	}
	return perm
}

// chainInputs fixes the receive order of a child graph by the given slot
// permutation.
func (ch *childGraph) chainInputs(perm []int) {
	slots := make([]slot, len(perm))
	recvs := make([]*dfg.Node, len(perm))
	for i, p := range perm {
		slots[i], recvs[i] = ch.slots[p], ch.recvs[p]
	}
	ch.slots, ch.recvs = slots, recvs
	var prev *dfg.Node
	for _, r := range ch.recvs {
		if prev != nil {
			ch.gc.g.AddOrder(r, prev)
		}
		prev = r
	}
	ch.lastRecv = prev
	ch.gc.c.infos[ch.gc.idx].Ins = flattenSlots(ch.slots)
}

// sendOutputs emits the child's result sends on its out channel: one
// rendezvous per slot, the token slot carrying the graph's combined
// completion token. The first send carries hard order arcs after the last
// input receive and after the tail of the K chain. The receive arc exists
// because the parent holds both channel ends and sends every input before
// receiving any output, so a child answering early would deadlock against
// it. The K-chain arc exists because the parent awaits its children in a
// fixed order: a child publishing results while a program-channel
// rendezvous of its own is still pending can block a sibling the
// earlier-awaited child depends on (the channel's other end), wedging all
// three.
func (ch *childGraph) sendOutputs(outs []ift.Value) {
	gc := ch.gc
	outSlots := packSlots(outs)
	if len(outSlots) > 0 {
		cout := gc.coutNode()
		first := true
		for _, sl := range outSlots {
			s := gc.addOpImm("send", cout, gc.materializeSlot(sl, nil))
			gc.chainOn(cout, s)
			if first {
				if ch.lastRecv != nil {
					gc.g.AddOrder(s, ch.lastRecv)
				}
				if gc.lastK != nil {
					gc.g.AddOrder(s, gc.lastK)
				}
			}
			first = false
		}
	}
	gc.c.infos[gc.idx].Outs = outs
}

// spliceHandles exposes the boundary operations of one splice, so callers
// can add cross-splice ordering constraints (parallel branches must all be
// fed before any is awaited, or communicating siblings deadlock).
type spliceHandles struct {
	lastSend  *dfg.Node
	firstRecv *dfg.Node
}

// spliceTo builds the parent side of the protocol: fork the target graph,
// send one value node per input slot (in slot order), and receive the
// output slots, invoking accept for every member value of each received
// slot. The first receive carries a hard order arc after the last send —
// the receive would otherwise deadlock the context against its own unfed
// child.
//
// target is a node holding the graph index (a constant or a sel chain);
// forkOp is "rfork" or "ifork"; an ifork parent cannot receive (the out
// channel is inherited), so outs must be empty.
func (c *compiler) spliceTo(gc *graphCtx, forkOp string, target *dfg.Node,
	insNodes []*dfg.Node, outSlots []slot, accept func(ift.Value, *dfg.Node)) (*spliceHandles, error) {

	h := &spliceHandles{}
	fork := gc.addOpImm(forkOp, target)
	if forkOp == "rfork" {
		fork.Results = 2
	}
	if len(insNodes) > 0 {
		cin := gc.g.AddOpEdges("id", dfg.Edge{From: fork, Port: 0})
		for _, vn := range insNodes {
			s := gc.addOpImm("send", cin, vn)
			gc.chainOn(cin, s)
			h.lastSend = s
		}
	}
	if len(outSlots) > 0 {
		if forkOp != "rfork" {
			return nil, fmt.Errorf("compile: graph %s: ifork splice cannot receive results", gc.name)
		}
		cout := gc.g.AddOpEdges("id", dfg.Edge{From: fork, Port: 1})
		for _, sl := range outSlots {
			r := gc.g.AddOp("recv", cout)
			gc.chainOn(cout, r)
			if h.firstRecv == nil {
				h.firstRecv = r
			}
			for _, v := range sl {
				accept(v, r)
			}
		}
		if h.firstRecv != nil && h.lastSend != nil {
			gc.g.AddOrder(h.firstRecv, h.lastSend)
		}
	}
	return h, nil
}

// parentSlotNodes materializes one node per slot in the parent's frame,
// with token flavors taken from the construct entry.
func parentSlotNodes(gc *graphCtx, slots []slot, entry *ift.Entry) []*dfg.Node {
	nodes := make([]*dfg.Node, len(slots))
	for i, sl := range slots {
		nodes[i] = gc.materializeSlot(sl, entry.WritesValue)
	}
	return nodes
}

// entryAccept builds the parent-side accept function for a construct: data
// values enter the environment, tokens update the vector/IO ordering state
// with the construct's read/write flavor.
func entryAccept(gc *graphCtx, entry *ift.Entry) func(ift.Value, *dfg.Node) {
	return func(v ift.Value, node *dfg.Node) {
		gc.acceptValueFor(v, node, entry.WritesValue(v))
	}
}

// sel builds the select actor sel(c, a, b) = (a ∧ c) ∨ (b ∧ ¬c), assuming a
// canonical Boolean c; callers normalize with ne(c, 0) first.
func (gc *graphCtx) sel(cond, a, b *dfg.Node) *dfg.Node {
	if v, ok := gc.constOf(cond); ok {
		if v != 0 {
			return a
		}
		return b
	}
	and1 := gc.binNode("and", a, cond)
	notc := gc.g.AddOp("not", cond)
	and2 := gc.binNode("and", b, notc)
	return gc.binNode("or", and1, and2)
}

// normalizeBool forces a word to the canonical all-ones/all-zeros Boolean.
func (gc *graphCtx) normalizeBool(n *dfg.Node) *dfg.Node {
	if v, ok := gc.constOf(n); ok {
		if v != 0 {
			return gc.konst(-1)
		}
		return gc.konst(0)
	}
	return gc.binNode("ne", n, gc.konst(0))
}

// outsOf applies the live-value filtering policy.
func (c *compiler) outsOf(e *ift.Entry) []ift.Value {
	if c.opts.NoLiveFilter {
		return e.Outputs()
	}
	return e.LiveOutputs()
}

// ---------------------------------------------------------------------------
// while: three graphs per loop (§4.2, Figure 4.6) — the iteration graph
// receives the loop state, evaluates the condition and iforks either the
// body graph or the terminator; the body runs one iteration and iforks the
// next test; the terminator returns the live values to the original caller
// through the inherited out channel.

func (c *compiler) whileStmt(gc *graphCtx, n *occam.While) error {
	entry, err := c.table.Entry(n)
	if err != nil {
		return err
	}
	liveOuts := c.outsOf(entry)
	loopVars := dedupeValues(entry.Inputs(), liveOuts)
	base := fmt.Sprintf("w%d", n.P.Line)

	testGC := c.newGraph(base + "_test")
	bodyCh := c.openChild(base+"_body", loopVars)

	// Body first, so π_I can weigh the real computation.
	if err := c.stmt(bodyCh.gc, n.Body); err != nil {
		return err
	}
	bodyCh.chainInputs(c.inputOrder(bodyCh))
	slots := bodyCh.slots
	// Body tail: ifork the next test and forward the updated loop state.
	bodyIns := make([]*dfg.Node, len(slots))
	for i, sl := range slots {
		bodyIns[i] = bodyCh.gc.materializeSlot(sl, nil)
	}
	if _, err := c.spliceTo(bodyCh.gc, "ifork", bodyCh.gc.konst(int32(testGC.idx)), bodyIns, nil, nil); err != nil {
		return err
	}

	// Test graph: receive the state, evaluate the condition, ifork the
	// selected continuation with the same state.
	testCh := &childGraph{gc: testGC, slots: slots}
	if len(slots) > 0 {
		testCh.cin = testGC.cinNode()
		for _, sl := range slots {
			r := testGC.g.AddOp("recv", testCh.cin)
			testCh.recvs = append(testCh.recvs, r)
			testGC.inRecvs = append(testGC.inRecvs, r)
			for _, v := range sl {
				testGC.acceptValue(v, r)
			}
		}
		testCh.chainInputs(identityPerm(len(slots)))
	}
	cond, err := testGC.expr(n.Cond)
	if err != nil {
		return err
	}
	exitCh := c.openChildSlots(base+"_exit", slots)
	target := testGC.sel(testGC.normalizeBool(cond),
		testGC.konst(int32(bodyCh.gc.idx)), testGC.konst(int32(exitCh.gc.idx)))
	testIns := make([]*dfg.Node, len(slots))
	for i, sl := range slots {
		testIns[i] = testGC.materializeSlot(sl, nil)
	}
	if _, err := c.spliceTo(testGC, "ifork", target, testIns, nil, nil); err != nil {
		return err
	}

	// Terminator: return the live values on the inherited out channel.
	exitCh.sendOutputs(liveOuts)

	// Parent: rfork the first test, send the state, await the live values.
	_, err = c.spliceTo(gc, "rfork", gc.konst(int32(testGC.idx)),
		parentSlotNodes(gc, slots, entry), packSlots(liveOuts), entryAccept(gc, entry))
	return err
}

// ---------------------------------------------------------------------------
// if: one graph per branch plus a skip graph; the parent evaluates every
// guard, selects the branch graph with a sel chain, and splices to it.

func (c *compiler) ifStmt(gc *graphCtx, n *occam.If) error {
	entry, err := c.table.Entry(n)
	if err != nil {
		return err
	}
	liveOuts := c.outsOf(entry)
	ins := dedupeValues(entry.Inputs(), liveOuts)
	base := fmt.Sprintf("if%d", n.P.Line)

	var branches []*childGraph
	for k, g := range n.Branches {
		ch := c.openChild(fmt.Sprintf("%s_b%d", base, k), ins)
		if err := c.stmt(ch.gc, g.Body); err != nil {
			return err
		}
		branches = append(branches, ch)
	}

	// One shared transfer order, derived from the first branch's graph
	// (every branch packed the same ins, so the permutation applies to
	// all).
	perm := c.inputOrder(branches[0])
	for _, ch := range branches {
		ch.chainInputs(perm)
		ch.sendOutputs(liveOuts)
	}
	slots := branches[0].slots
	skip := c.openChildSlots(base+"_skip", slots)
	skip.sendOutputs(liveOuts)

	// Parent: guards in order; first true one wins; none true => skip.
	target := gc.konst(int32(skip.gc.idx))
	for k := len(n.Branches) - 1; k >= 0; k-- {
		cond, err := gc.expr(n.Branches[k].Cond)
		if err != nil {
			return err
		}
		target = gc.sel(gc.normalizeBool(cond), gc.konst(int32(branches[k].gc.idx)), target)
	}
	_, err = c.spliceTo(gc, "rfork", target,
		parentSlotNodes(gc, slots, entry), packSlots(liveOuts), entryAccept(gc, entry))
	return err
}

// ---------------------------------------------------------------------------
// proc call: the callee compiles once (pseudo-static code sharing); every
// call site rforks it, sends the arguments and free values, and receives
// the copy-outs. Recursion works because the callee's graph index and
// transfer orders are fixed before its body is compiled; for the same
// reason proc inputs use the canonical order rather than π_I.

func (c *compiler) procFor(sym *occam.Symbol) (*procInfo, error) {
	if info, ok := c.procs[sym]; ok {
		return info, nil
	}
	d := sym.Proc
	sum := c.table.Summary[sym]
	info := &procInfo{}
	var ins, outs []ift.Value
	for _, p := range d.Param {
		ins = append(ins, ift.Val(p.Sym))
		if p.Mode == occam.ParamVec {
			// The vector's control token travels with its address,
			// ordering the callee's accesses after the caller's.
			ins = append(ins, ift.VecToken(p.Sym))
		}
	}
	ins = dedupeValues(ins, sum.FreeIn)
	for _, p := range d.Param {
		switch p.Mode {
		case occam.ParamVar:
			outs = append(outs, ift.Val(p.Sym))
		case occam.ParamVec:
			outs = append(outs, ift.VecToken(p.Sym))
		}
	}
	outs = dedupeValues(outs, sum.FreeOut)
	info.ins, info.outs = ins, outs
	info.writes = sum.WritesToken
	ch := c.openChildSlots("proc_"+sym.Name, packSlots(ins))
	info.graphIdx = ch.gc.idx
	c.procs[sym] = info
	if err := c.stmt(ch.gc, d.Body); err != nil {
		return nil, err
	}
	ch.sendOutputs(outs)
	return info, nil
}

func (c *compiler) callStmt(gc *graphCtx, n *occam.Call) error {
	callee := n.Sym
	info, err := c.procFor(callee)
	if err != nil {
		return err
	}
	paramOf := map[*occam.Symbol]int{}
	for i, p := range callee.Proc.Param {
		paramOf[p.Sym] = i
	}
	// translate maps a callee-frame token to the caller's frame.
	translate := func(v ift.Value) ift.Value {
		if v.Sym != nil && v.Token {
			if pi, ok := paramOf[v.Sym]; ok {
				arg := n.Args[pi].(*occam.VarRef)
				return ift.VecToken(arg.Sym)
			}
		}
		return v
	}
	// Build one node per input slot.
	slots := packSlots(info.ins)
	insNodes := make([]*dfg.Node, len(slots))
	for i, sl := range slots {
		if len(sl) == 1 && !sl[0].Token {
			v := sl[0]
			if pi, ok := paramOf[v.Sym]; v.Sym != nil && ok {
				node, err := c.argNode(gc, callee.Proc.Param[pi], n.Args[pi])
				if err != nil {
					return fmt.Errorf("compile: %v: %w", n.P, err)
				}
				insNodes[i] = node
			} else {
				insNodes[i] = gc.value(v)
			}
			continue
		}
		// Token slot: translate members, flavored by the callee's
		// writes.
		translated := make([]ift.Value, len(sl))
		flavor := map[ift.Value]bool{}
		for j, v := range sl {
			translated[j] = translate(v)
			if info.writes[v] {
				flavor[translated[j]] = true
			}
		}
		insNodes[i] = gc.materializeTokenGroup(translated, func(tv ift.Value) bool { return flavor[tv] })
	}
	accept := func(v ift.Value, node *dfg.Node) {
		if v.Sym != nil {
			if pi, ok := paramOf[v.Sym]; ok {
				arg := n.Args[pi].(*occam.VarRef)
				if v.Token {
					gc.acceptValueFor(ift.VecToken(arg.Sym), node, info.writes[v])
				} else {
					gc.env[ift.Val(arg.Sym)] = node
				}
				return
			}
		}
		gc.acceptValueFor(v, node, info.writes[v])
	}
	_, err = c.spliceTo(gc, "rfork", gc.konst(int32(info.graphIdx)), insNodes, packSlots(info.outs), accept)
	return err
}

// argNode builds the value sent for one call argument.
func (c *compiler) argNode(gc *graphCtx, param *occam.Param, arg occam.Expr) (*dfg.Node, error) {
	switch param.Mode {
	case occam.ParamValue:
		return gc.expr(arg)
	case occam.ParamVar:
		ref := arg.(*occam.VarRef)
		return gc.value(ift.Val(ref.Sym)), nil
	case occam.ParamVec:
		ref := arg.(*occam.VarRef)
		if ref.Sym.Kind == occam.SymParamVec {
			// Forwarding our own vec parameter: pass its address on.
			return gc.value(ift.Val(ref.Sym)), nil
		}
		base, ok := c.layout[ref.Sym]
		if !ok {
			return nil, fmt.Errorf("vector %q has no layout", ref.Name)
		}
		return gc.konst(int32(base * 4)), nil
	case occam.ParamChan:
		return gc.chanValue(arg.(*occam.VarRef))
	}
	return nil, fmt.Errorf("unknown parameter mode")
}
