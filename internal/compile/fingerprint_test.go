package compile

import "testing"

func TestFingerprintDeterministic(t *testing.T) {
	const src = "var v[1]:\nseq\n  v[0] := 1\n"
	a := Fingerprint(src, Options{})
	b := Fingerprint(src, Options{})
	if a != b {
		t.Errorf("identical inputs hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("fingerprint length = %d, want 64 hex chars", len(a))
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	const src = "var v[1]:\nseq\n  v[0] := 1\n"
	seen := map[string]string{}
	add := func(label, fp string) {
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[fp] = label
	}
	add("base", Fingerprint(src, Options{}))
	add("source change", Fingerprint(src+" ", Options{}))
	add("no-input-order", Fingerprint(src, Options{NoInputOrder: true}))
	add("no-live-filter", Fingerprint(src, Options{NoLiveFilter: true}))
	add("no-priority", Fingerprint(src, Options{NoPriority: true}))
	add("no-const-fold", Fingerprint(src, Options{NoConstFold: true}))
}
