package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// fingerprintVersion is folded into every fingerprint so that compiler
// changes which alter generated code can invalidate cached artifacts by
// bumping one constant.
const fingerprintVersion = "queuemachine/compile/1"

// Fingerprint is the content address of a compilation: the hex SHA-256 of
// the source text and the full option set. Two compilations with equal
// fingerprints produce interchangeable artifacts, so the fingerprint is a
// safe cache key for compiled objects.
func Fingerprint(src string, opts Options) string {
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	// Length-prefix the source so no option encoding can collide with
	// source bytes.
	fmt.Fprintf(h, "\x00%d\x00", len(src))
	io.WriteString(h, src)
	fmt.Fprintf(h, "\x00opts:%t,%t,%t,%t",
		opts.NoInputOrder, opts.NoLiveFilter, opts.NoPriority, opts.NoConstFold)
	return hex.EncodeToString(h.Sum(nil))
}
