package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// fingerprintVersion is folded into every fingerprint so that compiler
// changes which alter generated code can invalidate cached artifacts by
// bumping one constant.
const fingerprintVersion = "queuemachine/compile/1"

// objectFormatVersion names the generation of the isa.Object wire shape a
// persisted artifact was written with. Bump it when the object format
// changes incompatibly; together with fingerprintVersion it makes
// ToolchainHash reject stale on-disk artifacts after either the compiler
// or the object format moves.
const objectFormatVersion = "queuemachine/isa-object/1"

// ToolchainHash identifies the compiler generation and object format as
// one opaque version string. Disk-persisted artifact caches key their
// storage by it: an artifact written under a different toolchain hash is
// unreadable by construction, so a binary upgrade can never deserialize a
// stale format — it just recompiles and rewrites.
func ToolchainHash() string {
	h := sha256.Sum256([]byte("toolchain\x00" + fingerprintVersion + "\x00" + objectFormatVersion))
	return hex.EncodeToString(h[:])
}

// Fingerprint is the content address of a compilation: the hex SHA-256 of
// the source text and the full option set. Two compilations with equal
// fingerprints produce interchangeable artifacts, so the fingerprint is a
// safe cache key for compiled objects.
func Fingerprint(src string, opts Options) string {
	h := sha256.New()
	io.WriteString(h, fingerprintVersion)
	// Length-prefix the source so no option encoding can collide with
	// source bytes.
	fmt.Fprintf(h, "\x00%d\x00", len(src))
	io.WriteString(h, src)
	fmt.Fprintf(h, "\x00opts:%t,%t,%t,%t",
		opts.NoInputOrder, opts.NoLiveFilter, opts.NoPriority, opts.NoConstFold)
	return hex.EncodeToString(h.Sum(nil))
}
