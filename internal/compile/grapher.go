package compile

import (
	"fmt"

	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
	"queuemachine/internal/isa"
	"queuemachine/internal/occam"
)

// vecState tracks one vector's access ordering inside a graph under the
// multiple-readers/single-writer discipline of §4.6 (Figure 4.19): reads
// order after the last write; a write orders after the last write and all
// reads since.
type vecState struct {
	lastWrite *dfg.Node
	readers   []*dfg.Node
}

// graphCtx is one context graph under construction.
type graphCtx struct {
	c    *compiler
	name string
	g    *dfg.Graph
	idx  int

	// env maps program values (variables, channel ids, vector base
	// addresses of vec parameters) to the node currently producing them.
	env map[ift.Value]*dfg.Node
	// vecs tracks vector access ordering.
	vecs map[*occam.Symbol]*vecState
	// lastK is the global control token holder (channel I/O, real time).
	lastK *dfg.Node
	// chains tracks the last send/recv issued on each channel-value node,
	// so that protocol traffic on one channel keeps its order (the K1/K2
	// tokens of Figure 4.3).
	chains map[*dfg.Node]*dfg.Node
	// consts dedups constant nodes.
	consts map[int32]*dfg.Node

	// inRecvs lists the input recv nodes (for late π_I chaining).
	inRecvs []*dfg.Node
}

// konst returns a constant node.
func (gc *graphCtx) konst(v int32) *dfg.Node {
	if n, ok := gc.consts[v]; ok {
		return n
	}
	n := gc.g.AddOp("const")
	n.Aux = v
	gc.consts[v] = n
	return n
}

// cinNode and coutNode read the context's channel registers.
func (gc *graphCtx) cinNode() *dfg.Node  { return gc.g.AddOp("cin") }
func (gc *graphCtx) coutNode() *dfg.Node { return gc.g.AddOp("cout") }

// vec returns the ordering state of a vector, creating it on first touch.
func (gc *graphCtx) vec(sym *occam.Symbol) *vecState {
	st, ok := gc.vecs[sym]
	if !ok {
		st = &vecState{}
		gc.vecs[sym] = st
	}
	return st
}

// chainOn serializes an operation against the previous operation touching
// the same channel-value node.
func (gc *graphCtx) chainOn(ch *dfg.Node, op *dfg.Node) {
	if prev, ok := gc.chains[ch]; ok {
		gc.g.AddOrder(op, prev)
	}
	gc.chains[ch] = op
}

// chainK serializes a node on the global control token. Every holder also
// orders after the graph's input receives: the parent sends a child's
// whole input before awaiting anything (spliceTo), so a child that blocks
// on a rendezvous while inputs are still in flight would wedge the parent
// — and starve the sibling holding the channel's other end. Ordering on
// the received K token alone is not enough, because π_I may schedule a
// data input after the K slot. The same hazard for result sends is
// handled in sendOutputs.
func (gc *graphCtx) chainK(op *dfg.Node) {
	if gc.lastK != nil {
		gc.g.AddOrder(op, gc.lastK)
	}
	for _, r := range gc.inRecvs {
		gc.g.AddOrder(op, r)
	}
	gc.lastK = op
}

// vectorAddr builds the byte-address computation of element idx of vector
// sym: base + (idx << 2) for word vectors, base + idx for byte vectors. For
// vec parameters the base is the received address value; for declared
// vectors it is a compile-time constant, so the whole address folds when
// the index is constant.
func (gc *graphCtx) vectorAddr(sym *occam.Symbol, idx occam.Expr) (*dfg.Node, error) {
	idxNode, err := gc.expr(idx)
	if err != nil {
		return nil, err
	}
	var base *dfg.Node
	if sym.Kind == occam.SymParamVec {
		b, ok := gc.env[ift.Val(sym)]
		if !ok {
			return nil, fmt.Errorf("compile: graph %s: vec parameter %q has no address", gc.name, sym.Name)
		}
		base = b
	} else {
		addr, ok := gc.c.layout[sym]
		if !ok {
			return nil, fmt.Errorf("compile: graph %s: vector %q has no layout", gc.name, sym.Name)
		}
		base = gc.konst(int32(addr * isa.WordSize))
	}
	scale := int32(isa.WordSize)
	if sym.Kind == occam.SymVecByteVar {
		scale = 1
	}
	if iv, ok := gc.constOf(idxNode); ok {
		if bv, ok := gc.constOf(base); ok {
			return gc.konst(bv + iv*scale), nil
		}
	}
	if scale == 1 {
		return gc.binNode("plus", base, idxNode), nil
	}
	shifted := gc.binNode("lshift", idxNode, gc.konst(2))
	return gc.binNode("plus", base, shifted), nil
}

// constOf reports a node's constant value when folding is enabled.
func (gc *graphCtx) constOf(n *dfg.Node) (int32, bool) {
	if gc.c.opts.NoConstFold {
		return 0, false
	}
	if n.Op == "const" {
		return n.Aux.(int32), true
	}
	return 0, false
}

// binNode builds a binary ALU node, constant-folding when both operands are
// constants.
func (gc *graphCtx) binNode(op string, a, b *dfg.Node) *dfg.Node {
	if av, ok := gc.constOf(a); ok {
		if bv, ok := gc.constOf(b); ok {
			if v, err := foldALU(op, av, bv); err == nil {
				return gc.konst(v)
			}
		}
	}
	return gc.addOpImm(op, a, b)
}

func foldALU(op string, a, b int32) (int32, error) {
	opc, ok := isa.ByMnemonic(op)
	if !ok {
		return 0, fmt.Errorf("compile: no opcode %q", op)
	}
	return isa.EvalALU(opc, a, b)
}

// value returns the node for a program value, defaulting to zero for a read
// of a never-assigned variable (undefined in OCCAM).
func (gc *graphCtx) value(v ift.Value) *dfg.Node {
	if n, ok := gc.env[v]; ok {
		return n
	}
	return gc.konst(0)
}

// expr compiles an expression into a graph node.
func (gc *graphCtx) expr(e occam.Expr) (*dfg.Node, error) {
	switch n := e.(type) {
	case *occam.IntLit:
		return gc.konst(n.V), nil
	case *occam.NowExpr:
		node := gc.g.AddOp("now")
		gc.chainK(node)
		return node, nil
	case *occam.UnaryExpr:
		x, err := gc.expr(n.X)
		if err != nil {
			return nil, err
		}
		if v, ok := gc.constOf(x); ok {
			if n.Op == "-" {
				return gc.konst(-v), nil
			}
			return gc.konst(^v), nil
		}
		if n.Op == "-" {
			return gc.g.AddOp("neg", x), nil
		}
		return gc.g.AddOp("not", x), nil
	case *occam.BinExpr:
		a, err := gc.expr(n.A)
		if err != nil {
			return nil, err
		}
		b, err := gc.expr(n.B)
		if err != nil {
			return nil, err
		}
		op, ok := binOpNames[n.Op]
		if !ok {
			return nil, fmt.Errorf("compile: %v: unknown operator %q", n.P, n.Op)
		}
		return gc.binNode(op, a, b), nil
	case *occam.VarRef:
		if n.Index != nil {
			return gc.vectorRead(n)
		}
		if n.Sym.Kind == occam.SymDef {
			return gc.konst(n.Sym.Value), nil
		}
		return gc.value(ift.Val(n.Sym)), nil
	}
	return nil, fmt.Errorf("compile: unknown expression %T", e)
}

var binOpNames = map[string]string{
	"+": "plus", "-": "minus", "*": "mul", "/": "div", "\\": "rem",
	"=": "eq", "<>": "ne", "<": "lt", ">": "gt", "<=": "le", ">=": "ge",
	"and": "and", "/\\": "and", "or": "or", "\\/": "or", "><": "xor",
	"<<": "lshift", ">>": "rshift",
}

// vectorRead builds a fetch of a vector element, ordered after the last
// write to that vector.
func (gc *graphCtx) vectorRead(ref *occam.VarRef) (*dfg.Node, error) {
	addr, err := gc.vectorAddr(ref.Sym, ref.Index)
	if err != nil {
		return nil, err
	}
	op := "fetch"
	if ref.Sym.Kind == occam.SymVecByteVar {
		op = "fchb"
	}
	f := gc.addOpImm(op, addr)
	st := gc.vec(ref.Sym)
	if st.lastWrite != nil {
		gc.g.AddOrder(f, st.lastWrite)
	}
	st.readers = append(st.readers, f)
	return f, nil
}

// vectorWrite builds a store of a vector element, ordered after the last
// write and all reads since (Figure 4.19).
func (gc *graphCtx) vectorWrite(ref *occam.VarRef, val *dfg.Node) error {
	addr, err := gc.vectorAddr(ref.Sym, ref.Index)
	if err != nil {
		return err
	}
	op := "store"
	if ref.Sym.Kind == occam.SymVecByteVar {
		op = "storb"
	}
	s := gc.addOpImm(op, addr, val)
	st := gc.vec(ref.Sym)
	if st.lastWrite != nil {
		gc.g.AddOrder(s, st.lastWrite)
	}
	gc.g.AddOrder(s, st.readers...)
	st.lastWrite = s
	st.readers = nil
	return nil
}

// materialize produces the node whose value will be SENT for an
// intercontext value: data values come from the environment; control tokens
// become a constant token ordered after the operations they represent.
func (gc *graphCtx) materialize(v ift.Value) *dfg.Node {
	if !v.Token {
		return gc.value(v)
	}
	if v.Sym == nil {
		// Global K: a token ordered after the last I/O operation.
		if gc.lastK == nil {
			return gc.konst(-1)
		}
		tok := gc.g.AddOp("token")
		tok.Aux = int32(-1)
		gc.g.AddOrder(tok, gc.lastK)
		return tok
	}
	st := gc.vec(v.Sym)
	if st.lastWrite == nil && len(st.readers) == 0 {
		return gc.konst(-1)
	}
	tok := gc.g.AddOp("token")
	tok.Aux = int32(-1)
	if st.lastWrite != nil {
		gc.g.AddOrder(tok, st.lastWrite)
	}
	gc.g.AddOrder(tok, st.readers...)
	return tok
}

// materializeFor is materialize with the §4.6 read/write distinction: a
// construct that only READS the vector needs to wait for the last write but
// not for other outstanding readers (multiple readers run unordered).
// Writers, data values and the global K use the full ordering.
func (gc *graphCtx) materializeFor(v ift.Value, write bool) *dfg.Node {
	if !v.Token || v.Sym == nil || write {
		return gc.materialize(v)
	}
	st := gc.vec(v.Sym)
	if st.lastWrite == nil {
		return gc.konst(-1)
	}
	tok := gc.g.AddOp("token")
	tok.Aux = int32(-1)
	gc.g.AddOrder(tok, st.lastWrite)
	return tok
}

// acceptValue installs a received intercontext value: data values enter the
// environment; tokens reset the ordering state so subsequent operations
// order after the delivering recv.
func (gc *graphCtx) acceptValue(v ift.Value, node *dfg.Node) {
	if !v.Token {
		gc.env[v] = node
		return
	}
	if v.Sym == nil {
		gc.lastK = node
		return
	}
	st := gc.vec(v.Sym)
	st.lastWrite = node
	st.readers = nil
}

// acceptValueFor is acceptValue with the read/write distinction: a token
// returned by a construct that only read the vector records the construct as
// one more outstanding reader (later writers wait for it; later readers do
// not), preserving the last write.
func (gc *graphCtx) acceptValueFor(v ift.Value, node *dfg.Node, write bool) {
	if v.Token && v.Sym != nil && !write {
		st := gc.vec(v.Sym)
		st.readers = append(st.readers, node)
		return
	}
	gc.acceptValue(v, node)
}

// chanValue returns the channel-identifier node for a channel reference.
func (gc *graphCtx) chanValue(ref *occam.VarRef) (*dfg.Node, error) {
	if ref.Index != nil {
		// Channel vector: the identifier is fetched from memory.
		return gc.vectorRead(ref)
	}
	n, ok := gc.env[ift.Val(ref.Sym)]
	if !ok {
		return nil, fmt.Errorf("compile: %v: channel %q used before its allocation reached this context", ref.P, ref.Name)
	}
	return n, nil
}

// snapshot and restore support compiling parallel branches against the same
// starting state.
type graphSnapshot struct {
	env    map[ift.Value]*dfg.Node
	vecs   map[*occam.Symbol]*vecState
	lastK  *dfg.Node
	chains map[*dfg.Node]*dfg.Node
}

func (gc *graphCtx) snapshot() *graphSnapshot {
	s := &graphSnapshot{
		env:    make(map[ift.Value]*dfg.Node, len(gc.env)),
		vecs:   make(map[*occam.Symbol]*vecState, len(gc.vecs)),
		chains: make(map[*dfg.Node]*dfg.Node, len(gc.chains)),
		lastK:  gc.lastK,
	}
	for k, v := range gc.env {
		s.env[k] = v
	}
	for k, v := range gc.vecs {
		cp := *v
		cp.readers = append([]*dfg.Node(nil), v.readers...)
		s.vecs[k] = &cp
	}
	for k, v := range gc.chains {
		s.chains[k] = v
	}
	return s
}

func (gc *graphCtx) restore(s *graphSnapshot) {
	gc.env = make(map[ift.Value]*dfg.Node, len(s.env))
	for k, v := range s.env {
		gc.env[k] = v
	}
	gc.vecs = make(map[*occam.Symbol]*vecState, len(s.vecs))
	for k, v := range s.vecs {
		cp := *v
		cp.readers = append([]*dfg.Node(nil), v.readers...)
		gc.vecs[k] = &cp
	}
	gc.chains = make(map[*dfg.Node]*dfg.Node, len(s.chains))
	for k, v := range s.chains {
		gc.chains[k] = v
	}
	gc.lastK = s.lastK
}
