package compile

import (
	"fmt"
	"strings"

	"queuemachine/internal/dfg"
	"queuemachine/internal/isa"
)

// Scratch globals used by the coder for two-result trap instructions.
const (
	scratch1 = 19
	scratch2 = 20
)

// emit sequences and codes every graph, producing the object program and
// its assembly listing.
func (c *compiler) emit() (*isa.Object, string, error) {
	obj := &isa.Object{
		DataInit:   map[int]int32{},
		DataWords:  c.dataWords,
		Entry:      0,
		SourceName: "occam",
	}
	var asmText strings.Builder
	fmt.Fprintf(&asmText, ".data %d\n.entry main\n", c.dataWords)
	for gi, gc := range c.graphs {
		instrs, queueWords, order, err := c.code(gc)
		if err != nil {
			return nil, "", fmt.Errorf("compile: graph %s: %w", gc.name, err)
		}
		c.infos[gi].Order = order
		var words []uint32
		fmt.Fprintf(&asmText, ".graph %s queue=%d\n", gc.name, queueWords)
		for _, in := range instrs {
			w, err := in.Encode()
			if err != nil {
				return nil, "", fmt.Errorf("compile: graph %s: encoding %v: %w", gc.name, in, err)
			}
			words = append(words, w...)
			fmt.Fprintf(&asmText, "\t%s\n", in.String())
		}
		obj.Graphs = append(obj.Graphs, isa.GraphCode{
			Name:       gc.name,
			Code:       words,
			QueueWords: queueWords,
			Weight:     graphWeight(gc.g),
		})
	}
	if err := obj.Validate(); err != nil {
		return nil, "", err
	}
	return obj, asmText.String(), nil
}

// code sequences one graph with the Figure 4.20 scheduler and translates
// the sequence to instructions.
func (c *compiler) code(gc *graphCtx) ([]isa.Instr, int, []*dfg.Node, error) {
	if err := gc.g.Validate(); err != nil {
		return nil, 0, nil, err
	}
	var order []*dfg.Node
	var err error
	if c.opts.NoPriority {
		order, err = gc.g.TopoOrder()
	} else {
		order, err = gc.g.Schedule(nil)
	}
	if err != nil {
		return nil, 0, nil, err
	}
	seq, err := gc.g.GenerateSequence(order)
	if err != nil {
		return nil, 0, nil, err
	}
	cd := &coder{}
	for _, e := range seq.Entries {
		if err := cd.entry(e); err != nil {
			return nil, 0, nil, err
		}
	}
	// Terminate the context.
	cd.push(isa.Instr{Op: isa.OpTrap, Src1: isa.Imm(isa.KExit), Src2: isa.Imm(0),
		Dst1: isa.RegDummy, Dst2: isa.RegDummy})
	queueWords := 32
	for queueWords < cd.maxRel+2 {
		queueWords *= 2
	}
	if queueWords > isa.MaxQueuePage {
		return nil, 0, nil, fmt.Errorf("context needs a %d-word operand queue (max %d); split the construct",
			cd.maxRel+2, isa.MaxQueuePage)
	}
	return cd.out, queueWords, order, nil
}

// graphWeight computes a graph's static scheduling weight with the §4.5
// cost analysis: the maximum C(v) over the graph's nodes, i.e. the total
// cost of the predecessor closure of its most-demanding node. For the
// single-sink graphs the grapher emits this is the whole computation the
// context enables — the same quantity the π_I input weights W(v) aggregate
// per input — so priority dispatch runs the contexts the rest of the
// program waits on first. The weight rides in the object code
// (isa.GraphCode.Weight) and the kernel copies it into every context
// executing the graph.
func graphWeight(g *dfg.Graph) int {
	if len(g.Nodes) == 0 {
		return 0
	}
	an := g.Analyze()
	w := 0
	for _, v := range g.Nodes {
		if c := an.Cost(v); c > w {
			w = c
		}
	}
	return w
}

type coder struct {
	out    []isa.Instr
	maxRel int
}

func (cd *coder) push(in isa.Instr) { cd.out = append(cd.out, in) }

// result distributes an instruction's result offsets: up to two offsets
// below 16 ride in the destination register fields; the rest follow in dup
// instructions chained with the continue flag.
func (cd *coder) result(offsets []int, build func(dst1, dst2 int) isa.Instr) {
	for _, off := range offsets {
		if off > cd.maxRel {
			cd.maxRel = off
		}
	}
	var regs []int
	var dups []int
	for _, off := range offsets {
		if off < isa.NumWindowRegs && len(regs) < 2 {
			regs = append(regs, off)
		} else {
			dups = append(dups, off)
		}
	}
	d1, d2 := isa.RegDummy, isa.RegDummy
	if len(regs) > 0 {
		d1 = regs[0]
	}
	if len(regs) > 1 {
		d2 = regs[1]
	}
	main := build(d1, d2)
	main.Cont = len(dups) > 0
	cd.push(main)
	for len(dups) > 0 {
		in := isa.Instr{Op: isa.OpDup1, Dst1: dups[0]}
		if len(dups) >= 2 {
			in = isa.Instr{Op: isa.OpDup2, Dst1: dups[0], Dst2: dups[1]}
			dups = dups[2:]
		} else {
			dups = dups[1:]
		}
		in.Cont = len(dups) > 0
		cd.push(in)
	}
}

// alu emits a standard front-of-queue instruction.
func alu(op isa.Opcode, src1, src2 isa.Src, qpinc int) func(d1, d2 int) isa.Instr {
	return func(d1, d2 int) isa.Instr {
		return isa.Instr{Op: op, Src1: src1, Src2: src2, Dst1: d1, Dst2: d2, QPInc: qpinc}
	}
}

func (cd *coder) entry(e dfg.SeqEntry) error {
	n := e.Node
	offs := e.Offsets[0]
	r0 := isa.Window(0)
	switch n.Op {
	case "const", "token", "join":
		if len(offs) == 0 {
			return nil // pure scheduling artifact
		}
		v := n.Aux.(int32)
		cd.result(offs, alu(isa.OpPlus, isa.Imm(v), isa.Imm(0), 0))
	case "cin":
		cd.result(offs, alu(isa.OpPlus, isa.Global(isa.RegCIn), isa.Imm(0), 0))
	case "cout":
		cd.result(offs, alu(isa.OpPlus, isa.Global(isa.RegCOut), isa.Imm(0), 0))
	case "id":
		cd.result(offs, alu(isa.OpPlus, r0, isa.Imm(0), 1))
	case "neg":
		cd.result(offs, alu(isa.OpMinus, isa.Imm(0), r0, 1))
	case "not":
		cd.result(offs, alu(isa.OpXor, r0, isa.Imm(-1), 1))
	case "fetch":
		s1, _, qp := operandSrcs(n, 1)
		cd.result(offs, alu(isa.OpFetch, s1, isa.Imm(0), qp))
	case "fchb":
		s1, _, qp := operandSrcs(n, 1)
		cd.result(offs, alu(isa.OpFchb, s1, isa.Imm(0), qp))
	case "storb":
		if len(offs) != 0 {
			return fmt.Errorf("storb with result offsets %v", offs)
		}
		s1b, s2b, qpb := operandSrcs(n, 2)
		cd.push(isa.Instr{Op: isa.OpStorb, Src1: s1b, Src2: s2b, QPInc: qpb,
			Dst1: isa.RegDummy, Dst2: isa.RegDummy})
	case "store":
		if len(offs) != 0 {
			return fmt.Errorf("store with result offsets %v", offs)
		}
		s1, s2, qp := operandSrcs(n, 2)
		cd.push(isa.Instr{Op: isa.OpStore, Src1: s1, Src2: s2, QPInc: qp,
			Dst1: isa.RegDummy, Dst2: isa.RegDummy})
	case "send":
		if len(offs) != 0 {
			return fmt.Errorf("send with result offsets %v", offs)
		}
		s1, s2, qp := operandSrcs(n, 2)
		cd.push(isa.Instr{Op: isa.OpSend, Src1: s1, Src2: s2, QPInc: qp,
			Dst1: isa.RegDummy, Dst2: isa.RegDummy})
	case "recv":
		s1, _, qp := operandSrcs(n, 1)
		cd.result(offs, alu(isa.OpRecv, s1, isa.Imm(0), qp))
	case "channew":
		cd.result(offs, alu(isa.OpTrap, isa.Imm(isa.KChanNew), isa.Imm(0), 0))
	case "now":
		cd.result(offs, alu(isa.OpTrap, isa.Imm(isa.KNow), isa.Imm(0), 0))
	case "wait":
		arg, _, qp := operandSrcs(n, 1)
		cd.result(offs, alu(isa.OpTrap, isa.Imm(isa.KWait), arg, qp))
	case "rfork":
		// Two results: trap into scratch globals, then copy each port
		// to its queue offsets.
		target, _, qp := operandSrcs(n, 1)
		cd.push(isa.Instr{Op: isa.OpTrap, Src1: isa.Imm(isa.KRFork), Src2: target,
			Dst1: scratch1, Dst2: scratch2, QPInc: qp, Cont: true})
		cd.result(e.Offsets[0], alu(isa.OpPlus, isa.Global(scratch1), isa.Imm(0), 0))
		cd.result(e.Offsets[1], alu(isa.OpPlus, isa.Global(scratch2), isa.Imm(0), 0))
	case "ifork":
		target, _, qp := operandSrcs(n, 1)
		cd.push(isa.Instr{Op: isa.OpTrap, Src1: isa.Imm(isa.KIFork), Src2: target,
			Dst1: scratch1, Dst2: isa.RegDummy, QPInc: qp, Cont: true})
		cd.result(e.Offsets[0], alu(isa.OpPlus, isa.Global(scratch1), isa.Imm(0), 0))
	default:
		op, ok := isa.ByMnemonic(n.Op)
		if !ok {
			return fmt.Errorf("coder: unknown node op %q", n.Op)
		}
		s1, s2, qp := operandSrcs(n, 2)
		cd.result(offs, alu(op, s1, s2, qp))
	}
	return nil
}
