package compile

import (
	"fmt"

	"queuemachine/internal/dfg"
	"queuemachine/internal/ift"
	"queuemachine/internal/occam"
)

// stmt compiles one process into the current graph. Constructs that demand
// their own contexts (while, if, proc calls, replicated par) splice
// sub-graphs in; everything else merges into this graph per Figure 4.9.
func (c *compiler) stmt(gc *graphCtx, p occam.Process) error {
	switch n := p.(type) {
	case *occam.Skip:
		return nil

	case *occam.Assign:
		val, err := gc.expr(n.Value)
		if err != nil {
			return err
		}
		if n.Target.Index != nil {
			return gc.vectorWrite(n.Target, val)
		}
		gc.env[ift.Val(n.Target.Sym)] = val
		return nil

	case *occam.Output:
		ch, err := gc.chanValue(n.Chan)
		if err != nil {
			return err
		}
		val, err := gc.expr(n.Value)
		if err != nil {
			return err
		}
		send := gc.addOpImm("send", ch, val)
		gc.chainK(send)
		return nil

	case *occam.Input:
		ch, err := gc.chanValue(n.Chan)
		if err != nil {
			return err
		}
		recv := gc.g.AddOp("recv", ch)
		gc.chainK(recv)
		if n.Target.Index != nil {
			return gc.vectorWrite(n.Target, recv)
		}
		gc.env[ift.Val(n.Target.Sym)] = recv
		return nil

	case *occam.Wait:
		after, err := gc.expr(n.After)
		if err != nil {
			return err
		}
		w := gc.addOpImm("wait", after)
		gc.chainK(w)
		return nil

	case *occam.Scope:
		return c.scopeStmt(gc, n)

	case *occam.Seq:
		if n.Rep != nil {
			return fmt.Errorf("compile: %v: replicated seq survived desugaring", n.P)
		}
		for _, b := range n.Body {
			if err := c.stmt(gc, b); err != nil {
				return err
			}
		}
		return nil

	case *occam.Par:
		if n.Rep != nil {
			return c.replicatedPar(gc, n)
		}
		return c.plainPar(gc, n)

	case *occam.While:
		return c.whileStmt(gc, n)

	case *occam.If:
		return c.ifStmt(gc, n)

	case *occam.Call:
		return c.callStmt(gc, n)
	}
	return fmt.Errorf("compile: unknown process %T", p)
}

// scopeStmt allocates the scope's channels and compiles its body.
func (c *compiler) scopeStmt(gc *graphCtx, n *occam.Scope) error {
	for _, d := range n.Decls {
		if d.Kind != occam.DeclChan {
			continue
		}
		for _, item := range d.Items {
			if item.Sym.Kind == occam.SymVecChan {
				// Allocate each element and store its identifier
				// into the channel vector's memory.
				for i := 0; i < item.Sym.Size; i++ {
					alloc := gc.g.AddOp("channew")
					ref := &occam.VarRef{
						P: d.P, Name: item.Name, Sym: item.Sym,
						Index: &occam.IntLit{P: d.P, V: int32(i)},
					}
					if err := gc.vectorWriteNode(ref, alloc); err != nil {
						return err
					}
				}
				continue
			}
			alloc := gc.g.AddOp("channew")
			gc.env[ift.Val(item.Sym)] = alloc
		}
	}
	return c.stmt(gc, n.Body)
}

// vectorWriteNode is vectorWrite for an already-built value node.
func (gc *graphCtx) vectorWriteNode(ref *occam.VarRef, val *dfg.Node) error {
	return gc.vectorWrite(ref, val)
}

// plainPar compiles parallel composition. Pure-computation branches merge
// into the current graph per Figure 4.9(b), compiled against the pre-par
// state with ∧-style token joins where several branches touched the same
// resource. Branches that perform channel I/O are spliced into their own
// contexts instead: a blocking send executed inline could never rendezvous
// with a sibling in the same sequential context. (This refines the thesis's
// pure merge, which presumes communicating components are separate
// contexts.)
func (c *compiler) plainPar(gc *graphCtx, n *occam.Par) error {
	base := gc.snapshot()
	type branchResult struct {
		env   map[ift.Value]*dfg.Node
		vecs  map[*occam.Symbol]*vecState
		lastK *dfg.Node
	}
	var results []*branchResult

	// Classify the branches.
	var merged, spliced []occam.Process
	for _, b := range n.Body {
		e, err := c.table.Entry(b)
		if err != nil {
			return err
		}
		if e.Kind == ift.KSkip {
			continue
		}
		if entryUsesIO(e) {
			spliced = append(spliced, b)
		} else {
			merged = append(merged, b)
		}
	}

	// Merged branches compile against the pre-par state.
	for _, b := range merged {
		gc.restore(base)
		if err := c.stmt(gc, b); err != nil {
			return err
		}
		results = append(results, &branchResult{env: gc.env, vecs: gc.vecs, lastK: gc.lastK})
	}
	gc.restore(base)

	// Spliced branches become contexts; their protocol runs against the
	// pre-par state and their results count as one more parallel branch.
	// Branches may communicate with each other, so every branch must be
	// fed before any branch is awaited: cross order arcs below.
	var handles []*spliceHandles
	for k, b := range spliced {
		e, _ := c.table.Entry(b)
		liveOuts := c.outsOf(e)
		ins := e.Inputs()
		ch := c.openChild(fmt.Sprintf("par%d_b%d", n.P.Line, k), ins)
		if err := c.stmt(ch.gc, b); err != nil {
			return err
		}
		ch.chainInputs(c.inputOrder(ch))
		ch.sendOutputs(liveOuts)
		insNodes := parentSlotNodes(gc, ch.slots, e)
		r := &branchResult{env: map[ift.Value]*dfg.Node{}, vecs: map[*occam.Symbol]*vecState{}}
		accept := func(v ift.Value, node *dfg.Node) {
			switch {
			case !v.Token:
				r.env[v] = node
			case v.Sym == nil:
				r.lastK = node
			case e.WritesValue(v):
				r.vecs[v.Sym] = &vecState{lastWrite: node}
			default:
				// A read-only token: the branch joins the pool of
				// outstanding readers; the pre-par write ordering
				// is preserved.
				st := &vecState{readers: []*dfg.Node{node}}
				if b := base.vecs[v.Sym]; b != nil {
					st.lastWrite = b.lastWrite
					st.readers = append(append([]*dfg.Node{}, b.readers...), node)
				}
				r.vecs[v.Sym] = st
			}
		}
		h, err := c.spliceTo(gc, "rfork", gc.konst(int32(ch.gc.idx)), insNodes, packSlots(liveOuts), accept)
		if err != nil {
			return err
		}
		handles = append(handles, h)
		results = append(results, r)
	}
	for _, h := range handles {
		if h.firstRecv == nil {
			continue
		}
		for _, other := range handles {
			if other.lastSend != nil {
				gc.g.AddOrder(h.firstRecv, other.lastSend)
			}
		}
	}

	// Merge scalar environments: at most one branch may redefine a value.
	writers := map[ift.Value][]*dfg.Node{}
	var order []ift.Value
	for _, r := range results {
		for v, node := range r.env {
			if base.env[v] == node {
				continue
			}
			if _, seen := writers[v]; !seen {
				order = append(order, v)
			}
			writers[v] = append(writers[v], node)
		}
	}
	for _, v := range order {
		nodes := writers[v]
		if len(nodes) > 1 {
			return fmt.Errorf("compile: %v: parallel components both assign %q (OCCAM allows at most one writer)", n.P, v)
		}
		gc.env[v] = nodes[0]
	}

	// Merge vector states: branches touching the same vector are mutually
	// unordered (disjoint elements per OCCAM); subsequent accesses order
	// after all of them via a join token.
	touched := map[*occam.Symbol][]*vecState{}
	var vecOrder []*occam.Symbol
	for _, r := range results {
		for sym, st := range r.vecs {
			b := base.vecs[sym]
			if b != nil && b.lastWrite == st.lastWrite && len(b.readers) == len(st.readers) {
				continue // untouched by this branch
			}
			if _, seen := touched[sym]; !seen {
				vecOrder = append(vecOrder, sym)
			}
			touched[sym] = append(touched[sym], st)
		}
	}
	for _, sym := range vecOrder {
		states := touched[sym]
		if len(states) == 1 {
			gc.vecs[sym] = states[0]
			continue
		}
		join := gc.g.AddOp("join")
		join.Aux = int32(-1)
		for _, st := range states {
			if st.lastWrite != nil {
				gc.g.AddOrder(join, st.lastWrite)
			}
			gc.g.AddOrder(join, st.readers...)
		}
		gc.vecs[sym] = &vecState{lastWrite: join}
	}

	// Merge the global control token with an ∧-join when several branches
	// performed I/O.
	var ks []*dfg.Node
	for _, r := range results {
		if r.lastK != base.lastK && r.lastK != nil {
			ks = append(ks, r.lastK)
		}
	}
	switch len(ks) {
	case 0:
	case 1:
		gc.lastK = ks[0]
	default:
		join := gc.g.AddOp("join")
		join.Aux = int32(-1)
		gc.g.AddOrder(join, ks...)
		gc.lastK = join
	}
	return nil
}

// orderValues applies the transfer-order policy to an input list: π_I
// ordering by descending input weight when enabled, IFT set order
// otherwise. Ordering is computed on the callee graph after its body is
// built (see finishInputs).
func dedupeValues(vals ...[]ift.Value) []ift.Value {
	var out []ift.Value
	seen := map[ift.Value]bool{}
	for _, list := range vals {
		for _, v := range list {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// entryUsesIO reports whether an IFT entry's sets touch the global I/O
// token K.
func entryUsesIO(e *ift.Entry) bool {
	for _, vi := range e.I {
		if vi.Val == ift.KIO {
			return true
		}
	}
	for _, vi := range e.O {
		if vi.Val == ift.KIO {
			return true
		}
	}
	return false
}
