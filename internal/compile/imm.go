package compile

import (
	"queuemachine/internal/dfg"
	"queuemachine/internal/isa"
)

// immArgs records which of a node's original operand positions are encoded
// as instruction immediates rather than operand-queue slots. The node's
// remaining dfg arguments fill the non-immediate positions in order.
type immArgs struct {
	vals [2]*int32
}

// immOf returns the node's immediate table, if any.
func immOf(n *dfg.Node) *immArgs {
	ia, _ := n.Aux.(*immArgs)
	return ia
}

// addOpImm builds an operator node, encoding constant operands as
// immediates (unless constant folding is disabled, in which case every
// operand flows through the queue, reproducing the naive code of the Table
// 6.6 baseline). Only the first two positions can be immediate — exactly
// the two source fields of the instruction format.
func (gc *graphCtx) addOpImm(op string, args ...*dfg.Node) *dfg.Node {
	var ia immArgs
	useImm := false
	var queueArgs []*dfg.Node
	for i, a := range args {
		if i < 2 {
			if v, ok := gc.constOf(a); ok {
				vv := v
				ia.vals[i] = &vv
				useImm = true
				continue
			}
		}
		queueArgs = append(queueArgs, a)
	}
	if !useImm {
		return gc.g.AddOp(op, args...)
	}
	n := gc.g.AddOp(op, queueArgs...)
	n.Aux = &ia
	return n
}

// operandSrcs derives the two instruction source fields and the QP
// increment for a node with nPos original operand positions.
func operandSrcs(n *dfg.Node, nPos int) (src1, src2 isa.Src, qpinc int) {
	ia := immOf(n)
	queueIdx := 0
	get := func(pos int) isa.Src {
		if ia != nil && pos < 2 && ia.vals[pos] != nil {
			return isa.Imm(*ia.vals[pos])
		}
		s := isa.Window(queueIdx)
		queueIdx++
		return s
	}
	src1 = isa.Imm(0)
	src2 = isa.Imm(0)
	if nPos >= 1 {
		src1 = get(0)
	}
	if nPos >= 2 {
		src2 = get(1)
	}
	return src1, src2, queueIdx
}
