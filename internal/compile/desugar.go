package compile

import "queuemachine/internal/occam"

// desugar rewrites every replicated seq into an explicit counted while loop
// (the thesis implements both iteration paradigms with the same iteration
// contexts, §4.3):
//
//	seq i = [f for n]          var i, __count:
//	  P                  =>    seq
//	                             i := f
//	                             __count := n
//	                             while __count > 0
//	                               seq
//	                                 P
//	                                 i := i + 1
//	                                 __count := __count - 1
//
// The rewrite happens after semantic analysis, so synthetic symbols are
// appended to the program's symbol list directly.
func desugar(prog *occam.Program) {
	prog.Body = desugarProcess(prog, prog.Body)
}

func desugarProcess(prog *occam.Program, p occam.Process) occam.Process {
	switch n := p.(type) {
	case *occam.Scope:
		for _, d := range n.Decls {
			if d.Kind == occam.DeclProc {
				d.Body = desugarProcess(prog, d.Body)
			}
		}
		n.Body = desugarProcess(prog, n.Body)
		return n
	case *occam.Seq:
		for i, b := range n.Body {
			n.Body[i] = desugarProcess(prog, b)
		}
		if n.Rep != nil {
			return desugarRepSeq(prog, n)
		}
		return n
	case *occam.Par:
		for i, b := range n.Body {
			n.Body[i] = desugarProcess(prog, b)
		}
		return n
	case *occam.If:
		for _, g := range n.Branches {
			g.Body = desugarProcess(prog, g.Body)
		}
		return n
	case *occam.While:
		n.Body = desugarProcess(prog, n.Body)
		return n
	default:
		return p
	}
}

func desugarRepSeq(prog *occam.Program, n *occam.Seq) occam.Process {
	rep := n.Rep
	pos := n.P
	count := newSymbol(prog, "__count", occam.SymVar)

	iRef := func() *occam.VarRef {
		return &occam.VarRef{P: pos, Name: rep.Name, Sym: rep.Sym}
	}
	cRef := func() *occam.VarRef {
		return &occam.VarRef{P: pos, Name: count.Name, Sym: count}
	}
	body := &occam.Seq{P: pos, Body: []occam.Process{
		n.Body[0],
		&occam.Assign{P: pos, Target: iRef(), Value: &occam.BinExpr{
			P: pos, Op: "+", A: iRef(), B: &occam.IntLit{P: pos, V: 1}}},
		&occam.Assign{P: pos, Target: cRef(), Value: &occam.BinExpr{
			P: pos, Op: "-", A: cRef(), B: &occam.IntLit{P: pos, V: 1}}},
	}}
	loop := &occam.While{P: pos,
		Cond: &occam.BinExpr{P: pos, Op: ">", A: cRef(), B: &occam.IntLit{P: pos, V: 0}},
		Body: body,
	}
	seq := &occam.Seq{P: pos, Body: []occam.Process{
		&occam.Assign{P: pos, Target: iRef(), Value: rep.From},
		&occam.Assign{P: pos, Target: cRef(), Value: rep.Count},
		loop,
	}}
	// Wrap in a scope so the loop-control variables stay local to the
	// construct and never enter enclosing I/O sets.
	return &occam.Scope{P: pos, Decls: []*occam.Decl{{
		P:    pos,
		Kind: occam.DeclVar,
		Items: []*occam.DeclItem{
			{Name: rep.Name, Sym: rep.Sym},
			{Name: count.Name, Sym: count},
		},
	}}, Body: seq}
}

// newSymbol mints a synthetic symbol.
func newSymbol(prog *occam.Program, name string, kind occam.SymKind) *occam.Symbol {
	s := &occam.Symbol{
		ID:   len(prog.Symbols),
		Name: name,
		Kind: kind,
	}
	prog.Symbols = append(prog.Symbols, s)
	return s
}
