// Package core is the top-level facade over the thesis reproduction: it
// compiles OCCAM programs with the Chapter 4 compiler and executes them on
// the Chapter 6 multiprocessor simulator, exposing the speed-up sweeps and
// run statistics that the evaluation chapter reports.
package core

import (
	"fmt"

	"queuemachine/internal/compile"
	"queuemachine/internal/sim"
)

// Config selects compiler options and machine parameters.
type Config struct {
	Compile compile.Options
	Sim     sim.Params
}

// DefaultConfig is the configuration of every Chapter 6 experiment.
func DefaultConfig() Config {
	return Config{Sim: sim.DefaultParams()}
}

// Run compiles and executes a program on numPEs processing elements.
func Run(src string, numPEs int, cfg Config) (*sim.Result, *compile.Artifact, error) {
	art, err := compile.Compile(src, cfg.Compile)
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run(art.Object, numPEs, cfg.Sim)
	if err != nil {
		return nil, art, err
	}
	return res, art, nil
}

// SweepPoint is one processor count of a speed-up sweep.
type SweepPoint struct {
	PEs    int
	Result *sim.Result
	// Speedup is T(1)/T(n), the system throughput ratio of Figures
	// 6.8–6.12.
	Speedup float64
	// Utilization is the mean processing-element busy fraction.
	Utilization float64
}

// Sweep compiles once and runs the program across the processor counts,
// verifying (when check is non-nil) that every machine size computes the
// same answer.
func Sweep(src string, peCounts []int, cfg Config,
	check func(art *compile.Artifact, data []int32) error) ([]SweepPoint, *compile.Artifact, error) {

	art, err := compile.Compile(src, cfg.Compile)
	if err != nil {
		return nil, nil, err
	}
	var points []SweepPoint
	var base int64
	for _, pes := range peCounts {
		res, err := sim.Run(art.Object, pes, cfg.Sim)
		if err != nil {
			return nil, art, fmt.Errorf("core: %d PEs: %w", pes, err)
		}
		if check != nil {
			if err := check(art, res.Data); err != nil {
				return nil, art, fmt.Errorf("core: %d PEs: wrong result: %w", pes, err)
			}
		}
		if base == 0 {
			base = res.Cycles
		}
		points = append(points, SweepPoint{
			PEs:         pes,
			Result:      res,
			Speedup:     float64(base) / float64(res.Cycles),
			Utilization: res.Utilization(),
		})
	}
	if len(points) > 0 && points[0].PEs != 1 {
		// Normalize against the first point when 1 PE was not swept.
		for i := range points {
			points[i].Speedup = float64(points[0].Result.Cycles) / float64(points[i].Result.Cycles)
		}
	}
	return points, art, nil
}
