package core

import (
	"errors"
	"strings"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/workloads"
)

func TestRunSimple(t *testing.T) {
	res, art, err := Run(`var v[1]:
v[0] := 6 * 7
`, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := art.VectorBase("v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Data[base/4] != 42 {
		t.Errorf("v[0] = %d", res.Data[base/4])
	}
}

func TestRunCompileError(t *testing.T) {
	if _, _, err := Run("seq\n  x := 1\n", 1, DefaultConfig()); err == nil {
		t.Error("undeclared variable compiled")
	}
}

func TestSweepMatMul(t *testing.T) {
	w := workloads.MatMul(4)
	points, _, err := Sweep(w.Source, []int{1, 2, 4}, DefaultConfig(), w.Check)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 || points[0].Speedup != 1.0 {
		t.Fatalf("points = %+v", points)
	}
	if points[1].Speedup <= 1.0 || points[2].Speedup <= points[1].Speedup {
		t.Errorf("speedups not increasing: %.2f %.2f %.2f",
			points[0].Speedup, points[1].Speedup, points[2].Speedup)
	}
	for _, p := range points {
		if p.Utilization <= 0 || p.Utilization > 1 {
			t.Errorf("%d PEs: utilization %f", p.PEs, p.Utilization)
		}
	}
}

func TestSweepDetectsWrongResult(t *testing.T) {
	w := workloads.MatMul(3)
	_, _, err := Sweep(w.Source, []int{1}, DefaultConfig(),
		func(art *compile.Artifact, data []int32) error {
			return errors.New("synthetic mismatch")
		})
	if err == nil || !strings.Contains(err.Error(), "wrong result") {
		t.Errorf("check error not propagated: %v", err)
	}
}

func TestSweepNormalizesWithoutBaseline(t *testing.T) {
	w := workloads.MatMul(3)
	points, _, err := Sweep(w.Source, []int{2, 4}, DefaultConfig(), w.Check)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Speedup != 1.0 {
		t.Errorf("first point speedup = %f, want 1 (normalized)", points[0].Speedup)
	}
}
