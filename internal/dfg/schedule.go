package dfg

import "fmt"

// Actor priorities for the instruction-sequencing heuristic of §4.7. Lower
// values are emitted first when several instructions are ready:
//
//  1. rfork and ifork (create parallel work as early as possible),
//  2. send (enable newly created contexts to proceed),
//  3. store and storb (shrink the operand queue early),
//  4. everything else,
//  5. fetch and fchb (grow the queue as late as possible),
//  6. recv,
//  7. wait (actors that may suspend the context go last).
func Priority(op string) int {
	switch op {
	case "rfork", "ifork":
		return 1
	case "send":
		return 2
	case "store", "storb":
		return 3
	case "fetch", "fchb":
		return 5
	case "recv":
		return 6
	case "wait":
		return 7
	default:
		return 4
	}
}

// Schedule produces an instruction sequence of the graph's nodes satisfying
// the π_G partial order using the ready-set algorithm of Figure 4.20: a set
// R of nodes whose operands are all available is maintained, and at every
// step the highest-priority ready node is emitted (ties broken by node
// creation order, for determinism). The priority function defaults to
// Priority when nil.
//
// Input nodes are scheduled like any other ready node; a compiler that has
// already ordered the graph's inputs by π_I should pin that order with
// input-chaining arcs or schedule inputs itself before calling Schedule.
func (g *Graph) Schedule(priority func(op string) int) ([]*Node, error) {
	if priority == nil {
		priority = Priority
	}
	pending := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		pending[n] = len(n.Args) + len(n.Order)
	}
	inReady := make(map[*Node]bool, len(g.Nodes))
	var ready []*Node
	for _, n := range g.Nodes {
		if pending[n] == 0 {
			ready = append(ready, n)
			inReady[n] = true
		}
	}
	out := make([]*Node, 0, len(g.Nodes))
	for len(ready) > 0 {
		// Select the highest-priority ready node; ready is kept in
		// creation order, so the first minimum wins ties.
		best := 0
		for i := 1; i < len(ready); i++ {
			if priority(ready[i].Op) < priority(ready[best].Op) {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, v)
		for _, s := range g.Successors(v) {
			pending[s] -= countEdges(s, v)
			if pending[s] == 0 && !inReady[s] {
				inReady[s] = true
				ready = insertByID(ready, s)
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("dfg: schedule emitted %d of %d nodes; graph is cyclic or malformed", len(out), len(g.Nodes))
	}
	return out, nil
}

// insertByID keeps the ready list sorted by node creation order so that
// priority ties resolve deterministically.
func insertByID(ready []*Node, n *Node) []*Node {
	i := len(ready)
	for i > 0 && ready[i-1].ID > n.ID {
		i--
	}
	ready = append(ready, nil)
	copy(ready[i+1:], ready[i:])
	ready[i] = n
	return ready
}
