package dfg

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"queuemachine/internal/queue"
)

// fig414 builds the data-flow graph of Figure 4.14(a) for the statement
// e := ((a+b) * (-c)) / d, with node creation order a, b, c, d, +, -, ×, ÷, e.
func fig414() (g *Graph, nodes map[string]*Node) {
	g = New()
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	plus := g.AddOp("+", a, b)
	neg := g.AddOp("-", c)
	mul := g.AddOp("×", plus, neg)
	div := g.AddOp("÷", mul, d)
	e := g.AddOp("e", div)
	return g, map[string]*Node{
		"a": a, "b": b, "c": c, "d": d,
		"+": plus, "-": neg, "×": mul, "÷": div, "e": e,
	}
}

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Op
	}
	return out
}

// TestDepthFirstList reproduces the thesis's example list
// L = {e, ÷, ×, +, a, b, -, c, d} for the Figure 4.14 graph.
func TestDepthFirstList(t *testing.T) {
	g, _ := fig414()
	got := names(g.DepthFirstList())
	want := []string{"e", "÷", "×", "+", "a", "b", "-", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DepthFirstList = %v, want %v", got, want)
	}
}

// TestTable44 checks P*(v), I*(v) and C(v) against Table 4.4.
func TestTable44(t *testing.T) {
	g, n := fig414()
	a := g.Analyze()

	wantCost := map[string]int{
		"d": 1, "c": 1, "-": 2, "b": 1, "a": 1, "+": 3, "×": 6, "÷": 8, "e": 9,
	}
	for op, want := range wantCost {
		if got := a.Cost(n[op]); got != want {
			t.Errorf("C(%s) = %d, want %d", op, got, want)
		}
	}

	wantPreds := map[string][]string{
		"d": {"d"},
		"-": {"c", "-"},
		"+": {"a", "b", "+"},
		"×": {"a", "b", "c", "+", "-", "×"},
		"÷": {"a", "b", "c", "d", "+", "-", "×", "÷"},
		"e": {"a", "b", "c", "d", "+", "-", "×", "÷", "e"},
	}
	for op, want := range wantPreds {
		if got := names(a.PredecessorSet(n[op])); !reflect.DeepEqual(got, want) {
			t.Errorf("P*(%s) = %v, want %v", op, got, want)
		}
	}

	wantIn := map[string][]string{
		"d": {"d"},
		"-": {"c"},
		"+": {"a", "b"},
		"×": {"a", "b", "c"},
		"÷": {"a", "b", "c", "d"},
		"e": {"a", "b", "c", "d"},
	}
	for op, want := range wantIn {
		if got := names(a.RequiredInputs(n[op])); !reflect.DeepEqual(got, want) {
			t.Errorf("I*(%s) = %v, want %v", op, got, want)
		}
	}
}

// TestTable45 checks the input weights W(v) and the resulting π_I input
// order against Table 4.5: W(a)=27, W(b)=27, W(c)=26, W(d)=18, so the two
// suitable sequences are {a,b,c,d} and {b,a,c,d}.
func TestTable45(t *testing.T) {
	g, n := fig414()
	a := g.Analyze()
	want := map[string]int{"a": 27, "b": 27, "c": 26, "d": 18}
	for op, w := range want {
		if got := a.InputWeight(n[op]); got != w {
			t.Errorf("W(%s) = %d, want %d", op, got, w)
		}
	}
	got := names(a.InputOrder())
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("InputOrder = %v", got)
	}
}

func TestReaches(t *testing.T) {
	g, n := fig414()
	if !g.Reaches(n["a"], n["e"]) {
		t.Error("a should reach e")
	}
	if !g.Reaches(n["a"], n["a"]) {
		t.Error("π_G must be reflexive")
	}
	if g.Reaches(n["e"], n["a"]) {
		t.Error("e must not reach a (antisymmetry would break)")
	}
	if g.Reaches(n["a"], n["c"]) || g.Reaches(n["c"], n["a"]) {
		t.Error("a and c are incomparable")
	}
}

func TestValidate(t *testing.T) {
	g, _ := fig414()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// An input with operand arcs is rejected.
	bad := New()
	x := bad.Input("x")
	y := bad.AddOp("f", x)
	y.IsInput = true
	if err := bad.Validate(); err == nil {
		t.Error("input with args accepted")
	}

	// A cyclic graph is rejected.
	cyc := New()
	p := cyc.AddOp("p")
	q := cyc.AddOp("q", p)
	p.Args = []Edge{{From: q}}
	if err := cyc.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}

	// A bad result port is rejected.
	bp := New()
	r := bp.AddOp("r")
	bp.AddOpEdges("s", Edge{From: r, Port: 3})
	if err := bp.Validate(); err == nil || !strings.Contains(err.Error(), "port") {
		t.Errorf("bad port not detected: %v", err)
	}
}

// TestSchedulePriorities checks the §4.7 heuristic: among simultaneously
// ready nodes, forks go first, then sends, then stores; fetches, receives
// and waits go last.
func TestSchedulePriorities(t *testing.T) {
	g := New()
	g.AddOp("fetch")
	g.AddOp("recv")
	g.AddOp("plus")
	g.AddOp("store")
	g.AddOp("send")
	g.AddOp("rfork")
	g.AddOp("wait")
	order, err := g.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"rfork", "send", "store", "plus", "fetch", "recv", "wait"}
	if got := names(order); !reflect.DeepEqual(got, want) {
		t.Errorf("Schedule = %v, want %v", got, want)
	}
}

func TestScheduleRespectsDependences(t *testing.T) {
	g, n := fig414()
	order, err := g.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Node]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range g.Nodes {
		for _, e := range v.Args {
			if pos[e.From] >= pos[v] {
				t.Errorf("%s scheduled at %d after consumer %s at %d", e.From, pos[e.From], v, pos[v])
			}
		}
	}
	_ = n
}

// arithSem gives arithmetic semantics to test graphs; inputs read from env.
func arithSem(env map[string]int64) Semantics {
	return func(n *Node, args []int64) ([]int64, error) {
		if n.IsInput {
			return []int64{env[n.Op]}, nil
		}
		switch n.Op {
		case "+":
			return []int64{args[0] + args[1]}, nil
		case "-":
			if len(args) == 1 {
				return []int64{-args[0]}, nil
			}
			return []int64{args[0] - args[1]}, nil
		case "×", "*":
			return []int64{args[0] * args[1]}, nil
		case "÷", "/":
			if args[1] == 0 {
				return []int64{0}, nil
			}
			return []int64{args[0] / args[1]}, nil
		default: // assignment/identity
			return []int64{args[0]}, nil
		}
	}
}

// TestFig36SharedSubexpression builds the Figure 3.6(b) graph for
// d := a/(a+b) + (a+b)*c — 7 nodes, with the common subexpression a+b
// computed once — generates its indexed-queue sequence and verifies it
// evaluates to the same value as direct evaluation (Table 3.4's program).
func TestFig36SharedSubexpression(t *testing.T) {
	g := New()
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	sum := g.AddOp("+", a, b)
	div := g.AddOp("÷", a, sum)
	mul := g.AddOp("×", sum, c)
	final := g.AddOp("+", div, mul)
	if len(g.Nodes) != 7 {
		t.Fatalf("graph has %d nodes, want 7", len(g.Nodes))
	}

	env := map[string]int64{"a": 6, "b": 2, "c": 5}
	order, err := g.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.GenerateSequence(order)
	if err != nil {
		t.Fatal(err)
	}
	sem := arithSem(env)
	var got int64
	recording := func(n *Node, args []int64) ([]int64, error) {
		res, err := sem(n, args)
		if err == nil && n == final {
			got = res[0]
		}
		return res, err
	}
	prog, err := seq.ToIndexed(recording)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := queue.EvalIndexed(prog); err != nil {
		t.Fatal(err)
	}
	want := env["a"]/(env["a"]+env["b"]) + (env["a"]+env["b"])*env["c"]
	if got != want {
		t.Errorf("final value = %d, want %d", got, want)
	}
	if qm := queue.MaxQueueIndex(prog); qm != seq.MaxQueue {
		t.Errorf("MaxQueue mismatch: sequence says %d, program uses %d", seq.MaxQueue, qm)
	}
}

// TestGenerateSequenceErrors exercises the validation paths.
func TestGenerateSequenceErrors(t *testing.T) {
	g, n := fig414()
	order, _ := g.TopoOrder()

	if _, err := g.GenerateSequence(order[:3]); err == nil {
		t.Error("short order accepted")
	}
	dup := append(append([]*Node{}, order...), order[0])
	if _, err := g.GenerateSequence(dup[1:]); err == nil {
		t.Error("duplicated order accepted")
	}
	// Swap a producer after its consumer.
	badOrder := append([]*Node{}, order...)
	pi, ei := -1, -1
	for i, v := range badOrder {
		if v == n["+"] {
			pi = i
		}
		if v == n["e"] {
			ei = i
		}
	}
	badOrder[pi], badOrder[ei] = badOrder[ei], badOrder[pi]
	if _, err := g.GenerateSequence(badOrder); err == nil {
		t.Error("π_G-violating order accepted")
	}
}

// TestMultiResultSequence checks the two-port rfork actor: both channel
// identifiers get distinct result index sets.
func TestMultiResultSequence(t *testing.T) {
	g := New()
	graphPtr := g.Input("gptr")
	fork := g.AddOp("rfork", graphPtr)
	fork.Results = 2
	g.AddOpEdges("send", Edge{From: fork, Port: 0}, Edge{From: graphPtr, Port: 0})
	g.AddOpEdges("recv", Edge{From: fork, Port: 1})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := g.GenerateSequence(order)
	if err != nil {
		t.Fatal(err)
	}
	var forkEntry *SeqEntry
	for i := range seq.Entries {
		if seq.Entries[i].Node == fork {
			forkEntry = &seq.Entries[i]
		}
	}
	if forkEntry == nil {
		t.Fatal("fork not in sequence")
	}
	if len(forkEntry.Offsets) != 2 || len(forkEntry.Offsets[0]) != 1 || len(forkEntry.Offsets[1]) != 1 {
		t.Errorf("fork offsets = %v", forkEntry.Offsets)
	}
	if _, err := seq.ToIndexed(arithSem(nil)); err == nil {
		t.Error("ToIndexed should reject multi-result nodes")
	}
}

// TestRandomGraphSequences is the executable form of the §3.6 theorem: for
// random acyclic data-flow graphs, any priority schedule yields a valid
// indexed-queue sequence whose evaluation computes exactly the value of
// every node.
func TestRandomGraphSequences(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		env := map[string]int64{}
		nNodes := 2 + rng.Intn(40)
		ops := []string{"+", "-", "×", "id"}
		for i := 0; i < nNodes; i++ {
			if len(g.Nodes) == 0 || rng.Intn(4) == 0 {
				name := "in" + itoa(i)
				g.Input(name)
				env[name] = int64(rng.Intn(100) - 50)
				continue
			}
			op := ops[rng.Intn(len(ops))]
			arity := 2
			if op == "id" || (op == "-" && rng.Intn(2) == 0) {
				arity = 1
			}
			args := make([]*Node, arity)
			for a := range args {
				args[a] = g.Nodes[rng.Intn(len(g.Nodes))]
			}
			g.AddOp(op, args...)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sem := arithSem(env)
		want, err := g.Eval(sem)
		if err != nil {
			t.Fatalf("seed %d: Eval: %v", seed, err)
		}

		order, err := g.Schedule(nil)
		if err != nil {
			t.Fatalf("seed %d: Schedule: %v", seed, err)
		}
		seq, err := g.GenerateSequence(order)
		if err != nil {
			t.Fatalf("seed %d: GenerateSequence: %v", seed, err)
		}
		got := map[*Node]int64{}
		recording := func(n *Node, args []int64) ([]int64, error) {
			res, err := sem(n, args)
			if err == nil {
				got[n] = res[0]
			}
			return res, err
		}
		prog, err := seq.ToIndexed(recording)
		if err != nil {
			t.Fatalf("seed %d: ToIndexed: %v", seed, err)
		}
		if _, err := queue.EvalIndexed(prog); err != nil {
			t.Fatalf("seed %d: EvalIndexed: %v", seed, err)
		}
		for n, w := range want {
			if got[n] != w[0] {
				t.Fatalf("seed %d: node %s = %d, want %d", seed, n, got[n], w[0])
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for ; v > 0; v /= 10 {
		b = append([]byte{byte('0' + v%10)}, b...)
	}
	return string(b)
}

func TestTopoOrderDeterministic(t *testing.T) {
	g, _ := fig414()
	o1, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := g.TopoOrder()
	if !reflect.DeepEqual(names(o1), names(o2)) {
		t.Error("TopoOrder not deterministic")
	}
	if !reflect.DeepEqual(names(o1), []string{"a", "b", "c", "d", "+", "-", "×", "÷", "e"}) {
		t.Errorf("TopoOrder = %v", names(o1))
	}
}

func TestNodeString(t *testing.T) {
	g, _ := fig414()
	if got := g.Nodes[0].String(); got != "a#0" {
		t.Errorf("String = %q", got)
	}
	var nilNode *Node
	if nilNode.String() != "<nil>" {
		t.Error("nil node String")
	}
}

func TestEvalErrors(t *testing.T) {
	g := New()
	x := g.Input("x")
	g.AddOp("+", x, x)
	// Semantics returning the wrong number of results is caught.
	_, err := g.Eval(func(n *Node, args []int64) ([]int64, error) {
		return []int64{1, 2}, nil
	})
	if err == nil {
		t.Error("wrong result count accepted")
	}
}

// TestControlTokenArcs reproduces the Figure 4.19 discipline: reads of an
// array may execute in any order, but a store must follow all preceding
// fetches. Control-token arcs enforce the order without adding operands.
func TestControlTokenArcs(t *testing.T) {
	g := New()
	f1 := g.AddOp("fetch")
	f2 := g.AddOp("fetch")
	f3 := g.AddOp("fetch")
	st := g.AddOp("store")
	g.AddOrder(st, f1, f2, f3)
	g.AddOrder(st, f1) // duplicates and self arcs are ignored
	g.AddOrder(st, st)
	if len(st.Order) != 3 {
		t.Fatalf("order arcs = %d, want 3", len(st.Order))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	order, err := g.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Despite store's higher priority, the control arcs force it last.
	if order[len(order)-1] != st {
		t.Errorf("store scheduled at %v", names(order))
	}
	seq, err := g.GenerateSequence(order)
	if err != nil {
		t.Fatal(err)
	}
	// Control arcs carry no operands: the store entry has arity 0 and the
	// fetches have no result offsets.
	for _, e := range seq.Entries {
		if len(e.Offsets[0]) != 0 {
			t.Errorf("%s has offsets %v; control arcs must not generate operands", e.Node, e.Offsets)
		}
	}
	// A reversed order violates the arcs.
	bad := []*Node{st, f1, f2, f3}
	if _, err := g.GenerateSequence(bad); err == nil {
		t.Error("control-token violation accepted")
	}
	// Predecessors include control arcs.
	if got := len(g.Predecessors(st)); got != 3 {
		t.Errorf("Predecessors = %d", got)
	}
	// Analysis sees the arcs: the store's cost covers the fetches.
	if got := g.Analyze().Cost(st); got != 4 {
		t.Errorf("C(store) = %d, want 4", got)
	}
}

func TestOrderArcCycleDetected(t *testing.T) {
	g := New()
	a := g.AddOp("a")
	b := g.AddOp("b")
	g.AddOrder(b, a)
	g.AddOrder(a, b)
	if err := g.Validate(); err == nil {
		t.Error("order cycle accepted")
	}
}
