// Package dfg implements the acyclic data-flow graphs of the thesis: the
// formal model of §3.6 under which such graphs are generators of valid
// indexed-queue-machine instruction sequences, and the compiler-side
// analyses of §§4.4–4.7 (predecessor/cost analysis, input sequencing by the
// π_I relation, control-token sequencing of side effects, and the
// priority-heuristic instruction sequencer of Figure 4.20).
package dfg

import "fmt"

// Node is a vertex of an acyclic data-flow graph. A node is either an
// input (a value delivered to the graph from outside — IsInput true, no
// arguments) or an operator with arity len(Args).
//
// Almost all operators produce a single result; the context-generating
// rfork actor produces two (the in and out channel identifiers of the new
// context), so edges identify the producer's result port.
type Node struct {
	ID      int
	Op      string
	IsInput bool
	Args    []Edge
	Results int // number of result ports; 0 is normalized to 1

	// Order lists control-token predecessors (§4.6): arcs that sequence
	// side-effecting actors. They constrain every ordering produced from
	// the graph but carry no operands — "they do not appear in the queue
	// machine instruction sequence derived from the data-flow graph".
	Order []*Node

	// Aux carries operator-specific payload assigned by the front end:
	// a constant value, a variable or channel name, a target graph index
	// for fork actors, and so on. The dfg analyses never interpret it.
	Aux any

	// Cost is the execution cost of the node itself used by the C(v)
	// analysis; zero means unit cost.
	Cost int

	succs []succ // maintained by Graph.addEdge
}

// Edge identifies one operand of a node: a producer node and the producer's
// result port.
type Edge struct {
	From *Node
	Port int
}

type succ struct {
	to    *Node
	port  int // producer result port feeding the successor
	arg   int // which operand slot of the successor
	order bool
}

// Arity reports A(v), the number of operands of the node.
func (n *Node) Arity() int { return len(n.Args) }

// resultPorts reports the number of result ports, normalizing zero to one.
func (n *Node) resultPorts() int {
	if n.Results <= 0 {
		return 1
	}
	return n.Results
}

func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s#%d", n.Op, n.ID)
}

// Graph is an acyclic data-flow graph under construction or analysis. Nodes
// are recorded in creation order, which also serves as the deterministic
// tie-break order for every analysis and scheduler in this package.
type Graph struct {
	Nodes []*Node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Input adds an input node (a value supplied to the graph from outside).
func (g *Graph) Input(op string) *Node {
	n := &Node{ID: len(g.Nodes), Op: op, IsInput: true}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddOp adds an operator node whose operands are the first result ports of
// the given argument nodes.
func (g *Graph) AddOp(op string, args ...*Node) *Node {
	edges := make([]Edge, len(args))
	for i, a := range args {
		edges[i] = Edge{From: a}
	}
	return g.AddOpEdges(op, edges...)
}

// AddOpEdges adds an operator node with explicit operand edges, allowing a
// specific result port of a multi-result producer to be consumed.
func (g *Graph) AddOpEdges(op string, args ...Edge) *Node {
	n := &Node{ID: len(g.Nodes), Op: op, Args: args}
	for i, e := range args {
		e.From.succs = append(e.From.succs, succ{to: n, port: e.Port, arg: i})
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddOrder installs control-token arcs: node n may not execute before every
// node in preds. Duplicate and self arcs are ignored.
func (g *Graph) AddOrder(n *Node, preds ...*Node) {
	for _, p := range preds {
		if p == nil || p == n {
			continue
		}
		dup := false
		for _, existing := range n.Order {
			if existing == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		n.Order = append(n.Order, p)
		p.succs = append(p.succs, succ{to: n, order: true})
	}
}

// Successors returns the nodes consuming any result of v, in a
// deterministic order, without duplicates.
func (g *Graph) Successors(v *Node) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	for _, s := range v.succs {
		if !seen[s.to] {
			seen[s.to] = true
			out = append(out, s.to)
		}
	}
	return out
}

// Predecessors returns P(v): the distinct producers feeding v through
// operand or control-token arcs.
func (g *Graph) Predecessors(v *Node) []*Node {
	var out []*Node
	seen := map[*Node]bool{}
	for _, e := range v.Args {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	for _, p := range v.Order {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Validate checks the well-formedness conditions of the §3.6/§4.5
// definitions: inputs have no operand arcs, every operand edge references a
// node of this graph and a valid result port, and the graph is acyclic.
func (g *Graph) Validate() error {
	index := make(map[*Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		index[n] = i
	}
	for _, n := range g.Nodes {
		if n.IsInput && len(n.Args) > 0 {
			return fmt.Errorf("dfg: input node %s has %d operand arcs", n, len(n.Args))
		}
		for _, p := range n.Order {
			if _, ok := index[p]; !ok {
				return fmt.Errorf("dfg: node %s has a foreign control-token arc from %s", n, p)
			}
		}
		for i, e := range n.Args {
			if e.From == nil {
				return fmt.Errorf("dfg: node %s operand %d is nil", n, i)
			}
			if _, ok := index[e.From]; !ok {
				return fmt.Errorf("dfg: node %s operand %d references a foreign node %s", n, i, e.From)
			}
			if e.Port < 0 || e.Port >= e.From.resultPorts() {
				return fmt.Errorf("dfg: node %s operand %d uses result port %d of %s (has %d)",
					n, i, e.Port, e.From, e.From.resultPorts())
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a sequence of the graph's nodes satisfying the π_G
// partial order (every node after all of its predecessors), breaking ties by
// node creation order. It reports an error if the graph contains a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		indeg[n] = len(n.Args) + len(n.Order)
	}
	order := make([]*Node, 0, len(g.Nodes))
	// Kahn's algorithm with a creation-order ready list for determinism.
	ready := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range g.Successors(n) {
			indeg[s] -= countEdges(s, n)
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("dfg: graph contains a cycle (%d of %d nodes ordered)", len(order), len(g.Nodes))
	}
	return order, nil
}

func countEdges(to, from *Node) int {
	c := 0
	for _, e := range to.Args {
		if e.From == from {
			c++
		}
	}
	for _, p := range to.Order {
		if p == from {
			c++
		}
	}
	return c
}

// Reaches reports whether the π_G relation v π_G w holds: v == w or there
// is a directed path from v to w.
func (g *Graph) Reaches(v, w *Node) bool {
	if v == w {
		return true
	}
	seen := map[*Node]bool{}
	var walk func(*Node) bool
	walk = func(n *Node) bool {
		if n == w {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, s := range g.Successors(n) {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(v)
}

// Inputs returns the graph's input nodes in creation order.
func (g *Graph) Inputs() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.IsInput {
			out = append(out, n)
		}
	}
	return out
}
