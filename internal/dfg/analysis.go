package dfg

import "sort"

// Analysis carries the per-node results of the §4.5 cost analysis: the
// predecessor set P*(v), the required input set I*(v), and the computation
// cost C(v).
type Analysis struct {
	g     *Graph
	preds map[*Node]map[*Node]bool // P*(v), including v
	reqIn map[*Node]map[*Node]bool // I*(v) = P*(v) ∩ I
	cost  map[*Node]int            // C(v)
}

// DepthFirstList returns a list L of the graph's nodes in which every node
// precedes all of its predecessors (equivalently, all successors of a node
// precede it) — the algorithm of Figure 4.13. Starting nodes are considered
// in creation order, which reproduces the thesis's example orderings.
func (g *Graph) DepthFirstList() []*Node {
	marked := make(map[*Node]bool, len(g.Nodes))
	list := make([]*Node, 0, len(g.Nodes))
	var search func(*Node)
	search = func(n *Node) {
		marked[n] = true
		for _, m := range g.Successors(n) {
			if !marked[m] {
				search(m)
			}
		}
		list = append(list, n)
	}
	for _, v := range g.Nodes {
		if !marked[v] {
			search(v)
		}
	}
	return list
}

// Analyze computes P*(v), I*(v) and C(v) for every node, using the
// depth-first list exactly as in Figure 4.15. A node's own contribution to
// C is its Cost field (unit if zero), so by default C(v) = |P*(v)| as in
// the thesis's example; a compiler may install per-operator execution times
// instead.
func (g *Graph) Analyze() *Analysis {
	a := &Analysis{
		g:     g,
		preds: make(map[*Node]map[*Node]bool, len(g.Nodes)),
		reqIn: make(map[*Node]map[*Node]bool, len(g.Nodes)),
		cost:  make(map[*Node]int, len(g.Nodes)),
	}
	list := g.DepthFirstList()
	// Traverse the depth-first list back to front so that every
	// predecessor is processed before its consumers.
	for i := len(list) - 1; i >= 0; i-- {
		v := list[i]
		p := map[*Node]bool{v: true}
		in := map[*Node]bool{}
		if v.IsInput {
			in[v] = true
		}
		for _, m := range g.Predecessors(v) {
			for k := range a.preds[m] {
				p[k] = true
			}
			for k := range a.reqIn[m] {
				in[k] = true
			}
		}
		a.preds[v] = p
		a.reqIn[v] = in
		c := 0
		for k := range p {
			if k.Cost > 0 {
				c += k.Cost
			} else {
				c++
			}
		}
		a.cost[v] = c
	}
	return a
}

// PredecessorSet returns P*(v) as a slice in creation order.
func (a *Analysis) PredecessorSet(v *Node) []*Node { return a.setSlice(a.preds[v]) }

// RequiredInputs returns I*(v) as a slice in creation order.
func (a *Analysis) RequiredInputs(v *Node) []*Node { return a.setSlice(a.reqIn[v]) }

// Cost returns C(v).
func (a *Analysis) Cost(v *Node) int { return a.cost[v] }

func (a *Analysis) setSlice(set map[*Node]bool) []*Node {
	out := make([]*Node, 0, len(set))
	for _, n := range a.g.Nodes {
		if set[n] {
			out = append(out, n)
		}
	}
	return out
}

// InputWeight computes W(v) = Σ_{u : v ∈ I*(u)} C(u) for an input node v —
// the total cost of all computations that require v (Figure 4.16).
func (a *Analysis) InputWeight(v *Node) int {
	w := 0
	for _, u := range a.g.Nodes {
		if a.reqIn[u][v] {
			w += a.cost[u]
		}
	}
	return w
}

// InputOrder returns the graph's input nodes in a sequence satisfying the
// π_I relation: inputs that enable more downstream computation come first
// (descending W(v), ties broken by creation order). This is the heuristic
// intercontext-communication order of §4.5: sending a context its operands
// in this order maximizes the work it can do before waiting for the next
// one.
func (a *Analysis) InputOrder() []*Node {
	inputs := a.g.Inputs()
	sort.SliceStable(inputs, func(i, j int) bool {
		return a.InputWeight(inputs[i]) > a.InputWeight(inputs[j])
	})
	return inputs
}

// DescendantCost reports Σ C(u) over all nodes u whose predecessor set
// contains v — the total computation enabled by v. For input nodes this is
// exactly the π_I weight W(v); the general form also serves graphs whose
// external inputs are modelled as receive operators rather than IsInput
// nodes.
func (a *Analysis) DescendantCost(v *Node) int {
	w := 0
	for _, u := range a.g.Nodes {
		if a.preds[u][v] {
			w += a.cost[u]
		}
	}
	return w
}
