package dfg

import (
	"fmt"

	"queuemachine/internal/queue"
)

// SeqEntry is one instruction of a generated indexed-queue-machine sequence:
// a graph node together with its result index sets, one per result port.
// Offsets are relative to the front of the operand queue after the entry's
// own operands have been removed, exactly as in the §3.5 execution model.
type SeqEntry struct {
	Node    *Node
	Offsets [][]int
}

// Sequence is a complete generated instruction sequence for one graph.
type Sequence struct {
	Entries []SeqEntry
	// MaxQueue is the deepest queue index the sequence touches; the
	// operand queue page must have at least MaxQueue+1 slots.
	MaxQueue int
}

// GenerateSequence turns a node ordering that satisfies π_G (as produced by
// Schedule or TopoOrder) into a valid indexed-queue-machine instruction
// sequence, following the §3.6 construction:
//
//	o_j = Σ_{k<j} A(v_k)                     (absolute operand positions)
//	for every edge (v_i, v_j, l): o_j + l ∈ P_i   (result index sets)
//
// The returned offsets are converted to the execution-time form (relative to
// the queue front after operand removal). GenerateSequence verifies that the
// order covers every node exactly once and respects the partial order.
func (g *Graph) GenerateSequence(order []*Node) (*Sequence, error) {
	if len(order) != len(g.Nodes) {
		return nil, fmt.Errorf("dfg: order covers %d of %d nodes", len(order), len(g.Nodes))
	}
	pos := make(map[*Node]int, len(order))
	for i, n := range order {
		if _, dup := pos[n]; dup {
			return nil, fmt.Errorf("dfg: node %s appears twice in order", n)
		}
		pos[n] = i
	}
	// Absolute operand base positions o_i.
	o := make([]int, len(order)+1)
	for i, n := range order {
		o[i+1] = o[i] + n.Arity()
	}
	entries := make([]SeqEntry, len(order))
	maxIdx := -1
	for i, n := range order {
		entries[i] = SeqEntry{Node: n, Offsets: make([][]int, n.resultPorts())}
		if n.Arity() > 0 && o[i]+n.Arity()-1 > maxIdx {
			maxIdx = o[i] + n.Arity() - 1
		}
	}
	// Distribute result indices: for each consumer operand slot, the
	// producing entry records the slot's absolute position, converted to
	// a front-relative offset.
	for _, n := range g.Nodes {
		j, ok := pos[n]
		if !ok {
			return nil, fmt.Errorf("dfg: node %s missing from order", n)
		}
		for _, p := range n.Order {
			if pos[p] >= j {
				return nil, fmt.Errorf("dfg: order violates control-token arc %s -> %s", p, n)
			}
		}
		for l, e := range n.Args {
			i := pos[e.From]
			if i >= j {
				return nil, fmt.Errorf("dfg: order violates π_G: %s scheduled at %d after consumer %s at %d",
					e.From, i, n, j)
			}
			abs := o[j] + l
			rel := abs - (o[i] + order[i].Arity())
			if rel < 0 {
				return nil, fmt.Errorf("dfg: negative result offset %d for edge %s -> %s", rel, e.From, n)
			}
			entries[i].Offsets[e.Port] = append(entries[i].Offsets[e.Port], rel)
			if abs > maxIdx {
				maxIdx = abs
			}
		}
	}
	return &Sequence{Entries: entries, MaxQueue: maxIdx}, nil
}

// Semantics supplies an evaluation function for an operator node. Inputs
// are evaluated with no arguments (args is empty); the function must return
// one value per result port.
type Semantics func(n *Node, args []int64) ([]int64, error)

// Eval evaluates the graph directly in topological order with the given
// semantics, returning every node's result values. This is the reference
// against which generated sequences are verified.
func (g *Graph) Eval(sem Semantics) (map[*Node][]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make(map[*Node][]int64, len(order))
	for _, n := range order {
		args := make([]int64, len(n.Args))
		for i, e := range n.Args {
			src, ok := vals[e.From]
			if !ok {
				return nil, fmt.Errorf("dfg: eval order broken at %s", n)
			}
			args[i] = src[e.Port]
		}
		res, err := sem(n, args)
		if err != nil {
			return nil, fmt.Errorf("dfg: evaluating %s: %w", n, err)
		}
		if len(res) != n.resultPorts() {
			return nil, fmt.Errorf("dfg: semantics returned %d results for %s, want %d", len(res), n, n.resultPorts())
		}
		vals[n] = res
	}
	return vals, nil
}

// ToIndexed converts a generated sequence over single-result nodes into an
// abstract indexed-queue-machine program (queue.IndexedInstr) with the given
// semantics, so that the sequence can be executed on the §3.5 model.
// Multi-result nodes are rejected; they only arise in full compiler output,
// which targets the concrete ISA instead.
func (s *Sequence) ToIndexed(sem Semantics) ([]queue.IndexedInstr[int64], error) {
	out := make([]queue.IndexedInstr[int64], len(s.Entries))
	for i, e := range s.Entries {
		if e.Node.resultPorts() != 1 {
			return nil, fmt.Errorf("dfg: node %s has %d result ports; abstract model supports 1", e.Node, e.Node.resultPorts())
		}
		n := e.Node
		out[i] = queue.IndexedInstr[int64]{
			Instr: queue.Instr[int64]{
				Label: n.String(),
				Arity: n.Arity(),
				Apply: func(args []int64) (int64, error) {
					res, err := sem(n, args)
					if err != nil {
						return 0, err
					}
					return res[0], nil
				},
			},
			Offsets: e.Offsets[0],
		}
	}
	return out, nil
}
