package occam

import "testing"

// FuzzParse asserts the front end is total: any byte stream either parses
// into a non-nil program or returns an error — it never panics and never
// returns nil without one. The seeds cover every construct plus the
// malformed shapes the differential fuzzer has surfaced.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"var x:\nx := 1\n",
		"var v[4], x:\nseq\n  v[0] := 3\n  x := v[0] + 1\n",
		"chan c:\nvar x:\npar\n  c ! 7\n  c ? x\n",
		"def n = 4:\nvar v[n]:\npar i = [0 for n]\n  v[i] := i * i\n",
		"var x:\nif\n  x = 0\n    x := 1\n  x <> 0\n    x := 2\n",
		"var x:\nwhile x < 10\n  x := x + 1\n",
		"proc p(value a, var r) =\n  r := a + 1\nvar x:\nseq\n  p(3, x)\n",
		"var c[byte 4]:\nc[byte 0] := 65\n",
		"var x:\nwait now after 5\n",
		// Malformed shapes: each once crashed or wedged some stage.
		"var x:\nx := 4294967296\n",
		"var v[0]:\nskip\n",
		"var v[2]:\nv[5] := 1\n",
		"chan c:\nc ! 1\n",
		"par\nskip\n",
		"seq\n   x := 1\n",
		"var x:\nx := ((((1\n",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil && prog == nil {
			t.Fatal("Parse returned nil program without an error")
		}
	})
}
