package occam

import "fmt"

// Parse scans, parses and semantically analyzes an OCCAM source text.
func Parse(src string) (*Program, error) {
	lines, err := scan(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("occam: empty program")
	}
	p := &parser{lines: lines}
	body, err := p.parseProcess(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("occam: line %d: unexpected trailing input (check indentation)", l.num)
	}
	prog := &Program{Body: body}
	if err := analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	lines []line
	pos   int
}

func (p *parser) peek() *line {
	if p.pos >= len(p.lines) {
		return nil
	}
	return &p.lines[p.pos]
}

func (p *parser) errf(l *line, format string, args ...any) error {
	num := 0
	if l != nil {
		num = l.num
	}
	return fmt.Errorf("occam: line %d: %s", num, fmt.Sprintf(format, args...))
}

// childIndent returns the indentation of the next line provided it is
// deeper than parentIndent.
func (p *parser) childIndent(parent *line) (int, error) {
	next := p.peek()
	if next == nil || next.indent <= parent.indent {
		return 0, p.errf(parent, "construct %q has no indented body", parent.toks[0].text)
	}
	return next.indent, nil
}

// parseProcess parses one process whose first line sits at exactly the
// given indentation.
func (p *parser) parseProcess(indent int) (Process, error) {
	l := p.peek()
	if l == nil {
		return nil, fmt.Errorf("occam: unexpected end of program")
	}
	if l.indent != indent {
		return nil, p.errf(l, "expected a process at indentation %d, found %d", indent, l.indent)
	}
	t0 := l.toks[0]
	if t0.kind == tokKeyword {
		switch t0.text {
		case "var", "chan", "def", "proc":
			return p.parseScope(indent)
		case "seq", "par":
			return p.parseSeqPar(indent)
		case "if":
			return p.parseIf(indent)
		case "while":
			return p.parseWhile(indent)
		case "skip":
			if len(l.toks) != 1 {
				return nil, p.errf(l, "skip takes nothing")
			}
			p.pos++
			return &Skip{P: Pos{l.num}}, nil
		case "wait":
			return p.parseWait(l)
		}
		return nil, p.errf(l, "unexpected keyword %q", t0.text)
	}
	return p.parsePrimitive(l)
}

// parseScope collects the run of declarations at this indentation and the
// process they scope over.
func (p *parser) parseScope(indent int) (Process, error) {
	first := p.peek()
	var decls []*Decl
	for {
		l := p.peek()
		if l == nil {
			return nil, p.errf(first, "declarations with no process to scope over")
		}
		if l.indent != indent || l.toks[0].kind != tokKeyword {
			break
		}
		switch l.toks[0].text {
		case "var", "chan":
			d, err := p.parseVarChan(l)
			if err != nil {
				return nil, err
			}
			decls = append(decls, d)
		case "def":
			d, err := p.parseDef(l)
			if err != nil {
				return nil, err
			}
			decls = append(decls, d)
		case "proc":
			d, err := p.parseProc(l, indent)
			if err != nil {
				return nil, err
			}
			decls = append(decls, d)
		default:
			goto done
		}
	}
done:
	body, err := p.parseProcess(indent)
	if err != nil {
		return nil, err
	}
	return &Scope{P: Pos{first.num}, Decls: decls, Body: body}, nil
}

// parseVarChan parses `var a, v[10]:` or `chan c, cs[4]:`.
func (p *parser) parseVarChan(l *line) (*Decl, error) {
	p.pos++
	kind := DeclVar
	if l.toks[0].text == "chan" {
		kind = DeclChan
	}
	d := &Decl{P: Pos{l.num}, Kind: kind}
	lp := &lineParser{p: p, l: l, i: 1}
	for {
		name, err := lp.expectIdent()
		if err != nil {
			return nil, err
		}
		item := &DeclItem{Name: name}
		if lp.accept("[") {
			item.Byte = lp.acceptKeyword("byte")
			size, err := lp.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := lp.expect("]"); err != nil {
				return nil, err
			}
			item.Size = size
		}
		d.Items = append(d.Items, item)
		if lp.accept(",") {
			continue
		}
		break
	}
	if err := lp.expect(":"); err != nil {
		return nil, err
	}
	if !lp.atEnd() {
		return nil, p.errf(l, "trailing tokens after declaration")
	}
	return d, nil
}

// parseDef parses `def n = expr:`.
func (p *parser) parseDef(l *line) (*Decl, error) {
	p.pos++
	lp := &lineParser{p: p, l: l, i: 1}
	name, err := lp.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := lp.expect("="); err != nil {
		return nil, err
	}
	value, err := lp.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if err := lp.expect(":"); err != nil {
		return nil, err
	}
	if !lp.atEnd() {
		return nil, p.errf(l, "trailing tokens after def")
	}
	return &Decl{P: Pos{l.num}, Kind: DeclDef, Name: name, Value: value}, nil
}

// parseProc parses `proc name(params) =` followed by an indented body and
// an optional terminating ":" line.
func (p *parser) parseProc(l *line, indent int) (*Decl, error) {
	p.pos++
	lp := &lineParser{p: p, l: l, i: 1}
	name, err := lp.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &Decl{P: Pos{l.num}, Kind: DeclProc, Name: name}
	if err := lp.expect("("); err != nil {
		return nil, err
	}
	if !lp.accept(")") {
		for {
			mode := ParamValue
			switch {
			case lp.acceptKeyword("value"):
			case lp.acceptKeyword("var"):
				mode = ParamVar
			case lp.acceptKeyword("vec"):
				mode = ParamVec
			case lp.acceptKeyword("chan"):
				mode = ParamChan
			}
			pname, err := lp.expectIdent()
			if err != nil {
				return nil, err
			}
			d.Param = append(d.Param, &Param{Mode: mode, Name: pname})
			if lp.accept(",") {
				continue
			}
			break
		}
		if err := lp.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := lp.expect("="); err != nil {
		return nil, err
	}
	if !lp.atEnd() {
		return nil, p.errf(l, "trailing tokens after proc header")
	}
	childIndent, err := p.childIndent(l)
	if err != nil {
		return nil, err
	}
	body, err := p.parseProcess(childIndent)
	if err != nil {
		return nil, err
	}
	d.Body = body
	// Optional scope-terminating ":" line.
	if next := p.peek(); next != nil && next.indent == indent &&
		len(next.toks) == 1 && next.toks[0].text == ":" {
		p.pos++
	}
	return d, nil
}

func (p *parser) parseSeqPar(indent int) (Process, error) {
	l := p.peek()
	p.pos++
	isPar := l.toks[0].text == "par"
	var rep *Replicator
	if len(l.toks) > 1 {
		lp := &lineParser{p: p, l: l, i: 1}
		r, err := lp.parseReplicator()
		if err != nil {
			return nil, err
		}
		if !lp.atEnd() {
			return nil, p.errf(l, "trailing tokens after replicator")
		}
		rep = r
	}
	var body []Process
	if next := p.peek(); next != nil && next.indent > indent {
		child := next.indent
		for {
			n := p.peek()
			if n == nil || n.indent != child {
				if n != nil && n.indent > child {
					return nil, p.errf(n, "inconsistent indentation")
				}
				break
			}
			proc, err := p.parseProcess(child)
			if err != nil {
				return nil, err
			}
			body = append(body, proc)
		}
	}
	if rep != nil && len(body) != 1 {
		return nil, p.errf(l, "a replicated %s needs exactly one component process, found %d", l.toks[0].text, len(body))
	}
	if isPar {
		return &Par{P: Pos{l.num}, Rep: rep, Body: body}, nil
	}
	return &Seq{P: Pos{l.num}, Rep: rep, Body: body}, nil
}

func (p *parser) parseIf(indent int) (Process, error) {
	l := p.peek()
	if len(l.toks) != 1 {
		return nil, p.errf(l, "if takes no expression on its own line")
	}
	p.pos++
	child, err := p.childIndent(l)
	if err != nil {
		return nil, err
	}
	out := &If{P: Pos{l.num}}
	for {
		n := p.peek()
		if n == nil || n.indent != child {
			if n != nil && n.indent > child {
				return nil, p.errf(n, "inconsistent indentation")
			}
			break
		}
		// A guard line: an expression.
		lp := &lineParser{p: p, l: n, i: 0}
		cond, err := lp.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if !lp.atEnd() {
			return nil, p.errf(n, "trailing tokens after guard")
		}
		p.pos++
		grand, err := p.childIndent(n)
		if err != nil {
			return nil, err
		}
		body, err := p.parseProcess(grand)
		if err != nil {
			return nil, err
		}
		out.Branches = append(out.Branches, &Guarded{P: Pos{n.num}, Cond: cond, Body: body})
	}
	if len(out.Branches) == 0 {
		return nil, p.errf(l, "if needs at least one guarded branch")
	}
	return out, nil
}

func (p *parser) parseWhile(indent int) (Process, error) {
	l := p.peek()
	p.pos++
	lp := &lineParser{p: p, l: l, i: 1}
	cond, err := lp.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if !lp.atEnd() {
		return nil, p.errf(l, "trailing tokens after while condition")
	}
	child, err := p.childIndent(l)
	if err != nil {
		return nil, err
	}
	body, err := p.parseProcess(child)
	if err != nil {
		return nil, err
	}
	return &While{P: Pos{l.num}, Cond: cond, Body: body}, nil
}

func (p *parser) parseWait(l *line) (Process, error) {
	p.pos++
	lp := &lineParser{p: p, l: l, i: 1}
	lp.acceptKeyword("now")
	if !lp.acceptKeyword("after") {
		return nil, p.errf(l, "wait needs `now after <expr>`")
	}
	after, err := lp.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if !lp.atEnd() {
		return nil, p.errf(l, "trailing tokens after wait")
	}
	return &Wait{P: Pos{l.num}, After: after}, nil
}

// parsePrimitive parses assignment, input, output and proc calls.
func (p *parser) parsePrimitive(l *line) (Process, error) {
	p.pos++
	lp := &lineParser{p: p, l: l, i: 0}
	name, err := lp.expectIdent()
	if err != nil {
		return nil, err
	}
	// Proc call?
	if lp.accept("(") {
		call := &Call{P: Pos{l.num}, Name: name}
		if !lp.accept(")") {
			for {
				arg, err := lp.parseExpr(0)
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if lp.accept(",") {
					continue
				}
				break
			}
			if err := lp.expect(")"); err != nil {
				return nil, err
			}
		}
		if !lp.atEnd() {
			return nil, p.errf(l, "trailing tokens after call")
		}
		return call, nil
	}
	ref := &VarRef{P: Pos{l.num}, Name: name}
	if lp.accept("[") {
		ref.Byte = lp.acceptKeyword("byte")
		idx, err := lp.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := lp.expect("]"); err != nil {
			return nil, err
		}
		ref.Index = idx
	}
	switch {
	case lp.accept(":="):
		value, err := lp.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if !lp.atEnd() {
			return nil, p.errf(l, "trailing tokens after assignment")
		}
		return &Assign{P: Pos{l.num}, Target: ref, Value: value}, nil
	case lp.accept("!"):
		value, err := lp.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if !lp.atEnd() {
			return nil, p.errf(l, "trailing tokens after output")
		}
		return &Output{P: Pos{l.num}, Chan: ref, Value: value}, nil
	case lp.accept("?"):
		tname, err := lp.expectIdent()
		if err != nil {
			return nil, err
		}
		target := &VarRef{P: Pos{l.num}, Name: tname}
		if lp.accept("[") {
			target.Byte = lp.acceptKeyword("byte")
			idx, err := lp.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := lp.expect("]"); err != nil {
				return nil, err
			}
			target.Index = idx
		}
		if !lp.atEnd() {
			return nil, p.errf(l, "trailing tokens after input")
		}
		return &Input{P: Pos{l.num}, Chan: ref, Target: target}, nil
	}
	return nil, p.errf(l, "expected :=, ! or ? after %q", name)
}

// lineParser parses tokens within one logical line.
type lineParser struct {
	p *parser
	l *line
	i int
}

func (lp *lineParser) atEnd() bool { return lp.i >= len(lp.l.toks) }

func (lp *lineParser) cur() token {
	if lp.atEnd() {
		return token{kind: tokEOF}
	}
	return lp.l.toks[lp.i]
}

func (lp *lineParser) accept(sym string) bool {
	if t := lp.cur(); t.kind == tokSymbol && t.text == sym {
		lp.i++
		return true
	}
	return false
}

func (lp *lineParser) acceptKeyword(kw string) bool {
	if t := lp.cur(); t.kind == tokKeyword && t.text == kw {
		lp.i++
		return true
	}
	return false
}

func (lp *lineParser) expect(sym string) error {
	if !lp.accept(sym) {
		return lp.p.errf(lp.l, "expected %q, found %s", sym, lp.cur())
	}
	return nil
}

func (lp *lineParser) expectIdent() (string, error) {
	t := lp.cur()
	if t.kind != tokIdent {
		return "", lp.p.errf(lp.l, "expected an identifier, found %s", t)
	}
	lp.i++
	return t.text, nil
}

// parseReplicator parses `name = [from for count]`.
func (lp *lineParser) parseReplicator() (*Replicator, error) {
	name, err := lp.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := lp.expect("="); err != nil {
		return nil, err
	}
	if err := lp.expect("["); err != nil {
		return nil, err
	}
	from, err := lp.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if !lp.acceptKeyword("for") {
		return nil, lp.p.errf(lp.l, "expected `for` in replicator")
	}
	count, err := lp.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if err := lp.expect("]"); err != nil {
		return nil, err
	}
	return &Replicator{P: Pos{lp.l.num}, Name: name, From: from, Count: count}, nil
}

// Operator precedence: or < and < comparisons < additive < multiplicative.
func binPrec(t token) int {
	switch {
	case t.kind == tokKeyword && t.text == "or":
		return 1
	case t.kind == tokKeyword && t.text == "and":
		return 2
	case t.kind == tokSymbol:
		switch t.text {
		case "=", "<>", "<", ">", "<=", ">=":
			return 3
		case "+", "-", "\\/", "><":
			return 4
		case "*", "/", "\\", "/\\", "<<", ">>":
			return 5
		}
	}
	return 0
}

func (lp *lineParser) parseExpr(minPrec int) (Expr, error) {
	left, err := lp.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := lp.cur()
		prec := binPrec(t)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		lp.i++
		right, err := lp.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{P: Pos{lp.l.num}, Op: t.text, A: left, B: right}
	}
}

func (lp *lineParser) parseUnary() (Expr, error) {
	t := lp.cur()
	if t.kind == tokSymbol && t.text == "-" {
		lp.i++
		x, err := lp.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{P: Pos{lp.l.num}, Op: "-", X: x}, nil
	}
	if t.kind == tokKeyword && t.text == "not" {
		lp.i++
		x, err := lp.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{P: Pos{lp.l.num}, Op: "not", X: x}, nil
	}
	return lp.parsePrimary()
}

func (lp *lineParser) parsePrimary() (Expr, error) {
	t := lp.cur()
	switch {
	case t.kind == tokNumber:
		lp.i++
		return &IntLit{P: Pos{lp.l.num}, V: t.val}, nil
	case t.kind == tokKeyword && t.text == "true":
		lp.i++
		return &IntLit{P: Pos{lp.l.num}, V: -1}, nil
	case t.kind == tokKeyword && t.text == "false":
		lp.i++
		return &IntLit{P: Pos{lp.l.num}, V: 0}, nil
	case t.kind == tokKeyword && t.text == "now":
		lp.i++
		return &NowExpr{P: Pos{lp.l.num}}, nil
	case t.kind == tokIdent:
		lp.i++
		ref := &VarRef{P: Pos{lp.l.num}, Name: t.text}
		if lp.accept("[") {
			ref.Byte = lp.acceptKeyword("byte")
			idx, err := lp.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := lp.expect("]"); err != nil {
				return nil, err
			}
			ref.Index = idx
		}
		return ref, nil
	case t.kind == tokSymbol && t.text == "(":
		lp.i++
		e, err := lp.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := lp.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, lp.p.errf(lp.l, "expected an expression, found %s", t)
}
