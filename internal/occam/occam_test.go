package occam

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func parseErr(t *testing.T, src, want string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse succeeded, want error containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not contain %q", err, want)
	}
}

func TestParseThesisIterationExample(t *testing.T) {
	// The Figure 4.6 program.
	src := `var sum, result:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  result := sum
`
	prog := parse(t, src)
	scope, ok := prog.Body.(*Scope)
	if !ok {
		t.Fatalf("body is %T", prog.Body)
	}
	if len(scope.Decls) != 1 || len(scope.Decls[0].Items) != 2 {
		t.Fatalf("decls = %+v", scope.Decls)
	}
	seq, ok := scope.Body.(*Seq)
	if !ok || len(seq.Body) != 3 {
		t.Fatalf("seq = %+v", scope.Body)
	}
	rep, ok := seq.Body[1].(*Seq)
	if !ok || rep.Rep == nil || rep.Rep.Name != "k" {
		t.Fatalf("replicated seq = %+v", seq.Body[1])
	}
	// The two `sum` references resolve to the same symbol; `k` resolves
	// to the replicator's.
	assign := rep.Body[0].(*Assign)
	bin := assign.Value.(*BinExpr)
	if bin.A.(*VarRef).Sym != assign.Target.Sym {
		t.Error("sum symbols differ")
	}
	if bin.B.(*VarRef).Sym != rep.Rep.Sym {
		t.Error("k symbol mismatch")
	}
}

func TestParseDynamicProcessCreation(t *testing.T) {
	// The Figure 4.7 / 4.10 shape.
	src := `def n = 10:
var v[n]:
par i = [0 for n]
  var square:
  seq
    square := i * i
    v[i] := square
`
	prog := parse(t, src)
	// Consecutive declarations at one indentation collect into one scope.
	scope := prog.Body.(*Scope)
	if len(scope.Decls) != 2 {
		t.Fatalf("decls = %d", len(scope.Decls))
	}
	if scope.Decls[0].Sym.Value != 10 {
		t.Errorf("def n = %d", scope.Decls[0].Sym.Value)
	}
	if scope.Decls[1].Items[0].Sym.Size != 10 {
		t.Errorf("vector size = %d", scope.Decls[1].Items[0].Sym.Size)
	}
	par := scope.Body.(*Par)
	if par.Rep == nil {
		t.Fatal("replicator missing")
	}
}

func TestParseProcAndCall(t *testing.T) {
	src := `var x, y:
proc double(value a, var b) =
  b := a + a
:
seq
  x := 4
  double(x, y)
`
	prog := parse(t, src)
	scope := prog.Body.(*Scope)
	var procDecl *Decl
	for _, d := range scope.Decls {
		if d.Kind == DeclProc {
			procDecl = d
		}
	}
	if procDecl == nil || len(procDecl.Param) != 2 {
		t.Fatalf("proc decl = %+v", procDecl)
	}
	if procDecl.Param[0].Mode != ParamValue || procDecl.Param[1].Mode != ParamVar {
		t.Error("param modes wrong")
	}
	call := scope.Body.(*Seq).Body[1].(*Call)
	if call.Sym != procDecl.Sym {
		t.Error("call does not resolve to proc")
	}
}

func TestParseRecursiveProc(t *testing.T) {
	src := `var r:
proc fact(value n, var out) =
  var sub:
  if
    n <= 1
      out := 1
    n > 1
      seq
        fact(n - 1, sub)
        out := n * sub
seq
  fact(5, r)
`
	prog := parse(t, src)
	_ = prog // resolution without error is the point: fact sees itself
}

func TestParseChannelsAndAlternatives(t *testing.T) {
	src := `chan c:
var x:
par
  c ! 3 + 4
  c ? x
`
	prog := parse(t, src)
	par := prog.Body.(*Scope).Body.(*Par)
	out := par.Body[0].(*Output)
	in := par.Body[1].(*Input)
	if out.Chan.Sym != in.Chan.Sym {
		t.Error("channel symbols differ")
	}
	if out.Chan.Sym.Kind != SymChan {
		t.Errorf("kind = %v", out.Chan.Sym.Kind)
	}
}

func TestParseWhileIfWaitSkip(t *testing.T) {
	src := `var t, x:
seq
  x := 0
  while x < 10
    seq
      x := x + 1
      skip
  t := now
  wait now after t + 100
  if
    x = 10
      skip
`
	parse(t, src)
}

func TestParseChanVector(t *testing.T) {
	src := `chan cs[4]:
var x:
par
  cs[0] ! 1
  cs[0] ? x
`
	prog := parse(t, src)
	if prog.Body.(*Scope).Decls[0].Items[0].Sym.Kind != SymVecChan {
		t.Error("chan vector kind")
	}
}

func TestOperatorPrecedenceAndFolding(t *testing.T) {
	src := `def a = 2 + 3 * 4:
def b = (2 + 3) * 4:
def c = a < b:
def d = 1 << 4:
def e = 12 /\ 10:
def f = 12 \/ 10:
def g = 12 >< 10:
def h = - 5:
def i = not 0:
def j = 17 \ 5:
skip
`
	prog := parse(t, src)
	want := map[string]int32{
		"a": 14, "b": 20, "c": -1, "d": 16,
		"e": 8, "f": 14, "g": 6, "h": -5, "i": -1, "j": 2,
	}
	for _, d := range prog.Body.(*Scope).Decls {
		if w, ok := want[d.Name]; ok && d.Sym.Value != w {
			t.Errorf("def %s = %d, want %d", d.Name, d.Sym.Value, w)
		}
	}
}

func TestScopingAndShadowing(t *testing.T) {
	src := `var x:
seq
  x := 1
  var x:
  seq
    x := 2
`
	prog := parse(t, src)
	outer := prog.Body.(*Scope)
	a1 := outer.Body.(*Seq).Body[0].(*Assign)
	innerScope := outer.Body.(*Seq).Body[1].(*Scope)
	a2 := innerScope.Body.(*Seq).Body[0].(*Assign)
	if a1.Target.Sym == a2.Target.Sym {
		t.Error("shadowed x shares a symbol")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"", "empty program"},
		{"seq\n  x := 1\n", "undeclared"},
		{"var x:\nx := y\n", "undeclared"},
		{"var x:\nseq\n    x := 1\n  x := 2\n", "indentation"},
		{"chan c:\nc := 1\n", "cannot assign"},
		{"var x:\nx ! 1\n", "not a channel"},
		{"var v[4]:\nv := 1\n", "subscript"},
		{"var x:\nx[0] := 1\n", "scalar"},
		{"var x:\nvar x:\nx := 1\n", "redeclared"},
		{"var v[0]:\nskip\n", "non-positive"},
		{"var v[z]:\nskip\n", "undeclared"},
		{"def n = x:\nskip\n", "undeclared"},
		{"var y:\ndef n = y:\nskip\n", "constant"},
		{"def n = 1/0:\nskip\n", "division by zero"},
		{"while 1\nskip\n", "no indented body"},
		{"if\nskip\n", "no indented body"},
		{"seq i = [0 for 4]\n  skip\n  skip\n", "exactly one"},
		{"proc p() =\n  skip\nseq\n  p(1)\n", "argument"},
		{"proc p(var a) =\n  skip\nvar x:\nseq\n  p(3)\n", "must be a variable"},
		{"proc p(vec v) =\n  skip\nvar x:\nseq\n  p(x)\n", "vector"},
		{"proc p(chan c) =\n  skip\nvar x:\nseq\n  p(x)\n", "not a channel"},
		{"var x:\nq(x)\n", "undeclared"},
		{"var x:\nx(3)\n", "not a proc"},
		{"var x:\nx :=\n", "expected an expression"},
		{"var x:\nx ?? 1\n", "expected"},
		{"skip extra\n", "skip takes nothing"},
		{"wait 10\n", "now after"},
		{"var x:\nx := $\n", "unexpected character"},
		{"var x:\nx := 99999999999\n", "out of range"},
		// 2^31+1 wrapped silently before the lexer bound was tightened;
		// 2^31 itself stays legal so -2147483648 can be written.
		{"var x:\nx := 2147483649\n", "out of range"},
		{"var v[2000000]:\nskip\n", "element limit"},
		// Constant subscripts are bounds-checked statically, including
		// through def folding and on channel vectors.
		{"var v[2]:\nv[5] := 1\n", "out of range"},
		{"var v[2], x:\nx := v[2]\n", "out of range"},
		{"var v[2]:\nv[-1] := 1\n", "out of range"},
		{"def n = 4:\nvar v[n]:\nv[n] := 1\n", "out of range"},
		{"chan c[2]:\npar\n  c[2] ! 1\n  skip\n", "out of range"},
		{"var v[byte 4]:\nv[byte 4] := 1\n", "out of range"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.want)
	}
}

func TestSymKindStrings(t *testing.T) {
	kinds := []SymKind{SymVar, SymVecVar, SymChan, SymVecChan, SymDef, SymProc,
		SymParamValue, SymParamVar, SymParamVec, SymParamChan}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d string %q empty or duplicated", int(k), s)
		}
		seen[s] = true
	}
}

func TestEvalBinOpErrors(t *testing.T) {
	if _, err := EvalBinOp("%%", 1, 2); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := EvalBinOp("\\", 1, 0); err == nil {
		t.Error("mod by zero accepted")
	}
}

func TestTabsAndComments(t *testing.T) {
	src := "var x: -- a variable\nseq\n\tx := 1 -- tab indented\n\tskip\n"
	parse(t, src)
}

// TestASTAccessors covers the position and classification helpers.
func TestASTAccessors(t *testing.T) {
	src := `var x, v[2], b[byte 2]:
chan c:
seq
  x := 1 + (- 2)
  v[0] := true
  b[byte 0] := x
  c ! x
  c ? x
  wait now after now
  skip
  while x < 0
    skip
  if
    x = 99
      skip
`
	prog := parse(t, src)
	var procs []Process
	var exprs []Expr
	var walkP func(p Process)
	var walkE func(e Expr)
	walkE = func(e Expr) {
		if e == nil {
			return
		}
		exprs = append(exprs, e)
		switch n := e.(type) {
		case *UnaryExpr:
			walkE(n.X)
		case *BinExpr:
			walkE(n.A)
			walkE(n.B)
		case *VarRef:
			walkE(n.Index)
		}
	}
	walkP = func(p Process) {
		procs = append(procs, p)
		switch n := p.(type) {
		case *Scope:
			walkP(n.Body)
		case *Seq:
			for _, b := range n.Body {
				walkP(b)
			}
		case *Par:
			for _, b := range n.Body {
				walkP(b)
			}
		case *While:
			walkE(n.Cond)
			walkP(n.Body)
		case *If:
			for _, g := range n.Branches {
				walkE(g.Cond)
				walkP(g.Body)
			}
		case *Assign:
			walkE(n.Target)
			walkE(n.Value)
		case *Output:
			walkE(n.Chan)
			walkE(n.Value)
		case *Input:
			walkE(n.Chan)
			walkE(n.Target)
		case *Wait:
			walkE(n.After)
		}
	}
	walkP(prog.Body)
	for _, p := range procs {
		if p.ProcPos().Line <= 0 {
			t.Errorf("%T has no position", p)
		}
	}
	for _, e := range exprs {
		if e.ExprPos().Line <= 0 {
			t.Errorf("%T has no position", e)
		}
	}
	// Symbol helpers.
	for _, s := range prog.Symbols {
		_ = s.String()
		switch s.Name {
		case "c":
			if !s.IsChannelKind() {
				t.Error("c should be a channel kind")
			}
		case "v", "b":
			if !s.IsVector() {
				t.Errorf("%s should be a vector", s.Name)
			}
		case "x":
			if s.IsVector() || s.IsChannelKind() {
				t.Error("x misclassified")
			}
		}
	}
	var nilSym *Symbol
	if nilSym.String() != "<unresolved>" {
		t.Error("nil symbol string")
	}
	if (Pos{Line: 7}).String() != "line 7" {
		t.Error("Pos string")
	}
	// VarRef display helper.
	ref := &VarRef{Name: "v", Index: &IntLit{V: 1}}
	if ref.String() != "v[...]" {
		t.Errorf("VarRef string = %q", ref.String())
	}
	if (&VarRef{Name: "x"}).String() != "x" {
		t.Error("scalar VarRef string")
	}
}

func TestByteVectorParsing(t *testing.T) {
	prog := parse(t, "var b[byte 5]:\nb[byte 2] := 7\n")
	scope := prog.Body.(*Scope)
	sym := scope.Decls[0].Items[0].Sym
	if sym.Kind != SymVecByteVar || sym.Size != 5 {
		t.Errorf("byte vector sym = %v size %d", sym.Kind, sym.Size)
	}
	asn := scope.Body.(*Assign)
	if !asn.Target.Byte {
		t.Error("byte subscript not recorded")
	}
}
