// Package occam implements the front end of the thesis's OCCAM compiler
// (§4.3, §4.8): an indentation-aware scanner, a recursive-descent parser for
// the proto-OCCAM subset the thesis compiles, and semantic analysis that
// resolves names to unique symbols.
//
// The supported language:
//
//	declarations   var x, v[10]:   chan c, cs[4]:   def n = 8:
//	               proc name(value a, var b, vec v, chan c) =
//	                 <process>
//	primitives     x := e    c ! e    c ? x    skip    wait now after e
//	constructs     seq  par  if  while e  and the replicated forms
//	               seq i = [e1 for e2]   par i = [e1 for e2]
//	calls          name(e1, e2, ...)
//
// Expressions use words as the only data type (Booleans are all-ones/zero),
// with operators + - * / \ (remainder), comparisons = <> < > <= >=, logical
// and or not, bitwise /\ \/ >< << >>, unary -, the literals true and false,
// and the real-time clock now. Conventional operator precedence is used
// (proto-OCCAM required full parenthesization; accepting precedence is a
// strict superset). Comments run from "--" to end of line.
package occam

import "fmt"

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokKeyword
	tokSymbol
)

type token struct {
	kind tokKind
	text string
	val  int32 // for tokNumber
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of line"
	}
	return fmt.Sprintf("%q", t.text)
}

// line is one logical source line: its indentation column and its tokens.
type line struct {
	num    int
	indent int
	toks   []token
}

var keywords = map[string]bool{
	"var": true, "chan": true, "def": true, "proc": true,
	"seq": true, "par": true, "if": true, "while": true,
	"for": true, "skip": true, "wait": true, "now": true, "after": true,
	"value": true, "vec": true, "byte": true,
	"true": true, "false": true, "and": true, "or": true, "not": true,
}

// twoCharSymbols are matched greedily before single characters.
var twoCharSymbols = []string{":=", "<>", "<=", ">=", "<<", ">>", "/\\", "\\/", "><"}

// scan splits source text into logical lines of tokens. Blank lines and
// comment-only lines disappear; indentation is measured in spaces (a tab
// counts as alignment to the next multiple of eight).
func scan(src string) ([]line, error) {
	var lines []line
	lineNum := 0
	for start := 0; start <= len(src); {
		end := start
		for end < len(src) && src[end] != '\n' {
			end++
		}
		raw := src[start:end]
		lineNum++
		l, err := scanLine(raw, lineNum)
		if err != nil {
			return nil, err
		}
		if l != nil {
			lines = append(lines, *l)
		}
		start = end + 1
		if end >= len(src) {
			break
		}
	}
	return lines, nil
}

func scanLine(raw string, num int) (*line, error) {
	indent := 0
	i := 0
	for ; i < len(raw); i++ {
		switch raw[i] {
		case ' ':
			indent++
		case '\t':
			indent = (indent/8 + 1) * 8
		default:
			goto body
		}
	}
body:
	l := &line{num: num, indent: indent}
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(raw) && raw[i+1] == '-':
			i = len(raw) // comment
		case isDigit(c):
			start := i
			for i < len(raw) && isDigit(raw[i]) {
				i++
			}
			var v int64
			for _, d := range raw[start:i] {
				v = v*10 + int64(d-'0')
				// 1<<31 itself is allowed so that -2147483648 lexes as
				// minus + literal; anything beyond would silently wrap.
				if v > 1<<31 {
					return nil, fmt.Errorf("occam: line %d: number %q out of range", num, raw[start:i])
				}
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: raw[start:i], val: int32(v), col: start})
		case isIdentStart(c):
			start := i
			for i < len(raw) && isIdentChar(raw[i]) {
				i++
			}
			text := raw[start:i]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			l.toks = append(l.toks, token{kind: kind, text: text, col: start})
		default:
			matched := false
			for _, sym := range twoCharSymbols {
				if len(raw)-i >= 2 && raw[i:i+2] == sym {
					l.toks = append(l.toks, token{kind: tokSymbol, text: sym, col: i})
					i += 2
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '+', '-', '*', '/', '\\', '=', '<', '>', '(', ')', '[', ']', ',', ':', '!', '?':
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), col: i})
				i++
			default:
				return nil, fmt.Errorf("occam: line %d: unexpected character %q", num, c)
			}
		}
	}
	if len(l.toks) == 0 {
		return nil, nil
	}
	return l, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '.' }
