package occam

import "fmt"

// analyze resolves every name in the program to a Symbol, folds def
// constants and vector sizes, and checks the kind rules (assignment targets
// are variables, channels are used only for communication, call arguments
// match parameter modes).
func analyze(prog *Program) error {
	a := &analyzer{prog: prog}
	a.push()
	defer a.pop()
	return a.process(prog.Body)
}

type scopeFrame map[string]*Symbol

type analyzer struct {
	prog   *Program
	scopes []scopeFrame
}

func (a *analyzer) push() { a.scopes = append(a.scopes, scopeFrame{}) }
func (a *analyzer) pop()  { a.scopes = a.scopes[:len(a.scopes)-1] }

func (a *analyzer) declare(name string, kind SymKind, pos Pos) (*Symbol, error) {
	top := a.scopes[len(a.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, fmt.Errorf("occam: %v: %q redeclared in the same scope", pos, name)
	}
	s := &Symbol{ID: len(a.prog.Symbols), Name: name, Kind: kind, Level: len(a.scopes)}
	a.prog.Symbols = append(a.prog.Symbols, s)
	top[name] = s
	return s, nil
}

func (a *analyzer) lookup(name string, pos Pos) (*Symbol, error) {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if s, ok := a.scopes[i][name]; ok {
			return s, nil
		}
	}
	return nil, fmt.Errorf("occam: %v: undeclared name %q", pos, name)
}

func (a *analyzer) process(p Process) error {
	switch n := p.(type) {
	case *Skip:
		return nil
	case *Scope:
		a.push()
		defer a.pop()
		for _, d := range n.Decls {
			if err := a.decl(d); err != nil {
				return err
			}
		}
		return a.process(n.Body)
	case *Assign:
		if err := a.assignable(n.Target); err != nil {
			return err
		}
		return a.expr(n.Value)
	case *Input:
		if err := a.channelRef(n.Chan); err != nil {
			return err
		}
		return a.assignable(n.Target)
	case *Output:
		if err := a.channelRef(n.Chan); err != nil {
			return err
		}
		return a.expr(n.Value)
	case *Wait:
		return a.expr(n.After)
	case *Seq:
		return a.seqPar(n.Rep, n.Body)
	case *Par:
		return a.seqPar(n.Rep, n.Body)
	case *If:
		for _, g := range n.Branches {
			if err := a.expr(g.Cond); err != nil {
				return err
			}
			if err := a.process(g.Body); err != nil {
				return err
			}
		}
		return nil
	case *While:
		if err := a.expr(n.Cond); err != nil {
			return err
		}
		return a.process(n.Body)
	case *Call:
		return a.call(n)
	}
	return fmt.Errorf("occam: unknown process node %T", p)
}

func (a *analyzer) seqPar(rep *Replicator, body []Process) error {
	if rep == nil {
		for _, p := range body {
			if err := a.process(p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := a.expr(rep.From); err != nil {
		return err
	}
	if err := a.expr(rep.Count); err != nil {
		return err
	}
	a.push()
	defer a.pop()
	sym, err := a.declare(rep.Name, SymVar, rep.P)
	if err != nil {
		return err
	}
	rep.Sym = sym
	return a.process(body[0])
}

func (a *analyzer) decl(d *Decl) error {
	switch d.Kind {
	case DeclVar, DeclChan:
		for _, item := range d.Items {
			kind := SymVar
			if d.Kind == DeclChan {
				kind = SymChan
			}
			size := 0
			if item.Byte && (d.Kind == DeclChan || item.Size == nil) {
				return fmt.Errorf("occam: %v: byte applies to var vectors only", d.P)
			}
			if item.Size != nil {
				v, err := a.constExpr(item.Size)
				if err != nil {
					return fmt.Errorf("occam: %v: vector size of %q: %w", d.P, item.Name, err)
				}
				if v < 1 {
					return fmt.Errorf("occam: %v: vector %q has non-positive size %d", d.P, item.Name, v)
				}
				if v > maxVectorElems {
					return fmt.Errorf("occam: %v: vector %q has size %d, above the %d-element limit", d.P, item.Name, v, maxVectorElems)
				}
				size = int(v)
				switch {
				case d.Kind == DeclChan:
					kind = SymVecChan
				case item.Byte:
					kind = SymVecByteVar
				default:
					kind = SymVecVar
				}
			}
			s, err := a.declare(item.Name, kind, d.P)
			if err != nil {
				return err
			}
			s.Size = size
			item.Sym = s
		}
		return nil
	case DeclDef:
		v, err := a.constExpr(d.Value)
		if err != nil {
			return fmt.Errorf("occam: %v: def %q: %w", d.P, d.Name, err)
		}
		s, err := a.declare(d.Name, SymDef, d.P)
		if err != nil {
			return err
		}
		s.Value = v
		d.Sym = s
		return nil
	case DeclProc:
		s, err := a.declare(d.Name, SymProc, d.P)
		if err != nil {
			return err
		}
		s.Proc = d
		d.Sym = s
		a.push()
		defer a.pop()
		for _, param := range d.Param {
			var kind SymKind
			switch param.Mode {
			case ParamValue:
				kind = SymParamValue
			case ParamVar:
				kind = SymParamVar
			case ParamVec:
				kind = SymParamVec
			case ParamChan:
				kind = SymParamChan
			}
			ps, err := a.declare(param.Name, kind, d.P)
			if err != nil {
				return err
			}
			param.Sym = ps
		}
		return a.process(d.Body)
	}
	return fmt.Errorf("occam: unknown declaration kind %d", d.Kind)
}

// assignable checks that a reference names a writable word: a scalar
// variable or parameter, or an element of a word vector.
func (a *analyzer) assignable(ref *VarRef) error {
	s, err := a.lookup(ref.Name, ref.P)
	if err != nil {
		return err
	}
	ref.Sym = s
	switch s.Kind {
	case SymVar, SymParamValue, SymParamVar:
		if ref.Index != nil {
			return fmt.Errorf("occam: %v: %q is a scalar, not a vector", ref.P, ref.Name)
		}
		return nil
	case SymVecVar, SymVecByteVar, SymParamVec:
		if ref.Index == nil {
			return fmt.Errorf("occam: %v: vector %q needs a subscript here", ref.P, ref.Name)
		}
		if err := a.byteAgreement(ref, s); err != nil {
			return err
		}
		if err := a.expr(ref.Index); err != nil {
			return err
		}
		return a.constIndexInRange(ref, s)
	default:
		return fmt.Errorf("occam: %v: cannot assign to %s %q", ref.P, s.Kind, ref.Name)
	}
}

// maxVectorElems bounds a single vector declaration so a short source text
// cannot demand an arbitrarily large data segment from every consumer.
const maxVectorElems = 1 << 20

// constIndexInRange rejects a subscript that folds to a constant provably
// outside a vector whose size is known statically. Non-constant subscripts
// remain a runtime matter, and parameter vectors have no static size.
func (a *analyzer) constIndexInRange(ref *VarRef, s *Symbol) error {
	if s.Size == 0 {
		return nil
	}
	v, err := a.constExpr(ref.Index)
	if err != nil {
		return nil
	}
	if v < 0 || int64(v) >= int64(s.Size) {
		return fmt.Errorf("occam: %v: index %d out of range for vector %q [size %d]", ref.P, v, ref.Name, s.Size)
	}
	return nil
}

// byteAgreement requires `byte` subscripts exactly on byte vectors.
func (a *analyzer) byteAgreement(ref *VarRef, s *Symbol) error {
	isByte := s.Kind == SymVecByteVar
	if ref.Byte && !isByte {
		return fmt.Errorf("occam: %v: %q is not a byte vector", ref.P, ref.Name)
	}
	if !ref.Byte && isByte {
		return fmt.Errorf("occam: %v: byte vector %q needs a [byte ...] subscript", ref.P, ref.Name)
	}
	return nil
}

// channelRef checks a reference used as a channel in ? or !.
func (a *analyzer) channelRef(ref *VarRef) error {
	s, err := a.lookup(ref.Name, ref.P)
	if err != nil {
		return err
	}
	ref.Sym = s
	switch s.Kind {
	case SymChan, SymParamChan:
		if ref.Index != nil {
			return fmt.Errorf("occam: %v: %q is a scalar channel", ref.P, ref.Name)
		}
		return nil
	case SymVecChan:
		if ref.Index == nil {
			return fmt.Errorf("occam: %v: channel vector %q needs a subscript", ref.P, ref.Name)
		}
		if err := a.expr(ref.Index); err != nil {
			return err
		}
		return a.constIndexInRange(ref, s)
	default:
		return fmt.Errorf("occam: %v: %q is a %s, not a channel", ref.P, ref.Name, s.Kind)
	}
}

// expr resolves a value expression; channels are not values.
func (a *analyzer) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit, *NowExpr:
		return nil
	case *UnaryExpr:
		return a.expr(n.X)
	case *BinExpr:
		if err := a.expr(n.A); err != nil {
			return err
		}
		return a.expr(n.B)
	case *VarRef:
		s, err := a.lookup(n.Name, n.P)
		if err != nil {
			return err
		}
		n.Sym = s
		switch s.Kind {
		case SymVar, SymDef, SymParamValue, SymParamVar:
			if n.Index != nil {
				return fmt.Errorf("occam: %v: %q is a scalar, not a vector", n.P, n.Name)
			}
			return nil
		case SymVecVar, SymVecByteVar, SymParamVec:
			if n.Index == nil {
				return fmt.Errorf("occam: %v: vector %q needs a subscript in an expression", n.P, n.Name)
			}
			if err := a.byteAgreement(n, s); err != nil {
				return err
			}
			if err := a.expr(n.Index); err != nil {
				return err
			}
			return a.constIndexInRange(n, s)
		default:
			return fmt.Errorf("occam: %v: %s %q is not a value", n.P, s.Kind, n.Name)
		}
	}
	return fmt.Errorf("occam: unknown expression node %T", e)
}

func (a *analyzer) call(c *Call) error {
	s, err := a.lookup(c.Name, c.P)
	if err != nil {
		return err
	}
	if s.Kind != SymProc {
		return fmt.Errorf("occam: %v: %q is a %s, not a proc", c.P, c.Name, s.Kind)
	}
	c.Sym = s
	proc := s.Proc
	if len(c.Args) != len(proc.Param) {
		return fmt.Errorf("occam: %v: %q needs %d argument(s), got %d", c.P, c.Name, len(proc.Param), len(c.Args))
	}
	for i, arg := range c.Args {
		param := proc.Param[i]
		switch param.Mode {
		case ParamValue:
			if err := a.expr(arg); err != nil {
				return err
			}
		case ParamVar:
			ref, ok := arg.(*VarRef)
			if !ok {
				return fmt.Errorf("occam: %v: argument %d of %q must be a variable (var parameter)", c.P, i+1, c.Name)
			}
			if err := a.assignable(ref); err != nil {
				return err
			}
			if ref.Index != nil {
				return fmt.Errorf("occam: %v: var parameter %d of %q must be a scalar variable", c.P, i+1, c.Name)
			}
		case ParamVec:
			ref, ok := arg.(*VarRef)
			if !ok || ref.Index != nil {
				return fmt.Errorf("occam: %v: argument %d of %q must be an unsubscripted vector", c.P, i+1, c.Name)
			}
			sym, err := a.lookup(ref.Name, ref.P)
			if err != nil {
				return err
			}
			ref.Sym = sym
			if sym.Kind != SymVecVar && sym.Kind != SymParamVec {
				return fmt.Errorf("occam: %v: argument %d of %q must be a word vector, got %s", c.P, i+1, c.Name, sym.Kind)
			}
		case ParamChan:
			ref, ok := arg.(*VarRef)
			if !ok {
				return fmt.Errorf("occam: %v: argument %d of %q must be a channel", c.P, i+1, c.Name)
			}
			if err := a.channelRef(ref); err != nil {
				return err
			}
		}
	}
	return nil
}

// constExpr folds a compile-time constant expression (def values, vector
// sizes, replicator bounds when static).
func (a *analyzer) constExpr(e Expr) (int32, error) {
	switch n := e.(type) {
	case *IntLit:
		return n.V, nil
	case *UnaryExpr:
		v, err := a.constExpr(n.X)
		if err != nil {
			return 0, err
		}
		if n.Op == "-" {
			return -v, nil
		}
		return ^v, nil
	case *BinExpr:
		va, err := a.constExpr(n.A)
		if err != nil {
			return 0, err
		}
		vb, err := a.constExpr(n.B)
		if err != nil {
			return 0, err
		}
		return EvalBinOp(n.Op, va, vb)
	case *VarRef:
		s, err := a.lookup(n.Name, n.P)
		if err != nil {
			return 0, err
		}
		if s.Kind != SymDef {
			return 0, fmt.Errorf("%q is not a compile-time constant", n.Name)
		}
		n.Sym = s
		return s.Value, nil
	}
	return 0, fmt.Errorf("expression is not a compile-time constant")
}

// EvalBinOp gives the word semantics of every binary operator; it is shared
// with the compiler's constant folder.
func EvalBinOp(op string, a, b int32) (int32, error) {
	boolWord := func(v bool) int32 {
		if v {
			return -1
		}
		return 0
	}
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case "\\":
		if b == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		return a % b, nil
	case "=":
		return boolWord(a == b), nil
	case "<>":
		return boolWord(a != b), nil
	case "<":
		return boolWord(a < b), nil
	case ">":
		return boolWord(a > b), nil
	case "<=":
		return boolWord(a <= b), nil
	case ">=":
		return boolWord(a >= b), nil
	case "and", "/\\":
		return a & b, nil
	case "or", "\\/":
		return a | b, nil
	case "><":
		return a ^ b, nil
	case "<<":
		return a << (uint32(b) & 31), nil
	case ">>":
		return a >> (uint32(b) & 31), nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}
