package occam

import "fmt"

// Pos locates an AST node in the source for diagnostics.
type Pos struct{ Line int }

func (p Pos) String() string { return fmt.Sprintf("line %d", p.Line) }

// SymKind classifies resolved names.
type SymKind int

const (
	SymVar SymKind = iota
	SymVecVar
	SymVecByteVar
	SymChan
	SymVecChan
	SymDef
	SymProc
	SymParamValue
	SymParamVar
	SymParamVec
	SymParamChan
)

func (k SymKind) String() string {
	switch k {
	case SymVar:
		return "var"
	case SymVecVar:
		return "var vector"
	case SymVecByteVar:
		return "byte vector"
	case SymChan:
		return "chan"
	case SymVecChan:
		return "chan vector"
	case SymDef:
		return "def"
	case SymProc:
		return "proc"
	case SymParamValue:
		return "value parameter"
	case SymParamVar:
		return "var parameter"
	case SymParamVec:
		return "vec parameter"
	case SymParamChan:
		return "chan parameter"
	default:
		return fmt.Sprintf("symkind(%d)", int(k))
	}
}

// Symbol is a resolved name. Pointer identity distinguishes shadowed names;
// ID gives a deterministic total order.
type Symbol struct {
	ID   int
	Name string
	Kind SymKind
	// Size is the element count of vector symbols.
	Size int
	// Value is the folded constant of def symbols.
	Value int32
	// Proc links a SymProc to its declaration.
	Proc *Decl
	// Level is the lexical nesting depth, for diagnostics.
	Level int
}

func (s *Symbol) String() string {
	if s == nil {
		return "<unresolved>"
	}
	return fmt.Sprintf("%s#%d", s.Name, s.ID)
}

// IsChannelKind reports whether the symbol names a channel (scalar, vector
// or parameter).
func (s *Symbol) IsChannelKind() bool {
	return s.Kind == SymChan || s.Kind == SymVecChan || s.Kind == SymParamChan
}

// IsVector reports whether the symbol names a vector (of words, bytes or
// channels).
func (s *Symbol) IsVector() bool {
	return s.Kind == SymVecVar || s.Kind == SymVecByteVar ||
		s.Kind == SymVecChan || s.Kind == SymParamVec
}

// Process is any OCCAM process (statement).
type Process interface{ ProcPos() Pos }

// Expr is any OCCAM expression.
type Expr interface{ ExprPos() Pos }

// VarRef is a reference to a named object, optionally subscripted. Byte
// marks a byte subscript (`c[byte 0]`, Figure 4.19's example).
type VarRef struct {
	P     Pos
	Name  string
	Index Expr // nil for scalar references
	Byte  bool
	Sym   *Symbol
}

func (v *VarRef) ExprPos() Pos { return v.P }
func (v *VarRef) String() string {
	if v.Index != nil {
		return v.Name + "[...]"
	}
	return v.Name
}

// IntLit is an integer literal (true and false parse to -1 and 0).
type IntLit struct {
	P Pos
	V int32
}

func (e *IntLit) ExprPos() Pos { return e.P }

// NowExpr reads the real-time clock (the "now" actor).
type NowExpr struct{ P Pos }

func (e *NowExpr) ExprPos() Pos { return e.P }

// UnaryExpr applies "-" or "not".
type UnaryExpr struct {
	P  Pos
	Op string
	X  Expr
}

func (e *UnaryExpr) ExprPos() Pos { return e.P }

// BinExpr applies a binary operator.
type BinExpr struct {
	P    Pos
	Op   string
	A, B Expr
}

func (e *BinExpr) ExprPos() Pos { return e.P }

// Skip is the no-op primitive.
type Skip struct{ P Pos }

func (s *Skip) ProcPos() Pos { return s.P }

// Assign is `target := value`.
type Assign struct {
	P      Pos
	Target *VarRef
	Value  Expr
}

func (a *Assign) ProcPos() Pos { return a.P }

// Input is `c ? x`.
type Input struct {
	P      Pos
	Chan   *VarRef
	Target *VarRef
}

func (i *Input) ProcPos() Pos { return i.P }

// Output is `c ! e`.
type Output struct {
	P     Pos
	Chan  *VarRef
	Value Expr
}

func (o *Output) ProcPos() Pos { return o.P }

// Wait is `wait now after e` (real-time synchronization).
type Wait struct {
	P     Pos
	After Expr
}

func (w *Wait) ProcPos() Pos { return w.P }

// Replicator is `name = [from for count]`.
type Replicator struct {
	P           Pos
	Name        string
	Sym         *Symbol
	From, Count Expr
}

// Seq composes processes sequentially; a non-nil Rep makes it a replicated
// seq (a counted loop).
type Seq struct {
	P    Pos
	Rep  *Replicator
	Body []Process
}

func (s *Seq) ProcPos() Pos { return s.P }

// Par composes processes in parallel; a non-nil Rep makes it a replicated
// par (dynamic process creation).
type Par struct {
	P    Pos
	Rep  *Replicator
	Body []Process
}

func (p *Par) ProcPos() Pos { return p.P }

// Guarded is one branch of an if: a condition and its process.
type Guarded struct {
	P    Pos
	Cond Expr
	Body Process
}

// If is conditional execution; the first true guard's body runs, and if
// none is true the construct behaves as skip.
type If struct {
	P        Pos
	Branches []*Guarded
}

func (i *If) ProcPos() Pos { return i.P }

// While is `while cond` with an indented body.
type While struct {
	P    Pos
	Cond Expr
	Body Process
}

func (w *While) ProcPos() Pos { return w.P }

// Call invokes a declared proc.
type Call struct {
	P    Pos
	Name string
	Args []Expr
	Sym  *Symbol
}

func (c *Call) ProcPos() Pos { return c.P }

// DeclKind classifies declarations.
type DeclKind int

const (
	DeclVar DeclKind = iota
	DeclChan
	DeclDef
	DeclProc
)

// DeclItem is one name in a var/chan declaration, with an optional vector
// size expression; Byte marks a byte vector (`var c[byte 3]:`, §5.3.1).
type DeclItem struct {
	Name string
	Size Expr // nil for scalars
	Byte bool
	Sym  *Symbol
}

// ParamMode is the passing mode of a proc parameter.
type ParamMode int

const (
	// ParamValue passes by value.
	ParamValue ParamMode = iota
	// ParamVar passes a scalar copy-in/copy-out (the thesis's live "var
	// formal" discipline).
	ParamVar
	// ParamVec passes a vector by reference (its base address).
	ParamVec
	// ParamChan passes a channel identifier.
	ParamChan
)

// Param is one formal parameter of a proc.
type Param struct {
	Mode ParamMode
	Name string
	Sym  *Symbol
}

// Decl is a declaration prefixing a process.
type Decl struct {
	P     Pos
	Kind  DeclKind
	Items []*DeclItem // var/chan
	Name  string      // def/proc
	Value Expr        // def
	Param []*Param    // proc
	Body  Process     // proc
	Sym   *Symbol     // def/proc
}

// Scope is one or more declarations followed by the process they scope
// over.
type Scope struct {
	P     Pos
	Decls []*Decl
	Body  Process
}

func (s *Scope) ProcPos() Pos { return s.P }

// Program is a parsed and analyzed compilation unit.
type Program struct {
	Body Process
	// Symbols lists every symbol in creation order.
	Symbols []*Symbol
}
