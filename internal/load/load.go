// Package load is an open-loop load generator for the qmd/qgate serving
// tier: it fires /run requests at a fixed offered rate with a
// Zipf-skewed program corpus and reports throughput, per-status and
// per-replica counts, cache and coalescing behaviour, and an HDR-style
// latency histogram.
//
// Open-loop means requests launch at their scheduled times no matter how
// the server is doing — a slow server does not slow the generator down,
// it just accumulates in-flight requests (up to MaxInFlight; beyond that
// the generator counts a drop rather than blocking, preserving the
// offered-rate semantics). This is the load model that exposes queueing
// collapse; closed-loop generators hide it by self-throttling.
//
// The Zipf skew mirrors real compile-service traffic: a few hot programs
// dominate, which is precisely the regime the serving tier's coalescing
// and cache layers are built for. Skew s=1.1 over the Chapter-6 corpus
// sends roughly half of all requests to the hottest two programs.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"queuemachine/internal/fleet"
	"queuemachine/internal/gate"
	"queuemachine/internal/workloads"
	"queuemachine/internal/xtrace"
)

// Program is one corpus entry: a named OCCAM source.
type Program struct {
	Name   string
	Source string
}

// Corpus returns a named program set: "chapter6" (the thesis evaluation
// workloads at several sizes), "gen2" (the second-generation suite), or
// "all" (both).
func Corpus(name string) ([]Program, error) {
	var wls []workloads.Workload
	chapter6 := func() {
		for n := 2; n <= 4; n++ {
			wls = append(wls, workloads.MatMul(n))
		}
		for logN := 2; logN <= 3; logN++ {
			wls = append(wls, workloads.FFT(logN))
		}
		for n := 2; n <= 4; n++ {
			wls = append(wls, workloads.Cholesky(n))
		}
		for n := 2; n <= 5; n++ {
			wls = append(wls, workloads.Congruence(n))
		}
		for _, n := range []int{8, 16, 32} {
			wls = append(wls, workloads.BinaryRecursiveSum(n))
			wls = append(wls, workloads.IterativeSum(n))
		}
	}
	gen2 := func() {
		for logN := 2; logN <= 3; logN++ {
			wls = append(wls, workloads.Bitonic(logN))
		}
		for n := 2; n <= 4; n++ {
			wls = append(wls, workloads.LU(n))
		}
		wls = append(wls, workloads.Stencil(6, 2))
		wls = append(wls, workloads.Chain(12))
	}
	switch name {
	case "chapter6":
		chapter6()
	case "gen2":
		gen2()
	case "all":
		chapter6()
		gen2()
	default:
		return nil, fmt.Errorf("load: unknown corpus %q (want chapter6, gen2, or all)", name)
	}
	progs := make([]Program, len(wls))
	for i, wl := range wls {
		progs[i] = Program{Name: wl.Name, Source: wl.Source}
	}
	return progs, nil
}

// Options configures one load run.
type Options struct {
	// Rate is the offered request rate in req/s (required, > 0).
	Rate float64
	// Duration is how long to offer load (required, > 0).
	Duration time.Duration
	// Skew is the Zipf s parameter over the corpus (must be > 1;
	// default 1.1). Larger is hotter.
	Skew float64
	// Seed makes the program sequence reproducible (default 1).
	Seed uint64
	// PEs is the simulated machine size each run asks for (default 2).
	PEs int
	// MaxInFlight bounds concurrent outstanding requests; beyond it a
	// scheduled request is counted as dropped, not delayed (default 256).
	MaxInFlight int
	// Timeout bounds each request (default 30s).
	Timeout time.Duration
	// Corpus names the program set (default "chapter6").
	Corpus string
	// TraceSample sends a fresh X-Qmd-Trace id on every Nth fired request
	// (0 disables). The serving tier records those requests in its flight
	// recorders, and the report lists every sampled id with its observed
	// latency so the slowest traces can be pulled from /debugz/traces
	// after the run.
	TraceSample int
	// SLOP99 declares the run's p99 latency objective; the report carries
	// the verdict and callers (qload's -slo-p99 gate) may fail on a miss.
	// Zero disables the check.
	SLOP99 time.Duration
}

func (o Options) withDefaults() Options {
	if o.Skew <= 1 {
		o.Skew = 1.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.PEs <= 0 {
		o.PEs = 2
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 256
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Corpus == "" {
		o.Corpus = "chapter6"
	}
	return o
}

// Report is the outcome of one load run.
type Report struct {
	Target          string  `json:"target"`
	Corpus          string  `json:"corpus"`
	Programs        int     `json:"programs"`
	Skew            float64 `json:"skew"`
	PEs             int     `json:"pes"`
	OfferedRate     float64 `json:"offered_rate"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Offered counts scheduled requests; Sent the ones actually fired
	// (Offered - Dropped); Completed the ones that got an HTTP response.
	Offered         int64 `json:"offered"`
	Sent            int64 `json:"sent"`
	Dropped         int64 `json:"dropped"`
	Completed       int64 `json:"completed"`
	TransportErrors int64 `json:"transport_errors"`
	// AchievedRPS is completed responses per second of wall-clock run time.
	AchievedRPS float64 `json:"achieved_rps"`
	// Status counts responses by HTTP status code ("200", "429", ...).
	Status map[string]int64 `json:"status"`
	// Cache counts responses by X-Qmd-Cache header value ("hit",
	// "coalesced", "disk", "peer", "miss"); Replicas by the
	// X-Qmd-Replica header when the target is a gate.
	Cache    map[string]int64 `json:"cache"`
	Replicas map[string]int64 `json:"replicas,omitempty"`
	// CoalescedRate and CacheHitRate are fractions of 2xx responses
	// answered by joining an in-flight execution, respectively by any
	// cache tier (memory, disk, peer) without executing.
	CoalescedRate float64 `json:"coalesced_rate"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// Server5xx totals responses with status >= 500.
	Server5xx int64          `json:"server_5xx"`
	Latency   fleet.Snapshot `json:"latency"`
	// SLO is the run's latency verdict, present when an objective was
	// declared (Options.SLOP99).
	SLO *SLOOutcome `json:"slo,omitempty"`
	// SampledTraces lists the trace-sampled requests slowest-first, so
	// `head -n` of the list is exactly "the N slowest sampled traces".
	// Present when Options.TraceSample > 0.
	SampledTraces []SampledTrace `json:"sampled_traces,omitempty"`
}

// SLOOutcome scores the whole run against its p99 objective.
type SLOOutcome struct {
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	P99Seconds       float64 `json:"p99_seconds"`
	Pass             bool    `json:"pass"`
}

// SampledTrace is one trace-sampled request's outcome: the id to look up
// in a flight recorder, and what the client observed.
type SampledTrace struct {
	ID             string  `json:"id"`
	Status         int     `json:"status"`
	LatencySeconds float64 `json:"latency_seconds"`
	TransportError bool    `json:"transport_error,omitempty"`
}

// maxSampledTraces bounds the sampled-trace list so an extreme
// rate×duration×sample combination cannot grow the report unboundedly.
const maxSampledTraces = 4096

// collector accumulates results from concurrent request goroutines.
type collector struct {
	mu        sync.Mutex
	status    map[string]int64
	cache     map[string]int64
	replicas  map[string]int64
	completed int64
	transport int64
	hist      *fleet.Histogram
	sampled   []SampledTrace
}

func (c *collector) response(status int, cacheState, replica string, trace xtrace.TraceID, d time.Duration) {
	c.hist.Observe(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed++
	c.status[strconv.Itoa(status)]++
	if cacheState != "" {
		c.cache[cacheState]++
	}
	if replica != "" {
		c.replicas[replica]++
	}
	if trace != "" && len(c.sampled) < maxSampledTraces {
		c.sampled = append(c.sampled, SampledTrace{
			ID: string(trace), Status: status, LatencySeconds: d.Seconds(),
		})
	}
}

func (c *collector) transportError(trace xtrace.TraceID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.transport++
	if trace != "" && len(c.sampled) < maxSampledTraces {
		c.sampled = append(c.sampled, SampledTrace{ID: string(trace), TransportError: true})
	}
}

// Run offers load against target (a qmd replica or a qgate front proxy)
// and blocks until the run completes and every in-flight request has
// resolved. ctx cancellation stops scheduling new requests early.
func Run(ctx context.Context, target string, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if opts.Rate <= 0 || opts.Duration <= 0 {
		return nil, fmt.Errorf("load: Rate and Duration are required")
	}
	progs, err := Corpus(opts.Corpus)
	if err != nil {
		return nil, err
	}
	// Pre-marshal every request body: the scheduling loop must do no
	// per-request allocation heavier than a goroutine spawn, or the
	// generator itself becomes the bottleneck it is measuring.
	bodies := make([][]byte, len(progs))
	for i, p := range progs {
		body, err := json.Marshal(map[string]any{"source": p.Source, "pes": opts.PEs})
		if err != nil {
			return nil, fmt.Errorf("load: marshal %s: %w", p.Name, err)
		}
		bodies[i] = body
	}
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed))
	zipf := rand.NewZipf(rng, opts.Skew, 1, uint64(len(progs)-1))

	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        opts.MaxInFlight,
			MaxIdleConnsPerHost: opts.MaxInFlight,
		},
	}
	col := &collector{
		status:   make(map[string]int64),
		cache:    make(map[string]int64),
		replicas: make(map[string]int64),
		hist:     fleet.NewLatencyHistogram(),
	}
	sem := make(chan struct{}, opts.MaxInFlight)
	var wg sync.WaitGroup
	var offered, sent, dropped int64

	interval := time.Duration(float64(time.Second) / opts.Rate)
	start := time.Now()
	end := start.Add(opts.Duration)
	for n := int64(0); ; n++ {
		// Drift-free schedule: request n fires at start + n·interval,
		// not interval after whenever request n-1 happened to fire.
		next := start.Add(time.Duration(n) * interval)
		if next.After(end) {
			break
		}
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break // stop scheduling; fall through to drain in-flight work
		}
		offered++
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		sent++
		body := bodies[zipf.Uint64()]
		var trace xtrace.TraceID
		if opts.TraceSample > 0 && sent%int64(opts.TraceSample) == 1 {
			trace = xtrace.NewTraceID()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fire(ctx, client, target, body, trace, col)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	col.mu.Lock()
	defer col.mu.Unlock()
	rep := &Report{
		Target:          target,
		Corpus:          opts.Corpus,
		Programs:        len(progs),
		Skew:            opts.Skew,
		PEs:             opts.PEs,
		OfferedRate:     opts.Rate,
		DurationSeconds: elapsed.Seconds(),
		Offered:         offered,
		Sent:            sent,
		Dropped:         dropped,
		Completed:       col.completed,
		TransportErrors: col.transport,
		Status:          col.status,
		Cache:           col.cache,
		Replicas:        col.replicas,
		Latency:         col.hist.Snapshot(),
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(col.completed) / elapsed.Seconds()
	}
	var ok2xx int64
	for code, n := range col.status {
		if code[0] == '2' {
			ok2xx += n
		}
		if code[0] == '5' {
			rep.Server5xx += n
		}
	}
	if ok2xx > 0 {
		rep.CoalescedRate = float64(col.cache["coalesced"]) / float64(ok2xx)
		served := col.cache["hit"] + col.cache["disk"] + col.cache["peer"]
		rep.CacheHitRate = float64(served) / float64(ok2xx)
	}
	if len(col.sampled) > 0 {
		rep.SampledTraces = col.sampled
		sort.Slice(rep.SampledTraces, func(i, j int) bool {
			return rep.SampledTraces[i].LatencySeconds > rep.SampledTraces[j].LatencySeconds
		})
	}
	if opts.SLOP99 > 0 {
		p99 := col.hist.Quantile(0.99)
		rep.SLO = &SLOOutcome{
			TargetP99Seconds: opts.SLOP99.Seconds(),
			P99Seconds:       p99.Seconds(),
			Pass:             p99 <= opts.SLOP99,
		}
	}
	return rep, nil
}

// fire sends one request and records its outcome. Transport errors and
// responses are both terminal outcomes: open-loop load never retries.
func fire(ctx context.Context, client *http.Client, target string, body []byte, trace xtrace.TraceID, col *collector) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/run", bytes.NewReader(body))
	if err != nil {
		col.transportError(trace)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		// A minted trace id is all it takes: the gate (or replica) opens
		// its root span under this id and records the trace server-side.
		req.Header.Set(xtrace.TraceHeader, string(trace))
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		col.transportError(trace)
		return
	}
	d := time.Since(start)
	// Drain so the connection is reusable; the content was already
	// validated server-side and the generator only scores headers.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	col.response(resp.StatusCode, resp.Header.Get("X-Qmd-Cache"),
		resp.Header.Get(gate.ReplicaHeader), trace, d)
}

// WriteText renders the report for humans.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "target       %s (corpus %s, %d programs, zipf s=%.2f, pes=%d)\n",
		r.Target, r.Corpus, r.Programs, r.Skew, r.PEs)
	fmt.Fprintf(w, "offered      %d req @ %.0f req/s over %.1fs\n",
		r.Offered, r.OfferedRate, r.DurationSeconds)
	fmt.Fprintf(w, "completed    %d (%.1f req/s achieved), dropped %d, transport errors %d\n",
		r.Completed, r.AchievedRPS, r.Dropped, r.TransportErrors)
	fmt.Fprintf(w, "status       %s\n", formatCounts(r.Status))
	fmt.Fprintf(w, "cache        %s\n", formatCounts(r.Cache))
	if len(r.Replicas) > 0 {
		fmt.Fprintf(w, "replicas     %s\n", formatCounts(r.Replicas))
	}
	fmt.Fprintf(w, "coalesced    %.1f%% of 2xx; cache hits %.1f%%\n",
		100*r.CoalescedRate, 100*r.CacheHitRate)
	l := r.Latency
	fmt.Fprintf(w, "latency      p50 %s  p90 %s  p99 %s  p999 %s  max %s  (mean %s, n=%d)\n",
		fmtSecs(l.P50Seconds), fmtSecs(l.P90Seconds), fmtSecs(l.P99Seconds),
		fmtSecs(l.P999Seconds), fmtSecs(l.MaxSeconds), fmtSecs(l.MeanSeconds), l.Count)
	if r.SLO != nil {
		verdict := "PASS"
		if !r.SLO.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "slo          p99 %s vs objective %s: %s\n",
			fmtSecs(r.SLO.P99Seconds), fmtSecs(r.SLO.TargetP99Seconds), verdict)
	}
	if n := len(r.SampledTraces); n > 0 {
		show := min(n, 5)
		fmt.Fprintf(w, "traces       %d sampled; slowest:", n)
		for _, st := range r.SampledTraces[:show] {
			fmt.Fprintf(w, " %s(%s)", st.ID, fmtSecs(st.LatencySeconds))
		}
		fmt.Fprintln(w)
	}
}

func fmtSecs(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func formatCounts(m map[string]int64) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s=%d", k, m[k])
	}
	return b.String()
}
