package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"queuemachine/internal/service"
)

func TestCorpus(t *testing.T) {
	for _, name := range []string{"chapter6", "gen2", "all"} {
		progs, err := Corpus(name)
		if err != nil {
			t.Fatalf("Corpus(%q): %v", name, err)
		}
		if len(progs) < 2 {
			t.Errorf("Corpus(%q) has %d programs", name, len(progs))
		}
		seen := make(map[string]bool)
		for _, p := range progs {
			if p.Name == "" || p.Source == "" {
				t.Errorf("Corpus(%q) has empty program %+v", name, p)
			}
			if seen[p.Name] {
				t.Errorf("Corpus(%q) repeats %q", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
	if _, err := Corpus("nope"); err == nil {
		t.Error("unknown corpus accepted")
	}
}

// TestRunAgainstFake checks the open-loop accounting against a trivially
// fast fake server, so the test is about the generator, not the simulator.
func TestRunAgainstFake(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Add(1)
		w.Header().Set("X-Qmd-Cache", "hit")
		w.Write([]byte(`{"cached":true}`))
	}))
	defer ts.Close()

	rep, err := Run(context.Background(), ts.URL, Options{
		Rate:     200,
		Duration: 500 * time.Millisecond,
		PEs:      1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Offered < 50 {
		t.Errorf("offered = %d, expected ~100", rep.Offered)
	}
	if rep.Completed != got.Load() {
		t.Errorf("report completed = %d, server saw %d", rep.Completed, got.Load())
	}
	if rep.Sent != rep.Offered-rep.Dropped {
		t.Errorf("sent %d != offered %d - dropped %d", rep.Sent, rep.Offered, rep.Dropped)
	}
	if rep.Status["200"] != rep.Completed {
		t.Errorf("status map %v does not account for %d completions", rep.Status, rep.Completed)
	}
	if rep.Cache["hit"] != rep.Completed {
		t.Errorf("cache map %v missing hits", rep.Cache)
	}
	if rep.CacheHitRate != 1 {
		t.Errorf("cache hit rate = %g, want 1", rep.CacheHitRate)
	}
	if rep.Latency.Count != rep.Completed {
		t.Errorf("latency count = %d, want %d", rep.Latency.Count, rep.Completed)
	}
	var b strings.Builder
	rep.WriteText(&b)
	if !strings.Contains(b.String(), "p99") {
		t.Errorf("text report missing latency line:\n%s", b.String())
	}
}

// TestRunEndToEnd drives a real service at low rate: every response must
// be 2xx and the hot Zipf head must produce cache hits or coalescing.
func TestRunEndToEnd(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	rep, err := Run(context.Background(), ts.URL, Options{
		Rate:     40,
		Duration: time.Second,
		Skew:     1.5,
		PEs:      1,
		Corpus:   "chapter6",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Server5xx != 0 {
		t.Errorf("5xx responses: %d (%v)", rep.Server5xx, rep.Status)
	}
	if rep.TransportErrors != 0 {
		t.Errorf("transport errors: %d", rep.TransportErrors)
	}
	// With 25 programs, a hot Zipf head, and ~40 requests, repeats are
	// certain; each repeat is a hit or a coalesce.
	if rep.Cache["hit"]+rep.Cache["coalesced"] == 0 {
		t.Errorf("no cache hits or coalesced responses: %v", rep.Cache)
	}
}
