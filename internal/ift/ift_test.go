package ift

import (
	"reflect"
	"strings"
	"testing"

	"queuemachine/internal/occam"
)

func build(t *testing.T, src string) (*occam.Program, *Table) {
	t.Helper()
	prog, err := occam.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	table, err := Build(prog)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog, table
}

func valueNames(vals []Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

// TestTable43 reproduces Table 4.3: the IFT of
//
//	seq
//	  x := x + 1
//	  y := x
//
// The seq entry has I = {x}, O = {x, y}; the first assignment's definition
// of x is used by the second; and x's first use links to the seq's import.
func TestTable43(t *testing.T) {
	prog, table := build(t, `var x, y:
seq
  x := x + 1
  y := x
`)
	scope := prog.Body.(*occam.Scope)
	seqNode := scope.Body.(*occam.Seq)
	seqEntry, err := table.Entry(seqNode)
	if err != nil {
		t.Fatal(err)
	}
	if seqEntry.Kind != KSeq {
		t.Fatalf("kind = %v", seqEntry.Kind)
	}
	if got := valueNames(seqEntry.Inputs()); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("I(seq) = %v, want [x]", got)
	}
	if got := valueNames(seqEntry.Outputs()); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("O(seq) = %v, want [x y]", got)
	}

	a1, err := table.Entry(seqNode.Body[0])
	if err != nil {
		t.Fatal(err)
	}
	a2, err := table.Entry(seqNode.Body[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := valueNames(a1.Inputs()); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("I(a1) = %v", got)
	}
	if got := valueNames(a1.Outputs()); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("O(a1) = %v", got)
	}
	if got := valueNames(a2.Outputs()); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("O(a2) = %v", got)
	}

	// Use/definition links: a1's x definition is used by a2; a1's x use
	// resolves to the seq's import.
	xOut := a1.O[0]
	if !xOut.U[a2.Index] {
		t.Errorf("U(a1.x) = %v, want a2 (%d)", xOut.U, a2.Index)
	}
	xIn := a1.I[0]
	if !xIn.D[seqEntry.Index] {
		t.Errorf("D(a1.x) = %v, want seq (%d)", xIn.D, seqEntry.Index)
	}
	if !a2.I[0].D[a1.Index] {
		t.Errorf("D(a2.x) = %v, want a1 (%d)", a2.I[0].D, a1.Index)
	}

	// Liveness: a1's x is used by a2, hence live; a2's y has no further
	// use, hence dead.
	if !xOut.Live {
		t.Error("a1.x should be live")
	}
	if a2.O[0].Live {
		t.Error("a2.y should be dead at program end")
	}
}

// TestChannelEntries checks the Table 4.1 shapes for input and output: both
// use and regenerate the control token K, output reads the sent expression,
// and the channel identifier itself is an input value.
func TestChannelEntries(t *testing.T) {
	prog, table := build(t, `chan c:
var x, y:
par
  c ! x + 1
  c ? y
`)
	par := prog.Body.(*occam.Scope).Body.(*occam.Par)
	out, _ := table.Entry(par.Body[0])
	in, _ := table.Entry(par.Body[1])
	if got := valueNames(out.Inputs()); !reflect.DeepEqual(got, []string{"K", "c", "x"}) {
		t.Errorf("I(output) = %v", got)
	}
	if got := valueNames(out.Outputs()); !reflect.DeepEqual(got, []string{"K"}) {
		t.Errorf("O(output) = %v", got)
	}
	if got := valueNames(in.Inputs()); !reflect.DeepEqual(got, []string{"K", "c"}) {
		t.Errorf("I(input) = %v", got)
	}
	if got := valueNames(in.Outputs()); !reflect.DeepEqual(got, []string{"K", "y"}) {
		t.Errorf("O(input) = %v", got)
	}
	// The channel allocation defines c ahead of the par.
	if len(in.I[1].D) == 0 {
		t.Error("channel use has no definition link (chan alloc missing)")
	}
}

// TestWhileLoopCarried checks the loop liveness rule: a value used only by
// the containing while entry but listed among the loop's inputs is
// loop-carried and therefore live.
func TestWhileLoopCarried(t *testing.T) {
	prog, table := build(t, `var k, s:
seq
  k := 0
  s := 0
  while k < 8
    seq
      s := s + k
      k := k + 1
  s := s + 1
`)
	scope := prog.Body.(*occam.Scope)
	outerSeq := scope.Body.(*occam.Seq)
	while := outerSeq.Body[2].(*occam.While)
	wEntry, _ := table.Entry(while)
	if wEntry.Kind != KWhile {
		t.Fatalf("kind = %v", wEntry.Kind)
	}
	if got := valueNames(wEntry.Inputs()); !reflect.DeepEqual(got, []string{"k", "s"}) {
		t.Errorf("I(while) = %v", got)
	}
	if got := valueNames(wEntry.Outputs()); !reflect.DeepEqual(got, []string{"s", "k"}) {
		t.Errorf("O(while) = %v", got)
	}
	// Inside the loop body: k's definition is used only by the loop
	// itself but is loop-carried, hence live; s is both carried and used
	// after the loop.
	bodySeq := while.Body.(*occam.Seq)
	kAssign, _ := table.Entry(bodySeq.Body[1])
	if !kAssign.O[0].Live {
		t.Error("loop-carried k not live")
	}
	sAssign, _ := table.Entry(bodySeq.Body[0])
	if !sAssign.O[0].Live {
		t.Error("s not live in loop body")
	}
	// The while's own outputs: s is used by the final assignment (live);
	// k is not used after the loop (dead).
	for _, vi := range wEntry.O {
		if vi.Val.Sym.Name == "s" && !vi.Live {
			t.Error("while's s output should be live")
		}
		if vi.Val.Sym.Name == "k" && vi.Live {
			t.Error("while's k output should be dead")
		}
	}
}

// TestVectorTokens checks the §4.6 discipline: reads of a vector import its
// K_v token; writes import and regenerate it.
func TestVectorTokens(t *testing.T) {
	prog, table := build(t, `var v[8], x:
seq
  v[0] := 3
  x := v[0] + v[1]
`)
	seq := prog.Body.(*occam.Scope).Body.(*occam.Seq)
	w, _ := table.Entry(seq.Body[0])
	r, _ := table.Entry(seq.Body[1])
	if got := valueNames(w.Inputs()); !reflect.DeepEqual(got, []string{"K_v"}) {
		t.Errorf("I(write) = %v", got)
	}
	if got := valueNames(w.Outputs()); !reflect.DeepEqual(got, []string{"K_v"}) {
		t.Errorf("O(write) = %v", got)
	}
	if got := valueNames(r.Inputs()); !reflect.DeepEqual(got, []string{"K_v"}) {
		t.Errorf("I(read) = %v", got)
	}
	// The read's token links to the write's token (read after write).
	if !r.I[0].D[w.Index] {
		t.Errorf("read token definition = %v, want write (%d)", r.I[0].D, w.Index)
	}
}

// TestProcSummaries checks free-variable summaries, including through
// recursion and vec-parameter token translation.
func TestProcSummaries(t *testing.T) {
	prog, table := build(t, `def n = 4:
var g, data[4], out[4]:
proc leaf(value i, vec d) =
  d[i] := g + i
proc walk(value i, vec d) =
  if
    i < n
      seq
        leaf(i, d)
        walk(i + 1, d)
    i >= n
      skip
seq
  g := 7
  walk(0, data)
`)
	var leafSym, walkSym *occam.Symbol
	for _, s := range prog.Symbols {
		switch {
		case s.Name == "leaf" && s.Kind == occam.SymProc:
			leafSym = s
		case s.Name == "walk" && s.Kind == occam.SymProc:
			walkSym = s
		}
	}
	if leafSym == nil || walkSym == nil {
		t.Fatal("proc symbols missing")
	}
	leafSum := table.Summary[leafSym]
	if got := valueNames(leafSum.FreeIn); !reflect.DeepEqual(got, []string{"g"}) {
		t.Errorf("leaf FreeIn = %v", got)
	}
	// walk calls leaf: g flows transitively into walk's summary.
	walkSum := table.Summary[walkSym]
	found := false
	for _, v := range walkSum.FreeIn {
		if v.String() == "g" {
			found = true
		}
	}
	if !found {
		t.Errorf("walk FreeIn = %v, want g (transitive through leaf)", valueNames(walkSum.FreeIn))
	}
	// Neither summary leaks the vec parameter's token as a free value —
	// it is translated to the actual argument at each call site.
	for _, v := range walkSum.FreeIn {
		if v.Token && v.Sym != nil && v.Sym.Kind == occam.SymParamVec {
			t.Errorf("walk FreeIn leaks param token %v", v)
		}
	}
}

// TestFreeScalarWriteRejected checks the documented restriction: a proc may
// not assign a free scalar (use a var parameter).
func TestFreeScalarWriteRejected(t *testing.T) {
	prog, err := occam.Parse(`var g:
proc bad() =
  g := 1
seq
  bad()
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(prog); err == nil || !strings.Contains(err.Error(), "free variable") {
		t.Errorf("want free-variable error, got %v", err)
	}
}

// TestVarParamsLive checks rule 3: var formals are live even without uses.
func TestVarParamsLive(t *testing.T) {
	prog, table := build(t, `var x:
proc set(var o) =
  o := 42
seq
  set(x)
`)
	var setSym *occam.Symbol
	for _, s := range prog.Symbols {
		if s.Name == "set" && s.Kind == occam.SymProc {
			setSym = s
		}
	}
	root := table.At(table.ProcRoot[setSym])
	live := root.LiveOutputs()
	if len(live) != 1 || live[0].Sym.Name != "o" {
		t.Errorf("proc live outputs = %v", valueNames(live))
	}
}

// TestParIndependentChains checks that parallel components do not see each
// other's definitions (each has its own E chain).
func TestParIndependentChains(t *testing.T) {
	prog, table := build(t, `var a, b:
seq
  a := 1
  par
    b := a
    a := 2
`)
	par := prog.Body.(*occam.Scope).Body.(*occam.Seq).Body[1].(*occam.Par)
	pEntry, _ := table.Entry(par)
	if len(pEntry.E) != 2 {
		t.Fatalf("par chains = %d", len(pEntry.E))
	}
	// b := a links to the seq-level a := 1, not to the sibling a := 2.
	read, _ := table.Entry(par.Body[0])
	sibling, _ := table.Entry(par.Body[1])
	if read.I[0].D[sibling.Index] {
		t.Error("par sibling definitions leaked across chains")
	}
}

// TestReplicatedSeq checks the Table 4.2 row for a replicated seq.
func TestReplicatedSeq(t *testing.T) {
	prog, table := build(t, `var sum, result:
seq
  sum := 0
  seq k = [1 for 10]
    sum := sum + k
  result := sum
`)
	seq := prog.Body.(*occam.Scope).Body.(*occam.Seq)
	rep, _ := table.Entry(seq.Body[1])
	if rep.Kind != KRepSeq {
		t.Fatalf("kind = %v", rep.Kind)
	}
	if got := valueNames(rep.Inputs()); !reflect.DeepEqual(got, []string{"sum"}) {
		t.Errorf("I(repseq) = %v", got)
	}
	if got := valueNames(rep.Outputs()); !reflect.DeepEqual(got, []string{"sum"}) {
		t.Errorf("O(repseq) = %v", got)
	}
}

// TestRepParScalarWriteRejected enforces the replicated-par restriction.
func TestRepParScalarWriteRejected(t *testing.T) {
	prog, err := occam.Parse(`var s:
par i = [0 for 4]
  s := i
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(prog); err == nil || !strings.Contains(err.Error(), "vector elements") {
		t.Errorf("want replicated-par error, got %v", err)
	}
}

func TestWaitAndNowEntries(t *testing.T) {
	prog, table := build(t, `var x:
seq
  x := now
  wait now after x + 10
`)
	seq := prog.Body.(*occam.Scope).Body.(*occam.Seq)
	a, _ := table.Entry(seq.Body[0])
	if got := valueNames(a.Inputs()); !reflect.DeepEqual(got, []string{"K"}) {
		t.Errorf("I(x := now) = %v", got)
	}
	if got := valueNames(a.Outputs()); !reflect.DeepEqual(got, []string{"K", "x"}) {
		t.Errorf("O(x := now) = %v", got)
	}
	w, _ := table.Entry(seq.Body[1])
	if w.Kind != KWait {
		t.Fatalf("kind = %v", w.Kind)
	}
	if got := valueNames(w.Inputs()); !reflect.DeepEqual(got, []string{"K", "x"}) {
		t.Errorf("I(wait) = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KAssign; k <= KMain; k++ {
		if strings.Contains(k.String(), "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if !KSeq.Interface() || KAssign.Interface() {
		t.Error("Interface() wrong")
	}
	if !KWhile.Loop() || KSeq.Loop() {
		t.Error("Loop() wrong")
	}
}

func TestValueString(t *testing.T) {
	if KIO.String() != "K" {
		t.Error("KIO string")
	}
}
