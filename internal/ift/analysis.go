package ift

import "queuemachine/internal/occam"

// useAndDef links every use of a value to its reaching definition,
// following the UseAndDef/FindDef algorithms of Figure 4.11: within each
// independent component chain E_i of an interface entry H, each child's
// inputs are resolved against the outputs of the preceding children (most
// recent first) and otherwise against H's own input set; the interface's
// outputs are then linked to the last definition in the chain.
func useAndDef(t *Table, h int) {
	H := t.Entries[h]
	for _, chain := range H.E {
		var preceding []int // most recent first
		for _, hj := range chain {
			child := t.Entries[hj]
			for _, vi := range child.I {
				findDef(t, vi.Val, hj, h, preceding, vi.D)
			}
			useAndDef(t, hj)
			preceding = append([]int{hj}, preceding...)
		}
		for _, vi := range H.O {
			findDef(t, vi.Val, h, h, preceding, vi.D)
		}
	}
}

// findDef scans the preceding entries for the definition(s) of x; failing
// that, it checks whether the value is imported through H's input set. The
// matching definitions' U sets gain the user, and the user's D set gains the
// definitions.
//
// Control tokens follow the multiple-readers/single-writer discipline of
// §4.6 (Figure 4.19): a READER of the token links only to the most recent
// write-flavored definition, skipping read-regenerated tokens (readers run
// unordered with respect to one another); a WRITER links to every
// read-regenerated token back to — and including — the most recent write
// (the ∧-join of outstanding readers). Data values keep the classic
// most-recent-definition rule.
func findDef(t *Table, x Value, user, h int, preceding []int, d map[int]bool) {
	// An interface entry resolving its own output (user == h) represents
	// every contributing definition to the outside world, so it collects
	// like a writer.
	collectAll := x.Token && (user == h || t.Entries[user].WritesValue(x))
	skipReads := x.Token && !collectAll
	for _, hk := range preceding {
		vi := t.Entries[hk].hasOutput(x)
		if vi == nil {
			continue
		}
		if skipReads && !vi.WriteToken {
			continue
		}
		vi.U[user] = true
		d[hk] = true
		if !collectAll || vi.WriteToken {
			return
		}
	}
	H := t.Entries[h]
	for _, vi := range H.I {
		if vi.Val == x {
			vi.U[user] = true
			d[h] = true
			return
		}
	}
}

// liveAnalyze tags every output value of every entry under root with
// whether it has a subsequent use (Figure 4.12):
//
//  1. an output whose U set contains a use other than the containing
//     interface entry is live;
//  2. an output used only by the containing interface is live if the
//     interface is a loop and the value is among the loop's inputs
//     (loop-carried); otherwise it inherits the interface's own liveness
//     for that value;
//  3. var formal parameters are always live (they are copied out);
//  4. an output with no uses is dead.
func liveAnalyze(t *Table, root int) {
	// Roots: outputs that escape the program. At a proc root, everything
	// the call protocol returns is live: var formals (rule 3), and every
	// control token — the token a proc sends back vouches that its side
	// effects have completed, so the writes it covers must be awaited
	// even when the proc's own tree has no further use for them. At the
	// main root everything dies with the program.
	R := t.Entries[root]
	for _, vi := range R.O {
		vi.Live = isVarFormal(t, root, vi.Val) ||
			(R.Kind == KProcBody && vi.Val.Token)
	}
	var walk func(h int)
	walk = func(h int) {
		H := t.Entries[h]
		for _, chain := range H.E {
			for _, hj := range chain {
				child := t.Entries[hj]
				for _, vi := range child.O {
					vi.Live = outputLive(t, h, hj, vi)
				}
				walk(hj)
			}
		}
	}
	walk(root)
}

func outputLive(t *Table, h, hj int, vi *ValueInfo) bool {
	H := t.Entries[h]
	if isVarFormal(t, hj, vi.Val) {
		return true
	}
	if len(vi.U) == 0 {
		return false
	}
	for u := range vi.U {
		if u != h {
			return true // a real subsequent use
		}
	}
	// Used only by the containing interface entry.
	if H.Kind.Loop() && H.hasInput(vi.Val) {
		// Loop-carried: the next iteration receives the value with the
		// forwarded loop state, so the definition must surface. For
		// tokens this is what lets a sub-construct's completion reach
		// the iteration graph that forwards the state.
		return true
	}
	if parentOut := H.hasOutput(vi.Val); parentOut != nil {
		return parentOut.Live
	}
	return false
}

// isVarFormal reports whether the value is a var formal parameter of the
// proc whose tree contains entry h — approximated as: the symbol is a var
// parameter at all (parameter symbols are unique per proc, so this is
// exact).
func isVarFormal(t *Table, h int, v Value) bool {
	if v.Sym == nil {
		return false
	}
	if v.Token {
		return v.Sym.Kind == occam.SymParamVec
	}
	return v.Sym.Kind == occam.SymParamVar
}
