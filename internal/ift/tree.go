package ift

import (
	"fmt"

	"queuemachine/internal/occam"
)

// buildProcTrees creates the IFT trees for every proc declaration, in
// declaration order.
func (b *builder) buildProcTrees(p occam.Process) error {
	var procs []*occam.Decl
	collectProcs(p, &procs)
	for _, d := range procs {
		if err := b.procTree(d); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) procTree(d *occam.Decl) error {
	// Pseudo-entry defining the formal parameters, so body uses link to it.
	params := b.newEntry(KParams, d)
	for _, p := range d.Param {
		switch p.Mode {
		case occam.ParamVec:
			params.output(VecToken(p.Sym))
		default:
			params.output(Val(p.Sym))
		}
	}
	body, err := b.process(d.Body)
	if err != nil {
		return err
	}
	root := b.newEntry(KProcBody, d.Body)
	root.E = [][]int{{params.Index, body}}
	b.propagateSeq(root, []int{params.Index, body})
	// Remove parameter definitions from the root's input set: they are
	// supplied by the call protocol, not imported as free values.
	// (propagateSeq already subtracts params' O from later inputs.)
	// Ensure the copy-out values are outputs even if never assigned.
	sum := b.t.Summary[d.Sym]
	for _, p := range d.Param {
		switch p.Mode {
		case occam.ParamVar:
			root.output(Val(p.Sym))
		case occam.ParamVec:
			if sum != nil && sum.WritesToken[VecToken(p.Sym)] {
				root.outputWrite(VecToken(p.Sym))
			} else {
				root.output(VecToken(p.Sym))
			}
		}
	}
	b.t.ProcRoot[d.Sym] = root.Index
	b.t.ProcParams[d.Sym] = params.Index
	return nil
}

// process builds the entry (sub)tree for one process and returns its index.
func (b *builder) process(p occam.Process) (int, error) {
	switch n := p.(type) {
	case *occam.Skip:
		return b.newEntry(KSkip, n).Index, nil

	case *occam.Assign:
		e := b.newEntry(KAssign, n)
		b.addExprUses(e, n.Value)
		if err := b.addWrite(e, n.Target); err != nil {
			return 0, err
		}
		return e.Index, nil

	case *occam.Input:
		e := b.newEntry(KInput, n)
		e.input(KIO)
		b.addChanUse(e, n.Chan)
		e.outputWrite(KIO)
		if err := b.addWrite(e, n.Target); err != nil {
			return 0, err
		}
		return e.Index, nil

	case *occam.Output:
		e := b.newEntry(KOutput, n)
		e.input(KIO)
		b.addChanUse(e, n.Chan)
		b.addExprUses(e, n.Value)
		e.outputWrite(KIO)
		return e.Index, nil

	case *occam.Wait:
		e := b.newEntry(KWait, n)
		e.input(KIO)
		b.addExprUses(e, n.After)
		e.outputWrite(KIO)
		return e.Index, nil

	case *occam.Call:
		return b.callEntry(n)

	case *occam.Scope:
		return b.scopeEntry(n)

	case *occam.Seq:
		if n.Rep != nil {
			return b.replicated(KRepSeq, n, n.Rep, n.Body)
		}
		return b.seqEntry(n, n.Body)

	case *occam.Par:
		if n.Rep != nil {
			return b.replicated(KRepPar, n, n.Rep, n.Body)
		}
		return b.parEntry(n, n.Body)

	case *occam.If:
		return b.ifEntry(n)

	case *occam.While:
		return b.whileEntry(n)
	}
	return 0, fmt.Errorf("ift: unknown process %T", p)
}

// addExprUses adds an expression's reads (and the K token when it uses the
// real-time clock) to an entry's input set; now also regenerates K.
// A vector READ both consumes and regenerates the vector's token: under the
// §4.6 discipline a subsequent writer must wait for outstanding reads
// (antidependence), which across spliced contexts requires the token to
// round-trip through every reading construct. Readers inside one graph (or
// parallel components, which each receive their own token copy) still run
// unordered.
func (b *builder) addExprUses(e *Entry, expr occam.Expr) {
	if usesNow(expr) {
		e.input(KIO)
		e.outputWrite(KIO)
	}
	for _, v := range exprUses(expr) {
		e.input(v)
		if v.Token {
			e.output(v) // read-flavored regeneration
		}
	}
}

// addWrite records the definition made by an assignment or input target.
func (b *builder) addWrite(e *Entry, ref *occam.VarRef) error {
	if ref.Index != nil {
		b.addExprUses(e, ref.Index)
		e.input(VecToken(ref.Sym))
		if ref.Sym.Kind == occam.SymParamVec {
			e.input(Val(ref.Sym))
		}
		e.outputWrite(VecToken(ref.Sym))
		return nil
	}
	e.output(Val(ref.Sym))
	return nil
}

// addChanUse records the reads of a channel reference.
func (b *builder) addChanUse(e *Entry, ref *occam.VarRef) {
	if ref.Index != nil {
		b.addExprUses(e, ref.Index)
		e.input(VecToken(ref.Sym))
		e.output(VecToken(ref.Sym))
		if ref.Sym.Kind == occam.SymParamVec {
			e.input(Val(ref.Sym))
		}
		return
	}
	e.input(Val(ref.Sym))
}

func (b *builder) callEntry(n *occam.Call) (int, error) {
	e := b.newEntry(KCall, n)
	callee := n.Sym
	for i, arg := range n.Args {
		param := callee.Proc.Param[i]
		switch param.Mode {
		case occam.ParamValue:
			b.addExprUses(e, arg)
		case occam.ParamVar:
			ref := arg.(*occam.VarRef)
			e.input(Val(ref.Sym))
			e.output(Val(ref.Sym))
		case occam.ParamVec:
			ref := arg.(*occam.VarRef)
			e.input(VecToken(ref.Sym))
			if b.t.Summary[callee] != nil && b.t.Summary[callee].WritesToken[VecToken(param.Sym)] {
				e.outputWrite(VecToken(ref.Sym))
			} else {
				e.output(VecToken(ref.Sym))
			}
		case occam.ParamChan:
			b.addChanUse(e, arg.(*occam.VarRef))
		}
	}
	sum := b.t.Summary[callee]
	if sum == nil {
		return 0, fmt.Errorf("ift: %v: no summary for proc %q", n.P, n.Name)
	}
	for _, v := range sum.FreeIn {
		e.input(b.translateParamValue(v, callee, n))
	}
	for _, v := range sum.FreeOut {
		tv := b.translateParamValue(v, callee, n)
		if !tv.Token && tv.Sym != nil {
			return 0, fmt.Errorf("ift: %v: proc %q assigns free variable %q; pass it as a var parameter instead",
				n.P, n.Name, tv.Sym.Name)
		}
		e.input(tv) // antidependence: the old token is consumed
		if sum.WritesToken[v] {
			e.outputWrite(tv)
		} else {
			e.output(tv)
		}
	}
	return e.Index, nil
}

func (b *builder) scopeEntry(n *occam.Scope) (int, error) {
	e := b.newEntry(KScope, n)
	var chain []int
	locals := map[*occam.Symbol]bool{}
	for _, d := range n.Decls {
		switch d.Kind {
		case occam.DeclVar:
			for _, item := range d.Items {
				locals[item.Sym] = true
			}
		case occam.DeclChan:
			for _, item := range d.Items {
				locals[item.Sym] = true
				alloc := b.newEntry(KChanAlloc, item)
				if item.Sym.Kind == occam.SymVecChan {
					alloc.outputWrite(VecToken(item.Sym))
				} else {
					alloc.output(Val(item.Sym))
				}
				chain = append(chain, alloc.Index)
			}
		case occam.DeclDef, occam.DeclProc:
			// Constants fold away; proc bodies have their own trees.
		}
	}
	body, err := b.process(n.Body)
	if err != nil {
		return 0, err
	}
	chain = append(chain, body)
	e.E = [][]int{chain}
	b.propagateSeq(e, chain)
	// Locally declared values (and their tokens) do not escape the scope.
	filter := func(vis []*ValueInfo) []*ValueInfo {
		var out []*ValueInfo
		for _, vi := range vis {
			if vi.Val.Sym != nil && locals[vi.Val.Sym] {
				continue
			}
			out = append(out, vi)
		}
		return out
	}
	e.I = filter(e.I)
	e.O = filter(e.O)
	return e.Index, nil
}

func (b *builder) seqEntry(n *occam.Seq, body []Process) (int, error) {
	e := b.newEntry(KSeq, n)
	var chain []int
	for _, c := range body {
		idx, err := b.process(c)
		if err != nil {
			return 0, err
		}
		chain = append(chain, idx)
	}
	e.E = [][]int{chain}
	b.propagateSeq(e, chain)
	return e.Index, nil
}

// Process aliases occam.Process for brevity in this file.
type Process = occam.Process

func (b *builder) parEntry(n *occam.Par, body []Process) (int, error) {
	e := b.newEntry(KPar, n)
	for _, c := range body {
		idx, err := b.process(c)
		if err != nil {
			return 0, err
		}
		e.E = append(e.E, []int{idx})
		// Table 4.2: par imports the union of component inputs and
		// exports the union of component outputs.
		for _, vi := range b.t.Entries[idx].I {
			e.input(vi.Val)
		}
		for _, vi := range b.t.Entries[idx].O {
			e.outputFrom(vi)
		}
	}
	return e.Index, nil
}

func (b *builder) ifEntry(n *occam.If) (int, error) {
	e := b.newEntry(KIf, n)
	for _, g := range n.Branches {
		cond := b.newEntry(KCond, g)
		b.addExprUses(cond, g.Cond)
		body, err := b.process(g.Body)
		if err != nil {
			return 0, err
		}
		e.E = append(e.E, []int{cond.Index, body})
		for _, vi := range cond.I {
			e.input(vi.Val)
		}
		for _, vi := range b.t.Entries[body].I {
			e.input(vi.Val)
		}
		for _, vi := range b.t.Entries[body].O {
			e.outputFrom(vi)
		}
	}
	// An if only MAY define its outputs: the untaken branches (and the
	// implicit skip) pass the incoming values through, so every output is
	// also an input. Without this, a preceding definition looks dead to
	// the use/definition chains even though the splice protocol consumes
	// it. (Table 4.2's formulas omit this; the live-value rules need it.)
	for _, vi := range e.O {
		e.input(vi.Val)
	}
	return e.Index, nil
}

func (b *builder) whileEntry(n *occam.While) (int, error) {
	e := b.newEntry(KWhile, n)
	cond := b.newEntry(KCond, n.Cond)
	b.addExprUses(cond, n.Cond)
	body, err := b.process(n.Body)
	if err != nil {
		return 0, err
	}
	e.E = [][]int{{cond.Index, body}}
	for _, vi := range cond.I {
		e.input(vi.Val)
	}
	for _, vi := range b.t.Entries[body].I {
		e.input(vi.Val)
	}
	for _, vi := range b.t.Entries[body].O {
		e.outputFrom(vi)
	}
	// A while's body may run zero times: outputs pass through, so they
	// are also inputs (see ifEntry).
	for _, vi := range e.O {
		e.input(vi.Val)
	}
	return e.Index, nil
}

func (b *builder) replicated(kind Kind, n any, rep *occam.Replicator, body []Process) (int, error) {
	e := b.newEntry(kind, n)
	r := b.newEntry(KRep, rep)
	b.addExprUses(r, rep.From)
	b.addExprUses(r, rep.Count)
	r.output(Val(rep.Sym))
	bodyIdx, err := b.process(body[0])
	if err != nil {
		return 0, err
	}
	e.E = [][]int{{r.Index, bodyIdx}}
	// Table 4.2: I = I(R) ∪ (I(P) − O(R)); O = O(P).
	for _, vi := range r.I {
		e.input(vi.Val)
	}
	for _, vi := range b.t.Entries[bodyIdx].I {
		if vi.Val == Val(rep.Sym) {
			continue
		}
		e.input(vi.Val)
	}
	for _, vi := range b.t.Entries[bodyIdx].O {
		if vi.Val == Val(rep.Sym) {
			continue
		}
		e.outputFrom(vi)
	}
	if kind == KRepPar {
		// Instances run concurrently; a scalar defined by the body is
		// ill-defined across instances (§4.3's OCCAM semantics make
		// at most one writer, which a replicated body violates).
		for _, vi := range b.t.Entries[bodyIdx].O {
			if !vi.Val.Token && vi.Val.Sym != nil && vi.Val != Val(rep.Sym) {
				return 0, fmt.Errorf("ift: %v: replicated par body assigns scalar %q; only vector elements may be written",
					rep.P, vi.Val.Sym.Name)
			}
		}
	}
	return e.Index, nil
}

// propagateSeq fills a sequential interface entry's I and O sets per Table
// 4.2: I = I(P1) ∪ ⋃ (I(Pi) − ⋃_{j<i} O(Pj)); O = ⋃ O(Pi).
func (b *builder) propagateSeq(e *Entry, chain []int) {
	defined := map[Value]bool{}
	for _, idx := range chain {
		child := b.t.Entries[idx]
		for _, vi := range child.I {
			if !defined[vi.Val] {
				e.input(vi.Val)
			}
		}
		for _, vi := range child.O {
			defined[vi.Val] = true
			e.outputFrom(vi)
		}
	}
}
