package mcache

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var (
	ctxA = ContextRef{PE: 0, Ctx: 1}
	ctxB = ContextRef{PE: 1, Ctx: 2}
)

// TestStateTransitionTable walks the send/receive state transition table of
// Table 5.4: empty --send--> sender-wait --recv--> empty (rendezvous), and
// symmetrically for receive-first.
func TestStateTransitionTable(t *testing.T) {
	c := New(8)

	// Send first.
	done, _, err := c.Send(1, 42, ctxA)
	if err != nil || done != nil {
		t.Fatalf("send on empty: %v, %v", done, err)
	}
	if got := c.ChannelState(1); got != SenderWait {
		t.Fatalf("state = %v, want sender-wait", got)
	}
	done, _, err = c.Recv(1, ctxB)
	if err != nil || done == nil {
		t.Fatalf("recv on sender-wait: %v, %v", done, err)
	}
	if done.Value != 42 || done.Sender != ctxA || done.Receiver != ctxB {
		t.Errorf("completion = %+v", done)
	}
	if got := c.ChannelState(1); got != Empty {
		t.Errorf("state after rendezvous = %v", got)
	}

	// Receive first.
	done, _, err = c.Recv(2, ctxB)
	if err != nil || done != nil {
		t.Fatalf("recv on empty: %v, %v", done, err)
	}
	if got := c.ChannelState(2); got != ReceiverWait {
		t.Fatalf("state = %v", got)
	}
	done, _, err = c.Send(2, 7, ctxA)
	if err != nil || done == nil {
		t.Fatalf("send on receiver-wait: %v, %v", done, err)
	}
	if done.Value != 7 {
		t.Errorf("value = %d", done.Value)
	}
	if c.Stats.Rendezvous != 2 {
		t.Errorf("rendezvous = %d", c.Stats.Rendezvous)
	}
}

// TestFIFOOrdering checks that multiple blocked senders complete in order.
func TestFIFOOrdering(t *testing.T) {
	c := New(8)
	for i := int32(0); i < 3; i++ {
		if done, _, err := c.Send(5, 100+i, ContextRef{Ctx: int(i)}); err != nil || done != nil {
			t.Fatal("send should block")
		}
	}
	if got := c.PendingWaiters(5); got != 3 {
		t.Fatalf("waiters = %d", got)
	}
	for i := int32(0); i < 3; i++ {
		done, _, err := c.Recv(5, ctxB)
		if err != nil || done == nil {
			t.Fatal("recv should complete")
		}
		if done.Value != 100+i || done.Sender.Ctx != int(i) {
			t.Errorf("completion %d = %+v", i, done)
		}
	}
}

// TestFetchAndPhi checks the fetch-and-φ1 (add) and fetch-and-φ2 (store)
// operations of Table 5.3.
func TestFetchAndPhi(t *testing.T) {
	c := New(8)
	old, _, err := c.FetchAndAdd(9, 5)
	if err != nil || old != 0 {
		t.Fatalf("first fetch-and-add = %d, %v", old, err)
	}
	old, _, err = c.FetchAndAdd(9, 3)
	if err != nil || old != 5 {
		t.Fatalf("second fetch-and-add = %d, %v", old, err)
	}
	old, _, err = c.FetchAndStore(9, 100)
	if err != nil || old != 8 {
		t.Fatalf("fetch-and-store = %d, %v", old, err)
	}
	if got := c.ChannelState(9); got != ValueCell {
		t.Errorf("state = %v", got)
	}

	// Mixing rendezvous and cell use on one channel is an error.
	if _, _, err := c.Send(9, 1, ctxA); err == nil {
		t.Error("send on cell accepted")
	}
	if _, _, err := c.Recv(9, ctxA); err == nil {
		t.Error("recv on cell accepted")
	}
	if done, _, err := c.Send(11, 1, ctxA); err != nil || done != nil {
		t.Fatal("send setup failed")
	}
	if _, _, err := c.FetchAndAdd(11, 1); err == nil {
		t.Error("fetch-and-add on rendezvous channel accepted")
	}
	if _, _, err := c.FetchAndStore(11, 1); err == nil {
		t.Error("fetch-and-store on rendezvous channel accepted")
	}
}

// TestEvictionAndReload fills the cache beyond capacity with blocked
// senders and checks that evicted entries are written back and transparently
// reloaded, completing every rendezvous.
func TestEvictionAndReload(t *testing.T) {
	c := New(4)
	const channels = 20
	for ch := int32(0); ch < channels; ch++ {
		if done, _, err := c.Send(ch, ch*10, ContextRef{Ctx: int(ch)}); err != nil || done != nil {
			t.Fatal("send should block")
		}
	}
	if c.Resident() > 4 {
		t.Fatalf("resident = %d, capacity 4", c.Resident())
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	for ch := int32(0); ch < channels; ch++ {
		done, _, err := c.Recv(ch, ctxB)
		if err != nil || done == nil {
			t.Fatalf("recv ch %d: %v, %v", ch, done, err)
		}
		if done.Value != ch*10 {
			t.Errorf("ch %d value = %d", ch, done.Value)
		}
	}
	if c.Stats.Rendezvous != channels {
		t.Errorf("rendezvous = %d", c.Stats.Rendezvous)
	}
}

// TestEvictionPrefersEmpty checks that free entries are evicted before
// occupied ones, so waiters stay cached as long as possible.
func TestEvictionPrefersEmpty(t *testing.T) {
	c := New(2)
	// ch 0 empty after a completed rendezvous; ch 1 occupied.
	c.Recv(0, ctxB)
	c.Send(0, 1, ctxA)
	c.Send(1, 5, ctxA)
	evBefore := c.Stats.Evictions
	// Touching ch 2 must evict the empty ch 0, not the occupied ch 1.
	c.Send(2, 9, ctxA)
	if c.Stats.Evictions != evBefore {
		t.Errorf("evictions = %d, want %d (empty entry dropped for free)", c.Stats.Evictions, evBefore)
	}
	if got := c.ChannelState(1); got != SenderWait {
		t.Errorf("occupied entry lost: %v", got)
	}
}

// TestNoTokenLoss is the core safety property: under random interleavings
// of sends and receives on random channels, every sent value is delivered
// exactly once, in per-channel FIFO order, regardless of cache pressure.
func TestNoTokenLoss(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(1 + rng.Intn(4)) // tiny caches to force eviction traffic
		type sent struct{ val int32 }
		pendingSends := map[int32][]int32{} // channel -> values in flight
		pendingRecvs := map[int32]int{}
		delivered := map[int32][]int32{}
		var nextVal int32
		for op := 0; op < 300; op++ {
			ch := int32(rng.Intn(6))
			if rng.Intn(2) == 0 {
				nextVal++
				done, _, err := c.Send(ch, nextVal, ctxA)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if done != nil {
					if pendingRecvs[ch] == 0 {
						t.Fatalf("seed %d: completion without pending recv", seed)
					}
					pendingRecvs[ch]--
					delivered[ch] = append(delivered[ch], done.Value)
				} else {
					pendingSends[ch] = append(pendingSends[ch], nextVal)
				}
			} else {
				done, _, err := c.Recv(ch, ctxB)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if done != nil {
					want := pendingSends[ch][0]
					pendingSends[ch] = pendingSends[ch][1:]
					if done.Value != want {
						t.Fatalf("seed %d: ch %d delivered %d, want %d (FIFO)", seed, ch, done.Value, want)
					}
					delivered[ch] = append(delivered[ch], done.Value)
				} else {
					pendingRecvs[ch]++
				}
			}
		}
		// Drain all pending sends.
		for ch, vals := range pendingSends {
			for _, want := range vals {
				done, _, err := c.Recv(ch, ctxB)
				if err != nil || done == nil {
					t.Fatalf("seed %d: drain ch %d failed", seed, ch)
				}
				if done.Value != want {
					t.Fatalf("seed %d: drain ch %d got %d want %d", seed, ch, done.Value, want)
				}
			}
		}
		_ = sent{}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		Empty: "empty", SenderWait: "sender-wait",
		ReceiverWait: "receiver-wait", ValueCell: "value-cell",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
	if !strings.Contains(State(9).String(), "9") {
		t.Error("unknown state")
	}
}

func TestMissAccounting(t *testing.T) {
	c := New(2)
	c.Send(1, 1, ctxA) // miss (new)
	c.Recv(1, ctxB)    // hit
	if c.Stats.Misses != 1 || c.Stats.Hits != 1 {
		t.Errorf("misses=%d hits=%d", c.Stats.Misses, c.Stats.Hits)
	}
}

func TestMinimumCapacity(t *testing.T) {
	c := New(0)
	if c.capacity != 1 {
		t.Errorf("capacity = %d", c.capacity)
	}
	done, _, err := c.Send(1, 9, ctxA)
	if err != nil || done != nil {
		t.Fatal("send failed")
	}
	done, _, err = c.Recv(1, ctxB)
	if err != nil || done == nil || done.Value != 9 {
		t.Fatal("recv failed")
	}
}
