// Package mcache implements the dedicated message-handling hardware of
// §5.5: a message processor's channel cache. Each cache entry tracks the
// rendezvous state of one channel — empty, sender waiting (value present),
// or receiver waiting — and the send, receive and fetch-and-φ operations
// drive the state transitions of Tables 5.3, 5.4 and 6.7.
//
// The cache has a finite number of entries. Entries holding a blocked party
// are evicted to backing memory (at a cost) when the cache overflows, and
// reloaded on the next access; entries in the empty state are dropped for
// free. The finite per-processor cache is one of the mechanisms behind the
// multiprocessor's super-linear speed-up: aggregate cache capacity grows
// with the number of processing elements, so channel operations miss less.
package mcache

import "fmt"

// ContextRef identifies a blocked context: the processing element hosting
// it and its context identifier.
type ContextRef struct {
	PE  int
	Ctx int
}

// State is the externally visible state of a channel entry.
type State int

const (
	// Empty: no operation pending on the channel.
	Empty State = iota
	// SenderWait: one or more senders are blocked with their values.
	SenderWait
	// ReceiverWait: one or more receivers are blocked.
	ReceiverWait
	// ValueCell: the entry is used as a fetch-and-φ synchronization word
	// rather than a rendezvous channel.
	ValueCell
)

func (s State) String() string {
	switch s {
	case Empty:
		return "empty"
	case SenderWait:
		return "sender-wait"
	case ReceiverWait:
		return "receiver-wait"
	case ValueCell:
		return "value-cell"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

type waitingSend struct {
	val    int32
	sender ContextRef
}

type entry struct {
	channel   int32
	senders   []waitingSend // FIFO of blocked senders with their values
	receivers []ContextRef  // FIFO of blocked receivers
	cellValue int32         // fetch-and-φ storage
	isCell    bool
	resident  bool // true while cached; false once spilled to backing memory
	lastUse   uint64
}

func (e *entry) state() State {
	switch {
	case e.isCell:
		return ValueCell
	case len(e.senders) > 0:
		return SenderWait
	case len(e.receivers) > 0:
		return ReceiverWait
	default:
		return Empty
	}
}

// Stats counts cache behaviour for the Chapter 6 statistics tables.
type Stats struct {
	Sends      int64
	Receives   int64
	FetchPhis  int64
	Hits       int64
	Misses     int64 // entry reloaded from backing memory
	Evictions  int64 // occupied entry written back to memory
	Rendezvous int64 // completed send/receive pairs
}

// Cache is one message processor's channel cache.
//
// Resident entries live in a flat slice so the eviction scan walks the
// slice instead of iterating a map, and entries dropped in the empty state
// are recycled through a free list, so steady-state channel traffic
// allocates nothing. One map covers both cached and spilled entries — an
// eviction to backing memory and the later reload are flag flips, not map
// writes — and the victim choice is a pure minimum over (occupancy,
// recency) with unique recency stamps, so it does not depend on slice
// order.
type Cache struct {
	capacity int
	byChan   map[int32]*entry // every known channel, resident or spilled
	ents     []*entry         // resident entries, unordered
	free     []*entry         // empty entries recycled after eviction
	done     Completion
	clock    uint64
	Stats    Stats
}

// New builds a cache with the given number of entries (at least one).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		byChan:   make(map[int32]*entry, capacity),
		ents:     make([]*entry, 0, capacity),
	}
}

// lookup finds or creates the entry for a channel, charging a miss when it
// must be reloaded from (or first created in) backing memory, and evicting
// the least recently used occupied entry on overflow. It reports whether
// the access missed the cache.
func (c *Cache) lookup(ch int32) (*entry, bool) {
	c.clock++
	e, known := c.byChan[ch]
	if known && e.resident {
		e.lastUse = c.clock
		c.Stats.Hits++
		return e, false
	}
	c.Stats.Misses++
	if !known {
		if n := len(c.free); n > 0 {
			e = c.free[n-1]
			c.free = c.free[:n-1]
			e.channel = ch
		} else {
			e = &entry{channel: ch}
		}
		c.byChan[ch] = e
	}
	e.lastUse = c.clock
	c.install(e)
	return e, true
}

func (c *Cache) install(e *entry) {
	if len(c.ents) >= c.capacity {
		c.evictOne()
	}
	e.resident = true
	c.ents = append(c.ents, e)
}

// evictOne removes the least recently used entry, preferring free (empty)
// entries; occupied entries are written back to memory at eviction cost.
// Recency stamps are unique, so the choice is deterministic.
func (c *Cache) evictOne() {
	if len(c.ents) == 0 {
		return
	}
	vi := 0
	victim := c.ents[0]
	victimEmpty := victim.state() == Empty
	for i := 1; i < len(c.ents); i++ {
		e := c.ents[i]
		isEmpty := e.state() == Empty
		switch {
		case isEmpty != victimEmpty:
			if isEmpty {
				vi, victim, victimEmpty = i, e, true
			}
		case e.lastUse < victim.lastUse:
			vi, victim = i, e
		}
	}
	last := len(c.ents) - 1
	c.ents[vi] = c.ents[last]
	c.ents[last] = nil
	c.ents = c.ents[:last]
	victim.resident = false
	if victimEmpty {
		delete(c.byChan, victim.channel)
		victim.cellValue = 0
		victim.isCell = false
		c.free = append(c.free, victim)
	} else {
		c.Stats.Evictions++
	}
}

// Completion describes a finished rendezvous: the two parties to unblock
// and the transferred value. The pointer returned by Send and Recv refers
// to per-cache scratch storage and is valid only until the next operation
// on the same cache.
type Completion struct {
	Value    int32
	Sender   ContextRef
	Receiver ContextRef
}

// Send performs the message-cache send transition: if a receiver is
// waiting, the rendezvous completes; otherwise the sender blocks with its
// value. The boolean reports whether the access missed the cache.
func (c *Cache) Send(ch, val int32, sender ContextRef) (done *Completion, missed bool, err error) {
	c.Stats.Sends++
	e, missed := c.lookup(ch)
	if e.isCell {
		return nil, missed, fmt.Errorf("mcache: channel %d is a fetch-and-φ cell", ch)
	}
	if n := len(e.receivers); n > 0 {
		r := e.receivers[0]
		copy(e.receivers, e.receivers[1:])
		e.receivers = e.receivers[:n-1]
		c.Stats.Rendezvous++
		c.done = Completion{Value: val, Sender: sender, Receiver: r}
		return &c.done, missed, nil
	}
	e.senders = append(e.senders, waitingSend{val: val, sender: sender})
	return nil, missed, nil
}

// Recv performs the message-cache receive transition: if a sender is
// waiting, the rendezvous completes; otherwise the receiver blocks.
func (c *Cache) Recv(ch int32, receiver ContextRef) (done *Completion, missed bool, err error) {
	c.Stats.Receives++
	e, missed := c.lookup(ch)
	if e.isCell {
		return nil, missed, fmt.Errorf("mcache: channel %d is a fetch-and-φ cell", ch)
	}
	if n := len(e.senders); n > 0 {
		s := e.senders[0]
		copy(e.senders, e.senders[1:])
		e.senders = e.senders[:n-1]
		c.Stats.Rendezvous++
		c.done = Completion{Value: s.val, Sender: s.sender, Receiver: receiver}
		return &c.done, missed, nil
	}
	e.receivers = append(e.receivers, receiver)
	return nil, missed, nil
}

// FetchAndAdd atomically adds delta to the channel's synchronization word
// and returns the previous value (the fetch-and-φ1 operation).
func (c *Cache) FetchAndAdd(ch, delta int32) (old int32, missed bool, err error) {
	c.Stats.FetchPhis++
	e, missed := c.lookup(ch)
	if !e.isCell && e.state() != Empty {
		return 0, missed, fmt.Errorf("mcache: channel %d is in rendezvous use (%v)", ch, e.state())
	}
	e.isCell = true
	old = e.cellValue
	e.cellValue += delta
	return old, missed, nil
}

// FetchAndStore atomically replaces the channel's synchronization word and
// returns the previous value (the fetch-and-φ2 operation).
func (c *Cache) FetchAndStore(ch, val int32) (old int32, missed bool, err error) {
	c.Stats.FetchPhis++
	e, missed := c.lookup(ch)
	if !e.isCell && e.state() != Empty {
		return 0, missed, fmt.Errorf("mcache: channel %d is in rendezvous use (%v)", ch, e.state())
	}
	e.isCell = true
	old = e.cellValue
	e.cellValue = val
	return old, missed, nil
}

// ChannelState reports the externally visible state of a channel without
// disturbing cache statistics or recency (a debugging/verification probe).
func (c *Cache) ChannelState(ch int32) State {
	if e, ok := c.byChan[ch]; ok {
		return e.state()
	}
	return Empty
}

// PendingWaiters reports how many parties are blocked on the channel.
func (c *Cache) PendingWaiters(ch int32) int {
	e, ok := c.byChan[ch]
	if !ok {
		return 0
	}
	return len(e.senders) + len(e.receivers)
}

// Resident reports the number of entries currently held in the cache.
func (c *Cache) Resident() int { return len(c.ents) }
