package sched

// ctxFIFO is a ready queue that pops by advancing a head index instead of
// re-slicing, so the backing array is reused once drained and steady-state
// ready/dispatch traffic never reallocates. (Moved here from the kernel,
// which used it as its only dispatch structure.)
type ctxFIFO struct {
	ids  []int
	head int
}

func (f *ctxFIFO) push(id int) { f.ids = append(f.ids, id) }

func (f *ctxFIFO) pop() (int, bool) {
	if f.head == len(f.ids) {
		return 0, false
	}
	id := f.ids[f.head]
	f.head++
	if f.head == len(f.ids) {
		f.ids = f.ids[:0]
		f.head = 0
	}
	return id, true
}

func (f *ctxFIFO) len() int { return len(f.ids) - f.head }

// base carries the machine size and the kernel load view shared by every
// policy.
type base struct {
	numPEs int
	loads  Loads
}

func (b *base) Bind(loads Loads) { b.loads = loads }

// leastLoaded is the thesis placement rule: the element hosting the fewest
// live contexts, ties broken by lowest identifier.
func (b *base) leastLoaded() int {
	best := 0
	for p := 1; p < b.numPEs; p++ {
		if b.loads.Resident(p) < b.loads.Resident(best) {
			best = p
		}
	}
	return best
}

// fifoPolicy is the exact §6.2 baseline: least-loaded placement and
// per-element FIFO dispatch.
type fifoPolicy struct {
	base
	ready []ctxFIFO
}

func newFIFO(numPEs int) *fifoPolicy {
	return &fifoPolicy{base: base{numPEs: numPEs}, ready: make([]ctxFIFO, numPEs)}
}

func (f *fifoPolicy) Name() string                     { return FIFO }
func (f *fifoPolicy) Place(parentPE int, _ int32) int  { return f.leastLoaded() }
func (f *fifoPolicy) Enqueue(peID, ctxID int, _ int32) { f.ready[peID].push(ctxID) }
func (f *fifoPolicy) Len(peID int) int                 { return f.ready[peID].len() }

func (f *fifoPolicy) Dispatch(peID int) (int, int, bool) {
	id, ok := f.ready[peID].pop()
	return id, peID, ok
}

// localityPolicy keeps forked children on the parent's element while the
// load balance allows, and otherwise spills to lightly loaded elements in
// ring partitions close to the parent — so the parent↔child splice
// protocol and the first rendezvous exchanges stay off the ring links.
// Dispatch is plain FIFO.
type localityPolicy struct {
	fifoPolicy
	slack int
	topo  Topology
}

func (l *localityPolicy) Name() string { return Locality }

func (l *localityPolicy) Place(parentPE int, _ int32) int {
	least := l.leastLoaded()
	minLoad := l.loads.Resident(least)
	if parentPE < 0 || parentPE >= l.numPEs {
		return least
	}
	if l.loads.Resident(parentPE) <= minLoad+l.slack {
		return parentPE
	}
	if l.topo == nil {
		return least
	}
	// The parent is overloaded: among elements within the slack of the
	// minimum load, pick the one fewest ring hops from the parent, ties by
	// lighter load then lower identifier (the ascending scan with strict
	// improvement makes the id tie-break implicit).
	best, bestHops, bestLoad := least, l.topo.Hops(parentPE, least), minLoad
	for p := 0; p < l.numPEs; p++ {
		load := l.loads.Resident(p)
		if load > minLoad+l.slack {
			continue
		}
		h := l.topo.Hops(parentPE, p)
		if h < bestHops || (h == bestHops && load < bestLoad) {
			best, bestHops, bestLoad = p, h, load
		}
	}
	return best
}

// stealPolicy is fifo placement plus work stealing: an element whose own
// queue is empty pulls the oldest ready context from the longest queue in
// the machine (ties by lowest victim identifier), provided that queue holds
// at least threshold contexts. The kernel re-homes the stolen context and
// the simulator charges the migration a ring transfer plus the context's
// window roll-out.
type stealPolicy struct {
	fifoPolicy
	threshold int
}

func (s *stealPolicy) Name() string { return Steal }

func (s *stealPolicy) Dispatch(peID int) (int, int, bool) {
	if id, ok := s.ready[peID].pop(); ok {
		return id, peID, true
	}
	victim, longest := -1, s.threshold-1
	for p := range s.ready {
		if p == peID {
			continue
		}
		if n := s.ready[p].len(); n > longest {
			victim, longest = p, n
		}
	}
	if victim < 0 {
		return 0, peID, false
	}
	id, _ := s.ready[victim].pop()
	return id, victim, true
}

// prioEntry is one queued context in a critpath ready set.
type prioEntry struct {
	ctx  int
	prio int32
	seq  uint64 // global arrival order; the FIFO tie-break
}

// prioQueue is a binary max-heap ordered by (prio descending, seq
// ascending): the heaviest context first, FIFO among equal weights. The
// arrival sequence tie-break makes dispatch deterministic and keeps equal
// priorities starvation-free.
type prioQueue struct {
	heap []prioEntry
}

func (q *prioQueue) len() int { return len(q.heap) }

func (q *prioQueue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}

func (q *prioQueue) push(e prioEntry) {
	q.heap = append(q.heap, e)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *prioQueue) pop() (prioEntry, bool) {
	if len(q.heap) == 0 {
		return prioEntry{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.heap) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.heap) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	return top, true
}

// critpathPolicy is least-loaded placement with priority dispatch: each
// element runs the ready context with the largest static graph weight — the
// §4.5 cost-analysis estimate of the computation the context enables,
// carried from the compiler through the object code into the context — so
// the work the rest of the program waits on leaves the ready queue first.
type critpathPolicy struct {
	base
	ready []prioQueue
	seq   uint64
}

func newCritPath(numPEs int) *critpathPolicy {
	return &critpathPolicy{base: base{numPEs: numPEs}, ready: make([]prioQueue, numPEs)}
}

func (c *critpathPolicy) Name() string                    { return CritPath }
func (c *critpathPolicy) Place(parentPE int, _ int32) int { return c.leastLoaded() }
func (c *critpathPolicy) Len(peID int) int                { return c.ready[peID].len() }

func (c *critpathPolicy) Enqueue(peID, ctxID int, prio int32) {
	c.seq++
	c.ready[peID].push(prioEntry{ctx: ctxID, prio: prio, seq: c.seq})
}

func (c *critpathPolicy) Dispatch(peID int) (int, int, bool) {
	e, ok := c.ready[peID].pop()
	return e.ctx, peID, ok
}
