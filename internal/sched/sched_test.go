package sched

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// fakeLoads is a Loads stub over a slice of per-element context counts.
type fakeLoads []int

func (f fakeLoads) Resident(pe int) int { return f[pe] }

// fakeRing is a Topology stub: elements are spread around a ring of the
// given size one per partition, distance is the shorter way around.
type fakeRing int

func (r fakeRing) Hops(from, to int) int {
	d := from - to
	if d < 0 {
		d = -d
	}
	if int(r)-d < d {
		d = int(r) - d
	}
	return d
}

func TestValidAndNames(t *testing.T) {
	for _, name := range append(Names(), "") {
		if !Valid(name) {
			t.Errorf("Valid(%q) = false, want true", name)
		}
	}
	if Valid("round-robin") {
		t.Error("Valid accepted an unknown policy")
	}
	if len(Names()) != 4 {
		t.Errorf("Names() = %v, want 4 policies", Names())
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	_, err := New(Config{Policy: "lifo"}, 4, nil)
	if err == nil {
		t.Fatal("New accepted unknown policy")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid policy %q", err, name)
		}
	}
}

func TestNewResolvesEmptyToFIFO(t *testing.T) {
	pol, err := New(Config{}, 2, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if pol.Name() != FIFO {
		t.Errorf("zero config built %q, want fifo", pol.Name())
	}
}

func TestFIFOPlacementAndOrder(t *testing.T) {
	pol, _ := New(Config{Policy: FIFO}, 3, nil)
	pol.Bind(fakeLoads{2, 1, 1})
	if got := pol.Place(0, 0); got != 1 {
		t.Errorf("Place = %d, want least-loaded lowest id 1", got)
	}
	pol.Enqueue(0, 10, 0)
	pol.Enqueue(0, 11, 5)
	pol.Enqueue(0, 12, 0)
	if n := pol.Len(0); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	for _, want := range []int{10, 11, 12} {
		id, from, ok := pol.Dispatch(0)
		if !ok || id != want || from != 0 {
			t.Fatalf("Dispatch = (%d, %d, %v), want (%d, 0, true)", id, from, ok, want)
		}
	}
	if _, _, ok := pol.Dispatch(0); ok {
		t.Error("Dispatch from empty queue succeeded")
	}
}

func TestLocalityPlacement(t *testing.T) {
	pol, _ := New(Config{Policy: Locality, PlacementSlack: 1}, 4, fakeRing(4))

	// Parent within the slack of the minimum keeps the child.
	pol.Bind(fakeLoads{2, 1, 1, 3})
	if got := pol.Place(0, 0); got != 0 {
		t.Errorf("parent within slack: Place = %d, want parent 0", got)
	}
	// Overloaded parent spills to the closest element within the slack:
	// loads {3,1,2,1} with slack 1 admit 1 and 2 (load ≤ 2); element 3 is
	// also admitted (load 1) and closer to parent 0 on the 4-ring than
	// element 2? hops(0,3)=1, hops(0,1)=1, hops(0,2)=2 — ties by lighter
	// load then lower id pick element 1.
	pol.Bind(fakeLoads{3, 1, 2, 1})
	if got := pol.Place(0, 0); got != 1 {
		t.Errorf("overloaded parent: Place = %d, want nearest light element 1", got)
	}
	// The initial context (no parent) lands least-loaded.
	if got := pol.Place(-1, 0); got != 1 {
		t.Errorf("no parent: Place = %d, want least-loaded 1", got)
	}
}

func TestStealDispatch(t *testing.T) {
	pol, _ := New(Config{Policy: Steal, StealThreshold: 2}, 3, nil)
	pol.Bind(fakeLoads{0, 0, 0})
	pol.Enqueue(1, 21, 0)
	pol.Enqueue(2, 31, 0)
	pol.Enqueue(2, 32, 0)

	// Element 0 is idle; queue 2 is longest and meets the threshold, so the
	// oldest context there is stolen.
	id, from, ok := pol.Dispatch(0)
	if !ok || id != 31 || from != 2 {
		t.Fatalf("Dispatch(0) = (%d, %d, %v), want steal of 31 from 2", id, from, ok)
	}
	// Both remaining queues are below the threshold: no more stealing.
	if id, from, ok := pol.Dispatch(0); ok {
		t.Fatalf("Dispatch(0) = (%d, %d, true), want no steal below threshold", id, from)
	}
	// Own work still dispatches regardless of the threshold.
	if id, from, ok := pol.Dispatch(1); !ok || id != 21 || from != 1 {
		t.Fatalf("Dispatch(1) = (%d, %d, %v), want own context 21", id, from, ok)
	}
}

func TestCritPathDispatchOrder(t *testing.T) {
	pol, _ := New(Config{Policy: CritPath}, 1, nil)
	pol.Bind(fakeLoads{0})
	pol.Enqueue(0, 1, 10)
	pol.Enqueue(0, 2, 30)
	pol.Enqueue(0, 3, 20)
	pol.Enqueue(0, 4, 30) // equal priority: FIFO after context 2
	var got []int
	for {
		id, _, ok := pol.Dispatch(0)
		if !ok {
			break
		}
		got = append(got, id)
	}
	want := []int{2, 4, 3, 1}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPrioQueueMatchesStableSort is the ready-queue property test: for
// seeded random push/pop interleavings, the heap's pop order must equal a
// reference that stable-sorts the pending entries by priority descending
// (stability provides the FIFO tie-break).
func TestPrioQueueMatchesStableSort(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q prioQueue
		var ref []prioEntry // pending entries in arrival order
		var seq uint64
		for op := 0; op < 200; op++ {
			if rng.Intn(3) < 2 { // push-biased so queues grow
				seq++
				e := prioEntry{ctx: int(seq), prio: int32(rng.Intn(8)), seq: seq}
				q.push(e)
				ref = append(ref, e)
				continue
			}
			got, ok := q.pop()
			if !ok {
				if len(ref) != 0 {
					t.Fatalf("seed %d: pop failed with %d pending", seed, len(ref))
				}
				continue
			}
			sort.SliceStable(ref, func(i, j int) bool { return ref[i].prio > ref[j].prio })
			want := ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("seed %d: pop = %+v, want %+v", seed, got, want)
			}
		}
		// Drain and check the tail.
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].prio > ref[j].prio })
		for _, want := range ref {
			got, ok := q.pop()
			if !ok || got != want {
				t.Fatalf("seed %d: drain pop = (%+v, %v), want %+v", seed, got, ok, want)
			}
		}
		if q.len() != 0 {
			t.Fatalf("seed %d: %d entries left after drain", seed, q.len())
		}
	}
}

func TestCtxFIFOReusesBacking(t *testing.T) {
	var f ctxFIFO
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			f.push(round*10 + i)
		}
		for i := 0; i < 4; i++ {
			id, ok := f.pop()
			if !ok || id != round*10+i {
				t.Fatalf("round %d: pop = (%d, %v), want %d", round, id, ok, round*10+i)
			}
		}
		if f.head != 0 || len(f.ids) != 0 {
			t.Fatalf("round %d: queue not reset after drain (head %d, len %d)",
				round, f.head, len(f.ids))
		}
	}
}
