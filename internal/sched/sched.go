// Package sched is the pluggable kernel scheduling subsystem. The
// multiprocessing kernel of §6.2 hard-codes two decisions: where a freshly
// forked context is placed (least-loaded processing element) and which
// ready context a free element dispatches next (per-element FIFO). Both
// turned out to be the Chapter 6 bottleneck — the cycle-attribution
// profiler shows the matmul makespan at eight elements dominated by
// dispatch-wait, not dependences — so this package lifts them behind the
// Policy interface and ships four implementations:
//
//	fifo      the thesis baseline: least-loaded placement, per-element
//	          FIFO dispatch. Bit-identical to the hard-coded kernel on
//	          every Chapter 6 benchmark; the default.
//	locality  keep children on the parent's element while its load is
//	          within a configurable slack of the minimum; otherwise place
//	          on the least-loaded element, preferring ring partitions
//	          close to the parent (the splice protocol stays local).
//	steal     fifo placement, but an element whose own queue is empty
//	          pulls the oldest ready context from the longest queue in
//	          the machine. The simulator charges the migration a ring
//	          transfer plus the stolen context's window roll-out.
//	critpath  least-loaded placement with priority dispatch: contexts
//	          carry the static §4.5 cost-analysis weight of their graph
//	          (emitted by the compiler into the object code) and each
//	          element runs the heaviest ready context first, FIFO among
//	          equals.
//
// Every policy is deterministic: decisions depend only on kernel state and
// arrival order, never on host-side iteration order or randomness, so two
// runs of the same program under the same policy produce identical cycle
// counts and traces.
package sched

import (
	"fmt"
	"strings"
)

// Policy names.
const (
	FIFO     = "fifo"
	Locality = "locality"
	Steal    = "steal"
	CritPath = "critpath"
)

// Names lists the available policies in presentation order.
func Names() []string { return []string{FIFO, Locality, Steal, CritPath} }

// Valid reports whether name selects a policy ("" selects the fifo
// default).
func Valid(name string) bool {
	switch name {
	case "", FIFO, Locality, Steal, CritPath:
		return true
	}
	return false
}

// Config selects and tunes the scheduling policy for one run. The zero
// value is the thesis baseline (fifo). It travels inside sim.Params, so a
// qmd request can set it per run; there is no process-global scheduling
// state.
type Config struct {
	// Policy names the scheduling policy; "" means fifo.
	Policy string `json:"policy,omitempty"`
	// PlacementSlack tunes the locality policy: a child stays on its
	// parent's element while the parent's load is within this many
	// contexts of the least-loaded element. 0 means the default (1).
	PlacementSlack int `json:"placement_slack,omitempty"`
	// StealThreshold tunes the steal policy: an idle element only steals
	// from queues at least this long. 0 means the default (1).
	StealThreshold int `json:"steal_threshold,omitempty"`
}

// Name resolves the configured policy name, mapping "" to fifo.
func (c Config) Name() string {
	if c.Policy == "" {
		return FIFO
	}
	return c.Policy
}

// Topology is the interconnect view distance-aware policies consult.
// ring.Ring satisfies it.
type Topology interface {
	// Hops is the number of ring links between two elements' partitions
	// along the shorter direction (0 within one partition).
	Hops(from, to int) int
}

// Loads is the kernel-state view policies read when placing contexts. The
// kernel itself satisfies it and binds after construction (the kernel and
// policy reference each other).
type Loads interface {
	// Resident reports how many live contexts an element hosts.
	Resident(pe int) int
}

// Policy makes the kernel's two scheduling decisions: context placement on
// fork and ready-queue ordering on dispatch. Implementations own the
// per-element ready queues; the kernel owns every other piece of context
// state. Methods are never called concurrently (the simulator is a
// single-threaded event loop).
type Policy interface {
	// Name reports the policy's registry name.
	Name() string
	// Bind installs the kernel's load view; called once by kernel.New
	// before any other method.
	Bind(loads Loads)
	// Place chooses the processing element for a freshly forked context.
	// parentPE is the element the forking context runs on, or -1 for the
	// initial context.
	Place(parentPE int, prio int32) int
	// Enqueue appends a ready context to an element's ready set.
	Enqueue(peID, ctxID int, prio int32)
	// Dispatch removes and returns the context an element should run
	// next. from is the element whose ready set supplied it — equal to
	// peID except when the policy stole the context from another queue.
	Dispatch(peID int) (ctxID, from int, ok bool)
	// Len reports how many contexts wait in an element's ready set.
	Len(peID int) int
}

// New builds the configured policy for a machine of numPEs elements. topo
// may be nil when no interconnect is modelled; distance-aware policies then
// fall back to load-only placement.
func New(cfg Config, numPEs int, topo Topology) (Policy, error) {
	switch cfg.Name() {
	case FIFO:
		return newFIFO(numPEs), nil
	case Locality:
		slack := cfg.PlacementSlack
		if slack <= 0 {
			slack = 1
		}
		return &localityPolicy{fifoPolicy: *newFIFO(numPEs), slack: slack, topo: topo}, nil
	case Steal:
		threshold := cfg.StealThreshold
		if threshold <= 0 {
			threshold = 1
		}
		return &stealPolicy{fifoPolicy: *newFIFO(numPEs), threshold: threshold}, nil
	case CritPath:
		return newCritPath(numPEs), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (have %s)",
			cfg.Policy, strings.Join(Names(), ", "))
	}
}
