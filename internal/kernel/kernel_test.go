package kernel

import (
	"strings"
	"testing"

	"queuemachine/internal/pe"
)

func TestChannelAllocation(t *testing.T) {
	k := New(4, nil)
	a, b := k.AllocChannel(), k.AllocChannel()
	if a == 0 || b == 0 || a == b {
		t.Errorf("channels %d, %d", a, b)
	}
	if k.Stats.ChannelsCreated != 2 {
		t.Error("stats")
	}
}

func TestPlacementLeastLoaded(t *testing.T) {
	k := New(3, nil)
	// First three contexts land on distinct PEs.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		_, p := k.CreateContext(0, 32, -1, 0, 0, 0)
		if seen[p] {
			t.Errorf("PE %d reused while others empty", p)
		}
		seen[p] = true
	}
	// Fourth wraps to the lowest-numbered PE.
	_, p := k.CreateContext(0, 32, -1, 0, 0, 0)
	if p != 0 {
		t.Errorf("fourth context on PE %d, want 0", p)
	}
	if k.Stats.ContextsCreated != 4 {
		t.Error("creation count")
	}
	if k.Stats.Migrations != 2 {
		t.Errorf("migrations = %d, want 2 (PEs 1 and 2)", k.Stats.Migrations)
	}
}

func TestReadyQueueFIFO(t *testing.T) {
	k := New(1, nil)
	c1, _ := k.CreateContext(0, 32, -1, 0, 0, 0)
	c2, _ := k.CreateContext(0, 32, -1, 0, 0, 0)
	if k.ReadyCount(0) != 2 {
		t.Fatalf("ready = %d", k.ReadyCount(0))
	}
	got1, from1 := k.NextReady(0)
	got2, _ := k.NextReady(0)
	if got1 != c1 || got2 != c2 {
		t.Error("FIFO order violated")
	}
	if from1 != 0 {
		t.Errorf("fifo dispatch reported source PE %d", from1)
	}
	if got1.Status != pe.Running {
		t.Error("dispatched context not running")
	}
	if c, _ := k.NextReady(0); c != nil {
		t.Error("empty queue returned a context")
	}
}

func TestBlockAndReady(t *testing.T) {
	k := New(1, nil)
	c, _ := k.CreateContext(0, 32, -1, 0, 0, 0)
	k.NextReady(0)
	c.Status = pe.BlockedRecv
	if err := k.Ready(c.ID, 0); err != nil {
		t.Fatal(err)
	}
	if c.Status != pe.Ready || k.ReadyCount(0) != 1 {
		t.Error("ready transition broken")
	}
	// Double-ready is rejected.
	if err := k.Ready(c.ID, 0); err == nil {
		t.Error("double ready accepted")
	}
	if err := k.Ready(999, 0); err == nil {
		t.Error("unknown context accepted")
	}
}

func TestExitLifecycle(t *testing.T) {
	k := New(2, nil)
	c, p := k.CreateContext(0, 32, -1, 0, 0, 0)
	if k.Live() != 1 || k.Resident(p) != 1 {
		t.Fatal("creation accounting")
	}
	if err := k.Exit(c.ID, 0); err != nil {
		t.Fatal(err)
	}
	if k.Live() != 0 || k.Resident(p) != 0 {
		t.Error("exit accounting")
	}
	if _, err := k.Context(c.ID); err == nil {
		t.Error("dead context still reachable")
	}
	if err := k.Exit(c.ID, 0); err == nil {
		t.Error("double exit accepted")
	}
	if _, err := k.Home(c.ID); err == nil {
		t.Error("dead context has a home")
	}
}

func TestSnapshot(t *testing.T) {
	k := New(1, nil)
	k.CreateContext(3, 32, 7, 0, 0, 0)
	snap := k.Snapshot()
	if len(snap) != 1 || !strings.Contains(snap[0], "graph 3") || !strings.Contains(snap[0], "parent 7") {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestContextLookup(t *testing.T) {
	k := New(1, nil)
	c, _ := k.CreateContext(0, 32, -1, 0, 0, 0)
	got, err := k.Context(c.ID)
	if err != nil || got != c {
		t.Error("lookup failed")
	}
	home, err := k.Home(c.ID)
	if err != nil || home != 0 {
		t.Error("home failed")
	}
}
