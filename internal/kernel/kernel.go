// Package kernel implements the queue machine multiprocessing kernel of
// §6.2: the context table and context state machine (Figure 6.4), queue
// page allocation, channel identifier allocation, the kernel entry points
// of Table 6.1 (context creation via rfork/ifork, termination, channel
// allocation, real-time services), and the context placement policy that
// distributes freshly forked contexts across processing elements.
//
// The kernel's code runs on the processing elements themselves (entered by
// trap instructions); the simulator charges its cost at the trap site and
// uses this package for the bookkeeping.
package kernel

import (
	"fmt"

	"queuemachine/internal/pe"
	"queuemachine/internal/trace"
)

// Stats aggregates kernel activity for the Chapter 6 statistics tables.
type Stats struct {
	ContextsCreated  int64
	ContextsFinished int64
	RForks           int64
	IForks           int64
	ChannelsCreated  int64
	Migrations       int64 // contexts placed on a PE other than their parent's
}

// Kernel is the multiprocessing kernel state.
type Kernel struct {
	numPEs   int
	nextCtx  int
	nextChan int32
	contexts []*pe.Context // indexed by context id; nil once exited
	home     []int32       // indexed by context id
	ready    []ctxFIFO     // per-PE FIFO of ready context ids
	resident []int         // per-PE count of live contexts
	freeCtx  []*pe.Context
	live     int
	rec      trace.Recorder
	Stats    Stats
}

// ctxFIFO is a ready queue that pops by advancing a head index instead of
// re-slicing, so the backing array is reused once drained and steady-state
// ready/dispatch traffic never reallocates.
type ctxFIFO struct {
	ids  []int
	head int
}

func (f *ctxFIFO) push(id int) { f.ids = append(f.ids, id) }

func (f *ctxFIFO) pop() (int, bool) {
	if f.head == len(f.ids) {
		return 0, false
	}
	id := f.ids[f.head]
	f.head++
	if f.head == len(f.ids) {
		f.ids = f.ids[:0]
		f.head = 0
	}
	return id, true
}

func (f *ctxFIFO) len() int { return len(f.ids) - f.head }

// SetRecorder installs the instrumentation recorder (nil disables). The
// recorder observes the context lifecycle; it never alters scheduling.
func (k *Kernel) SetRecorder(rec trace.Recorder) { k.rec = rec }

// New builds a kernel for a system with the given number of processing
// elements. Channel identifiers start above zero so that 0 can serve as a
// null channel.
func New(numPEs int) *Kernel {
	return &Kernel{
		numPEs:   numPEs,
		ready:    make([]ctxFIFO, numPEs),
		resident: make([]int, numPEs),
		nextChan: 1,
	}
}

// AllocChannel returns a fresh channel identifier.
func (k *Kernel) AllocChannel() int32 {
	ch := k.nextChan
	k.nextChan++
	k.Stats.ChannelsCreated++
	return ch
}

// PlacementSlack tunes the placement policy: a new context stays on its
// parent's processing element unless that element hosts more than
// PlacementSlack contexts beyond the least-loaded one. Zero is pure
// least-loaded placement.
var PlacementSlack = 0

// Place chooses the processing element for a new context: the least-loaded
// one (ties broken by lowest identifier), except that the parent's element
// wins when its load is within PlacementSlack of the minimum — keeping the
// splice protocol local where the load balance allows.
func (k *Kernel) Place(parentPE int) int {
	best := 0
	for p := 1; p < k.numPEs; p++ {
		if k.resident[p] < k.resident[best] {
			best = p
		}
	}
	if PlacementSlack > 0 && parentPE >= 0 && parentPE < k.numPEs &&
		k.resident[parentPE] <= k.resident[best]+PlacementSlack {
		return parentPE
	}
	return best
}

// CreateContext allocates a context for the given graph, assigns it to a
// processing element chosen by Place, marks it ready, and returns it with
// its hosting PE. The caller sets the channel registers. `at` is the
// simulated time of the creating event, used only for instrumentation.
func (k *Kernel) CreateContext(graph, pageWords, parentID, parentPE int, at int64) (*pe.Context, int) {
	id := k.nextCtx
	k.nextCtx++
	var c *pe.Context
	if n := len(k.freeCtx); n > 0 && len(k.freeCtx[n-1].Page) == pageWords {
		c = k.freeCtx[n-1]
		k.freeCtx[n-1] = nil
		k.freeCtx = k.freeCtx[:n-1]
		c.Reset(id, graph)
	} else {
		c = pe.NewContext(id, graph, pageWords)
	}
	c.Parent = parentID
	target := k.Place(parentPE)
	k.contexts = append(k.contexts, c)
	k.home = append(k.home, int32(target))
	k.resident[target]++
	k.live++
	k.Stats.ContextsCreated++
	if target != parentPE {
		k.Stats.Migrations++
	}
	k.ready[target].push(id)
	if k.rec != nil {
		k.rec.ContextCreated(id, parentID, target, at)
		k.rec.ContextReady(id, target, k.ready[target].len(), at)
	}
	return c, target
}

// Context returns a live context by identifier.
func (k *Kernel) Context(id int) (*pe.Context, error) {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return nil, fmt.Errorf("kernel: no context %d", id)
	}
	return k.contexts[id], nil
}

// Home reports the processing element hosting a context.
func (k *Kernel) Home(id int) (int, error) {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return 0, fmt.Errorf("kernel: no context %d", id)
	}
	return int(k.home[id]), nil
}

// Ready marks a blocked context runnable, appending it to its processing
// element's ready queue. The context must not already be queued or running.
// `at` is the simulated time of the unblocking event, used only for
// instrumentation.
func (k *Kernel) Ready(id int, at int64) error {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return fmt.Errorf("kernel: ready on unknown context %d", id)
	}
	c := k.contexts[id]
	if c.Status == pe.Ready || c.Status == pe.Done {
		return fmt.Errorf("kernel: context %d cannot become ready from %v", id, c.Status)
	}
	c.Status = pe.Ready
	p := int(k.home[id])
	k.ready[p].push(id)
	if k.rec != nil {
		k.rec.ContextReady(id, p, k.ready[p].len(), at)
	}
	return nil
}

// NextReady pops the next runnable context for a processing element,
// returning nil when its ready queue is empty.
func (k *Kernel) NextReady(peID int) *pe.Context {
	id, ok := k.ready[peID].pop()
	if !ok {
		return nil
	}
	c := k.contexts[id]
	c.Status = pe.Running
	return c
}

// ReadyCount reports the length of a processing element's ready queue.
func (k *Kernel) ReadyCount(peID int) int { return k.ready[peID].len() }

// Resident reports how many live contexts a processing element hosts.
func (k *Kernel) Resident(peID int) int { return k.resident[peID] }

// Exit terminates a context (the KExit entry point), releasing its queue
// page and removing it from its processing element. `at` is the simulated
// time of the exit trap, used only for instrumentation.
func (k *Kernel) Exit(id int, at int64) error {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return fmt.Errorf("kernel: exit of unknown context %d", id)
	}
	c := k.contexts[id]
	c.Status = pe.Done
	p := int(k.home[id])
	k.resident[p]--
	k.live--
	k.Stats.ContextsFinished++
	k.contexts[id] = nil
	k.freeCtx = append(k.freeCtx, c)
	if k.rec != nil {
		k.rec.ContextExited(id, p, at)
	}
	return nil
}

// Live reports the number of live contexts in the system.
func (k *Kernel) Live() int { return k.live }

// Snapshot lists the live contexts and their states, for deadlock reports.
func (k *Kernel) Snapshot() []string {
	var out []string
	for id := 0; id < k.nextCtx; id++ {
		c := k.contexts[id]
		if c == nil {
			continue
		}
		out = append(out, fmt.Sprintf("context %d: graph %d pc %d %v on pe %d (parent %d, cin %d, cout %d)",
			id, c.Graph, c.PC, c.Status, k.home[id], c.Parent, c.In(), c.Out()))
	}
	return out
}
