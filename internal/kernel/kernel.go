// Package kernel implements the queue machine multiprocessing kernel of
// §6.2: the context table and context state machine (Figure 6.4), queue
// page allocation, channel identifier allocation, the kernel entry points
// of Table 6.1 (context creation via rfork/ifork, termination, channel
// allocation, real-time services), and the context scheduling seam that
// distributes freshly forked contexts across processing elements and picks
// the next ready context to dispatch.
//
// The kernel's code runs on the processing elements themselves (entered by
// trap instructions); the simulator charges its cost at the trap site and
// uses this package for the bookkeeping. The two scheduling decisions —
// placement on fork and ready-queue ordering on dispatch — are delegated to
// an internal/sched Policy chosen per run; the zero configuration is the
// thesis's least-loaded + FIFO baseline.
package kernel

import (
	"fmt"

	"queuemachine/internal/pe"
	"queuemachine/internal/sched"
	"queuemachine/internal/trace"
)

// Stats aggregates kernel activity for the Chapter 6 statistics tables.
type Stats struct {
	ContextsCreated  int64
	ContextsFinished int64
	RForks           int64
	IForks           int64
	ChannelsCreated  int64
	Migrations       int64 // contexts placed on a PE other than their parent's
	Steals           int64 // contexts re-homed by a work-stealing dispatch
}

// Kernel is the multiprocessing kernel state.
type Kernel struct {
	numPEs   int
	nextCtx  int
	nextChan int32
	pol      sched.Policy
	contexts []*pe.Context // indexed by context id; nil once exited
	home     []int32       // indexed by context id
	resident []int         // per-PE count of live contexts
	freeCtx  []*pe.Context
	live     int
	rec      trace.Recorder
	Stats    Stats
}

// SetRecorder installs the instrumentation recorder (nil disables). The
// recorder observes the context lifecycle; it never alters scheduling.
func (k *Kernel) SetRecorder(rec trace.Recorder) { k.rec = rec }

// New builds a kernel for a system with the given number of processing
// elements, scheduling through pol; nil selects the fifo baseline. Channel
// identifiers start above zero so that 0 can serve as a null channel.
func New(numPEs int, pol sched.Policy) *Kernel {
	if pol == nil {
		pol, _ = sched.New(sched.Config{}, numPEs, nil) // fifo never fails
	}
	k := &Kernel{
		numPEs:   numPEs,
		pol:      pol,
		resident: make([]int, numPEs),
		nextChan: 1,
	}
	pol.Bind(k)
	return k
}

// Policy reports the scheduling policy the kernel dispatches through.
func (k *Kernel) Policy() sched.Policy { return k.pol }

// AllocChannel returns a fresh channel identifier.
func (k *Kernel) AllocChannel() int32 {
	ch := k.nextChan
	k.nextChan++
	k.Stats.ChannelsCreated++
	return ch
}

// CreateContext allocates a context for the given graph, assigns it to a
// processing element chosen by the scheduling policy, marks it ready, and
// returns it with its hosting PE. prio is the context's static dispatch
// priority (the compiled graph weight; only priority policies read it).
// The caller sets the channel registers. `at` is the simulated time of the
// creating event, used only for instrumentation.
func (k *Kernel) CreateContext(graph, pageWords, parentID, parentPE int, prio int32, at int64) (*pe.Context, int) {
	id := k.nextCtx
	k.nextCtx++
	var c *pe.Context
	if n := len(k.freeCtx); n > 0 && len(k.freeCtx[n-1].Page) == pageWords {
		c = k.freeCtx[n-1]
		k.freeCtx[n-1] = nil
		k.freeCtx = k.freeCtx[:n-1]
		c.Reset(id, graph)
	} else {
		c = pe.NewContext(id, graph, pageWords)
	}
	c.Parent = parentID
	c.Priority = prio
	target := k.pol.Place(parentPE, prio)
	k.contexts = append(k.contexts, c)
	k.home = append(k.home, int32(target))
	k.resident[target]++
	k.live++
	k.Stats.ContextsCreated++
	if target != parentPE {
		k.Stats.Migrations++
	}
	k.pol.Enqueue(target, id, prio)
	if k.rec != nil {
		k.rec.ContextCreated(id, parentID, target, at)
		k.rec.ContextReady(id, target, k.pol.Len(target), at)
	}
	return c, target
}

// Context returns a live context by identifier.
func (k *Kernel) Context(id int) (*pe.Context, error) {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return nil, fmt.Errorf("kernel: no context %d", id)
	}
	return k.contexts[id], nil
}

// Home reports the processing element hosting a context.
func (k *Kernel) Home(id int) (int, error) {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return 0, fmt.Errorf("kernel: no context %d", id)
	}
	return int(k.home[id]), nil
}

// Ready marks a blocked context runnable, appending it to its processing
// element's ready queue. The context must not already be queued or running.
// `at` is the simulated time of the unblocking event, used only for
// instrumentation.
func (k *Kernel) Ready(id int, at int64) error {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return fmt.Errorf("kernel: ready on unknown context %d", id)
	}
	c := k.contexts[id]
	if c.Status == pe.Ready || c.Status == pe.Done {
		return fmt.Errorf("kernel: context %d cannot become ready from %v", id, c.Status)
	}
	c.Status = pe.Ready
	p := int(k.home[id])
	k.pol.Enqueue(p, id, c.Priority)
	if k.rec != nil {
		k.rec.ContextReady(id, p, k.pol.Len(p), at)
	}
	return nil
}

// NextReady pops the next runnable context for a processing element,
// returning nil when the policy has nothing for it. The second result is
// the element whose ready queue supplied the context: it differs from peID
// when a work-stealing policy migrated the context, in which case the
// kernel has already re-homed it (the caller charges the migration cost).
func (k *Kernel) NextReady(peID int) (*pe.Context, int) {
	id, from, ok := k.pol.Dispatch(peID)
	if !ok {
		return nil, peID
	}
	c := k.contexts[id]
	c.Status = pe.Running
	if from != peID {
		k.resident[from]--
		k.resident[peID]++
		k.home[id] = int32(peID)
		k.Stats.Steals++
	}
	return c, from
}

// ReadyCount reports the length of a processing element's ready queue.
func (k *Kernel) ReadyCount(peID int) int { return k.pol.Len(peID) }

// Resident reports how many live contexts a processing element hosts. It
// is also the sched.Loads view placement policies read.
func (k *Kernel) Resident(peID int) int { return k.resident[peID] }

// Exit terminates a context (the KExit entry point), releasing its queue
// page and removing it from its processing element. `at` is the simulated
// time of the exit trap, used only for instrumentation.
func (k *Kernel) Exit(id int, at int64) error {
	if id < 0 || id >= len(k.contexts) || k.contexts[id] == nil {
		return fmt.Errorf("kernel: exit of unknown context %d", id)
	}
	c := k.contexts[id]
	c.Status = pe.Done
	p := int(k.home[id])
	k.resident[p]--
	k.live--
	k.Stats.ContextsFinished++
	k.contexts[id] = nil
	k.freeCtx = append(k.freeCtx, c)
	if k.rec != nil {
		k.rec.ContextExited(id, p, at)
	}
	return nil
}

// Live reports the number of live contexts in the system.
func (k *Kernel) Live() int { return k.live }

// Snapshot lists the live contexts and their states, for deadlock reports.
func (k *Kernel) Snapshot() []string {
	var out []string
	for id := 0; id < k.nextCtx; id++ {
		c := k.contexts[id]
		if c == nil {
			continue
		}
		out = append(out, fmt.Sprintf("context %d: graph %d pc %d %v on pe %d (parent %d, cin %d, cout %d)",
			id, c.Graph, c.PC, c.Status, k.home[id], c.Parent, c.In(), c.Out()))
	}
	return out
}
