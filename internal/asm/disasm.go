package asm

import (
	"fmt"
	"strings"

	"queuemachine/internal/isa"
)

// DisassembleGraph renders one graph's instruction stream as assembly text,
// one instruction per line, prefixed with the word address.
func DisassembleGraph(g isa.GraphCode) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, ".graph %s queue=%d\n", g.Name, g.QueueWords)
	for pc := 0; pc < len(g.Code); {
		in, n, err := isa.Decode(g.Code[pc:])
		if err != nil {
			return b.String(), fmt.Errorf("asm: graph %q pc %d: %w", g.Name, pc, err)
		}
		fmt.Fprintf(&b, "%4d:  %s\n", pc, in.String())
		pc += n
	}
	return b.String(), nil
}

// Disassemble renders a whole object program as assembly text.
func Disassemble(o *isa.Object) (string, error) {
	var b strings.Builder
	if o.DataWords > 0 {
		fmt.Fprintf(&b, ".data %d\n", o.DataWords)
	}
	for addr := 0; addr < o.DataWords; addr++ {
		if v, ok := o.DataInit[addr]; ok {
			fmt.Fprintf(&b, ".init %d %d\n", addr, v)
		}
	}
	if o.Entry >= 0 && o.Entry < len(o.Graphs) {
		fmt.Fprintf(&b, ".entry %s\n", o.Graphs[o.Entry].Name)
	}
	for _, g := range o.Graphs {
		text, err := DisassembleGraph(g)
		if err != nil {
			return b.String(), err
		}
		b.WriteString(text)
	}
	return b.String(), nil
}

// DecodeAll decodes a graph's full instruction stream.
func DecodeAll(code []uint32) ([]isa.Instr, error) {
	var out []isa.Instr
	for pc := 0; pc < len(code); {
		in, n, err := isa.Decode(code[pc:])
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		pc += n
	}
	return out, nil
}
