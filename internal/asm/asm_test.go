package asm

import (
	"strings"
	"testing"

	"queuemachine/internal/isa"
)

const sample = `
; Table 3.1's queue program for f := a*b + (c-d)/e, with the operands in
; static data words 0..4 and the result stored to word 5.
.data 6
.init 0 7
.init 1 3
.init 2 20
.init 3 6
.init 4 2
.entry main
.graph main queue=32
	fetch #2 :r0        ; c
	fetch #3 :r1        ; d
	fetch #0 :r2        ; a
	fetch #1 :r3        ; b
	minus++ r0,r1 :r2   ; c-d   (queue: a b (c-d))
	fetch #4 :r3        ; e     (queue: a b (c-d) e)
	mul++ r0,r1 :r2     ; a*b   (queue: (c-d) e ab)
	div++ r0,r1 :r1     ; (c-d)/e
	plus++ r0,r1 :r0
	store #5,r0
	trap #0,#0
`

func TestAssembleSample(t *testing.T) {
	obj, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Graphs) != 1 || obj.Graphs[0].Name != "main" {
		t.Fatalf("graphs = %+v", obj.Graphs)
	}
	if obj.Graphs[0].QueueWords != 32 {
		t.Errorf("queue = %d", obj.Graphs[0].QueueWords)
	}
	if obj.DataWords != 6 || obj.DataInit[2] != 20 {
		t.Errorf("data = %d %v", obj.DataWords, obj.DataInit)
	}
	ins, err := DecodeAll(obj.Graphs[0].Code)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 11 {
		t.Fatalf("decoded %d instructions, want 11", len(ins))
	}
	if ins[4].Op != isa.OpMinus || ins[4].QPInc != 2 || ins[4].Dst1 != 2 {
		t.Errorf("minus = %+v", ins[4])
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	obj, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(obj)
	if err != nil {
		t.Fatal(err)
	}
	// Reassembling the disassembly must produce identical code. The
	// disassembler emits addresses as "N:" prefixes; strip them.
	var clean []string
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if i := strings.Index(trimmed, ":  "); i > 0 && !strings.HasPrefix(trimmed, ".") {
			trimmed = strings.TrimSpace(trimmed[i+2:])
		}
		clean = append(clean, trimmed)
	}
	obj2, err := Assemble(strings.Join(clean, "\n"))
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, strings.Join(clean, "\n"))
	}
	if len(obj2.Graphs) != len(obj.Graphs) {
		t.Fatal("graph count drift")
	}
	for i := range obj.Graphs {
		a, b := obj.Graphs[i].Code, obj2.Graphs[i].Code
		if len(a) != len(b) {
			t.Fatalf("graph %d code length drift: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("graph %d word %d: %08x vs %08x", i, j, a[j], b[j])
			}
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
.graph main queue=32
	fetch #0 :r0
loop:
	minus r0,#1 :r0
	gt r0,#0 :r1 >
	bne+2 r1,@loop
	trap #0,#0
`
	obj, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := DecodeAll(obj.Graphs[0].Code)
	if err != nil {
		t.Fatal(err)
	}
	var branch *isa.Instr
	for i := range ins {
		if ins[i].Op == isa.OpBne {
			branch = &ins[i]
		}
	}
	if branch == nil {
		t.Fatal("no branch found")
	}
	if branch.Src2.Mode != isa.SrcWordImm {
		t.Fatalf("branch target mode = %v", branch.Src2.Mode)
	}
	// Word addresses: fetch(2 words: imm#0 is small... #0 is small imm ->
	// 1 word), minus(1), gt(1), bne(2: label is a word imm). loop: is at
	// word 1. bne is at word 3..4, next pc = 5, offset = 1 - 5 = -4.
	if branch.Src2.Imm != -4 {
		t.Errorf("branch offset = %d, want -4", branch.Src2.Imm)
	}
}

func TestGraphReferences(t *testing.T) {
	src := `
.entry main
.graph main queue=32
	trap #1,@worker :r17,r18
	trap #0,#0
.graph worker queue=32
	trap #0,#0
`
	obj, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Entry != 0 {
		t.Errorf("entry = %d", obj.Entry)
	}
	ins, err := DecodeAll(obj.Graphs[0].Code)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Src2.Mode != isa.SrcWordImm || ins[0].Src2.Imm != 1 {
		t.Errorf("fork operand = %+v, want graph index 1", ins[0].Src2)
	}
	if ins[0].Dst1 != 17 || ins[0].Dst2 != 18 {
		t.Errorf("fork dsts = %d, %d", ins[0].Dst1, ins[0].Dst2)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"instruction outside graph", "plus r0,r1 :r0", "outside .graph"},
		{"unknown mnemonic", ".graph m\n bogus r0,r1", "unknown mnemonic"},
		{"bad register", ".graph m\n plus r99,r0 :r0", "bad register"},
		{"wrong arity", ".graph m\n plus r0 :r0", "source"},
		{"undefined label", ".graph m\n bne r0,@nowhere", "undefined label"},
		{"undefined graph ref", ".graph m\n trap #1,@ghost :r17", "undefined graph"},
		{"duplicate label", ".graph m\nx:\nx:\n plus r0,r0 :r0", "duplicate label"},
		{"duplicate graph", ".graph m\n plus r0,r0 :r0\n.graph m\n plus r0,r0 :r0", "duplicate graph"},
		{"label ref on alu", ".graph m\nx:\n plus r0,@x :r0", "not allowed"},
		{"bad queue", ".graph m queue=x\n plus r0,r0 :r0", "bad queue size"},
		{"graph needs name", ".graph", "needs a name"},
		{"data needs count", ".data", "word count"},
		{"bad data", ".data -1", "bad data size"},
		{"init arity", ".init 3", "address and a value"},
		{"bad init addr", ".init x 1", "bad init address"},
		{"bad init value", ".init 1 zz", "bad init value"},
		{"bad entry", ".entry", "graph name"},
		{"missing entry", ".entry ghost\n.graph m\n plus r0,r0 :r0", "not defined"},
		{"dup with sources", ".graph m\n dup1 r0 :r5", "no sources"},
		{"dup with qpinc", ".graph m\n dup1+2 :r5", "no QP increment"},
		{"dup arity", ".graph m\n dup2 :r5", "2 destination"},
		{"bad dup offset", ".graph m\n dup1 :r300", "bad queue offset"},
		{"three dsts", ".graph m\n plus r0,r1 :r0,r1,r2", "at most two"},
		{"empty operand", ".graph m\n plus r0,, :r0", "empty operand"},
		{"bad immediate", ".graph m\n plus #zz,r0 :r0", "bad immediate"},
		{"bad qp suffix", ".graph m\n plus+x r0,r1 :r0", "bad QP increment"},
		{"graph ref first operand", ".graph m\n trap @m,#0", "second operand"},
		{"label outside graph", "x:", "outside .graph"},
		{"unknown graph option", ".graph m frobnicate", "unknown .graph option"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: assembled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestQPIncPlusRun(t *testing.T) {
	src := ".graph m queue=32\n plus+++ r0,r1 :r0\n"
	obj, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, _ := DecodeAll(obj.Graphs[0].Code)
	if ins[0].QPInc != 3 {
		t.Errorf("QPInc = %d, want 3", ins[0].QPInc)
	}
}

func TestEmptySourceFails(t *testing.T) {
	if _, err := Assemble(""); err == nil {
		t.Error("empty program accepted (no graphs)")
	}
}

func TestDisassembleGraphAddresses(t *testing.T) {
	obj, err := Assemble(".graph g queue=32\n plus #100,r0 :r0\n minus r0,r1 :r1\n")
	if err != nil {
		t.Fatal(err)
	}
	text, err := DisassembleGraph(obj.Graphs[0])
	if err != nil {
		t.Fatal(err)
	}
	// plus with a word immediate occupies words 0-1, so minus is at 2.
	if !strings.Contains(text, "2:  minus") {
		t.Errorf("disassembly:\n%s", text)
	}
}
