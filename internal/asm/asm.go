// Package asm implements a two-pass assembler and a disassembler for the
// queue machine assembly language of §5.3.4:
//
//	opcode[+n] [src1[,src2]] [:dst1[,dst2]] [>]
//
// The QP increment is written +n (or a run of + signs); sources are
// registers (r0..r31 or symbolic names), immediates (#n), graph references
// (@graphname, resolved to the graph's index, used as fork trap operands)
// or branch labels (@label, resolved to a PC-relative word offset);
// destinations are registers, or queue offsets for dup instructions. A
// trailing > sets the continue flag.
//
// Directives:
//
//	.graph name [queue=N]   start a new graph (operand queue page N words)
//	.entry name             select the initial context's graph
//	.data N                 size of the static data segment in words
//	.init ADDR VALUE        initialize data word ADDR to VALUE
//	label:                  define a branch target
//	; comment               (also after instructions)
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"queuemachine/internal/isa"
)

// Assemble translates assembly source into an object program.
func Assemble(src string) (*isa.Object, error) {
	a := &assembler{
		obj: &isa.Object{DataInit: map[int]int32{}, Entry: -1},
	}
	lines := strings.Split(src, "\n")
	for num, raw := range lines {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", num+1, err)
		}
	}
	a.flushGraph()
	if err := a.link(); err != nil {
		return nil, err
	}
	if a.obj.Entry == -1 {
		a.obj.Entry = 0
	}
	if err := a.obj.Validate(); err != nil {
		return nil, err
	}
	return a.obj, nil
}

type pending struct {
	instr    isa.Instr
	branch   string // unresolved branch label for src2
	graphRef string // unresolved graph-name reference for src2
	pc       int    // word address of the instruction
	line     string
}

type graphDraft struct {
	name       string
	queueWords int
	labels     map[string]int
	code       []pending
}

type assembler struct {
	obj       *isa.Object
	cur       *graphDraft
	pc        int
	drafts    []graphDraft
	entryName string
}

func (a *assembler) line(raw string) error {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	switch {
	case strings.HasPrefix(s, ".graph"):
		a.flushGraph()
		fields := strings.Fields(s)
		if len(fields) < 2 {
			return fmt.Errorf(".graph needs a name")
		}
		g := &graphDraft{name: fields[1], queueWords: isa.MaxQueuePage, labels: map[string]int{}}
		for _, f := range fields[2:] {
			if v, ok := strings.CutPrefix(f, "queue="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad queue size %q", v)
				}
				g.queueWords = n
			} else {
				return fmt.Errorf("unknown .graph option %q", f)
			}
		}
		a.cur = g
		a.pc = 0
		return nil
	case strings.HasPrefix(s, ".entry"):
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return fmt.Errorf(".entry needs a graph name")
		}
		a.entryName = fields[1]
		return nil
	case strings.HasPrefix(s, ".data"):
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return fmt.Errorf(".data needs a word count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad data size %q", fields[1])
		}
		a.obj.DataWords = n
		return nil
	case strings.HasPrefix(s, ".init"):
		fields := strings.Fields(s)
		if len(fields) != 3 {
			return fmt.Errorf(".init needs an address and a value")
		}
		addr, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("bad init address %q", fields[1])
		}
		val, err := strconv.ParseInt(fields[2], 0, 33)
		if err != nil {
			return fmt.Errorf("bad init value %q", fields[2])
		}
		a.obj.DataInit[addr] = int32(val)
		return nil
	case strings.HasSuffix(s, ":") && !strings.ContainsAny(s, " \t"):
		if a.cur == nil {
			return fmt.Errorf("label outside .graph")
		}
		name := strings.TrimSuffix(s, ":")
		if _, dup := a.cur.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.cur.labels[name] = a.pc
		return nil
	}
	if a.cur == nil {
		return fmt.Errorf("instruction outside .graph: %q", s)
	}
	p, err := parseInstr(s)
	if err != nil {
		return err
	}
	p.pc = a.pc
	a.pc += p.instr.Words()
	a.cur.code = append(a.cur.code, p)
	return nil
}

func (a *assembler) flushGraph() {
	if a.cur != nil {
		a.drafts = append(a.drafts, *a.cur)
		a.cur = nil
	}
}

// link resolves branch labels and graph references, encodes every draft and
// assembles the final object.
func (a *assembler) link() error {
	graphIndex := map[string]int{}
	for i, d := range a.drafts {
		if _, dup := graphIndex[d.name]; dup {
			return fmt.Errorf("asm: duplicate graph %q", d.name)
		}
		graphIndex[d.name] = i
	}
	for _, d := range a.drafts {
		var words []uint32
		for _, p := range d.code {
			switch {
			case p.branch != "":
				target, ok := d.labels[p.branch]
				if !ok {
					return fmt.Errorf("asm: graph %q: undefined label %q", d.name, p.branch)
				}
				p.instr.Src2 = isa.Src{Mode: isa.SrcWordImm, Imm: int32(target - (p.pc + p.instr.Words()))}
			case p.graphRef != "":
				gi, ok := graphIndex[p.graphRef]
				if !ok {
					return fmt.Errorf("asm: graph %q: undefined graph reference @%s", d.name, p.graphRef)
				}
				p.instr.Src2 = isa.Src{Mode: isa.SrcWordImm, Imm: int32(gi)}
			}
			w, err := p.instr.Encode()
			if err != nil {
				return fmt.Errorf("asm: graph %q %q: %w", d.name, p.line, err)
			}
			words = append(words, w...)
		}
		a.obj.Graphs = append(a.obj.Graphs, isa.GraphCode{
			Name:       d.name,
			Code:       words,
			QueueWords: d.queueWords,
		})
		if d.name == a.entryName {
			a.obj.Entry = len(a.obj.Graphs) - 1
		}
	}
	if a.entryName != "" && a.obj.Entry == -1 {
		return fmt.Errorf("asm: .entry graph %q not defined", a.entryName)
	}
	return nil
}

func parseInstr(s string) (pending, error) {
	p := pending{line: s}
	if strings.HasSuffix(s, ">") {
		p.instr.Cont = true
		s = strings.TrimSpace(strings.TrimSuffix(s, ">"))
	}
	var dstPart string
	if i := strings.IndexByte(s, ':'); i >= 0 {
		dstPart = strings.TrimSpace(s[i+1:])
		s = strings.TrimSpace(s[:i])
	}
	var mnemonic, srcPart string
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, srcPart = s[:i], strings.TrimSpace(s[i+1:])
	} else {
		mnemonic = s
	}
	qpinc := 0
	if i := strings.IndexByte(mnemonic, '+'); i >= 0 {
		suffix := mnemonic[i:]
		mnemonic = mnemonic[:i]
		if rest := strings.TrimLeft(suffix, "+"); rest != "" {
			n, err := strconv.Atoi(rest)
			if err != nil || strings.Count(suffix, "+") != 1 {
				return p, fmt.Errorf("bad QP increment %q", suffix)
			}
			qpinc = n
		} else {
			qpinc = strings.Count(suffix, "+")
		}
	}
	op, ok := isa.ByMnemonic(mnemonic)
	if !ok {
		return p, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	info, _ := isa.Lookup(op)
	p.instr.Op = op
	p.instr.QPInc = qpinc

	if p.instr.IsDup() {
		if qpinc != 0 {
			return p, fmt.Errorf("dup instructions take no QP increment")
		}
		if srcPart != "" {
			return p, fmt.Errorf("dup instructions take no sources")
		}
		offs, err := splitList(dstPart)
		if err != nil {
			return p, err
		}
		want := 1
		if op == isa.OpDup2 {
			want = 2
		}
		if len(offs) != want {
			return p, fmt.Errorf("%s needs %d destination(s), got %d", mnemonic, want, len(offs))
		}
		for i, o := range offs {
			n, err := parseQueueOffset(o)
			if err != nil {
				return p, err
			}
			if i == 0 {
				p.instr.Dst1 = n
			} else {
				p.instr.Dst2 = n
			}
		}
		return p, nil
	}

	p.instr.Dst1, p.instr.Dst2 = isa.RegDummy, isa.RegDummy
	srcs, err := splitList(srcPart)
	if err != nil {
		return p, err
	}
	if len(srcs) != info.Srcs {
		return p, fmt.Errorf("%s needs %d source(s), got %d", mnemonic, info.Srcs, len(srcs))
	}
	for i, ssrc := range srcs {
		if name, ok := strings.CutPrefix(ssrc, "@"); ok {
			if i != 1 {
				return p, fmt.Errorf("@%s reference only allowed as the second operand", name)
			}
			if info.Branch {
				p.branch = name
			} else if info.Trap {
				p.graphRef = name
			} else {
				return p, fmt.Errorf("@%s reference not allowed for %s", name, mnemonic)
			}
			// Placeholder sized like the final word immediate.
			p.instr.Src2 = isa.Src{Mode: isa.SrcWordImm}
			continue
		}
		src, err := parseSrc(ssrc)
		if err != nil {
			return p, err
		}
		if i == 0 {
			p.instr.Src1 = src
		} else {
			p.instr.Src2 = src
		}
	}
	dsts, err := splitList(dstPart)
	if err != nil {
		return p, err
	}
	if len(dsts) > 2 {
		return p, fmt.Errorf("at most two destinations, got %d", len(dsts))
	}
	for i, d := range dsts {
		r, err := parseReg(d)
		if err != nil {
			return p, err
		}
		if i == 0 {
			p.instr.Dst1 = r
		} else {
			p.instr.Dst2 = r
		}
	}
	return p, nil
}

func splitList(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty operand in list %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}

var regNames = map[string]int{
	"dummy": isa.RegDummy, "cin": isa.RegCIn, "cout": isa.RegCOut,
	"nar": isa.RegNAR, "pom": isa.RegPOM, "qp": isa.RegQP, "pc": isa.RegPC,
}

func parseReg(s string) (int, error) {
	if n, ok := regNames[s]; ok {
		return n, nil
	}
	if v, ok := strings.CutPrefix(s, "r"); ok {
		n, err := strconv.Atoi(v)
		if err == nil && n >= 0 && n < isa.NumRegs {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseQueueOffset(s string) (int, error) {
	v, ok := strings.CutPrefix(s, "r")
	if !ok {
		v = s
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 || n >= isa.MaxQueuePage {
		return 0, fmt.Errorf("bad queue offset %q", s)
	}
	return n, nil
}

func parseSrc(s string) (isa.Src, error) {
	if v, ok := strings.CutPrefix(s, "#"); ok {
		n, err := strconv.ParseInt(v, 0, 33)
		if err != nil {
			return isa.Src{}, fmt.Errorf("bad immediate %q", s)
		}
		return isa.Imm(int32(n)), nil
	}
	r, err := parseReg(s)
	if err != nil {
		return isa.Src{}, err
	}
	return isa.Reg(r), nil
}
