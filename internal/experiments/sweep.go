package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"queuemachine/internal/amdahl"
	"queuemachine/internal/compile"
	"queuemachine/internal/profile"
	"queuemachine/internal/sched"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// SweepBenchmarks is the workload corpus of the scheduler design-space
// sweep by short name: the Chapter 6 suite plus the second-generation
// programs. Every run's answer is verified against the workload's bit-exact
// reference before its cycle count is admitted into the report.
func SweepBenchmarks() map[string]workloads.Workload {
	return map[string]workloads.Workload{
		"matmul":     workloads.MatMul(8),
		"fft":        workloads.FFT(6),
		"cholesky":   workloads.Cholesky(8),
		"congruence": workloads.Congruence(8),
		"bitonic":    workloads.Bitonic(4),
		"lu":         workloads.LU(6),
		"stencil":    workloads.Stencil(16, 4),
		"chain":      workloads.Chain(24),
	}
}

// SweepBenchmarkNames lists the corpus in stable order.
func SweepBenchmarkNames() []string {
	names := make([]string, 0, len(SweepBenchmarks()))
	for n := range SweepBenchmarks() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SweepSpec is the design-space grid: every combination of benchmark,
// scheduling policy, machine size, message-cache capacity and ring
// partition count is simulated once. Zero MCacheEntries/Partitions entries
// select the defaults (64 entries, Figure 5.18 partitioning); empty slices
// mean "defaults only".
type SweepSpec struct {
	Benchmarks    []string `json:"benchmarks"`
	Policies      []string `json:"policies"`
	PECounts      []int    `json:"pe_counts"`
	MCacheEntries []int    `json:"mcache_entries,omitempty"`
	Partitions    []int    `json:"partitions,omitempty"`
}

// DefaultSweepSpec is the full design-space grid of the scheduler study:
// the Chapter 6 corpus under every policy from one processing element to
// sixty-four.
func DefaultSweepSpec() SweepSpec {
	return SweepSpec{
		Benchmarks: SweepBenchmarkNames(),
		Policies:   sched.Names(),
		PECounts:   []int{1, 2, 4, 8, 16, 32, 64},
	}
}

// SmokeSweepSpec is the CI smoke grid: three benchmarks (one of them
// channel-bound), three policies, two machine sizes — small enough for a
// report-only CI job, broad enough to exercise every policy code path
// beyond the FIFO baseline on both compute- and communication-dominated
// programs.
func SmokeSweepSpec() SweepSpec {
	return SweepSpec{
		Benchmarks: []string{"matmul", "fft", "chain"},
		Policies:   []string{sched.FIFO, sched.Locality, sched.Steal},
		PECounts:   []int{2, 8},
	}
}

// SweepResultPoint is one simulated grid point with its profiler cause
// attribution.
type SweepResultPoint struct {
	Benchmark     string `json:"benchmark"`
	Policy        string `json:"policy"`
	PEs           int    `json:"pes"`
	MCacheEntries int    `json:"mcache_entries,omitempty"`
	Partitions    int    `json:"partitions,omitempty"`

	Cycles       int64   `json:"cycles"`
	Instructions int64   `json:"instructions"`
	Switches     int64   `json:"switches"`
	Migrations   int64   `json:"migrations"`
	Steals       int64   `json:"steals"`
	Utilization  float64 `json:"utilization"`

	// Speedup is cycles at the series' smallest machine over cycles here
	// (the Figures 6.8–6.12 throughput ratio, per policy).
	Speedup float64 `json:"speedup"`
	// VsFifo is fifo's cycles over this policy's cycles at the identical
	// configuration: > 1 means the policy beats the thesis baseline.
	VsFifo float64 `json:"vs_fifo,omitempty"`

	// Causes is the whole-machine attribution (sums to PEs × Cycles);
	// CritPathCauses partitions the makespan along the dynamic critical
	// path, where dispatch-wait — ready work waiting for a processor —
	// is the signal a scheduling policy can remove.
	Causes           map[string]int64 `json:"causes"`
	CritPathCauses   map[string]int64 `json:"critpath_causes"`
	DispatchWaitFrac float64          `json:"dispatch_wait_frac"`
}

// SweepCurve is one (benchmark, policy, cache, partitions) series across
// machine sizes with its speed-up law fits.
type SweepCurve struct {
	Benchmark     string    `json:"benchmark"`
	Policy        string    `json:"policy"`
	MCacheEntries int       `json:"mcache_entries,omitempty"`
	Partitions    int       `json:"partitions,omitempty"`
	PECounts      []int     `json:"pe_counts"`
	Speedups      []float64 `json:"speedups"`
	// AmdahlF is the classic single-parameter fit; ModifiedF/ModifiedG
	// the two-parameter law of §6.4 that admits super-linear margins.
	AmdahlF   float64 `json:"amdahl_f"`
	ModifiedF float64 `json:"modified_f"`
	ModifiedG float64 `json:"modified_g"`
}

// SweepReport is the design-space explorer's JSON artifact.
type SweepReport struct {
	Spec   SweepSpec          `json:"spec"`
	Points []SweepResultPoint `json:"points"`
	Curves []SweepCurve       `json:"curves"`
}

// RunPolicySweep simulates the full grid, verifying every run's answer,
// attaching profiler cause attribution to every point, and fitting the
// speed-up laws per series. Progress lines go to w when non-nil.
func RunPolicySweep(ctx context.Context, spec SweepSpec, w io.Writer) (*SweepReport, error) {
	benches := SweepBenchmarks()
	caches := spec.MCacheEntries
	if len(caches) == 0 {
		caches = []int{0}
	}
	parts := spec.Partitions
	if len(parts) == 0 {
		parts = []int{0}
	}
	for _, pol := range spec.Policies {
		if !sched.Valid(pol) {
			return nil, fmt.Errorf("sweep: unknown policy %q (have %v)", pol, sched.Names())
		}
	}

	rep := &SweepReport{Spec: spec}
	// fifo cycles per non-policy configuration, for the VsFifo columns.
	fifoCycles := map[string]int64{}
	configKey := func(bench string, pes, cache, part int) string {
		return fmt.Sprintf("%s/%d/%d/%d", bench, pes, cache, part)
	}

	for _, bench := range spec.Benchmarks {
		wl, ok := benches[bench]
		if !ok {
			return nil, fmt.Errorf("sweep: unknown benchmark %q (have %v)",
				bench, SweepBenchmarkNames())
		}
		art, err := compile.Compile(wl.Source, compile.Options{})
		if err != nil {
			return nil, fmt.Errorf("sweep: compile %s: %w", bench, err)
		}
		graphNames := make([]string, len(art.Object.Graphs))
		for i, g := range art.Object.Graphs {
			graphNames[i] = g.Name
		}
		for _, cache := range caches {
			for _, part := range parts {
				for _, pol := range spec.Policies {
					var base int64
					for _, pes := range spec.PECounts {
						params := sim.DefaultParams()
						params.Scheduler = sched.Config{Policy: pol}
						params.KeepData = true
						if cache > 0 {
							params.MsgCacheEntries = cache
						}
						if part > 0 {
							params.Partitions = part
						}
						sys, err := sim.New(art.Object, pes, params)
						if err != nil {
							return nil, fmt.Errorf("sweep: %s/%s/%d: %w", bench, pol, pes, err)
						}
						p := profile.New(pes)
						p.SetGraphNames(graphNames)
						sys.SetRecorder(p)
						res, err := sys.RunContext(ctx)
						if err != nil {
							return nil, fmt.Errorf("sweep: %s/%s/%d: %w", bench, pol, pes, err)
						}
						if err := wl.Check(art, res.Data); err != nil {
							return nil, fmt.Errorf("sweep: %s/%s/%d PEs: wrong result: %w",
								bench, pol, pes, err)
						}
						prof := p.Finalize(res.Cycles)
						if base == 0 {
							base = res.Cycles
						}
						pt := SweepResultPoint{
							Benchmark:     bench,
							Policy:        pol,
							PEs:           pes,
							MCacheEntries: cache,
							Partitions:    part,
							Cycles:        res.Cycles,
							Instructions:  res.Instructions,
							Switches:      res.Switches,
							Migrations:    res.Kernel.Migrations,
							Steals:        res.Kernel.Steals,
							Utilization:   res.Utilization(),
							Speedup:       float64(base) / float64(res.Cycles),
							Causes:        prof.Causes,
						}
						if cp := prof.CriticalPath; cp != nil && cp.Cycles > 0 {
							pt.CritPathCauses = cp.Causes
							pt.DispatchWaitFrac =
								float64(cp.Causes[profile.CauseDispatchWait.String()]) /
									float64(cp.Cycles)
						}
						key := configKey(bench, pes, cache, part)
						if pol == sched.FIFO {
							fifoCycles[key] = res.Cycles
						}
						if fc, ok := fifoCycles[key]; ok && fc > 0 {
							pt.VsFifo = float64(fc) / float64(res.Cycles)
						}
						rep.Points = append(rep.Points, pt)
						if w != nil {
							fmt.Fprintf(w, "sweep: %-10s %-8s pes=%-2d cycles=%-9d vs-fifo=%.3f dispatch-wait=%.1f%%\n",
								bench, pol, pes, res.Cycles, pt.VsFifo, 100*pt.DispatchWaitFrac)
						}
					}
				}
			}
		}
	}

	// Fit the speed-up laws per series. Points were appended series-major,
	// so consecutive runs of len(PECounts) share a series.
	n := len(spec.PECounts)
	for i := 0; i+n <= len(rep.Points); i += n {
		series := rep.Points[i : i+n]
		ns := make([]int, n)
		sp := make([]float64, n)
		for j, pt := range series {
			ns[j], sp[j] = pt.PEs, pt.Speedup
		}
		c := SweepCurve{
			Benchmark:     series[0].Benchmark,
			Policy:        series[0].Policy,
			MCacheEntries: series[0].MCacheEntries,
			Partitions:    series[0].Partitions,
			PECounts:      ns,
			Speedups:      sp,
		}
		c.AmdahlF = amdahl.FitAmdahl(ns, sp)
		c.ModifiedF, c.ModifiedG = amdahl.FitModified(ns, sp)
		rep.Curves = append(rep.Curves, c)
	}
	return rep, nil
}

// SchedSweep is the qmexp entry for the design-space explorer: it runs the
// CI smoke grid and prints the per-point progress and winners table. The
// full grid (every benchmark and policy out to 64 processing elements, with
// cache and partition variants) is `qbench -sweep`.
func SchedSweep(w io.Writer) error {
	rep, err := RunPolicySweep(context.Background(), SmokeSweepSpec(), w)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	WriteSweepSummary(w, rep)
	return nil
}

// WriteSweepSummary renders the report's headline per-policy comparison:
// for every (benchmark, machine size) the winning policy and its margin
// over the FIFO baseline.
func WriteSweepSummary(w io.Writer, rep *SweepReport) {
	fmt.Fprintf(w, "%-12s %-4s %-10s %-12s %-9s %-14s %-14s\n",
		"benchmark", "pes", "best", "cycles", "vs-fifo", "dispatch-wait", "steals/migr")
	type key struct {
		bench string
		pes   int
	}
	best := map[key]SweepResultPoint{}
	var order []key
	for _, pt := range rep.Points {
		if pt.MCacheEntries != rep.Points[0].MCacheEntries ||
			pt.Partitions != rep.Points[0].Partitions {
			continue // summarize the first cache/partition plane only
		}
		k := key{pt.Benchmark, pt.PEs}
		b, ok := best[k]
		if !ok {
			order = append(order, k)
		}
		if !ok || pt.Cycles < b.Cycles {
			best[k] = pt
		}
	}
	for _, k := range order {
		pt := best[k]
		fmt.Fprintf(w, "%-12s %-4d %-10s %-12d %-9.3f %-14s %d/%d\n",
			k.bench, k.pes, pt.Policy, pt.Cycles, pt.VsFifo,
			fmt.Sprintf("%.1f%%", 100*pt.DispatchWaitFrac), pt.Steals, pt.Migrations)
	}
}
