package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestRunPolicySweepSmall(t *testing.T) {
	spec := SweepSpec{
		Benchmarks: []string{"matmul"},
		Policies:   []string{"fifo", "steal"},
		PECounts:   []int{1, 4},
	}
	rep, err := RunPolicySweep(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("RunPolicySweep: %v", err)
	}
	if len(rep.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(rep.Points))
	}
	for _, pt := range rep.Points {
		// The profiler's defining invariant rides along into every point.
		var sum int64
		for _, v := range pt.Causes {
			sum += v
		}
		if want := int64(pt.PEs) * pt.Cycles; sum != want {
			t.Errorf("%s/%s/%d: causes sum to %d, want PEs × makespan = %d",
				pt.Benchmark, pt.Policy, pt.PEs, sum, want)
		}
		if pt.VsFifo == 0 {
			t.Errorf("%s/%s/%d: VsFifo not computed", pt.Benchmark, pt.Policy, pt.PEs)
		}
		if len(pt.CritPathCauses) == 0 {
			t.Errorf("%s/%s/%d: no critical-path attribution", pt.Benchmark, pt.Policy, pt.PEs)
		}
	}
	// fifo at any size compares to itself as exactly 1.
	for _, pt := range rep.Points {
		if pt.Policy == "fifo" && pt.VsFifo != 1 {
			t.Errorf("fifo VsFifo = %v, want 1", pt.VsFifo)
		}
	}
	if len(rep.Curves) != 2 {
		t.Fatalf("got %d curves, want 2", len(rep.Curves))
	}
	for _, c := range rep.Curves {
		if len(c.Speedups) != 2 || c.Speedups[0] != 1 {
			t.Errorf("curve %s/%s speedups %v, want first point normalized to 1",
				c.Benchmark, c.Policy, c.Speedups)
		}
		// The grid-refined fit can land a hair past 1.0 on super-linear
		// curves; only wild values indicate a broken fit.
		if c.AmdahlF < 0 || c.AmdahlF > 1.05 {
			t.Errorf("curve %s/%s Amdahl f = %v far outside [0,1]", c.Benchmark, c.Policy, c.AmdahlF)
		}
	}

	var b strings.Builder
	WriteSweepSummary(&b, rep)
	if !strings.Contains(b.String(), "matmul") {
		t.Errorf("summary missing benchmark name:\n%s", b.String())
	}
}

func TestRunPolicySweepRejectsUnknown(t *testing.T) {
	if _, err := RunPolicySweep(context.Background(), SweepSpec{
		Benchmarks: []string{"matmul"}, Policies: []string{"bogus"}, PECounts: []int{1},
	}, nil); err == nil || !strings.Contains(err.Error(), "policy") {
		t.Errorf("unknown policy error = %v", err)
	}
	if _, err := RunPolicySweep(context.Background(), SweepSpec{
		Benchmarks: []string{"nope"}, Policies: []string{"fifo"}, PECounts: []int{1},
	}, nil); err == nil || !strings.Contains(err.Error(), "benchmark") {
		t.Errorf("unknown benchmark error = %v", err)
	}
}
