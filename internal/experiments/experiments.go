// Package experiments regenerates every table and figure of the thesis that
// this reproduction covers (the per-experiment index lives in DESIGN.md).
// Each experiment writes a textual rendition of the table or figure series
// to a writer; cmd/qmexp exposes them on the command line and the top-level
// benchmark harness drives them as testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"queuemachine/internal/amdahl"
	"queuemachine/internal/bintree"
	"queuemachine/internal/compile"
	"queuemachine/internal/core"
	"queuemachine/internal/dfg"
	"queuemachine/internal/exprgen"
	"queuemachine/internal/ift"
	"queuemachine/internal/mcache"
	"queuemachine/internal/occam"
	"queuemachine/internal/pipesim"
	"queuemachine/internal/queue"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All lists every experiment in thesis order.
func All() []Experiment {
	return []Experiment{
		{"fig3.1", "Parse tree, level order and conjugate tree for f := a*b + (c-d)/e", Fig31},
		{"table3.1", "Queue vs stack machine instruction sequences", Table31},
		{"table3.2", "Speed-up vs parse tree size, two-stage pipelined ALU", Table32},
		{"table3.3", "Speed-up vs pipeline depth, 11-node trees", Table33},
		{"table3.4", "Indexed queue machine sequence for d := a/(a+b) + (a+b)*c", Table34},
		{"table4.3", "Sample OCCAM fragment and its Intermediate Form Table", Table43},
		{"table4.4", "P*, I* and C for the Figure 4.14 graph", Table44},
		{"table4.5", "Input weights W(v) and the pi_I order", Table45},
		{"table5.3", "Message cache state transitions (send/receive, fetch-and-phi)", Table53},
		{"fig6.6", "Amdahl's law, f = 0.93", Fig66},
		{"fig6.7", "Modified Amdahl's law, f = 0.63, g = 0.3", Fig67},
		{"fig6.8", "Matrix multiplication: throughput ratio vs processors (+ Table 6.2)", Fig68},
		{"fig6.9", "Binary recursive vs non-recursive procedure", Fig69},
		{"fig6.10", "FFT: throughput ratio vs processors (+ Table 6.3)", Fig610},
		{"fig6.11", "Cholesky: throughput ratio vs processors (+ Table 6.4)", Fig611},
		{"fig6.12", "Congruence transformation: throughput ratio vs processors (+ Table 6.5)", Fig612},
		{"table6.6", "Compiler optimization speed-up factors", Table66},
		{"sched", "Scheduler policy sweep: Chapter 6 smoke grid across policies", SchedSweep},
		{"hostpar", "Host-parallel engine scaling: Congruence at 64-256 PEs, workers 0-8", HostParScaling},
		{"ablation-cache", "Ablation: message cache capacity vs speed-up", AblationCache},
		{"ablation-bus", "Ablation: interconnect bandwidth vs speed-up", AblationBus},
		{"ablation-window", "Ablation: register roll-out cost vs speed-up", AblationWindow},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// PECounts is the machine-size sweep of the Chapter 6 figures.
var PECounts = []int{1, 2, 3, 4, 5, 6, 7, 8}

// ---------------------------------------------------------------------------
// Chapter 3

const fig31Expr = "a*b + (c-d)/e"

// Fig31 renders the Figure 3.1 triple: parse tree (infix), level order, and
// the level-order conjugate tree.
func Fig31(w io.Writer) error {
	tree, err := bintree.ParseExpr(fig31Expr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "expression: f := %s\n", fig31Expr)
	fmt.Fprintf(w, "parse tree (fully parenthesized): %s\n", bintree.Infix(tree))
	fmt.Fprintf(w, "level order: %v\n", bintree.Labels(bintree.LevelOrder(tree)))
	fmt.Fprintf(w, "level-order conjugate tree:\n%s", bintree.ConjugateSketch(tree))
	return nil
}

// Table31 renders the stack and queue instruction sequences and their
// symbolic evaluation traces.
func Table31(w io.Writer) error {
	tree, err := bintree.ParseExpr(fig31Expr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "f := %s\n\nqueue machine:\n", fig31Expr)
	qstates, qv, err := queue.TraceSimple(queue.CompileTreeSymbolic(bintree.LevelOrder(tree)))
	if err != nil {
		return err
	}
	fmt.Fprint(w, queue.FormatTrace(qstates))
	fmt.Fprintf(w, "result: %s\n\nstack machine:\n", qv)
	sstates, sv, err := queue.TraceStack(queue.CompileTreeSymbolic(bintree.PostOrder(tree)))
	if err != nil {
		return err
	}
	fmt.Fprint(w, queue.FormatTrace(sstates))
	fmt.Fprintf(w, "result: %s\n", sv)
	return nil
}

// Table32Rows computes the Table 3.2 sweep.
func Table32Rows() []pipesim.Result {
	var rows []pipesim.Result
	for n := 1; n <= 11; n++ {
		rows = append(rows, pipesim.Sweep(n, 2, pipesim.Case1, exprgen.ForEach))
		rows = append(rows, pipesim.Sweep(n, 2, pipesim.Case2, exprgen.ForEach))
	}
	return rows
}

// Table32 renders the speed-up table for a two-stage pipelined ALU.
func Table32(w io.Writer) error {
	fmt.Fprintf(w, "%-6s %-8s %-8s %-8s\n", "nodes", "trees", "case 1", "case 2")
	for n := 1; n <= 11; n++ {
		r1 := pipesim.Sweep(n, 2, pipesim.Case1, exprgen.ForEach)
		r2 := pipesim.Sweep(n, 2, pipesim.Case2, exprgen.ForEach)
		fmt.Fprintf(w, "%-6d %-8d %-8.2f %-8.2f\n", n, r1.Trees, r1.SpeedUp(), r2.SpeedUp())
	}
	return nil
}

// Table33 renders the speed-up vs pipeline depth table (11-node trees).
func Table33(w io.Writer) error {
	fmt.Fprintf(w, "%-8s %-8s %-8s\n", "stages", "case 1", "case 2")
	for s := 1; s <= 6; s++ {
		r1 := pipesim.Sweep(11, s, pipesim.Case1, exprgen.ForEach)
		r2 := pipesim.Sweep(11, s, pipesim.Case2, exprgen.ForEach)
		fmt.Fprintf(w, "%-8d %-8.2f %-8.2f\n", s, r1.SpeedUp(), r2.SpeedUp())
	}
	return nil
}

// Table34 builds the Figure 3.6(b) shared-subexpression graph, generates
// its indexed-queue sequence with the Figure 4.20 scheduler, and traces the
// evaluation.
func Table34(w io.Writer) error {
	g2 := dfg.New()
	a2 := g2.Input("a")
	b2 := g2.Input("b")
	c2 := g2.Input("c")
	sum2 := g2.AddOp("+", a2, b2)
	div2 := g2.AddOp("/", a2, sum2)
	mul2 := g2.AddOp("*", sum2, c2)
	g2.AddOp("+", div2, mul2)
	order, err := g2.Schedule(nil)
	if err != nil {
		return err
	}
	seq, err := g2.GenerateSequence(order)
	if err != nil {
		return err
	}
	env := map[string]int64{"a": 6, "b": 2, "c": 5}
	sem := func(n *dfg.Node, args []int64) ([]int64, error) {
		if n.IsInput {
			return []int64{env[n.Op]}, nil
		}
		switch n.Op {
		case "+":
			return []int64{args[0] + args[1]}, nil
		case "/":
			return []int64{args[0] / args[1]}, nil
		case "*":
			return []int64{args[0] * args[1]}, nil
		}
		return []int64{args[0]}, nil
	}
	prog, err := seq.ToIndexed(sem)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "d := a/(a+b) + (a+b)*c with a=6 b=2 c=5\n")
	fmt.Fprintf(w, "%-12s %-8s %s\n", "instruction", "arity", "result offsets")
	for _, e := range seq.Entries {
		fmt.Fprintf(w, "%-12s %-8d %v\n", e.Node.String(), e.Node.Arity(), e.Offsets[0])
	}
	states, _, err := queue.TraceIndexed(prog)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nevaluation trace (front offset, live slots):\n")
	for _, s := range states {
		fmt.Fprintf(w, "%-14s front=%d slots=%v\n", s.Instr, s.Front, s.Slots)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Chapter 4

// Table43 builds the Table 4.3 IFT for the sample fragment.
func Table43(w io.Writer) error {
	src := `var x, y:
seq
  x := x + 1
  y := x
`
	prog, err := occam.Parse(src)
	if err != nil {
		return err
	}
	table, err := ift.Build(prog)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fragment:\n%s\n", src)
	fmt.Fprintf(w, "%-4s %-10s %-14s %-14s %s\n", "idx", "type", "I", "O", "E")
	for _, e := range table.Entries {
		if e.Kind == ift.KMain {
			continue
		}
		fmt.Fprintf(w, "%-4d %-10v %-14s %-14s %v\n",
			e.Index, e.Kind, valueList(e.Inputs()), valueList(e.Outputs()), e.E)
	}
	return nil
}

func valueList(vals []ift.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// fig414Graph reconstructs the Figure 4.14 analysis graph.
func fig414Graph() (*dfg.Graph, []*dfg.Node) {
	g := dfg.New()
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	plus := g.AddOp("+", a, b)
	neg := g.AddOp("-", c)
	mul := g.AddOp("*", plus, neg)
	div := g.AddOp("/", mul, d)
	e := g.AddOp("e", div)
	return g, []*dfg.Node{a, b, c, d, plus, neg, mul, div, e}
}

// Table44 renders P*, I* and C for every node of the Figure 4.14 graph.
func Table44(w io.Writer) error {
	g, _ := fig414Graph()
	an := g.Analyze()
	fmt.Fprintf(w, "e := ((a+b) * (-c)) / d\n")
	fmt.Fprintf(w, "depth-first list: %v\n\n", nodeOps(g.DepthFirstList()))
	fmt.Fprintf(w, "%-6s %-28s %-16s %s\n", "node", "P*(v)", "I*(v)", "C(v)")
	for _, n := range g.DepthFirstList() {
		fmt.Fprintf(w, "%-6s %-28s %-16s %d\n",
			n.Op,
			"{"+strings.Join(nodeOps(an.PredecessorSet(n)), " ")+"}",
			"{"+strings.Join(nodeOps(an.RequiredInputs(n)), " ")+"}",
			an.Cost(n))
	}
	return nil
}

// Table45 renders the input weights and the resulting order.
func Table45(w io.Writer) error {
	g, _ := fig414Graph()
	an := g.Analyze()
	fmt.Fprintf(w, "%-6s %s\n", "input", "W(v)")
	for _, n := range g.Inputs() {
		fmt.Fprintf(w, "%-6s %d\n", n.Op, an.InputWeight(n))
	}
	fmt.Fprintf(w, "pi_I order: %v\n", nodeOps(an.InputOrder()))
	return nil
}

func nodeOps(nodes []*dfg.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Op
	}
	return out
}

// ---------------------------------------------------------------------------
// Chapter 5/6: message cache transitions

// Table53 exercises and prints the message-cache state transition tables.
func Table53(w io.Writer) error {
	c := mcache.New(4)
	sender := mcache.ContextRef{PE: 0, Ctx: 1}
	receiver := mcache.ContextRef{PE: 1, Ctx: 2}
	step := func(desc string, f func() (any, error)) error {
		r, err := f()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s -> state=%v result=%v\n", desc, c.ChannelState(1), r)
		return nil
	}
	fmt.Fprintln(w, "send/receive transitions on channel 1:")
	if err := step("send(1, 42) on empty", func() (any, error) {
		done, _, err := c.Send(1, 42, sender)
		return done, err
	}); err != nil {
		return err
	}
	if err := step("recv(1) on sender-wait", func() (any, error) {
		done, _, err := c.Recv(1, receiver)
		return done, err
	}); err != nil {
		return err
	}
	if err := step("recv(1) on empty", func() (any, error) {
		done, _, err := c.Recv(1, receiver)
		return done, err
	}); err != nil {
		return err
	}
	if err := step("send(1, 7) on receiver-wait", func() (any, error) {
		done, _, err := c.Send(1, 7, sender)
		return done, err
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfetch-and-phi transitions on channel 9:")
	for _, op := range []struct {
		desc string
		f    func() (int32, bool, error)
	}{
		{"fetch-and-add(9, 5)", func() (int32, bool, error) { return c.FetchAndAdd(9, 5) }},
		{"fetch-and-add(9, 3)", func() (int32, bool, error) { return c.FetchAndAdd(9, 3) }},
		{"fetch-and-store(9, 100)", func() (int32, bool, error) { return c.FetchAndStore(9, 100) }},
	} {
		old, _, err := op.f()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s -> state=%v old=%d\n", op.desc, c.ChannelState(9), old)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Chapter 6: analytic curves

// Fig66 renders Amdahl's law with the thesis's f = 0.93.
func Fig66(w io.Writer) error {
	fmt.Fprintf(w, "Amdahl's law, f = 0.93\n%-6s %s\n", "n", "S(n)")
	for _, n := range PECounts {
		fmt.Fprintf(w, "%-6d %.3f\n", n, amdahl.Speedup(0.93, n))
	}
	return nil
}

// Fig67 renders the modified law with f = 0.63, g = 0.3.
func Fig67(w io.Writer) error {
	fmt.Fprintf(w, "modified Amdahl's law, f = 0.63, g = 0.30\n%-6s %-8s %s\n", "n", "S(n)", "S(n)/n")
	for _, n := range PECounts {
		s := amdahl.ModifiedSpeedup(0.63, 0.30, n)
		fmt.Fprintf(w, "%-6d %-8.3f %.3f\n", n, s, s/float64(n))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Chapter 6: benchmark sweeps

// SweepWorkload runs one benchmark across the machine sizes, verifying the
// result at every size, and renders the figure series plus the statistics
// table.
func SweepWorkload(w io.Writer, wl workloads.Workload, peCounts []int) ([]core.SweepPoint, error) {
	points, _, err := core.Sweep(wl.Source, peCounts, core.DefaultConfig(), wl.Check)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "workload: %s (result verified on every machine size)\n", wl.Name)
	fmt.Fprintf(w, "%-5s %-12s %-10s %-8s %-10s %-10s %-9s %-9s %-10s %-7s\n",
		"PEs", "cycles", "speedup", "util", "instrs", "contexts", "switches", "rendezv", "cache-miss", "avg-q")
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(w, "%-5d %-12d %-10.2f %-8.2f %-10d %-10d %-9d %-9d %-10d %-7.2f\n",
			p.PEs, r.Cycles, p.Speedup, p.Utilization, r.Instructions,
			r.Kernel.ContextsCreated, r.Switches, r.Cache.Rendezvous, r.Cache.Misses,
			r.AvgQueueLength())
	}
	ns := make([]int, len(points))
	meas := make([]float64, len(points))
	for i, p := range points {
		ns[i], meas[i] = p.PEs, p.Speedup
	}
	f := amdahl.FitAmdahl(ns, meas)
	mf, mg := amdahl.FitModified(ns, meas)
	fmt.Fprintf(w, "Amdahl fit: f = %.2f; modified fit: f = %.2f, g = %.2f\n", f, mf, mg)
	return points, nil
}

// Fig68 is the matrix multiplication sweep (Figure 6.8 / Table 6.2).
func Fig68(w io.Writer) error {
	_, err := SweepWorkload(w, workloads.MatMul(8), PECounts)
	return err
}

// Fig610 is the FFT sweep (Figure 6.10 / Table 6.3).
func Fig610(w io.Writer) error {
	_, err := SweepWorkload(w, workloads.FFT(6), PECounts)
	return err
}

// Fig611 is the Cholesky sweep (Figure 6.11 / Table 6.4).
func Fig611(w io.Writer) error {
	_, err := SweepWorkload(w, workloads.Cholesky(8), PECounts)
	return err
}

// Fig612 is the congruence transformation sweep (Figure 6.12 / Table 6.5).
func Fig612(w io.Writer) error {
	_, err := SweepWorkload(w, workloads.Congruence(8), PECounts)
	return err
}

// Fig69 compares the binary-recursive and non-recursive procedures.
func Fig69(w io.Writer) error {
	for _, wl := range []workloads.Workload{
		workloads.BinaryRecursiveSum(32),
		workloads.IterativeSum(32),
	} {
		res, art, err := core.Run(wl.Source, 4, core.DefaultConfig())
		if err != nil {
			return err
		}
		if err := wl.Check(art, res.Data); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-24s cycles=%-8d contexts=%-5d rforks=%-4d iforks=%-4d (4 PEs, verified)\n",
			wl.Name, res.Cycles, res.Kernel.ContextsCreated, res.Kernel.RForks, res.Kernel.IForks)
	}
	return nil
}

// OptimizationCases lists the Table 6.6 compiler configurations.
func OptimizationCases() []struct {
	Name string
	Opts compile.Options
} {
	return []struct {
		Name string
		Opts compile.Options
	}{
		{"all optimizations on", compile.Options{}},
		{"no pi_I input ordering", compile.Options{NoInputOrder: true}},
		{"no live-value filtering", compile.Options{NoLiveFilter: true}},
		{"no priority sequencing", compile.Options{NoPriority: true}},
		{"no constant folding/immediates", compile.Options{NoConstFold: true}},
		{"all optimizations off", compile.Options{NoInputOrder: true, NoLiveFilter: true, NoPriority: true, NoConstFold: true}},
	}
}

// ablate runs the matmul benchmark at 1 and 8 PEs under a parameter
// mutation and reports the cycle counts and throughput ratio.
func ablate(w io.Writer, label string, configure func(v int64) sim.Params, values []int64) error {
	wl := workloads.MatMul(8)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: %s; parameter: %s\n", wl.Name, label)
	fmt.Fprintf(w, "%-10s %-12s %-12s %s\n", label, "cycles(1)", "cycles(8)", "S(8)")
	for _, v := range values {
		params := configure(v)
		r1, err := sim.Run(art.Object, 1, params)
		if err != nil {
			return err
		}
		if err := wl.Check(art, r1.Data); err != nil {
			return err
		}
		r8, err := sim.Run(art.Object, 8, params)
		if err != nil {
			return err
		}
		if err := wl.Check(art, r8.Data); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %-12d %-12d %.2f\n", v, r1.Cycles, r8.Cycles,
			float64(r1.Cycles)/float64(r8.Cycles))
	}
	return nil
}

// AblationCache sweeps the per-message-processor channel cache capacity —
// the aggregate-capacity effect behind the super-linear margin.
func AblationCache(w io.Writer) error {
	return ablate(w, "entries", func(v int64) sim.Params {
		p := sim.DefaultParams()
		p.MsgCacheEntries = int(v)
		return p
	}, []int64{4, 16, 64, 256})
}

// AblationBus sweeps the partitioned bus occupancy per message — the
// bandwidth the ring partitioning exists to multiply.
func AblationBus(w io.Writer) error {
	return ablate(w, "buscycles", func(v int64) sim.Params {
		p := sim.DefaultParams()
		p.Ring.BusCycles = v
		p.Ring.LinkCycles = v
		return p
	}, []int64{1, 2, 4, 8})
}

// AblationWindow sweeps the register roll-out cost of a context switch —
// the price of the sliding window on heavily shared processors.
func AblationWindow(w io.Writer) error {
	return ablate(w, "rollout", func(v int64) sim.Params {
		p := sim.DefaultParams()
		p.PE.RollOut = int(v)
		return p
	}, []int64{0, 2, 4, 8})
}

// Table66 measures the speed-up factor each compiler optimization
// contributes, on the matrix multiplication benchmark at 4 processing
// elements.
func Table66(w io.Writer) error {
	wl := workloads.MatMul(6)
	type row struct {
		name   string
		cycles int64
	}
	var rows []row
	for _, c := range OptimizationCases() {
		cfg := core.DefaultConfig()
		cfg.Compile = c.Opts
		res, art, err := core.Run(wl.Source, 4, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		if err := wl.Check(art, res.Data); err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		rows = append(rows, row{c.Name, res.Cycles})
	}
	base := rows[0].cycles
	fmt.Fprintf(w, "workload: %s on 4 PEs (all configurations verified)\n", wl.Name)
	fmt.Fprintf(w, "%-34s %-12s %s\n", "configuration", "cycles", "slowdown vs optimized")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %-12d %.2fx\n", r.name, r.cycles, float64(r.cycles)/float64(base))
	}
	return nil
}
