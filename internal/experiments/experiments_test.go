package experiments

import (
	"bytes"
	"strings"
	"testing"

	"queuemachine/internal/workloads"
)

// TestEveryExperimentRuns executes the full experiment registry and checks
// each produces output without error. The Chapter 6 sweeps are trimmed to
// short machine-size lists elsewhere; here everything runs in full except
// in -short mode, where the heavyweight sweeps are skipped.
func TestEveryExperimentRuns(t *testing.T) {
	heavy := map[string]bool{"fig6.8": true, "fig6.10": true, "fig6.11": true, "fig6.12": true, "table6.6": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && heavy[e.ID] {
				t.Skip("heavy sweep in -short mode")
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table3.2"); !ok {
		t.Error("table3.2 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id resolved")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestFig68Superlinear checks the headline claim on the real benchmark
// against the envelope the thesis itself fits: the modified Amdahl law with
// f = 0.63, g = 0.3 is better than linear through four processors and gives
// S(8) ≈ 6.5. The measured matrix-multiplication curve must exceed linear
// over the superlinear range of that law and beat its eight-processor
// value.
func TestFig68Superlinear(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	var buf bytes.Buffer
	points, err := SweepWorkload(&buf, workloads.MatMul(8), []int{1, 2, 3, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		switch {
		case p.PEs >= 2 && p.PEs <= 4:
			if p.Speedup <= float64(p.PEs) {
				t.Errorf("%d PEs: speedup %.2f not better than linear", p.PEs, p.Speedup)
			}
		case p.PEs == 8:
			if p.Speedup < 6.5 {
				t.Errorf("8 PEs: speedup %.2f below the thesis's fitted S(8) = 6.5", p.Speedup)
			}
		}
	}
}

func TestTable31GoldenFragment(t *testing.T) {
	var buf bytes.Buffer
	if err := Table31(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fetch c", "fetch d", "fetch a", "fetch b", "((a*b)+((c-d)/e))"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table31 output missing %q", want)
		}
	}
}

func TestTable44Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := Table44(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "[e / * + a b - c d]") {
		t.Errorf("depth-first list wrong:\n%s", out)
	}
}

func TestTable45Golden(t *testing.T) {
	var buf bytes.Buffer
	if err := Table45(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a      27", "b      27", "c      26", "d      18"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table45 missing %q:\n%s", want, buf.String())
		}
	}
}
