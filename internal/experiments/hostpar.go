package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// hostParPECounts is the machine-size axis of the host-parallel scaling
// study. The sizes sit well above the Chapter 6 figures (which stop at 8)
// because the lookahead engine only has work to overlap when many
// processing elements are simultaneously armed.
var hostParPECounts = []int{64, 128, 256}

// hostParWorkerCounts is the worker axis: 0 is the sequential oracle the
// speed-ups are measured against.
var hostParWorkerCounts = []int{0, 1, 2, 4, 8}

// HostParScaling measures the host-parallel engine against the sequential
// oracle on the Congruence transformation — the most communication-heavy
// Chapter 6 program — at 64, 128 and 256 processing elements. Every
// parallel run's answer and cycle count are checked against the sequential
// run at the same machine size: the engine is only allowed to change how
// fast the host simulates, never what it simulates. Wall-clock figures are
// host-dependent; the table records GOMAXPROCS so a single-core reading
// (where the lookahead engine can only add overhead) is recognizable as
// such.
func HostParScaling(w io.Writer) error {
	wl := workloads.Congruence(8)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		return fmt.Errorf("hostpar: compile %s: %w", wl.Name, err)
	}

	fmt.Fprintf(w, "Host-parallel scaling: %s, workers 0 (sequential oracle) to 8\n", wl.Name)
	fmt.Fprintf(w, "host: GOMAXPROCS=%d (speed-up above 1 requires as many host cores as workers)\n\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%4s %8s %12s %12s %9s %8s %9s %9s %7s\n",
		"PEs", "workers", "cycles", "instrs", "host ms", "speedup", "epochs", "barriers", "cross")

	for _, pes := range hostParPECounts {
		var seqCycles, seqInstrs int64
		var seqMS float64
		for _, workers := range hostParWorkerCounts {
			params := sim.DefaultParams()
			params.KeepData = true
			params.HostParallel = workers
			sys, err := sim.New(art.Object, pes, params)
			if err != nil {
				return fmt.Errorf("hostpar: %d PEs, %d workers: %w", pes, workers, err)
			}
			start := time.Now()
			res, err := sys.Run()
			hostMS := float64(time.Since(start).Microseconds()) / 1e3
			if err != nil {
				return fmt.Errorf("hostpar: %d PEs, %d workers: %w", pes, workers, err)
			}
			if err := wl.Check(art, res.Data); err != nil {
				return fmt.Errorf("hostpar: %d PEs, %d workers: wrong result: %w",
					pes, workers, err)
			}
			if workers == 0 {
				seqCycles, seqInstrs, seqMS = res.Cycles, res.Instructions, hostMS
			} else if res.Cycles != seqCycles || res.Instructions != seqInstrs {
				return fmt.Errorf(
					"hostpar: %d PEs, %d workers: drift from sequential oracle: "+
						"cycles %d vs %d, instructions %d vs %d",
					pes, workers, res.Cycles, seqCycles, res.Instructions, seqInstrs)
			}
			fmt.Fprintf(w, "%4d %8d %12d %12d %9.1f %8.2f %9d %9d %7d\n",
				pes, workers, res.Cycles, res.Instructions, hostMS,
				seqMS/hostMS, res.Host.Epochs, res.Host.Barriers, res.Host.CrossMessages)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Simulated columns (cycles, instrs, epochs/barriers/cross at fixed workers)")
	fmt.Fprintln(w, "are deterministic; host ms and speedup vary with machine and load.")
	return nil
}
