package isa

import "fmt"

// Instruction word layout (basic format, Figure 5.6):
//
//	31..26  opcode
//	25..20  src1
//	19..14  src2
//	13..9   dst1 (register number)
//	 8..4   dst2 (register number)
//	 3..1   QP increment (0..7)
//	 0      continue flag
//
// dup format (Figure 5.7):
//
//	31..26  opcode
//	25..18  dst1 queue offset (0..255)
//	17..10  dst2 queue offset (0..255, dup2 only)
//	 9..1   unused
//	 0      continue flag
//
// A word-immediate source contributes one extension word following the
// instruction word, src1's before src2's.

const (
	srcFieldWordImm = 0b110000
	srcFieldImmBit  = 0b100000
)

func encodeSrc(s Src) (field uint32, ext []uint32, err error) {
	switch s.Mode {
	case SrcWindow:
		if s.Reg < 0 || s.Reg >= NumWindowRegs {
			return 0, nil, fmt.Errorf("isa: window register %d out of range", s.Reg)
		}
		return uint32(s.Reg), nil, nil
	case SrcGlobal:
		if s.Reg < NumWindowRegs || s.Reg >= NumRegs {
			return 0, nil, fmt.Errorf("isa: global register %d out of range", s.Reg)
		}
		return 0b010000 | uint32(s.Reg-NumWindowRegs), nil, nil
	case SrcSmallImm:
		if s.Imm < -15 || s.Imm > 15 {
			return 0, nil, fmt.Errorf("isa: small immediate %d out of range [-15,15]", s.Imm)
		}
		return srcFieldImmBit | (uint32(s.Imm) & 0b11111), nil, nil
	case SrcWordImm:
		return srcFieldWordImm, []uint32{uint32(s.Imm)}, nil
	}
	return 0, nil, fmt.Errorf("isa: unknown source mode %d", s.Mode)
}

func decodeSrc(field uint32, next func() (uint32, error)) (Src, error) {
	switch {
	case field>>4 == 0b00:
		return Window(int(field & 0b1111)), nil
	case field>>4 == 0b01:
		return Global(int(field&0b1111) + NumWindowRegs), nil
	case field == srcFieldWordImm:
		w, err := next()
		if err != nil {
			return Src{}, err
		}
		return Src{Mode: SrcWordImm, Imm: int32(w)}, nil
	default:
		v := int32(field & 0b11111)
		if v&0b10000 != 0 {
			v -= 32
		}
		return Src{Mode: SrcSmallImm, Imm: v}, nil
	}
}

// Encode serializes the instruction to one to three 32-bit words.
func (i Instr) Encode() ([]uint32, error) {
	info, ok := Lookup(i.Op)
	if !ok {
		return nil, fmt.Errorf("isa: unknown opcode %02o", uint8(i.Op))
	}
	if i.IsDup() {
		if i.Dst1 < 0 || i.Dst1 >= MaxQueuePage || i.Dst2 < 0 || i.Dst2 >= MaxQueuePage {
			return nil, fmt.Errorf("isa: dup offset out of range (%d, %d)", i.Dst1, i.Dst2)
		}
		w := uint32(i.Op)<<26 | uint32(i.Dst1)<<18 | uint32(i.Dst2)<<10
		if i.Cont {
			w |= 1
		}
		return []uint32{w}, nil
	}
	if i.QPInc < 0 || i.QPInc > 7 {
		return nil, fmt.Errorf("isa: QP increment %d out of range [0,7]", i.QPInc)
	}
	if i.Dst1 < 0 || i.Dst1 >= NumRegs || i.Dst2 < 0 || i.Dst2 >= NumRegs {
		return nil, fmt.Errorf("isa: destination register out of range (%d, %d)", i.Dst1, i.Dst2)
	}
	f1, ext1, err := encodeSrc(i.Src1)
	if err != nil {
		return nil, fmt.Errorf("isa: %v src1: %w", i.Op, err)
	}
	f2, ext2, err := encodeSrc(i.Src2)
	if err != nil {
		return nil, fmt.Errorf("isa: %v src2: %w", i.Op, err)
	}
	w := uint32(i.Op)<<26 | f1<<20 | f2<<14 |
		uint32(i.Dst1)<<9 | uint32(i.Dst2)<<4 | uint32(i.QPInc)<<1
	if i.Cont {
		w |= 1
	}
	out := []uint32{w}
	out = append(out, ext1...)
	out = append(out, ext2...)
	_ = info
	return out, nil
}

// Decode deserializes one instruction starting at words[0], returning the
// instruction and the number of words consumed.
func Decode(words []uint32) (Instr, int, error) {
	if len(words) == 0 {
		return Instr{}, 0, fmt.Errorf("isa: empty instruction stream")
	}
	w := words[0]
	op := Opcode(w >> 26)
	if _, ok := Lookup(op); !ok {
		return Instr{}, 0, fmt.Errorf("isa: unknown opcode %02o in word %08x", uint8(op), w)
	}
	i := Instr{Op: op, Cont: w&1 != 0}
	if i.IsDup() {
		i.Dst1 = int(w >> 18 & 0xff)
		i.Dst2 = int(w >> 10 & 0xff)
		return i, 1, nil
	}
	consumed := 1
	next := func() (uint32, error) {
		if consumed >= len(words) {
			return 0, fmt.Errorf("isa: truncated word immediate")
		}
		v := words[consumed]
		consumed++
		return v, nil
	}
	var err error
	if i.Src1, err = decodeSrc(w>>20&0b111111, next); err != nil {
		return Instr{}, 0, err
	}
	if i.Src2, err = decodeSrc(w>>14&0b111111, next); err != nil {
		return Instr{}, 0, err
	}
	i.Dst1 = int(w >> 9 & 0b11111)
	i.Dst2 = int(w >> 4 & 0b11111)
	i.QPInc = int(w >> 1 & 0b111)
	return i, consumed, nil
}

// String renders the instruction in the thesis's assembly syntax, e.g.
// "plus++ r0,r1 :r0,r2 >".
func (i Instr) String() string {
	info, ok := Lookup(i.Op)
	if !ok {
		return fmt.Sprintf("op%02o?", uint8(i.Op))
	}
	s := info.Mnemonic
	if i.QPInc > 0 {
		s += fmt.Sprintf("+%d", i.QPInc)
	}
	if i.IsDup() {
		s += fmt.Sprintf(" :r%d", i.Dst1)
		if i.Op == OpDup2 {
			s += fmt.Sprintf(",r%d", i.Dst2)
		}
	} else {
		if info.Srcs >= 1 {
			s += " " + i.Src1.String()
		}
		if info.Srcs >= 2 {
			s += "," + i.Src2.String()
		}
		if i.Dst1 != RegDummy || i.Dst2 != RegDummy {
			s += " :" + RegName(i.Dst1)
			if i.Dst2 != RegDummy {
				s += "," + RegName(i.Dst2)
			}
		}
	}
	if i.Cont {
		s += " >"
	}
	return s
}
