// Package isa defines the queue machine processing element instruction set
// architecture of Chapter 5: the 32-bit four-address instruction format
// (two source specifiers, two destination specifiers, a queue-pointer
// increment and a continue flag), the special dup instruction format, the
// register set with its sliding window, and the opcode assignments of
// Table 5.2.
//
// Three opcodes beyond the thesis's table — mul, div and rem — occupy the
// reserved slots of the arithmetic class ("there is room for adding
// multiplication and division if needed"); the compiled benchmark programs
// require them.
package isa

import "fmt"

// Opcode is the 6-bit operation code (two octal digits in the thesis).
type Opcode uint8

// Opcode assignments per Table 5.2. The first octal digit selects the
// class: 0 duplicate, 1 memory/channel, 2 logical, 3 arithmetic, 4 signed
// comparison, 5 unsigned comparison, 6 branch, 7 trap.
const (
	OpDup1 Opcode = 0o00
	OpDup2 Opcode = 0o04

	OpSend  Opcode = 0o10
	OpStore Opcode = 0o11
	OpStorb Opcode = 0o13
	OpRecv  Opcode = 0o14
	OpFetch Opcode = 0o15
	OpFchb  Opcode = 0o17

	OpOr     Opcode = 0o20
	OpAnd    Opcode = 0o21
	OpXor    Opcode = 0o22
	OpLshift Opcode = 0o23
	OpRshift Opcode = 0o24

	OpPlus  Opcode = 0o30
	OpMinus Opcode = 0o31
	OpMul   Opcode = 0o32
	OpDiv   Opcode = 0o33
	OpRem   Opcode = 0o34

	OpGe Opcode = 0o41
	OpNe Opcode = 0o42
	OpGt Opcode = 0o43
	OpLt Opcode = 0o45
	OpEq Opcode = 0o46
	OpLe Opcode = 0o47

	OpHis Opcode = 0o50
	OpHi  Opcode = 0o52
	OpLo  Opcode = 0o54
	OpLos Opcode = 0o56

	OpBne Opcode = 0o62 // branch if true
	OpBeq Opcode = 0o66 // branch if false

	OpFtrap Opcode = 0o70
	OpTrap  Opcode = 0o71
	OpFret  Opcode = 0o74
	OpRett  Opcode = 0o75
)

// Register numbers. R0–R15 are the virtual window registers addressing the
// first sixteen elements of the operand queue; R16–R31 are global. R16 is
// the result-discarding DUMMY register; R26 and R27 hold the executing
// context's in and out channel identifiers (a software convention of the
// multiprocessing kernel, carved out of the thesis's general-purpose bank);
// R28–R31 are the NAK address register, page offset mask, queue pointer and
// program counter.
const (
	RegWindow0 = 0
	RegDummy   = 16
	RegGP0     = 17 // first general-purpose register
	RegCIn     = 26
	RegCOut    = 27
	RegNAR     = 28
	RegPOM     = 29
	RegQP      = 30
	RegPC      = 31

	NumWindowRegs = 16
	NumRegs       = 32

	// MaxQueuePage is the maximum operand queue page size in words; dup
	// destination offsets address 0..MaxQueuePage-1.
	MaxQueuePage = 256

	// WordSize is the machine word size in bytes.
	WordSize = 4
)

// RegName returns the assembly name of a register: r0..r31, with the
// special registers also recognized by symbolic names in the assembler.
func RegName(r int) string {
	switch r {
	case RegDummy:
		return "dummy"
	case RegCIn:
		return "cin"
	case RegCOut:
		return "cout"
	case RegNAR:
		return "nar"
	case RegPOM:
		return "pom"
	case RegQP:
		return "qp"
	case RegPC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// SrcMode is the interpretation of a 6-bit source operand field (Table 5.1).
type SrcMode uint8

const (
	// SrcWindow selects window register 0–15.
	SrcWindow SrcMode = iota
	// SrcGlobal selects global register 16–31.
	SrcGlobal
	// SrcSmallImm is a 5-bit two's-complement immediate in -15..15.
	SrcSmallImm
	// SrcWordImm is a full-word immediate stored after the instruction.
	SrcWordImm
)

// Src is a decoded source operand specifier.
type Src struct {
	Mode SrcMode
	Reg  int   // register number for SrcWindow/SrcGlobal
	Imm  int32 // immediate value for SrcSmallImm/SrcWordImm
}

// Window, Global, Imm and Reg are Src constructors.
func Window(n int) Src { return Src{Mode: SrcWindow, Reg: n} }
func Global(n int) Src { return Src{Mode: SrcGlobal, Reg: n} }

// Reg builds a register source from any register number 0–31.
func Reg(n int) Src {
	if n < NumWindowRegs {
		return Window(n)
	}
	return Global(n)
}

// Imm builds an immediate source, choosing the small form when it fits.
func Imm(v int32) Src {
	if v >= -15 && v <= 15 {
		return Src{Mode: SrcSmallImm, Imm: v}
	}
	return Src{Mode: SrcWordImm, Imm: v}
}

func (s Src) String() string {
	switch s.Mode {
	case SrcWindow:
		return RegName(s.Reg)
	case SrcGlobal:
		return RegName(s.Reg)
	default:
		return fmt.Sprintf("#%d", s.Imm)
	}
}

// Instr is a decoded instruction. For basic-format instructions Dst1 and
// Dst2 are register numbers (RegDummy when unused); for dup instructions
// they are queue offsets 0..255 (Dst2 meaningful only for dup2).
type Instr struct {
	Op         Opcode
	Src1, Src2 Src
	Dst1, Dst2 int
	QPInc      int
	Cont       bool
}

// IsDup reports whether the instruction uses the dup format of Figure 5.7.
func (i Instr) IsDup() bool { return i.Op == OpDup1 || i.Op == OpDup2 }

// Words reports how many 32-bit words the instruction occupies once
// encoded: one, plus one per word immediate.
func (i Instr) Words() int {
	w := 1
	if !i.IsDup() {
		if i.Src1.Mode == SrcWordImm {
			w++
		}
		if i.Src2.Mode == SrcWordImm {
			w++
		}
	}
	return w
}

// Info describes the static properties of an opcode.
type Info struct {
	Mnemonic  string
	Srcs      int  // number of source operands used
	HasResult bool // writes Dst1/Dst2 register destinations
	Compare   bool
	Unsigned  bool // unsigned comparison class
	Branch    bool
	Memory    bool // fetch/store class (word or byte)
	Channel   bool // send/recv
	Trap      bool
}

var infoTable = map[Opcode]Info{
	OpDup1:   {Mnemonic: "dup1"},
	OpDup2:   {Mnemonic: "dup2"},
	OpSend:   {Mnemonic: "send", Srcs: 2, Channel: true},
	OpStore:  {Mnemonic: "store", Srcs: 2, Memory: true},
	OpStorb:  {Mnemonic: "storb", Srcs: 2, Memory: true},
	OpRecv:   {Mnemonic: "recv", Srcs: 1, HasResult: true, Channel: true},
	OpFetch:  {Mnemonic: "fetch", Srcs: 1, HasResult: true, Memory: true},
	OpFchb:   {Mnemonic: "fchb", Srcs: 1, HasResult: true, Memory: true},
	OpOr:     {Mnemonic: "or", Srcs: 2, HasResult: true},
	OpAnd:    {Mnemonic: "and", Srcs: 2, HasResult: true},
	OpXor:    {Mnemonic: "xor", Srcs: 2, HasResult: true},
	OpLshift: {Mnemonic: "lshift", Srcs: 2, HasResult: true},
	OpRshift: {Mnemonic: "rshift", Srcs: 2, HasResult: true},
	OpPlus:   {Mnemonic: "plus", Srcs: 2, HasResult: true},
	OpMinus:  {Mnemonic: "minus", Srcs: 2, HasResult: true},
	OpMul:    {Mnemonic: "mul", Srcs: 2, HasResult: true},
	OpDiv:    {Mnemonic: "div", Srcs: 2, HasResult: true},
	OpRem:    {Mnemonic: "rem", Srcs: 2, HasResult: true},
	OpGe:     {Mnemonic: "ge", Srcs: 2, HasResult: true, Compare: true},
	OpNe:     {Mnemonic: "ne", Srcs: 2, HasResult: true, Compare: true},
	OpGt:     {Mnemonic: "gt", Srcs: 2, HasResult: true, Compare: true},
	OpLt:     {Mnemonic: "lt", Srcs: 2, HasResult: true, Compare: true},
	OpEq:     {Mnemonic: "eq", Srcs: 2, HasResult: true, Compare: true},
	OpLe:     {Mnemonic: "le", Srcs: 2, HasResult: true, Compare: true},
	OpHis:    {Mnemonic: "his", Srcs: 2, HasResult: true, Compare: true, Unsigned: true},
	OpHi:     {Mnemonic: "hi", Srcs: 2, HasResult: true, Compare: true, Unsigned: true},
	OpLo:     {Mnemonic: "lo", Srcs: 2, HasResult: true, Compare: true, Unsigned: true},
	OpLos:    {Mnemonic: "los", Srcs: 2, HasResult: true, Compare: true, Unsigned: true},
	OpBne:    {Mnemonic: "bne", Srcs: 2, Branch: true},
	OpBeq:    {Mnemonic: "beq", Srcs: 2, Branch: true},
	OpFtrap:  {Mnemonic: "ftrap", Srcs: 2, HasResult: true, Trap: true},
	OpTrap:   {Mnemonic: "trap", Srcs: 2, HasResult: true, Trap: true},
	OpFret:   {Mnemonic: "fret", Trap: true},
	OpRett:   {Mnemonic: "rett", Trap: true},
}

// denseInfo caches infoTable in an array indexed by the 6-bit opcode so
// Lookup on the emulator's decode path is an array load, not a map probe.
var denseInfo = func() (t [1 << 6]struct {
	info Info
	ok   bool
}) {
	for op, in := range infoTable {
		t[op] = struct {
			info Info
			ok   bool
		}{in, true}
	}
	return t
}()

// Lookup returns the static description of an opcode.
func Lookup(op Opcode) (Info, bool) {
	if int(op) >= len(denseInfo) {
		return Info{}, false
	}
	e := denseInfo[op]
	return e.info, e.ok
}

// ByMnemonic resolves an assembly mnemonic to its opcode.
func ByMnemonic(m string) (Opcode, bool) {
	op, ok := mnemonicTable[m]
	return op, ok
}

var mnemonicTable = func() map[string]Opcode {
	t := make(map[string]Opcode, len(infoTable))
	for op, in := range infoTable {
		t[in.Mnemonic] = op
	}
	return t
}()

func (op Opcode) String() string {
	if in, ok := infoTable[op]; ok {
		return in.Mnemonic
	}
	return fmt.Sprintf("op%02o", uint8(op))
}

// Bool encodes a machine Boolean: all ones for true, all zeros for false.
func Bool(b bool) int32 {
	if b {
		return -1
	}
	return 0
}

// Truthy decodes a machine Boolean; any nonzero word is taken as true.
func Truthy(v int32) bool { return v != 0 }

// EvalALU computes the result of a logical, arithmetic or comparison
// opcode. Division and remainder by zero report an error (the hardware
// would raise a trap).
func EvalALU(op Opcode, a, b int32) (int32, error) {
	switch op {
	case OpOr:
		return a | b, nil
	case OpAnd:
		return a & b, nil
	case OpXor:
		return a ^ b, nil
	case OpLshift:
		return a << (uint32(b) & 31), nil
	case OpRshift:
		return a >> (uint32(b) & 31), nil // arithmetic shift with sign extension
	case OpPlus:
		return a + b, nil
	case OpMinus:
		return a - b, nil
	case OpMul:
		return a * b, nil
	case OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("isa: division by zero")
		}
		return a / b, nil
	case OpRem:
		if b == 0 {
			return 0, fmt.Errorf("isa: remainder by zero")
		}
		return a % b, nil
	case OpGe:
		return Bool(a >= b), nil
	case OpNe:
		return Bool(a != b), nil
	case OpGt:
		return Bool(a > b), nil
	case OpLt:
		return Bool(a < b), nil
	case OpEq:
		return Bool(a == b), nil
	case OpLe:
		return Bool(a <= b), nil
	case OpHis:
		return Bool(uint32(a) >= uint32(b)), nil
	case OpHi:
		return Bool(uint32(a) > uint32(b)), nil
	case OpLo:
		return Bool(uint32(a) < uint32(b)), nil
	case OpLos:
		return Bool(uint32(a) <= uint32(b)), nil
	}
	return 0, fmt.Errorf("isa: opcode %v is not an ALU operation", op)
}
