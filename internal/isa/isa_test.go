package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeClasses(t *testing.T) {
	// First octal digit selects the class (Table 5.2).
	classes := map[Opcode]uint8{
		OpDup1: 0, OpDup2: 0,
		OpSend: 1, OpStore: 1, OpStorb: 1, OpRecv: 1, OpFetch: 1, OpFchb: 1,
		OpOr: 2, OpAnd: 2, OpXor: 2, OpLshift: 2, OpRshift: 2,
		OpPlus: 3, OpMinus: 3, OpMul: 3, OpDiv: 3, OpRem: 3,
		OpGe: 4, OpNe: 4, OpGt: 4, OpLt: 4, OpEq: 4, OpLe: 4,
		OpHis: 5, OpHi: 5, OpLo: 5, OpLos: 5,
		OpBne: 6, OpBeq: 6,
		OpFtrap: 7, OpTrap: 7, OpFret: 7, OpRett: 7,
	}
	for op, class := range classes {
		if uint8(op)>>3 != class {
			t.Errorf("%v = %02o: class %d, want %d", op, uint8(op), uint8(op)>>3, class)
		}
	}
}

func TestThesisOpcodeValues(t *testing.T) {
	// Exact octal values from Table 5.2.
	want := map[Opcode]uint8{
		OpDup1: 0o00, OpDup2: 0o04, OpSend: 0o10, OpStore: 0o11,
		OpStorb: 0o13, OpRecv: 0o14, OpFetch: 0o15, OpFchb: 0o17,
		OpOr: 0o20, OpAnd: 0o21, OpXor: 0o22, OpLshift: 0o23, OpRshift: 0o24,
		OpPlus: 0o30, OpMinus: 0o31,
		OpGe: 0o41, OpNe: 0o42, OpGt: 0o43, OpLt: 0o45, OpEq: 0o46, OpLe: 0o47,
		OpHis: 0o50, OpHi: 0o52, OpLo: 0o54, OpLos: 0o56,
		OpBne: 0o62, OpBeq: 0o66,
		OpFtrap: 0o70, OpTrap: 0o71, OpFret: 0o74, OpRett: 0o75,
	}
	for op, v := range want {
		if uint8(op) != v {
			t.Errorf("%v = %02o, want %02o", op, uint8(op), v)
		}
	}
}

func TestMnemonicRoundTrip(t *testing.T) {
	for op := Opcode(0); op < 64; op++ {
		info, ok := Lookup(op)
		if !ok {
			continue
		}
		got, ok := ByMnemonic(info.Mnemonic)
		if !ok || got != op {
			t.Errorf("ByMnemonic(%q) = %v, %v", info.Mnemonic, got, ok)
		}
		if op.String() != info.Mnemonic {
			t.Errorf("String(%v) = %q", op, op.String())
		}
	}
	if _, ok := ByMnemonic("nosuch"); ok {
		t.Error("unknown mnemonic resolved")
	}
	if got := Opcode(0o77).String(); !strings.Contains(got, "77") {
		t.Errorf("unknown opcode String = %q", got)
	}
}

func TestRegNames(t *testing.T) {
	cases := map[int]string{
		0: "r0", 15: "r15", 16: "dummy", 17: "r17",
		26: "cin", 27: "cout", 28: "nar", 29: "pom", 30: "qp", 31: "pc",
	}
	for r, want := range cases {
		if got := RegName(r); got != want {
			t.Errorf("RegName(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestSrcConstructors(t *testing.T) {
	if s := Imm(7); s.Mode != SrcSmallImm || s.Imm != 7 {
		t.Errorf("Imm(7) = %+v", s)
	}
	if s := Imm(-15); s.Mode != SrcSmallImm {
		t.Errorf("Imm(-15) = %+v", s)
	}
	if s := Imm(16); s.Mode != SrcWordImm {
		t.Errorf("Imm(16) = %+v", s)
	}
	if s := Imm(-16); s.Mode != SrcWordImm {
		t.Errorf("Imm(-16) = %+v", s)
	}
	if s := Reg(3); s.Mode != SrcWindow {
		t.Errorf("Reg(3) = %+v", s)
	}
	if s := Reg(30); s.Mode != SrcGlobal || s.Reg != 30 {
		t.Errorf("Reg(30) = %+v", s)
	}
}

func TestEncodeDecodeExample(t *testing.T) {
	// The §5.3.4 example: plus++ r0,r1 :r0,r2 >  /  dup1 :r30
	plus := Instr{Op: OpPlus, Src1: Window(0), Src2: Window(1), Dst1: 0, Dst2: 2, QPInc: 2, Cont: true}
	dup := Instr{Op: OpDup1, Dst1: 30, Dst2: 0}
	for _, in := range []Instr{plus, dup} {
		words, err := in.Encode()
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if len(words) != 1 {
			t.Errorf("%v encodes to %d words", in, len(words))
		}
		back, n, err := Decode(words)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if n != 1 || !reflect.DeepEqual(back, in) {
			t.Errorf("round trip: %+v -> %+v", in, back)
		}
	}
	if got := plus.String(); got != "plus+2 r0,r1 :r0,r2 >" {
		t.Errorf("String = %q", got)
	}
	if got := dup.String(); got != "dup1 :r30" {
		t.Errorf("String = %q", got)
	}
}

func TestWordImmediateEncoding(t *testing.T) {
	in := Instr{Op: OpPlus, Src1: Imm(1000), Src2: Imm(-2000), Dst1: 5, Dst2: RegDummy, QPInc: 0}
	words, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 3 {
		t.Fatalf("encoded to %d words, want 3", len(words))
	}
	if in.Words() != 3 {
		t.Errorf("Words() = %d", in.Words())
	}
	back, n, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || !reflect.DeepEqual(back, in) {
		t.Errorf("round trip: %+v -> %+v (n=%d)", in, back, n)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("empty stream accepted")
	}
	// Unknown opcode 0o77.
	if _, _, err := Decode([]uint32{uint32(0o77) << 26}); err == nil {
		t.Error("unknown opcode accepted")
	}
	// Truncated word immediate.
	in := Instr{Op: OpPlus, Src1: Imm(1000), Src2: Window(0), Dst1: RegDummy, Dst2: RegDummy}
	words, err := in.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(words[:1]); err == nil {
		t.Error("truncated immediate accepted")
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Instr{
		{Op: Opcode(0o77)},
		{Op: OpPlus, Src1: Src{Mode: SrcWindow, Reg: 16}, Dst1: RegDummy, Dst2: RegDummy},
		{Op: OpPlus, Src1: Src{Mode: SrcGlobal, Reg: 5}, Dst1: RegDummy, Dst2: RegDummy},
		{Op: OpPlus, Src1: Src{Mode: SrcSmallImm, Imm: 99}, Dst1: RegDummy, Dst2: RegDummy},
		{Op: OpPlus, Src1: Window(0), Src2: Window(0), QPInc: 9, Dst1: RegDummy, Dst2: RegDummy},
		{Op: OpPlus, Src1: Window(0), Src2: Window(0), Dst1: 40, Dst2: RegDummy},
		{Op: OpDup1, Dst1: 300},
	}
	for i, in := range bad {
		if _, err := in.Encode(); err == nil {
			t.Errorf("case %d: bad instruction %+v encoded", i, in)
		}
	}
}

// TestEncodeDecodeQuick is the assembler-level identity property: every
// well-formed instruction round-trips through Encode/Decode.
func TestEncodeDecodeQuick(t *testing.T) {
	ops := make([]Opcode, 0, len(mnemonicTable))
	for _, op := range mnemonicTable {
		ops = append(ops, op)
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		op := ops[rng.Intn(len(ops))]
		in := Instr{Op: op}
		if in.IsDup() {
			in.Dst1 = rng.Intn(MaxQueuePage)
			in.Dst2 = rng.Intn(MaxQueuePage)
		} else {
			mk := func() Src {
				switch rng.Intn(4) {
				case 0:
					return Window(rng.Intn(NumWindowRegs))
				case 1:
					return Global(NumWindowRegs + rng.Intn(NumWindowRegs))
				case 2:
					return Src{Mode: SrcSmallImm, Imm: int32(rng.Intn(31) - 15)}
				default:
					return Src{Mode: SrcWordImm, Imm: int32(rng.Uint32())}
				}
			}
			in.Src1, in.Src2 = mk(), mk()
			in.Dst1 = rng.Intn(NumRegs)
			in.Dst2 = rng.Intn(NumRegs)
			in.QPInc = rng.Intn(8)
		}
		in.Cont = rng.Intn(2) == 0
		words, err := in.Encode()
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		back, n, err := Decode(words)
		if err != nil {
			t.Fatalf("Decode(%v): %v", words, err)
		}
		return n == len(words) && reflect.DeepEqual(back, in)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalALU(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b int32
		want int32
	}{
		{OpPlus, 2, 3, 5},
		{OpMinus, 2, 3, -1},
		{OpMul, -4, 3, -12},
		{OpDiv, 7, 2, 3},
		{OpRem, 7, 2, 1},
		{OpOr, 0b1010, 0b0110, 0b1110},
		{OpAnd, 0b1010, 0b0110, 0b0010},
		{OpXor, 0b1010, 0b0110, 0b1100},
		{OpLshift, 1, 4, 16},
		{OpRshift, -16, 2, -4}, // arithmetic shift, sign extended
		{OpGe, 3, 3, -1},
		{OpNe, 3, 3, 0},
		{OpGt, 4, 3, -1},
		{OpLt, 4, 3, 0},
		{OpEq, 5, 5, -1},
		{OpLe, 5, 6, -1},
		{OpHis, -1, 1, -1}, // unsigned: 0xffffffff >= 1
		{OpHi, -1, 1, -1},
		{OpLo, 1, -1, -1},
		{OpLos, 1, 1, -1},
	}
	for _, c := range cases {
		got, err := EvalALU(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("EvalALU(%v, %d, %d): %v", c.op, c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
	if _, err := EvalALU(OpDiv, 1, 0); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := EvalALU(OpRem, 1, 0); err == nil {
		t.Error("remainder by zero accepted")
	}
	if _, err := EvalALU(OpSend, 1, 2); err == nil {
		t.Error("non-ALU opcode accepted")
	}
}

func TestBoolConventions(t *testing.T) {
	if Bool(true) != -1 || Bool(false) != 0 {
		t.Error("Bool encoding wrong")
	}
	if !Truthy(-1) || !Truthy(5) || Truthy(0) {
		t.Error("Truthy wrong")
	}
}

func TestObjectValidate(t *testing.T) {
	plus := Instr{Op: OpPlus, Src1: Window(0), Src2: Window(1), Dst1: 0, Dst2: RegDummy, QPInc: 2}
	words, err := plus.Encode()
	if err != nil {
		t.Fatal(err)
	}
	obj := &Object{
		Graphs:    []GraphCode{{Name: "main", Code: words, QueueWords: 64}},
		DataWords: 4,
		DataInit:  map[int]int32{0: 42},
	}
	if err := obj.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if i, err := obj.GraphIndex("main"); err != nil || i != 0 {
		t.Errorf("GraphIndex = %d, %v", i, err)
	}
	if _, err := obj.GraphIndex("nope"); err == nil {
		t.Error("missing graph resolved")
	}

	bad := *obj
	bad.Graphs = []GraphCode{{Name: "m", Code: words, QueueWords: 48}}
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two queue accepted")
	}
	bad = *obj
	bad.Entry = 5
	if err := bad.Validate(); err == nil {
		t.Error("bad entry accepted")
	}
	bad = *obj
	bad.DataInit = map[int]int32{100: 1}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-segment init accepted")
	}
	if err := (&Object{}).Validate(); err == nil {
		t.Error("empty object accepted")
	}

	// Branch out of range.
	br := Instr{Op: OpBne, Src1: Window(0), Src2: Imm(100), Dst1: RegDummy, Dst2: RegDummy}
	bw, err := br.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad = *obj
	bad.Graphs = []GraphCode{{Name: "m", Code: bw, QueueWords: 32}}
	if err := bad.Validate(); err == nil {
		t.Error("wild branch accepted")
	}
}
