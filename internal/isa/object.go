package isa

import "fmt"

// GraphCode is the object code of one acyclic data-flow graph: an
// indexed-queue-machine instruction sequence that executes within a single
// context. Graphs are pure code and may be executing in any number of
// contexts simultaneously (pseudo-static reentrancy).
type GraphCode struct {
	Name string
	// Code is the instruction stream; program-counter values index this
	// slice (word addressing within the graph).
	Code []uint32
	// QueueWords is the operand-queue page size the graph requires, a
	// power of two between 32 and MaxQueuePage.
	QueueWords int
	// Weight is the graph's static scheduling weight from the §4.5 cost
	// analysis: the total computation cost enabled by running a context of
	// this graph. Priority scheduling policies dispatch heavier contexts
	// first; zero (absent in hand-written or pre-weight objects) degrades
	// them to FIFO order.
	Weight int `json:",omitempty"`
}

// Object is a complete queue machine program: a collection of graph
// instruction sequences plus a static data segment (used for vectors and
// other side-effect-bearing storage, sequenced by control tokens).
type Object struct {
	Graphs []GraphCode
	// Entry is the index of the graph executed by the initial context.
	Entry int
	// DataWords is the size of the static data segment in words.
	DataWords int
	// DataInit holds initial values for data words, keyed by word index
	// within the segment.
	DataInit map[int]int32
	// SourceName records the compiled program's name for diagnostics.
	SourceName string
}

// GraphIndex returns the index of the named graph.
func (o *Object) GraphIndex(name string) (int, error) {
	for i, g := range o.Graphs {
		if g.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("isa: no graph named %q", name)
}

// Validate decodes every graph's instruction stream, checking that it
// consists of well-formed instructions, that fork and branch operands are
// in range, and that queue page sizes are legal.
func (o *Object) Validate() error {
	if len(o.Graphs) == 0 {
		return fmt.Errorf("isa: object has no graphs")
	}
	if o.Entry < 0 || o.Entry >= len(o.Graphs) {
		return fmt.Errorf("isa: entry graph %d out of range", o.Entry)
	}
	for gi, g := range o.Graphs {
		if g.QueueWords < 1 || g.QueueWords > MaxQueuePage || g.QueueWords&(g.QueueWords-1) != 0 {
			return fmt.Errorf("isa: graph %q queue page %d is not a power of two in [1,%d]", g.Name, g.QueueWords, MaxQueuePage)
		}
		for pc := 0; pc < len(g.Code); {
			in, n, err := Decode(g.Code[pc:])
			if err != nil {
				return fmt.Errorf("isa: graph %q pc %d: %w", g.Name, pc, err)
			}
			if info, _ := Lookup(in.Op); info.Branch {
				// A constant branch offset must stay inside the graph.
				if in.Src2.Mode == SrcSmallImm || in.Src2.Mode == SrcWordImm {
					target := pc + n + int(in.Src2.Imm)
					if target < 0 || target > len(g.Code) {
						return fmt.Errorf("isa: graph %q pc %d: branch target %d out of range", g.Name, pc, target)
					}
				}
			}
			pc += n
		}
		_ = gi
	}
	for addr := range o.DataInit {
		if addr < 0 || addr >= o.DataWords {
			return fmt.Errorf("isa: data initializer at %d outside segment of %d words", addr, o.DataWords)
		}
	}
	return nil
}

// Kernel entry point codes, passed as src1 of a trap instruction
// (Table 6.1). The multiprocessing kernel is modelled natively by the
// simulator; these codes are its service interface.
const (
	// KExit terminates the executing context.
	KExit = 0
	// KRFork creates a context executing the graph named by src2 with two
	// fresh channels; dst1 receives the child's in channel identifier and
	// dst2 its out channel identifier.
	KRFork = 1
	// KIFork creates a context executing the graph named by src2 with one
	// fresh channel; the child inherits the parent's out channel. dst1
	// receives the child's in channel identifier.
	KIFork = 2
	// KChanNew allocates a fresh channel; dst1 receives its identifier.
	KChanNew = 3
	// KNow returns the current time in dst1 (the "now" real-time actor).
	KNow = 4
	// KWait suspends the context until the time in src2 (the "wait"
	// actor); the result written to dst1 is a control token.
	KWait = 5
)
