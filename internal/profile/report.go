package profile

import (
	"fmt"
	"io"
	"sort"
)

// reportCauseOrder fixes the display order of the taxonomy.
var reportCauseOrder = []Cause{
	CauseExecute, CauseQueueStall, CauseSwitch, CauseFork,
	CauseSendWait, CauseRecvWait, CauseTimerWait, CauseIdle,
	CauseDispatchWait, CauseMPService, CauseMPMiss,
	CauseRingTransfer, CauseRingWait,
}

func writeCauseTable(w io.Writer, causes map[string]int64, total int64) {
	seen := map[string]bool{}
	emit := func(name string) {
		v, ok := causes[name]
		if !ok || seen[name] {
			return
		}
		seen[name] = true
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(w, "  %-15s %12d  %5.1f%%\n", name, v, pct)
	}
	for _, c := range reportCauseOrder {
		emit(c.String())
	}
	// Anything not in the canonical order (future causes), alphabetically.
	var rest []string
	for name := range causes {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		emit(name)
	}
}

// WriteSummary prints the human-readable attribution report: the PE cause
// partition, message-processor and ring totals, the busiest static graph
// nodes, and the critical path's cause shares with its longest hops.
func (p *Profile) WriteSummary(w io.Writer) {
	total := int64(p.PEs) * p.Cycles
	fmt.Fprintf(w, "cycle attribution (%d PEs × %d cycles = %d PE-cycles):\n", p.PEs, p.Cycles, total)
	writeCauseTable(w, p.Causes, total)

	if len(p.MP) > 0 {
		fmt.Fprintf(w, "message processors:\n")
		writeCauseTable(w, p.MP, total)
	}
	if len(p.Ring) > 0 {
		fmt.Fprintf(w, "ring interconnect:\n")
		writeCauseTable(w, p.Ring, total)
	}

	if len(p.Nodes) > 0 {
		fmt.Fprintf(w, "hottest graph nodes:\n")
		fmt.Fprintf(w, "  %12s %8s %8s  %s\n", "cycles", "stall", "count", "node")
		for i, n := range p.Nodes {
			if i == 10 {
				fmt.Fprintf(w, "  … %d more\n", len(p.Nodes)-i)
				break
			}
			fmt.Fprintf(w, "  %12d %8d %8d  %s %s@%d\n", n.Cycles, n.Stall, n.Count, n.Op, n.Graph, n.PC)
		}
	}

	if cp := p.CriticalPath; cp != nil && cp.Cycles > 0 {
		fmt.Fprintf(w, "critical path (%d cycles", cp.Cycles)
		if cp.Incomplete {
			fmt.Fprintf(w, ", incomplete")
		}
		fmt.Fprintf(w, "):\n")
		writeCauseTable(w, cp.Causes, cp.Cycles)
		if len(cp.Segments) > 0 {
			segs := append([]PathSegment(nil), cp.Segments...)
			sort.Slice(segs, func(i, j int) bool { return segs[i].Cycles > segs[j].Cycles })
			if len(segs) > 10 {
				segs = segs[:10]
			}
			fmt.Fprintf(w, "longest path segments:\n")
			for _, s := range segs {
				node := s.Node
				if node != "" {
					node = "  " + node
				}
				fmt.Fprintf(w, "  [%d..%d] ctx %d %s (%d cycles)%s\n", s.From, s.To, s.Context, s.Cause, s.Cycles, node)
			}
		}
	}
}
