package profile

import (
	"fmt"
	"sort"
)

// CriticalPath is the longest happens-before chain through the run: the
// dependence chain that ends at the final context exit and, walked
// backward, explains every cycle of the makespan. Segments tile
// [0, Cycles] contiguously, so Causes' values sum exactly to Cycles.
type CriticalPath struct {
	Cycles int64            `json:"cycles"`
	Causes map[string]int64 `json:"causes"`
	// Segments is the chain in time order (earliest first), with
	// consecutive same-cause segments of one context merged.
	Segments []PathSegment `json:"segments,omitempty"`
	// SegmentsTruncated reports that the chain was longer than the
	// serialized limit and only the longest-cycle entries were kept.
	SegmentsTruncated bool `json:"segments_truncated,omitempty"`
	// Incomplete reports that the walk could not explain the whole
	// makespan (the unexplained remainder is charged to idle).
	Incomplete bool `json:"incomplete,omitempty"`
}

// PathSegment is one hop of the critical path.
type PathSegment struct {
	Context int    `json:"ctx"`
	Node    string `json:"node,omitempty"`
	Cause   string `json:"cause"`
	From    int64  `json:"from"`
	To      int64  `json:"to"`
	Cycles  int64  `json:"cycles"`
}

// maxPathSegments bounds the serialized chain; rendezvous-heavy runs walk
// through tens of thousands of hops and the per-cause totals carry the
// story.
const maxPathSegments = 1024

// maxPathSteps is a runaway backstop on the backward walk. Every
// rendezvous hop moves the frontier back by at least the message
// processor's service cost, so real runs finish in O(makespan) steps.
const maxPathSteps = 8 << 20

// pathWalker walks the happens-before graph backward from the final exit.
// Its single invariant: every emission spans [lo, cur] with lo clamped
// into [0, cur], after which cur = lo — so the emitted segments tile
// [0, makespan] exactly no matter how the walk jumps between contexts.
type pathWalker struct {
	p    *Profiler
	cur  int64
	segs []PathSegment
}

func (w *pathWalker) emit(ctx int, node string, cause Cause, lo int64) {
	lo = max(0, min(lo, w.cur))
	if w.cur > lo {
		w.segs = append(w.segs, PathSegment{
			Context: ctx, Node: node, Cause: cause.String(),
			From: lo, To: w.cur, Cycles: w.cur - lo,
		})
	}
	w.cur = lo
}

// segmentAt returns the latest of the context's segments whose dispatch
// began strictly before t, or nil. The bound is strict so that after the
// walk consumes a segment (leaving t at its switchStart) the next lookup
// cannot return the same segment again.
func segmentAt(cr *ctxRec, t int64) *segment {
	segs := cr.segments
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].switchStart < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &segs[lo-1]
}

// readyAt returns the latest ready record at or before t, or nil.
func readyAt(cr *ctxRec, t int64) *ready {
	rs := cr.readies
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].at <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	return &rs[lo-1]
}

func (p *Profiler) nodeLabel(s *segment) string {
	if s.firstPC < 0 {
		return ""
	}
	if s.firstGraph == s.lastGraph {
		if s.firstPC == s.lastPC {
			return fmt.Sprintf("%s@%d", p.graphName(s.firstGraph), s.firstPC)
		}
		return fmt.Sprintf("%s@%d-%d", p.graphName(s.firstGraph), s.firstPC, s.lastPC)
	}
	return fmt.Sprintf("%s@%d-%s@%d", p.graphName(s.firstGraph), s.firstPC, p.graphName(s.lastGraph), s.lastPC)
}

// criticalPath walks backward from the context whose exit set the
// makespan, threading three kinds of happens-before edges: program order
// within a context (its execution segments and switch costs), fork
// creation edges (child ready ← parent's fork trap), and channel
// rendezvous pairings (woken party ← ring delivery ← message-processor
// service ← issuing party's blocking instruction).
func (p *Profiler) criticalPath(makespan int64) *CriticalPath {
	cp := &CriticalPath{Cycles: makespan, Causes: map[string]int64{}}
	if makespan <= 0 {
		return cp
	}
	w := &pathWalker{p: p, cur: makespan}
	ctx := p.lastExit
	t := p.lastExitAt
	if t < makespan {
		// Synthetic drives can finalize past the last exit; a real run's
		// makespan is the last exit trap's time.
		w.emit(-1, "", CauseIdle, t)
	}
	// gapCause classifies the gap between a segment's recorded end and
	// the time the walk enters it: fork/trap service inside program
	// order, ring+queueing delay after a rendezvous jump, sleep after a
	// timer wake.
	gapCause := CauseFork

	steps := 0
walk:
	for w.cur > 0 && ctx >= 0 && ctx < len(p.ctxs) {
		if steps++; steps > maxPathSteps {
			break
		}
		cr := p.ctxs[ctx]
		if cr == nil {
			break
		}
		seg := segmentAt(cr, t)
		if seg == nil {
			break
		}
		end := seg.end
		if end < 0 || end > t {
			end = t // segment open at walk entry, or entered mid-segment
		}
		if t > end {
			w.emit(ctx, "", gapCause, end)
		}
		gapCause = CauseFork
		node := p.nodeLabel(seg)
		// The segment's cycles split into fork/trap service, queue
		// stalls, and plain execution; the exact interleaving is gone,
		// but the amounts are exact.
		span := min(w.cur, end) - seg.start
		if span < 0 {
			span = 0
		}
		fork := min(seg.forkCycles, span)
		stall := min(seg.stallCycles, span-fork)
		w.emit(ctx, node, CauseFork, w.cur-fork)
		w.emit(ctx, node, CauseQueueStall, w.cur-stall)
		w.emit(ctx, node, CauseExecute, seg.start)
		w.emit(ctx, "", CauseSwitch, seg.switchStart)
		t = seg.switchStart

		r := readyAt(cr, t)
		if r == nil {
			// Before the first recorded ready: only the initial context,
			// dispatched at time zero.
			w.emit(ctx, "", CauseDispatchWait, 0)
			break
		}
		w.emit(ctx, "", CauseDispatchWait, r.at)
		t = r.at
		switch r.kind {
		case readyCreated:
			if cr.parent < 0 {
				w.emit(ctx, "", CauseDispatchWait, 0)
				break walk
			}
			// Fork edge: the child became ready the instant the parent's
			// fork trap completed; continue inside the parent.
			ctx = cr.parent
		case readyRendezvous:
			// Rendezvous edge: ring delivery back from the channel's home
			// message processor, the MP's service, then the ring hop and
			// queueing of the issuing party's request.
			w.emit(ctx, "", CauseRingTransfer, r.mpEnd)
			mpCause := CauseMPService
			if !r.mpHit {
				mpCause = CauseMPMiss
			}
			w.emit(ctx, fmt.Sprintf("ch %d", r.ch), mpCause, r.mpStart)
			t = r.mpStart
			ctx = r.issuer
			gapCause = CauseRingTransfer
		case readyTimer:
			gapCause = CauseTimerWait
		}
	}
	if w.cur > 0 {
		// Walk exhausted its records (or tripped the backstop) above
		// cycle zero: account the remainder so the tiling invariant
		// holds, and say so.
		cp.Incomplete = true
		w.emit(-1, "", CauseIdle, 0)
	}

	// The walk ran backward; flip to time order and merge adjacent hops
	// of the same context and cause.
	segs := w.segs
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	merged := segs[:0]
	for _, s := range segs {
		if n := len(merged); n > 0 {
			prev := &merged[n-1]
			if prev.Context == s.Context && prev.Cause == s.Cause && prev.To == s.From {
				prev.To = s.To
				prev.Cycles += s.Cycles
				if prev.Node == "" {
					prev.Node = s.Node
				}
				continue
			}
		}
		merged = append(merged, s)
	}
	for _, s := range merged {
		cp.Causes[s.Cause] += s.Cycles
	}
	if len(merged) > maxPathSegments {
		cp.SegmentsTruncated = true
		topPathSegments(merged, maxPathSegments)
		merged = merged[:maxPathSegments]
	}
	cp.Segments = merged
	return cp
}

// topPathSegments selects the n longest segments to the front, preserving
// time order among the survivors.
func topPathSegments(segs []PathSegment, n int) {
	type ranked struct {
		seg PathSegment
		idx int
	}
	rs := make([]ranked, len(segs))
	for i, s := range segs {
		rs[i] = ranked{s, i}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].seg.Cycles > rs[j].seg.Cycles })
	rs = rs[:n]
	sort.Slice(rs, func(i, j int) bool { return rs[i].idx < rs[j].idx })
	for i, r := range rs {
		segs[i] = r.seg
	}
}
