package profile_test

import (
	"fmt"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/experiments"
	"queuemachine/internal/profile"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// sumCauses mirrors the helper of the in-package tests (this file lives in
// the external test package so it can import internal/experiments, which
// itself imports profile).
func sumCauses(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// benchCase is one cell of the Chapter 6 benchmark grid.
type benchCase struct {
	name string
	wl   workloads.Workload
	opts compile.Options
	pes  int
}

// chapter6Grid reproduces the 40 benchmarked simulations: the four
// workload sweeps of Figures 6.8–6.12 across every machine size, the
// Figure 6.9 summation comparison, and the Table 6.6 optimization cases.
func chapter6Grid() []benchCase {
	var cases []benchCase
	for _, wl := range []workloads.Workload{
		workloads.MatMul(8), workloads.FFT(6), workloads.Cholesky(8), workloads.Congruence(8),
	} {
		for _, pes := range experiments.PECounts {
			cases = append(cases, benchCase{
				name: fmt.Sprintf("%s/pes-%d", wl.Name, pes), wl: wl, pes: pes,
			})
		}
	}
	for _, wl := range []workloads.Workload{
		workloads.BinaryRecursiveSum(32), workloads.IterativeSum(32),
	} {
		cases = append(cases, benchCase{name: wl.Name, wl: wl, pes: 4})
	}
	for _, c := range experiments.OptimizationCases() {
		cases = append(cases, benchCase{
			name: "table66/" + c.Name, wl: workloads.MatMul(6), opts: c.Opts, pes: 4,
		})
	}
	return cases
}

// checkProfileInvariants asserts the attribution identities a finished
// profile must satisfy by construction.
func checkProfileInvariants(t *testing.T, name string, res *sim.Result, prof *profile.Profile) {
	t.Helper()
	total := int64(res.NumPEs) * res.Cycles
	if got := sumCauses(prof.Causes); got != total {
		t.Errorf("%s: attribution total = %d, want %d PEs × %d cycles = %d",
			name, got, res.NumPEs, res.Cycles, total)
	}
	for pe, m := range prof.PerPE {
		if got := sumCauses(m); got != res.Cycles {
			t.Errorf("%s: PE %d attribution = %d, want makespan %d", name, pe, got, res.Cycles)
		}
	}
	cp := prof.CriticalPath
	if cp == nil {
		t.Fatalf("%s: no critical path", name)
	}
	if cp.Incomplete {
		t.Errorf("%s: critical path incomplete", name)
	}
	if got := sumCauses(cp.Causes); got != res.Cycles {
		t.Errorf("%s: critical path total = %d, want makespan %d", name, got, res.Cycles)
	}
	var pathLen int64
	for _, s := range cp.Segments {
		if s.To <= s.From || s.Cycles != s.To-s.From {
			t.Errorf("%s: malformed path segment %+v", name, s)
		}
		pathLen += s.Cycles
	}
	if !cp.SegmentsTruncated && pathLen != res.Cycles {
		t.Errorf("%s: path segments cover %d cycles, want %d", name, pathLen, res.Cycles)
	}
}

// TestAttributionChapter6 is the differential gate of the acceptance
// criteria: on every Chapter 6 benchmark, a profiled run is bit-identical
// to an unprofiled one, and the cycle attribution sums exactly to
// PEs × makespan (with the critical path tiling the makespan).
func TestAttributionChapter6(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark grid; run without -short")
	}
	compiled := map[string]*compile.Artifact{}
	for _, c := range chapter6Grid() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			key := compile.Fingerprint(c.wl.Source, c.opts)
			art := compiled[key]
			if art == nil {
				var err error
				art, err = compile.Compile(c.wl.Source, c.opts)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				compiled[key] = art
			}

			plain, err := sim.Run(art.Object, c.pes, sim.DefaultParams())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}

			sys, err := sim.New(art.Object, c.pes, sim.DefaultParams())
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			prof := profile.New(c.pes)
			sys.SetRecorder(prof)
			res, err := sys.Run()
			if err != nil {
				t.Fatalf("profiled Run: %v", err)
			}
			if err := c.wl.Check(art, res.Data); err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Cycles != plain.Cycles || res.Instructions != plain.Instructions {
				t.Errorf("profiled run diverged: cycles %d vs %d, instructions %d vs %d",
					res.Cycles, plain.Cycles, res.Instructions, plain.Instructions)
			}

			checkProfileInvariants(t, c.name, res, prof.Finalize(res.Cycles))
		})
	}
}

// TestAttributionShort keeps a fast grid cell under -short so the
// invariants never go completely untested.
func TestAttributionShort(t *testing.T) {
	wl := workloads.MatMul(3)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pes := range []int{1, 2, 4} {
		sys, err := sim.New(art.Object, pes, sim.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		prof := profile.New(pes)
		sys.SetRecorder(prof)
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		p := prof.Finalize(res.Cycles)
		checkProfileInvariants(t, fmt.Sprintf("matmul-3/pes-%d", pes), res, p)
		// A parallel run must show execute time and, above one PE,
		// rendezvous machinery.
		if p.Causes["execute"] == 0 {
			t.Errorf("pes-%d: no execute cycles", pes)
		}
		if pes > 1 && p.MP["mp-service"] == 0 {
			t.Errorf("pes-%d: no message-processor service", pes)
		}
	}
}
