// Package profile turns the trace layer's event stream into an exact
// cycle-attribution account and a dynamic critical path. The Profiler is a
// trace.Recorder: installed on a simulation it buckets every cycle of every
// processing element into a fixed cause taxonomy — execute, operand-queue
// (presence-bit) stall, context-switch overhead, fork/trap service, channel
// rendezvous waits, timer waits, and idle — so that per-PE totals sum
// exactly to the machine's makespan by construction. Message processors and
// the ring interconnect are accounted on their own lanes. The same event
// stream feeds a happens-before graph (instruction order within a context,
// fork creation edges, channel rendezvous pairings) from which Finalize
// extracts the run's critical path as an ordered chain of (context, graph
// node, cycles, cause) segments.
//
// The profiler follows the trace package's contract: it observes and never
// alters timing, so an instrumented run's cycle counts are bit-identical to
// an uninstrumented one, and a simulation built without a profiler pays
// nothing.
package profile

import (
	"fmt"
	"sort"

	"queuemachine/internal/trace"
)

// Cause is one bucket of the cycle taxonomy.
type Cause uint8

const (
	// CauseExecute: a processing element retired instruction cycles.
	CauseExecute Cause = iota
	// CauseQueueStall: operand-queue window misses — the presence-bit
	// stall of §5.2, split out of the instruction's execute cost.
	CauseQueueStall
	// CauseSwitch: context-switch and resume overhead (roll-out, ready
	// scan, window reload).
	CauseSwitch
	// CauseFork: kernel service gaps while a context occupies its
	// processing element — fork/trap handling between instructions.
	CauseFork
	// CauseSendWait: the element idled with a resident context parked in a
	// send rendezvous.
	CauseSendWait
	// CauseRecvWait: the element idled with a resident context parked in a
	// recv rendezvous.
	CauseRecvWait
	// CauseTimerWait: the element idled with a resident context sleeping
	// on the real-time clock.
	CauseTimerWait
	// CauseIdle: the element idled with no resident blocked context — no
	// work to run.
	CauseIdle

	numPECauses

	// CauseDispatchWait appears only on the critical path: a ready
	// context waited for its processing element to dispatch it.
	CauseDispatchWait
	// CauseMPService: message-processor channel-operation service.
	CauseMPService
	// CauseMPMiss: message-processor channel-cache miss service.
	CauseMPMiss
	// CauseRingTransfer: a message crossing the ring interconnect.
	CauseRingTransfer
	// CauseRingWait: ring cycles queued behind other traffic.
	CauseRingWait

	numCauses
)

var causeNames = [numCauses]string{
	CauseExecute:      "execute",
	CauseQueueStall:   "queue-stall",
	CauseSwitch:       "context-switch",
	CauseFork:         "fork-service",
	CauseSendWait:     "send-wait",
	CauseRecvWait:     "recv-wait",
	CauseTimerWait:    "timer-wait",
	CauseIdle:         "idle",
	numPECauses:       "",
	CauseDispatchWait: "dispatch-wait",
	CauseMPService:    "mp-service",
	CauseMPMiss:       "mcache-miss",
	CauseRingTransfer: "ring-transfer",
	CauseRingWait:     "ring-wait",
}

func (c Cause) String() string {
	if int(c) < len(causeNames) && causeNames[c] != "" {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", c)
}

// PECauses lists the causes that partition processing-element time; their
// per-PE totals sum exactly to the makespan.
func PECauses() []Cause {
	return []Cause{CauseExecute, CauseQueueStall, CauseSwitch, CauseFork,
		CauseSendWait, CauseRecvWait, CauseTimerWait, CauseIdle}
}

// lane is one processing element's attribution account. Every hook that
// touches the lane advances cursor by exactly the number of cycles it
// charges, so sum(causes) == cursor at all times — the invariant the
// differential tests pin down.
type lane struct {
	cursor   int64
	occupied bool
	curCtx   int
	// Resident contexts currently parked by kind, for classifying idle
	// gaps.
	blockedSend, blockedRecv, blockedWait int
	causes                                [numPECauses]int64
}

type readyKind uint8

const (
	readyCreated readyKind = iota
	readyRendezvous
	readyTimer
)

// ready records why and when a context joined its ready queue — the
// happens-before edge the critical-path walk follows backward.
type ready struct {
	at             int64
	kind           readyKind
	ch             int32
	mpStart, mpEnd int64
	mpHit          bool
	issuer         int // context whose request completed the rendezvous
}

// segment is one occupancy of a processing element by a context.
type segment struct {
	switchStart, start, end int64
	forkCycles, stallCycles int64
	firstGraph, firstPC     int
	lastGraph, lastPC       int
	nInstr                  int64
	resumed                 bool
	reason                  trace.EndReason
}

// ctxRec is the per-context account and happens-before record.
type ctxRec struct {
	id, parent  int
	createdAt   int64
	justCreated bool
	blockedKind trace.EndReason
	blocked     bool
	blockedAt   int64
	causes      [numPECauses]int64
	// sendWait/recvWait/timerWait total the context's own blocked
	// durations (these overlap across contexts; they do not partition
	// machine time the way lane causes do).
	sendWait, recvWait, timerWait int64
	segments                      []segment
	readies                       []ready
}

type nodeKey struct {
	graph, pc int
}

type nodeAgg struct {
	op            string
	count         int64
	cycles, stall int64
}

type resumeInfo struct {
	ch             int32
	mpStart, mpEnd int64
	hit            bool
	issuer         int
}

// Profiler implements trace.Recorder, accumulating the cycle-attribution
// account and the happens-before records a critical-path walk needs. It is
// single-run state: build one per simulation and call Finalize once the run
// completes.
type Profiler struct {
	numPEs     int
	graphNames []string
	lanes      []lane
	mpService  []int64 // per message processor
	mpMiss     []int64
	ringXfer   int64
	ringWait   int64
	nodes      map[nodeKey]*nodeAgg
	ctxs       []*ctxRec
	pendResume map[int]resumeInfo
	lastExit   int
	lastExitAt int64
}

var _ trace.Recorder = (*Profiler)(nil)

// New builds a profiler for a machine with numPEs processing elements.
func New(numPEs int) *Profiler {
	p := &Profiler{
		numPEs:     numPEs,
		lanes:      make([]lane, numPEs),
		mpService:  make([]int64, numPEs),
		mpMiss:     make([]int64, numPEs),
		nodes:      make(map[nodeKey]*nodeAgg),
		pendResume: make(map[int]resumeInfo),
		lastExit:   -1,
	}
	for i := range p.lanes {
		p.lanes[i].curCtx = -1
	}
	return p
}

// SetGraphNames installs the program's graph names for node labels; without
// them nodes are labelled g0, g1, ….
func (p *Profiler) SetGraphNames(names []string) { p.graphNames = names }

func (p *Profiler) graphName(gi int) string {
	if gi >= 0 && gi < len(p.graphNames) {
		return p.graphNames[gi]
	}
	return fmt.Sprintf("g%d", gi)
}

func (p *Profiler) ctx(id int) *ctxRec {
	for id >= len(p.ctxs) {
		p.ctxs = append(p.ctxs, nil)
	}
	if p.ctxs[id] == nil {
		p.ctxs[id] = &ctxRec{id: id, parent: -1}
	}
	return p.ctxs[id]
}

// advanceTo classifies the gap between the lane's cursor and t. While a
// context occupies the element the gap is kernel fork/trap service; while
// idle it is classified by what the element is waiting for, in the priority
// recv > send > timer > nothing.
func (p *Profiler) advanceTo(l *lane, t int64) {
	d := t - l.cursor
	if d <= 0 {
		return
	}
	var cause Cause
	switch {
	case l.occupied:
		cause = CauseFork
		if l.curCtx >= 0 {
			cr := p.ctx(l.curCtx)
			cr.causes[CauseFork] += d
			if n := len(cr.segments); n > 0 {
				cr.segments[n-1].forkCycles += d
			}
		}
	case l.blockedRecv > 0:
		cause = CauseRecvWait
	case l.blockedSend > 0:
		cause = CauseSendWait
	case l.blockedWait > 0:
		cause = CauseTimerWait
	default:
		cause = CauseIdle
	}
	l.causes[cause] += d
	l.cursor = t
}

func (p *Profiler) SampleEvery() int64 { return 0 }

func (p *Profiler) BeginRun(pe, ctx int, at, switchCycles int64, resumed bool) {
	l := &p.lanes[pe]
	start := at - switchCycles
	p.advanceTo(l, start)
	if d := at - max(l.cursor, start); d > 0 {
		l.causes[CauseSwitch] += d
		p.ctx(ctx).causes[CauseSwitch] += d
		l.cursor = max(l.cursor, at)
	}
	l.occupied = true
	l.curCtx = ctx
	cr := p.ctx(ctx)
	cr.segments = append(cr.segments, segment{
		switchStart: start, start: at, end: -1,
		firstGraph: -1, firstPC: -1, lastGraph: -1, lastPC: -1,
		resumed: resumed,
	})
}

func (p *Profiler) EndRun(pe, ctx int, at int64, reason trace.EndReason) {
	l := &p.lanes[pe]
	p.advanceTo(l, at)
	l.occupied = false
	l.curCtx = -1
	cr := p.ctx(ctx)
	if n := len(cr.segments); n > 0 {
		cr.segments[n-1].end = at
		cr.segments[n-1].reason = reason
	}
	switch reason {
	case trace.EndBlockedSend:
		l.blockedSend++
	case trace.EndBlockedRecv:
		l.blockedRecv++
	case trace.EndBlockedWait:
		l.blockedWait++
	default:
		return
	}
	cr.blocked = true
	cr.blockedKind = reason
	cr.blockedAt = at
}

func (p *Profiler) Instr(pe, ctx, graph, pc int, op string, at int64, cycles, stall int) {
	l := &p.lanes[pe]
	p.advanceTo(l, at)
	end := at + int64(cycles)
	d := end - max(l.cursor, at)
	if d < 0 {
		d = 0
	}
	st := min(int64(stall), d)
	l.causes[CauseQueueStall] += st
	l.causes[CauseExecute] += d - st
	l.cursor = max(l.cursor, end)

	cr := p.ctx(ctx)
	cr.causes[CauseQueueStall] += st
	cr.causes[CauseExecute] += d - st
	if n := len(cr.segments); n > 0 {
		s := &cr.segments[n-1]
		if s.firstPC < 0 {
			s.firstGraph, s.firstPC = graph, pc
		}
		s.lastGraph, s.lastPC = graph, pc
		s.stallCycles += st
		s.nInstr++
	}

	key := nodeKey{graph, pc}
	n := p.nodes[key]
	if n == nil {
		n = &nodeAgg{op: op}
		p.nodes[key] = n
	}
	n.count++
	n.cycles += d - st
	n.stall += st
}

func (p *Profiler) ContextCreated(ctx, parent, pe int, at int64) {
	cr := p.ctx(ctx)
	cr.parent = parent
	cr.createdAt = at
	cr.justCreated = true
}

func (p *Profiler) ContextReady(ctx, pe, depth int, at int64) {
	l := &p.lanes[pe]
	if !l.occupied {
		// Classify the idle gap up to this instant under the old blocked
		// counts before the wake-up changes them.
		p.advanceTo(l, at)
	}
	cr := p.ctx(ctx)
	switch {
	case cr.justCreated:
		cr.justCreated = false
		cr.readies = append(cr.readies, ready{at: at, kind: readyCreated})
	default:
		if pr, ok := p.pendResume[ctx]; ok {
			delete(p.pendResume, ctx)
			cr.readies = append(cr.readies, ready{
				at: at, kind: readyRendezvous,
				ch: pr.ch, mpStart: pr.mpStart, mpEnd: pr.mpEnd,
				mpHit: pr.hit, issuer: pr.issuer,
			})
		} else {
			cr.readies = append(cr.readies, ready{at: at, kind: readyTimer})
		}
	}
	if cr.blocked {
		cr.blocked = false
		wait := at - cr.blockedAt
		switch cr.blockedKind {
		case trace.EndBlockedSend:
			l.blockedSend--
			cr.sendWait += wait
		case trace.EndBlockedRecv:
			l.blockedRecv--
			cr.recvWait += wait
		case trace.EndBlockedWait:
			l.blockedWait--
			cr.timerWait += wait
		}
	}
}

func (p *Profiler) ContextExited(ctx, pe int, at int64) {
	if at >= p.lastExitAt {
		p.lastExitAt = at
		p.lastExit = ctx
	}
}

func (p *Profiler) MsgOp(pe int, ch int32, op trace.ChanOp, start, end int64, hit, completed bool, sendCtx, recvCtx int) {
	if hit {
		p.mpService[pe] += end - start
	} else {
		p.mpMiss[pe] += end - start
	}
	if !completed {
		return
	}
	// The completing operation is the issuer's own request being served;
	// its partner has been parked in the cache since earlier.
	issuer := sendCtx
	if op == trace.ChanRecv {
		issuer = recvCtx
	}
	info := resumeInfo{ch: ch, mpStart: start, mpEnd: end, hit: hit, issuer: issuer}
	p.pendResume[sendCtx] = info
	p.pendResume[recvCtx] = info
}

func (p *Profiler) RingTransfer(from, to int, start, end, wait int64) {
	p.ringWait += wait
	p.ringXfer += end - start - wait
}

func (p *Profiler) Sample(at int64, s trace.MachineSample) {}

// Finalize closes every lane at the makespan and builds the Profile. The
// per-PE cause totals each sum exactly to makespan — every hook charged
// precisely the cycles it advanced its lane's cursor by, and the trailing
// gap is filled here — so the machine-wide PE attribution sums to
// numPEs × makespan.
func (p *Profiler) Finalize(makespan int64) *Profile {
	prof := &Profile{
		Cycles: makespan,
		PEs:    p.numPEs,
		Causes: map[string]int64{},
		MP:     map[string]int64{},
		Ring:   map[string]int64{},
		perPE:  make([][numPECauses]int64, p.numPEs),
	}
	for i := range p.lanes {
		l := &p.lanes[i]
		p.advanceTo(l, makespan)
		prof.perPE[i] = l.causes
		m := map[string]int64{}
		for c := Cause(0); c < numPECauses; c++ {
			if l.causes[c] != 0 {
				prof.Causes[c.String()] += l.causes[c]
				m[c.String()] = l.causes[c]
			}
		}
		prof.PerPE = append(prof.PerPE, m)
	}
	var mpSvc, mpMiss int64
	for i := 0; i < p.numPEs; i++ {
		mpSvc += p.mpService[i]
		mpMiss += p.mpMiss[i]
	}
	if mpSvc != 0 {
		prof.MP[CauseMPService.String()] = mpSvc
	}
	if mpMiss != 0 {
		prof.MP[CauseMPMiss.String()] = mpMiss
	}
	if p.ringXfer != 0 {
		prof.Ring[CauseRingTransfer.String()] = p.ringXfer
	}
	if p.ringWait != 0 {
		prof.Ring[CauseRingWait.String()] = p.ringWait
	}
	prof.mpService, prof.mpMiss = p.mpService, p.mpMiss

	for key, n := range p.nodes {
		prof.Nodes = append(prof.Nodes, NodeProfile{
			Graph:  p.graphName(key.graph),
			PC:     key.pc,
			Op:     n.op,
			Count:  n.count,
			Cycles: n.cycles,
			Stall:  n.stall,
		})
	}
	sortNodes(prof.Nodes)

	prof.ContextCount = 0
	for _, cr := range p.ctxs {
		if cr != nil {
			prof.ContextCount++
		}
	}
	prof.Contexts = p.topContexts(maxReportedContexts)
	prof.CriticalPath = p.criticalPath(makespan)
	return prof
}

// maxReportedContexts bounds the per-context table in the serialized
// profile; runs fork thousands of contexts and the long tail says nothing.
const maxReportedContexts = 32

func (p *Profiler) topContexts(limit int) []ContextProfile {
	var out []ContextProfile
	for _, cr := range p.ctxs {
		if cr == nil {
			continue
		}
		cp := ContextProfile{ID: cr.id, Parent: cr.parent, Causes: map[string]int64{}}
		for c := Cause(0); c < numPECauses; c++ {
			if cr.causes[c] != 0 {
				cp.Causes[c.String()] = cr.causes[c]
				cp.busy += cr.causes[c]
			}
		}
		if cr.sendWait != 0 {
			cp.Causes[CauseSendWait.String()] = cr.sendWait
		}
		if cr.recvWait != 0 {
			cp.Causes[CauseRecvWait.String()] = cr.recvWait
		}
		if cr.timerWait != 0 {
			cp.Causes[CauseTimerWait.String()] = cr.timerWait
		}
		out = append(out, cp)
	}
	sortContexts(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Profile is the finished attribution account — the serialized form shared
// by qsim -json, the qmd /run response, and qbench artifacts.
type Profile struct {
	Cycles int64 `json:"cycles"`
	PEs    int   `json:"pes"`
	// Causes partitions processing-element time: its values sum exactly
	// to PEs × Cycles.
	Causes map[string]int64 `json:"causes"`
	// PerPE is the same partition per processing element; each map's
	// values sum exactly to Cycles.
	PerPE []map[string]int64 `json:"per_pe,omitempty"`
	// MP and Ring total the message processors' and interconnect's own
	// lanes (busy time only; they are not part of the PE partition).
	MP   map[string]int64 `json:"mp,omitempty"`
	Ring map[string]int64 `json:"ring,omitempty"`
	// ContextCount is the number of contexts the run created; Contexts
	// details the busiest of them. Context wait entries are blocked
	// durations and may overlap across contexts.
	ContextCount int              `json:"context_count"`
	Contexts     []ContextProfile `json:"contexts,omitempty"`
	// Nodes is the per-static-instruction account, busiest first.
	Nodes []NodeProfile `json:"nodes,omitempty"`
	// CriticalPath is the longest happens-before chain through the run.
	CriticalPath *CriticalPath `json:"critical_path,omitempty"`

	// Full-resolution per-lane data for the pprof writer.
	perPE             [][numPECauses]int64
	mpService, mpMiss []int64
}

// ContextProfile is one context's account.
type ContextProfile struct {
	ID     int              `json:"id"`
	Parent int              `json:"parent"`
	Causes map[string]int64 `json:"causes"`
	busy   int64
}

// NodeProfile is one static graph node's account.
type NodeProfile struct {
	Graph  string `json:"graph"`
	PC     int    `json:"pc"`
	Op     string `json:"op"`
	Count  int64  `json:"count"`
	Cycles int64  `json:"cycles"`
	Stall  int64  `json:"stall,omitempty"`
}

func sortNodes(ns []NodeProfile) {
	sort.Slice(ns, func(i, j int) bool {
		if a, b := ns[i].Cycles+ns[i].Stall, ns[j].Cycles+ns[j].Stall; a != b {
			return a > b
		}
		if ns[i].Graph != ns[j].Graph {
			return ns[i].Graph < ns[j].Graph
		}
		return ns[i].PC < ns[j].PC
	})
}

func sortContexts(cs []ContextProfile) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].busy != cs[j].busy {
			return cs[i].busy > cs[j].busy
		}
		return cs[i].ID < cs[j].ID
	})
}
