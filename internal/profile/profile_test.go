package profile

import (
	"strings"
	"testing"

	"queuemachine/internal/trace"
)

// sumCauses totals a cause map.
func sumCauses(m map[string]int64) int64 {
	var s int64
	for _, v := range m {
		s += v
	}
	return s
}

// TestSingleLaneAttribution drives one processing element through every
// PE-lane cause by hand and checks the exact bucket totals.
func TestSingleLaneAttribution(t *testing.T) {
	p := New(1)
	p.ContextCreated(0, -1, 0, 0)
	p.ContextReady(0, 0, 1, 0)
	p.BeginRun(0, 0, 10, 10, false)        // switch [0,10)
	p.Instr(0, 0, 0, 0, "fetch", 10, 5, 2) // [10,15): 3 execute + 2 stall
	// In-occupancy gap [15,20) = kernel fork/trap service.
	p.EndRun(0, 0, 20, trace.EndBlockedWait)
	// Idle with a sleeping context [20,30) = timer wait.
	p.ContextReady(0, 0, 1, 30)
	p.BeginRun(0, 0, 32, 2, true)        // resume [30,32)
	p.Instr(0, 0, 0, 1, "add", 32, 1, 0) // [32,33)
	p.EndRun(0, 0, 33, trace.EndExited)
	p.ContextExited(0, 0, 33)
	prof := p.Finalize(40) // trailing idle [33,40)

	want := map[string]int64{
		"execute":        4,
		"queue-stall":    2,
		"context-switch": 12,
		"fork-service":   5,
		"timer-wait":     10,
		"idle":           7,
	}
	for cause, v := range want {
		if prof.Causes[cause] != v {
			t.Errorf("%s = %d, want %d", cause, prof.Causes[cause], v)
		}
	}
	if got := sumCauses(prof.Causes); got != 40 {
		t.Errorf("cause total = %d, want makespan 40", got)
	}
	if prof.ContextCount != 1 {
		t.Errorf("ContextCount = %d", prof.ContextCount)
	}

	cp := prof.CriticalPath
	if cp == nil {
		t.Fatal("no critical path")
	}
	if cp.Incomplete {
		t.Errorf("critical path incomplete: %+v", cp.Segments)
	}
	if got := sumCauses(cp.Causes); got != 40 {
		t.Errorf("path cause total = %d, want 40: %+v", got, cp.Segments)
	}
	// The single context slept [20,30): the path must carry timer wait;
	// the trailing [33,40) is idle.
	if cp.Causes["timer-wait"] != 10 || cp.Causes["idle"] != 7 {
		t.Errorf("path causes = %v, want timer-wait 10, idle 7", cp.Causes)
	}
}

// TestRendezvousAttribution exercises the rendezvous happens-before edge:
// two contexts on two processing elements, a send parked first, the recv
// completing the pairing.
func TestRendezvousAttribution(t *testing.T) {
	p := New(2)
	p.ContextCreated(0, -1, 0, 0)
	p.ContextReady(0, 0, 1, 0)
	p.ContextCreated(1, 0, 1, 0)
	p.ContextReady(1, 1, 1, 0)

	// ctx 0 on PE 0: runs [5,10), sends on ch 3, parks.
	p.BeginRun(0, 0, 5, 5, false)
	p.Instr(0, 0, 0, 0, "send", 5, 5, 0)
	p.EndRun(0, 0, 10, trace.EndBlockedSend)
	// The send request reaches channel 3's home MP and parks (no partner).
	p.MsgOp(1, 3, trace.ChanSend, 10, 13, true, false, -1, -1)

	// ctx 1 on PE 1: runs [5,20), recvs on ch 3 — completing the pairing.
	p.BeginRun(1, 1, 5, 5, false)
	p.Instr(1, 1, 1, 0, "recv", 5, 15, 0)
	p.EndRun(1, 1, 20, trace.EndBlockedRecv)
	p.MsgOp(1, 3, trace.ChanRecv, 20, 23, true, true, 0, 1)

	// Both wake: the receiver locally at 23, the sender across the ring.
	p.RingTransfer(1, 0, 23, 27, 1)
	p.ContextReady(1, 1, 1, 23)
	p.ContextReady(0, 0, 1, 27)

	// The receiver finishes the run.
	p.BeginRun(1, 1, 25, 2, true)
	p.Instr(1, 1, 1, 1, "exit", 25, 5, 0)
	p.EndRun(1, 1, 30, trace.EndExited)
	p.ContextExited(1, 1, 30)
	p.BeginRun(0, 0, 29, 2, true)
	p.Instr(0, 0, 0, 1, "exit", 29, 1, 0)
	p.EndRun(0, 0, 30, trace.EndExited)
	p.ContextExited(0, 0, 30)

	prof := p.Finalize(30)
	if got := sumCauses(prof.Causes); got != 60 {
		t.Fatalf("cause total = %d, want 2 PEs × 30 = 60", got)
	}
	// PE 0 idled [10,27) with its context parked in a send.
	if prof.PerPE[0]["send-wait"] == 0 {
		t.Errorf("PE 0 shows no send-wait: %v", prof.PerPE[0])
	}
	if prof.MP["mp-service"] != 6 {
		t.Errorf("mp-service = %d, want 6", prof.MP["mp-service"])
	}
	if prof.Ring["ring-transfer"] != 3 || prof.Ring["ring-wait"] != 1 {
		t.Errorf("ring = %v", prof.Ring)
	}

	cp := prof.CriticalPath
	if cp == nil || cp.Incomplete {
		t.Fatalf("critical path = %+v", cp)
	}
	if got := sumCauses(cp.Causes); got != 30 {
		t.Errorf("path cause total = %d, want 30: %+v", got, cp.Segments)
	}
	// The final exit was ctx 1 (its wake came through the MP service):
	// the path must include message-processor service time.
	if cp.Causes["mp-service"] == 0 {
		t.Errorf("path has no mp-service: %+v", cp.Causes)
	}
}

// TestCauseStrings pins the taxonomy names the serialized profiles and
// /metrics labels expose.
func TestCauseStrings(t *testing.T) {
	want := map[Cause]string{
		CauseExecute:      "execute",
		CauseQueueStall:   "queue-stall",
		CauseSwitch:       "context-switch",
		CauseFork:         "fork-service",
		CauseSendWait:     "send-wait",
		CauseRecvWait:     "recv-wait",
		CauseTimerWait:    "timer-wait",
		CauseIdle:         "idle",
		CauseDispatchWait: "dispatch-wait",
		CauseMPService:    "mp-service",
		CauseMPMiss:       "mcache-miss",
		CauseRingTransfer: "ring-transfer",
		CauseRingWait:     "ring-wait",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if len(PECauses()) != int(numPECauses) {
		t.Errorf("PECauses lists %d causes, taxonomy has %d", len(PECauses()), numPECauses)
	}
}

// TestSummaryReport smoke-tests the text report.
func TestSummaryReport(t *testing.T) {
	p := New(1)
	p.ContextCreated(0, -1, 0, 0)
	p.ContextReady(0, 0, 1, 0)
	p.BeginRun(0, 0, 2, 2, false)
	p.Instr(0, 0, 0, 0, "add", 2, 3, 1)
	p.EndRun(0, 0, 5, trace.EndExited)
	p.ContextExited(0, 0, 5)
	prof := p.Finalize(5)

	var b strings.Builder
	prof.WriteSummary(&b)
	out := b.String()
	for _, want := range []string{"cycle attribution", "execute", "critical path", "hottest graph nodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
