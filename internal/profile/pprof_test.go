package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/sim"
	"queuemachine/internal/workloads"
)

// decodedProfile is the subset of perftools.profiles.Profile the test
// decodes back out of the serialized bytes.
type decodedProfile struct {
	strings   []string
	samples   []decodedSample
	locations map[uint64]uint64 // location id → function id
	functions map[uint64]int64  // function id → name string index
	duration  int64
}

type decodedSample struct {
	locs  []uint64
	value int64
}

func readVarint(b []byte) (uint64, []byte, bool) {
	var v uint64
	for i := 0; i < len(b); i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, b[i+1:], true
		}
	}
	return 0, nil, false
}

// fields iterates a protobuf message, calling fn with each field number
// and its payload (varint value, or bytes for length-delimited fields).
func fields(t *testing.T, b []byte, fn func(field int, v uint64, payload []byte)) {
	t.Helper()
	for len(b) > 0 {
		key, rest, ok := readVarint(b)
		if !ok {
			t.Fatal("truncated field key")
		}
		b = rest
		field, wire := int(key>>3), key&7
		switch wire {
		case 0:
			v, rest, ok := readVarint(b)
			if !ok {
				t.Fatal("truncated varint")
			}
			b = rest
			fn(field, v, nil)
		case 2:
			n, rest, ok := readVarint(b)
			if !ok || uint64(len(rest)) < n {
				t.Fatal("truncated length-delimited field")
			}
			fn(field, 0, rest[:n])
			b = rest[n:]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
}

func decodePprof(t *testing.T, raw []byte) *decodedProfile {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("profile is not gzipped: %v", err)
	}
	msg, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	d := &decodedProfile{locations: map[uint64]uint64{}, functions: map[uint64]int64{}}
	fields(t, msg, func(field int, v uint64, payload []byte) {
		switch field {
		case fProfileStringTable:
			d.strings = append(d.strings, string(payload))
		case fProfileSample:
			var s decodedSample
			fields(t, payload, func(f int, v uint64, _ []byte) {
				switch f {
				case fSampleLocationID:
					s.locs = append(s.locs, v)
				case fSampleValue:
					s.value = int64(v)
				}
			})
			d.samples = append(d.samples, s)
		case fProfileLocation:
			var id, fnID uint64
			fields(t, payload, func(f int, v uint64, line []byte) {
				switch f {
				case fLocationID:
					id = v
				case fLocationLine:
					fields(t, line, func(f int, v uint64, _ []byte) {
						if f == fLineFunctionID {
							fnID = v
						}
					})
				}
			})
			d.locations[id] = fnID
		case fProfileFunction:
			var id uint64
			var name int64
			fields(t, payload, func(f int, v uint64, _ []byte) {
				switch f {
				case fFunctionID:
					id = v
				case fFunctionName:
					name = int64(v)
				}
			})
			d.functions[id] = name
		case fProfileDurationNanos:
			d.duration = int64(v)
		}
	})
	return d
}

// frameNames resolves a sample's location ids to their function names.
func (d *decodedProfile) frameNames(t *testing.T, s decodedSample) []string {
	t.Helper()
	var names []string
	for _, loc := range s.locs {
		fnID, ok := d.locations[loc]
		if !ok {
			t.Fatalf("sample references unknown location %d", loc)
		}
		idx, ok := d.functions[fnID]
		if !ok {
			t.Fatalf("location %d references unknown function %d", loc, fnID)
		}
		if idx < 0 || idx >= int64(len(d.strings)) {
			t.Fatalf("function %d name index %d out of string table (%d)", fnID, idx, len(d.strings))
		}
		names = append(names, d.strings[idx])
	}
	return names
}

// TestPprofRoundTrip serializes a real run's profile and decodes it with
// an independent protobuf reader: the string table must resolve, every
// sample's stack must resolve to named frames, and the sample values must
// total the PE attribution plus the MP and ring lanes' busy time.
func TestPprofRoundTrip(t *testing.T) {
	wl := workloads.MatMul(3)
	art, err := compile.Compile(wl.Source, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const pes = 4
	sys, err := sim.New(art.Object, pes, sim.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	p := New(pes)
	sys.SetRecorder(p)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	prof := p.Finalize(res.Cycles)

	var buf bytes.Buffer
	if err := prof.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	d := decodePprof(t, buf.Bytes())

	if len(d.strings) == 0 || d.strings[0] != "" {
		t.Fatalf("string table must start with the empty string, got %q", d.strings[:min(3, len(d.strings))])
	}
	if d.duration != res.Cycles {
		t.Errorf("duration = %d, want makespan %d", d.duration, res.Cycles)
	}

	var total int64
	rootCauses := map[string]int64{}
	for _, s := range d.samples {
		names := d.frameNames(t, s)
		if len(names) == 0 {
			t.Fatal("sample with empty stack")
		}
		total += s.value
		rootCauses[names[len(names)-1]] += s.value
	}
	want := sumCauses(prof.Causes) + sumCauses(prof.MP) + sumCauses(prof.Ring)
	if total != want {
		t.Errorf("sample values total %d, want %d (PE %d + MP %d + ring %d)",
			total, want, sumCauses(prof.Causes), sumCauses(prof.MP), sumCauses(prof.Ring))
	}
	// Stacks root at the cause taxonomy: the root-frame totals must match
	// the profile's cause map exactly.
	for cause, v := range prof.Causes {
		if rootCauses[cause] != v {
			t.Errorf("root frames for %q total %d, want %d", cause, rootCauses[cause], v)
		}
	}
	if rootCauses["execute"] == 0 {
		t.Error("no execute samples")
	}
}
