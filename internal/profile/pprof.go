package profile

import (
	"compress/gzip"
	"fmt"
	"io"
)

// WritePprof serializes the attribution as a gzipped pprof profile
// (proto3 perftools.profiles.Profile), loadable with `go tool pprof` and
// flamegraph UIs. One sample type, cycles/cycles. Stacks grow leaf-first:
// instruction samples are node → graph → cause, so flamegraphs root at the
// cause taxonomy; non-instruction lanes sample as pe/mp/ring → cause. The
// sample values total exactly PEs × makespan for the processing-element
// causes plus the message-processor and ring lanes' own busy time.
//
// The encoder is hand-rolled — the profile message needs only varints and
// length-delimited fields, not a protobuf dependency.
func (p *Profile) WritePprof(w io.Writer) error {
	b := newPprofBuilder()

	// Instruction samples, split execute vs queue-stall per static node.
	for _, n := range p.Nodes {
		leaf := fmt.Sprintf("%s %s@%d", n.Op, n.Graph, n.PC)
		if n.Cycles > 0 {
			b.sample(n.Cycles, leaf, n.Graph, CauseExecute.String())
		}
		if n.Stall > 0 {
			b.sample(n.Stall, leaf, n.Graph, CauseQueueStall.String())
		}
	}
	// Per-PE non-instruction causes (execute and stall are already
	// accounted by the node samples).
	for pe, causes := range p.perPE {
		for c := CauseSwitch; c < numPECauses; c++ {
			if v := causes[c]; v > 0 {
				b.sample(v, fmt.Sprintf("pe %d", pe), c.String())
			}
		}
	}
	// Message-processor and ring lanes.
	for pe := range p.mpService {
		if v := p.mpService[pe]; v > 0 {
			b.sample(v, fmt.Sprintf("mp %d", pe), CauseMPService.String())
		}
		if v := p.mpMiss[pe]; v > 0 {
			b.sample(v, fmt.Sprintf("mp %d", pe), CauseMPMiss.String())
		}
	}
	if v := p.Ring[CauseRingTransfer.String()]; v > 0 {
		b.sample(v, "ring", CauseRingTransfer.String())
	}
	if v := p.Ring[CauseRingWait.String()]; v > 0 {
		b.sample(v, "ring", CauseRingWait.String())
	}

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(b.finish(p.Cycles)); err != nil {
		return err
	}
	return zw.Close()
}

// Field numbers of perftools.profiles.Profile and its submessages.
const (
	fProfileSampleType    = 1
	fProfileSample        = 2
	fProfileLocation      = 4
	fProfileFunction      = 5
	fProfileStringTable   = 6
	fProfileDurationNanos = 10
	fProfilePeriodType    = 11
	fProfilePeriod        = 12

	fValueTypeType = 1
	fValueTypeUnit = 2

	fSampleLocationID = 1
	fSampleValue      = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

type pprofBuilder struct {
	strs    map[string]int64
	strtab  []string
	funcs   map[string]uint64 // frame name → function id (== location id)
	funcBuf []byte
	locBuf  []byte
	samples []byte
}

func newPprofBuilder() *pprofBuilder {
	b := &pprofBuilder{strs: map[string]int64{"": 0}, strtab: []string{""}, funcs: map[string]uint64{}}
	return b
}

func (b *pprofBuilder) str(s string) int64 {
	if id, ok := b.strs[s]; ok {
		return id
	}
	id := int64(len(b.strtab))
	b.strs[s] = id
	b.strtab = append(b.strtab, s)
	return id
}

// loc interns a frame name as a function + location pair sharing one id.
func (b *pprofBuilder) loc(name string) uint64 {
	if id, ok := b.funcs[name]; ok {
		return id
	}
	id := uint64(len(b.funcs) + 1)
	b.funcs[name] = id

	var fn []byte
	fn = appendVarintField(fn, fFunctionID, id)
	fn = appendVarintField(fn, fFunctionName, uint64(b.str(name)))
	b.funcBuf = appendBytesField(b.funcBuf, fProfileFunction, fn)

	var line []byte
	line = appendVarintField(line, fLineFunctionID, id)
	var lc []byte
	lc = appendVarintField(lc, fLocationID, id)
	lc = appendBytesField(lc, fLocationLine, line)
	b.locBuf = appendBytesField(b.locBuf, fProfileLocation, lc)
	return id
}

// sample adds one stack, leaf first.
func (b *pprofBuilder) sample(value int64, frames ...string) {
	var s []byte
	for _, f := range frames {
		s = appendVarintField(s, fSampleLocationID, b.loc(f))
	}
	s = appendVarintField(s, fSampleValue, uint64(value))
	b.samples = appendBytesField(b.samples, fProfileSample, s)
}

func (b *pprofBuilder) finish(cycles int64) []byte {
	cyclesStr := uint64(b.str("cycles"))
	var vt []byte
	vt = appendVarintField(vt, fValueTypeType, cyclesStr)
	vt = appendVarintField(vt, fValueTypeUnit, cyclesStr)

	var out []byte
	out = appendBytesField(out, fProfileSampleType, vt)
	out = append(out, b.samples...)
	out = append(out, b.locBuf...)
	out = append(out, b.funcBuf...)
	for _, s := range b.strtab {
		out = appendBytesField(out, fProfileStringTable, []byte(s))
	}
	// One simulated cycle per "nanosecond" of duration: pprof insists on
	// a time base, and cycles are the only clock the machine has.
	out = appendVarintField(out, fProfileDurationNanos, uint64(cycles))
	out = appendBytesField(out, fProfilePeriodType, vt)
	out = appendVarintField(out, fProfilePeriod, 1)
	return out
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendVarintField(b []byte, field int, v uint64) []byte {
	b = appendVarint(b, uint64(field)<<3|0) // wire type 0: varint
	return appendVarint(b, v)
}

func appendBytesField(b []byte, field int, payload []byte) []byte {
	b = appendVarint(b, uint64(field)<<3|2) // wire type 2: length-delimited
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}
