// Package queue implements the abstract execution models of Chapter 3 of
// "Data Flow on a Queue Machine": the simple queue machine, the indexed
// queue machine, and (for comparison) the classical stack machine.
//
// The simple queue machine removes the operands of every instruction from
// the front of a FIFO operand queue and appends the result at the rear. The
// indexed queue machine generalizes the result placement: each instruction
// carries a set of result indices, interpreted as offsets from the front of
// the queue after the instruction's operands have been removed, and the
// result is duplicated into each indexed slot. Operands are still consumed
// only from the front. Chapter 3 proves that level-order traversals of
// expression parse trees are valid simple-queue sequences and that acyclic
// data-flow graphs generate valid indexed-queue sequences; the evaluators
// here are the executable counterparts of those proofs.
package queue

import (
	"fmt"
	"strings"
)

// Instr is one instruction of an abstract machine program: an operator with
// a fixed arity and an evaluation function. The type parameter T is the
// operand domain — int64 for numeric evaluation, string for the symbolic
// traces printed in the thesis's Table 3.1.
type Instr[T any] struct {
	Label string
	Arity int
	Apply func(args []T) (T, error)
}

// State is a snapshot of a machine during evaluation, recorded after an
// instruction has executed: the instruction and the queue (or stack)
// contents from front (or top) to rear (or bottom).
type State[T any] struct {
	Instr    string
	Contents []T
}

// EvalSimple evaluates the instruction sequence on a simple queue machine
// and returns the final value. The evaluation must end with exactly one
// element in the operand queue; anything else indicates the sequence was not
// a well-formed expression program.
func EvalSimple[T any](seq []Instr[T]) (T, error) {
	var zero T
	q, err := runSimple(seq, nil)
	if err != nil {
		return zero, err
	}
	if len(q) != 1 {
		return zero, fmt.Errorf("queue: evaluation left %d values in the queue, want 1", len(q))
	}
	return q[0], nil
}

// TraceSimple evaluates the sequence like EvalSimple but also records the
// queue contents after every instruction, reproducing the execution traces
// of Table 3.1.
func TraceSimple[T any](seq []Instr[T]) ([]State[T], T, error) {
	var zero T
	states := make([]State[T], 0, len(seq))
	q, err := runSimple(seq, &states)
	if err != nil {
		return states, zero, err
	}
	if len(q) != 1 {
		return states, zero, fmt.Errorf("queue: evaluation left %d values in the queue, want 1", len(q))
	}
	return states, q[0], nil
}

func runSimple[T any](seq []Instr[T], trace *[]State[T]) ([]T, error) {
	var q []T
	for i, in := range seq {
		if in.Arity > len(q) {
			return nil, fmt.Errorf("queue: instruction %d (%s) needs %d operands, queue holds %d", i, in.Label, in.Arity, len(q))
		}
		args := q[:in.Arity]
		res, err := in.Apply(args)
		if err != nil {
			return nil, fmt.Errorf("queue: instruction %d (%s): %w", i, in.Label, err)
		}
		q = append(q[in.Arity:], res)
		if trace != nil {
			*trace = append(*trace, State[T]{Instr: in.Label, Contents: append([]T(nil), q...)})
		}
	}
	return q, nil
}

// EvalStack evaluates the instruction sequence on a stack machine: operands
// are popped from the top of the stack and the result is pushed back. The
// evaluation must end with exactly one element on the stack.
func EvalStack[T any](seq []Instr[T]) (T, error) {
	var zero T
	var s []T
	for i, in := range seq {
		if in.Arity > len(s) {
			return zero, fmt.Errorf("queue: stack instruction %d (%s) needs %d operands, stack holds %d", i, in.Label, in.Arity, len(s))
		}
		// Operands pop in push order: for a binary op the deeper element
		// is the left operand, matching post-order code generation.
		args := append([]T(nil), s[len(s)-in.Arity:]...)
		s = s[:len(s)-in.Arity]
		res, err := in.Apply(args)
		if err != nil {
			return zero, fmt.Errorf("queue: stack instruction %d (%s): %w", i, in.Label, err)
		}
		s = append(s, res)
	}
	if len(s) != 1 {
		return zero, fmt.Errorf("queue: evaluation left %d values on the stack, want 1", len(s))
	}
	return s[0], nil
}

// TraceStack evaluates like EvalStack, recording the stack contents (top
// first, as printed in Table 3.1) after every instruction.
func TraceStack[T any](seq []Instr[T]) ([]State[T], T, error) {
	var zero T
	var s []T
	states := make([]State[T], 0, len(seq))
	for i, in := range seq {
		if in.Arity > len(s) {
			return states, zero, fmt.Errorf("queue: stack instruction %d (%s) needs %d operands, stack holds %d", i, in.Label, in.Arity, len(s))
		}
		args := append([]T(nil), s[len(s)-in.Arity:]...)
		s = s[:len(s)-in.Arity]
		res, err := in.Apply(args)
		if err != nil {
			return states, zero, fmt.Errorf("queue: stack instruction %d (%s): %w", i, in.Label, err)
		}
		s = append(s, res)
		top := make([]T, len(s))
		for j := range s {
			top[j] = s[len(s)-1-j]
		}
		states = append(states, State[T]{Instr: in.Label, Contents: top})
	}
	if len(s) != 1 {
		return states, zero, fmt.Errorf("queue: evaluation left %d values on the stack, want 1", len(s))
	}
	return states, s[0], nil
}

// FormatTrace renders a recorded trace as aligned text, one line per
// instruction, in the style of Table 3.1.
func FormatTrace[T any](states []State[T]) string {
	var b strings.Builder
	width := 0
	for _, s := range states {
		if len(s.Instr) > width {
			width = len(s.Instr)
		}
	}
	for _, s := range states {
		fmt.Fprintf(&b, "%-*s  ", width, s.Instr)
		for i, v := range s.Contents {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%v", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
