package queue

import (
	"fmt"
	"strconv"

	"queuemachine/internal/bintree"
)

// Env maps leaf names of an expression parse tree to their integer values.
// Leaves whose labels parse as integers are treated as literals and need not
// appear in the environment.
type Env map[string]int64

// arith returns the integer semantics of the operator labels used by
// bintree.ParseExpr.
func arith(label string) (func(args []int64) (int64, error), bool) {
	bin := func(f func(a, b int64) (int64, error)) func([]int64) (int64, error) {
		return func(args []int64) (int64, error) { return f(args[0], args[1]) }
	}
	switch label {
	case "+":
		return bin(func(a, b int64) (int64, error) { return a + b, nil }), true
	case "-":
		return bin(func(a, b int64) (int64, error) { return a - b, nil }), true
	case "*":
		return bin(func(a, b int64) (int64, error) { return a * b, nil }), true
	case "/":
		return bin(func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a / b, nil
		}), true
	case "%":
		return bin(func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return a % b, nil
		}), true
	case "neg":
		return func(args []int64) (int64, error) { return -args[0], nil }, true
	}
	return nil, false
}

// nodeInstr builds the numeric instruction for a single parse-tree node.
func nodeInstr(n *bintree.Node, env Env) (Instr[int64], error) {
	if n.Arity() == 0 {
		if v, err := strconv.ParseInt(n.Label, 10, 64); err == nil {
			return Instr[int64]{
				Label: n.Label,
				Apply: func([]int64) (int64, error) { return v, nil },
			}, nil
		}
		name := n.Label
		return Instr[int64]{
			Label: "fetch " + name,
			Apply: func([]int64) (int64, error) {
				v, ok := env[name]
				if !ok {
					return 0, fmt.Errorf("unbound variable %q", name)
				}
				return v, nil
			},
		}, nil
	}
	apply, ok := arith(n.Label)
	if !ok {
		return Instr[int64]{}, fmt.Errorf("queue: unknown operator %q", n.Label)
	}
	return Instr[int64]{Label: n.Label, Arity: n.Arity(), Apply: apply}, nil
}

// CompileTree translates a node ordering of an expression parse tree (such
// as a level-order traversal for queue execution or a post-order traversal
// for stack execution) into an executable instruction sequence with integer
// semantics.
func CompileTree(order []*bintree.Node, env Env) ([]Instr[int64], error) {
	seq := make([]Instr[int64], len(order))
	for i, n := range order {
		in, err := nodeInstr(n, env)
		if err != nil {
			return nil, err
		}
		seq[i] = in
	}
	return seq, nil
}

// CompileTreeSymbolic translates a node ordering into an instruction
// sequence over strings: each operator builds the infix rendering of its
// result. Evaluating a symbolic sequence reproduces the queue- and
// stack-contents columns of Table 3.1.
func CompileTreeSymbolic(order []*bintree.Node) []Instr[string] {
	seq := make([]Instr[string], len(order))
	for i, n := range order {
		n := n
		switch n.Arity() {
		case 0:
			seq[i] = Instr[string]{
				Label: "fetch " + n.Label,
				Apply: func([]string) (string, error) { return n.Label, nil },
			}
		case 1:
			seq[i] = Instr[string]{
				Label: opMnemonic(n.Label),
				Arity: 1,
				Apply: func(args []string) (string, error) {
					return "(-" + args[0] + ")", nil
				},
			}
		default:
			seq[i] = Instr[string]{
				Label: opMnemonic(n.Label),
				Arity: 2,
				Apply: func(args []string) (string, error) {
					return "(" + args[0] + n.Label + args[1] + ")", nil
				},
			}
		}
	}
	return seq
}

func opMnemonic(label string) string {
	switch label {
	case "+":
		return "add"
	case "-":
		return "sub"
	case "*":
		return "mul"
	case "/":
		return "div"
	case "%":
		return "rem"
	case "neg":
		return "neg"
	}
	return label
}

// EvalTree evaluates the parse tree directly by recursive descent; the
// reference semantics against which the queue and stack machines are tested.
func EvalTree(n *bintree.Node, env Env) (int64, error) {
	if n == nil {
		return 0, fmt.Errorf("queue: nil tree")
	}
	switch n.Arity() {
	case 0:
		if v, err := strconv.ParseInt(n.Label, 10, 64); err == nil {
			return v, nil
		}
		v, ok := env[n.Label]
		if !ok {
			return 0, fmt.Errorf("unbound variable %q", n.Label)
		}
		return v, nil
	case 1:
		v, err := EvalTree(n.Left, env)
		if err != nil {
			return 0, err
		}
		if n.Label != "neg" {
			return 0, fmt.Errorf("queue: unknown unary operator %q", n.Label)
		}
		return -v, nil
	default:
		a, err := EvalTree(n.Left, env)
		if err != nil {
			return 0, err
		}
		b, err := EvalTree(n.Right, env)
		if err != nil {
			return 0, err
		}
		apply, ok := arith(n.Label)
		if !ok {
			return 0, fmt.Errorf("queue: unknown operator %q", n.Label)
		}
		return apply([]int64{a, b})
	}
}
