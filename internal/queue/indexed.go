package queue

import "fmt"

// IndexedInstr is one instruction of an indexed queue machine program: an
// operator together with the set of result indices P_i. Each index is an
// offset from the front of the operand queue *after* the instruction's
// operands have been removed; the result is duplicated into every indexed
// slot. An empty index set discards the result (legal for instructions
// executed purely for effect).
type IndexedInstr[T any] struct {
	Instr[T]
	Offsets []int
}

// IndexedState is a snapshot of an indexed queue machine: the conceptual
// queue slots from the current front onward. Slots that have not yet
// received a value hold the machine's "ε" mark and are reported via Present.
type IndexedState[T any] struct {
	Instr    string
	Front    int // r, the index of the queue front in the conceptual array
	Slots    []T
	Present  []bool
	Consumed int
}

// EvalIndexed evaluates an indexed queue machine instruction sequence
// according to the state-transition semantics of §3.5. It returns the
// remaining queue contents (from the final front onward, trimmed of empty
// tail slots). Reading a slot that holds no value — a "hole" in the queue —
// is an error: the thesis requires valid sequences never to create one.
func EvalIndexed[T any](seq []IndexedInstr[T]) ([]T, error) {
	q, err := runIndexed(seq, nil)
	if err != nil {
		return nil, err
	}
	return q, nil
}

// TraceIndexed evaluates like EvalIndexed while recording the queue state
// after every instruction, reproducing the trace of Table 3.4.
func TraceIndexed[T any](seq []IndexedInstr[T]) ([]IndexedState[T], []T, error) {
	states := make([]IndexedState[T], 0, len(seq))
	q, err := runIndexed(seq, &states)
	return states, q, err
}

func runIndexed[T any](seq []IndexedInstr[T], trace *[]IndexedState[T]) ([]T, error) {
	var (
		slots   []T
		present []bool
		front   int
	)
	ensure := func(idx int) {
		for len(slots) <= idx {
			var zero T
			slots = append(slots, zero)
			present = append(present, false)
		}
	}
	for i, in := range seq {
		args := make([]T, in.Arity)
		for a := 0; a < in.Arity; a++ {
			idx := front + a
			if idx >= len(slots) || !present[idx] {
				return nil, fmt.Errorf("queue: instruction %d (%s) reads empty queue slot %d (hole in the queue)", i, in.Label, idx)
			}
			args[a] = slots[idx]
			present[idx] = false
		}
		front += in.Arity
		res, err := in.Apply(args)
		if err != nil {
			return nil, fmt.Errorf("queue: instruction %d (%s): %w", i, in.Label, err)
		}
		for _, off := range in.Offsets {
			if off < 0 {
				return nil, fmt.Errorf("queue: instruction %d (%s) has negative result offset %d", i, in.Label, off)
			}
			idx := front + off
			ensure(idx)
			if present[idx] {
				return nil, fmt.Errorf("queue: instruction %d (%s) overwrites live queue slot %d", i, in.Label, idx)
			}
			slots[idx] = res
			present[idx] = true
		}
		if trace != nil {
			*trace = append(*trace, IndexedState[T]{
				Instr:    in.Label,
				Front:    front,
				Slots:    append([]T(nil), slots[min(front, len(slots)):]...),
				Present:  append([]bool(nil), present[min(front, len(slots)):]...),
				Consumed: in.Arity,
			})
		}
	}
	// Collect the remaining live values from the front onward.
	var out []T
	for idx := front; idx < len(slots); idx++ {
		if present[idx] {
			out = append(out, slots[idx])
		}
	}
	return out, nil
}

// MaxQueueIndex reports the largest conceptual queue index that evaluating
// seq would touch, i.e. the queue page capacity the sequence requires. It
// performs the index arithmetic without evaluating operator functions.
func MaxQueueIndex[T any](seq []IndexedInstr[T]) int {
	front, maxIdx := 0, -1
	for _, in := range seq {
		if in.Arity > 0 && front+in.Arity-1 > maxIdx {
			maxIdx = front + in.Arity - 1
		}
		front += in.Arity
		for _, off := range in.Offsets {
			if front+off > maxIdx {
				maxIdx = front + off
			}
		}
	}
	return maxIdx
}
