package queue

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"queuemachine/internal/bintree"
)

var table31Env = Env{"a": 7, "b": 3, "c": 20, "d": 6, "e": 2}

// TestTable31 reproduces Table 3.1: both the queue-machine (level-order) and
// stack-machine (post-order) sequences evaluate f := a*b + (c-d)/e to the
// same value, and the instruction sequences are permutations of one another.
func TestTable31(t *testing.T) {
	tree := bintree.MustParseExpr("a*b + (c-d)/e")
	want, err := EvalTree(tree, table31Env)
	if err != nil {
		t.Fatal(err)
	}
	if want != 7*3+(20-6)/2 {
		t.Fatalf("reference value = %d", want)
	}

	queueSeq, err := CompileTree(bintree.LevelOrder(tree), table31Env)
	if err != nil {
		t.Fatal(err)
	}
	stackSeq, err := CompileTree(bintree.PostOrder(tree), table31Env)
	if err != nil {
		t.Fatal(err)
	}
	if len(queueSeq) != len(stackSeq) {
		t.Errorf("sequence lengths differ: %d vs %d", len(queueSeq), len(stackSeq))
	}

	qv, err := EvalSimple(queueSeq)
	if err != nil {
		t.Fatalf("queue eval: %v", err)
	}
	sv, err := EvalStack(stackSeq)
	if err != nil {
		t.Fatalf("stack eval: %v", err)
	}
	if qv != want || sv != want {
		t.Errorf("queue = %d, stack = %d, want %d", qv, sv, want)
	}

	// The queue sequence is a permutation of the stack sequence.
	count := map[string]int{}
	for _, in := range queueSeq {
		count[in.Label]++
	}
	for _, in := range stackSeq {
		count[in.Label]--
	}
	for label, c := range count {
		if c != 0 {
			t.Errorf("instruction %q count differs by %d between sequences", label, c)
		}
	}
}

// TestTable31SymbolicTrace checks the symbolic queue-contents column of
// Table 3.1 instruction by instruction.
func TestTable31SymbolicTrace(t *testing.T) {
	tree := bintree.MustParseExpr("a*b + (c-d)/e")
	seq := CompileTreeSymbolic(bintree.LevelOrder(tree))
	states, final, err := TraceSimple(seq)
	if err != nil {
		t.Fatal(err)
	}
	if final != "((a*b)+((c-d)/e))" {
		t.Errorf("final = %q", final)
	}
	wantQueues := [][]string{
		{"c"},
		{"c", "d"},
		{"c", "d", "a"},
		{"c", "d", "a", "b"},
		{"a", "b", "(c-d)"},
		{"a", "b", "(c-d)", "e"},
		{"(c-d)", "e", "(a*b)"},
		{"(a*b)", "((c-d)/e)"},
		{"((a*b)+((c-d)/e))"},
	}
	if len(states) != len(wantQueues) {
		t.Fatalf("trace has %d states, want %d", len(states), len(wantQueues))
	}
	for i, want := range wantQueues {
		if !reflect.DeepEqual(states[i].Contents, want) {
			t.Errorf("state %d (%s): queue = %v, want %v", i, states[i].Instr, states[i].Contents, want)
		}
	}
}

func TestTraceStackSymbolic(t *testing.T) {
	tree := bintree.MustParseExpr("a*b + (c-d)/e")
	seq := CompileTreeSymbolic(bintree.PostOrder(tree))
	states, final, err := TraceStack(seq)
	if err != nil {
		t.Fatal(err)
	}
	if final != "((a*b)+((c-d)/e))" {
		t.Errorf("final = %q", final)
	}
	// Spot-check a Table 3.1 stack state: after "sub" the stack holds
	// (c-d) above (a*b).
	if got := states[5].Contents; !reflect.DeepEqual(got, []string{"(c-d)", "(a*b)"}) {
		t.Errorf("stack after sub = %v", got)
	}
}

func TestEvalSimpleUnderflow(t *testing.T) {
	seq := []Instr[int64]{{Label: "add", Arity: 2, Apply: func(a []int64) (int64, error) { return a[0] + a[1], nil }}}
	if _, err := EvalSimple(seq); err == nil {
		t.Error("expected underflow error")
	}
	if _, err := EvalStack(seq); err == nil {
		t.Error("expected stack underflow error")
	}
}

func TestEvalSimpleLeftover(t *testing.T) {
	lit := func(v int64) Instr[int64] {
		return Instr[int64]{Label: "lit", Apply: func([]int64) (int64, error) { return v, nil }}
	}
	if _, err := EvalSimple([]Instr[int64]{lit(1), lit(2)}); err == nil {
		t.Error("expected leftover-values error")
	}
	if _, err := EvalStack([]Instr[int64]{lit(1), lit(2)}); err == nil {
		t.Error("expected leftover-values error on stack")
	}
}

func TestEvalErrorsPropagate(t *testing.T) {
	tree := bintree.MustParseExpr("a/b")
	seq, err := CompileTree(bintree.LevelOrder(tree), Env{"a": 1, "b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalSimple(seq); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero error, got %v", err)
	}
	if _, err := EvalTree(tree, Env{"a": 1, "b": 0}); err == nil {
		t.Error("EvalTree should report division by zero")
	}
}

func TestUnboundVariable(t *testing.T) {
	tree := bintree.MustParseExpr("x+y")
	seq, err := CompileTree(bintree.LevelOrder(tree), Env{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalSimple(seq); err == nil {
		t.Error("want unbound-variable error")
	}
}

// TestQueueMatchesDirectEval is the executable form of the Chapter 3 theorem:
// for randomly generated expression parse trees, evaluating the level-order
// sequence on a simple queue machine gives the same result as direct
// recursive evaluation (and the post-order sequence on a stack machine
// agrees too).
func TestQueueMatchesDirectEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomExprTree(r, 1+r.Intn(25))
		env := Env{}
		var collect func(*bintree.Node)
		collect = func(n *bintree.Node) {
			if n == nil {
				return
			}
			if n.Arity() == 0 {
				env[n.Label] = int64(r.Intn(41) - 20)
			}
			collect(n.Left)
			collect(n.Right)
		}
		collect(tree)

		want, err := EvalTree(tree, env)
		if err != nil {
			t.Fatalf("EvalTree: %v", err)
		}
		qseq, err := CompileTree(bintree.LevelOrder(tree), env)
		if err != nil {
			t.Fatalf("CompileTree: %v", err)
		}
		got, err := EvalSimple(qseq)
		if err != nil {
			t.Fatalf("EvalSimple(%s): %v", bintree.Infix(tree), err)
		}
		sseq, err := CompileTree(bintree.PostOrder(tree), env)
		if err != nil {
			t.Fatalf("CompileTree: %v", err)
		}
		sgot, err := EvalStack(sseq)
		if err != nil {
			t.Fatalf("EvalStack(%s): %v", bintree.Infix(tree), err)
		}
		return got == want && sgot == want
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// randomExprTree builds a random parse tree using only total operators
// (+, -, *, neg) so every environment evaluates successfully.
func randomExprTree(rng *rand.Rand, n int) *bintree.Node {
	leafCount := 0
	ops := []string{"+", "-", "*"}
	var build func(n int) *bintree.Node
	build = func(n int) *bintree.Node {
		switch {
		case n <= 1:
			leafCount++
			return bintree.Leaf("v" + string(rune('a'+leafCount%26)) + itoa(leafCount))
		case n == 2 || rng.Intn(3) == 0:
			return bintree.Unary("neg", build(n-1))
		default:
			left := 1 + rng.Intn(n-2)
			return bintree.Binary(ops[rng.Intn(len(ops))], build(left), build(n-1-left))
		}
	}
	return build(n)
}

func itoa(v int) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for ; v > 0; v /= 10 {
		b = append([]byte{byte('0' + v%10)}, b...)
	}
	return string(b)
}

func TestFormatTrace(t *testing.T) {
	tree := bintree.MustParseExpr("a+b")
	seq := CompileTreeSymbolic(bintree.LevelOrder(tree))
	states, _, err := TraceSimple(seq)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTrace(states)
	if !strings.Contains(out, "fetch a") || !strings.Contains(out, "(a+b)") {
		t.Errorf("FormatTrace output unexpected:\n%s", out)
	}
}

func TestCompileTreeUnknownOperator(t *testing.T) {
	bad := bintree.Binary("??", bintree.Leaf("x"), bintree.Leaf("y"))
	if _, err := CompileTree(bintree.LevelOrder(bad), Env{"x": 1, "y": 2}); err == nil {
		t.Error("want unknown-operator error")
	}
	if _, err := EvalTree(bad, Env{"x": 1, "y": 2}); err == nil {
		t.Error("EvalTree should reject unknown operator")
	}
	badU := bintree.Unary("??", bintree.Leaf("x"))
	if _, err := EvalTree(badU, Env{"x": 1}); err == nil {
		t.Error("EvalTree should reject unknown unary operator")
	}
}

func TestLiteralLeaves(t *testing.T) {
	tree := bintree.MustParseExpr("2*21")
	seq, err := CompileTree(bintree.LevelOrder(tree), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalSimple(seq)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("2*21 = %d", got)
	}
}

func TestModulo(t *testing.T) {
	tree := bintree.MustParseExpr("a%b")
	want, err := EvalTree(tree, Env{"a": 17, "b": 5})
	if err != nil || want != 2 {
		t.Fatalf("EvalTree = %d, %v", want, err)
	}
	if _, err := EvalTree(tree, Env{"a": 17, "b": 0}); err == nil {
		t.Error("mod by zero should error")
	}
}
