package queue

import (
	"reflect"
	"strings"
	"testing"
)

// lit returns a nullary instruction producing v, and op a binary one.
func ilit(label string, v int64, offsets ...int) IndexedInstr[int64] {
	return IndexedInstr[int64]{
		Instr:   Instr[int64]{Label: label, Apply: func([]int64) (int64, error) { return v, nil }},
		Offsets: offsets,
	}
}

func ibin(label string, f func(a, b int64) int64, offsets ...int) IndexedInstr[int64] {
	return IndexedInstr[int64]{
		Instr: Instr[int64]{Label: label, Arity: 2, Apply: func(a []int64) (int64, error) {
			return f(a[0], a[1]), nil
		}},
		Offsets: offsets,
	}
}

// TestTable34 reproduces Table 3.4: the indexed-queue-machine sequence for
// d := a/(a+b) + (a+b)*c, in which the common subexpression a+b is computed
// once and duplicated via two result indices.
//
// Sequence (offsets are from the queue front after operand removal):
//
//	fetch a   -> q0
//	fetch b   -> q1           (queue: a b)
//	add       -> q1, q3       (consumes a b; queue: . s . s   with s = a+b)
//	fetch a'  -> q0  ... the thesis's actual Table 3.4 layout differs in
//
// inessential offset choices; what is tested here is the semantics: 7
// instructions, one add shared by both uses.
func TestTable34(t *testing.T) {
	const (
		a = 6
		b = 2
		c = 5
	)
	// Node order: a, b, +, (dup handled by two offsets), a2? No: the DFG of
	// Figure 3.6(b) has 7 nodes: a, b, c, +, /, *, + (final). Operand uses:
	//   add1 = a + b            (consumed by div as 2nd operand and mul as 1st)
	//   div  = a / add1
	//   mul  = add1 * c
	//   add2 = div + mul
	// One valid indexed sequence with queue slot bookkeeping:
	seq := []IndexedInstr[int64]{
		ilit("fetch a", a, 0), // q: [a]
		ilit("fetch b", b, 1), // q: [a b]
		ilit("fetch a", a, 2), // q: [a b a]
		ibin("add", func(x, y int64) int64 { return x + y }, 1, 2), // consume a b; q: [a s s]
		ilit("fetch c", c, 3), // q: [a s s c]
		ibin("div", func(x, y int64) int64 { return x / y }, 2), // consume a s; q: [s c d]
		ibin("mul", func(x, y int64) int64 { return x * y }, 1), // consume s c; q: [d m]
		ibin("add", func(x, y int64) int64 { return x + y }, 0), // q: [r]
	}
	got, err := EvalIndexed(seq)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(a/(a+b) + (a+b)*c)
	if len(got) != 1 || got[0] != want {
		t.Errorf("EvalIndexed = %v, want [%d]", got, want)
	}
}

func TestIndexedHoleDetected(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("fetch a", 1, 1), // leaves slot 0 empty
		ibin("add", func(x, y int64) int64 { return x + y }, 0),
	}
	_, err := EvalIndexed(seq)
	if err == nil || !strings.Contains(err.Error(), "hole") {
		t.Errorf("want hole error, got %v", err)
	}
}

func TestIndexedOverwriteDetected(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("fetch a", 1, 0),
		ilit("fetch b", 2, 0), // would overwrite the live slot 1... offset 0 after 0 consumed: slot 0 again
	}
	_, err := EvalIndexed(seq)
	if err == nil || !strings.Contains(err.Error(), "overwrites") {
		t.Errorf("want overwrite error, got %v", err)
	}
}

func TestIndexedNegativeOffset(t *testing.T) {
	seq := []IndexedInstr[int64]{ilit("fetch a", 1, -1)}
	if _, err := EvalIndexed(seq); err == nil {
		t.Error("want negative-offset error")
	}
}

func TestIndexedDiscardResult(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("fetch a", 1, 0),
		ilit("side-effect", 99), // no offsets: result discarded
		{Instr: Instr[int64]{Label: "copy", Arity: 1, Apply: func(a []int64) (int64, error) { return a[0], nil }}, Offsets: []int{0}},
	}
	got, err := EvalIndexed(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int64{1}) {
		t.Errorf("got %v", got)
	}
}

func TestTraceIndexed(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("fetch a", 4, 0),
		ilit("fetch b", 5, 1),
		ibin("add", func(x, y int64) int64 { return x + y }, 0),
	}
	states, final, err := TraceIndexed(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 3 {
		t.Fatalf("%d states", len(states))
	}
	if states[2].Front != 2 || states[2].Consumed != 2 {
		t.Errorf("final state front/consumed = %d/%d", states[2].Front, states[2].Consumed)
	}
	if !reflect.DeepEqual(final, []int64{9}) {
		t.Errorf("final queue = %v", final)
	}
}

func TestMaxQueueIndex(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("a", 1, 0),
		ilit("b", 2, 1, 7),
		ibin("add", func(x, y int64) int64 { return x + y }, 0),
	}
	// Slots touched: b writes 0+1 and 0+7; add reads slots 0,1 and writes
	// slot 2+0. The deepest index is 7.
	if got := MaxQueueIndex(seq); got != 7 {
		t.Errorf("MaxQueueIndex = %d, want 7", got)
	}
	if got := MaxQueueIndex[int64](nil); got != -1 {
		t.Errorf("MaxQueueIndex(nil) = %d, want -1", got)
	}
}

func TestIndexedApplyError(t *testing.T) {
	seq := []IndexedInstr[int64]{
		ilit("a", 1, 0),
		{Instr: Instr[int64]{Label: "boom", Arity: 1, Apply: func([]int64) (int64, error) {
			return 0, errBoom
		}}, Offsets: []int{0}},
	}
	if _, err := EvalIndexed(seq); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("want boom error, got %v", err)
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }
