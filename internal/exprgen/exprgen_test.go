package exprgen

import (
	"math/rand"
	"testing"

	"queuemachine/internal/bintree"
	"queuemachine/internal/queue"
)

// TestCountMotzkin checks the closed counts of parse-tree shapes against the
// Motzkin numbers M(n-1).
func TestCountMotzkin(t *testing.T) {
	want := []int{0, 1, 1, 2, 4, 9, 21, 51, 127, 323, 835, 2188}
	for n, w := range want {
		if got := Count(n); got != w {
			t.Errorf("Count(%d) = %d, want %d", n, got, w)
		}
	}
	if Count(-3) != 0 {
		t.Error("Count of negative n should be 0")
	}
}

// TestEnumerationMatchesCount checks that ForEach produces exactly Count(n)
// distinct trees, all valid, all with n nodes.
func TestEnumerationMatchesCount(t *testing.T) {
	for n := 1; n <= 9; n++ {
		seen := map[string]bool{}
		ForEach(n, func(tr *bintree.Node) bool {
			if tr.Count() != n {
				t.Fatalf("n=%d: tree has %d nodes", n, tr.Count())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d: invalid tree: %v", n, err)
			}
			key := shapeKey(tr)
			if seen[key] {
				t.Fatalf("n=%d: duplicate shape %s", n, key)
			}
			seen[key] = true
			return true
		})
		if len(seen) != Count(n) {
			t.Errorf("n=%d: enumerated %d shapes, want %d", n, len(seen), Count(n))
		}
	}
}

func shapeKey(t *bintree.Node) string {
	if t == nil {
		return "."
	}
	return "(" + shapeKey(t.Left) + shapeKey(t.Right) + ")"
}

func TestForEachEarlyStop(t *testing.T) {
	visited := 0
	ForEach(7, func(*bintree.Node) bool {
		visited++
		return visited < 10
	})
	if visited != 10 {
		t.Errorf("visited %d trees, want 10", visited)
	}
}

func TestAllFourNodeShapes(t *testing.T) {
	// Figure 3.5: the four parse trees with exactly four nodes.
	trees := All(4)
	if len(trees) != 4 {
		t.Fatalf("All(4) returned %d trees", len(trees))
	}
	keys := map[string]bool{}
	for _, tr := range trees {
		keys[shapeKey(tr)] = true
	}
	for _, want := range []string{
		"(((..)(..)).)", // unary over binary: -(x op y)
		"(((..).)(..))", // binary(unary(leaf), leaf)
		"((..)((..).))", // binary(leaf, unary(leaf))
		"((((..).).).)", // unary chain: -(-(-x))
	} {
		if !keys[want] {
			t.Errorf("missing shape %s (have %v)", want, keys)
		}
	}
}

// TestDecorateEvaluates decorates every enumerated shape up to 8 nodes and
// checks the level-order queue sequence evaluates identically to direct
// recursive evaluation — the Chapter 3 correctness theorem verified over the
// exhaustive tree population used for Table 3.2.
func TestDecorateEvaluates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 8; n++ {
		ForEach(n, func(tr *bintree.Node) bool {
			_, leaves := Decorate(tr)
			env := queue.Env{}
			for i := 0; i < leaves; i++ {
				env[leafName(i)] = int64(rng.Intn(19) - 9)
			}
			want, err := queue.EvalTree(tr, env)
			if err != nil {
				t.Fatalf("n=%d EvalTree: %v", n, err)
			}
			seq, err := queue.CompileTree(bintree.LevelOrder(tr), env)
			if err != nil {
				t.Fatalf("n=%d CompileTree: %v", n, err)
			}
			got, err := queue.EvalSimple(seq)
			if err != nil {
				t.Fatalf("n=%d (%s) EvalSimple: %v", n, bintree.Infix(tr), err)
			}
			if got != want {
				t.Fatalf("n=%d (%s): queue=%d direct=%d", n, bintree.Infix(tr), got, want)
			}
			return true
		})
	}
}

func TestDecorateLeafNames(t *testing.T) {
	tr := All(5)[0]
	_, leaves := Decorate(tr)
	if leaves < 1 {
		t.Fatalf("no leaves")
	}
	if leafName(0) != "aa" && leafName(0) != "a" {
		t.Errorf("leafName(0) = %q", leafName(0))
	}
	// Names must be distinct across a wide range.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		name := leafName(i)
		if seen[name] {
			t.Fatalf("duplicate leaf name %q at %d", name, i)
		}
		seen[name] = true
	}
}

func TestRandomShapesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		tr := Random(n, rng)
		if tr.Count() != n {
			t.Fatalf("Random(%d) has %d nodes", n, tr.Count())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Random(%d): %v", n, err)
		}
	}
	if Random(0, rng) != nil {
		t.Error("Random(0) should be nil")
	}
}
