// Package exprgen enumerates binary expression parse trees, following §3.4
// of the thesis, where all parse trees with a given number of nodes are
// enumerated to compare the queue- and stack-based execution models on a
// pipelined ALU (the enumeration procedure the thesis adapts from
// [Solomon 1980]).
//
// A binary expression parse tree node is nullary (a leaf), unary (a left
// child only), or binary; the number of distinct shapes with n nodes is the
// Motzkin number M(n-1).
package exprgen

import (
	"math/rand"

	"queuemachine/internal/bintree"
)

// Count returns the number of distinct binary expression parse tree shapes
// with exactly n nodes (the Motzkin number M(n-1); Count(0) = 0).
func Count(n int) int {
	if n <= 0 {
		return 0
	}
	counts := make([]int, n+1)
	counts[1] = 1
	for m := 2; m <= n; m++ {
		c := counts[m-1] // unary root
		for i := 1; i <= m-2; i++ {
			c += counts[i] * counts[m-1-i] // binary root
		}
		counts[m] = c
	}
	return counts[n]
}

// ForEach invokes fn for every distinct parse tree shape with exactly n
// nodes. The trees passed to fn share no structure with one another and may
// be retained or mutated by fn. Enumeration stops early if fn returns false.
// Leaves are labelled "L", unary nodes "U", and binary nodes "B"; use
// Decorate to assign concrete operators and operand names.
func ForEach(n int, fn func(*bintree.Node) bool) {
	enumerate(n, func(t *bintree.Node) bool { return fn(t) })
}

// All returns every distinct parse tree shape with exactly n nodes.
func All(n int) []*bintree.Node {
	var out []*bintree.Node
	ForEach(n, func(t *bintree.Node) bool {
		out = append(out, t)
		return true
	})
	return out
}

func enumerate(n int, fn func(*bintree.Node) bool) bool {
	if n <= 0 {
		return true
	}
	if n == 1 {
		return fn(&bintree.Node{Label: "L"})
	}
	// Unary root over every (n-1)-node subtree.
	ok := enumerate(n-1, func(sub *bintree.Node) bool {
		return fn(&bintree.Node{Label: "U", Left: sub})
	})
	if !ok {
		return false
	}
	// Binary root over every split of the remaining n-1 nodes.
	for i := 1; i <= n-2; i++ {
		lefts := All(i)
		ok := enumerate(n-1-i, func(right *bintree.Node) bool {
			for _, left := range lefts {
				if !fn(&bintree.Node{Label: "B", Left: clone(left), Right: right}) {
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func clone(t *bintree.Node) *bintree.Node {
	if t == nil {
		return nil
	}
	return &bintree.Node{Label: t.Label, Left: clone(t.Left), Right: clone(t.Right)}
}

// Decorate assigns concrete operator and operand labels to an enumerated
// shape so that the tree can be evaluated: leaves become a0, a1, ... (in
// pre-order), unary nodes become "neg", and binary nodes cycle through
// +, -, * (division is avoided so that every environment is safe). It
// returns the tree it was given, relabelled in place, together with the
// number of leaves.
func Decorate(t *bintree.Node) (tree *bintree.Node, leaves int) {
	binOps := []string{"+", "-", "*"}
	nextLeaf, nextBin := 0, 0
	var walk func(*bintree.Node)
	walk = func(n *bintree.Node) {
		if n == nil {
			return
		}
		switch n.Arity() {
		case 0:
			n.Label = leafName(nextLeaf)
			nextLeaf++
		case 1:
			n.Label = "neg"
		default:
			n.Label = binOps[nextBin%len(binOps)]
			nextBin++
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t)
	return t, nextLeaf
}

func leafName(i int) string {
	name := []byte{'a'}
	for ; i >= 26; i /= 26 {
		name = append(name, byte('a'+i%26))
	}
	name = append(name, byte('a'+i%26))
	return string(name[:max(1, len(name))])
}

// Random returns a uniformly structured (not uniformly distributed over
// shapes, but covering all shapes with positive probability) random parse
// tree with exactly n nodes, using the supplied source. It is used by
// property-based tests on larger trees than exhaustive enumeration reaches.
func Random(n int, rng *rand.Rand) *bintree.Node {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return &bintree.Node{Label: "L"}
	}
	// Choose the root kind with probability proportional to the number of
	// trees it roots, for a roughly uniform draw.
	unary := Count(n - 1)
	total := Count(n)
	if rng.Intn(total) < unary {
		return &bintree.Node{Label: "U", Left: Random(n-1, rng)}
	}
	// Binary root: choose the left-subtree size proportionally.
	r := rng.Intn(total - unary)
	for i := 1; i <= n-2; i++ {
		w := Count(i) * Count(n-1-i)
		if r < w {
			return &bintree.Node{
				Label: "B",
				Left:  Random(i, rng),
				Right: Random(n-1-i, rng),
			}
		}
		r -= w
	}
	// Unreachable for well-formed counts; fall back to a left-heavy split.
	return &bintree.Node{Label: "B", Left: Random(n-2, rng), Right: Random(1, rng)}
}
