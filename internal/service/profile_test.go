package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRunProfileOptIn checks the /run profiling contract: stats carry an
// attribution profile only when the request asks for one, the attribution
// sums exactly to PEs × cycles, and the cumulative cause totals surface in
// /statsz and as cause-labelled series in /metrics — without disturbing
// the unlabelled qmd_sim_cycles_total.
func TestRunProfileOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	var plain runResponse
	if code, raw := post(t, ts.URL+"/run", runRequest{Source: sumSquares, PEs: 2}, &plain); code != 200 {
		t.Fatalf("run: %d %s", code, raw)
	}
	if plain.Stats.Profile != nil {
		t.Error("unprofiled run carries a profile")
	}

	var profiled runResponse
	if code, raw := post(t, ts.URL+"/run",
		runRequest{Source: sumSquares, PEs: 2, Profile: true}, &profiled); code != 200 {
		t.Fatalf("profiled run: %d %s", code, raw)
	}
	prof := profiled.Stats.Profile
	if prof == nil {
		t.Fatal("profile=true run has no profile")
	}
	if profiled.Stats.Cycles != plain.Stats.Cycles {
		t.Errorf("profiling changed the simulation: %d cycles vs %d",
			profiled.Stats.Cycles, plain.Stats.Cycles)
	}
	var sum int64
	for _, v := range prof.Causes {
		sum += v
	}
	want := int64(prof.PEs) * prof.Cycles
	if sum != want {
		t.Errorf("attribution sums to %d, want %d PEs × %d = %d", sum, prof.PEs, prof.Cycles, want)
	}
	if prof.CriticalPath == nil {
		t.Error("profile has no critical path")
	}

	var st ServiceStats
	if code := get(t, ts.URL+"/statsz", &st); code != 200 {
		t.Fatalf("GET /statsz: status %d", code)
	}
	var causeSum int64
	for _, v := range st.CycleCauses {
		causeSum += v
	}
	if causeSum < want {
		t.Errorf("/statsz cycle_causes total %d, want at least the profiled run's %d", causeSum, want)
	}

	m := scrape(t, ts.URL)
	if got := m["qmd_sim_cycles_total"]; got != float64(st.CyclesServed) {
		t.Errorf("unlabelled qmd_sim_cycles_total = %v, statsz cycles_served %d", got, st.CyclesServed)
	}
	for cause, v := range st.CycleCauses {
		key := fmt.Sprintf("qmd_sim_cycles_total{cause=%q}", cause)
		if got := m[key]; got != float64(v) {
			t.Errorf("%s = %v, statsz says %d", key, got, v)
		}
	}
	if _, ok := m[`qmd_sim_cycles_total{cause="execute"}`]; !ok {
		t.Error(`qmd_sim_cycles_total{cause="execute"} missing after a profiled run`)
	}
}

// TestMetricsHistogramMonotonic pins the Prometheus histogram contract on
// /metrics: for every endpoint, bucket counts are cumulative (non-
// decreasing across increasing bounds), the +Inf bucket equals _count, and
// _sum is consistent with at least one observation.
func TestMetricsHistogramMonotonic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, nil); code != 200 {
			t.Fatalf("compile: %d %s", code, raw)
		}
		if code, raw := post(t, ts.URL+"/run", runRequest{Source: sumSquares, PEs: 2}, nil); code != 200 {
			t.Fatalf("run: %d %s", code, raw)
		}
	}

	m := scrape(t, ts.URL)
	for _, endpoint := range []string{"compile", "run"} {
		var prev float64
		for _, b := range latencyBuckets {
			key := fmt.Sprintf("qmd_request_seconds_bucket{endpoint=%q,le=%q}", endpoint, formatBound(b))
			cur, ok := m[key]
			if !ok {
				t.Fatalf("bucket %s missing", key)
			}
			if cur < prev {
				t.Errorf("%s: bucket le=%g count %v < previous %v; not cumulative", endpoint, b, cur, prev)
			}
			prev = cur
		}
		inf := m[fmt.Sprintf("qmd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"}", endpoint)]
		count := m[fmt.Sprintf("qmd_request_seconds_count{endpoint=%q}", endpoint)]
		if inf < prev {
			t.Errorf("%s: +Inf bucket %v < last bound %v", endpoint, inf, prev)
		}
		if inf != count {
			t.Errorf("%s: +Inf bucket %v != count %v", endpoint, inf, count)
		}
		if count != 3 {
			t.Errorf("%s: count %v, want 3", endpoint, count)
		}
		if sum := m[fmt.Sprintf("qmd_request_seconds_sum{endpoint=%q}", endpoint)]; sum < 0 {
			t.Errorf("%s: negative sum %v", endpoint, sum)
		}
	}
}

// TestAccessLog drives requests through the structured-logging middleware
// and checks each line carries the request id, route, status, duration,
// and the cache hit/miss of requests the artifact cache served.
func TestAccessLog(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 2})
	var buf bytes.Buffer
	logged := httptest.NewServer(AccessLog(
		slog.New(slog.NewJSONHandler(&buf, nil)), svc.Handler()))
	t.Cleanup(logged.Close)

	if code, raw := post(t, logged.URL+"/run", runRequest{Source: sumSquares, PEs: 2}, nil); code != 200 {
		t.Fatalf("run: %d %s", code, raw)
	}
	if code, raw := post(t, logged.URL+"/run", runRequest{Source: sumSquares, PEs: 2}, nil); code != 200 {
		t.Fatalf("run: %d %s", code, raw)
	}
	if code := get(t, logged.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if code, _ := post(t, logged.URL+"/run", runRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed run: %d, want 400", code)
	}

	type line struct {
		Msg      string  `json:"msg"`
		ID       uint64  `json:"id"`
		Route    string  `json:"route"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration"`
		Cache    string  `json:"cache"`
		Level    string  `json:"level"`
	}
	var lines []line
	ids := map[uint64]bool{}
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", raw, err)
		}
		if l.Msg != "request" {
			continue
		}
		if l.ID == 0 || ids[l.ID] {
			t.Errorf("request id %d missing or repeated", l.ID)
		}
		ids[l.ID] = true
		if l.Route == "" || l.Status == 0 {
			t.Errorf("incomplete log line %+v", l)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("logged %d request lines, want 4", len(lines))
	}
	// First run compiles (cache miss), second hits.
	if lines[0].Cache != "miss" || lines[1].Cache != "hit" {
		t.Errorf("cache attrs = %q, %q; want miss, hit", lines[0].Cache, lines[1].Cache)
	}
	if lines[0].Route != "POST /run" || lines[2].Route != "GET /healthz" {
		t.Errorf("routes = %q, %q", lines[0].Route, lines[2].Route)
	}
	// The malformed request logs at warn with its 400.
	if lines[3].Status != http.StatusBadRequest || lines[3].Level != "WARN" {
		t.Errorf("error line = %+v, want status 400 at WARN", lines[3])
	}
}
