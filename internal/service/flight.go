package service

import (
	"context"
	"sync"

	"queuemachine/internal/xtrace"
)

// flightGroup coalesces concurrent identical work (singleflight): while a
// call for a key is in flight, later calls with the same key wait for its
// result instead of executing again. Identical in-flight compiles and
// runs therefore cost one worker, one compile, and one simulation, no
// matter how many users submit the same program at once — the serving
// property the fleet tier is built around.
//
// Unlike a cache, a flight exists only while someone is computing it:
// once the leader's function returns, the key is forgotten and the next
// request starts fresh (and will typically hit the artifact cache the
// flight populated).
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
	// trace is the leader's trace id (possibly empty), recorded so a
	// coalesced follower's join span can point at the trace that did the
	// actual work. Set once at flight creation, read-only after.
	trace xtrace.TraceID
	// waiters counts the requests (leader included) still waiting on the
	// flight; when it reaches zero before completion nobody wants the
	// result and the work's context is cancelled. Guarded by the group mu.
	waiters int
	cancel  context.CancelFunc
}

// do executes fn for key, coalescing with any in-flight call under the
// same key. It returns fn's value and error, plus shared=true when this
// caller joined an existing flight rather than leading one, and the
// leading request's trace id so a traced follower can link its join span
// to the trace that carried the work (empty for an untraced leader).
//
// The work runs under a context detached from any single request's
// cancellation: the leader's deadline bounds it (so a flight can never
// outlive what admission control promised), but the context is cancelled
// early only when every waiter has abandoned the flight. A follower whose
// own request context expires leaves with its ctx error without
// disturbing the flight.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (v any, err error, shared bool, leader xtrace.TraceID) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err, true, f.trace
		case <-ctx.Done():
			g.abandon(f)
			return nil, ctx.Err(), true, f.trace
		}
	}
	f := &flight{done: make(chan struct{}), waiters: 1, trace: xtrace.TraceIDFrom(ctx)}
	// Detach from the leader's cancellation but keep its deadline: a
	// coalesced run must not die because one browser tab closed, yet it
	// must still respect the admission deadline it was started under.
	base := context.WithoutCancel(ctx)
	var callCtx context.Context
	if dl, ok := ctx.Deadline(); ok {
		callCtx, f.cancel = context.WithDeadline(base, dl)
	} else {
		callCtx, f.cancel = context.WithCancel(base)
	}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		v, err := fn(callCtx)
		g.mu.Lock()
		f.val, f.err = v, err
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		f.cancel()
	}()

	select {
	case <-f.done:
		return f.val, f.err, false, f.trace
	case <-ctx.Done():
		g.abandon(f)
		return nil, ctx.Err(), false, f.trace
	}
}

// abandon records that one waiter stopped caring about f's result; the
// last abandonment cancels the underlying work so a flight nobody is
// waiting for aborts between simulator events instead of running to
// completion unobserved.
func (g *flightGroup) abandon(f *flight) {
	g.mu.Lock()
	f.waiters--
	cancel := f.waiters == 0
	g.mu.Unlock()
	if cancel {
		f.cancel()
	}
}

// inFlight reports the number of distinct keys currently executing, for
// /statsz.
func (g *flightGroup) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
