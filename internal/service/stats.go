package service

import (
	"time"

	"queuemachine/internal/profile"
	"queuemachine/internal/sim"
	"queuemachine/internal/trace"
	"queuemachine/internal/xtrace"
)

// RunStats is the machine-readable view of one simulation run, shared by
// the /run endpoint and qsim's -json output so both emit identical
// documents.
type RunStats struct {
	Cycles          int64   `json:"cycles"`
	PEs             int     `json:"pes"`
	Instructions    int64   `json:"instructions"`
	Utilization     float64 `json:"utilization"`
	AvgQueueLength  float64 `json:"avg_queue_length"`
	ContextsCreated int64   `json:"contexts_created"`
	RForks          int64   `json:"rforks"`
	IForks          int64   `json:"iforks"`
	// Scheduler is the scheduling policy the run executed under (the
	// resolved name: empty request fields report "fifo"). Migrations
	// counts contexts placed on a processing element other than their
	// parent's; Steals counts contexts re-homed by a work-stealing
	// dispatch (zero except under the steal policy).
	Scheduler       string `json:"scheduler,omitempty"`
	Migrations      int64  `json:"migrations"`
	Steals          int64  `json:"steals"`
	Switches        int64  `json:"switches"`
	Resumes         int64  `json:"resumes"`
	RolledRegisters int64  `json:"rolled_registers"`
	Rendezvous      int64  `json:"rendezvous"`
	ChanCacheHits   int64  `json:"chan_cache_hits"`
	ChanCacheMisses int64  `json:"chan_cache_misses"`
	ChanCacheEvicts int64  `json:"chan_cache_evictions"`
	RingMessages    int64  `json:"ring_messages"`
	RingWaitCycles  int64  `json:"ring_wait_cycles"`
	MemReads        int64  `json:"mem_reads"`
	MemWrites       int64  `json:"mem_writes"`
	// HostSeconds and HostMIPS report the wall-clock cost of the run on
	// the host and the simulator's throughput in millions of simulated
	// instructions per host second. Present when the producer timed the
	// run (qsim -json, the /run endpoint); unlike every other field they
	// describe the simulator, not the simulated machine, and vary with
	// host load.
	HostSeconds float64 `json:"host_seconds,omitempty"`
	HostMIPS    float64 `json:"host_mips,omitempty"`
	// HostWorkers through HostCrossMessages report the host-parallel
	// engine's own counters, present only when the run used it
	// (host_parallel != 0): worker goroutines, lookahead fill passes,
	// blocking barriers, and ring messages that crossed worker shards.
	// Like HostSeconds they describe the simulator — the simulated
	// statistics above are bit-identical at every worker count.
	HostWorkers       int   `json:"host_workers,omitempty"`
	HostEpochs        int64 `json:"host_epochs,omitempty"`
	HostBarriers      int64 `json:"host_barriers,omitempty"`
	HostCrossMessages int64 `json:"host_cross_messages,omitempty"`
	// Data is the final static data segment, included only on request
	// (it can dwarf the statistics).
	Data []int32 `json:"data,omitempty"`
	// Timeline is the cycle-sampled time series, present only when the run
	// was collected with one (qsim -timeline).
	Timeline *trace.Series `json:"timeline,omitempty"`
	// Profile is the cycle-attribution account and critical path, present
	// only when the run was profiled (qsim -profile, /run profile=true).
	Profile *profile.Profile `json:"profile,omitempty"`
}

// SetHostTime records the run's wall-clock duration and derives the
// host-throughput figure from the instruction count.
func (rs *RunStats) SetHostTime(d time.Duration) {
	rs.HostSeconds = d.Seconds()
	if rs.HostSeconds > 0 {
		rs.HostMIPS = float64(rs.Instructions) / rs.HostSeconds / 1e6
	}
}

// NewRunStats projects a sim.Result into its serving form. The data
// segment rides along only when includeData is set.
func NewRunStats(res *sim.Result, includeData bool) *RunStats {
	rs := &RunStats{
		Cycles:          res.Cycles,
		PEs:             res.NumPEs,
		Instructions:    res.Instructions,
		Utilization:     res.Utilization(),
		AvgQueueLength:  res.AvgQueueLength(),
		ContextsCreated: res.Kernel.ContextsCreated,
		RForks:          res.Kernel.RForks,
		IForks:          res.Kernel.IForks,
		Migrations:      res.Kernel.Migrations,
		Steals:          res.Kernel.Steals,
		Switches:        res.Switches,
		Resumes:         res.Resumes,
		RolledRegisters: res.RolledRegisters,
		Rendezvous:      res.Cache.Rendezvous,
		ChanCacheHits:   res.Cache.Hits,
		ChanCacheMisses: res.Cache.Misses,
		ChanCacheEvicts: res.Cache.Evictions,
		RingMessages:    res.Ring.Messages,
		RingWaitCycles:  res.Ring.WaitCycles,
		MemReads:        res.MemReads,
		MemWrites:       res.MemWrites,
	}
	if res.Host.Workers > 0 {
		rs.HostWorkers = res.Host.Workers
		rs.HostEpochs = res.Host.Epochs
		rs.HostBarriers = res.Host.Barriers
		rs.HostCrossMessages = res.Host.CrossMessages
	}
	if includeData {
		rs.Data = res.Data
	}
	return rs
}

// ServiceStats is the /statsz document.
type ServiceStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Compiles      int64   `json:"compiles"`
	Runs          int64   `json:"runs"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	Workers       int     `json:"workers"`
	InFlight      int64   `json:"in_flight"`
	Queued        int     `json:"queued"`
	QueueCapacity int     `json:"queue_capacity"`
	// CyclesServed and InstructionsServed total the simulated cycles and
	// instructions of every successful /run.
	CyclesServed       int64 `json:"cycles_served"`
	InstructionsServed int64 `json:"instructions_served"`
	// SimSeconds is the cumulative wall-clock time workers spent inside the
	// simulator, and HostMIPS the service-lifetime average simulator
	// throughput (million simulated instructions per host second).
	SimSeconds float64    `json:"sim_seconds"`
	HostMIPS   float64    `json:"host_mips"`
	Cache      CacheStats `json:"cache"`
	// CoalescedCompiles and CoalescedRuns count requests answered by
	// joining another request's in-flight execution (singleflight). A
	// coalesced follower is never counted as a cache hit or miss — it
	// never consulted the artifact cache. FlightsInFlight is the number of
	// distinct executions currently coalescing.
	CoalescedCompiles int64 `json:"coalesced_compiles"`
	CoalescedRuns     int64 `json:"coalesced_runs"`
	FlightsInFlight   int   `json:"flights_in_flight"`
	// Disk reports the persistent artifact tier, present only when the
	// service was configured with a cache directory.
	Disk *DiskStats `json:"disk_cache,omitempty"`
	// Peer reports the peer-fetch tier, present only when the service is
	// part of a fleet.
	Peer *PeerStats `json:"peer,omitempty"`
	// CycleCauses totals the cycle attribution of every profiled run
	// (profile=true), keyed by cause. Processing-element causes are
	// PE-cycles (they sum to PEs × makespan per run); message-processor and
	// ring causes are those lanes' busy cycles. Empty until a profiled run
	// completes.
	CycleCauses map[string]int64 `json:"cycle_causes,omitempty"`
	// SchedRuns counts successful runs by resolved scheduling policy;
	// SchedMigrations and SchedSteals total those runs' cross-element
	// placements and work-stealing dispatches.
	SchedRuns       map[string]int64 `json:"sched_runs,omitempty"`
	SchedMigrations int64            `json:"sched_migrations"`
	SchedSteals     int64            `json:"sched_steals"`
	// HostParRuns through HostParCrossMessages total the host-parallel
	// engine's counters across successful runs that used it: run count,
	// lookahead fill passes, blocking barriers, and ring messages that
	// crossed worker shards.
	HostParRuns          int64 `json:"hostpar_runs"`
	HostParEpochs        int64 `json:"hostpar_epochs"`
	HostParBarriers      int64 `json:"hostpar_barriers"`
	HostParCrossMessages int64 `json:"hostpar_cross_messages"`
	// SLOs reports each declared objective's burn state, present only when
	// the service was configured with objectives.
	SLOs []xtrace.SLOStatus `json:"slos,omitempty"`
	// Traces reports the flight recorder behind /debugz/traces.
	Traces xtrace.RecorderStats `json:"traces"`
}

// PeerStats is the /statsz view of the peer artifact tier: this
// replica's identity, the ring membership, and how its outbound peer
// fetches fared (a fetch that errors degrades to a local compile).
type PeerStats struct {
	Self    string   `json:"self"`
	Peers   []string `json:"peers"`
	Fetches int64    `json:"fetches"`
	Hits    int64    `json:"hits"`
	Errors  int64    `json:"errors"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	simSecs := time.Duration(s.simNanos.Load()).Seconds()
	instrs := s.instrsServed.Load()
	var mips float64
	if simSecs > 0 {
		mips = float64(instrs) / simSecs / 1e6
	}
	return ServiceStats{
		UptimeSeconds:        time.Since(s.start).Seconds(),
		Draining:             s.draining.Load(),
		Compiles:             s.compiles.Load(),
		Runs:                 s.runs.Load(),
		Rejected:             s.rejected.Load(),
		Errors:               s.fails.Load(),
		Workers:              s.cfg.Workers,
		InFlight:             s.pool.inFlight.Load(),
		Queued:               s.pool.queued(),
		QueueCapacity:        s.pool.capacity(),
		CyclesServed:         s.cyclesServed.Load(),
		InstructionsServed:   instrs,
		SimSeconds:           simSecs,
		HostMIPS:             mips,
		Cache:                s.cache.stats(),
		CoalescedCompiles:    s.coalescedCompiles.Load(),
		CoalescedRuns:        s.coalescedRuns.Load(),
		FlightsInFlight:      s.flights.inFlight(),
		Disk:                 s.diskSnapshot(),
		Peer:                 s.peerSnapshot(),
		CycleCauses:          s.causeSnapshot(),
		SchedRuns:            s.schedSnapshot(),
		SchedMigrations:      s.schedMigrations.Load(),
		SchedSteals:          s.schedSteals.Load(),
		HostParRuns:          s.hostparRuns.Load(),
		HostParEpochs:        s.hostparEpochs.Load(),
		HostParBarriers:      s.hostparBarriers.Load(),
		HostParCrossMessages: s.hostparCrossMsgs.Load(),
		SLOs:                 s.slo.Snapshot(),
		Traces:               s.traces.Stats(),
	}
}

func (s *Service) diskSnapshot() *DiskStats {
	if s.disk == nil {
		return nil
	}
	st := s.disk.stats()
	return &st
}

func (s *Service) peerSnapshot() *PeerStats {
	if s.ring == nil {
		return nil
	}
	return &PeerStats{
		Self:    s.self,
		Peers:   s.ring.Nodes(),
		Fetches: s.peerFetches.Load(),
		Hits:    s.peerHits.Load(),
		Errors:  s.peerErrors.Load(),
	}
}

// recordSched accounts one successful run's scheduling activity.
func (s *Service) recordSched(policy string, migrations, steals int64) {
	s.schedMigrations.Add(migrations)
	s.schedSteals.Add(steals)
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if s.schedRuns == nil {
		s.schedRuns = make(map[string]int64)
	}
	s.schedRuns[policy]++
}

func (s *Service) schedSnapshot() map[string]int64 {
	s.schedMu.Lock()
	defer s.schedMu.Unlock()
	if len(s.schedRuns) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.schedRuns))
	for k, v := range s.schedRuns {
		out[k] = v
	}
	return out
}

// recordCauses folds one profiled run's attribution into the cumulative
// per-cause totals /statsz and /metrics expose.
func (s *Service) recordCauses(p *profile.Profile) {
	s.causeMu.Lock()
	defer s.causeMu.Unlock()
	if s.causeCycles == nil {
		s.causeCycles = make(map[string]int64)
	}
	for _, m := range []map[string]int64{p.Causes, p.MP, p.Ring} {
		for cause, v := range m {
			s.causeCycles[cause] += v
		}
	}
}

func (s *Service) causeSnapshot() map[string]int64 {
	s.causeMu.Lock()
	defer s.causeMu.Unlock()
	if len(s.causeCycles) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.causeCycles))
	for k, v := range s.causeCycles {
		out[k] = v
	}
	return out
}
