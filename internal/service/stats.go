package service

import (
	"time"

	"queuemachine/internal/sim"
	"queuemachine/internal/trace"
)

// RunStats is the machine-readable view of one simulation run, shared by
// the /run endpoint and qsim's -json output so both emit identical
// documents.
type RunStats struct {
	Cycles          int64   `json:"cycles"`
	PEs             int     `json:"pes"`
	Instructions    int64   `json:"instructions"`
	Utilization     float64 `json:"utilization"`
	AvgQueueLength  float64 `json:"avg_queue_length"`
	ContextsCreated int64   `json:"contexts_created"`
	RForks          int64   `json:"rforks"`
	IForks          int64   `json:"iforks"`
	Switches        int64   `json:"switches"`
	Resumes         int64   `json:"resumes"`
	RolledRegisters int64   `json:"rolled_registers"`
	Rendezvous      int64   `json:"rendezvous"`
	ChanCacheHits   int64   `json:"chan_cache_hits"`
	ChanCacheMisses int64   `json:"chan_cache_misses"`
	ChanCacheEvicts int64   `json:"chan_cache_evictions"`
	RingMessages    int64   `json:"ring_messages"`
	RingWaitCycles  int64   `json:"ring_wait_cycles"`
	MemReads        int64   `json:"mem_reads"`
	MemWrites       int64   `json:"mem_writes"`
	// Data is the final static data segment, included only on request
	// (it can dwarf the statistics).
	Data []int32 `json:"data,omitempty"`
	// Timeline is the cycle-sampled time series, present only when the run
	// was collected with one (qsim -timeline).
	Timeline *trace.Series `json:"timeline,omitempty"`
}

// NewRunStats projects a sim.Result into its serving form. The data
// segment rides along only when includeData is set.
func NewRunStats(res *sim.Result, includeData bool) *RunStats {
	rs := &RunStats{
		Cycles:          res.Cycles,
		PEs:             res.NumPEs,
		Instructions:    res.Instructions,
		Utilization:     res.Utilization(),
		AvgQueueLength:  res.AvgQueueLength(),
		ContextsCreated: res.Kernel.ContextsCreated,
		RForks:          res.Kernel.RForks,
		IForks:          res.Kernel.IForks,
		Switches:        res.Switches,
		Resumes:         res.Resumes,
		RolledRegisters: res.RolledRegisters,
		Rendezvous:      res.Cache.Rendezvous,
		ChanCacheHits:   res.Cache.Hits,
		ChanCacheMisses: res.Cache.Misses,
		ChanCacheEvicts: res.Cache.Evictions,
		RingMessages:    res.Ring.Messages,
		RingWaitCycles:  res.Ring.WaitCycles,
		MemReads:        res.MemReads,
		MemWrites:       res.MemWrites,
	}
	if includeData {
		rs.Data = res.Data
	}
	return rs
}

// ServiceStats is the /statsz document.
type ServiceStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Compiles      int64   `json:"compiles"`
	Runs          int64   `json:"runs"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	Workers       int     `json:"workers"`
	InFlight      int64   `json:"in_flight"`
	Queued        int     `json:"queued"`
	QueueCapacity int     `json:"queue_capacity"`
	// CyclesServed totals the simulated cycles of every successful /run.
	CyclesServed int64      `json:"cycles_served"`
	Cache        CacheStats `json:"cache"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.draining.Load(),
		Compiles:      s.compiles.Load(),
		Runs:          s.runs.Load(),
		Rejected:      s.rejected.Load(),
		Errors:        s.fails.Load(),
		Workers:       s.cfg.Workers,
		InFlight:      s.pool.inFlight.Load(),
		Queued:        s.pool.queued(),
		QueueCapacity: s.pool.capacity(),
		CyclesServed:  s.cyclesServed.Load(),
		Cache:         s.cache.stats(),
	}
}
