// Package service turns the one-shot compile-and-simulate pipeline into a
// long-running serving layer: an HTTP/JSON API over the OCCAM compiler and
// the Chapter 6 multiprocessor simulator with a content-addressed artifact
// cache, a fixed worker pool behind a bounded admission queue, per-request
// deadlines, and graceful drain on shutdown.
//
// Endpoints:
//
//	POST /compile   OCCAM source → object program (cached by fingerprint)
//	POST /run       source or object → full simulation statistics
//	GET  /healthz   liveness (503 while draining)
//	GET  /statsz    service, queue, and cache counters (JSON)
//	GET  /metrics   the same counters in Prometheus text format, plus
//	                per-endpoint latency histograms
//	GET  /debugz/traces  the flight recorder: recently completed request
//	                traces plus retained slow/error outliers (JSON, or
//	                Chrome trace-event format with ?id=T&format=chrome)
//	GET  /debug/pprof/*  runtime profiles, only when Config.EnablePprof
//
// Compiled artifacts are keyed by compile.Fingerprint — the SHA-256 of
// (source, options) — so a repeated compile of identical source is served
// from the in-memory LRU without touching the compiler. Overload is
// explicit: when the admission queue is full the service answers 429 with
// a Retry-After header instead of queueing unbounded work, and every job
// runs under a deadline wired through sim.RunContext so a cancelled or
// expired request aborts the event loop between events.
package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"queuemachine/internal/fleet"
	"queuemachine/internal/sim"
	"queuemachine/internal/xtrace"
)

// Config sizes the service. The zero value is usable: every field falls
// back to the default noted on it.
type Config struct {
	// Workers is the number of concurrent compile/simulate workers
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue of jobs waiting for a worker;
	// beyond it requests are rejected with 429 (default: 4×Workers).
	QueueDepth int
	// CacheEntries is the artifact cache capacity (default: 128).
	CacheEntries int
	// MaxBodyBytes bounds request bodies (default: 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline when the request does not
	// name one (default: 30s). MaxTimeout caps client-requested deadlines
	// (default: 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxPEs caps the simulated machine size a request may ask for
	// (default: 1024).
	MaxPEs int
	// Sim is the base machine configuration; request params overlay it
	// (default: sim.DefaultParams()).
	Sim *sim.Params
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiles expose internals and cost CPU while sampling.
	EnablePprof bool
	// CacheDir persists compiled artifacts to disk (content-addressed by
	// fingerprint, versioned by the compiler toolchain hash) so restarts
	// warm from disk instead of stampeding the compiler. Empty disables
	// persistence.
	CacheDir string
	// Self and Peers configure the peer-aware artifact tier: Peers is the
	// full replica set (Self included) sharing a consistent-hash ring
	// keyed by fingerprint, and Self is this replica's own base URL. A
	// replica that misses its memory and disk caches asks the owning peer
	// to compile before compiling itself, groupcache-style, so one
	// artifact is compiled once per fleet, not once per replica. Empty
	// Peers disables peering.
	Self  string
	Peers []string
	// PeerTimeout bounds each peer artifact fetch (default: 10s). A slow
	// or dead peer degrades to a local compile, never to a failed request.
	PeerTimeout time.Duration
	// Process names this replica in distributed traces — the process lane
	// a span renders under in a stitched view (default: "qmd"; cmd/qmd
	// sets it to the replica's own base URL when one is configured).
	Process string
	// TraceCapacity sizes the flight recorder's ring of recent traces and
	// TraceSlow its slow-outlier threshold; zero takes the recorder
	// defaults (256 traces, 1s). Tracing itself needs no enabling: a
	// request is traced when it arrives with an X-Qmd-Trace header, and an
	// untraced request pays one header lookup.
	TraceCapacity int
	TraceSlow     time.Duration
	// SLOs declares per-route latency objectives ("run" and "compile" are
	// the route names); burn-rate counters appear in /statsz and /metrics.
	// Empty disables SLO tracking entirely.
	SLOs []xtrace.Objective
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxPEs <= 0 {
		c.MaxPEs = 1024
	}
	if c.Sim == nil {
		p := sim.DefaultParams()
		c.Sim = &p
	}
	if c.Process == "" {
		c.Process = "qmd"
	}
	return c
}

// Service is one compile-and-simulate server instance.
type Service struct {
	cfg     Config
	cache   *artifactCache
	disk    *diskCache  // nil without Config.CacheDir
	ring    *fleet.Ring // nil without Config.Peers
	peers   *fleet.Client
	self    string
	pool    *pool
	flights flightGroup // singleflight over identical compiles and runs
	mux     *http.ServeMux
	start   time.Time
	latency map[string]*histogram // per-endpoint request latency
	tracer  *xtrace.Tracer
	traces  *xtrace.Recorder
	slo     *xtrace.SLOTracker // nil without Config.SLOs

	draining                        atomic.Bool
	compiles, runs, rejected, fails atomic.Int64
	cyclesServed, instrsServed      atomic.Int64
	simNanos                        atomic.Int64 // wall-clock ns spent inside sim.RunContext

	// Coalescing and peer-tier counters. A coalesced follower shares a
	// leader's execution; it is counted here and never as an artifact
	// cache hit (the follower never consulted the cache).
	coalescedCompiles, coalescedRuns  atomic.Int64
	peerFetches, peerHits, peerErrors atomic.Int64

	// causeCycles accumulates the cycle attribution of profiled runs,
	// keyed by cause name. Profiled runs are the rare case, so a mutex
	// beats pre-sizing an atomic slot per cause.
	causeMu     sync.Mutex
	causeCycles map[string]int64

	// schedRuns counts successful runs by resolved scheduling policy;
	// the totals feed the /statsz policy breakdown and the
	// qmd_sched_*_total metrics.
	schedMu                      sync.Mutex
	schedRuns                    map[string]int64
	schedMigrations, schedSteals atomic.Int64

	// Host-parallel engine totals across successful runs that used it:
	// run count, lookahead fill passes, blocking barriers, and ring
	// messages crossing worker shards.
	hostparRuns, hostparEpochs        atomic.Int64
	hostparBarriers, hostparCrossMsgs atomic.Int64
}

// New builds a service; it is ready to serve as soon as its Handler is
// mounted. It fails only on invalid fleet configuration or an unusable
// artifact cache directory.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		cache: newArtifactCache(cfg.CacheEntries),
		pool:  newPool(cfg.Workers, cfg.QueueDepth),
		mux:   http.NewServeMux(),
		start: time.Now(),
		latency: map[string]*histogram{
			"compile": newHistogram(latencyBuckets),
			"run":     newHistogram(latencyBuckets),
		},
		traces: xtrace.NewRecorder(xtrace.RecorderConfig{
			Capacity:      cfg.TraceCapacity,
			SlowThreshold: cfg.TraceSlow,
		}),
		slo: xtrace.NewSLOTracker(cfg.SLOs),
	}
	s.tracer = xtrace.NewTracer(cfg.Process, s.traces)
	if cfg.CacheDir != "" {
		disk, err := openDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.disk = disk
	}
	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, fmt.Errorf("service: Peers configured without Self")
		}
		s.ring = fleet.NewRing(cfg.Peers, 0)
		if !s.ring.Contains(cfg.Self) {
			return nil, fmt.Errorf("service: Self %q is not in the peer list", cfg.Self)
		}
		s.self = cfg.Self
		s.peers = fleet.NewClient(cfg.PeerTimeout)
	}
	s.mux.HandleFunc("POST /compile", s.handleCompile)
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debugz/traces", s.traces.ServeHTTP)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler is the service's HTTP interface. Handlers run behind a recover
// barrier: whatever bytes arrive, the answer is a structured 4xx document,
// never a dropped connection — panics on the worker pool are caught
// separately in execute.
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil && rec != http.ErrAbortHandler {
				s.fails.Add(1)
				doc := map[string]string{"error": fmt.Sprintf("request rejected: %v", rec)}
				if id := r.Header.Get(xtrace.TraceHeader); id != "" {
					doc["trace"] = id
				}
				// Best effort: if the handler already wrote a header this
				// is a no-op on the status line.
				writeJSON(w, http.StatusBadRequest, doc)
			}
		}()
		if s.slo == nil {
			s.mux.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		s.mux.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		// Routes are named without the slash ("run", "compile"); the
		// tracker ignores routes without a declared objective.
		s.slo.Observe(strings.TrimPrefix(r.URL.Path, "/"), time.Since(start), status)
	})
}

// Shutdown stops admitting work and drains in-flight jobs, waiting up to
// ctx's deadline. New requests are answered 503 immediately.
func (s *Service) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.shutdown(ctx)
}

// execute runs f on a pool worker, enforcing admission control and the
// request deadline. It returns errBusy when the queue is full and ctx's
// error when the deadline fires first (the worker's sim aborts through the
// same context).
func (s *Service) execute(ctx context.Context, f func(context.Context) (any, error)) (any, error) {
	type outcome struct {
		v   any
		err error
	}
	ch := make(chan outcome, 1)
	// The span covers the time between submission and a worker picking the
	// job up — on a loaded service this is where latency hides.
	_, wait := xtrace.StartSpan(ctx, "queue.wait")
	err := s.pool.submit(func() {
		wait.End()
		// The request may have expired while queued; don't start work
		// nobody is waiting for.
		if err := ctx.Err(); err != nil {
			ch <- outcome{nil, err}
			return
		}
		// A panic here is on a pool worker goroutine: unrecovered it takes
		// the whole process down, and it is almost always a property of the
		// submitted program, so answer it like any other rejected input.
		v, err := func() (v any, err error) {
			defer func() {
				if r := recover(); r != nil {
					err = &httpError{http.StatusUnprocessableEntity,
						fmt.Sprintf("program rejected: %v", r)}
				}
			}()
			return f(ctx)
		}()
		ch <- outcome{v, err}
	})
	if err != nil {
		wait.EndErr(err)
		return nil, err
	}
	select {
	case o := <-ch:
		return o.v, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deadline resolves a request's timeout in milliseconds (0 = default)
// against the configured default and ceiling.
func (s *Service) deadline(timeoutMS int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return min(d, s.cfg.MaxTimeout)
}
