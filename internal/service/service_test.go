package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/sim"
)

// sumSquares computes 1²+…+10² = 385 in a while loop spliced across
// dynamic contexts; it runs on any machine size.
const sumSquares = `var v[1], sum, k:
seq
  sum := 0
  k := 1
  while k <= 10
    seq
      sum := sum + (k * k)
      k := k + 1
  v[0] := sum
`

// spin never terminates; only a deadline can stop it.
const spin = `var v[1], k:
seq
  k := 0
  while k >= 0
    k := k + 1
`

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// post sends body as JSON and decodes the response into out (when out is
// non-nil), returning the status code and raw body.
func post(t *testing.T, url string, body, out any) (int, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// errorBody asserts the structured {"error": ...} shape.
func errorBody(t *testing.T, raw []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Fatalf("response %q is not a structured error", raw)
	}
	return e.Error
}

func TestCompileEndpointCaches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var first, second compileResponse
	if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, &first); code != 200 {
		t.Fatalf("first compile: %d %s", code, raw)
	}
	if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, &second); code != 200 {
		t.Fatalf("second compile: %d %s", code, raw)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags = %t, %t; want false, true", first.Cached, second.Cached)
	}
	if first.Fingerprint != second.Fingerprint || len(first.Fingerprint) != 64 {
		t.Errorf("fingerprints %q vs %q", first.Fingerprint, second.Fingerprint)
	}
	if first.Object == nil || first.Graphs == 0 {
		t.Errorf("compile response missing object: %+v", first)
	}
	// Different options must compile (and cache) separately.
	var opt compileResponse
	req := compileRequest{Source: sumSquares, Options: compileOptions{NoConstFold: true}}
	if code, raw := post(t, ts.URL+"/compile", req, &opt); code != 200 {
		t.Fatalf("options compile: %d %s", code, raw)
	}
	if opt.Cached || opt.Fingerprint == first.Fingerprint {
		t.Error("option change did not miss the cache")
	}
}

func TestRunEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	art, err := compile.Compile(sumSquares, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for i, pes := range []int{1, 4} {
		direct, err := sim.Run(art.Object, pes, sim.DefaultParams())
		if err != nil {
			t.Fatalf("sim.Run(%d PEs): %v", pes, err)
		}
		var got runResponse
		req := runRequest{Source: sumSquares, PEs: pes, DumpData: true}
		if code, raw := post(t, ts.URL+"/run", req, &got); code != 200 {
			t.Fatalf("run %d PEs: %d %s", pes, code, raw)
		}
		if got.Stats.Cycles != direct.Cycles || got.Stats.Instructions != direct.Instructions {
			t.Errorf("%d PEs: served (%d cycles, %d instr) != direct (%d, %d)",
				pes, got.Stats.Cycles, got.Stats.Instructions, direct.Cycles, direct.Instructions)
		}
		base, err := art.VectorBase("v")
		if err != nil {
			t.Fatalf("VectorBase: %v", err)
		}
		if v := got.Stats.Data[base/4]; v != 385 {
			t.Errorf("%d PEs: v[0] = %d, want 385", pes, v)
		}
		if got.Cached != (i > 0) {
			t.Errorf("%d PEs: cached = %t", pes, got.Cached)
		}
	}
	// First run misses and compiles; the second is served from the cache.
	if st := svc.cache.stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestRunSuppliedObject(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var comp compileResponse
	if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, &comp); code != 200 {
		t.Fatalf("compile: %d %s", code, raw)
	}
	direct, err := sim.Run(comp.Object, 2, sim.DefaultParams())
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	var got runResponse
	if code, raw := post(t, ts.URL+"/run", runRequest{Object: comp.Object, PEs: 2}, &got); code != 200 {
		t.Fatalf("run object: %d %s", code, raw)
	}
	if got.Stats.Cycles != direct.Cycles {
		t.Errorf("object run cycles = %d, want %d", got.Stats.Cycles, direct.Cycles)
	}
	if got.Fingerprint != "" || got.Cached {
		t.Errorf("object run should not report compile caching: %+v", got)
	}
}

func TestRunParamsOverlay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// An absurdly low instruction watchdog must trip — proof the overlay
	// reached the simulator while unnamed fields kept their defaults.
	req := runRequest{Source: sumSquares, Params: json.RawMessage(`{"MaxInstructions": 5}`)}
	code, raw := post(t, ts.URL+"/run", req, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("watchdog run: %d %s", code, raw)
	}
	if msg := errorBody(t, raw); !strings.Contains(msg, "instructions") {
		t.Errorf("error = %q", msg)
	}
}

func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	done := make(chan struct{})
	var code int
	var raw []byte
	go func() {
		defer close(done)
		code, raw = post(t, ts.URL+"/run", runRequest{Source: spin, TimeoutMS: 1}, nil)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadline request hung")
	}
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline run: %d %s", code, raw)
	}
	if msg := errorBody(t, raw); !strings.Contains(msg, "deadline") {
		t.Errorf("error = %q", msg)
	}
}

func TestBackpressure(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	if err := svc.pool.submit(func() { close(started); <-block }); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	if err := svc.pool.submit(func() {}); err != nil {
		t.Fatalf("fill queue: %v", err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"source": "var v[1]:\nseq\n  v[0] := 1\n"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded run: %d %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	errorBody(t, raw)
	close(block)
	// With the worker free again the same request must succeed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := post(t, ts.URL+"/run", runRequest{Source: "var v[1]:\nseq\n  v[0] := 1\n"}, nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered: last status %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := svc.Stats(); st.Rejected == 0 {
		t.Errorf("rejected counter = %d", st.Rejected)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	req := compileRequest{Source: strings.Repeat("-- padding\n", 200)}
	code, raw := post(t, ts.URL+"/compile", req, nil)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d %s", code, raw)
	}
	errorBody(t, raw)
}

func TestCompileFailureIsStructured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, url := range []string{"/compile", "/run"} {
		code, raw := post(t, ts.URL+url, compileRequest{Source: "seq\n  undeclared := 1\n"}, nil)
		if code != http.StatusUnprocessableEntity {
			t.Errorf("%s bad source: %d %s", url, code, raw)
			continue
		}
		errorBody(t, raw)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		url  string
		body string
	}{
		{"/compile", `{}`},                                  // missing source
		{"/compile", `{"sauce": "typo"}`},                   // unknown field
		{"/run", `{}`},                                      // neither source nor object
		{"/run", `{"source": "x", "object": {}}`},           // both
		{"/run", `{"source": "x", "pes": -3}`},              // bad machine size
		{"/run", `{"source": "x", "params": {"Bogus": 1}}`}, // unknown param
		{"/run", `not json`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.url, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("POST %s: %v", tc.url, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s: status %d %s", tc.url, tc.body, resp.StatusCode, raw)
			continue
		}
		errorBody(t, raw)
	}
}

func TestStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, nil)
	post(t, ts.URL+"/run", runRequest{Source: sumSquares}, nil)
	var st ServiceStats
	if code := get(t, ts.URL+"/statsz", &st); code != 200 {
		t.Fatalf("statsz: %d", code)
	}
	if st.Compiles != 1 || st.Runs != 1 || st.Workers != 3 {
		t.Errorf("statsz = %+v", st)
	}
	if st.Cache.Entries != 1 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v", st.Cache)
	}
}

func TestGracefulShutdown(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	if code := get(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	block := make(chan struct{})
	started := make(chan struct{})
	if err := svc.pool.submit(func() { close(started); <-block }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- svc.Shutdown(ctx)
	}()
	// Draining flips synchronously at the top of Shutdown; poll briefly
	// for the goroutine to get there.
	deadline := time.Now().Add(5 * time.Second)
	for get(t, ts.URL+"/healthz", nil) != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := post(t, ts.URL+"/run", runRequest{Source: sumSquares}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("run while draining: %d", code)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned %v before in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(block) // let the in-flight job complete
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned")
	}
	if err := svc.pool.submit(func() {}); err != errClosed {
		t.Errorf("submit after shutdown = %v, want errClosed", err)
	}
}

func TestConcurrentRuns(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			var got runResponse
			req := runRequest{Source: sumSquares, PEs: 1 + i%4}
			code, raw := post(t, ts.URL+"/run", req, &got)
			if code != 200 {
				errs <- fmt.Errorf("run %d: %d %s", i, code, raw)
				return
			}
			if got.Stats.Cycles <= 0 {
				errs <- fmt.Errorf("run %d: zero cycles", i)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if st := svc.cache.stats(); st.Entries != 1 {
		t.Errorf("cache entries = %d, want 1 (all runs share one artifact)", st.Entries)
	}
}
