package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"queuemachine/internal/compile"
)

// swappableServer is an httptest server whose handler can be installed
// after construction — needed because a fleet service's peer list must
// contain its own URL, which only exists once the server is listening.
type swappableServer struct {
	ts *httptest.Server
	h  atomic.Value // http.Handler
}

func newSwappableServer(t *testing.T) *swappableServer {
	t.Helper()
	s := &swappableServer{}
	s.h.Store(http.Handler(http.NotFoundHandler()))
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.h.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *swappableServer) URL() string        { return s.ts.URL }
func (s *swappableServer) Set(h http.Handler) { s.h.Store(h) }

func TestDiskCacheRoundTrip(t *testing.T) {
	d, err := openDiskCache(t.TempDir())
	if err != nil {
		t.Fatalf("openDiskCache: %v", err)
	}
	art := compileFor(t, 7)
	const fp = "abc123"
	if _, ok := d.get(fp); ok {
		t.Fatal("hit on empty disk cache")
	}
	d.put(fp, art)
	got, ok := d.get(fp)
	if !ok {
		t.Fatal("artifact not readable back")
	}
	want, _ := json.Marshal(art.Object)
	have, _ := json.Marshal(got.Object)
	if string(want) != string(have) {
		t.Error("object changed through disk round trip")
	}
	st := d.stats()
	if st.Writes != 1 || st.Hits != 1 || st.Errors != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskCacheRejectsCorruptAndStale(t *testing.T) {
	d, err := openDiskCache(t.TempDir())
	if err != nil {
		t.Fatalf("openDiskCache: %v", err)
	}
	art := compileFor(t, 1)

	// Corrupt JSON fails once, then the file is gone.
	if err := os.WriteFile(d.path("bad"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.get("bad"); ok {
		t.Error("corrupt file served as artifact")
	}
	if _, err := os.Stat(d.path("bad")); !os.IsNotExist(err) {
		t.Error("corrupt file not removed")
	}

	// A stale toolchain version is rejected even in the right directory.
	blob, _ := json.Marshal(diskArtifact{
		Toolchain:   "queuemachine/old-toolchain",
		Fingerprint: "stale",
		Object:      art.Object,
	})
	if err := os.WriteFile(d.path("stale"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.get("stale"); ok {
		t.Error("stale-toolchain artifact served")
	}

	// A file whose embedded fingerprint disagrees with its name (copied
	// or renamed by hand) is rejected too.
	blob, _ = json.Marshal(diskArtifact{
		Toolchain:   compile.ToolchainHash(),
		Fingerprint: "other",
		Object:      art.Object,
	})
	if err := os.WriteFile(d.path("mismatch"), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.get("mismatch"); ok {
		t.Error("fingerprint-mismatched artifact served")
	}
	if st := d.stats(); st.Errors != 3 {
		t.Errorf("errors = %d, want 3", st.Errors)
	}
}

func TestDiskCacheSweepsTemporaries(t *testing.T) {
	root := t.TempDir()
	d, err := openDiskCache(root)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer, then reopen.
	tmp := filepath.Join(d.dir, "tmp-12345")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openDiskCache(root); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover temporary not swept at open")
	}
}

// TestRestartWarmsFromDisk is the end-to-end restart story: a fresh
// service instance pointed at the same cache directory serves a compile
// from disk — no recompilation — and reports it as a "disk" cache state.
func TestRestartWarmsFromDisk(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{CacheDir: dir})
	var first compileResponse
	status, raw := post(t, ts1.URL+"/compile", map[string]any{"source": sumSquares}, &first)
	if status != http.StatusOK {
		t.Fatalf("compile: status %d: %s", status, raw)
	}
	if first.CacheState != cacheStateMiss {
		t.Fatalf("first compile cache = %q, want %q", first.CacheState, cacheStateMiss)
	}

	// "Restart": a brand-new service over the same directory.
	svc2, ts2 := newTestServer(t, Config{CacheDir: dir})
	var second compileResponse
	status, raw = post(t, ts2.URL+"/compile", map[string]any{"source": sumSquares}, &second)
	if status != http.StatusOK {
		t.Fatalf("compile after restart: status %d: %s", status, raw)
	}
	if second.CacheState != cacheStateDisk {
		t.Errorf("post-restart compile cache = %q, want %q", second.CacheState, cacheStateDisk)
	}
	if !second.Cached {
		t.Error("post-restart compile not reported as cached")
	}
	if first.Fingerprint != second.Fingerprint {
		t.Error("fingerprint changed across restart")
	}
	wantObj, _ := json.Marshal(first.Object)
	gotObj, _ := json.Marshal(second.Object)
	if string(wantObj) != string(gotObj) {
		t.Error("object changed across restart")
	}
	// The disk load warmed the memory tier: the next request is a plain
	// memory hit.
	var third compileResponse
	status, _ = post(t, ts2.URL+"/compile", map[string]any{"source": sumSquares}, &third)
	if status != http.StatusOK || third.CacheState != cacheStateHit {
		t.Errorf("third compile = %d/%q, want 200/%q", status, third.CacheState, cacheStateHit)
	}
	if st := svc2.disk.stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", st.Hits)
	}
	// Runs warm from disk too: a fresh third instance executes the
	// program without compiling.
	svc3, ts3 := newTestServer(t, Config{CacheDir: dir})
	var run runResponse
	status, raw = post(t, ts3.URL+"/run", map[string]any{"source": sumSquares, "pes": 2}, &run)
	if status != http.StatusOK {
		t.Fatalf("run after restart: status %d: %s", status, raw)
	}
	if run.CacheState != cacheStateDisk {
		t.Errorf("post-restart run cache = %q, want %q", run.CacheState, cacheStateDisk)
	}
	if st := svc3.disk.stats(); st.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", st.Hits)
	}
}

// TestPeerFetchThroughFleet wires two real service instances into a
// two-replica fleet and drives a compile to the non-owner: it must fetch
// the artifact from the owner (cache state "peer") rather than compile,
// and the owner must answer without re-forwarding.
func TestPeerFetchThroughFleet(t *testing.T) {
	// Build both replicas first with placeholder peer lists is not
	// possible — the ring is fixed at construction — so allocate the
	// servers, then the services, then swap handlers in.
	srvA := newSwappableServer(t)
	srvB := newSwappableServer(t)
	peers := []string{srvA.URL(), srvB.URL()}

	svcA, err := New(Config{Workers: 2, Self: srvA.URL(), Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := New(Config{Workers: 2, Self: srvB.URL(), Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	srvA.Set(svcA.Handler())
	srvB.Set(svcB.Handler())

	// Find a source owned by A on the ring (both replicas agree: same
	// member list, same hash).
	var src string
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no source owned by replica A")
		}
		candidate := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", i)
		fp := compile.Fingerprint(candidate, compile.Options{})
		if svcA.ring.Owner(fp) == srvA.URL() {
			src = candidate
			break
		}
	}

	// Compile on B: B is not the owner, so it fetches from A.
	var resp compileResponse
	status, raw := post(t, srvB.URL()+"/compile", map[string]any{"source": src}, &resp)
	if status != http.StatusOK {
		t.Fatalf("compile via B: status %d: %s", status, raw)
	}
	if resp.CacheState != cacheStatePeer {
		t.Errorf("cache state via B = %q, want %q", resp.CacheState, cacheStatePeer)
	}
	if svcB.peerHits.Load() != 1 {
		t.Errorf("B peer hits = %d, want 1", svcB.peerHits.Load())
	}
	// A compiled it locally (the peer-marked request is never
	// re-forwarded) and now owns it in memory.
	if svcA.cache.stats().Misses != 1 {
		t.Errorf("A cache misses = %d, want 1", svcA.cache.stats().Misses)
	}
	// B's copy is cached in memory now: repeating on B is a local hit.
	status, _ = post(t, srvB.URL()+"/compile", map[string]any{"source": src}, &resp)
	if status != http.StatusOK || resp.CacheState != cacheStateHit {
		t.Errorf("repeat via B = %d/%q, want 200/hit", status, resp.CacheState)
	}
}
