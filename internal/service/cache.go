package service

import (
	"container/list"
	"sync"

	"queuemachine/internal/compile"
)

// CacheStats is a point-in-time snapshot of the artifact cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
}

// artifactCache is a content-addressed LRU of compiled artifacts, keyed by
// compile.Fingerprint. Artifacts are immutable after compilation and the
// simulator only reads them, so one cached entry can back any number of
// concurrent runs.
type artifactCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recently used
	items map[string]*list.Element // fingerprint → element holding *cacheEntry

	hits, misses, evictions int64
}

type cacheEntry struct {
	key string
	art *compile.Artifact
}

func newArtifactCache(capacity int) *artifactCache {
	if capacity < 1 {
		capacity = 1
	}
	return &artifactCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached artifact for key, promoting it to most recently
// used. Every call counts as a hit or a miss.
func (c *artifactCache) get(key string) (*compile.Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// peek is get without miss accounting: a present entry counts as a hit
// and is promoted, an absent one counts nothing. The compile fast path
// uses it so that n coalescing requests record one miss (the flight
// leader's), not n — a coalesced follower never consulted the cache and
// must not be charged to it.
func (c *artifactCache) peek(key string) (*compile.Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// add inserts (or refreshes) an artifact, evicting the least recently used
// entry when the cache is full. Concurrent compiles of the same source may
// both add; the second add is a refresh, not an eviction.
func (c *artifactCache) add(key string, art *compile.Artifact) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).art = art
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, art: art})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *artifactCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Capacity:  c.cap,
	}
}
