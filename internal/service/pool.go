package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

var (
	// errBusy reports that the admission queue is full; callers translate
	// it to 429 + Retry-After.
	errBusy = errors.New("service: saturated, retry later")
	// errClosed reports that the service is draining; callers translate it
	// to 503.
	errClosed = errors.New("service: shutting down")
)

// pool is a fixed set of workers fed by a bounded admission queue. Intake
// is strictly non-blocking: a full queue rejects rather than queues, which
// is what turns overload into backpressure at the HTTP layer.
type pool struct {
	mu       sync.RWMutex
	closed   bool
	jobs     chan func()
	wg       sync.WaitGroup
	inFlight atomic.Int64
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				p.inFlight.Add(1)
				job()
				p.inFlight.Add(-1)
			}
		}()
	}
	return p
}

// submit enqueues a job without blocking.
func (p *pool) submit(job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return errBusy
	}
}

// shutdown closes intake and waits for queued and in-flight jobs to drain,
// up to ctx's deadline.
func (p *pool) shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// queued and capacity report admission-queue occupancy for /statsz.
func (p *pool) queued() int   { return len(p.jobs) }
func (p *pool) capacity() int { return cap(p.jobs) }
