package service

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"queuemachine/internal/compile"
)

// compileFor builds a distinct artifact for cache tests.
func compileFor(t *testing.T, n int) *compile.Artifact {
	t.Helper()
	src := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", n)
	art, err := compile.Compile(src, compile.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return art
}

func TestCacheAccounting(t *testing.T) {
	c := newArtifactCache(2)
	a, b, d := compileFor(t, 1), compileFor(t, 2), compileFor(t, 3)

	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.add("a", a)
	c.add("b", b)
	if got, ok := c.get("a"); !ok || got != a {
		t.Fatal("a not cached")
	}
	// Adding a third entry evicts the least recently used ("b": "a" was
	// just promoted by the get above).
	c.add("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a was evicted despite being most recently used")
	}
	st := c.stats()
	want := CacheStats{Hits: 2, Misses: 2, Evictions: 1, Entries: 2, Capacity: 2}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
}

func TestCacheRefreshIsNotEviction(t *testing.T) {
	c := newArtifactCache(2)
	a1, a2 := compileFor(t, 1), compileFor(t, 1)
	c.add("a", a1)
	c.add("a", a2) // concurrent compilers may both add the same key
	st := c.stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("stats after refresh = %+v", st)
	}
	if got, _ := c.get("a"); got != a2 {
		t.Error("refresh did not replace the artifact")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newArtifactCache(4)
	arts := make([]*compile.Artifact, 8)
	for i := range arts {
		arts[i] = compileFor(t, i)
	}
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				if _, ok := c.get(key); !ok {
					c.add(key, arts[(g+i)%8])
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.Hits+st.Misses != 8*perG {
		t.Errorf("hits %d + misses %d != %d gets", st.Hits, st.Misses, 8*perG)
	}
	if st.Entries > 4 {
		t.Errorf("entries = %d exceeds capacity", st.Entries)
	}
}

func TestArtifactForDeterminism(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const src = "var v[1]:\nseq\n  v[0] := 42\n"
	fp := compile.Fingerprint(src, compile.Options{})
	_, state1, err := s.artifactFor(context.Background(), src, compile.Options{}, fp, true)
	if err != nil {
		t.Fatalf("artifactFor: %v", err)
	}
	art2, state2, err := s.artifactFor(context.Background(), src, compile.Options{}, fp, true)
	if err != nil {
		t.Fatalf("artifactFor: %v", err)
	}
	if state1 != cacheStateMiss || state2 != cacheStateHit {
		t.Errorf("cache states = %q, %q; want %q, %q", state1, state2, cacheStateMiss, cacheStateHit)
	}
	if art2 == nil {
		t.Error("cached artifact is nil")
	}
}
