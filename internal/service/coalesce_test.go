package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// waiters totals the requests currently parked on flights, across keys.
func (g *flightGroup) waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.flights {
		n += f.waiters
	}
	return n
}

// blockWorker occupies the service's (single) pool worker until the
// returned release function is called.
func blockWorker(t *testing.T, svc *Service) func() {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{})
	err := svc.pool.submit(func() {
		close(started)
		<-release
	})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started
	var once sync.Once
	return func() { once.Do(func() { close(release) }) }
}

// TestRunCoalescing hammers one fingerprint with concurrent identical
// /run requests while the only worker is blocked, so every request is
// provably in the building before any can execute: exactly one compile
// and one simulation must serve all of them.
func TestRunCoalescing(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	release := blockWorker(t, svc)
	defer release()

	const n = 8
	body, _ := json.Marshal(map[string]any{"source": sumSquares, "pes": 2})
	type reply struct {
		status int
		body   []byte
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			replies[i] = reply{resp.StatusCode, buf.Bytes()}
		}()
	}
	// Wait until all n requests are parked on the flight (leader
	// included), then let the worker go. Polling the flight group — not
	// the request counter — closes the window between a request being
	// counted and it joining the flight.
	deadline := time.Now().Add(10 * time.Second)
	for svc.flights.waiters() < n {
		if time.Now().After(deadline) {
			release()
			t.Fatalf("only %d/%d requests joined the flight", svc.flights.waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()

	var leader, followers int
	var stats []string
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, r.status, r.body)
		}
		var out struct {
			Fingerprint string          `json:"fingerprint"`
			Coalesced   bool            `json:"coalesced"`
			CacheState  string          `json:"cache"`
			Stats       json.RawMessage `json:"stats"`
		}
		if err := json.Unmarshal(r.body, &out); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if out.Coalesced {
			followers++
			if out.CacheState != cacheStateCoalesced {
				t.Errorf("run %d: coalesced but cache = %q", i, out.CacheState)
			}
		} else {
			leader++
			if out.CacheState != cacheStateMiss {
				t.Errorf("leader cache = %q, want %q", out.CacheState, cacheStateMiss)
			}
		}
		stats = append(stats, string(out.Stats))
	}
	if leader != 1 || followers != n-1 {
		t.Errorf("leaders = %d, followers = %d; want 1 and %d", leader, followers, n-1)
	}
	for i := 1; i < len(stats); i++ {
		if stats[i] != stats[0] {
			t.Errorf("run %d stats differ from run 0:\n%s\nvs\n%s", i, stats[i], stats[0])
		}
	}
	// Exactly one request consulted the cache (one miss, no hits), one
	// simulation ran, and the other n-1 were counted as coalesced — never
	// as cache hits.
	cs := svc.cache.stats()
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 0/1", cs.Hits, cs.Misses)
	}
	if got := svc.coalescedRuns.Load(); got != n-1 {
		t.Errorf("coalescedRuns = %d, want %d", got, n-1)
	}
	var one struct {
		Cycles int64 `json:"cycles"`
	}
	if err := json.Unmarshal([]byte(stats[0]), &one); err != nil {
		t.Fatal(err)
	}
	if got := svc.cyclesServed.Load(); got != one.Cycles {
		t.Errorf("cyclesServed = %d, want one run's %d cycles", got, one.Cycles)
	}
	// /metrics must tell the same story as the internal counters.
	m := scrape(t, ts.URL)
	if got := m[`qmd_coalesced_total{endpoint="run"}`]; got != n-1 {
		t.Errorf(`qmd_coalesced_total{endpoint="run"} = %v, want %d`, got, n-1)
	}
	if got := m["qmd_cache_misses_total"]; got != 1 {
		t.Errorf("qmd_cache_misses_total = %v, want 1", got)
	}
	if got := m["qmd_cache_hits_total"]; got != 0 {
		t.Errorf("qmd_cache_hits_total = %v, want 0: followers must not count as hits", got)
	}
}

// TestCompileCoalescing is the compile-side twin: concurrent identical
// compiles share one underlying compilation.
func TestCompileCoalescing(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	release := blockWorker(t, svc)
	defer release()

	const n = 4
	body, _ := json.Marshal(map[string]any{"source": sumSquares})
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("compile %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("compile %d: status %d", i, resp.StatusCode)
			}
			results[i] = resp.Header.Get(cacheHeader)
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.flights.waiters() < n {
		if time.Now().After(deadline) {
			release()
			t.Fatalf("only %d/%d compiles joined the flight", svc.flights.waiters(), n)
		}
		time.Sleep(time.Millisecond)
	}
	release()
	wg.Wait()

	counts := map[string]int{}
	for _, h := range results {
		counts[h]++
	}
	if counts[cacheStateMiss] != 1 || counts[cacheStateCoalesced] != n-1 {
		t.Errorf("cache headers = %v, want 1 %q and %d %q",
			counts, cacheStateMiss, n-1, cacheStateCoalesced)
	}
	if got := svc.coalescedCompiles.Load(); got != n-1 {
		t.Errorf("coalescedCompiles = %d, want %d", got, n-1)
	}
	cs := svc.cache.stats()
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Errorf("cache hits/misses = %d/%d, want 0/1", cs.Hits, cs.Misses)
	}
}

// TestDistinctRunsDoNotCoalesce: the run key covers everything that
// changes the result, so the same program at different machine sizes
// must execute separately.
func TestDistinctRunsDoNotCoalesce(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	for _, pes := range []int{1, 2, 4} {
		status, raw := post(t, ts.URL+"/run", map[string]any{"source": sumSquares, "pes": pes}, nil)
		if status != http.StatusOK {
			t.Fatalf("pes=%d: status %d: %s", pes, status, raw)
		}
	}
	if got := svc.coalescedRuns.Load(); got != 0 {
		t.Errorf("sequential distinct runs coalesced %d times", got)
	}
	// One compile, then two source-cache hits.
	cs := svc.cache.stats()
	if cs.Misses != 1 || cs.Hits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1", cs.Hits, cs.Misses)
	}
}

// TestRetryAfterJitter: every 429 carries a Retry-After within the
// documented bounds, and the values actually vary so a thundering herd
// does not re-stampede in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	svc, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		svc.error(context.Background(), rec, errBusy)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", rec.Code)
		}
		v, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", rec.Header().Get("Retry-After"), err)
		}
		if v < retryAfterMin || v > retryAfterMax {
			t.Fatalf("Retry-After = %d outside [%d, %d]", v, retryAfterMin, retryAfterMax)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("200 draws produced a single Retry-After value %v; jitter missing", seen)
	}
}

// TestCacheEvictionUnderLoad churns a small LRU from many goroutines
// with a key space far larger than capacity: the invariants are bounded
// residency and coherent accounting, under -race.
func TestCacheEvictionUnderLoad(t *testing.T) {
	const capacity = 8
	c := newArtifactCache(capacity)
	base := compileFor(t, 0)
	const goroutines = 16
	const ops = 500
	const keys = 64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%keys)
				if _, ok := c.get(key); !ok {
					c.add(key, base)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.stats()
	if st.Entries > capacity {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, capacity)
	}
	if st.Hits+st.Misses != goroutines*ops {
		t.Errorf("hits %d + misses %d != %d gets", st.Hits, st.Misses, goroutines*ops)
	}
	// Every miss triggered an add; adds beyond capacity must be matched
	// by evictions (refreshes of a resident key evict nothing, so
	// evictions can be lower, never higher).
	if st.Evictions > st.Misses {
		t.Errorf("evictions %d exceed misses %d", st.Evictions, st.Misses)
	}
}
