package service

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"queuemachine/internal/xtrace"
)

// cacheHeader is the response header the compile and run handlers set to
// "hit" or "miss" when the artifact cache took part in the request; the
// access-log middleware lifts it into the structured log line.
const cacheHeader = "X-Qmd-Cache"

// requestIDHeader carries the server-assigned request id back to the
// client so a log line can be found from a response.
const requestIDHeader = "X-Request-Id"

var nextRequestID atomic.Uint64

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush passes through so handlers that stream (the gate relay) keep
// their per-chunk flushes when wrapped by AccessLog or the SLO recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps a handler with structured request logging: one line per
// request with the request id, route, status, duration, and — when the
// artifact cache was consulted — whether it hit.
func AccessLog(l *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := nextRequestID.Add(1)
		w.Header().Set(requestIDHeader, formatRequestID(id))
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []slog.Attr{
			slog.Uint64("id", id),
			slog.String("route", r.Method+" "+r.URL.Path),
			slog.Int("status", status),
			slog.Duration("duration", time.Since(start)),
		}
		if cache := w.Header().Get(cacheHeader); cache != "" {
			attrs = append(attrs, slog.String("cache", cache))
		}
		// Handlers echo a traced request's id on the response; lifting it
		// here gives qmd access lines and qgate relay lines the same
		// trace field, greppable straight into /debugz/traces.
		if trace := w.Header().Get(xtrace.TraceHeader); trace != "" {
			attrs = append(attrs, slog.String("trace", trace))
		}
		l.LogAttrs(r.Context(), levelFor(status), "request", attrs...)
	})
}

func formatRequestID(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := range b {
		b[15-i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

func levelFor(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}
