package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds, in seconds, of the request-latency
// histograms. The spread covers cache hits (sub-millisecond) through
// deadline-bounded simulations (tens of seconds).
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30}

// histogram is a fixed-bucket latency histogram with lock-free observation,
// exposed in Prometheus exposition format (cumulative bucket counts plus
// _sum and _count).
type histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sumNs  atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	h.counts[sort.SearchFloat64s(h.bounds, d.Seconds())].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// observe records one request's latency on the endpoint's histogram; use as
// `defer s.observe(endpoint, time.Now())`.
func (s *Service) observe(endpoint string, start time.Time) {
	if h := s.latency[endpoint]; h != nil {
		h.observe(time.Since(start))
	}
}

// handleMetrics serves the service counters in Prometheus text exposition
// format (version 0.0.4). The counters are the same ones /statsz reports as
// JSON: after any fixed request sequence the two documents agree.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, pairs ...any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i := 0; i < len(pairs); i += 2 {
			fmt.Fprintf(w, "%s%s %d\n", name, pairs[i], pairs[i+1])
		}
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	counter("qmd_requests_total", "Requests received, by endpoint.",
		`{endpoint="compile"}`, st.Compiles, `{endpoint="run"}`, st.Runs)
	counter("qmd_shed_total", "Requests rejected with 429 because the admission queue was full.",
		"", st.Rejected)
	counter("qmd_errors_total", "Requests answered with a non-shed error status.",
		"", st.Errors)
	counter("qmd_sim_cycles_total", "Simulated cycles served by successful runs; "+
		"cause-labelled series attribute profiled runs' PE-cycles (and the "+
		"message-processor and ring lanes' busy cycles) by cause.",
		"", st.CyclesServed)
	if len(st.CycleCauses) > 0 {
		causes := make([]string, 0, len(st.CycleCauses))
		for cause := range st.CycleCauses {
			causes = append(causes, cause)
		}
		sort.Strings(causes)
		for _, cause := range causes {
			fmt.Fprintf(w, "qmd_sim_cycles_total{cause=%q} %d\n", cause, st.CycleCauses[cause])
		}
	}
	counter("qmd_sim_instructions_total", "Simulated instructions served by successful runs.",
		"", st.InstructionsServed)
	if len(st.SchedRuns) > 0 {
		policies := make([]string, 0, len(st.SchedRuns))
		for p := range st.SchedRuns {
			policies = append(policies, p)
		}
		sort.Strings(policies)
		pairs := make([]any, 0, 2*len(policies))
		for _, p := range policies {
			pairs = append(pairs, fmt.Sprintf("{policy=%q}", p), st.SchedRuns[p])
		}
		counter("qmd_sched_runs_total", "Successful runs by scheduling policy.", pairs...)
	}
	counter("qmd_sched_migrations_total",
		"Contexts placed on a processing element other than their parent's.",
		"", st.SchedMigrations)
	counter("qmd_sched_steals_total",
		"Contexts re-homed by a work-stealing dispatch.",
		"", st.SchedSteals)
	counter("qmd_hostpar_runs_total",
		"Successful runs executed by the host-parallel simulation engine.",
		"", st.HostParRuns)
	counter("qmd_hostpar_epochs_total",
		"Host-parallel lookahead fill passes queued to worker goroutines.",
		"", st.HostParEpochs)
	counter("qmd_hostpar_barriers_total",
		"Host-parallel fill passes the commit loop blocked on.",
		"", st.HostParBarriers)
	counter("qmd_hostpar_cross_messages_total",
		"Simulated ring messages that crossed host worker shards.",
		"", st.HostParCrossMessages)
	counter("qmd_cache_hits_total", "Artifact cache hits.", "", st.Cache.Hits)
	counter("qmd_cache_misses_total", "Artifact cache misses.", "", st.Cache.Misses)
	counter("qmd_cache_evictions_total", "Artifact cache evictions.", "", st.Cache.Evictions)
	gauge("qmd_cache_entries", "Artifacts resident in the cache.", st.Cache.Entries)
	gauge("qmd_cache_capacity", "Artifact cache capacity.", st.Cache.Capacity)
	counter("qmd_coalesced_total", "Requests answered by joining another request's "+
		"in-flight execution; never double-counted as cache hits.",
		`{endpoint="compile"}`, st.CoalescedCompiles, `{endpoint="run"}`, st.CoalescedRuns)
	gauge("qmd_flights_in_flight", "Distinct executions currently coalescing.",
		st.FlightsInFlight)
	if st.Disk != nil {
		counter("qmd_disk_cache_hits_total", "Artifacts loaded from the disk tier.",
			"", st.Disk.Hits)
		counter("qmd_disk_cache_writes_total", "Artifacts persisted to the disk tier.",
			"", st.Disk.Writes)
		counter("qmd_disk_cache_errors_total", "Disk-tier read/write failures "+
			"(each degrades to a recompile, never a failed request).",
			"", st.Disk.Errors)
		gauge("qmd_disk_cache_entries", "Artifacts resident on disk.", st.Disk.Entries)
	}
	if st.Peer != nil {
		counter("qmd_peer_fetches_total", "Artifact fetches attempted against the owning peer.",
			"", st.Peer.Fetches)
		counter("qmd_peer_hits_total", "Peer fetches that returned a usable artifact.",
			"", st.Peer.Hits)
		counter("qmd_peer_errors_total", "Peer fetches that failed and degraded to a local compile.",
			"", st.Peer.Errors)
	}
	if len(st.SLOs) > 0 {
		reqPairs := make([]any, 0, 2*len(st.SLOs))
		slowPairs := make([]any, 0, 2*len(st.SLOs))
		errPairs := make([]any, 0, 2*len(st.SLOs))
		badPairs := make([]any, 0, 2*len(st.SLOs))
		for _, o := range st.SLOs {
			label := fmt.Sprintf("{route=%q}", o.Route)
			reqPairs = append(reqPairs, label, o.Requests)
			slowPairs = append(slowPairs, label, o.Slow)
			errPairs = append(errPairs, label, o.Errors)
			badPairs = append(badPairs, label, o.Bad)
		}
		counter("qmd_slo_requests_total", "Requests scored against a route objective.", reqPairs...)
		counter("qmd_slo_slow_total", "Requests over the route's latency objective.", slowPairs...)
		counter("qmd_slo_errors_total", "Requests answered 5xx on an objective route.", errPairs...)
		counter("qmd_slo_bad_total", "Requests burning error budget (slow or 5xx, counted once).", badPairs...)
		fmt.Fprintf(w, "# HELP qmd_slo_burn_rate Bad fraction over budget; 1 burns exactly at the objective.\n# TYPE qmd_slo_burn_rate gauge\n")
		for _, o := range st.SLOs {
			fmt.Fprintf(w, "qmd_slo_burn_rate{route=%q} %g\n", o.Route, o.BurnRate)
		}
	}
	counter("qmd_trace_committed_total", "Traces committed to the flight recorder.",
		"", st.Traces.Committed)
	counter("qmd_trace_evicted_total", "Traces aged off the recorder ring.",
		"", st.Traces.Evicted)
	gauge("qmd_trace_resident", "Traces resident in the recorder (ring plus outliers).",
		st.Traces.Resident+st.Traces.Outliers)
	gauge("qmd_pool_workers", "Worker pool size.", st.Workers)
	gauge("qmd_pool_in_flight", "Jobs currently executing.", st.InFlight)
	gauge("qmd_pool_queued", "Jobs waiting in the admission queue.", st.Queued)
	gauge("qmd_pool_queue_capacity", "Admission queue capacity.", st.QueueCapacity)
	gauge("qmd_host_mips", "Service-lifetime average simulator throughput, "+
		"million simulated instructions per host second.", st.HostMIPS)
	gauge("qmd_draining", "1 while the service is draining, else 0.", boolGauge(st.Draining))
	gauge("qmd_uptime_seconds", "Seconds since the service started.",
		fmt.Sprintf("%.3f", st.UptimeSeconds))

	fmt.Fprintf(w, "# HELP qmd_request_seconds Request latency, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE qmd_request_seconds histogram\n")
	for _, endpoint := range []string{"compile", "run"} {
		h := s.latency[endpoint]
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "qmd_request_seconds_bucket{endpoint=%q,le=%q} %d\n",
				endpoint, formatBound(bound), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "qmd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, cum)
		fmt.Fprintf(w, "qmd_request_seconds_sum{endpoint=%q} %g\n",
			endpoint, time.Duration(h.sumNs.Load()).Seconds())
		fmt.Fprintf(w, "qmd_request_seconds_count{endpoint=%q} %d\n", endpoint, h.count.Load())
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// formatBound renders a bucket bound the way Prometheus clients do: shortest
// decimal form ("0.005", "1", "30").
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
