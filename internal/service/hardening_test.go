package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// postRaw sends body bytes verbatim, for requests that are deliberately not
// well-formed JSON.
func postRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, raw
}

// TestMalformedInputNever500 feeds the endpoints byte streams that have, at
// one point or another, wedged or crashed some stage of the pipeline. The
// contract under test: any input is answered with a structured 4xx error
// document — never a 5xx, never a dropped connection.
func TestMalformedInputNever500(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	source := func(src string) []byte {
		b, err := json.Marshal(map[string]string{"source": src})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"binary junk", []byte{0x00, 0xff, 0x7f, 0xde, 0xad, 0xbe, 0xef}},
		{"not json", []byte("var x:\nx := 1\n")},
		{"truncated json", []byte(`{"source": "var x`)},
		{"empty body", nil},
		{"empty source", source("")},
		{"unknown field", []byte(`{"sauce": "skip\n"}`)},
		{"lex error", source("var x:\nx := $\n")},
		{"overflowing constant", source("var x:\nx := 4294967296\n")},
		{"out-of-range index", source("var v[4]:\nv[9] := 1\n")},
		{"negative index", source("var v[4]:\nv[-1] := 1\n")},
		{"giant vector", source("var v[99999999]:\nskip\n")},
		{"many large vectors", source("var a[1048576], b[1048576]:\nskip\n")},
		{"self-send", source("chan c:\nc ! 1\n")},
		{"self-receive", source("chan c:\nvar x:\nc ? x\n")},
		{"empty par", source("par\nskip\n")},
		{"bad indentation", source("seq\n   x := 1\n")},
		{"deep nesting", source("var x:\n" + strings.Repeat("seq\n", 200) + "x := 1\n")},
	}
	for _, endpoint := range []string{"/compile", "/run"} {
		for _, c := range cases {
			code, raw := postRaw(t, ts.URL+endpoint, c.body)
			if code < 400 || code >= 500 {
				t.Errorf("%s %s: status %d (%s), want 4xx", endpoint, c.name, code, raw)
				continue
			}
			var doc map[string]string
			if err := json.Unmarshal(raw, &doc); err != nil || doc["error"] == "" {
				t.Errorf("%s %s: body %q is not a structured error document", endpoint, c.name, raw)
			}
		}
	}
}

// TestWorkerPanicAnswers422 proves a panic on a pool worker is converted to
// a client error instead of crashing the process: the panicking request gets
// 422 and the service keeps serving afterwards.
func TestWorkerPanicAnswers422(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	v, err := svc.execute(t.Context(), func(context.Context) (any, error) {
		panic("synthetic fault")
	})
	if err == nil || !strings.Contains(err.Error(), "synthetic fault") {
		t.Fatalf("execute after panic: v=%v err=%v, want wrapped panic", v, err)
	}
	if got := toStatus(err); got != http.StatusUnprocessableEntity {
		t.Errorf("panic maps to status %d, want 422", got)
	}

	// The lone worker survived; real requests still flow.
	if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: "var x:\nx := 1\n"}, nil); code != 200 {
		t.Errorf("compile after panic: %d %s", code, raw)
	}
}
