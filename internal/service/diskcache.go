package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"queuemachine/internal/compile"
	"queuemachine/internal/isa"
)

// DiskStats is a point-in-time snapshot of the disk artifact cache.
type DiskStats struct {
	Dir     string `json:"dir"`
	Hits    int64  `json:"hits"`
	Writes  int64  `json:"writes"`
	Errors  int64  `json:"errors"`
	Entries int    `json:"entries"`
}

// diskCache persists compiled artifacts across restarts: one JSON file
// per fingerprint under a directory named by the toolchain hash, so a
// replica that restarts warms its in-memory cache from disk instead of
// stampeding the compiler, while artifacts written by an incompatible
// compiler generation are invisible by construction (different
// directory) and artifacts with a tampered or stale version field are
// rejected and removed on read.
//
// Crash safety: files are written to a temporary name in the same
// directory and atomically renamed into place, so a reader never
// observes a partial artifact; leftover temporaries from a crash are
// swept at open. A file that fails to parse or validate is treated as a
// miss and deleted — the worst outcome of any disk corruption is one
// recompile.
type diskCache struct {
	dir string // versioned directory all artifacts live in

	hits, writes, errors atomic.Int64
}

// diskArtifact is the on-disk format. Toolchain repeats the directory's
// version so a file copied across versioned directories (or a directory
// renamed by hand) still cannot smuggle a stale format past the loader.
type diskArtifact struct {
	Toolchain   string      `json:"toolchain"`
	Fingerprint string      `json:"fingerprint"`
	Object      *isa.Object `json:"object"`
}

// openDiskCache prepares the versioned artifact directory under root,
// sweeping temporaries left by a crashed writer.
func openDiskCache(root string) (*diskCache, error) {
	dir := filepath.Join(root, "v-"+compile.ToolchainHash()[:16])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact cache dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact cache dir: %w", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &diskCache{dir: dir}, nil
}

func (d *diskCache) path(fp string) string {
	return filepath.Join(d.dir, fp+".json")
}

// get loads the artifact for fp from disk. Any failure — missing file,
// parse error, version mismatch, invalid object — is a miss; corrupt
// files are removed so they fail only once.
func (d *diskCache) get(fp string) (*compile.Artifact, bool) {
	blob, err := os.ReadFile(d.path(fp))
	if err != nil {
		return nil, false
	}
	var da diskArtifact
	if err := json.Unmarshal(blob, &da); err != nil {
		d.drop(fp)
		return nil, false
	}
	if da.Toolchain != compile.ToolchainHash() || da.Fingerprint != fp || da.Object == nil {
		d.drop(fp)
		return nil, false
	}
	if err := da.Object.Validate(); err != nil {
		d.drop(fp)
		return nil, false
	}
	d.hits.Add(1)
	// Only the object program survives persistence; the front-end
	// structures (AST, IFT, graph info) exist to produce it and are not
	// needed to serve compiles or runs.
	return &compile.Artifact{Object: da.Object}, true
}

// drop removes a rejected file, charging the error counter.
func (d *diskCache) drop(fp string) {
	d.errors.Add(1)
	os.Remove(d.path(fp))
}

// put persists an artifact. Failures are counted but never surfaced: the
// disk tier is an optimization, and a request that compiled successfully
// must not fail because the cache volume is full.
func (d *diskCache) put(fp string, art *compile.Artifact) {
	blob, err := json.Marshal(diskArtifact{
		Toolchain:   compile.ToolchainHash(),
		Fingerprint: fp,
		Object:      art.Object,
	})
	if err != nil {
		d.errors.Add(1)
		return
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		d.errors.Add(1)
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), d.path(fp)); err != nil {
		os.Remove(tmp.Name())
		d.errors.Add(1)
		return
	}
	d.writes.Add(1)
}

// stats snapshots the counters, counting resident artifacts on demand
// (the directory is one readdir; /statsz is not a hot path).
func (d *diskCache) stats() DiskStats {
	st := DiskStats{
		Dir:    d.dir,
		Hits:   d.hits.Load(),
		Writes: d.writes.Load(),
		Errors: d.errors.Load(),
	}
	if entries, err := os.ReadDir(d.dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				st.Entries++
			}
		}
	}
	return st
}
