package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/isa"
	"queuemachine/internal/profile"
	"queuemachine/internal/sched"
	"queuemachine/internal/sim"
)

// compileOptions mirrors compile.Options with stable wire names.
type compileOptions struct {
	NoInputOrder bool `json:"no_input_order,omitempty"`
	NoLiveFilter bool `json:"no_live_filter,omitempty"`
	NoPriority   bool `json:"no_priority,omitempty"`
	NoConstFold  bool `json:"no_const_fold,omitempty"`
}

func (o compileOptions) toCompile() compile.Options {
	return compile.Options{
		NoInputOrder: o.NoInputOrder,
		NoLiveFilter: o.NoLiveFilter,
		NoPriority:   o.NoPriority,
		NoConstFold:  o.NoConstFold,
	}
}

type compileRequest struct {
	Source    string         `json:"source"`
	Options   compileOptions `json:"options"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

type compileResponse struct {
	Fingerprint string      `json:"fingerprint"`
	Cached      bool        `json:"cached"`
	Graphs      int         `json:"graphs"`
	DataWords   int         `json:"data_words"`
	Object      *isa.Object `json:"object"`
}

type runRequest struct {
	// Exactly one of Source and Object names the program. Source is
	// compiled (through the artifact cache); Object is executed as given.
	Source  string         `json:"source,omitempty"`
	Object  *isa.Object    `json:"object,omitempty"`
	Options compileOptions `json:"options"`
	// PEs is the simulated machine size (default 1).
	PEs int `json:"pes,omitempty"`
	// Scheduler selects the kernel scheduling policy by name ("fifo",
	// "locality", "steal", "critpath"; empty keeps the thesis FIFO
	// baseline). A convenience over params.Scheduler.Policy; when both are
	// present this field wins. Unknown names are rejected with 400 and the
	// valid list.
	Scheduler string `json:"scheduler,omitempty"`
	// HostParallel selects the simulator's host-parallel engine and its
	// worker-goroutine count (0 keeps the sequential engine, -1 picks the
	// count automatically). A convenience over params.HostParallel; when
	// non-zero this field wins. Results are bit-identical either way —
	// the engine only changes host-side execution. Counts the machine
	// cannot shard (more workers than ring partitions) are rejected with
	// 400 before the run is admitted.
	HostParallel int `json:"host_parallel,omitempty"`
	// Params overlays fields onto the service's base sim.Params.
	Params    json.RawMessage `json:"params,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	DumpData  bool            `json:"dump_data,omitempty"`
	// Profile attaches a cycle-attribution profile and critical path to the
	// run's stats. Profiling observes without altering timing — cycle
	// counts are identical either way — but costs host time recording the
	// event stream, so it is opt-in.
	Profile bool `json:"profile,omitempty"`
}

type runResponse struct {
	Fingerprint string    `json:"fingerprint,omitempty"`
	Cached      bool      `json:"cached"`
	Stats       *RunStats `json:"stats"`
}

// httpError carries a status code chosen at the point the failure is
// understood; everything else maps through toStatus.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func toStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// error writes the structured JSON error document for err.
func (s *Service) error(w http.ResponseWriter, err error) {
	status := toStatus(err)
	if status == http.StatusTooManyRequests {
		s.rejected.Add(1)
		// One in-flight simulation is a reasonable guess at when a worker
		// frees up; clients with better knowledge can ignore it.
		w.Header().Set("Retry-After", "1")
	} else {
		s.fails.Add(1)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// decode reads a bounded JSON request body.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("malformed request: %v", err)
	}
	return nil
}

// compileCached serves an artifact from the cache or compiles and caches
// it. Compile failures are the client's fault, not the server's: 422.
func (s *Service) compileCached(src string, opts compile.Options) (*compile.Artifact, bool, string, error) {
	fp := compile.Fingerprint(src, opts)
	if art, ok := s.cache.get(fp); ok {
		return art, true, fp, nil
	}
	art, err := compile.Compile(src, opts)
	if err != nil {
		return nil, false, fp, &httpError{http.StatusUnprocessableEntity, err.Error()}
	}
	s.cache.add(fp, art)
	return art, false, fp, nil
}

func (s *Service) handleCompile(w http.ResponseWriter, r *http.Request) {
	defer s.observe("compile", time.Now())
	s.compiles.Add(1)
	if s.draining.Load() {
		s.error(w, errClosed)
		return
	}
	var req compileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.error(w, err)
		return
	}
	if req.Source == "" {
		s.error(w, badRequest("missing source"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	v, err := s.execute(ctx, func(context.Context) (any, error) {
		art, cached, fp, err := s.compileCached(req.Source, req.Options.toCompile())
		if err != nil {
			return nil, err
		}
		return &compileResponse{
			Fingerprint: fp,
			Cached:      cached,
			Graphs:      len(art.Object.Graphs),
			DataWords:   art.Object.DataWords,
			Object:      art.Object,
		}, nil
	})
	if err != nil {
		s.error(w, err)
		return
	}
	if cr, ok := v.(*compileResponse); ok {
		w.Header().Set(cacheHeader, hitMiss(cr.Cached))
	}
	writeJSON(w, http.StatusOK, v)
}

func hitMiss(cached bool) string {
	if cached {
		return "hit"
	}
	return "miss"
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	defer s.observe("run", time.Now())
	s.runs.Add(1)
	if s.draining.Load() {
		s.error(w, errClosed)
		return
	}
	var req runRequest
	if err := s.decode(w, r, &req); err != nil {
		s.error(w, err)
		return
	}
	if (req.Source == "") == (req.Object == nil) {
		s.error(w, badRequest("provide exactly one of source and object"))
		return
	}
	pes := req.PEs
	if pes == 0 {
		pes = 1
	}
	if pes < 1 || pes > s.cfg.MaxPEs {
		s.error(w, badRequest("pes %d out of range [1, %d]", pes, s.cfg.MaxPEs))
		return
	}
	params := *s.cfg.Sim
	if len(req.Params) > 0 {
		dec := json.NewDecoder(bytes.NewReader(req.Params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&params); err != nil {
			s.error(w, badRequest("malformed params: %v", err))
			return
		}
	}
	if req.Scheduler != "" {
		params.Scheduler.Policy = req.Scheduler
	}
	if !sched.Valid(params.Scheduler.Policy) {
		s.error(w, badRequest("unknown scheduler %q (valid: %s)",
			params.Scheduler.Policy, strings.Join(sched.Names(), ", ")))
		return
	}
	if req.HostParallel != 0 {
		params.HostParallel = req.HostParallel
	}
	if _, err := params.HostWorkers(pes); err != nil {
		// A worker count the machine cannot shard is the client's
		// configuration mistake; reject before admitting the run.
		s.error(w, badRequest("%v", err))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()
	v, err := s.execute(ctx, func(ctx context.Context) (any, error) {
		resp := &runResponse{}
		obj := req.Object
		if obj == nil {
			art, cached, fp, err := s.compileCached(req.Source, req.Options.toCompile())
			if err != nil {
				return nil, err
			}
			obj, resp.Cached, resp.Fingerprint = art.Object, cached, fp
		}
		// The response only carries the data segment when the client asked
		// for it, so skip the per-run O(DataWords) copy otherwise.
		params.KeepData = req.DumpData
		var profiler *profile.Profiler
		simStart := time.Now()
		var res *sim.Result
		var err error
		if req.Profile {
			var sys *sim.System
			sys, err = sim.New(obj, pes, params)
			if err == nil {
				profiler = profile.New(pes)
				names := make([]string, len(obj.Graphs))
				for i, g := range obj.Graphs {
					names[i] = g.Name
				}
				profiler.SetGraphNames(names)
				sys.SetRecorder(profiler)
				res, err = sys.RunContext(ctx)
			}
		} else {
			res, err = sim.RunContext(ctx, obj, pes, params)
		}
		simTime := time.Since(simStart)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err // maps to 504 via the wrapped context error
			}
			// Deadlocks, watchdog trips, and malformed objects are
			// properties of the submitted program.
			return nil, &httpError{http.StatusUnprocessableEntity, err.Error()}
		}
		s.cyclesServed.Add(res.Cycles)
		s.instrsServed.Add(res.Instructions)
		s.simNanos.Add(int64(simTime))
		s.recordSched(params.Scheduler.Name(), res.Kernel.Migrations, res.Kernel.Steals)
		if res.Host.Workers > 0 {
			s.hostparRuns.Add(1)
			s.hostparEpochs.Add(res.Host.Epochs)
			s.hostparBarriers.Add(res.Host.Barriers)
			s.hostparCrossMsgs.Add(res.Host.CrossMessages)
		}
		resp.Stats = NewRunStats(res, req.DumpData)
		resp.Stats.Scheduler = params.Scheduler.Name()
		resp.Stats.SetHostTime(simTime)
		if profiler != nil {
			resp.Stats.Profile = profiler.Finalize(res.Cycles)
			s.recordCauses(resp.Stats.Profile)
		}
		return resp, nil
	})
	if err != nil {
		s.error(w, err)
		return
	}
	// The cache only took part when the request came in as source.
	if rr, ok := v.(*runResponse); ok && rr.Fingerprint != "" {
		w.Header().Set(cacheHeader, hitMiss(rr.Cached))
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
