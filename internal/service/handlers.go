package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/fleet"
	"queuemachine/internal/isa"
	"queuemachine/internal/profile"
	"queuemachine/internal/sched"
	"queuemachine/internal/sim"
	"queuemachine/internal/xtrace"
)

// compileOptions is the wire form of compile.Options; the shape lives in
// the fleet package so the peer client and the qgate request parser share
// it with these handlers.
type compileOptions = fleet.CompileOptions

type compileRequest struct {
	Source    string         `json:"source"`
	Options   compileOptions `json:"options"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

type compileResponse struct {
	Fingerprint string `json:"fingerprint"`
	Cached      bool   `json:"cached"`
	// CacheState records where the artifact came from: "hit" (memory),
	// "disk", "peer", or "miss" (compiled here). A follower coalesced
	// onto another request's compile reports "coalesced" instead.
	CacheState string      `json:"cache,omitempty"`
	Coalesced  bool        `json:"coalesced,omitempty"`
	Graphs     int         `json:"graphs"`
	DataWords  int         `json:"data_words"`
	Object     *isa.Object `json:"object"`
}

type runRequest struct {
	// Exactly one of Source and Object names the program. Source is
	// compiled (through the artifact cache); Object is executed as given.
	Source  string         `json:"source,omitempty"`
	Object  *isa.Object    `json:"object,omitempty"`
	Options compileOptions `json:"options"`
	// PEs is the simulated machine size (default 1).
	PEs int `json:"pes,omitempty"`
	// Scheduler selects the kernel scheduling policy by name ("fifo",
	// "locality", "steal", "critpath"; empty keeps the thesis FIFO
	// baseline). A convenience over params.Scheduler.Policy; when both are
	// present this field wins. Unknown names are rejected with 400 and the
	// valid list.
	Scheduler string `json:"scheduler,omitempty"`
	// HostParallel selects the simulator's host-parallel engine and its
	// worker-goroutine count (0 keeps the sequential engine, -1 picks the
	// count automatically). A convenience over params.HostParallel; when
	// non-zero this field wins. Results are bit-identical either way —
	// the engine only changes host-side execution. Counts the machine
	// cannot shard (more workers than ring partitions) are rejected with
	// 400 before the run is admitted.
	HostParallel int `json:"host_parallel,omitempty"`
	// Params overlays fields onto the service's base sim.Params.
	Params    json.RawMessage `json:"params,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	DumpData  bool            `json:"dump_data,omitempty"`
	// Profile attaches a cycle-attribution profile and critical path to the
	// run's stats. Profiling observes without altering timing — cycle
	// counts are identical either way — but costs host time recording the
	// event stream, so it is opt-in.
	Profile bool `json:"profile,omitempty"`
}

type runResponse struct {
	Fingerprint string `json:"fingerprint,omitempty"`
	Cached      bool   `json:"cached"`
	// CacheState and Coalesced mirror the compile response: where the
	// artifact came from, and whether this response rode another
	// request's in-flight execution. The simulation itself always ran
	// exactly once per coalition.
	CacheState string    `json:"cache,omitempty"`
	Coalesced  bool      `json:"coalesced,omitempty"`
	Stats      *RunStats `json:"stats"`
}

// httpError carries a status code chosen at the point the failure is
// understood; everything else maps through toStatus.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func toStatus(err error) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds bounds the jittered Retry-After value on 429s.
const (
	retryAfterMin = 1
	retryAfterMax = 3
)

// retryAfter picks the shed response's Retry-After delay. The base guess
// is one in-flight simulation (~1s); the jitter spreads synchronized
// clients — a fleet of identical pollers all told "1" would re-stampede
// on the same second and shed again, forever.
func retryAfter() string {
	return strconv.Itoa(retryAfterMin + rand.IntN(retryAfterMax-retryAfterMin+1))
}

// error writes the structured JSON error document for err. On a traced
// request the document carries the trace id — the handle that finds the
// failure in a flight recorder — and the active span is marked failed so
// the trace is retained as an error outlier.
func (s *Service) error(ctx context.Context, w http.ResponseWriter, err error) {
	status := toStatus(err)
	if status == http.StatusTooManyRequests {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfter())
	} else {
		s.fails.Add(1)
	}
	doc := map[string]string{"error": err.Error()}
	if id := xtrace.TraceIDFrom(ctx); id != "" {
		doc["trace"] = string(id)
		xtrace.CurrentSpan(ctx).SetError(err)
	}
	writeJSON(w, status, doc)
}

// echoTrace reflects a traced request's id back on the response so a
// client (or the qload sampler) can find the trace in /debugz/traces
// without parsing the body.
func echoTrace(w http.ResponseWriter, root *xtrace.ActiveSpan) {
	if id := root.TraceID(); id != "" {
		w.Header().Set(xtrace.TraceHeader, string(id))
	}
}

// joinSpan records a coalesced follower's wait as a zero-work `join`
// span: it began when the follower entered the flight (start) and points
// at the leader's trace, where the compile/simulate spans actually live.
func joinSpan(ctx context.Context, start time.Time, leader xtrace.TraceID) {
	_, sp := xtrace.StartSpanAt(ctx, "join", start)
	if sp == nil {
		return
	}
	if leader != "" {
		sp.SetAttr("leader_trace", string(leader))
	}
	sp.End()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// decode reads a bounded JSON request body.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &httpError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)}
		}
		return badRequest("malformed request: %v", err)
	}
	return nil
}

// cacheStateDisk through cacheStateCoalesced are the X-Qmd-Cache header
// values beyond the original "hit"/"miss"; hitMiss keeps those two.
const (
	cacheStateHit       = "hit"
	cacheStateMiss      = "miss"
	cacheStateDisk      = "disk"
	cacheStatePeer      = "peer"
	cacheStateCoalesced = "coalesced"
)

// materialize produces the artifact for a fingerprint that already
// missed the in-memory cache, in cost order: the disk tier, then the
// owning peer (when a fleet is configured, this replica is not the
// owner, and the request did not itself arrive from a peer), then a
// local compile. Whatever produced the artifact, it lands in the memory
// cache; local compiles are also persisted to disk. Compile failures are
// the client's fault, not the server's: 422.
func (s *Service) materialize(ctx context.Context, src string, opts compile.Options, fp string, allowPeer bool) (*compile.Artifact, string, error) {
	if s.disk != nil {
		_, ds := xtrace.StartSpan(ctx, "disk.read")
		art, ok := s.disk.get(fp)
		ds.End()
		if ok {
			s.cache.add(fp, art)
			return art, cacheStateDisk, nil
		}
	}
	if s.ring != nil && allowPeer {
		if owner := s.ring.Owner(fp); owner != "" && owner != s.self {
			s.peerFetches.Add(1)
			// The fetch runs under its own span's context so the peer's
			// compile spans arrive parented to it across the hop.
			pctx, ps := xtrace.StartSpan(ctx, "peer.fetch")
			ps.SetAttr("peer", owner)
			obj, err := s.peers.FetchCompile(pctx, owner, src, opts)
			if err == nil {
				ps.End()
				s.peerHits.Add(1)
				art := &compile.Artifact{Object: obj}
				s.cache.add(fp, art)
				return art, cacheStatePeer, nil
			}
			// A dead or slow owner degrades to a local compile; the
			// request must not fail because a peer did.
			ps.EndErr(err)
			s.peerErrors.Add(1)
		}
	}
	_, cs := xtrace.StartSpan(ctx, "compile")
	art, err := compile.Compile(src, opts)
	if err != nil {
		herr := &httpError{http.StatusUnprocessableEntity, err.Error()}
		cs.EndErr(herr)
		return nil, cacheStateMiss, herr
	}
	cs.End()
	s.cache.add(fp, art)
	if s.disk != nil {
		s.disk.put(fp, art)
	}
	return art, cacheStateMiss, nil
}

// artifactFor resolves src's artifact through every cache tier. The
// in-memory lookup counts a hit or a miss exactly once per request that
// reaches it; coalesced followers never get here, which is what keeps
// them out of the cache accounting.
func (s *Service) artifactFor(ctx context.Context, src string, opts compile.Options, fp string, allowPeer bool) (*compile.Artifact, string, error) {
	ctx, span := xtrace.StartSpan(ctx, "artifact")
	art, state, err := func() (*compile.Artifact, string, error) {
		if art, ok := s.cache.get(fp); ok {
			return art, cacheStateHit, nil
		}
		return s.materialize(ctx, src, opts, fp, allowPeer)
	}()
	span.SetAttr("cache", state)
	if err != nil {
		span.EndErr(err)
	} else {
		span.End()
	}
	return art, state, err
}

// allowPeer reports whether this request may be forwarded to a peer
// replica: requests that already arrived from a peer are answered
// locally, bounding every compile to one hop.
func allowPeer(r *http.Request) bool {
	return r.Header.Get(fleet.PeerHeader) == ""
}

func (s *Service) handleCompile(w http.ResponseWriter, r *http.Request) {
	defer s.observe("compile", time.Now())
	s.compiles.Add(1)
	rctx, root := s.tracer.StartRequest(r, "compile")
	defer root.End()
	echoTrace(w, root)
	if s.draining.Load() {
		s.error(rctx, w, errClosed)
		return
	}
	var req compileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.error(rctx, w, err)
		return
	}
	if req.Source == "" {
		s.error(rctx, w, badRequest("missing source"))
		return
	}
	opts := req.Options.ToCompile()
	fp := compile.Fingerprint(req.Source, opts)
	// Memory hits are served on the handler goroutine: they cost no
	// compile and no simulation, so they never contend for a worker and
	// cannot be shed by admission control. peek (not get) so an absent
	// entry is not charged as a miss here — the flight leader's counting
	// lookup below decides hit or miss exactly once per coalition.
	if art, ok := s.cache.peek(fp); ok {
		root.SetAttr("cache", cacheStateHit)
		resp := newCompileResponse(fp, cacheStateHit, art)
		w.Header().Set(cacheHeader, resp.CacheState)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	peerOK := allowPeer(r)
	ctx, cancel := context.WithTimeout(rctx, s.deadline(req.TimeoutMS))
	defer cancel()
	flightStart := time.Now()
	v, err, shared, leader := s.flights.do(ctx, "compile\x00"+fp, func(ctx context.Context) (any, error) {
		return s.execute(ctx, func(ctx context.Context) (any, error) {
			art, state, err := s.artifactFor(ctx, req.Source, opts, fp, peerOK)
			if err != nil {
				return nil, err
			}
			return newCompileResponse(fp, state, art), nil
		})
	})
	if shared {
		s.coalescedCompiles.Add(1)
		joinSpan(ctx, flightStart, leader)
	}
	if err != nil {
		s.error(ctx, w, err)
		return
	}
	if cr, ok := v.(*compileResponse); ok {
		if shared {
			cp := *cr
			cp.Coalesced = true
			cp.CacheState = cacheStateCoalesced
			cr = &cp
			v = cr
		}
		w.Header().Set(cacheHeader, cr.CacheState)
	}
	writeJSON(w, http.StatusOK, v)
}

// newCompileResponse projects an artifact into the compile wire response.
func newCompileResponse(fp, state string, art *compile.Artifact) *compileResponse {
	return &compileResponse{
		Fingerprint: fp,
		Cached:      state != cacheStateMiss,
		CacheState:  state,
		Graphs:      len(art.Object.Graphs),
		DataWords:   art.Object.DataWords,
		Object:      art.Object,
	}
}

func hitMiss(cached bool) string {
	if cached {
		return cacheStateHit
	}
	return cacheStateMiss
}

// runKey canonicalizes everything that determines a run's result and
// response body; two requests with equal keys are interchangeable and
// coalesce onto one execution. The request timeout is deliberately
// excluded: it bounds waiting, not the result.
type runKey struct {
	Fingerprint string     `json:"fp,omitempty"`
	ObjectHash  string     `json:"obj,omitempty"`
	PEs         int        `json:"pes"`
	Params      sim.Params `json:"params"`
	DumpData    bool       `json:"dump"`
	Profile     bool       `json:"profile"`
}

func (k runKey) String() string {
	blob, err := json.Marshal(k)
	if err != nil {
		// sim.Params is a plain data struct; marshal cannot fail. Fall
		// back to an uncoalescible unique key rather than panicking.
		return fmt.Sprintf("run-unkeyed\x00%p", &k)
	}
	sum := sha256.Sum256(blob)
	return "run\x00" + hex.EncodeToString(sum[:])
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	defer s.observe("run", time.Now())
	s.runs.Add(1)
	rctx, root := s.tracer.StartRequest(r, "run")
	defer root.End()
	echoTrace(w, root)
	if s.draining.Load() {
		s.error(rctx, w, errClosed)
		return
	}
	var req runRequest
	if err := s.decode(w, r, &req); err != nil {
		s.error(rctx, w, err)
		return
	}
	if (req.Source == "") == (req.Object == nil) {
		s.error(rctx, w, badRequest("provide exactly one of source and object"))
		return
	}
	pes := req.PEs
	if pes == 0 {
		pes = 1
	}
	if pes < 1 || pes > s.cfg.MaxPEs {
		s.error(rctx, w, badRequest("pes %d out of range [1, %d]", pes, s.cfg.MaxPEs))
		return
	}
	params := *s.cfg.Sim
	if len(req.Params) > 0 {
		dec := json.NewDecoder(bytes.NewReader(req.Params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&params); err != nil {
			s.error(rctx, w, badRequest("malformed params: %v", err))
			return
		}
	}
	if req.Scheduler != "" {
		params.Scheduler.Policy = req.Scheduler
	}
	if !sched.Valid(params.Scheduler.Policy) {
		s.error(rctx, w, badRequest("unknown scheduler %q (valid: %s)",
			params.Scheduler.Policy, strings.Join(sched.Names(), ", ")))
		return
	}
	if req.HostParallel != 0 {
		params.HostParallel = req.HostParallel
	}
	if _, err := params.HostWorkers(pes); err != nil {
		// A worker count the machine cannot shard is the client's
		// configuration mistake; reject before admitting the run.
		s.error(rctx, w, badRequest("%v", err))
		return
	}
	// The response only carries the data segment when the client asked
	// for it, so skip the per-run O(DataWords) copy otherwise. Resolved
	// before keying: KeepData changes the response body.
	params.KeepData = req.DumpData

	opts := req.Options.ToCompile()
	key := runKey{PEs: pes, Params: params, DumpData: req.DumpData, Profile: req.Profile}
	if req.Source != "" {
		key.Fingerprint = compile.Fingerprint(req.Source, opts)
	} else {
		blob, err := json.Marshal(req.Object)
		if err != nil {
			s.error(rctx, w, badRequest("malformed object: %v", err))
			return
		}
		sum := sha256.Sum256(blob)
		key.ObjectHash = hex.EncodeToString(sum[:])
	}
	peerOK := allowPeer(r)

	ctx, cancel := context.WithTimeout(rctx, s.deadline(req.TimeoutMS))
	defer cancel()
	flightStart := time.Now()
	v, err, shared, leader := s.flights.do(ctx, key.String(), func(ctx context.Context) (any, error) {
		return s.execute(ctx, func(ctx context.Context) (any, error) {
			resp := &runResponse{}
			obj := req.Object
			if obj == nil {
				art, state, err := s.artifactFor(ctx, req.Source, opts, key.Fingerprint, peerOK)
				if err != nil {
					return nil, err
				}
				obj, resp.Fingerprint = art.Object, key.Fingerprint
				resp.Cached, resp.CacheState = state != cacheStateMiss, state
			}
			var profiler *profile.Profiler
			// The simulate span is the wall-clock face of the run: its
			// attributes name the same execution the simulated-machine
			// artifacts describe (internal/trace timelines, the
			// internal/profile attribution on the response), so a stitched
			// trace links to them by fingerprint and cycle count.
			sctx, sspan := xtrace.StartSpan(ctx, "simulate")
			sspan.SetAttr("pes", strconv.Itoa(pes))
			simStart := time.Now()
			var res *sim.Result
			var err error
			if req.Profile {
				var sys *sim.System
				sys, err = sim.New(obj, pes, params)
				if err == nil {
					profiler = profile.New(pes)
					names := make([]string, len(obj.Graphs))
					for i, g := range obj.Graphs {
						names[i] = g.Name
					}
					profiler.SetGraphNames(names)
					sys.SetRecorder(profiler)
					res, err = sys.RunContext(sctx)
				}
			} else {
				res, err = sim.RunContext(sctx, obj, pes, params)
			}
			simTime := time.Since(simStart)
			if err != nil {
				sspan.EndErr(err)
				if ctx.Err() != nil {
					return nil, err // maps to 504 via the wrapped context error
				}
				// Deadlocks, watchdog trips, and malformed objects are
				// properties of the submitted program.
				return nil, &httpError{http.StatusUnprocessableEntity, err.Error()}
			}
			sspan.SetAttr("scheduler", params.Scheduler.Name())
			sspan.SetAttr("cycles", strconv.FormatInt(res.Cycles, 10))
			sspan.SetAttr("instructions", strconv.FormatInt(res.Instructions, 10))
			if profiler != nil {
				sspan.SetAttr("profiled", "true")
			}
			sspan.End()
			s.cyclesServed.Add(res.Cycles)
			s.instrsServed.Add(res.Instructions)
			s.simNanos.Add(int64(simTime))
			s.recordSched(params.Scheduler.Name(), res.Kernel.Migrations, res.Kernel.Steals)
			if res.Host.Workers > 0 {
				s.hostparRuns.Add(1)
				s.hostparEpochs.Add(res.Host.Epochs)
				s.hostparBarriers.Add(res.Host.Barriers)
				s.hostparCrossMsgs.Add(res.Host.CrossMessages)
			}
			resp.Stats = NewRunStats(res, req.DumpData)
			resp.Stats.Scheduler = params.Scheduler.Name()
			resp.Stats.SetHostTime(simTime)
			if profiler != nil {
				resp.Stats.Profile = profiler.Finalize(res.Cycles)
				s.recordCauses(resp.Stats.Profile)
			}
			return resp, nil
		})
	})
	if shared {
		s.coalescedRuns.Add(1)
		joinSpan(ctx, flightStart, leader)
	}
	if err != nil {
		s.error(ctx, w, err)
		return
	}
	if rr, ok := v.(*runResponse); ok {
		if shared {
			// Followers share the leader's stats but report their own
			// provenance: they rode a flight, they did not consult the
			// artifact cache.
			cp := *rr
			cp.Coalesced = true
			cp.CacheState = cacheStateCoalesced
			rr = &cp
			v = rr
			w.Header().Set(cacheHeader, cacheStateCoalesced)
		} else if rr.CacheState != "" {
			// The cache only took part when the request came in as source.
			w.Header().Set(cacheHeader, rr.CacheState)
		}
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
