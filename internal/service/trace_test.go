package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/fleet"
	"queuemachine/internal/xtrace"
)

// tracedPost sends body as JSON with an X-Qmd-Trace header and returns
// the response.
func tracedPost(t *testing.T, url string, id xtrace.TraceID, body any) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(xtrace.TraceHeader, string(id))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// spanNames indexes spans by name for assertion convenience.
func spanNames(spans []xtrace.Span) map[string][]xtrace.Span {
	byName := make(map[string][]xtrace.Span)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	return byName
}

// TestTracedRunRecordsSpanTree drives one traced /run and checks the
// recorder holds the full span tree: root, queue wait, artifact
// resolution with its compile, and the simulation — all under the
// client's trace id, parented back to the root.
func TestTracedRunRecordsSpanTree(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	id := xtrace.NewTraceID()
	resp, raw := tracedPost(t, ts.URL+"/run", id, map[string]any{"source": sumSquares, "pes": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(xtrace.TraceHeader); got != string(id) {
		t.Errorf("response trace header = %q, want %q", got, id)
	}

	spans, ok := svc.traces.Get(id)
	if !ok {
		t.Fatal("traced request not in the flight recorder")
	}
	byName := spanNames(spans)
	for _, want := range []string{"run", "queue.wait", "artifact", "compile", "simulate"} {
		if len(byName[want]) == 0 {
			t.Errorf("no %q span recorded; have %v", want, names(spans))
		}
	}
	roots := byName["run"]
	if len(roots) != 1 {
		t.Fatalf("want exactly one root span, got %d", len(roots))
	}
	root := roots[0]
	if root.Parent != "" {
		t.Errorf("root span has parent %q, want none", root.Parent)
	}
	// Every recorded span belongs to this trace and (except the root)
	// hangs off some other recorded span.
	ids := make(map[xtrace.SpanID]bool, len(spans))
	for _, s := range spans {
		if s.Trace != id {
			t.Errorf("span %s carries trace %q, want %q", s.Name, s.Trace, id)
		}
		ids[s.ID] = true
	}
	for _, s := range spans {
		if s.ID != root.ID && !ids[s.Parent] {
			t.Errorf("span %s parent %q is not a recorded span", s.Name, s.Parent)
		}
	}
	if sim := byName["simulate"][0]; sim.Attrs["cycles"] == "" || sim.Attrs["pes"] != "2" {
		t.Errorf("simulate span attrs = %v, want cycles and pes=2", sim.Attrs)
	}
	if art := byName["artifact"][0]; art.Attrs["cache"] != cacheStateMiss {
		t.Errorf("artifact cache attr = %q, want %q", art.Attrs["cache"], cacheStateMiss)
	}
}

func names(spans []xtrace.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestUntracedRequestRecordsNothing: without a trace header (and without
// a sampler) the recorder stays empty — tracing is strictly opt-in per
// request.
func TestUntracedRequestRecordsNothing(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	status, raw := post(t, ts.URL+"/run", map[string]any{"source": sumSquares}, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if st := svc.traces.Stats(); st.Committed != 0 {
		t.Errorf("untraced request committed %d traces", st.Committed)
	}
}

// TestErrorBodyCarriesTraceID: a traced request that fails returns the
// trace id in its error document — the handle that finds the failure in
// the flight recorder — and the recorded root span is marked failed.
func TestErrorBodyCarriesTraceID(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	id := xtrace.NewTraceID()
	resp, raw := tracedPost(t, ts.URL+"/run", id, map[string]any{"source": "not occam at all ("})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, raw)
	}
	var doc struct {
		Error string `json:"error"`
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("error body %q: %v", raw, err)
	}
	if doc.Error == "" || doc.Trace != string(id) {
		t.Fatalf("error doc = %+v, want error text and trace %q", doc, id)
	}
	spans, ok := svc.traces.Get(id)
	if !ok {
		t.Fatal("failed request's trace not recorded")
	}
	var rootErr string
	for _, s := range spans {
		if s.Parent == "" {
			rootErr = s.Error
		}
	}
	if rootErr == "" {
		t.Error("root span of a failed request carries no error")
	}
}

// TestFollowerJoinsAlreadyFinishedFlight covers the race where a flight
// completes between the follower's map lookup and its wait: the done
// channel is already closed when the follower selects on it. The
// follower must still get the leader's value, be reported as shared, and
// learn the leader's trace id — and the function must not run again.
func TestFollowerJoinsAlreadyFinishedFlight(t *testing.T) {
	leaderTrace := xtrace.NewTraceID()
	f := &flight{
		done:    make(chan struct{}),
		val:     "leader-result",
		trace:   leaderTrace,
		waiters: 1,
		cancel:  func() {},
	}
	close(f.done) // finished before the follower arrives
	g := &flightGroup{flights: map[string]*flight{"k": f}}

	ran := false
	v, err, shared, leader := g.do(context.Background(), "k", func(context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if ran {
		t.Error("follower re-executed a finished flight's work")
	}
	if err != nil || v != "leader-result" {
		t.Errorf("got (%v, %v), want the leader's result", v, err)
	}
	if !shared {
		t.Error("joining a finished flight not reported as shared")
	}
	if leader != leaderTrace {
		t.Errorf("leader trace = %q, want %q", leader, leaderTrace)
	}
}

// TestPeerFetchOneHopBound: a compile that already arrived from a peer
// is answered locally even when the ring says another replica owns the
// fingerprint — forwarding it again could bounce between replicas
// forever. Without the peer marker the same request does consult the
// owner.
func TestPeerFetchOneHopBound(t *testing.T) {
	var peerHits int
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peerHits++
		// Refusing is fine: the fetch attempt is what is under test, and
		// a failed peer degrades to a local compile.
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer peer.Close()

	self := "http://self.invalid"
	peers := []string{self, peer.URL}
	svc, err := New(Config{Workers: 2, Self: self, Peers: peers, PeerTimeout: time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Find a source the ring assigns to the other replica.
	ring := fleet.NewRing(peers, 0)
	var src string
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("no source owned by the peer replica")
		}
		candidate := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", i)
		if ring.Owner(compile.Fingerprint(candidate, compile.Options{})) == peer.URL {
			src = candidate
			break
		}
	}

	// Arriving from a peer: answered locally, no fetch.
	blob, _ := json.Marshal(map[string]any{"source": src})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/compile", bytes.NewReader(blob))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(fleet.PeerHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-marked compile: status %d", resp.StatusCode)
	}
	if peerHits != 0 || svc.peerFetches.Load() != 0 {
		t.Fatalf("peer-marked request forwarded anyway (hits=%d, fetches=%d)",
			peerHits, svc.peerFetches.Load())
	}

	// The same program arriving from a client: the owner is consulted.
	// A different source keeps the first compile's cache entry out of the way.
	var src2 string
	for i := 1000; ; i++ {
		if i > 1200 {
			t.Fatal("no second source owned by the peer replica")
		}
		candidate := fmt.Sprintf("var v[1]:\nseq\n  v[0] := %d\n", i)
		if ring.Owner(compile.Fingerprint(candidate, compile.Options{})) == peer.URL {
			src2 = candidate
			break
		}
	}
	status, raw := post(t, ts.URL+"/compile", map[string]any{"source": src2}, nil)
	if status != http.StatusOK {
		t.Fatalf("client compile: status %d: %s", status, raw)
	}
	if svc.peerFetches.Load() != 1 {
		t.Errorf("peerFetches = %d, want 1", svc.peerFetches.Load())
	}
	if peerHits == 0 {
		t.Error("owner replica never consulted for a client request")
	}
}
