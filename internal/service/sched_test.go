package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// parSquares fans four workers out so scheduler placement has something to
// decide; any machine size computes the same segment.
const parSquares = `def nw = 4:
var out[nw]:
proc work(value t) =
  out[t] := (t + 1) * (t + 1)
seq
  par t = [0 for nw]
    work(t)
`

func TestRunSchedulerPolicy(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	var def, steal runResponse
	if code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 4}, &def); code != 200 {
		t.Fatalf("default run: %d %s", code, raw)
	}
	if def.Stats.Scheduler != "fifo" {
		t.Errorf("default run reports scheduler %q, want fifo", def.Stats.Scheduler)
	}
	if code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 4, Scheduler: "steal"}, &steal); code != 200 {
		t.Fatalf("steal run: %d %s", code, raw)
	}
	if steal.Stats.Scheduler != "steal" {
		t.Errorf("steal run reports scheduler %q, want steal", steal.Stats.Scheduler)
	}
	if def.Stats.Migrations == 0 {
		t.Error("parallel run on 4 PEs reported zero migrations")
	}

	st := svc.Stats()
	if st.SchedRuns["fifo"] != 1 || st.SchedRuns["steal"] != 1 {
		t.Errorf("SchedRuns = %v, want one fifo and one steal run", st.SchedRuns)
	}
	if st.SchedMigrations == 0 {
		t.Errorf("SchedMigrations = 0 after parallel runs")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"qmd_sched_migrations_total",
		"qmd_sched_steals_total",
		`qmd_sched_runs_total{policy="fifo"} 1`,
		`qmd_sched_runs_total{policy="steal"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRunSchedulerUnknownRejected(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 2, Scheduler: "lifo"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown scheduler: status %d, want 400 (%s)", code, raw)
	}
	msg := errorBody(t, raw)
	for _, name := range []string{"fifo", "locality", "steal", "critpath"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list policy %q", msg, name)
		}
	}
	if svc.Stats().Runs != 1 {
		t.Errorf("Runs = %d, want the rejected request counted", svc.Stats().Runs)
	}

	// The params overlay path is validated too.
	code, raw = post(t, ts.URL+"/run", map[string]any{
		"source": parSquares,
		"pes":    2,
		"params": map[string]any{"Scheduler": map[string]any{"policy": "bogus"}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("params-overlay scheduler: status %d, want 400 (%s)", code, raw)
	}
	errorBody(t, raw)
}

func TestRunSchedulerOverlayAccepted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var resp runResponse
	code, raw := post(t, ts.URL+"/run", map[string]any{
		"source": parSquares,
		"pes":    4,
		"params": map[string]any{"Scheduler": map[string]any{"policy": "locality", "placement_slack": 2}},
	}, &resp)
	if code != 200 {
		t.Fatalf("locality overlay run: %d %s", code, raw)
	}
	if resp.Stats.Scheduler != "locality" {
		t.Errorf("overlay run reports scheduler %q, want locality", resp.Stats.Scheduler)
	}
}
