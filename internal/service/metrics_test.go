package service

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and parses the exposition text into a map from
// "name{labels}" to value, skipping comment lines.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		samples[key] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan metrics: %v", err)
	}
	return samples
}

// TestMetricsEndpoint drives a fixed request sequence and checks that the
// Prometheus document agrees with /statsz — the acceptance criterion for
// the /metrics endpoint.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Fixed sequence: two compiles of the same source (miss, then hit),
	// two runs (each a cache hit on the compiled artifact), one malformed
	// run (an error), and one run of a fresh source (another miss).
	for i := 0; i < 2; i++ {
		if code, raw := post(t, ts.URL+"/compile", compileRequest{Source: sumSquares}, nil); code != 200 {
			t.Fatalf("compile %d: %d %s", i, code, raw)
		}
	}
	var run runResponse
	for i := 0; i < 2; i++ {
		if code, raw := post(t, ts.URL+"/run", runRequest{Source: sumSquares, PEs: 2}, &run); code != 200 {
			t.Fatalf("run %d: %d %s", i, code, raw)
		}
	}
	if code, _ := post(t, ts.URL+"/run", runRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed run: status %d, want 400", code)
	}
	fresh := strings.Replace(sumSquares, "10", "11", 1)
	if code, raw := post(t, ts.URL+"/run", runRequest{Source: fresh}, nil); code != 200 {
		t.Fatalf("fresh run: %d %s", code, raw)
	}

	m := scrape(t, ts.URL)
	var st ServiceStats
	if code := get(t, ts.URL+"/statsz", &st); code != 200 {
		t.Fatalf("GET /statsz: status %d", code)
	}

	want := map[string]float64{
		`qmd_requests_total{endpoint="compile"}`:  float64(st.Compiles),
		`qmd_requests_total{endpoint="run"}`:      float64(st.Runs),
		"qmd_shed_total":                          float64(st.Rejected),
		"qmd_errors_total":                        float64(st.Errors),
		"qmd_sim_cycles_total":                    float64(st.CyclesServed),
		"qmd_sim_instructions_total":              float64(st.InstructionsServed),
		"qmd_host_mips":                           st.HostMIPS,
		"qmd_cache_hits_total":                    float64(st.Cache.Hits),
		"qmd_cache_misses_total":                  float64(st.Cache.Misses),
		"qmd_cache_evictions_total":               float64(st.Cache.Evictions),
		"qmd_cache_entries":                       float64(st.Cache.Entries),
		"qmd_cache_capacity":                      float64(st.Cache.Capacity),
		"qmd_pool_workers":                        float64(st.Workers),
		"qmd_pool_queue_capacity":                 float64(st.QueueCapacity),
		"qmd_draining":                            0,
		`qmd_coalesced_total{endpoint="compile"}`: float64(st.CoalescedCompiles),
		`qmd_coalesced_total{endpoint="run"}`:     float64(st.CoalescedRuns),
		"qmd_flights_in_flight":                   float64(st.FlightsInFlight),
	}
	for key, v := range want {
		got, ok := m[key]
		if !ok {
			t.Errorf("metric %s missing", key)
			continue
		}
		if got != v {
			t.Errorf("%s = %v, statsz says %v", key, got, v)
		}
	}

	// Sanity on the absolute values the fixed sequence implies.
	if st.Compiles != 2 || st.Runs != 4 || st.Errors != 1 {
		t.Errorf("statsz counters = compiles %d, runs %d, errors %d; want 2, 4, 1",
			st.Compiles, st.Runs, st.Errors)
	}
	if st.CyclesServed <= 0 {
		t.Errorf("cycles_served = %d, want > 0", st.CyclesServed)
	}
	if st.InstructionsServed <= 0 || st.SimSeconds <= 0 || st.HostMIPS <= 0 {
		t.Errorf("host throughput counters = instrs %d, sim_seconds %g, host_mips %g; want all > 0",
			st.InstructionsServed, st.SimSeconds, st.HostMIPS)
	}
	// Compile 1 misses; compile 2, run 1, and run 2 hit; the fresh run
	// misses again. Nothing in this sequential sequence coalesces, so the
	// hit/miss totals fully account for every cache consultation.
	if st.Cache.Hits != 3 || st.Cache.Misses != 2 {
		t.Errorf("cache hits %d misses %d; want 3, 2", st.Cache.Hits, st.Cache.Misses)
	}
	if st.CoalescedCompiles != 0 || st.CoalescedRuns != 0 {
		t.Errorf("sequential requests coalesced: compiles %d, runs %d",
			st.CoalescedCompiles, st.CoalescedRuns)
	}

	// Histograms: every request that reached a handler is observed, errors
	// included; the +Inf bucket equals the count.
	for endpoint, n := range map[string]float64{"compile": 2, "run": 4} {
		count := m[fmt.Sprintf("qmd_request_seconds_count{endpoint=%q}", endpoint)]
		inf := m[fmt.Sprintf("qmd_request_seconds_bucket{endpoint=%q,le=\"+Inf\"}", endpoint)]
		if count != n || inf != n {
			t.Errorf("%s histogram count %v, +Inf %v; want %v", endpoint, count, inf, n)
		}
	}
	// Buckets are cumulative: each bound's count never decreases.
	var prev float64
	for _, b := range latencyBuckets {
		key := fmt.Sprintf("qmd_request_seconds_bucket{endpoint=%q,le=%q}", "run", formatBound(b))
		cur, ok := m[key]
		if !ok {
			t.Fatalf("bucket %s missing", key)
		}
		if cur < prev {
			t.Errorf("bucket le=%g count %v < previous %v; not cumulative", b, cur, prev)
		}
		prev = cur
	}
}

func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{})
	if code := get(t, off.URL+"/debug/pprof/cmdline", nil); code != http.StatusNotFound {
		t.Errorf("pprof disabled: /debug/pprof/cmdline status %d, want 404", code)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: status %d, want 200", resp.StatusCode)
	}
}
