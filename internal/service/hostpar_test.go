package service

import (
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

// TestRunHostParallel: a run with host_parallel set succeeds, reports the
// engine's counters, produces the identical simulated statistics to the
// sequential run, and feeds the service-level hostpar totals and metrics.
func TestRunHostParallel(t *testing.T) {
	svc, ts := newTestServer(t, Config{})
	var seq, par runResponse
	if code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 4}, &seq); code != 200 {
		t.Fatalf("sequential run: %d %s", code, raw)
	}
	if code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 4, HostParallel: 2}, &par); code != 200 {
		t.Fatalf("host-parallel run: %d %s", code, raw)
	}
	if par.Stats.HostWorkers != 2 {
		t.Errorf("host_workers = %d, want 2", par.Stats.HostWorkers)
	}
	if par.Stats.HostEpochs == 0 {
		t.Error("host-parallel run reported zero fill passes")
	}
	// Everything but the host-side block must match the sequential run.
	seqCmp, parCmp := *seq.Stats, *par.Stats
	seqCmp.HostSeconds, seqCmp.HostMIPS = 0, 0
	parCmp.HostSeconds, parCmp.HostMIPS = 0, 0
	parCmp.HostWorkers, parCmp.HostEpochs, parCmp.HostBarriers, parCmp.HostCrossMessages = 0, 0, 0, 0
	if !reflect.DeepEqual(seqCmp, parCmp) {
		t.Errorf("simulated stats differ between engines:\nseq: %+v\npar: %+v", seqCmp, parCmp)
	}

	st := svc.Stats()
	if st.HostParRuns != 1 {
		t.Errorf("HostParRuns = %d, want 1", st.HostParRuns)
	}
	if st.HostParEpochs == 0 {
		t.Error("HostParEpochs = 0 after a host-parallel run")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"qmd_hostpar_runs_total 1",
		"qmd_hostpar_epochs_total",
		"qmd_hostpar_barriers_total",
		"qmd_hostpar_cross_messages_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRunHostParallelRejected: worker counts the machine cannot shard are a
// client error, answered 400 before the run is admitted — on the dedicated
// field and through the params overlay alike.
func TestRunHostParallelRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, raw := post(t, ts.URL+"/run",
		runRequest{Source: parSquares, PEs: 4, HostParallel: 64}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("oversized worker count: status %d, want 400 (%s)", code, raw)
	}
	if msg := errorBody(t, raw); !strings.Contains(msg, "HostParallel") {
		t.Errorf("error %q does not name HostParallel", msg)
	}

	code, raw = post(t, ts.URL+"/run", map[string]any{
		"source": parSquares,
		"pes":    4,
		"params": map[string]any{"HostParallel": 64},
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("params-overlay worker count: status %d, want 400 (%s)", code, raw)
	}
	errorBody(t, raw)
}
