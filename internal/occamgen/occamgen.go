// Package occamgen generates random whole OCCAM programs for end-to-end
// differential testing of the compiler→simulator pipeline against the
// reference interpreter. It extends the enumeration idea of
// internal/exprgen (every expression shape) and the scalar generator of
// internal/interp (random channel-free programs) to the full statement
// language: SEQ, PAR, IF, WHILE, replicators, nested procedure
// declarations, and — the part the interpreter's generator cannot do —
// channel communication between parallel branches.
//
// Generated programs are total, deterministic and deadlock-free by
// construction:
//
//   - no division or remainder (the only partial operators), masked vector
//     subscripts, and while loops counted down from small constants;
//   - parallel branches have statically disjoint write sets and never read
//     a scalar or vector a sibling may write (OCCAM's usage rule);
//   - every channel connects exactly two branches of one PAR, and both
//     endpoints perform their operations in one shared script order (the
//     channel-pairing discipline): the i-th communication of the script is
//     a rendezvous both sides reach after locally terminating work, so by
//     induction every operation completes. Replicated-par fan-in uses one
//     channel-vector element per instance, drained in index order by a
//     single collector.
//
// The OCCAM subset has no ALT construct, so generated programs cover the
// remaining process forms; channels appear only outside procedure bodies,
// matching the reference interpreter's supported subset.
package occamgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the shape of generated programs.
type Config struct {
	// Budget is the approximate number of statements the program body may
	// contain (procedure bodies and the funnel epilogue are extra).
	Budget int
	// MaxDepth bounds construct nesting.
	MaxDepth int
	// Channels enables communicating PARs; off, the generator still emits
	// the full channel-free statement language.
	Channels bool
	// Procs is the number of generated procedure declarations (0–3 are
	// useful values; one of them nests a further procedure).
	Procs int
}

// DefaultConfig is the shape used by the differential fuzz campaigns.
func DefaultConfig() Config {
	return Config{Budget: 24, MaxDepth: 4, Channels: true, Procs: 2}
}

// GenerateSeed builds the program a seed denotes — the form every repro
// line and fuzz campaign uses.
func GenerateSeed(seed int64, cfg Config) string {
	return Generate(rand.New(rand.NewSource(seed)), cfg)
}

// Generate builds one random program from the rng's stream. The same
// stream yields the same program.
func Generate(rng *rand.Rand, cfg Config) string {
	if cfg.Budget <= 0 {
		cfg.Budget = 1
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 1
	}
	g := &generator{rng: rng, cfg: cfg, budget: cfg.Budget}
	return g.program()
}

const (
	vaSize, vaMask = 8, 7
	vbSize, vbMask = 4, 3
	outSize        = 8
)

var allScalars = []string{"s0", "s1", "s2", "s3", "s4", "s5"}

// envCtx captures what a statement may write and what its expressions may
// read without racing a parallel sibling.
type envCtx struct {
	write    []string // assignable scalars
	read     []string // readable scalars
	wVA, wVB bool     // may write the vector
	rVA, rVB bool     // may read the vector
	// chanOK permits opening a communicating PAR here (false once inside
	// an if/while arm, where an unbalanced execution count could break
	// the pairing discipline).
	chanOK bool
}

type generator struct {
	rng    *rand.Rand
	cfg    Config
	b      strings.Builder
	budget int
	// free while counters (each loop consumes one for its lifetime).
	counters []string
	// reps in scope (replicator indices readable in expressions).
	reps  []string
	depth int
	// nextChan numbers channel declarations program-wide so textual
	// channel names are unique (the validity tests count ! and ? per
	// name).
	nextChan int
	// procs generated, callable from statements.
	procs []procSig
}

type procSig struct {
	name   string
	nVal   int  // value parameters
	hasVar bool // trailing var parameter
	vec    bool // leading vec parameter (word vector)
}

func (g *generator) line(indent int, format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", indent))
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *generator) program() string {
	g.counters = []string{"w0", "w1", "w2", "w3"}
	g.line(0, "def mag = 3:")
	g.line(0, "var out[%d], va[%d], vb[%d]:", outSize, vaSize, vbSize)
	g.line(0, "var s0, s1, s2, s3, s4, s5:")
	g.line(0, "var w0, w1, w2, w3:")
	g.emitProcs()
	g.line(0, "seq")
	ctx := envCtx{write: allScalars, read: allScalars,
		wVA: true, wVB: true, rVA: true, rVB: true, chanOK: g.cfg.Channels}
	// Seed assignments so early expressions read nonzero values.
	for i, s := range allScalars[:3] {
		g.line(1, "%s := %d", s, g.rng.Intn(17)-8+i)
	}
	n := 3 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.stmt(1, ctx)
	}
	// Funnel every scalar into out so the differential check sees them.
	for i, s := range allScalars {
		g.line(1, "out[%d] := %s", i, s)
	}
	return g.b.String()
}

// emitProcs declares the program's procedures. The first is always the
// scalar combiner the statement generator calls most; when cfg.Procs
// permits, a vector writer and a nested-declaration wrapper follow.
func (g *generator) emitProcs() {
	if g.cfg.Procs < 1 {
		return
	}
	g.line(0, "proc pf(value x, value y, var z) =")
	g.line(1, "z := ((x * 3) - y) >< (x << 1)")
	g.procs = append(g.procs, procSig{name: "pf", nVal: 2, hasVar: true})
	if g.cfg.Procs < 2 {
		return
	}
	g.line(0, "proc pv(vec d, value x, value e) =")
	g.line(1, "d[x /\\ %d] := e + x", vaMask)
	g.procs = append(g.procs, procSig{name: "pv", vec: true, nVal: 2})
	if g.cfg.Procs < 3 {
		return
	}
	// A nested procedure declaration: pw scopes its own helper and calls
	// it twice, exercising scoped proc symbols and repeated call sites.
	g.line(0, "proc pw(value a, var r) =")
	g.line(1, "proc inner(value t, var u) =")
	g.line(2, "u := (t * t) + %d", g.rng.Intn(9))
	g.line(1, "var h:")
	g.line(1, "seq")
	g.line(2, "inner(a, h)")
	g.line(2, "inner(h /\\ 15, r)")
	g.procs = append(g.procs, procSig{name: "pw", nVal: 1, hasVar: true})
}

// spend consumes budget; when exhausted the statement generator bottoms
// out into simple assignments.
func (g *generator) spend() { g.budget-- }

// stmt emits one random statement under the given read/write permissions.
func (g *generator) stmt(indent int, ctx envCtx) {
	g.depth++
	defer func() { g.depth-- }()
	g.spend()
	choices := []int{0, 0, 1, 2} // weight simple assignments
	if g.depth < g.cfg.MaxDepth && g.budget > 0 {
		choices = append(choices, 3, 4, 5, 6, 7, 8)
		if ctx.chanOK && len(ctx.write) >= 2 {
			// Communicating constructs get double weight: they are the
			// pipeline's rarest code path.
			choices = append(choices, 9, 9, 10)
		}
	}
	switch c := choices[g.rng.Intn(len(choices))]; c {
	case 0: // scalar assignment
		if len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		g.line(indent, "%s := %s", ctx.write[g.rng.Intn(len(ctx.write))], g.expr(0, ctx))
	case 1: // vector write
		switch {
		case ctx.wVA:
			g.line(indent, "va[(%s) /\\ %d] := %s", g.expr(1, ctx), vaMask, g.expr(0, ctx))
		case ctx.wVB:
			g.line(indent, "vb[(%s) /\\ %d] := %s", g.expr(1, ctx), vbMask, g.expr(0, ctx))
		default:
			g.line(indent, "skip")
		}
	case 2: // proc call
		g.call(indent, ctx)
	case 3: // seq block
		g.line(indent, "seq")
		k := 2 + g.rng.Intn(2)
		for i := 0; i < k; i++ {
			g.stmt(indent+1, ctx)
		}
	case 4: // plain par with disjoint write sets and race-free reads
		if len(ctx.write) < 2 {
			g.stmt(indent, ctx)
			return
		}
		g.line(indent, "par")
		left, right := g.splitPar(ctx)
		g.branch(indent+1, left)
		g.branch(indent+1, right)
	case 5: // if
		g.line(indent, "if")
		inner := ctx
		inner.chanOK = false
		k := 1 + g.rng.Intn(3)
		for i := 0; i < k; i++ {
			g.line(indent+1, "%s", g.expr(0, ctx))
			g.stmt(indent+2, inner)
		}
	case 6: // bounded while
		if len(g.counters) == 0 || len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		ctr := g.counters[len(g.counters)-1]
		g.counters = g.counters[:len(g.counters)-1]
		inner := ctx
		inner.chanOK = false
		bound := 1 + g.rng.Intn(3)
		g.line(indent, "seq")
		g.line(indent+1, "%s := 0", ctr)
		g.line(indent+1, "while %s < %d", ctr, bound)
		g.line(indent+2, "seq")
		g.stmt(indent+3, inner)
		g.line(indent+3, "%s := %s + 1", ctr, ctr)
	case 7: // replicated seq
		rep := fmt.Sprintf("r%d", len(g.reps))
		inner := ctx
		inner.chanOK = false
		g.line(indent, "seq %s = [%d for %d]", rep, g.rng.Intn(3), 1+g.rng.Intn(3))
		g.reps = append(g.reps, rep)
		g.stmt(indent+1, inner)
		g.reps = g.reps[:len(g.reps)-1]
	case 8: // replicated par writing disjoint elements of one vector
		rep := fmt.Sprintf("r%d", len(g.reps))
		g.reps = append(g.reps, rep)
		body := ctx
		body.write = nil
		body.chanOK = false
		switch {
		case ctx.wVA:
			body.rVA, body.wVA, body.wVB = false, false, false
			g.line(indent, "par %s = [0 for %d]", rep, 1+g.rng.Intn(vaSize))
			g.line(indent+1, "va[%s] := %s", rep, g.expr(0, body))
		case ctx.wVB:
			body.rVB, body.wVA, body.wVB = false, false, false
			g.line(indent, "par %s = [0 for %d]", rep, 1+g.rng.Intn(vbSize))
			g.line(indent+1, "vb[%s] := %s", rep, g.expr(0, body))
		default:
			g.line(indent, "skip")
		}
		g.reps = g.reps[:len(g.reps)-1]
	case 9: // communicating par (scripted rendezvous)
		g.commPar(indent, ctx)
	case 10: // replicated-par fan-in over a channel vector
		g.fanInPar(indent, ctx)
	}
}

// call emits a random procedure call (or a fallback when none applies).
func (g *generator) call(indent int, ctx envCtx) {
	if len(g.procs) == 0 {
		if len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		g.line(indent, "%s := %s", ctx.write[g.rng.Intn(len(ctx.write))], g.expr(0, ctx))
		return
	}
	sig := g.procs[g.rng.Intn(len(g.procs))]
	if sig.vec {
		if !ctx.wVA {
			g.line(indent, "skip")
			return
		}
		// pv writes va: its value arguments must not read va (another
		// instance of this statement's surrounding context may race).
		g.line(indent, "%s(va, %s, %s)", sig.name, g.exprNoVA(1, ctx), g.exprNoVA(1, ctx))
		return
	}
	if len(ctx.write) == 0 {
		g.line(indent, "skip")
		return
	}
	args := make([]string, 0, sig.nVal+1)
	for i := 0; i < sig.nVal; i++ {
		args = append(args, g.expr(1, ctx))
	}
	if sig.hasVar {
		args = append(args, ctx.write[g.rng.Intn(len(ctx.write))])
	}
	g.line(indent, "%s(%s)", sig.name, strings.Join(args, ", "))
}

// splitPar divides the writable environment into two race-free branch
// contexts (the same partition discipline as the interpreter's generator).
func (g *generator) splitPar(ctx envCtx) (left, right envCtx) {
	cut := 1 + g.rng.Intn(len(ctx.write)-1)
	l, r := ctx.write[:cut], ctx.write[cut:]
	inert := diff(ctx.read, ctx.write)
	left = envCtx{
		write: l, read: union(l, inert),
		wVA: ctx.wVA, rVA: ctx.wVA || (ctx.rVA && !ctx.wVA),
		rVB:    ctx.rVB && !ctx.wVB,
		chanOK: ctx.chanOK,
	}
	right = envCtx{
		write: r, read: union(r, inert),
		wVB: ctx.wVB, rVB: ctx.wVB || (ctx.rVB && !ctx.wVB),
		rVA:    ctx.rVA && !ctx.wVA,
		chanOK: ctx.chanOK,
	}
	return left, right
}

// branch emits one parallel component.
func (g *generator) branch(indent int, ctx envCtx) {
	g.line(indent, "seq")
	k := 1 + g.rng.Intn(2)
	for i := 0; i < k; i++ {
		g.stmt(indent+1, ctx)
	}
}

// commPar emits a two-branch PAR whose branches communicate over freshly
// declared channels following one shared script: both endpoints perform
// the script's operations in the same order, so every operation is a
// rendezvous both sides reach — deadlock-free by induction.
func (g *generator) commPar(indent int, ctx envCtx) {
	left, right := g.splitPar(ctx)
	// Communicating branches must not open further communicating PARs of
	// their own script channels inside conditional arms; nested commPars
	// at branch top level are fine and use fresh channels.
	nc := 1 + g.rng.Intn(2)
	names := make([]string, nc)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", g.nextChan)
		g.nextChan++
	}
	g.line(indent, "chan %s:", strings.Join(names, ", "))
	g.line(indent, "par")

	// The script: 1–4 tokens of (channel, direction). Direction true
	// means left sends, right receives.
	type token struct {
		ch  string
		l2r bool
	}
	script := make([]token, 1+g.rng.Intn(4))
	for i := range script {
		script[i] = token{ch: names[g.rng.Intn(nc)], l2r: g.rng.Intn(2) == 0}
	}

	emit := func(ctx envCtx, sendSide bool) {
		g.line(indent+1, "seq")
		for _, tk := range script {
			// Local work between communications.
			if g.rng.Intn(2) == 0 && g.budget > 0 {
				inner := ctx
				inner.chanOK = false
				g.stmt(indent+2, inner)
			}
			if tk.l2r == sendSide {
				g.line(indent+2, "%s ! %s", tk.ch, g.expr(1, ctx))
			} else {
				// splitPar gives each side at least one scalar, so a
				// receive target always exists.
				g.line(indent+2, "%s ? %s", tk.ch, ctx.write[g.rng.Intn(len(ctx.write))])
			}
		}
		if g.rng.Intn(2) == 0 && g.budget > 0 {
			inner := ctx
			inner.chanOK = false
			g.stmt(indent+2, inner)
		}
	}
	emit(left, true)
	emit(right, false)
}

// fanInPar emits the replicated-par fan-in pattern: n instances each send
// one value on their own element of a fresh channel vector, and a single
// collector drains the elements in index order into one of its vectors.
func (g *generator) fanInPar(indent int, ctx envCtx) {
	if len(g.counters) == 0 {
		g.stmt(indent, ctx)
		return
	}
	var vec string
	var mask int
	body := ctx
	body.write = nil
	body.chanOK = false
	switch {
	case ctx.wVA:
		vec, mask = "va", vaMask
		body.rVA, body.wVA, body.wVB = false, false, false
	case ctx.wVB:
		vec, mask = "vb", vbMask
		body.rVB, body.wVA, body.wVB = false, false, false
	default:
		g.stmt(indent, ctx)
		return
	}
	n := 2 + g.rng.Intn(3)
	cv := fmt.Sprintf("c%d", g.nextChan)
	g.nextChan++
	rep := fmt.Sprintf("r%d", len(g.reps))
	ctr := g.counters[len(g.counters)-1]
	g.counters = g.counters[:len(g.counters)-1]
	g.line(indent, "chan %s[%d]:", cv, n)
	g.line(indent, "par")
	// Senders: instance i sends a function of i (reads only inert state).
	g.reps = append(g.reps, rep)
	g.line(indent+1, "par %s = [0 for %d]", rep, n)
	g.line(indent+2, "%s[%s] ! %s", cv, rep, g.expr(1, body))
	g.reps = g.reps[:len(g.reps)-1]
	// Collector: drains in index order into the vector it owns.
	g.line(indent+1, "seq")
	g.line(indent+2, "%s := 0", ctr)
	g.line(indent+2, "while %s < %d", ctr, n)
	g.line(indent+3, "seq")
	g.line(indent+4, "%s[%s] ? %s[%s /\\ %d]", cv, ctr, vec, ctr, mask)
	g.line(indent+4, "%s := %s + 1", ctr, ctr)
	// The counter stays consumed: a statement emitted after this construct
	// may run in parallel with the collector (inside an enclosing PAR), so
	// handing the counter back could let a later while loop race on it.
}

// exprNoVA builds an expression that does not read va.
func (g *generator) exprNoVA(depth int, ctx envCtx) string {
	c := ctx
	c.rVA = false
	return g.expr(depth, c)
}

// expr emits a random total expression under the read permissions. No
// division or remainder appears: they are the only partial operators, and
// totality is what guarantees generated programs cannot fault.
func (g *generator) expr(depth int, ctx envCtx) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		for tries := 0; tries < 4; tries++ {
			switch g.rng.Intn(4) {
			case 0:
				return fmt.Sprintf("%d", g.rng.Intn(41)-20)
			case 1:
				if len(ctx.read) > 0 {
					return ctx.read[g.rng.Intn(len(ctx.read))]
				}
			case 2:
				if len(g.reps) > 0 {
					return g.reps[g.rng.Intn(len(g.reps))]
				}
				return "mag"
			default:
				if ctx.rVA && g.rng.Intn(2) == 0 {
					return fmt.Sprintf("va[(%s) /\\ %d]", g.expr(depth+2, ctx), vaMask)
				}
				if ctx.rVB {
					return fmt.Sprintf("vb[(%s) /\\ %d]", g.expr(depth+2, ctx), vbMask)
				}
			}
		}
		return fmt.Sprintf("%d", g.rng.Intn(21)-10)
	}
	ops := []string{"+", "-", "*", "/\\", "\\/", "><", "<<", ">>", "=", "<>", "<", ">", "<=", ">=", "and", "or"}
	op := ops[g.rng.Intn(len(ops))]
	if g.rng.Intn(8) == 0 {
		return fmt.Sprintf("(- %s)", g.expr(depth+1, ctx))
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth+1, ctx), op, g.expr(depth+1, ctx))
}

func union(a, b []string) []string {
	out := append([]string{}, a...)
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			out = append(out, s)
		}
	}
	return out
}

func diff(a, b []string) []string {
	drop := map[string]bool{}
	for _, s := range b {
		drop[s] = true
	}
	var out []string
	for _, s := range a {
		if !drop[s] {
			out = append(out, s)
		}
	}
	return out
}
