package occamgen

import (
	"fmt"
	"math/rand"
	"strings"

	"queuemachine/internal/compile"
	"queuemachine/internal/interp"
	"queuemachine/internal/occam"
	"queuemachine/internal/sim"
)

// checkedVectors are the program state the differential oracle compares:
// every generated program funnels all its scalars into out, so these three
// vectors cover the whole observable store.
var checkedVectors = []string{"out", "va", "vb"}

// interpBudget bounds the reference execution of one generated program.
// Generated loops are tiny, so a legitimate program finishes well under
// this; only an (impossible, by construction) runaway would hit it.
const interpBudget = 2_000_000

// diffConfigs are the compiler settings every program runs under. The
// fully de-optimized configuration routes every constant through the
// operand queue and may legitimately exceed the architecture's 256-word
// page limit; that specific failure is skipped, as in the interp package's
// differential suite.
var diffConfigs = []struct {
	Name string
	Opts compile.Options
}{
	{"optimized", compile.Options{}},
	{"unoptimized", compile.Options{NoInputOrder: true, NoLiveFilter: true, NoPriority: true, NoConstFold: true}},
}

// diffPECounts are the machine sizes every configuration simulates on.
var diffPECounts = []int{1, 3}

// Failure describes one differential divergence, with everything needed to
// reproduce and report it.
type Failure struct {
	Seed   int64  // generating seed (-1 when the source came from elsewhere)
	Src    string // the offending program
	Stage  string // pipeline stage that diverged or errored
	Detail string // what went wrong
	// Minimized is the shrunken reproducer (empty until Shrink runs).
	Minimized string
}

func (f *Failure) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "occamgen: differential failure at %s: %s\n", f.Stage, f.Detail)
	if f.Seed >= 0 {
		fmt.Fprintf(&b, "reproduce with: go run ./cmd/qfuzz -seed %d -n 1\n", f.Seed)
	}
	src := f.Src
	if f.Minimized != "" {
		src = f.Minimized
		b.WriteString("minimized program:\n")
	} else {
		b.WriteString("program:\n")
	}
	b.WriteString(src)
	return b.String()
}

// CheckProgram runs one source program through the full differential
// oracle: reference interpreter vs compiled object code under every
// configuration in diffConfigs, simulated at every size in diffPECounts.
// A nil return means every configuration agreed on every checked vector.
func CheckProgram(src string) *Failure {
	fail := func(stage, format string, args ...any) *Failure {
		return &Failure{Seed: -1, Src: src, Stage: stage, Detail: fmt.Sprintf(format, args...)}
	}
	prog, err := occam.Parse(src)
	if err != nil {
		return fail("parse", "%v", err)
	}
	ref, err := interp.RunLimited(prog, interpBudget)
	if err != nil {
		return fail("interp", "%v", err)
	}
	want := map[string][]int32{}
	for _, name := range checkedVectors {
		v, err := ref.VectorByName(name)
		if err != nil {
			return fail("interp", "missing vector %s: %v", name, err)
		}
		want[name] = v
	}
	for _, cfg := range diffConfigs {
		art, err := compile.Compile(src, cfg.Opts)
		if err != nil {
			if cfg.Opts.NoConstFold && strings.Contains(err.Error(), "operand queue") {
				continue
			}
			return fail("compile/"+cfg.Name, "%v", err)
		}
		for _, pes := range diffPECounts {
			res, err := sim.Run(art.Object, pes, sim.DefaultParams())
			if err != nil {
				return fail(fmt.Sprintf("sim/%s/%dpe", cfg.Name, pes), "%v", err)
			}
			for _, name := range checkedVectors {
				base, err := art.VectorBase(name)
				if err != nil {
					return fail("layout/"+cfg.Name, "vector %s: %v", name, err)
				}
				for i, wv := range want[name] {
					if got := res.Data[int(base)/4+i]; got != wv {
						return fail(fmt.Sprintf("compare/%s/%dpe", cfg.Name, pes),
							"%s[%d] = %d, interpreter says %d", name, i, got, wv)
					}
				}
			}
		}
	}
	return nil
}

// CheckSeed generates the program for one seed and runs the differential
// oracle over it, shrinking any failure to a minimal reproducer.
func CheckSeed(seed int64, cfg Config) *Failure {
	src := Generate(rand.New(rand.NewSource(seed)), cfg)
	f := CheckProgram(src)
	if f == nil {
		return nil
	}
	f.Seed = seed
	f.Minimized = Shrink(src, func(candidate string) bool {
		c := CheckProgram(candidate)
		return c != nil && c.Stage == f.Stage
	})
	return f
}
