package occamgen

import "strings"

// maxShrinkEvals bounds the number of predicate evaluations one Shrink
// call may spend; each evaluation runs the full differential oracle, so
// the cap keeps shrinking to a few seconds even for large programs.
const maxShrinkEvals = 400

// Shrink minimizes a failing program by structural line-block deletion:
// repeatedly remove an indentation block (a line plus every deeper line
// under it) or replace it with skip, keeping a candidate whenever the
// failure predicate still holds. The predicate receives candidate source
// and reports whether it still exhibits the original failure; candidates
// that fail differently (or not at all) are discarded. Returns the
// smallest source found — at worst the input itself.
func Shrink(src string, failsSame func(string) bool) string {
	best := strings.Split(strings.TrimRight(src, "\n"), "\n")
	evals := 0
	try := func(candidate []string) bool {
		if evals >= maxShrinkEvals {
			return false
		}
		evals++
		return failsSame(strings.Join(candidate, "\n") + "\n")
	}
	for improved := true; improved; {
		improved = false
		for i := 0; i < len(best) && evals < maxShrinkEvals; i++ {
			end := blockEnd(best, i)
			// First try deleting the block outright, then degrading it to
			// skip (which preserves arity where a construct needs a body).
			if cand := append(append([]string{}, best[:i]...), best[end:]...); try(cand) {
				best = cand
				improved = true
				i--
				continue
			}
			if end-i < 2 || !isStmtLine(best[i]) {
				continue
			}
			cand := append([]string{}, best[:i]...)
			cand = append(cand, indentOf(best[i])+"skip")
			cand = append(cand, best[end:]...)
			if try(cand) {
				best = cand
				improved = true
			}
		}
	}
	return strings.Join(best, "\n") + "\n"
}

// blockEnd returns the index one past the last line belonging to the
// block opened at line i (every following line with strictly deeper
// indentation).
func blockEnd(lines []string, i int) int {
	d := indentDepth(lines[i])
	j := i + 1
	for j < len(lines) && indentDepth(lines[j]) > d {
		j++
	}
	return j
}

func indentDepth(line string) int {
	return len(line) - len(strings.TrimLeft(line, " "))
}

func indentOf(line string) string {
	return line[:indentDepth(line)]
}

// isStmtLine reports whether a line can be degraded to skip: declarations,
// procedure headers and if-guards cannot.
func isStmtLine(line string) bool {
	t := strings.TrimSpace(line)
	if t == "" || strings.HasSuffix(t, ":") || strings.HasSuffix(t, "=") {
		return false
	}
	if strings.HasPrefix(t, "proc ") || strings.HasPrefix(t, "def ") {
		return false
	}
	return true
}
