package occamgen

import (
	"strings"
	"testing"
)

// FuzzCompileRun is the native-fuzzing face of the differential oracle:
// any source text the front end and the reference interpreter both accept
// must compile, simulate, and produce interpreter-identical vectors under
// every configuration. Inputs the pipeline rejects are skipped — the
// properties under test are "no panic anywhere" and "no silent divergence".
func FuzzCompileRun(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 3, 7, 13, 44} {
		f.Add(GenerateSeed(seed, DefaultConfig()))
	}
	f.Add("var out[8], va[8], vb[4]:\nout[0] := 1\n")
	f.Add(`var out[8], va[8], vb[4], s0, s1:
chan c0:
seq
  s0 := 5
  par
    c0 ! s0 * 3
    c0 ? s1
  out[0] := s1
`)
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			t.Skip("oversized input")
		}
		fail := CheckProgram(src)
		if fail == nil {
			return
		}
		switch {
		case fail.Stage == "parse", fail.Stage == "interp":
			// The input never entered the differential region: the front
			// end rejected it, or it is outside the reference
			// interpreter's subset (runtime faults included).
			return
		case strings.Contains(fail.Detail, "operand queue"),
			strings.Contains(fail.Detail, "data segment"):
			// Architecture capacity limits the interpreter does not model.
			return
		}
		t.Fatalf("divergence on fuzzed input:\n%v", fail)
	})
}
