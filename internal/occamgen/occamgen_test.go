package occamgen

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"queuemachine/internal/interp"
	"queuemachine/internal/occam"
)

// TestValidityInvariants checks the by-construction guarantees over a wide
// seed range: every generated program parses, is channel-balanced (each
// channel name sends exactly as often as it receives), stays within a
// bounded size, and executes cleanly under the reference interpreter.
func TestValidityInvariants(t *testing.T) {
	seeds := 600
	if testing.Short() {
		seeds = 60
	}
	cfg := DefaultConfig()
	var sawChan, sawFanIn int
	for seed := 0; seed < seeds; seed++ {
		src := Generate(rand.New(rand.NewSource(int64(seed))), cfg)

		if n := strings.Count(src, "\n"); n > 400 {
			t.Fatalf("seed %d: program is %d lines, budget is not bounding size\n%s", seed, n, src)
		}
		prog, err := occam.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: does not parse: %v\n%s", seed, err, src)
		}
		checkChannelBalance(t, seed, src)
		if strings.Contains(src, "chan ") {
			sawChan++
			if strings.Contains(src, "] ! ") {
				sawFanIn++
			}
		}
		if _, err := interp.RunLimited(prog, interpBudget); err != nil {
			t.Fatalf("seed %d: interpreter rejects: %v\n%s", seed, err, src)
		}
	}
	// The campaign is pointless if the rare paths never fire.
	if sawChan < seeds/10 {
		t.Errorf("only %d/%d programs communicate; channel weighting regressed", sawChan, seeds)
	}
	if sawFanIn == 0 {
		t.Errorf("no program used replicated-par fan-in over %d seeds", seeds)
	}
}

var chanOpRE = regexp.MustCompile(`(c\d+)(\[[^\]]*\])? ([!?]) `)

// checkChannelBalance verifies textually that every channel name performs
// equally many sends and receives — the static face of the script
// discipline that makes generated programs deadlock-free.
func checkChannelBalance(t *testing.T, seed int, src string) {
	t.Helper()
	sends := map[string]int{}
	recvs := map[string]int{}
	for _, m := range chanOpRE.FindAllStringSubmatch(src, -1) {
		if m[3] == "!" {
			sends[m[1]]++
		} else {
			recvs[m[1]]++
		}
	}
	for ch, n := range sends {
		// Fan-in channels send once per replicated instance and receive
		// once inside a collector loop; their textual counts are 1:1 with
		// the single send and single receive line.
		if recvs[ch] == 0 {
			t.Fatalf("seed %d: channel %s has %d sends but no receive\n%s", seed, ch, n, src)
		}
	}
	for ch, n := range recvs {
		if sends[ch] == 0 {
			t.Fatalf("seed %d: channel %s has %d receives but no send\n%s", seed, ch, n, src)
		}
	}
}

// TestGeneratorDeterministic pins that a seed fully determines the
// program, across configurations.
func TestGeneratorDeterministic(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), {Budget: 10, MaxDepth: 3}, {Budget: 40, MaxDepth: 5, Channels: true, Procs: 3}} {
		a := Generate(rand.New(rand.NewSource(99)), cfg)
		b := Generate(rand.New(rand.NewSource(99)), cfg)
		if a != b {
			t.Fatalf("config %+v: same seed produced different programs", cfg)
		}
	}
	if Generate(rand.New(rand.NewSource(1)), DefaultConfig()) == Generate(rand.New(rand.NewSource(2)), DefaultConfig()) {
		t.Error("different seeds produced identical programs")
	}
}

// TestDifferentialSeeds runs the full oracle — interpreter vs compiler
// configurations vs machine sizes — over a seed range.
func TestDifferentialSeeds(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 6
	}
	cfg := DefaultConfig()
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			if f := CheckSeed(int64(seed), cfg); f != nil {
				t.Fatal(f.Error())
			}
		})
	}
}

// TestCheckProgramCatchesDivergence feeds the oracle a program whose
// behavior it must reject at some stage (here: a parse error), proving the
// harness cannot silently pass garbage.
func TestCheckProgramCatchesDivergence(t *testing.T) {
	f := CheckProgram("var out[8], va[8], vb[4]:\nseq\n  out[0] :=\n")
	if f == nil {
		t.Fatal("oracle accepted an unparseable program")
	}
	if f.Stage != "parse" {
		t.Errorf("stage = %s, want parse", f.Stage)
	}
	f = CheckProgram("var out[8], va[8], vb[4], x:\nchan c:\npar\n  c ! 1\n  c ! 2\n")
	if f == nil {
		t.Fatal("oracle accepted a deadlocking program")
	}
}

// TestShrinkReducesProgram checks the minimizer strips statements
// irrelevant to a failure predicate.
func TestShrinkReducesProgram(t *testing.T) {
	src := "var v[4], a, b, c:\nseq\n  a := 1\n  b := 2\n  c := 3\n  v[9] := a\n  b := b + 1\n"
	min := Shrink(src, func(cand string) bool {
		return strings.Contains(cand, "v[9]")
	})
	if !strings.Contains(min, "v[9]") {
		t.Fatalf("shrinking lost the failure:\n%s", min)
	}
	if strings.Count(min, "\n") >= strings.Count(src, "\n") {
		t.Errorf("shrinking removed nothing:\n%s", min)
	}
	if strings.Contains(min, "c := 3") {
		t.Errorf("irrelevant statement survived:\n%s", min)
	}
}

// TestShrinkPredicateBudget pins the evaluation cap: a pathological
// predicate cannot make shrinking run unbounded.
func TestShrinkPredicateBudget(t *testing.T) {
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("  s0 := %d", i))
	}
	src := "var s0:\nseq\n" + strings.Join(lines, "\n") + "\n"
	evals := 0
	Shrink(src, func(string) bool {
		evals++
		return false
	})
	if evals > maxShrinkEvals {
		t.Errorf("predicate evaluated %d times, cap is %d", evals, maxShrinkEvals)
	}
}
