package pe

import (
	"fmt"

	"queuemachine/internal/isa"
	"queuemachine/internal/trace"
)

// MemoryBus provides data-memory access to the processing element. The
// implementation decides locality: the multiprocessor interleaves the data
// segment across processing-element memories and charges ring latency for
// remote words. The returned cycles are *additional* cost beyond the
// processing element's base memory cycle count.
type MemoryBus interface {
	FetchWord(peID int, byteAddr int32) (int32, int, error)
	StoreWord(peID int, byteAddr, val int32) (int, error)
	FetchByte(peID int, byteAddr int32) (int32, int, error)
	StoreByte(peID int, byteAddr, val int32) (int, error)
}

// ActionKind discriminates the operations a processing element cannot
// complete by itself and hands to the surrounding system (message processor
// or kernel). The kind and its payload live inline in the Outcome rather
// than behind an interface so the execute path never boxes a value onto the
// heap.
type ActionKind uint8

const (
	// ActNone: the instruction completed locally.
	ActNone ActionKind = iota
	// ActSend asks the message system to send Val on channel Ch. The
	// context blocks until the rendezvous completes.
	ActSend
	// ActRecv asks the message system for a value from channel Ch. The
	// context blocks until a sender arrives; the value is delivered via
	// Machine.Complete.
	ActRecv
	// ActTrap invokes the kernel entry point Code with argument Arg;
	// results (if any) are delivered via Machine.Complete.
	ActTrap
)

// Outcome reports the execution of one instruction.
type Outcome struct {
	Cycles int
	// Queue is the operand-queue span sampled at issue (§5.2's queue
	// length). The machine also accumulates it into Stats.QueueSum;
	// returning it makes the outcome self-contained for batching callers
	// that fold per-instruction statistics without re-reading the context.
	Queue int
	// Act is non-ActNone when the instruction requires external
	// completion; the context must not execute further until the system
	// completes or resumes it.
	Act ActionKind
	// Ch and Val carry the ActSend payload; ActRecv uses Ch alone.
	Ch, Val int32
	// Code and Arg carry the ActTrap payload.
	Code, Arg int32
}

// Stats counts the events of one processing element's instruction stream.
type Stats struct {
	Instructions int64
	WindowHits   int64 // queue operands served by window registers
	WindowMisses int64 // queue operands fetched from the memory page
	MemOps       int64 // data memory accesses (fetch/store)
	ChannelOps   int64 // send/recv issued
	Traps        int64
	Branches     int64
	Cycles       int64 // total busy cycles accumulated by ExecOne
	// QueueSum accumulates the operand queue length sampled at every
	// instruction; QueueSum/Instructions is the mean queue length of
	// §5.2's page-utilization trade-off.
	QueueSum int64
}

// AvgQueueLength reports the mean operand queue span per instruction.
func (s *Stats) AvgQueueLength() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.Instructions)
}

// Program is an object file with its instruction streams pre-decoded for
// execution.
type Program struct {
	Obj    *isa.Object
	graphs [][]decodedInstr
}

type decodedInstr struct {
	in    isa.Instr
	info  isa.Info
	words int // 0 marks a slot that is not the start of an instruction
}

// LoadProgram validates and pre-decodes an object program. Each graph's
// stream decodes into a dense array indexed by program counter — the fetch
// on the simulator's hot path is an array load, not a map probe — with the
// opcode's static Info cached alongside so execution never consults the
// opcode table.
func LoadProgram(obj *isa.Object) (*Program, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	p := &Program{Obj: obj, graphs: make([][]decodedInstr, len(obj.Graphs))}
	for gi, g := range obj.Graphs {
		code := make([]decodedInstr, len(g.Code))
		for pc := 0; pc < len(g.Code); {
			in, n, err := isa.Decode(g.Code[pc:])
			if err != nil {
				return nil, fmt.Errorf("pe: graph %q pc %d: %w", g.Name, pc, err)
			}
			info, _ := isa.Lookup(in.Op)
			code[pc] = decodedInstr{in: in, info: info, words: n}
			pc += n
		}
		p.graphs[gi] = code
	}
	return p, nil
}

// QueueWords returns the queue page size required by graph gi.
func (p *Program) QueueWords(gi int) int { return p.Obj.Graphs[gi].QueueWords }

// Mnemonic reports the opcode mnemonic at (graph, pc); it is what ExecOne
// passes to the Instr hook, exposed for callers that replay recorded
// instructions into a recorder.
func (p *Program) Mnemonic(graph, pc int) string { return p.graphs[graph][pc].info.Mnemonic }

// Machine executes contexts on one processing element.
type Machine struct {
	PEID   int
	Params Params
	Prog   *Program
	Mem    MemoryBus
	Stats  Stats
	rec    trace.Recorder
}

// NewMachine builds a processing element bound to a program and memory bus.
func NewMachine(peID int, params Params, prog *Program, mem MemoryBus) *Machine {
	return &Machine{PEID: peID, Params: params, Prog: prog, Mem: mem}
}

// SetRecorder installs the instrumentation recorder (nil disables). With a
// recorder installed, every retired instruction is reported via the Instr
// hook; with none, the execute path pays a single nil check.
func (m *Machine) SetRecorder(rec trace.Recorder) { m.rec = rec }

// readSrc evaluates a source operand, returning its value and any extra
// cycles beyond the base instruction cost.
func (m *Machine) readSrc(c *Context, s isa.Src) (int32, int, error) {
	switch s.Mode {
	case isa.SrcSmallImm:
		return s.Imm, 0, nil
	case isa.SrcWordImm:
		return s.Imm, m.Params.ImmWord, nil
	case isa.SrcGlobal:
		switch s.Reg {
		case isa.RegQP:
			return int32(c.QP), 0, nil
		case isa.RegPC:
			return int32(c.PC), 0, nil
		default:
			return c.Globals[s.Reg-16], 0, nil
		}
	case isa.SrcWindow:
		idx, err := c.queueIndex(s.Reg)
		if err != nil {
			return 0, 0, err
		}
		if c.inWindow[idx] {
			m.Stats.WindowHits++
			return c.Page[idx], 0, nil
		}
		m.Stats.WindowMisses++
		return c.Page[idx], m.Params.Mem, nil
	}
	return 0, 0, fmt.Errorf("pe: bad source mode %d", s.Mode)
}

// writeReg writes a result to a destination register: window registers
// store into the queue page slot and set the presence bit; DUMMY discards;
// globals update the register file.
func (m *Machine) writeReg(c *Context, reg int, val int32) error {
	switch {
	case reg < isa.NumWindowRegs:
		idx, err := c.queueIndex(reg)
		if err != nil {
			return err
		}
		c.Page[idx] = val
		if !c.inWindow[idx] {
			c.inWindow[idx] = true
			c.winCount++
		}
		if c.QP+reg > c.highWater {
			c.highWater = c.QP + reg
		}
		return nil
	case reg == isa.RegDummy:
		return nil
	case reg == isa.RegQP:
		c.QP = int(val)
		return nil
	case reg == isa.RegPC:
		c.PC = int(val)
		return nil
	default:
		c.Globals[reg-16] = val
		return nil
	}
}

// writeResult distributes an instruction's result to its two destination
// fields and records it for subsequent dup instructions.
func (m *Machine) writeResult(c *Context, in isa.Instr, val int32) error {
	if err := m.writeReg(c, in.Dst1, val); err != nil {
		return err
	}
	if err := m.writeReg(c, in.Dst2, val); err != nil {
		return err
	}
	c.LastResult = val
	return nil
}

// advanceQP consumes n operands from the queue front, clearing the presence
// bits of the freed window registers.
func (c *Context) advanceQP(n int) {
	for i := 0; i < n && i < len(c.Page); i++ {
		idx := (c.QP + i) % len(c.Page)
		if c.inWindow[idx] {
			c.inWindow[idx] = false
			c.winCount--
		}
	}
	c.QP += n
}

// ExecOne executes the instruction at the context's program counter. On a
// blocking action the program counter and queue pointer are already
// advanced; the pending destinations are stored in the context for
// Complete. `now` is the simulated time of the issue, used only for
// instrumentation.
func (m *Machine) ExecOne(c *Context, now int64) (Outcome, error) {
	if m.rec == nil {
		return m.execOne(c)
	}
	graph, pc := c.Graph, c.PC
	wm := m.Stats.WindowMisses
	out, err := m.execOne(c)
	if err == nil {
		// Presence-bit stall: window misses fetched from the memory page
		// each cost Params.Mem beyond the base instruction cycles (§5.2).
		stall := int(m.Stats.WindowMisses-wm) * m.Params.Mem
		m.rec.Instr(m.PEID, c.ID, graph, pc, m.Prog.graphs[graph][pc].info.Mnemonic, now, out.Cycles, stall)
	}
	return out, err
}

// ExecRecorded executes one instruction without firing the Instr hook,
// additionally returning the presence-bit stall (window misses × Params.Mem)
// the hook would have reported. The host-parallel engine's workers run
// ahead of simulated time on their own goroutines, where recorders (which
// are not safe for concurrent use, and which need the issue time the worker
// does not yet know) must stay silent; the commit loop replays the hook
// from the recorded outcome at the exact simulated instant the sequential
// engine would have fired it.
func (m *Machine) ExecRecorded(c *Context) (Outcome, int, error) {
	wm := m.Stats.WindowMisses
	out, err := m.execOne(c)
	stall := int(m.Stats.WindowMisses-wm) * m.Params.Mem
	return out, stall, err
}

func (m *Machine) execOne(c *Context) (Outcome, error) {
	g := m.Prog.graphs[c.Graph]
	if c.PC < 0 || c.PC >= len(g) || g[c.PC].words == 0 {
		return Outcome{}, fmt.Errorf("pe: context %d: no instruction at graph %d pc %d", c.ID, c.Graph, c.PC)
	}
	d := &g[c.PC]
	in := d.in
	info := d.info
	m.Stats.Instructions++
	queue := c.QueueLength()
	m.Stats.QueueSum += int64(queue)
	cycles := m.Params.ALU

	if in.IsDup() {
		// dup writes the previous result directly into the memory
		// page at the given offsets (§5.3.3: offsets below 16 also
		// write memory, not the window). The offsets stay in a stack
		// array: the hot loop must not allocate.
		offsets := [2]int{in.Dst1, in.Dst2}
		n := 1
		if in.Op == isa.OpDup2 {
			n = 2
		}
		for _, off := range offsets[:n] {
			if off >= len(c.Page) {
				return Outcome{}, fmt.Errorf("pe: context %d: dup offset %d exceeds queue page %d", c.ID, off, len(c.Page))
			}
			idx := (c.QP + off) % len(c.Page)
			c.Page[idx] = c.LastResult
			if c.inWindow[idx] {
				c.inWindow[idx] = false
				c.winCount--
			}
			if c.QP+off > c.highWater {
				c.highWater = c.QP + off
			}
			cycles += m.Params.Mem
		}
		c.PC += d.words
		m.Stats.Cycles += int64(cycles)
		return Outcome{Cycles: cycles, Queue: queue}, nil
	}

	// Source operands.
	var v1, v2 int32
	if info.Srcs >= 1 {
		v, extra, err := m.readSrc(c, in.Src1)
		if err != nil {
			return Outcome{}, err
		}
		v1, cycles = v, cycles+extra
	}
	if info.Srcs >= 2 {
		v, extra, err := m.readSrc(c, in.Src2)
		if err != nil {
			return Outcome{}, err
		}
		v2, cycles = v, cycles+extra
	}

	// The QP increment takes effect after operand fetch, before results.
	c.advanceQP(in.QPInc)
	c.PC += d.words

	switch {
	case info.Branch:
		m.Stats.Branches++
		cycles += m.Params.Branch - m.Params.ALU
		taken := isa.Truthy(v1)
		if in.Op == isa.OpBeq {
			taken = !taken
		}
		if taken {
			c.PC += int(v2)
		}
	case info.Memory:
		m.Stats.MemOps++
		cycles += m.Params.Mem
		switch in.Op {
		case isa.OpFetch:
			val, extra, err := m.Mem.FetchWord(m.PEID, v1)
			if err != nil {
				return Outcome{}, fmt.Errorf("pe: context %d: %w", c.ID, err)
			}
			cycles += extra
			if err := m.writeResult(c, in, val); err != nil {
				return Outcome{}, err
			}
		case isa.OpFchb:
			val, extra, err := m.Mem.FetchByte(m.PEID, v1)
			if err != nil {
				return Outcome{}, fmt.Errorf("pe: context %d: %w", c.ID, err)
			}
			cycles += extra
			if err := m.writeResult(c, in, val); err != nil {
				return Outcome{}, err
			}
		case isa.OpStore:
			extra, err := m.Mem.StoreWord(m.PEID, v1, v2)
			if err != nil {
				return Outcome{}, fmt.Errorf("pe: context %d: %w", c.ID, err)
			}
			cycles += extra
		case isa.OpStorb:
			extra, err := m.Mem.StoreByte(m.PEID, v1, v2)
			if err != nil {
				return Outcome{}, fmt.Errorf("pe: context %d: %w", c.ID, err)
			}
			cycles += extra
		}
	case info.Channel:
		m.Stats.ChannelOps++
		cycles += m.Params.ChanOp
		if in.Op == isa.OpSend {
			m.Stats.Cycles += int64(cycles)
			return Outcome{Cycles: cycles, Queue: queue, Act: ActSend, Ch: v1, Val: v2}, nil
		}
		c.PendDst1, c.PendDst2 = in.Dst1, in.Dst2
		m.Stats.Cycles += int64(cycles)
		return Outcome{Cycles: cycles, Queue: queue, Act: ActRecv, Ch: v1}, nil
	case info.Trap:
		if in.Op == isa.OpFret || in.Op == isa.OpRett {
			return Outcome{}, fmt.Errorf("pe: context %d: %v outside kernel mode", c.ID, in.Op)
		}
		m.Stats.Traps++
		cycles += m.Params.Trap
		c.PendDst1, c.PendDst2 = in.Dst1, in.Dst2
		m.Stats.Cycles += int64(cycles)
		return Outcome{Cycles: cycles, Queue: queue, Act: ActTrap, Code: v1, Arg: v2}, nil
	default:
		// Logical, arithmetic or comparison operation.
		val, err := isa.EvalALU(in.Op, v1, v2)
		if err != nil {
			return Outcome{}, fmt.Errorf("pe: context %d graph %d pc %d: %w", c.ID, c.Graph, c.PC, err)
		}
		if err := m.writeResult(c, in, val); err != nil {
			return Outcome{}, err
		}
	}
	m.Stats.Cycles += int64(cycles)
	return Outcome{Cycles: cycles, Queue: queue}, nil
}

// Complete delivers the result of a blocked recv or trap to the context's
// pending destinations (one value; Complete2 delivers a pair).
func (m *Machine) Complete(c *Context, val int32) error {
	if err := m.writeReg(c, c.PendDst1, val); err != nil {
		return err
	}
	if err := m.writeReg(c, c.PendDst2, val); err != nil {
		return err
	}
	c.LastResult = val
	c.PendDst1, c.PendDst2 = isa.RegDummy, isa.RegDummy
	return nil
}

// Complete2 delivers a two-result completion (the rfork trap: in channel to
// Dst1, out channel to Dst2).
func (m *Machine) Complete2(c *Context, val1, val2 int32) error {
	if err := m.writeReg(c, c.PendDst1, val1); err != nil {
		return err
	}
	if err := m.writeReg(c, c.PendDst2, val2); err != nil {
		return err
	}
	c.LastResult = val1
	c.PendDst1, c.PendDst2 = isa.RegDummy, isa.RegDummy
	return nil
}

// SwitchCost reports the cycle cost of switching away from context c with
// readyCount other contexts resident on the processing element.
func (m *Machine) SwitchCost(c *Context, readyCount int) int {
	cost := m.Params.SwitchBase + m.Params.ReadyScan*readyCount
	if c != nil {
		cost += m.Params.RollOut * c.RollOut()
	}
	return cost
}
