package pe

import (
	"strings"
	"testing"

	"queuemachine/internal/asm"
	"queuemachine/internal/isa"
)

// runToExit executes a single context until it traps to KExit, failing on
// any other action.
func runToExit(t *testing.T, m *Machine, c *Context, maxInstr int) int {
	t.Helper()
	cycles := 0
	for i := 0; i < maxInstr; i++ {
		out, err := m.ExecOne(c, 0)
		if err != nil {
			t.Fatalf("ExecOne: %v", err)
		}
		cycles += out.Cycles
		switch out.Act {
		case ActNone:
		case ActTrap:
			if out.Code == isa.KExit {
				return cycles
			}
			t.Fatalf("unexpected trap %d", out.Code)
		default:
			t.Fatalf("unexpected action %d", out.Act)
		}
	}
	t.Fatal("context did not exit")
	return cycles
}

func load(t *testing.T, src string) (*Machine, *Context, *LocalMemory) {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	prog, err := LoadProgram(obj)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	mem := NewLocalMemory(obj.DataWords + 64)
	mem.LoadData(obj)
	m := NewMachine(0, DefaultParams(), prog, mem)
	c := NewContext(0, obj.Entry, prog.QueueWords(obj.Entry))
	return m, c, mem
}

// TestTable31Program runs the Table 3.1 queue-machine program for
// f := a*b + (c-d)/e end to end on the processing element.
func TestTable31Program(t *testing.T) {
	m, c, mem := load(t, `
.data 6
.init 0 7
.init 1 3
.init 2 20
.init 3 6
.init 4 2
.graph main queue=32
	fetch #8 :r0       ; c  (byte address 2*4)
	fetch #12 :r1      ; d
	fetch #0 :r2       ; a
	fetch #4 :r3       ; b
	minus++ r0,r1 :r2
	fetch #16 :r3      ; e
	mul++ r0,r1 :r2
	div++ r0,r1 :r1
	plus++ r0,r1 :r0
	store #20,r0
	trap #0,#0
`)
	runToExit(t, m, c, 100)
	if got := mem.Words()[5]; got != 7*3+(20-6)/2 {
		t.Errorf("f = %d, want %d", got, 7*3+(20-6)/2)
	}
	if m.Stats.Instructions != 11 {
		t.Errorf("instructions = %d", m.Stats.Instructions)
	}
	// All queue operands were produced into window registers, so every
	// queue read must be a window hit.
	if m.Stats.WindowMisses != 0 {
		t.Errorf("window misses = %d", m.Stats.WindowMisses)
	}
}

// TestWindowRegisterSemantics checks the sliding window: values written to
// r2/r3 are found at r0/r1 after the QP advances by 2.
func TestWindowRegisterSemantics(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	plus #5,#0 :r0
	plus #6,#0 :r1
	plus #7,#0 :r2
	plus++ r0,r1 :r1   ; consumes 5,6 -> queue now 7,11
	plus++ r0,r1 :r0   ; 7+11 = 18
	store #0,r0
	trap #0,#0
`)
	m.Prog.Obj.DataWords = 1
	runToExit(t, m, c, 100)
	mem := m.Mem.(*LocalMemory)
	if got := mem.Words()[0]; got != 18 {
		t.Errorf("result = %d, want 18", got)
	}
}

func TestDupWritesMemoryPage(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	plus #9,#0 :r0 >
	dup2 :r1,r17
	plus+2 r0,r1 :r0   ; 9+9 = 18, consumes 2
	fetch r0 :r1       ; the dup at offset 17 wrote past the window
	trap #0,#0
`)
	// Execute the first two instructions and inspect presence bits.
	for i := 0; i < 2; i++ {
		if _, err := m.ExecOne(c, 0); err != nil {
			t.Fatal(err)
		}
	}
	// r0 was written by plus (window); r1 and r17 by dup (memory only).
	if !c.inWindow[0] {
		t.Error("r0 should be in the window")
	}
	if c.inWindow[1] || c.inWindow[17] {
		t.Error("dup destinations must bypass the window registers")
	}
	if c.Page[0] != 9 || c.Page[1] != 9 || c.Page[17] != 9 {
		t.Errorf("page = %v", c.Page[:18])
	}
	// The plus that consumes r0,r1 sees one hit (r0) and one miss (r1).
	hits, misses := m.Stats.WindowHits, m.Stats.WindowMisses
	if _, err := m.ExecOne(c, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats.WindowHits != hits+1 || m.Stats.WindowMisses != misses+1 {
		t.Errorf("hits %d->%d misses %d->%d", hits, m.Stats.WindowHits, misses, m.Stats.WindowMisses)
	}
	if c.Page[2] != 18 {
		t.Errorf("sum = %d", c.Page[2])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a conventional register loop (Von Neumann mode).
	m, c, mem := load(t, `
.data 1
.graph main queue=32
	plus #0,#0 :r17    ; sum
	plus #10,#0 :r18   ; i
loop:
	plus r17,r18 :r17
	minus r18,#1 :r18
	gt r18,#0 :r0
	bne+1 r0,@loop
	store #0,r17
	trap #0,#0
`)
	runToExit(t, m, c, 200)
	if got := mem.Words()[0]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestByteOps(t *testing.T) {
	m, c, mem := load(t, `
.data 2
.graph main queue=32
	storb #1,#171      ; write 0xAB into byte 1 of word 0
	fchb #1 :r0
	store #4,r0
	trap #0,#0
`)
	runToExit(t, m, c, 100)
	if got := mem.Words()[1]; got != 171 {
		t.Errorf("byte = %d, want 171", got)
	}
	if mem.Words()[0] != 171<<8 {
		t.Errorf("word0 = %#x", mem.Words()[0])
	}
}

func TestSendRecvActions(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	plus #3,#0 :r0
	send+1 #7,r0
	recv #7 :r0
	trap #0,#0
`)
	if _, err := m.ExecOne(c, 0); err != nil {
		t.Fatal(err)
	}
	out, err := m.ExecOne(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Act != ActSend || out.Ch != 7 || out.Val != 3 {
		t.Fatalf("send action = %#v", out)
	}
	out, err = m.ExecOne(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Act != ActRecv || out.Ch != 7 {
		t.Fatalf("recv action = %#v", out)
	}
	// Deliver the value and check it lands in r0.
	if err := m.Complete(c, 42); err != nil {
		t.Fatal(err)
	}
	idx := c.QP % len(c.Page)
	if c.Page[idx] != 42 || !c.inWindow[idx] {
		t.Error("recv completion did not write r0")
	}
}

func TestTrapChannels(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	trap #1,#0 :r17,r18
	trap #0,#0
`)
	out, err := m.ExecOne(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Act != ActTrap || out.Code != isa.KRFork {
		t.Fatalf("action = %#v", out)
	}
	if err := m.Complete2(c, 100, 101); err != nil {
		t.Fatal(err)
	}
	if c.Globals[1] != 100 || c.Globals[2] != 101 {
		t.Errorf("globals = %v", c.Globals[:3])
	}
}

func TestContextChannels(t *testing.T) {
	c := NewContext(1, 0, 32)
	c.SetChannels(5, 9)
	if c.In() != 5 || c.Out() != 9 {
		t.Error("channel registers broken")
	}
}

func TestRollOutAndSwitchCost(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	plus #1,#0 :r0
	plus #2,#0 :r1
	plus #3,#0 :r2
	trap #0,#0
`)
	for i := 0; i < 3; i++ {
		if _, err := m.ExecOne(c, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.WindowOccupancy(); got != 3 {
		t.Errorf("occupancy = %d", got)
	}
	p := DefaultParams()
	want := p.SwitchBase + p.ReadyScan*2 + p.RollOut*3
	if got := m.SwitchCost(c, 2); got != want {
		t.Errorf("SwitchCost = %d, want %d", got, want)
	}
	if c.WindowOccupancy() != 0 {
		t.Error("RollOut did not clear presence bits")
	}
	// Values survive the roll-out in the memory page.
	if c.Page[0] != 1 || c.Page[1] != 2 || c.Page[2] != 3 {
		t.Errorf("page = %v", c.Page[:3])
	}
	if got := m.SwitchCost(nil, 0); got != p.SwitchBase {
		t.Errorf("idle switch = %d", got)
	}
}

func TestQueuePageWrapAround(t *testing.T) {
	// A page of 32 words with a long chain of single-slot passes must
	// wrap the queue pointer without corruption.
	var b strings.Builder
	b.WriteString(".data 1\n.graph main queue=32\n\tplus #1,#0 :r0\n")
	for i := 0; i < 100; i++ {
		b.WriteString("\tplus+1 r0,#1 :r0\n")
	}
	b.WriteString("\tstore+1 #0,r0\n\ttrap #0,#0\n")
	m, c, mem := load(t, b.String())
	runToExit(t, m, c, 300)
	if got := mem.Words()[0]; got != 101 {
		t.Errorf("result = %d, want 101", got)
	}
	if c.QP != 101 {
		t.Errorf("QP = %d", c.QP)
	}
}

func TestErrors(t *testing.T) {
	m, c, _ := load(t, `
.graph main queue=32
	div #1,#0 :r0
	trap #0,#0
`)
	if _, err := m.ExecOne(c, 0); err == nil || !strings.Contains(err.Error(), "division") {
		t.Errorf("division by zero: %v", err)
	}

	// Bad PC.
	c2 := NewContext(1, 0, 32)
	c2.PC = 999
	if _, err := m.ExecOne(c2, 0); err == nil {
		t.Error("bad PC accepted")
	}

	// Memory fault.
	m3, c3, _ := load(t, `
.graph main queue=32
	fetch #-4 :r0
	trap #0,#0
`)
	if _, err := m3.ExecOne(c3, 0); err == nil {
		t.Error("negative address accepted")
	}
	_ = c
}

func TestMemoryBounds(t *testing.T) {
	mem := NewLocalMemory(2)
	if _, _, err := mem.FetchWord(0, 8); err == nil {
		t.Error("out of bounds fetch accepted")
	}
	if _, err := mem.StoreWord(0, 5, 1); err == nil {
		t.Error("unaligned store accepted")
	}
	if _, _, err := mem.FetchByte(0, 100); err == nil {
		t.Error("out of bounds byte accepted")
	}
	if _, err := mem.StoreByte(0, -1, 1); err == nil {
		t.Error("negative byte address accepted")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Ready: "ready", Running: "running", BlockedSend: "blocked-send",
		BlockedRecv: "blocked-recv", BlockedWait: "blocked-wait", Done: "done",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", int(s), s.String())
		}
	}
	if !strings.Contains(Status(42).String(), "42") {
		t.Error("unknown status")
	}
}
