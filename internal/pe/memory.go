package pe

import (
	"fmt"

	"queuemachine/internal/isa"
)

// LocalMemory is a flat, uniform-cost data memory implementing MemoryBus —
// the single-processor configuration, and the building block the
// multiprocessor wraps with interleaving and ring costs. Words are stored
// little-endian with respect to byte accesses.
type LocalMemory struct {
	words []int32
}

// NewLocalMemory allocates a data memory of the given size in words,
// optionally initialized from an object's data segment.
func NewLocalMemory(words int) *LocalMemory {
	return &LocalMemory{words: make([]int32, words)}
}

// LoadData initializes memory from an object program's data segment.
func (m *LocalMemory) LoadData(obj *isa.Object) {
	for addr, v := range obj.DataInit {
		if addr >= 0 && addr < len(m.words) {
			m.words[addr] = v
		}
	}
}

// Words exposes the backing store for result verification.
func (m *LocalMemory) Words() []int32 { return m.words }

func (m *LocalMemory) wordIndex(byteAddr int32, aligned bool) (int, error) {
	if byteAddr < 0 {
		return 0, fmt.Errorf("pe: negative address %d", byteAddr)
	}
	if aligned && byteAddr%isa.WordSize != 0 {
		return 0, fmt.Errorf("pe: unaligned word address %d", byteAddr)
	}
	idx := int(byteAddr) / isa.WordSize
	if idx >= len(m.words) {
		return 0, fmt.Errorf("pe: address %d beyond memory of %d words", byteAddr, len(m.words))
	}
	return idx, nil
}

// FetchWord implements MemoryBus.
func (m *LocalMemory) FetchWord(_ int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, 0, err
	}
	return m.words[idx], 0, nil
}

// StoreWord implements MemoryBus.
func (m *LocalMemory) StoreWord(_ int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, err
	}
	m.words[idx] = val
	return 0, nil
}

// FetchByte implements MemoryBus. Bytes are unsigned, right-justified
// without sign extension (§5.3.1).
func (m *LocalMemory) FetchByte(_ int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, 0, err
	}
	shift := uint(byteAddr%isa.WordSize) * 8
	return int32(uint32(m.words[idx]) >> shift & 0xff), 0, nil
}

// StoreByte implements MemoryBus.
func (m *LocalMemory) StoreByte(_ int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, err
	}
	shift := uint(byteAddr%isa.WordSize) * 8
	mask := uint32(0xff) << shift
	m.words[idx] = int32(uint32(m.words[idx])&^mask | uint32(val&0xff)<<shift)
	return 0, nil
}
