// Package pe emulates the queue machine processing element of Chapter 5.
//
// The processing element implements the indexed queue machine execution
// model with a sliding register window: the operand queue of the executing
// context lives in a page of memory, the queue pointer (QP) addresses its
// front, and the first sixteen queue elements are shadowed by window
// registers with presence bits. Operand reads hit the window registers when
// the presence bit is set and fall back to the memory-resident queue page
// otherwise; results written to destination registers 0–15 land in the
// window, while dup instructions write the memory page directly. On a
// context switch the occupied window registers are rolled out, which is the
// principal context-switch cost; a processor hosting a single blocked
// context resumes it with the window still warm, one of the two effects
// behind the multiprocessor's super-linear margin at small machine sizes
// (the other is aggregate message-cache capacity — see internal/mcache).
//
// The emulator executes one instruction at a time, returning its cycle cost
// per the three-stage pipeline budget of Figures 5.9–5.10 together with any
// action (channel operation or kernel trap) that must be completed by the
// surrounding system.
package pe

import (
	"fmt"

	"queuemachine/internal/isa"
)

// Params is the processing element timing model. All values are in cycles.
type Params struct {
	// ALU is the issue cost of a simple register-to-register instruction
	// (the three-stage pipeline sustains one per cycle).
	ALU int
	// ImmWord is the extra cost of each word immediate (one additional
	// instruction-stream fetch).
	ImmWord int
	// Mem is the cost of a local data-memory access, also paid when a
	// queue operand misses the window registers or a result bypasses
	// them.
	Mem int
	// Branch is the issue cost of a branch (pipeline refill on taken).
	Branch int
	// ChanOp is the processing-element-side cost of handing a send or
	// receive to the message processor.
	ChanOp int
	// Trap is the kernel entry/exit overhead of a trap instruction.
	Trap int
	// SwitchBase is the fixed part of a context switch.
	SwitchBase int
	// RollOut is the per-occupied-window-register cost of rolling the
	// window out to the queue page on a context switch.
	RollOut int
	// ReadyScan is the per-resident-context cost of selecting the next
	// context to run. The default kernel dispatches from a FIFO in
	// constant time (ReadyScan 0); a linear-scan kernel can be modelled
	// by setting it, at the price of wildly superlinear speed-ups.
	ReadyScan int
}

// DefaultParams is the timing model used throughout the Chapter 6
// experiments. The three-stage pipeline issues simple instructions every
// cycle; memory is four cycles; the kernel costs are those of a lean
// software kernel.
func DefaultParams() Params {
	return Params{
		ALU:        1,
		ImmWord:    1,
		Mem:        4,
		Branch:     2,
		ChanOp:     4,
		Trap:       12,
		SwitchBase: 10,
		RollOut:    2,
		ReadyScan:  0,
	}
}

// Status is a context's scheduling state (the state transition diagram of
// Figure 6.4).
type Status int

const (
	// Ready means the context can be dispatched on a processing element.
	Ready Status = iota
	// Running means the context is executing.
	Running
	// BlockedSend means the context waits for a partner to receive.
	BlockedSend
	// BlockedRecv means the context waits for a partner to send.
	BlockedRecv
	// BlockedWait means the context waits for simulated time to advance.
	BlockedWait
	// Done means the context has terminated.
	Done
)

func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case BlockedSend:
		return "blocked-send"
	case BlockedRecv:
		return "blocked-recv"
	case BlockedWait:
		return "blocked-wait"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Context is the complete state of one executing data-flow graph: its
// instruction sequence (graph index + program counter), its operand queue
// page, and its register set.
type Context struct {
	ID    int
	Graph int
	PC    int
	// QP is the virtual queue front. The physical page slot of queue
	// index i is i modulo the page size.
	QP int
	// Page is the memory-resident operand queue page.
	Page []int32
	// inWindow marks page slots whose value currently resides in a
	// window register (the presence bits). Only slots within the
	// 16-element window starting at QP can be marked.
	inWindow []bool
	// Globals are registers 16–31 (DUMMY, general purpose, CIn, COut,
	// NAR, POM; QP and PC are modelled by the fields above).
	Globals [16]int32
	Status  Status
	// LastResult feeds dup instructions.
	LastResult int32
	// PendDst1 and PendDst2 hold the destination registers of a blocked
	// recv or trap, to be written when the operation completes.
	PendDst1, PendDst2 int
	// highWater is the deepest queue index written so far; the live queue
	// span (§5.2's queue length, which divided by the page size gives the
	// page utilization) is highWater - QP + 1.
	highWater int
	// winCount tracks the number of set presence bits so RollOut can
	// report (and clear) them without scanning an empty page.
	winCount int
	// Parent records the creating context for diagnostics.
	Parent int
	// Priority is the context's static dispatch weight: the compiled
	// graph's §4.5 cost-analysis estimate of the computation it enables.
	// The kernel's priority scheduling policies dispatch higher values
	// first; the FIFO baseline ignores it.
	Priority int32
}

// NewContext allocates a context for the given graph with a queue page of
// the given size.
func NewContext(id, graph, pageWords int) *Context {
	return &Context{
		ID:        id,
		Graph:     graph,
		Page:      make([]int32, pageWords),
		inWindow:  make([]bool, pageWords),
		Status:    Ready,
		PendDst1:  isa.RegDummy,
		PendDst2:  isa.RegDummy,
		highWater: -1,
	}
}

// Reset reinitializes a recycled context in place, equivalent to
// NewContext(id, graph, len(c.Page)) without the two allocations. The
// kernel pools dead contexts and resets them on the fork path.
func (c *Context) Reset(id, graph int) {
	c.ID = id
	c.Graph = graph
	c.PC = 0
	c.QP = 0
	clear(c.Page)
	clear(c.inWindow)
	c.Globals = [16]int32{}
	c.Status = Ready
	c.LastResult = 0
	c.PendDst1 = isa.RegDummy
	c.PendDst2 = isa.RegDummy
	c.highWater = -1
	c.winCount = 0
	c.Parent = 0
	c.Priority = 0
}

// QueueLength reports the context's current operand queue span.
func (c *Context) QueueLength() int {
	if c.highWater < c.QP {
		return 0
	}
	return c.highWater - c.QP + 1
}

// In and Out are the context's channel identifiers (kernel convention:
// global registers 26 and 27).
func (c *Context) In() int32  { return c.Globals[isa.RegCIn-16] }
func (c *Context) Out() int32 { return c.Globals[isa.RegCOut-16] }

// SetChannels installs the context's in and out channel identifiers.
func (c *Context) SetChannels(in, out int32) {
	c.Globals[isa.RegCIn-16] = in
	c.Globals[isa.RegCOut-16] = out
}

// WindowOccupancy reports how many window registers currently hold values —
// the roll-out cost driver of a context switch.
func (c *Context) WindowOccupancy() int {
	n := 0
	for i := 0; i < isa.NumWindowRegs && i < len(c.Page); i++ {
		if c.inWindow[(c.QP+i)%len(c.Page)] {
			n++
		}
	}
	return n
}

// RollOut clears all presence bits, modelling the register roll-out done on
// a context switch, and reports how many registers were occupied. The
// values themselves persist in the memory-resident page (the emulator keeps
// page and window coherent and uses the presence bits purely for cost
// accounting, which matches the architecture: a value is always rolled out
// to its own page slot).
func (c *Context) RollOut() int {
	n := c.winCount
	if n == 0 {
		return 0
	}
	cleared := 0
	for i := range c.inWindow {
		if c.inWindow[i] {
			c.inWindow[i] = false
			if cleared++; cleared == n {
				break
			}
		}
	}
	c.winCount = 0
	return n
}

// queueIndex converts a window register number to the context's physical
// page slot, verifying the window bound.
func (c *Context) queueIndex(reg int) (int, error) {
	if reg < 0 || reg >= isa.NumWindowRegs {
		return 0, fmt.Errorf("pe: window register %d out of range", reg)
	}
	if reg >= len(c.Page) {
		return 0, fmt.Errorf("pe: window register %d beyond queue page of %d words", reg, len(c.Page))
	}
	return (c.QP + reg) % len(c.Page), nil
}
