package xtrace

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func tracedRequest(trace TraceID, parent SpanID) *http.Request {
	r := httptest.NewRequest(http.MethodPost, "/run", nil)
	if trace != "" {
		r.Header.Set(TraceHeader, string(trace))
	}
	if parent != "" {
		r.Header.Set(SpanHeader, string(parent))
	}
	return r
}

func TestIDsAreFreshAndWellFormed(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("trace ids collided")
	}
	if len(a) != 32 || len(NewSpanID()) != 16 {
		t.Fatalf("id lengths: trace %d span %d", len(a), len(NewSpanID()))
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRequest(tracedRequest(NewTraceID(), ""), "run")
	if root != nil {
		t.Fatal("nil tracer produced a span")
	}
	ctx2, child := StartSpan(ctx, "child")
	if child != nil || ctx2 != ctx {
		t.Fatal("untraced context produced a span")
	}
	// Every method on the nil span must be callable.
	child.SetAttr("k", "v")
	child.SetError(context.Canceled)
	child.End()
	child.EndErr(nil)
	if child.ID() != "" || child.TraceID() != "" {
		t.Fatal("nil span has identity")
	}
	if TraceIDFrom(ctx) != "" {
		t.Fatal("untraced context has a trace id")
	}
	h := http.Header{}
	Inject(ctx, h)
	if len(h) != 0 {
		t.Fatal("Inject wrote headers for an untraced context")
	}
}

func TestUntracedRequestWithoutSamplerOpensNothing(t *testing.T) {
	tr := NewTracer("p", NewRecorder(RecorderConfig{}))
	_, root := tr.StartRequest(tracedRequest("", ""), "run")
	if root != nil {
		t.Fatal("headerless request traced without a sampler")
	}
}

func TestSamplerOpensFreshTrace(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := NewTracer("p", rec)
	tr.SetSampler(func() bool { return true })
	_, root := tr.StartRequest(tracedRequest("", ""), "run")
	if root == nil {
		t.Fatal("sampler did not open a trace")
	}
	if root.TraceID() == "" {
		t.Fatal("sampled trace has no id")
	}
	root.End()
	if _, ok := rec.Get(root.TraceID()); !ok {
		t.Fatal("sampled trace not committed")
	}
}

func TestSpanTreeAndCommit(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := NewTracer("qmd", rec)
	trace, parent := NewTraceID(), NewSpanID()
	ctx, root := tr.StartRequest(tracedRequest(trace, parent), "run")
	if got := TraceIDFrom(ctx); got != trace {
		t.Fatalf("TraceIDFrom = %q, want %q", got, trace)
	}
	cctx, child := StartSpan(ctx, "artifact")
	child.SetAttr("cache", "miss")
	_, grand := StartSpan(cctx, "compile")
	grand.End()
	child.End()
	_, sib := StartSpan(ctx, "simulate")
	sib.End()
	// Nothing is visible before the root commits.
	if _, ok := rec.Get(trace); ok {
		t.Fatal("trace visible before root ended")
	}
	root.End()
	root.End() // idempotent

	spans, ok := rec.Get(trace)
	if !ok || len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byName := make(map[string]Span)
	for _, s := range spans {
		byName[s.Name] = s
		if s.Trace != trace || s.Process != "qmd" {
			t.Fatalf("span %s: trace %q process %q", s.Name, s.Trace, s.Process)
		}
	}
	if byName["run"].Parent != parent {
		t.Errorf("root parent = %q, want caller's %q", byName["run"].Parent, parent)
	}
	if byName["artifact"].Parent != byName["run"].ID {
		t.Error("child not parented to root")
	}
	if byName["compile"].Parent != byName["artifact"].ID {
		t.Error("grandchild not parented to child")
	}
	if byName["simulate"].Parent != byName["run"].ID {
		t.Error("sibling not parented to root")
	}
	if byName["artifact"].Attrs["cache"] != "miss" {
		t.Error("attribute lost")
	}
}

func TestSpanAfterCommitIsDropped(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := NewTracer("qmd", rec)
	ctx, root := tr.StartRequest(tracedRequest(NewTraceID(), ""), "run")
	_, straggler := StartSpan(ctx, "late")
	root.End()
	straggler.End()
	spans, _ := rec.Get(root.TraceID())
	if len(spans) != 1 {
		t.Fatalf("straggler span recorded after commit: %d spans", len(spans))
	}
}

func TestInjectCarriesCurrentSpan(t *testing.T) {
	tr := NewTracer("gate", NewRecorder(RecorderConfig{}))
	trace := NewTraceID()
	ctx, _ := tr.StartRequest(tracedRequest(trace, ""), "proxy")
	_, attempt := StartSpan(ctx, "gate.attempt")
	actx, _ := StartSpan(ctx, "other")
	_ = actx
	ctx2, attempt2 := StartSpan(ctx, "gate.attempt")
	h := http.Header{}
	Inject(ctx2, h)
	if h.Get(TraceHeader) != string(trace) {
		t.Fatalf("trace header = %q", h.Get(TraceHeader))
	}
	if h.Get(SpanHeader) != string(attempt2.ID()) || h.Get(SpanHeader) == string(attempt.ID()) {
		t.Fatalf("span header = %q, want current span %q", h.Get(SpanHeader), attempt2.ID())
	}
}

func TestContextDerivationPreservesTrace(t *testing.T) {
	tr := NewTracer("qmd", NewRecorder(RecorderConfig{}))
	ctx, root := tr.StartRequest(tracedRequest(NewTraceID(), ""), "run")
	// The serving stack derives deadline and detached contexts; the trace
	// must survive both (this is how a singleflight leader keeps tracing).
	dctx, cancel := context.WithTimeout(ctx, time.Hour)
	defer cancel()
	detached := context.WithoutCancel(dctx)
	if TraceIDFrom(detached) != root.TraceID() {
		t.Fatal("trace lost across WithTimeout/WithoutCancel")
	}
}

func TestRecorderEvictionKeepsOutliers(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 4, SlowThreshold: time.Second, OutlierCapacity: 8})
	mkTrace := func(id string, durUS int64, failed bool) {
		s := Span{Trace: TraceID(id), ID: NewSpanID(), Process: "p", Name: "run", DurUS: durUS}
		if failed {
			s.Error = "boom"
		}
		rec.Commit(TraceID(id), []Span{s})
	}
	mkTrace("slow", 2_000_000, false) // 2s: outlier-worthy
	mkTrace("err", 10, true)          // error: outlier-worthy
	for i := 0; i < 10; i++ {
		mkTrace("fast"+string(rune('a'+i)), 100, false)
	}
	// slow and err have long since fallen off the 4-slot ring, but must
	// still be retrievable; the early fast traces must be gone.
	if _, ok := rec.Get("slow"); !ok {
		t.Error("slow outlier evicted")
	}
	if _, ok := rec.Get("err"); !ok {
		t.Error("error outlier evicted")
	}
	if _, ok := rec.Get("fasta"); ok {
		t.Error("fast trace survived eviction without being an outlier")
	}
	st := rec.Stats()
	if st.Outliers != 2 || st.Resident != 4 || st.Committed != 12 {
		t.Errorf("stats = %+v", st)
	}
	// The list view flags outliers and keeps them first.
	list := rec.List()
	if len(list) != 6 {
		t.Fatalf("list has %d entries, want 6", len(list))
	}
	if !list[0].Outlier || !list[1].Outlier || list[2].Outlier {
		t.Errorf("outliers not listed first: %+v", list[:3])
	}
}

func TestRecorderOutlierDisplacementPrefersKeepingErrors(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Capacity: 1, SlowThreshold: time.Millisecond, OutlierCapacity: 2})
	commit := func(id string, durUS int64, failed bool) {
		s := Span{Trace: TraceID(id), ID: NewSpanID(), Process: "p", Name: "run", DurUS: durUS}
		if failed {
			s.Error = "x"
		}
		rec.Commit(TraceID(id), []Span{s})
		rec.Commit("filler-"+TraceID(id), []Span{{Trace: "filler-" + TraceID(id), ID: NewSpanID(), Process: "p", Name: "run"}})
	}
	commit("err1", 5_000, true)
	commit("err2", 5_000, true)
	commit("slow-but-fine", 1_000_000, false)
	// Outlier set is full of errors; a slow success must not displace them.
	if _, ok := rec.Get("err1"); !ok {
		t.Error("error outlier displaced by a slow success")
	}
	if _, ok := rec.Get("err2"); !ok {
		t.Error("error outlier displaced by a slow success")
	}
	if _, ok := rec.Get("slow-but-fine"); ok {
		t.Error("slow success kept over retained errors")
	}
}

func TestRecorderHTTPHandler(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	tr := NewTracer("qmd", rec)
	ctx, root := tr.StartRequest(tracedRequest(NewTraceID(), ""), "run")
	_, child := StartSpan(ctx, "simulate")
	child.End()
	root.End()
	id := string(root.TraceID())

	get := func(url string) (int, []byte) {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		w := httptest.NewRecorder()
		rec.ServeHTTP(w, req)
		return w.Code, w.Body.Bytes()
	}
	code, body := get("/debugz/traces")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list struct {
		Traces []Summary `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil || len(list.Traces) != 1 {
		t.Fatalf("list body: %v %s", err, body)
	}
	code, body = get("/debugz/traces?id=" + id)
	if code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	var doc traceDoc
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.Spans) != 2 {
		t.Fatalf("trace body: %v %s", err, body)
	}
	code, body = get("/debugz/traces?id=" + id + "&format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome: %d", code)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("chrome body: %v", err)
	}
	// 2 X events + 1 process_name metadata event.
	if len(chrome.TraceEvents) != 3 {
		t.Fatalf("chrome events = %d, want 3", len(chrome.TraceEvents))
	}
	if code, _ := get("/debugz/traces?id=absent"); code != http.StatusNotFound {
		t.Fatalf("missing trace: %d", code)
	}
}

func TestChromeTraceLanesSeparateOverlaps(t *testing.T) {
	trace := NewTraceID()
	spans := []Span{
		{Trace: trace, ID: "a", Process: "gate", Name: "attempt1", StartUS: 0, DurUS: 100},
		{Trace: trace, ID: "b", Process: "gate", Name: "attempt2", StartUS: 50, DurUS: 100},
		{Trace: trace, ID: "c", Process: "gate", Name: "after", StartUS: 200, DurUS: 10},
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(ChromeTrace(spans), &doc); err != nil {
		t.Fatal(err)
	}
	tids := make(map[string]int)
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			tids[e.Name] = e.Tid
		}
	}
	if tids["attempt1"] == tids["attempt2"] {
		t.Error("overlapping spans share a lane")
	}
	if tids["after"] != tids["attempt1"] {
		t.Error("freed lane not reused")
	}
}

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("run=2s, compile=500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Route != "run" || objs[0].P99 != 2*time.Second ||
		objs[1].Route != "compile" || objs[1].P99 != 500*time.Millisecond {
		t.Fatalf("objs = %+v", objs)
	}
	if objs, err := ParseObjectives("  "); err != nil || objs != nil {
		t.Fatalf("empty spec: %v %v", objs, err)
	}
	for _, bad := range []string{"run", "run=", "run=fast", "run=-1s", "run=1s,run=2s"} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

func TestSLOTrackerBurnMath(t *testing.T) {
	tr := NewSLOTracker([]Objective{{Route: "run", P99: 100 * time.Millisecond}})
	for i := 0; i < 97; i++ {
		tr.Observe("run", 10*time.Millisecond, 200)
	}
	tr.Observe("run", 200*time.Millisecond, 200) // slow
	tr.Observe("run", 10*time.Millisecond, 500)  // error
	tr.Observe("run", 300*time.Millisecond, 503) // both: burns once
	tr.Observe("compile", time.Hour, 500)        // no objective: ignored

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d routes", len(snap))
	}
	s := snap[0]
	if s.Requests != 100 || s.Slow != 2 || s.Errors != 2 || s.Bad != 3 {
		t.Fatalf("counters = %+v", s)
	}
	if s.BadFraction != 0.03 {
		t.Errorf("bad fraction = %g", s.BadFraction)
	}
	// Budget defaults to 1%: 3% bad = burn rate 3.
	if s.BurnRate < 2.999 || s.BurnRate > 3.001 {
		t.Errorf("burn rate = %g, want 3", s.BurnRate)
	}
	if s.TargetP99Seconds != 0.1 || s.Budget != 0.01 {
		t.Errorf("objective fields = %+v", s)
	}
}

func TestNilSLOTrackerIsInert(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("run", time.Second, 500)
	if tr.Snapshot() != nil {
		t.Fatal("nil tracker has a snapshot")
	}
	if NewSLOTracker(nil) != nil {
		t.Fatal("empty objective set built a tracker")
	}
}

func TestRecorderMergesTracesSharingOneID(t *testing.T) {
	// One process can record two traces under one id: its own /run root
	// plus the peer-compile it served for another replica. Get must
	// return the union.
	rec := NewRecorder(RecorderConfig{})
	id := NewTraceID()
	rec.Commit(id, []Span{{Trace: id, ID: "r1", Process: "p", Name: "run"}})
	rec.Commit(id, []Span{{Trace: id, ID: "c1", Process: "p", Name: "compile"}})
	spans, ok := rec.Get(id)
	if !ok || len(spans) != 2 {
		t.Fatalf("merged spans = %d, want 2", len(spans))
	}
	names := []string{spans[0].Name, spans[1].Name}
	if strings.Join(names, ",") != "run,compile" && strings.Join(names, ",") != "compile,run" {
		t.Fatalf("names = %v", names)
	}
}
