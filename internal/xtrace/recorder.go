package xtrace

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// Trace is one process-local committed trace: every span the process
// recorded under one trace id. Start/duration/error are derived from the
// spans at commit time so list views need no re-scan.
type Trace struct {
	ID      TraceID `json:"id"`
	Process string  `json:"process"`
	// Name is the root span's name (the span without a local parent).
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Err     bool   `json:"error,omitempty"`
	Spans   []Span `json:"spans"`
}

// RecorderConfig sizes a flight recorder. The zero value is usable.
type RecorderConfig struct {
	// Capacity is the ring of recent completed traces (default 256).
	Capacity int
	// SlowThreshold promotes an evicted trace to the outlier set when its
	// duration reaches it (default 1s).
	SlowThreshold time.Duration
	// OutlierCapacity bounds the retained slow/error outliers (default
	// 64). When full, the least interesting outlier is dropped: the
	// fastest non-error first, the fastest error only when no non-error
	// remains.
	OutlierCapacity int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	if c.OutlierCapacity <= 0 {
		c.OutlierCapacity = 64
	}
	return c
}

// Recorder is a process's flight recorder: a ring buffer of recently
// completed traces, plus a bounded set of slow and error outliers that
// survive ring eviction — so the interesting traces are still on board
// when someone comes looking, which with incidents is always after the
// fact. Safe for concurrent use.
type Recorder struct {
	cfg RecorderConfig

	mu        sync.Mutex
	ring      []*Trace // capacity cfg.Capacity; nil slots until warm
	next      int
	outliers  []*Trace
	committed int64
	evicted   int64
	dropped   int64 // outliers displaced by more interesting ones
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{cfg: cfg, ring: make([]*Trace, cfg.Capacity)}
}

// Commit stores one completed process-local trace.
func (r *Recorder) Commit(id TraceID, spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	tr := &Trace{ID: id, Process: spans[0].Process, Spans: spans}
	local := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		local[s.ID] = true
	}
	start, end := spans[0].StartUS, spans[0].StartUS
	for _, s := range spans {
		if s.StartUS < start {
			start = s.StartUS
		}
		if e := s.StartUS + s.DurUS; e > end {
			end = e
		}
		if s.Error != "" {
			tr.Err = true
		}
		if s.Parent == "" || !local[s.Parent] {
			tr.Name = s.Name
		}
	}
	tr.StartUS, tr.DurUS = start, end-start

	r.mu.Lock()
	defer r.mu.Unlock()
	r.committed++
	if old := r.ring[r.next]; old != nil {
		r.evict(old)
	}
	r.ring[r.next] = tr
	r.next = (r.next + 1) % len(r.ring)
}

// evict handles a trace falling off the ring: interesting ones (errors,
// or slower than the threshold) move to the outlier set. Callers hold mu.
func (r *Recorder) evict(tr *Trace) {
	r.evicted++
	if !tr.Err && time.Duration(tr.DurUS)*time.Microsecond < r.cfg.SlowThreshold {
		return
	}
	if len(r.outliers) >= r.cfg.OutlierCapacity {
		// Displace the fastest non-error outlier; errors go only when
		// nothing else is left, and never for a faster newcomer.
		victim, victimErr := -1, true
		for i, o := range r.outliers {
			if victim == -1 || (victimErr && !o.Err) ||
				(o.Err == victimErr && o.DurUS < r.outliers[victim].DurUS) {
				victim, victimErr = i, o.Err
			}
		}
		if victimErr && !tr.Err {
			r.dropped++
			return // all retained outliers are errors; keep them over a slow success
		}
		r.dropped++
		r.outliers[victim] = r.outliers[len(r.outliers)-1]
		r.outliers = r.outliers[:len(r.outliers)-1]
	}
	r.outliers = append(r.outliers, tr)
}

// Get returns every span recorded under id, merged across the ring and
// the outlier set (one process can legitimately hold several traces with
// one id — a /run root and the peer-compile it served for another
// replica). The second result reports whether anything was found.
func (r *Recorder) Get(id TraceID) ([]Span, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var spans []Span
	seen := make(map[SpanID]bool)
	collect := func(tr *Trace) {
		if tr == nil || tr.ID != id {
			return
		}
		for _, s := range tr.Spans {
			if !seen[s.ID] {
				seen[s.ID] = true
				spans = append(spans, s)
			}
		}
	}
	for _, tr := range r.ring {
		collect(tr)
	}
	for _, tr := range r.outliers {
		collect(tr)
	}
	return spans, len(spans) > 0
}

// Summary is the list-view projection of one recorded trace.
type Summary struct {
	ID      TraceID `json:"id"`
	Name    string  `json:"name"`
	Process string  `json:"process"`
	StartUS int64   `json:"start_us"`
	DurUS   int64   `json:"dur_us"`
	Spans   int     `json:"spans"`
	Err     bool    `json:"error,omitempty"`
	Outlier bool    `json:"outlier,omitempty"`
}

// List returns summaries of every resident trace, outliers first, then
// ring entries newest-first.
func (r *Recorder) List() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Summary, 0, len(r.outliers)+len(r.ring))
	add := func(tr *Trace, outlier bool) {
		out = append(out, Summary{
			ID: tr.ID, Name: tr.Name, Process: tr.Process,
			StartUS: tr.StartUS, DurUS: tr.DurUS,
			Spans: len(tr.Spans), Err: tr.Err, Outlier: outlier,
		})
	}
	sorted := append([]*Trace(nil), r.outliers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DurUS > sorted[j].DurUS })
	for _, tr := range sorted {
		add(tr, true)
	}
	for i := 1; i <= len(r.ring); i++ {
		if tr := r.ring[(r.next-i+len(r.ring))%len(r.ring)]; tr != nil {
			add(tr, false)
		}
	}
	return out
}

// RecorderStats is the /statsz view of a flight recorder.
type RecorderStats struct {
	Capacity  int   `json:"capacity"`
	Resident  int   `json:"resident"`
	Outliers  int   `json:"outliers"`
	Committed int64 `json:"committed"`
	Evicted   int64 `json:"evicted"`
	Dropped   int64 `json:"dropped_outliers"`
}

// Stats snapshots the recorder counters (zero value on nil).
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RecorderStats{
		Capacity:  r.cfg.Capacity,
		Outliers:  len(r.outliers),
		Committed: r.committed,
		Evicted:   r.evicted,
		Dropped:   r.dropped,
	}
	for _, tr := range r.ring {
		if tr != nil {
			st.Resident++
		}
	}
	return st
}

// traceDoc is the single-trace JSON document served by the handler; the
// gate's stitched view reuses it so clients see one shape either way.
type traceDoc struct {
	ID    TraceID `json:"id"`
	Spans []Span  `json:"spans"`
}

// ServeHTTP serves the recorder on GET /debugz/traces:
//
//	GET /debugz/traces            JSON list of resident trace summaries
//	GET /debugz/traces?id=T       all spans recorded under trace T
//	GET /debugz/traces?id=T&format=chrome
//	                              the same as a Chrome trace-event file
//	                              (load in chrome://tracing or Perfetto)
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	id := TraceID(req.URL.Query().Get("id"))
	if id == "" {
		writeTraceJSON(w, http.StatusOK, map[string]any{
			"stats":  r.Stats(),
			"traces": r.List(),
		})
		return
	}
	spans, ok := r.Get(id)
	if !ok {
		writeTraceJSON(w, http.StatusNotFound, map[string]string{
			"error": "trace not found: " + string(id)})
		return
	}
	ServeSpans(w, req, id, spans)
}

// ServeSpans writes a span set as the single-trace document, honouring
// the format=chrome query parameter. Shared by the per-process handler
// and the gate's stitched fleet view.
func ServeSpans(w http.ResponseWriter, req *http.Request, id TraceID, spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	if req.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(ChromeTrace(spans))
		return
	}
	writeTraceJSON(w, http.StatusOK, traceDoc{ID: id, Spans: spans})
}
