// Package xtrace is request-scoped distributed tracing for the serving
// tier: the cross-process counterpart of internal/trace, which instruments
// the simulated machine. Where trace attributes cycles inside one
// simulation, xtrace attributes wall-clock time across the fleet — a
// request entering qgate carries a trace id through routing, failover,
// the replica's admission queue, every artifact-cache tier, peer fetches,
// coalesced-flight joins, the compile, and the simulation itself, and
// each process keeps a bounded flight recorder of recently completed
// traces (plus always-retained slow and error outliers) served on
// GET /debugz/traces.
//
// Propagation is two HTTP headers: TraceHeader carries the 128-bit trace
// id and SpanHeader the caller's span id, which becomes the parent of the
// receiving process's root span. A process opens a trace only when the
// headers arrive (or its own sampler fires), so an untraced request costs
// one header lookup and nothing else — the same zero-cost-when-disabled
// contract internal/trace keeps inside the simulator.
//
// Span timestamps are wall-clock microseconds from each process's own
// clock. Within one machine (the CI fleet, the e2e tests) that makes
// cross-process spans directly comparable; across machines the usual
// clock-skew caveats apply and only intra-process durations are exact.
package xtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"
)

// TraceHeader and SpanHeader carry trace context between processes:
// qload → qgate → replica → peer. TraceHeader is the trace id shared by
// every span of the request; SpanHeader is the sender's current span id,
// which the receiver records as its root span's parent.
const (
	TraceHeader = "X-Qmd-Trace"
	SpanHeader  = "X-Qmd-Span"
)

// TraceID identifies one end-to-end request across processes (16 random
// bytes, hex). SpanID identifies one span within a trace (8 bytes, hex).
type TraceID string

type SpanID string

// NewTraceID returns a fresh random trace id.
func NewTraceID() TraceID { return TraceID(randHex(16)) }

// NewSpanID returns a fresh random span id.
func NewSpanID() SpanID { return SpanID(randHex(8)) }

func randHex(n int) string {
	b := make([]byte, n)
	// crypto/rand.Read on a healthy system cannot fail; if it somehow
	// does, the zero bytes still yield a syntactically valid (if
	// colliding) id, which degrades tracing, not serving.
	rand.Read(b)
	return hex.EncodeToString(b)
}

// Span is one completed operation within a trace. StartUS is wall-clock
// Unix microseconds from the recording process's clock; DurUS the span's
// duration in microseconds (zero-duration spans mark instantaneous
// events, like a coalesced follower's join).
type Span struct {
	Trace   TraceID           `json:"trace"`
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Process string            `json:"process"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// Tracer opens traces for one process. A nil *Tracer is valid and inert:
// every method returns the nil span, whose methods are all no-ops, so
// instrumented code needs no enabled-checks of its own.
type Tracer struct {
	process  string
	recorder *Recorder
	sampler  func() bool // optional unsolicited sampling; nil = header-only
}

// NewTracer builds a tracer that commits completed traces to rec under
// the given process name (shown as the process lane in stitched views).
func NewTracer(process string, rec *Recorder) *Tracer {
	return &Tracer{process: process, recorder: rec}
}

// SetSampler installs a decision function consulted for requests that
// arrive without a trace header; when it returns true the tracer opens a
// fresh trace anyway. Must be set before serving starts.
func (t *Tracer) SetSampler(f func() bool) {
	if t != nil {
		t.sampler = f
	}
}

// Process returns the tracer's process label ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	return t.process
}

// builder accumulates one process-local trace while its request runs and
// commits it to the recorder when the root span ends. Spans may end on
// worker goroutines while the handler goroutine ends others, so the
// builder is locked; spans ending after the root has committed (a flight
// whose every waiter timed out, say) are dropped silently.
type builder struct {
	tracer *Tracer
	trace  TraceID
	mu     sync.Mutex
	spans  []Span
	done   bool
}

func (b *builder) add(s Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.done {
		return
	}
	b.spans = append(b.spans, s)
}

func (b *builder) commit() {
	b.mu.Lock()
	spans := b.spans
	b.done = true
	b.mu.Unlock()
	if rec := b.tracer.recorder; rec != nil && len(spans) > 0 {
		rec.Commit(b.trace, spans)
	}
}

// ActiveSpan is a span under construction. The zero of usefulness is nil:
// every method on a nil *ActiveSpan is a no-op, which is what lets traced
// and untraced requests share one code path.
type ActiveSpan struct {
	b     *builder
	root  bool
	mu    sync.Mutex
	span  Span
	start time.Time
	ended bool
}

type ctxKey struct{}

// spanFrom returns the current span carried by ctx, or nil.
func spanFrom(ctx context.Context) *ActiveSpan {
	s, _ := ctx.Value(ctxKey{}).(*ActiveSpan)
	return s
}

// TraceIDFrom returns the trace id active on ctx ("" when untraced).
func TraceIDFrom(ctx context.Context) TraceID {
	if s := spanFrom(ctx); s != nil {
		return s.span.Trace
	}
	return ""
}

// CurrentSpan returns the span active on ctx (nil when untraced). Useful
// for attaching attributes or errors to whatever span is in scope.
func CurrentSpan(ctx context.Context) *ActiveSpan { return spanFrom(ctx) }

// StartRequest opens this process's slice of a request's trace. When r
// carries TraceHeader the incoming trace is continued, with the caller's
// SpanHeader as the root's parent; otherwise the tracer's sampler (if
// any) may open a fresh trace. Without either, it returns (r.Context(),
// nil) after one header lookup — the untraced fast path.
//
// The returned context carries the root span; derive every child from it
// (context.WithTimeout/WithoutCancel preserve it). End the root span to
// commit the trace to the flight recorder.
func (t *Tracer) StartRequest(r *http.Request, name string) (context.Context, *ActiveSpan) {
	ctx := r.Context()
	if t == nil {
		return ctx, nil
	}
	trace := TraceID(r.Header.Get(TraceHeader))
	parent := SpanID(r.Header.Get(SpanHeader))
	if trace == "" {
		if t.sampler == nil || !t.sampler() {
			return ctx, nil
		}
		trace, parent = NewTraceID(), ""
	}
	b := &builder{tracer: t, trace: trace}
	s := &ActiveSpan{
		b:     b,
		root:  true,
		start: time.Now(),
		span: Span{
			Trace:   trace,
			ID:      NewSpanID(),
			Parent:  parent,
			Process: t.process,
			Name:    name,
		},
	}
	s.span.StartUS = s.start.UnixMicro()
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartSpan opens a child of ctx's current span. On an untraced context
// it returns (ctx, nil) — safe to call unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	return StartSpanAt(ctx, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for spans whose
// beginning was only recognised in hindsight (a follower that learns it
// joined a flight when the flight returns, say).
func StartSpanAt(ctx context.Context, name string, start time.Time) (context.Context, *ActiveSpan) {
	parent := spanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &ActiveSpan{
		b:     parent.b,
		start: start,
		span: Span{
			Trace:   parent.span.Trace,
			ID:      NewSpanID(),
			Parent:  parent.span.ID,
			Process: parent.span.Process,
			Name:    name,
		},
	}
	s.span.StartUS = start.UnixMicro()
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SetAttr attaches a key/value attribute; no-op on nil or after End.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// SetError marks the span (and so the trace) failed; no-op on nil err.
func (s *ActiveSpan) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.span.Error = err.Error()
	}
}

// End completes the span and records it; ending the root span commits
// the whole process-local trace to the flight recorder. End is
// idempotent and nil-safe.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.span.DurUS = time.Since(s.start).Microseconds()
	span, root, b := s.span, s.root, s.b
	s.mu.Unlock()
	b.add(span)
	if root {
		b.commit()
	}
}

// EndErr is SetError followed by End.
func (s *ActiveSpan) EndErr(err error) {
	s.SetError(err)
	s.End()
}

// ID returns the span id ("" on nil), for propagation and join links.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return ""
	}
	return s.span.ID
}

// TraceID returns the span's trace id ("" on nil).
func (s *ActiveSpan) TraceID() TraceID {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

// Inject writes ctx's trace context onto h so the receiving process can
// continue the trace; a no-op on untraced contexts.
func Inject(ctx context.Context, h http.Header) {
	if s := spanFrom(ctx); s != nil {
		h.Set(TraceHeader, string(s.span.Trace))
		h.Set(SpanHeader, string(s.span.ID))
	}
}
