package xtrace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Objective is one route's service-level objective: at least (1 - Budget)
// of requests must finish under P99 and without a server error. The
// default budget of 1% is what makes P99 a p99: one request in a hundred
// may run long or fail before the objective is burning.
type Objective struct {
	Route  string        `json:"route"`
	P99    time.Duration `json:"-"`
	Budget float64       `json:"budget"`
}

// ParseObjectives parses the flag form "route=dur[,route=dur...]", e.g.
// "run=2s,compile=500ms". Budgets take the 1% default.
func ParseObjectives(s string) ([]Objective, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var objs []Objective
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		route, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || route == "" {
			return nil, fmt.Errorf("xtrace: malformed objective %q (want route=duration)", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("xtrace: objective %q: bad duration %q", route, val)
		}
		if seen[route] {
			return nil, fmt.Errorf("xtrace: duplicate objective for route %q", route)
		}
		seen[route] = true
		objs = append(objs, Objective{Route: route, P99: d})
	}
	return objs, nil
}

// sloState is one route's burn accounting. A request is bad when it ran
// past the latency objective or answered a 5xx; a request that does both
// burns once, not twice.
type sloState struct {
	obj    Objective
	total  atomic.Int64
	slow   atomic.Int64
	errors atomic.Int64
	bad    atomic.Int64
}

// SLOTracker accumulates per-route burn-rate counters against declared
// objectives. A nil tracker is inert, matching the tracer's contract.
type SLOTracker struct {
	routes map[string]*sloState
	order  []string
}

// NewSLOTracker builds a tracker over the objectives; nil when none are
// declared, so callers can gate on the pointer alone. Unset budgets
// default to 1%.
func NewSLOTracker(objs []Objective) *SLOTracker {
	if len(objs) == 0 {
		return nil
	}
	t := &SLOTracker{routes: make(map[string]*sloState, len(objs))}
	for _, o := range objs {
		if o.Budget <= 0 {
			o.Budget = 0.01
		}
		if _, dup := t.routes[o.Route]; dup {
			continue
		}
		t.routes[o.Route] = &sloState{obj: o}
		t.order = append(t.order, o.Route)
	}
	sort.Strings(t.order)
	return t
}

// Observe scores one finished request against its route's objective.
// Routes without an objective, and a nil tracker, are no-ops.
func (t *SLOTracker) Observe(route string, d time.Duration, status int) {
	if t == nil {
		return
	}
	st, ok := t.routes[route]
	if !ok {
		return
	}
	st.total.Add(1)
	slow, failed := d > st.obj.P99, status >= 500
	if slow {
		st.slow.Add(1)
	}
	if failed {
		st.errors.Add(1)
	}
	if slow || failed {
		st.bad.Add(1)
	}
}

// SLOStatus is one route's objective and burn state. BurnRate is the
// observed bad fraction over the budget: 1.0 means burning exactly at
// the objective's limit, above 1 the objective is being missed.
type SLOStatus struct {
	Route            string  `json:"route"`
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	Budget           float64 `json:"budget"`
	Requests         int64   `json:"requests"`
	Slow             int64   `json:"slow"`
	Errors           int64   `json:"errors"`
	Bad              int64   `json:"bad"`
	BadFraction      float64 `json:"bad_fraction"`
	BurnRate         float64 `json:"burn_rate"`
}

// Snapshot returns the per-route burn state, routes sorted.
func (t *SLOTracker) Snapshot() []SLOStatus {
	if t == nil {
		return nil
	}
	out := make([]SLOStatus, 0, len(t.order))
	for _, route := range t.order {
		st := t.routes[route]
		s := SLOStatus{
			Route:            route,
			TargetP99Seconds: st.obj.P99.Seconds(),
			Budget:           st.obj.Budget,
			Requests:         st.total.Load(),
			Slow:             st.slow.Load(),
			Errors:           st.errors.Load(),
			Bad:              st.bad.Load(),
		}
		if s.Requests > 0 {
			s.BadFraction = float64(s.Bad) / float64(s.Requests)
			s.BurnRate = s.BadFraction / st.obj.Budget
		}
		out = append(out, s)
	}
	return out
}
