package xtrace

import (
	"encoding/json"
	"net/http"
	"sort"
)

// chromeEvent is the subset of the Chrome trace-event format the export
// uses: complete ("X") duration events plus process/thread metadata, the
// same dialect internal/trace emits for simulator traces.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts,omitempty"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders spans as a Chrome trace-event file: one pid per
// process, spans stacked on lanes within it, so chrome://tracing (or
// Perfetto) shows the cross-process request waterfall. Lanes are
// assigned greedily by start time, so overlapping siblings (a failover's
// two attempts racing a deadline, say) land on separate rows instead of
// rendering as a corrupt nest.
func ChromeTrace(spans []Span) []byte {
	byStart := append([]Span(nil), spans...)
	sort.Slice(byStart, func(i, j int) bool {
		if byStart[i].StartUS != byStart[j].StartUS {
			return byStart[i].StartUS < byStart[j].StartUS
		}
		return byStart[i].DurUS > byStart[j].DurUS // parents before children
	})

	pids := make(map[string]int)
	var events []chromeEvent
	// laneEnd[pid][lane] is when that lane frees up; a span takes the
	// first lane whose occupant ended at or before its start, nesting
	// children under parents naturally (a child starts after its parent
	// and the parent's lane is still busy).
	laneEnd := make(map[int][]int64)
	for _, s := range byStart {
		pid, ok := pids[s.Process]
		if !ok {
			pid = len(pids)
			pids[s.Process] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": s.Process},
			})
		}
		lanes := laneEnd[pid]
		lane := -1
		for i, end := range lanes {
			if end <= s.StartUS {
				lane = i
				break
			}
		}
		if lane == -1 {
			lane = len(lanes)
			lanes = append(lanes, 0)
		}
		lanes[lane] = s.StartUS + s.DurUS
		laneEnd[pid] = lanes

		args := map[string]any{"trace": string(s.Trace), "span": string(s.ID)}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		dur := s.DurUS
		if dur <= 0 {
			dur = 1 // chrome drops zero-width complete events
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: dur,
			Pid: pid, Tid: lane, Args: args,
		})
	}
	blob, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		// The event structs are plain data; marshal cannot fail.
		return []byte(`{"traceEvents":[]}`)
	}
	return blob
}

func writeTraceJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}
