package bintree

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseExpr parses an infix arithmetic expression into a binary expression
// parse tree. The grammar supports identifiers, unsigned integer literals,
// parentheses, unary minus (labelled "neg"), and the binary operators
// + - * / % with the usual precedence. It exists so that tests and examples
// can write trees as ordinary expressions, e.g. the thesis's running example
// "a*b + (c-d)/e".
func ParseExpr(src string) (*Node, error) {
	p := &exprParser{src: src}
	n, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("bintree: trailing input %q at offset %d", p.src[p.pos:], p.pos)
	}
	return n, nil
}

// MustParseExpr is ParseExpr for statically known-good inputs; it panics on
// error and is intended for tests and examples.
func MustParseExpr(src string) *Node {
	n, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return n
}

type exprParser struct {
	src string
	pos int
}

var exprPrec = map[byte]int{'+': 1, '-': 1, '*': 2, '/': 2, '%': 2}

func (p *exprParser) parseExpr(minPrec int) (*Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return left, nil
		}
		op := p.src[p.pos]
		prec, ok := exprPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = Binary(string(op), left, right)
	}
}

func (p *exprParser) parseUnary() (*Node, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary("neg", operand), nil
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (*Node, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("bintree: unexpected end of expression")
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		n, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("bintree: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return n, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := p.pos
		for p.pos < len(p.src) && (isIdentChar(p.src[p.pos])) {
			p.pos++
		}
		return Leaf(p.src[start:p.pos]), nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		return Leaf(p.src[start:p.pos]), nil
	default:
		return nil, fmt.Errorf("bintree: unexpected character %q at offset %d", c, p.pos)
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && strings.ContainsRune(" \t\n", rune(p.src[p.pos])) {
		p.pos++
	}
}

// Infix renders the tree back to a fully parenthesized infix expression,
// useful in error messages and for round-trip tests.
func Infix(n *Node) string {
	if n == nil {
		return ""
	}
	switch n.Arity() {
	case 0:
		return n.Label
	case 1:
		op := n.Label
		if op == "neg" {
			op = "-"
		}
		return "(" + op + Infix(n.Left) + ")"
	default:
		return "(" + Infix(n.Left) + n.Label + Infix(n.Right) + ")"
	}
}
