package bintree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// fig31Tree is the running example of Chapter 3: f := a*b + (c-d)/e.
func fig31Tree(t *testing.T) *Node {
	t.Helper()
	tree, err := ParseExpr("a*b + (c-d)/e")
	if err != nil {
		t.Fatalf("ParseExpr: %v", err)
	}
	return tree
}

func TestParseExprShape(t *testing.T) {
	tree := fig31Tree(t)
	if got := Infix(tree); got != "((a*b)+((c-d)/e))" {
		t.Errorf("Infix = %q", got)
	}
	if n := tree.Count(); n != 9 {
		t.Errorf("Count = %d, want 9", n)
	}
	if h := tree.Height(); h != 4 {
		t.Errorf("Height = %d, want 4", h)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{"", "a+", "(a", "a)", "a b", "+", "a**", "$"} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestParseExprUnaryAndLiterals(t *testing.T) {
	tree := MustParseExpr("-x * (y % 3)")
	if got := Infix(tree); got != "((-x)*(y%3))" {
		t.Errorf("Infix = %q", got)
	}
	if err := tree.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsRightOnly(t *testing.T) {
	bad := &Node{Label: "?", Right: Leaf("x")}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a right-only node")
	}
}

// TestLevelOrderFig31 checks the central example: the level-order traversal
// of the Figure 3.1 parse tree is the queue-machine sequence of Table 3.1.
func TestLevelOrderFig31(t *testing.T) {
	tree := fig31Tree(t)
	want := []string{"c", "d", "a", "b", "-", "e", "*", "/", "+"}
	if got := Labels(LevelOrder(tree)); !reflect.DeepEqual(got, want) {
		t.Errorf("LevelOrder = %v, want %v", got, want)
	}
	if got := Labels(LevelOrderDirect(tree)); !reflect.DeepEqual(got, want) {
		t.Errorf("LevelOrderDirect = %v, want %v", got, want)
	}
}

func TestPostOrderFig31(t *testing.T) {
	tree := fig31Tree(t)
	want := []string{"a", "b", "*", "c", "d", "-", "e", "/", "+"}
	if got := Labels(PostOrder(tree)); !reflect.DeepEqual(got, want) {
		t.Errorf("PostOrder = %v, want %v", got, want)
	}
}

func TestInOrderFig31(t *testing.T) {
	tree := fig31Tree(t)
	want := []string{"a", "*", "b", "+", "c", "-", "d", "/", "e"}
	if got := Labels(InOrder(tree)); !reflect.DeepEqual(got, want) {
		t.Errorf("InOrder = %v, want %v", got, want)
	}
}

func TestLevelsFig31(t *testing.T) {
	tree := fig31Tree(t)
	levels := Levels(tree)
	byLabel := map[string]int{}
	for n, l := range levels {
		byLabel[n.Label] = l
	}
	want := map[string]int{"+": 0, "*": 1, "/": 1, "a": 2, "b": 2, "-": 2, "e": 2, "c": 3, "d": 3}
	if !reflect.DeepEqual(byLabel, want) {
		t.Errorf("Levels = %v, want %v", byLabel, want)
	}
}

// TestConjugateAgainstDirect cross-checks the Figure 3.3 conjugate-tree
// construction against the direct definition of level order on a large set
// of random trees.
func TestConjugateAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		tree := randomTree(rng, 1+rng.Intn(40))
		got := Labels(LevelOrder(tree))
		want := Labels(LevelOrderDirect(tree))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: conjugate route %v != direct %v (tree %s)",
				trial, got, want, Infix(tree))
		}
	}
}

// randomTree builds a random well-formed parse tree with n nodes, labelling
// every node uniquely so traversal orders can be compared exactly.
func randomTree(rng *rand.Rand, n int) *Node {
	counter := 0
	var build func(n int) *Node
	build = func(n int) *Node {
		counter++
		label := "n" + itoa(counter)
		switch {
		case n <= 1:
			return Leaf(label)
		case n == 2 || rng.Intn(3) == 0:
			return Unary(label, build(n-1))
		default:
			left := 1 + rng.Intn(n-2)
			return Binary(label, build(left), build(n-1-left))
		}
	}
	return build(n)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for ; v > 0; v /= 10 {
		b = append([]byte{byte('0' + v%10)}, b...)
	}
	return string(b)
}

// TestLevelOrderProperties checks the defining property of Π(T): levels are
// non-increasing... more precisely strictly deeper levels come first, and
// within a level nodes appear left to right.
func TestLevelOrderProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		tree := randomTree(rng, 1+rng.Intn(30))
		levels := Levels(tree)
		order := LevelOrder(tree)
		if len(order) != tree.Count() {
			t.Fatalf("level order visits %d of %d nodes", len(order), tree.Count())
		}
		seen := map[*Node]bool{}
		for i := 1; i < len(order); i++ {
			if levels[order[i]] > levels[order[i-1]] {
				t.Fatalf("trial %d: level increases from %q (%d) to %q (%d)",
					trial, order[i-1].Label, levels[order[i-1]], order[i].Label, levels[order[i]])
			}
		}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("node %q visited twice", n.Label)
			}
			seen[n] = true
		}
	}
}

func TestConjugateSketch(t *testing.T) {
	sketch := ConjugateSketch(fig31Tree(t))
	lines := strings.Split(strings.TrimSpace(sketch), "\n")
	if len(lines) != 4 {
		t.Fatalf("sketch has %d lines, want 4:\n%s", len(lines), sketch)
	}
	if !strings.Contains(lines[3], "c -> d") {
		t.Errorf("deepest chain = %q, want it to contain \"c -> d\"", lines[3])
	}
}

func TestSingleNode(t *testing.T) {
	n := Leaf("x")
	if got := Labels(LevelOrder(n)); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("LevelOrder(leaf) = %v", got)
	}
	if n.Arity() != 0 || n.Count() != 1 || n.Height() != 1 {
		t.Error("leaf invariants broken")
	}
}

func TestNilTree(t *testing.T) {
	var n *Node
	if n.Count() != 0 || n.Height() != 0 {
		t.Error("nil tree should have zero count and height")
	}
	if err := n.Validate(); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
	if got := LevelOrderDirect(nil); got != nil {
		t.Errorf("LevelOrderDirect(nil) = %v", got)
	}
}

func TestArity(t *testing.T) {
	if got := Unary("u", Leaf("x")).Arity(); got != 1 {
		t.Errorf("unary arity = %d", got)
	}
	if got := Binary("b", Leaf("x"), Leaf("y")).Arity(); got != 2 {
		t.Errorf("binary arity = %d", got)
	}
	// A right-only node still reports arity 1 (it is invalid, but Arity
	// must not crash on it).
	if got := (&Node{Label: "?", Right: Leaf("x")}).Arity(); got != 1 {
		t.Errorf("right-only arity = %d", got)
	}
}
