// Package bintree implements the binary expression parse trees of Chapter 3
// of Preiss's "Data Flow on a Queue Machine", including the level-order
// precedence relation π_T, the level-order traversal Π(T), and the
// level-order conjugate tree δ(T) together with the construction algorithm
// of Figure 3.3.
//
// A level-order traversal visits the nodes of a parse tree from the deepest
// level to the shallowest and from left to right within each level; Chapter 3
// proves that this ordering is exactly a valid instruction sequence for a
// simple queue machine.
package bintree

import (
	"fmt"
	"strings"
)

// Node is a node of a binary (expression parse) tree. The zero number of
// children determines the operator arity: a node with no children is a
// nullary operator (an operand fetch or constant), a node with only a left
// child is a unary operator, and a node with two children is a binary
// operator. The thesis's parse-tree well-formedness condition — a unary node
// has a left child only, and a binary node has both — is checked by Validate.
type Node struct {
	// Label identifies the operator, e.g. "+", "neg", or "fetch a". For
	// leaves it is conventionally the operand name.
	Label string
	Left  *Node
	Right *Node
}

// Arity reports the number of children of n: 0, 1 or 2.
func (n *Node) Arity() int {
	switch {
	case n.Left == nil && n.Right == nil:
		return 0
	case n.Right == nil || n.Left == nil:
		return 1
	default:
		return 2
	}
}

// Count reports |N(T)|, the number of nodes in the tree rooted at n.
// Count of a nil tree is 0.
func (n *Node) Count() int {
	if n == nil {
		return 0
	}
	return 1 + n.Left.Count() + n.Right.Count()
}

// Height reports the number of levels in the tree rooted at n; a single node
// has height 1 and a nil tree has height 0.
func (n *Node) Height() int {
	if n == nil {
		return 0
	}
	return 1 + max(n.Left.Height(), n.Right.Height())
}

// Validate checks the parse-tree well-formedness condition of Chapter 3:
// every node has either no children, a left child only, or two children.
// (A node with only a right child is not a valid parse-tree node.)
func (n *Node) Validate() error {
	if n == nil {
		return nil
	}
	if n.Left == nil && n.Right != nil {
		return fmt.Errorf("bintree: node %q has a right child but no left child", n.Label)
	}
	if err := n.Left.Validate(); err != nil {
		return err
	}
	return n.Right.Validate()
}

// Leaf returns a nullary node.
func Leaf(label string) *Node { return &Node{Label: label} }

// Unary returns a unary node with the given operand subtree.
func Unary(label string, operand *Node) *Node {
	return &Node{Label: label, Left: operand}
}

// Binary returns a binary node with the given left and right subtrees.
func Binary(label string, left, right *Node) *Node {
	return &Node{Label: label, Left: left, Right: right}
}

// PostOrder returns the post-order traversal of the tree: left subtree,
// right subtree, node. A post-order traversal of an expression parse tree is
// the classical stack-machine instruction sequence.
func PostOrder(t *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		out = append(out, n)
	}
	walk(t)
	return out
}

// InOrder returns the in-order traversal of the tree: left subtree, node,
// right subtree.
func InOrder(t *Node) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		walk(n.Left)
		out = append(out, n)
		walk(n.Right)
	}
	walk(t)
	return out
}

// Levels returns, for every node of the tree, its level Γ_T(n): the root is
// at level 0 and each child is one level deeper than its parent.
func Levels(t *Node) map[*Node]int {
	levels := make(map[*Node]int)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n == nil {
			return
		}
		levels[n] = depth
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(t, 0)
	return levels
}

// LevelOrderDirect returns the level-order traversal Π(T) computed directly
// from the definition of the π_T relation: nodes sorted by decreasing level
// and from left to right within a level. It exists as an executable
// specification against which the efficient conjugate-tree route
// (LevelOrder) is verified.
func LevelOrderDirect(t *Node) []*Node {
	if t == nil {
		return nil
	}
	levels := Levels(t)
	// Collect nodes level by level via a pre-order walk, which preserves
	// left-to-right order inside each level.
	byLevel := make([][]*Node, t.Height())
	var walk func(*Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		l := levels[n]
		byLevel[l] = append(byLevel[l], n)
		walk(n.Left)
		walk(n.Right)
	}
	walk(t)
	out := make([]*Node, 0, t.Count())
	for l := len(byLevel) - 1; l >= 0; l-- {
		out = append(out, byLevel[l]...)
	}
	return out
}

// conjNode is a node of a level-order conjugate tree. The conjugate is a
// "tree of right-only binary trees": each node's right chain holds the
// remaining nodes of its own level (in left-to-right order) and each node's
// left child begins the chain of the next deeper level.
type conjNode struct {
	payload     *Node
	left, right *conjNode
}

// Conjugate constructs the level-order conjugate tree δ(T) of the parse tree
// t using the algorithm of Figure 3.3: a reverse post-order traversal (node,
// right subtree, left subtree) of t that splices each visited node onto the
// front of its level's right-only chain. The conjugate is returned as its
// root conjNode (the sentinel used during construction is stripped).
//
// The construction runs in O(|N(T)|) time and space.
func conjugate(t *Node) *conjNode {
	sentinel := &conjNode{}
	var build func(conj *conjNode, parse *Node)
	build = func(conj *conjNode, parse *Node) {
		if parse == nil {
			return
		}
		if conj.left == nil {
			conj.left = &conjNode{payload: parse}
		} else {
			// Splice the current head's payload into a fresh node
			// behind the head and install parse as the new head of
			// this level's chain. The head keeps its left pointer,
			// so the deeper-level chain stays reachable.
			head := conj.left
			head.right = &conjNode{payload: head.payload, right: head.right}
			head.payload = parse
		}
		build(conj.left, parse.Right)
		build(conj.left, parse.Left)
	}
	build(sentinel, t)
	return sentinel.left
}

// LevelOrder returns the level-order traversal Π(T) of the parse tree t,
// computed efficiently as the in-order traversal of the level-order
// conjugate tree (the central construction of Chapter 3). The resulting node
// sequence is a valid simple-queue-machine instruction sequence for the
// expression represented by t.
func LevelOrder(t *Node) []*Node {
	out := make([]*Node, 0, t.Count())
	var walk func(*conjNode)
	walk = func(c *conjNode) {
		if c == nil {
			return
		}
		walk(c.left)
		out = append(out, c.payload)
		walk(c.right)
	}
	walk(conjugate(t))
	return out
}

// ConjugateSketch renders the level-order conjugate tree of t as an indented
// sketch, one chain per line, for diagnostic output (Figure 3.1(c)).
func ConjugateSketch(t *Node) string {
	var b strings.Builder
	var walk func(c *conjNode, depth int)
	walk = func(c *conjNode, depth int) {
		if c == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		for n := c; n != nil; n = n.right {
			if n != c {
				b.WriteString(" -> ")
			}
			b.WriteString(n.payload.Label)
		}
		b.WriteByte('\n')
		walk(c.left, depth+1)
	}
	walk(conjugate(t), 0)
	return b.String()
}

// Labels maps a node slice to the corresponding label slice; a convenience
// for tests and printed traces.
func Labels(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Label
	}
	return out
}
