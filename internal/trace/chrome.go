package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Lane numbering for the Chrome trace: processing elements occupy the low
// thread ids, each message processor sits at mpLaneBase+pe, and the ring
// interconnect has a single lane of its own. Everything shares one process.
const (
	chromePid  = 1
	mpLaneBase = 1000
	ringLane   = 2000
)

// chromeEvent is one entry of the trace-event JSON format's traceEvents
// array (complete slices "X", instants "i", counters "C", and thread
// metadata "M" are the phases used here).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Chrome records the run as Chrome trace-event JSON: one lane per
// processing element carrying the context-occupancy slices and fork/exit
// instants, one lane per message processor carrying channel-operation
// slices and rendezvous instants, and a ring lane carrying interconnect
// transfers. Simulated cycles map one-to-one onto the format's microsecond
// timestamps. Load the output in chrome://tracing or https://ui.perfetto.dev.
type Chrome struct {
	sampleEvery int64
	events      []chromeEvent
	runStart    map[int]runOpen
	lanesNamed  map[int]bool
}

type runOpen struct {
	ctx          int
	at           int64
	switchCycles int64
	resumed      bool
}

// NewChrome builds a Chrome trace recorder. A positive sampleEvery adds
// counter tracks (live and ready contexts) sampled at that period; zero
// records no counters.
func NewChrome(sampleEvery int64) *Chrome {
	return &Chrome{
		sampleEvery: sampleEvery,
		runStart:    make(map[int]runOpen),
		lanesNamed:  make(map[int]bool),
	}
}

var _ Recorder = (*Chrome)(nil)

func (c *Chrome) SampleEvery() int64 { return c.sampleEvery }

// lane ensures the thread-name metadata for a lane exists and returns its
// thread id.
func (c *Chrome) lane(tid int, name string) int {
	if !c.lanesNamed[tid] {
		c.lanesNamed[tid] = true
		c.events = append(c.events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
		c.events = append(c.events, chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"sort_index": tid},
		})
	}
	return tid
}

func (c *Chrome) peLane(pe int) int { return c.lane(pe, fmt.Sprintf("PE %d", pe)) }
func (c *Chrome) mpLane(pe int) int { return c.lane(mpLaneBase+pe, fmt.Sprintf("MP %d", pe)) }
func (c *Chrome) ringLaneID() int   { return c.lane(ringLane, "ring") }

func (c *Chrome) BeginRun(pe, ctx int, at, switchCycles int64, resumed bool) {
	c.runStart[pe] = runOpen{ctx: ctx, at: at, switchCycles: switchCycles, resumed: resumed}
	if switchCycles > 0 {
		name := "switch"
		if resumed {
			name = "resume"
		}
		c.events = append(c.events, chromeEvent{
			Name: name, Ph: "X", Ts: at - switchCycles, Dur: switchCycles,
			Pid: chromePid, Tid: c.peLane(pe),
		})
	}
}

func (c *Chrome) EndRun(pe, ctx int, at int64, reason EndReason) {
	open, ok := c.runStart[pe]
	if !ok || open.ctx != ctx {
		return
	}
	delete(c.runStart, pe)
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("ctx %d", ctx), Ph: "X", Ts: open.at, Dur: at - open.at,
		Pid: chromePid, Tid: c.peLane(pe),
		Args: map[string]any{"resumed": open.resumed, "end": reason.String()},
	})
}

// Instr events are deliberately not serialized: per-instruction slices
// overwhelm the viewer on any non-trivial run. The hook exists so finer
// recorders can be layered via Multi.
func (c *Chrome) Instr(_, _, _, _ int, _ string, _ int64, _, _ int) {}

func (c *Chrome) ContextCreated(ctx, parent, pe int, at int64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("fork ctx %d", ctx), Ph: "i", Ts: at, S: "t",
		Pid: chromePid, Tid: c.peLane(pe),
		Args: map[string]any{"parent": parent},
	})
}

func (c *Chrome) ContextReady(_, _, _ int, _ int64) {}

func (c *Chrome) ContextExited(ctx, pe int, at int64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("exit ctx %d", ctx), Ph: "i", Ts: at, S: "t",
		Pid: chromePid, Tid: c.peLane(pe),
	})
}

func (c *Chrome) MsgOp(pe int, ch int32, op ChanOp, start, end int64, hit, completed bool, _, _ int) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("%s ch %d", op, ch), Ph: "X", Ts: start, Dur: end - start,
		Pid: chromePid, Tid: c.mpLane(pe),
		Args: map[string]any{"hit": hit, "completed": completed},
	})
	if completed {
		c.events = append(c.events, chromeEvent{
			Name: fmt.Sprintf("rendezvous ch %d", ch), Ph: "i", Ts: end, S: "t",
			Pid: chromePid, Tid: c.mpLane(pe),
		})
	}
}

func (c *Chrome) RingTransfer(from, to int, start, end, wait int64) {
	c.events = append(c.events, chromeEvent{
		Name: fmt.Sprintf("pe %d → pe %d", from, to), Ph: "X", Ts: start, Dur: end - start,
		Pid: chromePid, Tid: c.ringLaneID(),
		Args: map[string]any{"wait": wait},
	})
}

func (c *Chrome) Sample(at int64, s MachineSample) {
	c.events = append(c.events, chromeEvent{
		Name: "contexts", Ph: "C", Ts: at, Pid: chromePid, Tid: 0,
		Args: map[string]any{"live": s.LiveContexts, "ready": s.ReadyContexts},
	})
}

// Events reports how many trace events have been recorded.
func (c *Chrome) Events() int { return len(c.events) }

// Write serializes the trace in the JSON object form chrome://tracing
// loads directly: {"traceEvents": [...]}.
func (c *Chrome) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: c.events})
}
