package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// driveSynthetic feeds a recorder a small, hand-written event sequence in
// the order the event loop would produce it: two contexts time-slicing on
// one processing element, a channel rendezvous, a ring hop, and two
// sampling boundaries.
func driveSynthetic(r Recorder) {
	r.ContextCreated(0, -1, 0, 0)
	r.ContextReady(0, 0, 1, 0)
	r.BeginRun(0, 0, 10, 10, false)
	r.Instr(0, 0, 0, 0, "dup", 10, 1, 0)
	r.MsgOp(0, 7, ChanSend, 20, 24, true, false, -1, -1)
	r.EndRun(0, 0, 20, EndBlockedSend)
	r.ContextCreated(1, 0, 0, 20)
	r.ContextReady(1, 0, 1, 20)
	r.BeginRun(0, 1, 30, 10, false)
	r.MsgOp(0, 7, ChanRecv, 35, 39, true, true, 0, 1)
	r.EndRun(0, 1, 40, EndExited)
	r.ContextExited(1, 0, 40)
	r.RingTransfer(0, 1, 41, 45, 2)
	r.Sample(50, MachineSample{NumPEs: 1, LiveContexts: 1, BusyCycles: 20,
		Instructions: 4, QueueSum: 8, CacheHits: 2, RingMessages: 1, RingWaitCycles: 2})
	r.Sample(100, MachineSample{NumPEs: 1, LiveContexts: 1, BusyCycles: 45,
		Instructions: 9, QueueSum: 28, CacheHits: 2, CacheMisses: 3, RingMessages: 1, RingWaitCycles: 2})
}

// chromeDoc mirrors the {"traceEvents": [...]} envelope for decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	c := NewChrome(50)
	driveSynthetic(c)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) != c.Events() {
		t.Fatalf("decoded %d events, recorder holds %d", len(doc.TraceEvents), c.Events())
	}

	byPhase := map[string]int{}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		byPhase[e.Ph]++
		names[e.Name] = true
		if e.Ph == "" || e.Pid != 1 {
			t.Errorf("event %+v: missing phase or wrong pid", e)
		}
		if e.Ph == "X" && e.Dur < 0 {
			t.Errorf("slice %q has negative duration %d", e.Name, e.Dur)
		}
	}
	// The synthetic run must produce: two context slices and two dispatch
	// slices on the PE lane, two channel-op slices on the MP lane, one ring
	// slice; fork/exit/rendezvous instants; two counter samples; metadata
	// for the three lanes touched (2 events per lane).
	if byPhase["X"] != 7 {
		t.Errorf("slices = %d, want 7", byPhase["X"])
	}
	if byPhase["i"] != 4 {
		t.Errorf("instants = %d, want 4", byPhase["i"])
	}
	if byPhase["C"] != 2 {
		t.Errorf("counters = %d, want 2", byPhase["C"])
	}
	if byPhase["M"] != 6 {
		t.Errorf("metadata = %d, want 6", byPhase["M"])
	}
	for _, want := range []string{"ctx 0", "ctx 1", "switch", "fork ctx 1",
		"exit ctx 1", "send ch 7", "recv ch 7", "rendezvous ch 7",
		"pe 0 → pe 1", "contexts", "thread_name"} {
		if !names[want] {
			t.Errorf("event %q missing from trace", want)
		}
	}
}

func TestChromeEndRunIgnoresUnmatchedContext(t *testing.T) {
	c := NewChrome(0)
	c.BeginRun(0, 3, 10, 0, true)
	c.EndRun(0, 99, 20, EndExited) // different context: no slice
	c.EndRun(1, 3, 20, EndExited)  // different PE: no slice
	before := c.Events()
	c.EndRun(0, 3, 20, EndExited)
	// The slice plus the lane's two metadata events (first event on PE 0).
	if c.Events() != before+3 {
		t.Fatalf("matched EndRun added %d events, want 3", c.Events()-before)
	}
	c.EndRun(0, 3, 30, EndExited) // already closed: no slice
	if c.Events() != before+3 {
		t.Fatal("double EndRun emitted a second slice")
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(50)
	driveSynthetic(tl)
	s := tl.Series()
	if s.BucketCycles != 50 {
		t.Fatalf("BucketCycles = %d", s.BucketCycles)
	}
	if len(s.Buckets) != 2 {
		t.Fatalf("buckets = %d, want 2", len(s.Buckets))
	}
	b0, b1 := s.Buckets[0], s.Buckets[1]
	if b0.EndCycle != 50 || b1.EndCycle != 100 {
		t.Errorf("bucket ends %d, %d; want 50, 100", b0.EndCycle, b1.EndCycle)
	}
	// First bucket: 20 busy cycles of 50 on one PE, 4 instructions with a
	// queue-length sum of 8, 2 cache hits and no misses.
	if b0.Utilization != 0.4 || b0.Instructions != 4 || b0.AvgQueueLength != 2 || b0.CacheHitRate != 1 {
		t.Errorf("bucket 0 = %+v", b0)
	}
	// Second bucket is differenced against the first: 25 more busy cycles,
	// 5 instructions, queue sum +20, 0 hits and 3 misses.
	if b1.Utilization != 0.5 || b1.Instructions != 5 || b1.AvgQueueLength != 4 || b1.CacheHitRate != 0 {
		t.Errorf("bucket 1 = %+v", b1)
	}
	if b0.RingMessages != 1 || b1.RingMessages != 0 {
		t.Errorf("ring messages = %d, %d; want 1, 0", b0.RingMessages, b1.RingMessages)
	}
}

func TestTimelineDuplicateFinalBoundary(t *testing.T) {
	tl := NewTimeline(100)
	tl.Sample(100, MachineSample{NumPEs: 1, Instructions: 10})
	// The run ends exactly on a bucket edge: the final emitSample repeats
	// the boundary and must not produce an empty bucket.
	tl.Sample(100, MachineSample{NumPEs: 1, Instructions: 10})
	if n := len(tl.Series().Buckets); n != 1 {
		t.Fatalf("buckets = %d, want 1", n)
	}
	// A short final bucket (run ends mid-bucket) is kept.
	tl.Sample(130, MachineSample{NumPEs: 1, Instructions: 16, BusyCycles: 30})
	s := tl.Series()
	if n := len(s.Buckets); n != 2 {
		t.Fatalf("buckets = %d, want 2", n)
	}
	if b := s.Buckets[1]; b.EndCycle != 130 || b.Instructions != 6 || b.Utilization != 1 {
		t.Errorf("final short bucket = %+v", b)
	}
}

// countRecorder counts hook invocations, for Multi fan-out checks.
type countRecorder struct {
	NopRecorder
	every          int64
	begins, ends   int
	instrs, msgs   int
	creates, exits int
	readies, rings int
	samples        int
}

func (c *countRecorder) SampleEvery() int64                    { return c.every }
func (c *countRecorder) BeginRun(_, _ int, _, _ int64, _ bool) { c.begins++ }
func (c *countRecorder) EndRun(_, _ int, _ int64, _ EndReason) { c.ends++ }
func (c *countRecorder) Instr(_, _, _, _ int, _ string, _ int64, _, _ int) {
	c.instrs++
}
func (c *countRecorder) ContextCreated(_, _, _ int, _ int64) { c.creates++ }
func (c *countRecorder) ContextReady(_, _, _ int, _ int64)   { c.readies++ }
func (c *countRecorder) ContextExited(_, _ int, _ int64)     { c.exits++ }
func (c *countRecorder) MsgOp(_ int, _ int32, _ ChanOp, _, _ int64, _, _ bool, _, _ int) {
	c.msgs++
}
func (c *countRecorder) RingTransfer(_, _ int, _, _, _ int64) { c.rings++ }
func (c *countRecorder) Sample(_ int64, _ MachineSample)      { c.samples++ }

func TestMulti(t *testing.T) {
	if r := Multi(); r != nil {
		t.Error("Multi() should be nil")
	}
	if r := Multi(nil, nil); r != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	one := &countRecorder{}
	if r := Multi(nil, one); r != Recorder(one) {
		t.Error("Multi with one live recorder should return it unwrapped")
	}

	a := &countRecorder{every: 100}
	b := &countRecorder{every: 30}
	c := &countRecorder{} // does not sample
	m := Multi(a, nil, b, c)
	if m.SampleEvery() != 30 {
		t.Errorf("SampleEvery = %d, want the smallest positive period 30", m.SampleEvery())
	}
	driveSynthetic(m)
	for i, r := range []*countRecorder{a, b, c} {
		if r.begins != 2 || r.ends != 2 || r.instrs != 1 || r.msgs != 2 ||
			r.creates != 2 || r.exits != 1 || r.readies != 2 || r.rings != 1 || r.samples != 2 {
			t.Errorf("recorder %d saw %+v", i, *r)
		}
	}
}

func TestEndReasonAndChanOpStrings(t *testing.T) {
	for want, got := range map[string]string{
		"blocked-send": EndBlockedSend.String(),
		"blocked-recv": EndBlockedRecv.String(),
		"blocked-wait": EndBlockedWait.String(),
		"exited":       EndExited.String(),
		"unknown":      EndReason(99).String(),
		"send":         ChanSend.String(),
		"recv":         ChanRecv.String(),
	} {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
