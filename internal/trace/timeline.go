package trace

// Timeline collects a cycle-sampled time series of machine behaviour: the
// simulator delivers a cumulative MachineSample at every bucket boundary and
// the collector differences successive samples into per-bucket rates. This
// is the time-resolved counterpart of the end-of-run aggregate statistics —
// utilization, live contexts, ready-queue depth, operand-queue span and
// message-cache hit rate per bucket rather than averaged over the run.
type Timeline struct {
	NopRecorder
	bucket  int64
	last    MachineSample
	lastT   int64
	buckets []Bucket
}

// Bucket is one sampling interval of the time series. Utilization,
// AvgQueueLength and CacheHitRate are rates over the bucket; LiveContexts
// and ReadyContexts are gauges observed at its end.
type Bucket struct {
	// EndCycle is the simulated time at the bucket's close. Buckets are
	// nominally uniform, but the final bucket closes at the end of the run.
	EndCycle       int64   `json:"end_cycle"`
	Instructions   int64   `json:"instructions"`
	Utilization    float64 `json:"utilization"`
	LiveContexts   int     `json:"live_contexts"`
	ReadyContexts  int     `json:"ready_contexts"`
	AvgQueueLength float64 `json:"avg_queue_length"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	RingMessages   int64   `json:"ring_messages"`
	RingWaitCycles int64   `json:"ring_wait_cycles"`
}

// Series is the complete time series, shaped for JSON embedding in the run
// statistics document.
type Series struct {
	BucketCycles int64    `json:"bucket_cycles"`
	Buckets      []Bucket `json:"buckets"`
}

// NewTimeline builds a collector sampling every bucketCycles cycles (at
// least 1).
func NewTimeline(bucketCycles int64) *Timeline {
	if bucketCycles < 1 {
		bucketCycles = 1
	}
	return &Timeline{bucket: bucketCycles}
}

var _ Recorder = (*Timeline)(nil)

func (tl *Timeline) SampleEvery() int64 { return tl.bucket }

func (tl *Timeline) Sample(at int64, s MachineSample) {
	if at <= tl.lastT && len(tl.buckets) > 0 {
		return // duplicate boundary (e.g. run ends exactly on a bucket edge)
	}
	dt := at - tl.lastT
	b := Bucket{
		EndCycle:       at,
		Instructions:   s.Instructions - tl.last.Instructions,
		LiveContexts:   s.LiveContexts,
		ReadyContexts:  s.ReadyContexts,
		RingMessages:   s.RingMessages - tl.last.RingMessages,
		RingWaitCycles: s.RingWaitCycles - tl.last.RingWaitCycles,
	}
	if dt > 0 && s.NumPEs > 0 {
		b.Utilization = float64(s.BusyCycles-tl.last.BusyCycles) / float64(dt*int64(s.NumPEs))
	}
	if b.Instructions > 0 {
		b.AvgQueueLength = float64(s.QueueSum-tl.last.QueueSum) / float64(b.Instructions)
	}
	if acc := (s.CacheHits - tl.last.CacheHits) + (s.CacheMisses - tl.last.CacheMisses); acc > 0 {
		b.CacheHitRate = float64(s.CacheHits-tl.last.CacheHits) / float64(acc)
	}
	tl.buckets = append(tl.buckets, b)
	tl.last, tl.lastT = s, at
}

// Series snapshots the collected time series.
func (tl *Timeline) Series() *Series {
	return &Series{BucketCycles: tl.bucket, Buckets: tl.buckets}
}
