// Package trace is the simulator's instrumentation layer: a Recorder
// interface whose hooks are invoked from the sim event loop, the processing
// element's execute path, the kernel's context lifecycle, the ring
// interconnect, and the message processors. Every hook call site is guarded
// by a nil check on a concrete recorder pointer, so a simulation built
// without a recorder pays nothing — no interface dispatch, no allocation,
// no branch beyond the nil test — and its cycle counts are bit-identical
// to an instrumented run (hooks observe, they never alter timing).
//
// Two concrete recorders ship with the package: Chrome emits the trace-event
// JSON that chrome://tracing and Perfetto load (one lane per processing
// element plus message-processor and ring lanes), and Timeline collects a
// cycle-sampled time series of machine-wide gauges (utilization, live
// contexts, ready-queue depth, operand-queue span, cache hit rate). Multi
// fans hooks out to several recorders at once.
//
// Recorders are driven by a single simulation's event loop and are not safe
// for concurrent use; give each concurrent simulation its own recorder.
package trace

// EndReason says why a context stopped occupying its processing element.
type EndReason uint8

const (
	// EndBlockedSend: the context issued a send and awaits the rendezvous.
	EndBlockedSend EndReason = iota
	// EndBlockedRecv: the context issued a recv and awaits a sender.
	EndBlockedRecv
	// EndBlockedWait: the context sleeps until simulated time advances.
	EndBlockedWait
	// EndExited: the context terminated.
	EndExited
)

func (r EndReason) String() string {
	switch r {
	case EndBlockedSend:
		return "blocked-send"
	case EndBlockedRecv:
		return "blocked-recv"
	case EndBlockedWait:
		return "blocked-wait"
	case EndExited:
		return "exited"
	default:
		return "unknown"
	}
}

// ChanOp discriminates message-processor operations.
type ChanOp uint8

const (
	ChanSend ChanOp = iota
	ChanRecv
)

func (o ChanOp) String() string {
	if o == ChanSend {
		return "send"
	}
	return "recv"
}

// MachineSample is a machine-wide snapshot taken at a sampling boundary.
// Counter fields are cumulative since the start of the run; consumers that
// want per-bucket rates difference successive samples. Gauge fields
// (LiveContexts, ReadyContexts, RunningPEs) are instantaneous.
type MachineSample struct {
	NumPEs         int
	LiveContexts   int
	ReadyContexts  int
	RunningPEs     int
	BusyCycles     int64
	Instructions   int64
	QueueSum       int64
	CacheHits      int64
	CacheMisses    int64
	RingMessages   int64
	RingWaitCycles int64
}

// Recorder receives the simulator's instrumentation events. All timestamps
// are simulated cycles. Hooks are called in event-loop order, which is
// deterministic but not globally time-sorted: a BeginRun scheduled in the
// future may precede hooks carrying earlier timestamps.
type Recorder interface {
	// SampleEvery reports the sampling period in cycles; zero disables
	// Sample callbacks.
	SampleEvery() int64

	// BeginRun: a processing element starts executing a context at `at`,
	// after paying switchCycles of dispatch cost; resumed reports that the
	// context's window registers were still loaded (no roll-out).
	BeginRun(pe, ctx int, at, switchCycles int64, resumed bool)

	// EndRun: the processing element stops executing the context at `at`.
	EndRun(pe, ctx int, at int64, reason EndReason)

	// Instr: an instruction retired on a processing element. Issued only
	// when a recorder is installed; op is the static mnemonic. stall is the
	// portion of cycles spent servicing operand-queue window misses (the
	// presence-bit stall of §5.2) — attribution consumers split it from the
	// instruction's execute cost.
	Instr(pe, ctx, graph, pc int, op string, at int64, cycles, stall int)

	// ContextCreated: the kernel allocated a context (fork or program
	// start) and placed it on a processing element.
	ContextCreated(ctx, parent, pe int, at int64)

	// ContextReady: a context joined its processing element's ready queue,
	// which now holds depth entries.
	ContextReady(ctx, pe, depth int, at int64)

	// ContextExited: the kernel released a terminated context.
	ContextExited(ctx, pe int, at int64)

	// MsgOp: the message processor on pe served a channel operation from
	// start to end; hit reports channel-cache residence and completed a
	// finished rendezvous. On a completed rendezvous sendCtx and recvCtx
	// identify the paired contexts (the happens-before edge critical-path
	// analysis threads through); both are -1 while a party is still parked.
	MsgOp(pe int, ch int32, op ChanOp, start, end int64, hit, completed bool, sendCtx, recvCtx int)

	// RingTransfer: a message crossed the interconnect, issued at start and
	// delivered at end, of which wait cycles were spent queued behind other
	// traffic.
	RingTransfer(from, to int, start, end, wait int64)

	// Sample delivers the machine-wide snapshot at a sampling boundary.
	Sample(at int64, s MachineSample)
}

// NopRecorder implements every Recorder hook as a no-op; embed it to build
// recorders that care about a subset of the events.
type NopRecorder struct{}

func (NopRecorder) SampleEvery() int64                                              { return 0 }
func (NopRecorder) BeginRun(_, _ int, _, _ int64, _ bool)                           {}
func (NopRecorder) EndRun(_, _ int, _ int64, _ EndReason)                           {}
func (NopRecorder) Instr(_, _, _, _ int, _ string, _ int64, _, _ int)               {}
func (NopRecorder) ContextCreated(_, _, _ int, _ int64)                             {}
func (NopRecorder) ContextReady(_, _, _ int, _ int64)                               {}
func (NopRecorder) ContextExited(_, _ int, _ int64)                                 {}
func (NopRecorder) MsgOp(_ int, _ int32, _ ChanOp, _, _ int64, _, _ bool, _, _ int) {}
func (NopRecorder) RingTransfer(_, _ int, _, _, _ int64)                            {}
func (NopRecorder) Sample(_ int64, _ MachineSample)                                 {}

var _ Recorder = NopRecorder{}

// Multi combines recorders: every hook fans out to each in order. Nil
// entries are dropped; zero live recorders yield nil (so callers can pass
// the result straight to SetRecorder), and a single live recorder is
// returned unwrapped.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multi(live)
	}
}

type multi []Recorder

// SampleEvery of a fan-out is the smallest positive period of its members:
// recorders sampling more coarsely simply observe extra boundaries.
func (m multi) SampleEvery() int64 {
	var every int64
	for _, r := range m {
		if e := r.SampleEvery(); e > 0 && (every == 0 || e < every) {
			every = e
		}
	}
	return every
}

func (m multi) BeginRun(pe, ctx int, at, switchCycles int64, resumed bool) {
	for _, r := range m {
		r.BeginRun(pe, ctx, at, switchCycles, resumed)
	}
}

func (m multi) EndRun(pe, ctx int, at int64, reason EndReason) {
	for _, r := range m {
		r.EndRun(pe, ctx, at, reason)
	}
}

func (m multi) Instr(pe, ctx, graph, pc int, op string, at int64, cycles, stall int) {
	for _, r := range m {
		r.Instr(pe, ctx, graph, pc, op, at, cycles, stall)
	}
}

func (m multi) ContextCreated(ctx, parent, pe int, at int64) {
	for _, r := range m {
		r.ContextCreated(ctx, parent, pe, at)
	}
}

func (m multi) ContextReady(ctx, pe, depth int, at int64) {
	for _, r := range m {
		r.ContextReady(ctx, pe, depth, at)
	}
}

func (m multi) ContextExited(ctx, pe int, at int64) {
	for _, r := range m {
		r.ContextExited(ctx, pe, at)
	}
}

func (m multi) MsgOp(pe int, ch int32, op ChanOp, start, end int64, hit, completed bool, sendCtx, recvCtx int) {
	for _, r := range m {
		r.MsgOp(pe, ch, op, start, end, hit, completed, sendCtx, recvCtx)
	}
}

func (m multi) RingTransfer(from, to int, start, end, wait int64) {
	for _, r := range m {
		r.RingTransfer(from, to, start, end, wait)
	}
}

func (m multi) Sample(at int64, s MachineSample) {
	for _, r := range m {
		r.Sample(at, s)
	}
}
