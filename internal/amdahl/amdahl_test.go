package amdahl

import (
	"math"
	"testing"
)

func TestAmdahlLaw(t *testing.T) {
	// S(1) = 1 always; S(n) -> 1/(1-f) as n grows.
	for _, f := range []float64{0, 0.5, 0.93} {
		if got := Speedup(f, 1); math.Abs(got-1) > 1e-12 {
			t.Errorf("S(1) with f=%.2f = %f", f, got)
		}
	}
	// The Figure 6.6 curve: f = 0.93.
	if got := Speedup(0.93, 8); math.Abs(got-1/(0.07+0.93/8)) > 1e-12 {
		t.Errorf("S(8) = %f", got)
	}
	// Sublinear always.
	for n := 1; n <= 16; n++ {
		if Speedup(0.93, n) > float64(n)+1e-12 {
			t.Errorf("Amdahl superlinear at n=%d", n)
		}
	}
	if Speedup(0.5, 0) != 0 {
		t.Error("n=0 should give 0")
	}
}

// TestModifiedLawSuperlinear verifies the Figure 6.7 reconstruction: with
// f = 0.63, g = 0.3 the modified law exceeds linear speed-up over the
// simulated machine sizes (2..4 processors).
func TestModifiedLawSuperlinear(t *testing.T) {
	if got := ModifiedSpeedup(0.63, 0.3, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("S(1) = %f", got)
	}
	for _, n := range []int{2, 3, 4} {
		s := ModifiedSpeedup(0.63, 0.3, n)
		if s <= float64(n) {
			t.Errorf("modified law not superlinear at n=%d: %f", n, s)
		}
	}
	// The overhead term vanishes: the law approaches Amdahl with serial
	// fraction 1-f-g from above.
	limit := 1 / (1 - 0.63 - 0.3)
	if s := ModifiedSpeedup(0.63, 0.3, 1000); s > limit {
		t.Errorf("S(inf) = %f exceeds %f", s, limit)
	}
	if ModifiedSpeedup(0.5, 0.2, 0) != 0 {
		t.Error("n=0 should give 0")
	}
}

func TestCurve(t *testing.T) {
	ns := []int{1, 2, 4, 8}
	c := Curve(func(n int) float64 { return Speedup(0.93, n) }, ns)
	if len(c) != 4 || c[0] != 1 {
		t.Errorf("curve = %v", c)
	}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Error("curve not increasing")
		}
	}
}

func TestFitRecoversParameters(t *testing.T) {
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8}
	// Generate measurements from known parameters and recover them.
	meas := Curve(func(n int) float64 { return Speedup(0.93, n) }, ns)
	if f := FitAmdahl(ns, meas); math.Abs(f-0.93) > 0.002 {
		t.Errorf("FitAmdahl = %f, want 0.93", f)
	}
	meas = Curve(func(n int) float64 { return ModifiedSpeedup(0.63, 0.30, n) }, ns)
	f, g := FitModified(ns, meas)
	if math.Abs(f-0.63) > 0.02 || math.Abs(g-0.30) > 0.02 {
		t.Errorf("FitModified = %f, %f; want 0.63, 0.30", f, g)
	}
}

func TestFitNoisy(t *testing.T) {
	ns := []int{1, 2, 4, 8}
	meas := []float64{1.0, 2.1, 4.3, 6.9}
	f, g := FitModified(ns, meas)
	if f < 0 || g < 0 || f+g > 1.0+1e-9 {
		t.Errorf("fit out of domain: %f, %f", f, g)
	}
}
