// Package amdahl implements the analytic speed-up models of Chapter 6:
// Amdahl's law (Figure 6.6, plotted there with f = 0.93) and the thesis's
// modified Amdahl's law (Figure 6.7, f = 0.63 and g = 0.3).
//
// The modified law is reconstructed from the figure caption and the
// mechanism the thesis identifies for super-linear speed-up: single-
// processor execution time divides into a serial part (1−f−g), a linearly
// parallelizable part f, and a context-management overhead part g —
// register-window roll-outs on context switches and message-cache
// contention — that shrinks quadratically with the processor count, because
// both the number of contexts resident per processor and the frequency of
// switches fall together:
//
//	T(n)/T(1) = (1 − f − g) + f/n + g/n²
//	S(n)      = 1 / ((1 − f − g) + f/n + g/n²)
//
// With f = 0.63, g = 0.3 this gives S(2) ≈ 2.2 and S(4) ≈ 4.1 — better than
// linear over the machine sizes the thesis simulates.
package amdahl

// Speedup is Amdahl's law: S(n) = 1 / ((1−f) + f/n) for a parallelizable
// fraction f.
func Speedup(f float64, n int) float64 {
	if n < 1 {
		return 0
	}
	return 1 / ((1 - f) + f/float64(n))
}

// ModifiedSpeedup is the thesis's modified law with the quadratically
// vanishing overhead fraction g.
func ModifiedSpeedup(f, g float64, n int) float64 {
	if n < 1 {
		return 0
	}
	fn := float64(n)
	return 1 / ((1 - f - g) + f/fn + g/(fn*fn))
}

// Curve tabulates a model over processor counts.
func Curve(model func(n int) float64, ns []int) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		out[i] = model(n)
	}
	return out
}

// FitAmdahl finds the parallel fraction f in [0,1] minimizing the summed
// squared error against measured speed-ups, by deterministic grid search
// with refinement.
func FitAmdahl(ns []int, measured []float64) (f float64) {
	return fit1(func(f float64, n int) float64 { return Speedup(f, n) }, ns, measured)
}

// FitModified finds (f, g) with f,g ≥ 0 and f+g ≤ 1 minimizing the summed
// squared error of the modified law against measured speed-ups.
func FitModified(ns []int, measured []float64) (f, g float64) {
	bestErr := -1.0
	step := 0.01
	for ff := 0.0; ff <= 1.0+1e-9; ff += step {
		for gg := 0.0; ff+gg <= 1.0+1e-9; gg += step {
			e := sqErr(func(n int) float64 { return ModifiedSpeedup(ff, gg, n) }, ns, measured)
			if bestErr < 0 || e < bestErr {
				bestErr, f, g = e, ff, gg
			}
		}
	}
	return f, g
}

func fit1(model func(f float64, n int) float64, ns []int, measured []float64) float64 {
	best, bestErr := 0.0, -1.0
	for ff := 0.0; ff <= 1.0+1e-9; ff += 0.001 {
		e := sqErr(func(n int) float64 { return model(ff, n) }, ns, measured)
		if bestErr < 0 || e < bestErr {
			best, bestErr = ff, e
		}
	}
	return best
}

func sqErr(model func(n int) float64, ns []int, measured []float64) float64 {
	var e float64
	for i, n := range ns {
		d := model(n) - measured[i]
		e += d * d
	}
	return e
}
