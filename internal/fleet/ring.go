// Package fleet holds the shared machinery of the distributed serving
// tier: a consistent-hash ring that assigns compiled-artifact ownership
// to qmd replicas by fingerprint, a peer client through which a replica
// that misses its caches asks the owning peer before compiling itself
// (groupcache-style), and an HDR-style latency histogram shared by the
// qgate front proxy and the qload load generator.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVirtualNodes is the per-replica virtual-node count when a Ring
// is built with vnodes <= 0. 64 points per node keeps the load spread
// within a few percent of uniform for small fleets while the ring stays
// cheap to rebuild on a health transition.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over a fixed replica set. Ownership of a
// key is the first live virtual node clockwise from the key's hash, so
// membership is stable: marking one replica dead only reassigns the keys
// it owned, which is what keeps per-replica artifact caches hot across
// unrelated failures.
//
// The member set is fixed at construction; only liveness changes at run
// time (SetAlive). All methods are safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	nodes  []string // all members, as given (deduplicated)
	alive  map[string]bool
	points []ringPoint // virtual nodes of live members, sorted by hash
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with the given virtual-node count per
// member (<= 0 selects DefaultVirtualNodes). Every member starts alive.
// Duplicate node names collapse to one member.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{alive: make(map[string]bool), vnodes: vnodes}
	for _, n := range nodes {
		if _, ok := r.alive[n]; ok {
			continue
		}
		r.alive[n] = true
		r.nodes = append(r.nodes, n)
	}
	r.rebuild()
	return r
}

// rebuild recomputes the sorted point list from the live member set.
// Callers hold mu.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for _, n := range r.nodes {
		if !r.alive[n] {
			continue
		}
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hashKey(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// hashKey maps a string onto the ring. SHA-256 rather than a fast
// non-cryptographic hash: keys are artifact fingerprints chosen by
// clients, and a keyed collision must not let one program shadow
// another's placement.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the live member owning key, or "" when every member is
// marked dead.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct live members in ownership order: the
// owner first, then the failover successors clockwise. The slice is the
// retry order a router should use when the owner is unreachable.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// SetAlive marks a member's liveness, rebuilding the point list when the
// state changes. Unknown members are ignored (the member set is fixed).
// It reports whether the liveness state changed.
func (r *Ring) SetAlive(node string, alive bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, ok := r.alive[node]
	if !ok || cur == alive {
		return false
	}
	r.alive[node] = alive
	r.rebuild()
	return true
}

// Nodes returns all members in construction order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Alive reports whether node is currently marked live.
func (r *Ring) Alive(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[node]
}

// LiveCount returns the number of live members.
func (r *Ring) LiveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, ok := range r.alive {
		if ok {
			n++
		}
	}
	return n
}

// Contains reports whether node is a member of the ring.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.alive[node]
	return ok
}
