package fleet

import (
	"fmt"
	"testing"
	"time"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://replica-%d:8344", i)
	}
	return out
}

func TestRingOwnerIsStable(t *testing.T) {
	r := NewRing(testNodes(3), 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		owner := r.Owner(key)
		for j := 0; j < 5; j++ {
			if got := r.Owner(key); got != owner {
				t.Fatalf("key %q: owner changed %q -> %q", key, owner, got)
			}
		}
		if owner == "" {
			t.Fatalf("key %q: no owner on a fully live ring", key)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	nodes := testNodes(3)
	r := NewRing(nodes, 0)
	byNode := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		byNode[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := float64(byNode[n]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys; want a rough third (%v)", n, 100*share, byNode)
		}
	}
}

// TestRingMinimalReassignment is the consistent-hashing property: killing
// one node must reassign only that node's keys.
func TestRingMinimalReassignment(t *testing.T) {
	nodes := testNodes(4)
	r := NewRing(nodes, 0)
	const keys = 2000
	before := make([]string, keys)
	for i := range before {
		before[i] = r.Owner(fmt.Sprintf("key-%d", i))
	}
	dead := nodes[1]
	if !r.SetAlive(dead, false) {
		t.Fatal("SetAlive(false) reported no change")
	}
	moved := 0
	for i := range before {
		after := r.Owner(fmt.Sprintf("key-%d", i))
		if after == dead {
			t.Fatalf("key-%d still owned by dead node", i)
		}
		if after != before[i] {
			if before[i] != dead {
				t.Errorf("key-%d moved %q -> %q though its owner stayed alive", i, before[i], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("no keys moved after killing a node")
	}
	// Revival restores the exact original assignment.
	r.SetAlive(dead, true)
	for i := range before {
		if got := r.Owner(fmt.Sprintf("key-%d", i)); got != before[i] {
			t.Fatalf("key-%d: owner %q after revival, want %q", i, got, before[i])
		}
	}
}

func TestRingOwnersFailoverOrder(t *testing.T) {
	nodes := testNodes(3)
	r := NewRing(nodes, 0)
	owners := r.Owners("some-fingerprint", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %v, want all 3 distinct nodes", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners returned duplicate %q: %v", o, owners)
		}
		seen[o] = true
	}
	// The failover successor becomes the owner when the owner dies.
	r.SetAlive(owners[0], false)
	if got := r.Owner("some-fingerprint"); got != owners[1] {
		t.Errorf("after owner death, owner = %q, want successor %q", got, owners[1])
	}
}

func TestRingAllDead(t *testing.T) {
	nodes := testNodes(2)
	r := NewRing(nodes, 0)
	r.SetAlive(nodes[0], false)
	r.SetAlive(nodes[1], false)
	if got := r.Owner("k"); got != "" {
		t.Errorf("owner on dead ring = %q, want empty", got)
	}
	if r.LiveCount() != 0 {
		t.Errorf("LiveCount = %d, want 0", r.LiveCount())
	}
	if r.SetAlive("http://not-a-member", true) {
		t.Error("SetAlive accepted a non-member")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	// 1000 samples at 1ms, 10 at 100ms: p50 near 1ms, p999 near 100ms.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if n := h.Count(); n != 1010 {
		t.Fatalf("Count = %d", n)
	}
	p50 := h.Quantile(0.5)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 50*time.Millisecond || p999 > 200*time.Millisecond {
		t.Errorf("p999 = %v, want ~100ms", p999)
	}
	if max := h.Max(); max < 100*time.Millisecond || max > 101*time.Millisecond {
		t.Errorf("max = %v", max)
	}
	s := h.Snapshot()
	if s.Count != 1010 || s.P50Seconds <= 0 || s.P999Seconds < s.P50Seconds {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Buckets) == 0 || s.Buckets[len(s.Buckets)-1].Cumulative < 1000 {
		t.Errorf("snapshot buckets truncated wrongly: %d buckets", len(s.Buckets))
	}
	// Cumulative curve is monotone.
	var prev int64
	for _, b := range s.Buckets {
		if b.Cumulative < prev {
			t.Fatalf("bucket curve not monotone at le=%g", b.UpperSeconds)
		}
		prev = b.Cumulative
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram reports non-zero statistics")
	}
	if s := h.Snapshot(); s.Count != 0 || s.Buckets != nil {
		t.Errorf("empty snapshot = %+v", s)
	}
}
