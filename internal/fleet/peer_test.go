package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"queuemachine/internal/compile"
)

const peerTestSource = "var v[1]:\nseq\n  v[0] := 7\n"

// fakePeer implements just enough of the qmd wire protocol for the
// client: /compile compiles for real, /healthz toggles.
func fakePeer(t *testing.T, healthy *atomic.Bool, sawPeerHeader *atomic.Bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(PeerHeader) != "" {
			sawPeerHeader.Store(true)
		}
		var req peerCompileRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		art, err := compile.Compile(req.Source, req.Options.ToCompile())
		if err != nil {
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(peerCompileResponse{
			Fingerprint: compile.Fingerprint(req.Source, req.Options.ToCompile()),
			Object:      art.Object,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestClientFetchCompile(t *testing.T) {
	var healthy, sawHeader atomic.Bool
	healthy.Store(true)
	ts := fakePeer(t, &healthy, &sawHeader)
	c := NewClient(0)
	obj, err := c.FetchCompile(context.Background(), ts.URL, peerTestSource, compile.Options{})
	if err != nil {
		t.Fatalf("FetchCompile: %v", err)
	}
	if len(obj.Graphs) == 0 {
		t.Error("fetched object has no graphs")
	}
	if !sawHeader.Load() {
		t.Error("peer request did not carry the peer header")
	}
	// A compile failure surfaces as an error, not a nil object.
	if _, err := c.FetchCompile(context.Background(), ts.URL, "seq\n  nope := 1\n", compile.Options{}); err == nil {
		t.Error("FetchCompile of invalid source succeeded")
	}
}

func TestClientCheckHealth(t *testing.T) {
	var healthy, sawHeader atomic.Bool
	healthy.Store(true)
	ts := fakePeer(t, &healthy, &sawHeader)
	c := NewClient(0)
	if err := c.CheckHealth(context.Background(), ts.URL); err != nil {
		t.Fatalf("CheckHealth on healthy peer: %v", err)
	}
	healthy.Store(false)
	if err := c.CheckHealth(context.Background(), ts.URL); err == nil {
		t.Error("CheckHealth on draining peer succeeded")
	}
	ts.Close()
	if err := c.CheckHealth(context.Background(), ts.URL); err == nil {
		t.Error("CheckHealth on dead peer succeeded")
	}
}

func TestCompileOptionsRoundTrip(t *testing.T) {
	all := compile.Options{NoInputOrder: true, NoLiveFilter: true, NoPriority: true, NoConstFold: true}
	if got := OptionsFromCompile(all).ToCompile(); got != all {
		t.Errorf("round trip = %+v, want %+v", got, all)
	}
	var none compile.Options
	if got := OptionsFromCompile(none).ToCompile(); got != none {
		t.Errorf("zero round trip = %+v", got)
	}
}
