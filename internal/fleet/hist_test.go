package fleet

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramMergePropertyAgainstOracle checks, over many random
// sample sets, that (a) merging shard histograms is count-for-count
// identical to observing every sample on one histogram, and (b) the
// merged quantiles stay within the bucket layout's relative-error bound
// of a sorted-slice oracle.
func TestHistogramMergePropertyAgainstOracle(t *testing.T) {
	// One bucket spans a 2^(1/4) ratio and Quantile interpolates inside
	// it, so any estimate is within one bucket ratio of the true value;
	// allow two ratios for rank-boundary effects in the oracle.
	maxRatio := math.Pow(2, 2.0/4)
	for seed := uint64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed))
		nShards := 2 + int(rng.Uint64()%3)
		shards := make([]*Histogram, nShards)
		direct := NewLatencyHistogram()
		var all []float64
		for i := range shards {
			shards[i] = NewLatencyHistogram()
			n := 50 + int(rng.Uint64()%500)
			for j := 0; j < n; j++ {
				// Log-uniform over 60µs..60s: exercises most buckets.
				secs := math.Exp(math.Log(60e-6) + rng.Float64()*math.Log(1e6))
				d := time.Duration(secs * float64(time.Second))
				shards[i].Observe(d)
				direct.Observe(d)
				all = append(all, d.Seconds())
			}
		}
		merged := NewLatencyHistogram()
		for _, s := range shards {
			if err := merged.Merge(s); err != nil {
				t.Fatalf("seed %d: Merge: %v", seed, err)
			}
		}
		// (a) Bitwise agreement with direct observation.
		if merged.Count() != direct.Count() || merged.Max() != direct.Max() {
			t.Fatalf("seed %d: merged count/max %d/%v, direct %d/%v",
				seed, merged.Count(), merged.Max(), direct.Count(), direct.Max())
		}
		for i := range merged.counts {
			if m, d := merged.counts[i].Load(), direct.counts[i].Load(); m != d {
				t.Fatalf("seed %d: bucket %d merged %d direct %d", seed, i, m, d)
			}
		}
		if merged.sumNs.Load() != direct.sumNs.Load() {
			t.Fatalf("seed %d: sums differ", seed)
		}
		// (b) Quantiles against the sorted-slice oracle.
		sort.Float64s(all)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			idx := int(math.Ceil(q*float64(len(all)))) - 1
			oracle := all[idx]
			got := merged.Quantile(q).Seconds()
			if got/oracle > maxRatio || oracle/got > maxRatio {
				t.Errorf("seed %d: q%.2f = %.6fs, oracle %.6fs (ratio %.3f > %.3f)",
					seed, q, got, oracle, math.Max(got/oracle, oracle/got), maxRatio)
			}
		}
	}
}

func TestHistogramSubInvertsMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	base := NewLatencyHistogram()
	for i := 0; i < 200; i++ {
		base.Observe(time.Duration(rng.Uint64()%uint64(2*time.Second)) + time.Microsecond)
	}
	snapshot := base.Clone()
	extra := NewLatencyHistogram()
	for i := 0; i < 300; i++ {
		d := time.Duration(rng.Uint64()%uint64(10*time.Second)) + time.Microsecond
		extra.Observe(d)
		base.Observe(d)
	}
	// base = snapshot ⊎ extra; subtracting the snapshot leaves the window.
	window := base.Clone()
	if err := window.Sub(snapshot); err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if window.Count() != extra.Count() {
		t.Fatalf("window count %d, want %d", window.Count(), extra.Count())
	}
	for i := range window.counts {
		if w, e := window.counts[i].Load(), extra.counts[i].Load(); w != e {
			t.Fatalf("bucket %d: window %d extra %d", i, w, e)
		}
	}
	if window.sumNs.Load() != extra.sumNs.Load() {
		t.Fatal("window sum mismatch")
	}
	// The same quantiles come out as from the extra-only histogram.
	for _, q := range []float64{0.5, 0.99} {
		if window.Quantile(q) != extra.Quantile(q) {
			t.Errorf("q%.2f: window %v extra %v", q, window.Quantile(q), extra.Quantile(q))
		}
	}
}

func TestHistogramSubRejectsNonPrefix(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	a.Observe(time.Millisecond)
	b.Observe(time.Minute) // different bucket: not a prefix of a
	if err := a.Sub(b); err == nil {
		t.Fatal("Sub accepted an underflowing baseline")
	}
	if a.Count() != 1 {
		t.Fatal("rejected Sub mutated the histogram")
	}
}

func TestHistogramMergeRejectsLayoutMismatch(t *testing.T) {
	a := NewLatencyHistogram()
	b := &Histogram{bounds: []float64{1}, counts: make([]atomic.Int64, 2)}
	if err := a.Merge(b); err == nil {
		t.Fatal("Merge accepted a mismatched layout")
	}
}
