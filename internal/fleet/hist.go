package fleet

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style latency histogram: geometric buckets at four
// per octave from 50µs to beyond two minutes, so relative error on any
// reported quantile is bounded by the bucket ratio (~19%) independent of
// where the latency mass lands. Observation is lock-free; it is shared
// by the qgate per-replica latency tracking and the qload report.
type Histogram struct {
	bounds []float64      // bucket upper bounds in seconds, ascending
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// latencyBounds builds the shared bucket layout: 50µs × 2^(i/4).
func latencyBounds() []float64 {
	const (
		lo    = 50e-6
		hi    = 130.0                 // past any deadline the service accepts
		ratio = 1.1892071150027210667 // 2^(1/4)
	)
	var b []float64
	for v := lo; v < hi; v *= ratio {
		b = append(b, v)
	}
	return b
}

// NewLatencyHistogram builds a histogram with the shared bucket layout.
func NewLatencyHistogram() *Histogram {
	bounds := latencyBounds()
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[sort.SearchFloat64s(h.bounds, d.Seconds())].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed latency (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by geometric
// interpolation within the containing bucket, which is the natural
// interpolant for log-spaced bounds. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 25e-6 // half the first bound: a floor for the open bucket
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[len(h.bounds)-1] * 2
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			// Fraction of this bucket's mass below the target rank.
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return time.Duration(lo * math.Pow(hi/lo, frac) * float64(time.Second))
		}
		cum += c
	}
	return h.Max()
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperSeconds float64 `json:"le"`
	Cumulative   int64   `json:"count"`
}

// Snapshot is the serializable view of a Histogram: headline quantiles
// plus the non-empty prefix of the cumulative bucket curve (so JSON
// reports stay compact while remaining re-aggregatable).
type Snapshot struct {
	Count       int64    `json:"count"`
	SumSeconds  float64  `json:"sum_seconds"`
	MeanSeconds float64  `json:"mean_seconds"`
	MaxSeconds  float64  `json:"max_seconds"`
	P50Seconds  float64  `json:"p50_seconds"`
	P90Seconds  float64  `json:"p90_seconds"`
	P99Seconds  float64  `json:"p99_seconds"`
	P999Seconds float64  `json:"p999_seconds"`
	Buckets     []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count:       h.count.Load(),
		SumSeconds:  time.Duration(h.sumNs.Load()).Seconds(),
		MeanSeconds: h.Mean().Seconds(),
		MaxSeconds:  h.Max().Seconds(),
		P50Seconds:  h.Quantile(0.50).Seconds(),
		P90Seconds:  h.Quantile(0.90).Seconds(),
		P99Seconds:  h.Quantile(0.99).Seconds(),
		P999Seconds: h.Quantile(0.999).Seconds(),
	}
	var cum int64
	last := -1
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		cum += c
		if c != 0 {
			last = i
		}
		s.Buckets = append(s.Buckets, Bucket{UpperSeconds: b, Cumulative: cum})
	}
	// Trim trailing empty buckets; keep one past the last occupied bound
	// so the curve visibly flattens.
	if last+2 < len(s.Buckets) {
		s.Buckets = s.Buckets[:last+2]
	}
	if s.Count == 0 {
		s.Buckets = nil
	}
	return s
}

// Merge folds o's observations into h, bucket by bucket, so per-shard
// histograms aggregate into a fleet-wide one without re-observing: the
// merged histogram is count-for-count identical to one that observed
// every underlying sample directly. Both histograms must share the
// bucket layout (every Histogram built by NewLatencyHistogram does).
// Merging a histogram that is concurrently observing is safe and yields
// some consistent interleaving.
func (h *Histogram) Merge(o *Histogram) error {
	if err := h.compatible(o); err != nil {
		return err
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNs.Add(o.sumNs.Load())
	for {
		om, cur := o.maxNs.Load(), h.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
	return nil
}

// Sub removes a previously captured baseline from h, bucket by bucket:
// the windowed complement of Merge, for burn-rate style deltas
// ("observations since the last scrape" = now.Sub(before)). The baseline
// must be a snapshot of h's own past — subtracting unrelated histograms
// underflows and is rejected. Max is not recoverable from a subtraction
// and is conservatively retained.
func (h *Histogram) Sub(o *Histogram) error {
	if err := h.compatible(o); err != nil {
		return err
	}
	for i := range o.counts {
		if h.counts[i].Load() < o.counts[i].Load() {
			return fmt.Errorf("fleet: Sub underflows bucket %d (%d < %d): baseline is not a prefix of this histogram",
				i, h.counts[i].Load(), o.counts[i].Load())
		}
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(-c)
		}
	}
	h.count.Add(-o.count.Load())
	h.sumNs.Add(-o.sumNs.Load())
	return nil
}

// Clone returns an independent copy of h's current state, the natural
// baseline operand for a later Sub.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{bounds: h.bounds, counts: make([]atomic.Int64, len(h.counts))}
	for i := range h.counts {
		c.counts[i].Store(h.counts[i].Load())
	}
	c.count.Store(h.count.Load())
	c.sumNs.Store(h.sumNs.Load())
	c.maxNs.Store(h.maxNs.Load())
	return c
}

func (h *Histogram) compatible(o *Histogram) error {
	if len(h.bounds) != len(o.bounds) || len(h.counts) != len(o.counts) {
		return fmt.Errorf("fleet: histogram layouts differ (%d vs %d buckets)",
			len(h.counts), len(o.counts))
	}
	return nil
}

// Bounds exposes the bucket upper bounds (seconds) for exposition
// formats that need the raw layout, like Prometheus histograms.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCount returns the non-cumulative count of bucket i, where
// i == len(Bounds()) addresses the overflow bucket.
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }
