package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"queuemachine/internal/compile"
	"queuemachine/internal/isa"
	"queuemachine/internal/xtrace"
)

// PeerHeader marks a request as originating from another replica rather
// than a client. A replica never forwards a peer-marked request onward,
// which bounds every request to at most one peer hop even when replicas
// disagree about ring ownership during a health transition.
const PeerHeader = "X-Qmd-Peer"

// CompileOptions mirrors compile.Options with the service's stable wire
// names; it is the JSON shape of the "options" field on /compile and
// /run requests, shared by the service handlers, the peer client, and
// the qgate request parser so the three can never drift apart.
type CompileOptions struct {
	NoInputOrder bool `json:"no_input_order,omitempty"`
	NoLiveFilter bool `json:"no_live_filter,omitempty"`
	NoPriority   bool `json:"no_priority,omitempty"`
	NoConstFold  bool `json:"no_const_fold,omitempty"`
}

// ToCompile converts the wire form into the compiler's option set.
func (o CompileOptions) ToCompile() compile.Options {
	return compile.Options{
		NoInputOrder: o.NoInputOrder,
		NoLiveFilter: o.NoLiveFilter,
		NoPriority:   o.NoPriority,
		NoConstFold:  o.NoConstFold,
	}
}

// OptionsFromCompile is the inverse of ToCompile.
func OptionsFromCompile(o compile.Options) CompileOptions {
	return CompileOptions{
		NoInputOrder: o.NoInputOrder,
		NoLiveFilter: o.NoLiveFilter,
		NoPriority:   o.NoPriority,
		NoConstFold:  o.NoConstFold,
	}
}

// Client fetches compiled artifacts from peer replicas and probes their
// health. The zero value is not usable; build one with NewClient.
type Client struct {
	http *http.Client
}

// NewClient builds a peer client whose requests are bounded by timeout
// (<= 0 selects 10s, generous for a compile of any accepted program).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	return &Client{http: &http.Client{Timeout: timeout}}
}

// peerCompileRequest and peerCompileResponse are the slices of the
// /compile wire protocol the peer exchange uses.
type peerCompileRequest struct {
	Source  string         `json:"source"`
	Options CompileOptions `json:"options"`
}

type peerCompileResponse struct {
	Fingerprint string      `json:"fingerprint"`
	Object      *isa.Object `json:"object"`
}

// FetchCompile asks the peer at base to compile source (serving from its
// own caches when it can) and returns the object program. The request
// carries PeerHeader so the peer answers locally instead of forwarding
// again.
func (c *Client) FetchCompile(ctx context.Context, base, source string, opts compile.Options) (*isa.Object, error) {
	body, err := json.Marshal(peerCompileRequest{Source: source, Options: OptionsFromCompile(opts)})
	if err != nil {
		return nil, fmt.Errorf("fleet: encode peer compile: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/compile", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fleet: peer request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(PeerHeader, "1")
	// A traced artifact miss stays traced across the hop: the owning
	// peer's compile spans join the same trace, parented to the span
	// active on ctx, so the stitched view shows the remote compile
	// inside the requesting replica's peer.fetch span.
	xtrace.Inject(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: peer %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fleet: peer %s answered %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var pr peerCompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("fleet: decode peer response: %w", err)
	}
	if pr.Object == nil {
		return nil, fmt.Errorf("fleet: peer %s returned no object", base)
	}
	if err := pr.Object.Validate(); err != nil {
		return nil, fmt.Errorf("fleet: peer %s returned invalid object: %w", base, err)
	}
	return pr.Object, nil
}

// CheckHealth probes base's /healthz and returns nil when the replica
// answers 200 within ctx's deadline.
func (c *Client) CheckHealth(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("fleet: health request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("fleet: health %s: %w", base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: health %s: status %d", base, resp.StatusCode)
	}
	return nil
}
