package interp

import (
	"fmt"
	"sort"
	"strings"

	"queuemachine/internal/occam"
)

// This file adds channel communication to the reference interpreter. The
// sequential evaluator in interp.go cannot express a rendezvous, so a PAR
// whose branches communicate is executed by a deterministic cooperative
// scheduler instead: every branch becomes a thread (a goroutine that runs
// only while it holds the baton), threads switch only at channel operations,
// and the scheduler matches blocked senders with blocked receivers in FIFO
// order. Exactly one thread runs at any instant, so the shared store needs
// no locking and execution is fully deterministic: the runnable queue is
// served in thread-creation order.
//
// PARs whose branches perform no channel operations keep the plain
// sequential execution of interp.go (OCCAM's disjoint-write rule makes the
// two equivalent), so programs without channels behave exactly as before.
//
// Channel operations inside procedure bodies are refused: the interpreter
// binds parameters by shadowing a shared store, which is only sound while
// calls cannot interleave, and threads switch only at channel operations.
// Keeping channels out of procedures preserves that invariant. The random
// program generator honors the same restriction.

// DeadlockError reports a rendezvous deadlock: live threads remain but none
// is runnable. Blocked lists one human-readable line per stuck thread.
type DeadlockError struct {
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("interp: deadlock: %s", strings.Join(e.Blocked, "; "))
}

// chanKey identifies one rendezvous channel: a scalar channel symbol, or
// one element of a channel vector.
type chanKey struct {
	sym *occam.Symbol
	idx int32
}

func (k chanKey) String() string {
	if k.sym.Kind == occam.SymVecChan {
		return fmt.Sprintf("%s[%d]", k.sym.Name, k.idx)
	}
	return k.sym.Name
}

// commReq is one blocked communication end.
type commReq struct {
	t   *thread
	val int32             // value carried by a blocked send
	dst func(int32) error // assignment performed when a recv matches
}

// chanState holds the FIFO wait queues of one channel.
type chanState struct {
	sendQ []*commReq
	recvQ []*commReq
}

// thread is one cooperative thread of control.
type thread struct {
	id     int
	resume chan bool // buffered(1); true = run, false = abort
	// waiting is the count of unfinished child threads a parWait blocks on.
	waiting int
	parent  *thread
	// blocked describes what the thread is stuck on, for deadlock reports.
	blocked string
}

// threadAbort unwinds a thread goroutine after a global failure.
type threadAbort struct{}

// scheduler serializes threads and matches rendezvous.
type scheduler struct {
	runnable []*thread
	parked   map[*thread]bool
	live     int
	chans    map[chanKey]*chanState
	yield    chan struct{}
	err      error
	nextID   int
	// rootWaiting counts unfinished top-level branches when the scheduler
	// owner is the non-thread root process.
	rootWaiting int
}

func newScheduler() *scheduler {
	return &scheduler{
		parked: map[*thread]bool{},
		chans:  map[chanKey]*chanState{},
		yield:  make(chan struct{}),
	}
}

func (s *scheduler) chanState(k chanKey) *chanState {
	cs, ok := s.chans[k]
	if !ok {
		cs = &chanState{}
		s.chans[k] = cs
	}
	return cs
}

func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// spawn registers a new runnable thread executing body.
func (s *scheduler) spawn(parent *thread, body func(*thread) error) *thread {
	t := &thread{id: s.nextID, resume: make(chan bool, 1), parent: parent}
	s.nextID++
	s.live++
	s.runnable = append(s.runnable, t)
	go func() {
		if !<-t.resume {
			return
		}
		aborted := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(threadAbort); !ok {
						panic(r)
					}
					aborted = true
				}
			}()
			if err := body(t); err != nil {
				s.fail(err)
			}
		}()
		if aborted {
			// The scheduler loop has already returned; do not touch its
			// state or signal the (unread) yield channel.
			return
		}
		s.finish(t)
		s.yield <- struct{}{}
	}()
	return t
}

// finish retires a thread and wakes its parent when it was the last child.
func (s *scheduler) finish(t *thread) {
	s.live--
	if t.parent != nil {
		t.parent.waiting--
		if t.parent.waiting == 0 && s.parked[t.parent] {
			s.wake(t.parent)
		}
	} else {
		s.rootWaiting--
	}
}

// wake moves a parked thread back to the runnable queue.
func (s *scheduler) wake(t *thread) {
	delete(s.parked, t)
	t.blocked = ""
	s.runnable = append(s.runnable, t)
}

// block parks the current thread and hands the baton back to the scheduler
// loop; it returns when the thread is resumed, and unwinds on abort.
func (s *scheduler) block(t *thread, why string) {
	t.blocked = why
	s.parked[t] = true
	s.yield <- struct{}{}
	if !<-t.resume {
		panic(threadAbort{})
	}
}

// loop drains the runnable queue. It returns the first error, a deadlock
// error when live threads remain with nothing runnable, or nil once done
// is satisfied (all threads finished, or the owner's children finished).
func (s *scheduler) loop(done func() bool) error {
	for {
		if s.err != nil {
			s.abort()
			return s.err
		}
		if done() {
			return nil
		}
		if len(s.runnable) == 0 {
			err := s.deadlock()
			s.abort()
			return err
		}
		t := s.runnable[0]
		s.runnable = s.runnable[1:]
		t.resume <- true
		<-s.yield
	}
}

// deadlock builds the structured error describing every stuck thread.
func (s *scheduler) deadlock() error {
	var lines []string
	for t := range s.parked {
		lines = append(lines, fmt.Sprintf("thread %d %s", t.id, t.blocked))
	}
	sort.Strings(lines)
	if len(lines) == 0 {
		lines = []string{"no live threads are blocked (scheduler invariant broken)"}
	}
	return &DeadlockError{Blocked: lines}
}

// abort terminates every parked thread; runnable threads are told to abort
// the moment they would have been resumed.
func (s *scheduler) abort() {
	for t := range s.parked {
		delete(s.parked, t)
		t.resume <- false
	}
	for _, t := range s.runnable {
		t.resume <- false
	}
	s.runnable = nil
}

// ---------------------------------------------------------------------------
// Interpreter integration.

// hasChanOps reports whether the process itself performs channel I/O.
// Calls are not traversed: channel operations inside procedure bodies are
// refused at execution time, so a call can never introduce one.
func hasChanOps(p occam.Process) bool {
	switch n := p.(type) {
	case *occam.Input, *occam.Output:
		return true
	case *occam.Scope:
		return hasChanOps(n.Body)
	case *occam.Seq:
		for _, b := range n.Body {
			if hasChanOps(b) {
				return true
			}
		}
	case *occam.Par:
		for _, b := range n.Body {
			if hasChanOps(b) {
				return true
			}
		}
	case *occam.If:
		for _, g := range n.Branches {
			if hasChanOps(g.Body) {
				return true
			}
		}
	case *occam.While:
		return hasChanOps(n.Body)
	}
	return false
}

// runParThreaded executes a communicating PAR: every branch becomes a
// thread. When the caller is itself a thread (nested PAR), it parks until
// its children finish; when the caller is the root process, it runs the
// scheduler loop until its top-level branches are done.
func (in *interp) runParThreaded(branches []occam.Process) error {
	if len(branches) == 0 {
		return nil
	}
	if in.sch == nil {
		in.sch = newScheduler()
	}
	s := in.sch
	spawnAll := func(parent *thread) {
		for _, b := range branches {
			b := b
			s.spawn(parent, func(t *thread) error {
				child := &interp{state: in.state, sch: s, cur: t, callDepth: in.callDepth}
				return child.process(b)
			})
		}
	}
	if in.cur != nil {
		in.cur.waiting += len(branches)
		spawnAll(in.cur)
		s.block(in.cur, "waiting for parallel branches")
		return nil // errors surface through the scheduler owner
	}
	s.rootWaiting += len(branches)
	spawnAll(nil)
	err := s.loop(func() bool { return s.rootWaiting == 0 })
	in.sch = nil // the PAR is fully drained; a later PAR starts fresh
	return err
}

// runParReplicatedThreaded is the replicated-par counterpart: one thread
// per instance, each with its own replicator binding. The replicator index
// is bound per-instance before each body statement executes; because the
// body may only read the index (the generator and OCCAM's disjointness rule
// forbid writing it), rebinding the shared symbol per resume is safe only
// while instances cannot interleave — so instances that communicate carry
// their own index copy via a per-thread override.
func (in *interp) runParReplicatedThreaded(rep *occam.Replicator, body occam.Process) error {
	from, err := in.expr(rep.From)
	if err != nil {
		return err
	}
	count, err := in.expr(rep.Count)
	if err != nil {
		return err
	}
	if in.sch == nil {
		in.sch = newScheduler()
	}
	s := in.sch
	spawnAll := func(parent *thread) {
		for k := int32(0); k < count; k++ {
			k := k
			s.spawn(parent, func(t *thread) error {
				child := &interp{state: in.state, sch: s, cur: t, callDepth: in.callDepth,
					repOverride: map[*occam.Symbol]int32{rep.Sym: from + k}}
				if in.repOverride != nil {
					for sym, v := range in.repOverride {
						if _, ok := child.repOverride[sym]; !ok {
							child.repOverride[sym] = v
						}
					}
				}
				return child.process(body)
			})
		}
	}
	if in.cur != nil {
		in.cur.waiting += int(count)
		spawnAll(in.cur)
		if count > 0 {
			s.block(in.cur, "waiting for replicated par instances")
		}
		return nil
	}
	s.rootWaiting += int(count)
	spawnAll(nil)
	err = s.loop(func() bool { return s.rootWaiting == 0 })
	in.sch = nil
	return err
}

// chanKeyOf resolves a channel reference to its rendezvous identity.
func (in *interp) chanKeyOf(ref *occam.VarRef) (chanKey, error) {
	switch ref.Sym.Kind {
	case occam.SymChan:
		return chanKey{sym: ref.Sym}, nil
	case occam.SymVecChan:
		idx, err := in.expr(ref.Index)
		if err != nil {
			return chanKey{}, err
		}
		if idx < 0 || int(idx) >= ref.Sym.Size {
			return chanKey{}, fmt.Errorf("interp: %v: channel %s[%d] out of bounds (size %d)",
				ref.P, ref.Name, idx, ref.Sym.Size)
		}
		return chanKey{sym: ref.Sym, idx: idx}, nil
	default:
		return chanKey{}, fmt.Errorf("interp: %v: channel parameters are outside the reference interpreter", ref.P)
	}
}

// output executes `c ! e`.
func (in *interp) output(n *occam.Output) error {
	if in.callDepth > 0 {
		return fmt.Errorf("interp: %v: channel operations inside procedures are outside the reference interpreter", n.P)
	}
	v, err := in.expr(n.Value)
	if err != nil {
		return err
	}
	key, err := in.chanKeyOf(n.Chan)
	if err != nil {
		return err
	}
	if in.cur == nil || in.sch == nil {
		return &DeadlockError{Blocked: []string{
			fmt.Sprintf("root process sends on %s with no parallel partner", key)}}
	}
	cs := in.sch.chanState(key)
	if len(cs.recvQ) > 0 {
		req := cs.recvQ[0]
		cs.recvQ = cs.recvQ[1:]
		if err := req.dst(v); err != nil {
			return err
		}
		in.sch.wake(req.t)
		return nil
	}
	cs.sendQ = append(cs.sendQ, &commReq{t: in.cur, val: v})
	in.sch.block(in.cur, fmt.Sprintf("blocked sending on %s", key))
	return nil
}

// input executes `c ? x`.
func (in *interp) input(n *occam.Input) error {
	if in.callDepth > 0 {
		return fmt.Errorf("interp: %v: channel operations inside procedures are outside the reference interpreter", n.P)
	}
	key, err := in.chanKeyOf(n.Chan)
	if err != nil {
		return err
	}
	if in.cur == nil || in.sch == nil {
		return &DeadlockError{Blocked: []string{
			fmt.Sprintf("root process receives on %s with no parallel partner", key)}}
	}
	dst := func(v int32) error { return in.assign(n.Target, v) }
	cs := in.sch.chanState(key)
	if len(cs.sendQ) > 0 {
		req := cs.sendQ[0]
		cs.sendQ = cs.sendQ[1:]
		if err := dst(req.val); err != nil {
			return err
		}
		in.sch.wake(req.t)
		return nil
	}
	cs.recvQ = append(cs.recvQ, &commReq{t: in.cur, dst: dst})
	in.sch.block(in.cur, fmt.Sprintf("blocked receiving on %s", key))
	return nil
}
