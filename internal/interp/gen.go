package interp

import (
	"fmt"
	"math/rand"
	"strings"
)

// Generate builds a random OCCAM program for differential testing. The
// program's entire observable state funnels into three vectors — out (all
// scalars are stored there at the end), va and vb — so comparing those
// vectors compares everything. Generated programs are total and
// deterministic by construction: no division, masked vector indices,
// bounded loops, and parallel components with statically disjoint write
// sets whose expressions never read anything a sibling may write (the
// OCCAM rule that at most one component of a par may use a variable it
// assigns).
func Generate(rng *rand.Rand) string {
	g := &generator{rng: rng}
	return g.program()
}

type generator struct {
	rng *rand.Rand
	b   strings.Builder
	// free loop counters (each while consumes one).
	counters []string
	// reps in scope (replicator indices readable in expressions).
	reps  []string
	depth int
}

// envCtx captures what a statement may write and what its expressions may
// read without racing a parallel sibling.
type envCtx struct {
	write    []string // assignable scalars
	read     []string // readable scalars
	wVA, wVB bool     // may write the vector
	rVA, rVB bool     // may read the vector
}

const (
	vaSize, vaMask = 8, 7
	vbSize, vbMask = 4, 3
)

var allScalars = []string{"s0", "s1", "s2", "s3", "s4", "s5"}

func (g *generator) program() string {
	g.counters = []string{"w0", "w1", "w2", "w3"}
	g.b.WriteString("def mag = 3:\n")
	g.b.WriteString("var out[8], va[8], vb[4]:\n")
	g.b.WriteString("var s0, s1, s2, s3, s4, s5:\n")
	g.b.WriteString("var w0, w1, w2, w3:\n")
	g.b.WriteString("proc pf(value x, value y, var z) =\n")
	g.b.WriteString("  z := ((x * 3) - y) >< (x << 1)\n")
	g.b.WriteString("proc pv(vec d, value x, value e) =\n")
	g.b.WriteString("  d[x /\\ 7] := e + x\n")
	g.b.WriteString("seq\n")
	ctx := envCtx{write: allScalars, read: allScalars, wVA: true, wVB: true, rVA: true, rVB: true}
	// A few seed assignments so early expressions read nonzero values.
	for i, s := range allScalars[:3] {
		g.line(1, "%s := %d", s, g.rng.Intn(17)-8+i)
	}
	n := 3 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		g.stmt(1, ctx)
	}
	// Funnel every scalar into out.
	for i, s := range allScalars {
		g.line(1, "out[%d] := %s", i, s)
	}
	return g.b.String()
}

func (g *generator) line(indent int, format string, args ...any) {
	g.b.WriteString(strings.Repeat("  ", indent))
	fmt.Fprintf(&g.b, format+"\n", args...)
}

// stmt emits one random statement under the given read/write permissions.
func (g *generator) stmt(indent int, ctx envCtx) {
	g.depth++
	defer func() { g.depth-- }()
	choices := []int{0, 0, 1, 2} // weight simple assignments
	if g.depth < 4 {
		choices = append(choices, 3, 4, 5, 6, 7, 8)
	}
	switch c := choices[g.rng.Intn(len(choices))]; c {
	case 0: // scalar assignment
		if len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		g.line(indent, "%s := %s", ctx.write[g.rng.Intn(len(ctx.write))], g.expr(0, ctx))
	case 1: // vector write
		switch {
		case ctx.wVA:
			g.line(indent, "va[(%s) /\\ %d] := %s", g.expr(1, ctx), vaMask, g.expr(0, ctx))
		case ctx.wVB:
			g.line(indent, "vb[(%s) /\\ %d] := %s", g.expr(1, ctx), vbMask, g.expr(0, ctx))
		default:
			g.line(indent, "skip")
		}
	case 2: // proc call
		if ctx.wVA && g.rng.Intn(3) == 0 {
			g.line(indent, "pv(va, %s, %s)", g.exprNoVA(1, ctx), g.exprNoVA(1, ctx))
			return
		}
		if len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		g.line(indent, "pf(%s, %s, %s)", g.expr(1, ctx), g.expr(1, ctx), ctx.write[g.rng.Intn(len(ctx.write))])
	case 3: // seq block
		g.line(indent, "seq")
		k := 2 + g.rng.Intn(2)
		for i := 0; i < k; i++ {
			g.stmt(indent+1, ctx)
		}
	case 4: // par block with disjoint write sets and race-free reads
		if len(ctx.write) < 2 {
			g.stmt(indent, ctx)
			return
		}
		g.line(indent, "par")
		cut := 1 + g.rng.Intn(len(ctx.write)-1)
		left, right := ctx.write[:cut], ctx.write[cut:]
		// Scalars neither branch writes stay readable by both.
		inert := diff(ctx.read, ctx.write)
		leftCtx := envCtx{
			write: left, read: union(left, inert),
			wVA: ctx.wVA, rVA: ctx.wVA || (ctx.rVA && !ctx.wVA),
			rVB: ctx.rVB && !ctx.wVB,
		}
		rightCtx := envCtx{
			write: right, read: union(right, inert),
			wVB: ctx.wVB, rVB: ctx.wVB || (ctx.rVB && !ctx.wVB),
			rVA: ctx.rVA && !ctx.wVA,
		}
		g.branch(indent+1, leftCtx)
		g.branch(indent+1, rightCtx)
	case 5: // if
		g.line(indent, "if")
		k := 1 + g.rng.Intn(3)
		for i := 0; i < k; i++ {
			g.line(indent+1, "%s", g.expr(0, ctx))
			g.stmt(indent+2, ctx)
		}
	case 6: // bounded while
		if len(g.counters) == 0 || len(ctx.write) == 0 {
			g.line(indent, "skip")
			return
		}
		ctr := g.counters[len(g.counters)-1]
		g.counters = g.counters[:len(g.counters)-1]
		bound := 1 + g.rng.Intn(3)
		g.line(indent, "seq")
		g.line(indent+1, "%s := 0", ctr)
		g.line(indent+1, "while %s < %d", ctr, bound)
		g.line(indent+2, "seq")
		g.stmt(indent+3, ctx)
		g.line(indent+3, "%s := %s + 1", ctr, ctr)
	case 7: // replicated seq
		rep := fmt.Sprintf("r%d", len(g.reps))
		g.line(indent, "seq %s = [%d for %d]", rep, g.rng.Intn(3), 1+g.rng.Intn(3))
		g.reps = append(g.reps, rep)
		g.stmt(indent+1, ctx)
		g.reps = g.reps[:len(g.reps)-1]
	case 8: // replicated par writing disjoint elements of one vector
		rep := fmt.Sprintf("r%d", len(g.reps))
		g.reps = append(g.reps, rep)
		// Instances write distinct elements of the chosen vector; their
		// expressions must not read it (another instance's element).
		body := ctx
		body.write = nil
		switch {
		case ctx.wVA:
			body.rVA, body.wVA, body.wVB = false, false, false
			g.line(indent, "par %s = [0 for %d]", rep, 1+g.rng.Intn(vaSize))
			g.line(indent+1, "va[%s] := %s", rep, g.expr(0, body))
		case ctx.wVB:
			body.rVB, body.wVA, body.wVB = false, false, false
			g.line(indent, "par %s = [0 for %d]", rep, 1+g.rng.Intn(vbSize))
			g.line(indent+1, "vb[%s] := %s", rep, g.expr(0, body))
		default:
			g.line(indent, "skip")
		}
		g.reps = g.reps[:len(g.reps)-1]
	}
}

// branch emits one parallel component.
func (g *generator) branch(indent int, ctx envCtx) {
	g.line(indent, "seq")
	k := 1 + g.rng.Intn(2)
	for i := 0; i < k; i++ {
		g.stmt(indent+1, ctx)
	}
}

// exprNoVA builds an expression that does not read va (for pv arguments,
// whose evaluation order relative to the callee's writes crosses a context
// boundary only sequentially — but instances spawned from replicated
// contexts must still avoid the written vector).
func (g *generator) exprNoVA(depth int, ctx envCtx) string {
	c := ctx
	c.rVA = false
	return g.expr(depth, c)
}

// expr emits a random total expression under the read permissions.
func (g *generator) expr(depth int, ctx envCtx) string {
	if depth > 2 || g.rng.Intn(3) == 0 {
		for tries := 0; tries < 4; tries++ {
			switch g.rng.Intn(4) {
			case 0:
				return fmt.Sprintf("%d", g.rng.Intn(41)-20)
			case 1:
				if len(ctx.read) > 0 {
					return ctx.read[g.rng.Intn(len(ctx.read))]
				}
			case 2:
				if len(g.reps) > 0 {
					return g.reps[g.rng.Intn(len(g.reps))]
				}
				return "mag"
			default:
				if ctx.rVA && g.rng.Intn(2) == 0 {
					return fmt.Sprintf("va[(%s) /\\ %d]", g.expr(depth+2, ctx), vaMask)
				}
				if ctx.rVB {
					return fmt.Sprintf("vb[(%s) /\\ %d]", g.expr(depth+2, ctx), vbMask)
				}
			}
		}
		return fmt.Sprintf("%d", g.rng.Intn(21)-10)
	}
	ops := []string{"+", "-", "*", "/\\", "\\/", "><", "<<", ">>", "=", "<>", "<", ">", "<=", ">=", "and", "or"}
	op := ops[g.rng.Intn(len(ops))]
	if g.rng.Intn(8) == 0 {
		return fmt.Sprintf("(- %s)", g.expr(depth+1, ctx))
	}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth+1, ctx), op, g.expr(depth+1, ctx))
}

func union(a, b []string) []string {
	out := append([]string{}, a...)
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range b {
		if !seen[s] {
			out = append(out, s)
		}
	}
	return out
}

func diff(a, b []string) []string {
	drop := map[string]bool{}
	for _, s := range b {
		drop[s] = true
	}
	var out []string
	for _, s := range a {
		if !drop[s] {
			out = append(out, s)
		}
	}
	return out
}
