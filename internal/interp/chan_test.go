package interp

import (
	"errors"
	"strings"
	"testing"

	"queuemachine/internal/occam"
)

func runSrc(t *testing.T, src string) (*State, error) {
	t.Helper()
	prog, err := occam.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return Run(prog)
}

func mustRun(t *testing.T, src string) *State {
	t.Helper()
	st, err := runSrc(t, src)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return st
}

func vecOf(t *testing.T, st *State, name string) []int32 {
	t.Helper()
	v, err := st.VectorByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestChannelRendezvous(t *testing.T) {
	st := mustRun(t, `var v[1], x:
chan c:
seq
  par
    c ! 6 * 7
    c ? x
  v[0] := x
`)
	if got := vecOf(t, st, "v")[0]; got != 42 {
		t.Errorf("v[0] = %d, want 42", got)
	}
}

func TestChannelPipelineOrder(t *testing.T) {
	// Sends arrive in order on one channel; values funneled to a vector.
	st := mustRun(t, `var v[3], a, b, x:
chan c:
seq
  par
    seq
      c ! 10
      c ! 20
      c ! 30
    seq
      c ? a
      c ? b
      c ? x
  v[0] := a
  v[1] := b
  v[2] := x
`)
	v := vecOf(t, st, "v")
	if v[0] != 10 || v[1] != 20 || v[2] != 30 {
		t.Errorf("v = %v, want [10 20 30]", v)
	}
}

func TestChannelBidirectional(t *testing.T) {
	// Request/response between two branches over two channels.
	st := mustRun(t, `var v[1], req, resp:
chan c, d:
seq
  par
    seq
      c ! 5
      d ? resp
    seq
      c ? req
      d ! req * req
  v[0] := resp
`)
	if got := vecOf(t, st, "v")[0]; got != 25 {
		t.Errorf("v[0] = %d, want 25", got)
	}
}

func TestChannelVectorElements(t *testing.T) {
	st := mustRun(t, `var v[2], x, y:
chan c[2]:
seq
  par
    seq
      c[0] ! 7
      c[1] ! 9
    seq
      c[0] ? x
      c[1] ? y
  v[0] := x
  v[1] := y
`)
	v := vecOf(t, st, "v")
	if v[0] != 7 || v[1] != 9 {
		t.Errorf("v = %v, want [7 9]", v)
	}
}

func TestChannelInsideWhile(t *testing.T) {
	// A bounded producer/consumer loop: channel operations inside while
	// bodies exercise blocking at arbitrary nesting depth.
	st := mustRun(t, `var v[1], i, j, acc, x:
chan c:
seq
  acc := 0
  par
    seq
      i := 0
      while i < 5
        seq
          c ! i * i
          i := i + 1
    seq
      j := 0
      while j < 5
        seq
          c ? x
          acc := acc + x
          j := j + 1
  v[0] := acc
`)
	if got := vecOf(t, st, "v")[0]; got != 0+1+4+9+16 {
		t.Errorf("acc = %d, want 30", got)
	}
}

func TestChannelNestedPar(t *testing.T) {
	// A communicating PAR nested inside a branch of another PAR.
	st := mustRun(t, `var v[2], x, y:
chan c, d:
seq
  par
    seq
      par
        d ! 3
        d ? y
      c ! y + 1
    c ? x
  v[0] := x
  v[1] := y
`)
	v := vecOf(t, st, "v")
	if v[0] != 4 || v[1] != 3 {
		t.Errorf("v = %v, want [4 3]", v)
	}
}

func TestChannelThreeWayChain(t *testing.T) {
	// Three branches in a relay chain: values flow 0 -> 1 -> 2.
	st := mustRun(t, `var v[1], a, b:
chan c, d:
seq
  par
    c ! 11
    seq
      c ? a
      d ! a + 1
    seq
      d ? b
  v[0] := b
`)
	if got := vecOf(t, st, "v")[0]; got != 12 {
		t.Errorf("v[0] = %d, want 12", got)
	}
}

func TestChannelDeadlockDetected(t *testing.T) {
	// Both branches send: nobody receives, a certain rendezvous deadlock.
	_, err := runSrc(t, `chan c:
par
  c ! 1
  c ! 2
`)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 {
		t.Errorf("blocked = %v, want two stuck threads", de.Blocked)
	}
}

func TestChannelCrossedOrderDeadlock(t *testing.T) {
	// Classic crossed rendezvous: A does c! then d!, B does d? after c?
	// is fine — but B doing d! first while A waits on c! deadlocks.
	_, err := runSrc(t, `var x, y:
chan c, d:
par
  seq
    c ! 1
    d ? x
  seq
    d ! 2
    c ? y
`)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v, want DeadlockError", err)
	}
}

func TestChannelInProcRefused(t *testing.T) {
	_, err := runSrc(t, `var x:
chan c:
proc send(value v) =
  c ! v
par
  send(1)
  c ? x
`)
	if err == nil || !strings.Contains(err.Error(), "inside procedures") {
		t.Errorf("error %v, want procedure refusal", err)
	}
}

func TestChannelVectorIndexOutOfBounds(t *testing.T) {
	// The index arrives through a variable: a constant 5 would already be
	// rejected by sema's static bounds check.
	_, err := runSrc(t, `var x, i:
chan c[2]:
seq
  i := 5
  par
    c[i] ! 1
    c[0] ? x
`)
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("error %v, want bounds error", err)
	}
}

func TestReplicatedParCommunicating(t *testing.T) {
	// Each instance sends its index on its own channel element; a single
	// collector branch receives them all in index order.
	st := mustRun(t, `def n = 4:
var v[n], k, x:
chan c[n]:
seq
  par
    par i = [0 for n]
      c[i] ! (i * 10) + 1
    seq
      k := 0
      while k < n
        seq
          c[k] ? x
          v[k] := x
          k := k + 1
`)
	v := vecOf(t, st, "v")
	for i, want := range []int32{1, 11, 21, 31} {
		if v[i] != want {
			t.Errorf("v[%d] = %d, want %d", i, v[i], want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	prog, err := occam.Parse("var x, i, j:\nseq\n  i := 0\n  while i < 1000\n    seq\n      j := 0\n      while j < 1000\n        seq\n          x := x + 1\n          j := j + 1\n      i := i + 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLimited(prog, 10_000); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("error %v, want step-budget error", err)
	}
	if _, err := RunLimited(prog, 0); err != nil {
		t.Errorf("unlimited run failed: %v", err)
	}
}
