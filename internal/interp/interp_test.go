package interp

import (
	"strings"
	"testing"

	"queuemachine/internal/occam"
)

func run(t *testing.T, src string) *State {
	t.Helper()
	prog, err := occam.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st, err := Run(prog)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return st
}

func vecByName(t *testing.T, st *State, name string) []int32 {
	t.Helper()
	v, err := st.VectorByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBasics(t *testing.T) {
	st := run(t, `var v[4], x, i:
seq
  x := 2 + 3 * 4
  v[0] := x
  i := 1
  v[i] := v[0] - 10
  if
    v[1] = 4
      v[2] := 1
  while i < 3
    seq
      v[3] := v[3] + i
      i := i + 1
`)
	got := vecByName(t, st, "v")
	want := []int32{14, 4, 1, 3}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("v[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestReplicatedForms(t *testing.T) {
	st := run(t, `var v[8], sum:
seq
  sum := 0
  seq k = [1 for 5]
    sum := sum + k
  v[0] := sum
  par i = [0 for 8]
    v[i] := i * i
`)
	got := vecByName(t, st, "v")
	for i := 0; i < 8; i++ {
		if got[i] != int32(i*i) {
			t.Errorf("v[%d] = %d", i, got[i])
		}
	}
}

func TestProcSemantics(t *testing.T) {
	st := run(t, `var v[2], a, b:
proc addmul(value x, value y, var outp) =
  outp := (x + y) * 2
proc fill(vec d, value k) =
  d[k] := k + 100
seq
  a := 3
  addmul(a, 4, b)
  v[0] := b
  fill(v, 1)
`)
	got := vecByName(t, st, "v")
	if got[0] != 14 || got[1] != 101 {
		t.Errorf("v = %v", got)
	}
}

func TestRecursion(t *testing.T) {
	st := run(t, `var v[1], r:
proc fact(value n, var outp) =
  var sub:
  if
    n <= 1
      outp := 1
    n > 1
      seq
        fact(n - 1, sub)
        outp := n * sub
seq
  fact(6, r)
  v[0] := r
`)
	if got := vecByName(t, st, "v")[0]; got != 720 {
		t.Errorf("6! = %d", got)
	}
}

func TestVecParamAliasChain(t *testing.T) {
	st := run(t, `var v[4]:
proc inner(vec d) =
  d[2] := 9
proc outer(vec d) =
  inner(d)
seq
  outer(v)
`)
	if got := vecByName(t, st, "v")[2]; got != 9 {
		t.Errorf("v[2] = %d", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		// Runtime bounds checks need a non-constant index: sema rejects
		// constant out-of-range subscripts before the program ever runs.
		{"var v[2], i:\nseq\n  i := 5\n  v[i] := 1\n", "out of bounds"},
		{"var v[2], x, i:\nseq\n  i := 9\n  x := v[i]\n", "out of bounds"},
		{"chan c:\nc ! 1\n", "deadlock"},
		{"chan c:\nvar x:\nc ? x\n", "deadlock"},
		{"var x:\nwait now after 5\n", "outside the reference interpreter"},
		{"var x:\nx := now\n", "outside the reference interpreter"},
		{"var x:\nwhile 1 = 1\n  x := x + 1\n", "million"},
	}
	for _, c := range cases {
		prog, err := occam.Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		_, err = Run(prog)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v, want %q", c.src, err, c.want)
		}
	}
}

func TestVectorByNameMissing(t *testing.T) {
	st := run(t, "var v[1]:\nv[0] := 1\n")
	if _, err := st.VectorByName("zzz"); err == nil {
		t.Error("missing vector resolved")
	}
}

func TestIfNoGuardIsSkip(t *testing.T) {
	st := run(t, `var v[1], x:
seq
  x := 5
  if
    x > 50
      v[0] := 1
  v[0] := v[0] + 3
`)
	if got := vecByName(t, st, "v")[0]; got != 3 {
		t.Errorf("v[0] = %d", got)
	}
}
