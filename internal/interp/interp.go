// Package interp is a direct reference interpreter for the OCCAM subset:
// it evaluates the analyzed AST with ordinary recursive execution, entirely
// independent of the data-flow compiler and the multiprocessor simulator.
// Differential tests generate random programs and require the interpreter,
// the compiler under every optimization setting, and the simulator at every
// machine size to agree on the final contents of every vector.
//
// Channel communication and real-time waits are out of the interpreter's
// scope (the sequential evaluation order cannot express a rendezvous); the
// random-program generator avoids them, and the hand-written channel tests
// in internal/compile cover those paths.
package interp

import (
	"fmt"

	"queuemachine/internal/occam"
)

// State is the interpreter's store.
type State struct {
	scalars map[*occam.Symbol]int32
	vectors map[*occam.Symbol][]int32
	// steps counts executed statements; when maxSteps is non-zero,
	// exceeding it aborts the run with a structured error (the global
	// guard fuzzing relies on — per-loop guards cannot bound nesting).
	steps, maxSteps int64
}

// NewState builds an empty store.
func NewState() *State {
	return &State{
		scalars: map[*occam.Symbol]int32{},
		vectors: map[*occam.Symbol][]int32{},
	}
}

// Vector returns the final contents of a vector by symbol.
func (s *State) Vector(sym *occam.Symbol) []int32 { return s.vectors[sym] }

// VectorByName returns the final contents of the outermost vector with the
// given name.
func (s *State) VectorByName(name string) ([]int32, error) {
	var best *occam.Symbol
	for sym := range s.vectors {
		if sym.Name == name && (best == nil || sym.ID < best.ID) {
			best = sym
		}
	}
	if best == nil {
		return nil, fmt.Errorf("interp: no vector %q", name)
	}
	return s.vectors[best], nil
}

// Run interprets a program and returns the final store.
func Run(prog *occam.Program) (*State, error) {
	return RunLimited(prog, 0)
}

// RunLimited interprets a program with a global statement budget; maxSteps
// of zero means unlimited. Fuzzing uses the budget to bound nested loops
// that the per-while iteration guard cannot.
func RunLimited(prog *occam.Program, maxSteps int64) (*State, error) {
	st := NewState()
	st.maxSteps = maxSteps
	in := &interp{state: st}
	if err := in.process(prog.Body); err != nil {
		return nil, err
	}
	return st, nil
}

type interp struct {
	state *State
	// sch and cur are set while a communicating PAR executes under the
	// cooperative scheduler (exec.go); cur is nil in the root process.
	sch *scheduler
	cur *thread
	// callDepth tracks procedure nesting: channel operations are refused
	// inside calls (see exec.go).
	callDepth int
	// repOverride carries per-thread replicator bindings for threaded
	// replicated-par instances, where the shared store would race.
	repOverride map[*occam.Symbol]int32
}

func (in *interp) vectorOf(sym *occam.Symbol) []int32 {
	v, ok := in.state.vectors[sym]
	if !ok {
		v = make([]int32, sym.Size)
		in.state.vectors[sym] = v
	}
	return v
}

func (in *interp) process(p occam.Process) error {
	in.state.steps++
	if in.state.maxSteps > 0 && in.state.steps > in.state.maxSteps {
		return fmt.Errorf("interp: %v: exceeded the %d-statement budget", p.ProcPos(), in.state.maxSteps)
	}
	switch n := p.(type) {
	case *occam.Skip:
		return nil
	case *occam.Scope:
		for _, d := range n.Decls {
			if d.Kind == occam.DeclVar {
				for _, item := range d.Items {
					if item.Sym.IsVector() {
						in.vectorOf(item.Sym)
					}
				}
			}
		}
		return in.process(n.Body)
	case *occam.Assign:
		v, err := in.expr(n.Value)
		if err != nil {
			return err
		}
		return in.assign(n.Target, v)
	case *occam.Seq:
		if n.Rep != nil {
			return in.replicated(n.Rep, n.Body[0])
		}
		for _, b := range n.Body {
			if err := in.process(b); err != nil {
				return err
			}
		}
		return nil
	case *occam.Par:
		// Branches that communicate need real interleaving: run them as
		// cooperative threads under the rendezvous scheduler (exec.go).
		// Otherwise OCCAM guarantees disjoint writes across parallel
		// components, so sequential evaluation computes the same final
		// store.
		if n.Rep != nil {
			if hasChanOps(n.Body[0]) {
				return in.runParReplicatedThreaded(n.Rep, n.Body[0])
			}
			return in.replicated(n.Rep, n.Body[0])
		}
		threaded := false
		for _, b := range n.Body {
			if hasChanOps(b) {
				threaded = true
				break
			}
		}
		if threaded {
			return in.runParThreaded(n.Body)
		}
		for _, b := range n.Body {
			if err := in.process(b); err != nil {
				return err
			}
		}
		return nil
	case *occam.While:
		for iter := 0; ; iter++ {
			if iter > 1_000_000 {
				return fmt.Errorf("interp: %v: while loop exceeded a million iterations", n.P)
			}
			c, err := in.expr(n.Cond)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.process(n.Body); err != nil {
				return err
			}
		}
	case *occam.If:
		for _, g := range n.Branches {
			c, err := in.expr(g.Cond)
			if err != nil {
				return err
			}
			if c != 0 {
				return in.process(g.Body)
			}
		}
		return nil // no guard true behaves as skip
	case *occam.Call:
		return in.call(n)
	case *occam.Input:
		return in.input(n)
	case *occam.Output:
		return in.output(n)
	case *occam.Wait:
		return fmt.Errorf("interp: %v: real-time operations are outside the reference interpreter", p.ProcPos())
	}
	return fmt.Errorf("interp: unknown process %T", p)
}

func (in *interp) replicated(rep *occam.Replicator, body occam.Process) error {
	from, err := in.expr(rep.From)
	if err != nil {
		return err
	}
	count, err := in.expr(rep.Count)
	if err != nil {
		return err
	}
	for k := int32(0); k < count; k++ {
		// Inside a threaded replicated-par instance, replicator bindings
		// live in the per-thread override map so sibling instances that
		// interleave at channel operations cannot race on them.
		if in.repOverride != nil {
			in.repOverride[rep.Sym] = from + k
		} else {
			in.state.scalars[rep.Sym] = from + k
		}
		if err := in.process(body); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) assign(ref *occam.VarRef, v int32) error {
	if ref.Index == nil {
		in.state.scalars[ref.Sym] = v
		return nil
	}
	idx, err := in.expr(ref.Index)
	if err != nil {
		return err
	}
	vec := in.vectorOf(ref.Sym)
	if idx < 0 || int(idx) >= len(vec) {
		return fmt.Errorf("interp: %v: %s[%d] out of bounds (size %d)", ref.P, ref.Name, idx, len(vec))
	}
	if ref.Sym.Kind == occam.SymVecByteVar {
		// Bytes are unsigned, right-justified without sign extension.
		v &= 0xff
	}
	vec[idx] = v
	return nil
}

func (in *interp) expr(e occam.Expr) (int32, error) {
	switch n := e.(type) {
	case *occam.IntLit:
		return n.V, nil
	case *occam.NowExpr:
		return 0, fmt.Errorf("interp: %v: now is outside the reference interpreter", n.P)
	case *occam.UnaryExpr:
		v, err := in.expr(n.X)
		if err != nil {
			return 0, err
		}
		if n.Op == "-" {
			return -v, nil
		}
		return ^v, nil
	case *occam.BinExpr:
		a, err := in.expr(n.A)
		if err != nil {
			return 0, err
		}
		b, err := in.expr(n.B)
		if err != nil {
			return 0, err
		}
		return occam.EvalBinOp(n.Op, a, b)
	case *occam.VarRef:
		if n.Sym.Kind == occam.SymDef {
			return n.Sym.Value, nil
		}
		if n.Index == nil {
			if v, ok := in.repOverride[n.Sym]; ok {
				return v, nil
			}
			return in.state.scalars[n.Sym], nil
		}
		idx, err := in.expr(n.Index)
		if err != nil {
			return 0, err
		}
		vec := in.vectorOf(n.Sym)
		if idx < 0 || int(idx) >= len(vec) {
			return 0, fmt.Errorf("interp: %v: %s[%d] out of bounds (size %d)", n.P, n.Name, idx, len(vec))
		}
		return vec[idx], nil
	}
	return 0, fmt.Errorf("interp: unknown expression %T", e)
}

// call implements the copy-in/copy-out procedure semantics. Parameter
// bindings are saved and restored around the body so recursion works.
func (in *interp) call(c *occam.Call) error {
	in.callDepth++
	defer func() { in.callDepth-- }()
	proc := c.Sym.Proc
	// Evaluate every argument in the caller's frame before any parameter
	// is (re)bound.
	type binding struct {
		param *occam.Symbol
		val   int32
		vec   []int32
		isVec bool
	}
	var binds []binding
	var copyOuts []struct {
		param *occam.Symbol
		dest  *occam.VarRef
	}
	for i, arg := range c.Args {
		param := proc.Param[i]
		switch param.Mode {
		case occam.ParamValue:
			v, err := in.expr(arg)
			if err != nil {
				return err
			}
			binds = append(binds, binding{param: param.Sym, val: v})
		case occam.ParamVar:
			ref := arg.(*occam.VarRef)
			binds = append(binds, binding{param: param.Sym, val: in.state.scalars[ref.Sym]})
			copyOuts = append(copyOuts, struct {
				param *occam.Symbol
				dest  *occam.VarRef
			}{param.Sym, ref})
		case occam.ParamVec:
			// Alias the actual vector's backing slice (transitively
			// through vec parameters).
			ref := arg.(*occam.VarRef)
			binds = append(binds, binding{param: param.Sym, vec: in.resolveVector(ref.Sym), isVec: true})
		case occam.ParamChan:
			return fmt.Errorf("interp: %v: channel parameters are outside the reference interpreter", c.P)
		}
	}
	// Install the bindings, remembering the shadowed ones.
	type shadow struct {
		param  *occam.Symbol
		val    int32
		vec    []int32
		hadVal bool
		hadVec bool
		isVec  bool
	}
	var shadows []shadow
	for _, b := range binds {
		sh := shadow{param: b.param, isVec: b.isVec}
		if b.isVec {
			sh.vec, sh.hadVec = in.state.vectors[b.param]
			in.state.vectors[b.param] = b.vec
		} else {
			sh.val, sh.hadVal = in.state.scalars[b.param]
			in.state.scalars[b.param] = b.val
		}
		shadows = append(shadows, sh)
	}
	if err := in.process(proc.Body); err != nil {
		return err
	}
	// Copy the var parameters back out, then restore the shadowed
	// bindings for the caller's continuation (relevant under recursion).
	outVals := make([]int32, len(copyOuts))
	for i, co := range copyOuts {
		outVals[i] = in.state.scalars[co.param]
	}
	for _, sh := range shadows {
		if sh.isVec {
			if sh.hadVec {
				in.state.vectors[sh.param] = sh.vec
			} else {
				delete(in.state.vectors, sh.param)
			}
		} else {
			if sh.hadVal {
				in.state.scalars[sh.param] = sh.val
			} else {
				delete(in.state.scalars, sh.param)
			}
		}
	}
	for i, co := range copyOuts {
		if err := in.assign(co.dest, outVals[i]); err != nil {
			return err
		}
	}
	return nil
}

// resolveVector follows vec-parameter aliases to the backing slice.
func (in *interp) resolveVector(sym *occam.Symbol) []int32 {
	if v, ok := in.state.vectors[sym]; ok {
		return v
	}
	return in.vectorOf(sym)
}
