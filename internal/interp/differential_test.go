package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/occam"
	"queuemachine/internal/sim"
)

// TestDifferentialRandomPrograms is the end-to-end differential fuzzer: for
// each seed, a random OCCAM program is (a) executed by this package's
// reference interpreter and (b) compiled by the Chapter 4 compiler — under
// several optimization configurations — and simulated on multiprocessors of
// several sizes. Every configuration must produce byte-identical vector
// contents.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 8
	}
	configs := []struct {
		name string
		opts compile.Options
	}{
		{"optimized", compile.Options{}},
		{"unoptimized", compile.Options{NoInputOrder: true, NoLiveFilter: true, NoPriority: true, NoConstFold: true}},
	}
	peCounts := []int{1, 3}

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			src := Generate(rand.New(rand.NewSource(int64(seed))))

			// Reference execution.
			prog, err := occam.Parse(src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, src)
			}
			ref, err := Run(prog)
			if err != nil {
				t.Fatalf("reference interpreter: %v\n%s", err, src)
			}
			want := map[string][]int32{}
			for _, name := range []string{"out", "va", "vb"} {
				v, err := ref.VectorByName(name)
				if err != nil {
					t.Fatal(err)
				}
				want[name] = v
			}

			for _, cfg := range configs {
				art, err := compile.Compile(src, cfg.opts)
				if err != nil {
					// The fully de-optimized configuration pushes every
					// constant through the operand queue, and a large
					// generated graph can legitimately exceed the
					// architecture's 256-word page limit.
					if cfg.opts.NoConstFold && strings.Contains(err.Error(), "operand queue") {
						continue
					}
					t.Fatalf("%s: compile: %v\n%s", cfg.name, err, src)
				}
				for _, pes := range peCounts {
					res, err := sim.Run(art.Object, pes, sim.DefaultParams())
					if err != nil {
						t.Fatalf("%s on %d PEs: %v\n%s", cfg.name, pes, err, src)
					}
					for name, w := range want {
						base, err := art.VectorBase(name)
						if err != nil {
							t.Fatal(err)
						}
						for i, wv := range w {
							got := res.Data[int(base)/4+i]
							if got != wv {
								t.Fatalf("%s on %d PEs: %s[%d] = %d, interpreter says %d\nprogram:\n%s",
									cfg.name, pes, name, i, got, wv, src)
							}
						}
					}
				}
			}
		})
	}
}

// TestGeneratorDeterministic pins the generator: the same seed yields the
// same program.
func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)))
	b := Generate(rand.New(rand.NewSource(7)))
	if a != b {
		t.Error("generator is not deterministic")
	}
	if a == Generate(rand.New(rand.NewSource(8))) {
		t.Error("different seeds produced identical programs")
	}
}

// TestGeneratedProgramsParse checks a wide seed range parses and interprets
// cleanly (without the expensive simulation).
func TestGeneratedProgramsParse(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		src := Generate(rand.New(rand.NewSource(int64(seed))))
		prog, err := occam.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if _, err := Run(prog); err != nil {
			t.Fatalf("seed %d: interpret: %v\n%s", seed, err, src)
		}
	}
}

// TestDifferentialByteVectors fuzzes byte-vector programs: random
// straight-line and looped byte reads/writes, compared between the
// interpreter and the simulator with byte-level unpacking of the packed
// data segment.
func TestDifferentialByteVectors(t *testing.T) {
	for seed := 0; seed < 25; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		var b strings.Builder
		b.WriteString("var c[byte 8], s0, s1, k:\nseq\n")
		b.WriteString("  s0 := 5\n  s1 := 3\n")
		n := 6 + rng.Intn(8)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&b, "  c[byte (%d + s0) /\\ 7] := %d\n", rng.Intn(8), rng.Intn(600)-100)
			case 1:
				fmt.Fprintf(&b, "  s%d := c[byte %d] + s0\n", rng.Intn(2), rng.Intn(8))
			case 2:
				fmt.Fprintf(&b, "  c[byte %d] := (s0 * s1) + %d\n", rng.Intn(8), rng.Intn(50))
			default:
				fmt.Fprintf(&b, "  k := 0\n  while k < 2\n    seq\n      c[byte (k + %d) /\\ 7] := c[byte k] + 1\n      k := k + 1\n", rng.Intn(8))
			}
		}
		b.WriteString("  c[byte 7] := s0 + s1\n")
		src := b.String()

		prog, err := occam.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ref, err := Run(prog)
		if err != nil {
			t.Fatalf("seed %d: interp: %v\n%s", seed, err, src)
		}
		want, err := ref.VectorByName("c")
		if err != nil {
			t.Fatal(err)
		}
		art, err := compile.Compile(src, compile.Options{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		res, err := sim.Run(art.Object, 2, sim.DefaultParams())
		if err != nil {
			t.Fatalf("seed %d: sim: %v\n%s", seed, err, src)
		}
		base, err := art.VectorBase("c")
		if err != nil {
			t.Fatal(err)
		}
		for i, wv := range want {
			word := res.Data[int(base)/4+i/4]
			got := int32(uint32(word) >> (8 * (i % 4)) & 0xff)
			if got != wv {
				t.Fatalf("seed %d: c[%d] sim=%d interp=%d\n%s", seed, i, got, wv, src)
			}
		}
	}
}
