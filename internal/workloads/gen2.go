package workloads

// This file holds the second-generation workloads. Where the Chapter 6
// programs measure the machine on dense numeric kernels, these four stress
// the parts the thesis benchmarks leave quiet: data-dependent
// compare-exchange parallelism (bitonic sort), triangular-solve dependence
// chains (LU), iterative neighbour exchange (stencil), and a long
// rendezvous pipeline that lives on the ring and the mcache
// (producer-consumer chain).

import (
	"fmt"
	"strings"

	"queuemachine/internal/compile"
)

// ---------------------------------------------------------------------------
// Bitonic sorting network: n = 2^logN keys, log²-ish stages, every
// compare-exchange of a stage in one replicated par. The guard pair
// (ascending/descending by the size bit) runs on boolean words, so `and`
// composes the -1/0 comparison results bitwise.

func bitonicInput(t int) int32 { return int32(((t+3)*(t+7))%101 - 50) }

// Bitonic builds the 2^logN-key sorting network program.
func Bitonic(logN int) Workload {
	n := 1 << logN
	src := fmt.Sprintf(`def n = %d:
var v[n]:
proc cex(value idx, value stride, value size) =
  var p, a, b:
  seq
    p := idx >< stride
    if
      p > idx
        seq
          a := v[idx]
          b := v[p]
          if
            ((idx /\ size) = 0) and (a > b)
              seq
                v[idx] := b
                v[p] := a
            ((idx /\ size) <> 0) and (a < b)
              seq
                v[idx] := b
                v[p] := a
seq
  par t = [0 for n]
    v[t] := (((t + 3) * (t + 7)) \ 101) - 50
  var size, stride:
  seq
    size := 2
    while size <= n
      seq
        stride := size / 2
        while stride >= 1
          seq
            par idx = [0 for n]
              cex(idx, stride, size)
            stride := stride / 2
        size := size * 2
`, n)
	return Workload{
		Name:   fmt.Sprintf("bitonic-%d", n),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "v", RefBitonic(logN))
		},
	}
}

// RefBitonic runs the identical network in Go.
func RefBitonic(logN int) []int32 {
	n := 1 << logN
	v := make([]int32, n)
	for t := range v {
		v[t] = bitonicInput(t)
	}
	for size := 2; size <= n; size *= 2 {
		for stride := size / 2; stride >= 1; stride /= 2 {
			for idx := 0; idx < n; idx++ {
				p := idx ^ stride
				if p <= idx {
					continue
				}
				a, b := v[idx], v[p]
				up := idx&size == 0
				if (up && a > b) || (!up && a < b) {
					v[idx], v[p] = b, a
				}
			}
		}
	}
	return v
}

// ---------------------------------------------------------------------------
// LU decomposition (Doolittle, no pivoting) of an exactly decomposable
// integer matrix A = L·U — unit lower-triangular integer L, integer U with
// nonzero diagonal — so every division in the factorization is exact. The
// compact result lands in lu: U on and above the diagonal, L (without its
// unit diagonal) below. Each step k computes its U row and L column in
// replicated pars, the triangular analogue of Cholesky's column fan-out.

func luL(i, j int) int32 {
	switch {
	case i == j:
		return 1
	case j < i:
		return int32((i+j)%3 - 1)
	default:
		return 0
	}
}

func luU(i, j int) int32 {
	switch {
	case i == j:
		return int32(i + 2)
	case j > i:
		return int32((2*i+j)%5 - 2)
	default:
		return 0
	}
}

// RefLUA builds A = L·U.
func RefLUA(n int) []int32 {
	a := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += luL(i, k) * luU(k, j)
			}
			a[i*n+j] = s
		}
	}
	return a
}

// RefLU gives the expected compact factorization.
func RefLU(n int) []int32 {
	lu := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j >= i {
				lu[i*n+j] = luU(i, j)
			} else {
				lu[i*n+j] = luL(i, j)
			}
		}
	}
	return lu
}

// LU builds the n×n decomposition program.
func LU(n int) Workload {
	a := RefLUA(n)
	var b strings.Builder
	fmt.Fprintf(&b, "def n = %d:\ndef nn = %d:\n", n, n*n)
	b.WriteString(`var a[nn], lu[nn]:
proc urow(value k, value j) =
  var s, m:
  seq
    s := a[(k*n)+j]
    m := 0
    while m < k
      seq
        s := s - (lu[(k*n)+m] * lu[(m*n)+j])
        m := m + 1
    lu[(k*n)+j] := s
proc lcol(value k, value i) =
  var s, m:
  seq
    s := a[(i*n)+k]
    m := 0
    while m < k
      seq
        s := s - (lu[(i*n)+m] * lu[(m*n)+k])
        m := m + 1
    lu[(i*n)+k] := s / lu[(k*n)+k]
seq
`)
	for i, v := range a {
		fmt.Fprintf(&b, "  a[%d] := %d\n", i, v)
	}
	b.WriteString(`  var k:
  seq
    k := 0
    while k < n
      seq
        par j = [k for n-k]
          urow(k, j)
        par i = [k+1 for (n-1)-k]
          lcol(k, i)
        k := k + 1
`)
	return Workload{
		Name:   fmt.Sprintf("lu-%dx%d", n, n),
		Source: b.String(),
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "lu", RefLU(n))
		},
	}
}

// ---------------------------------------------------------------------------
// 1-D stencil: `steps` sweeps of a three-point kernel over n cells,
// ping-ponging between two buffers with one context per interior cell per
// sweep. The kernel is pure adds/shifts so int32 wraparound is identical in
// the Go reference; the boundary cells hold their initial values.

func stencilInput(t int) int32 { return int32((t*13)%23 - 11) }

// Stencil builds the n-cell, steps-sweep program; steps must be even so the
// result lands back in the first buffer.
func Stencil(n, steps int) Workload {
	if steps%2 != 0 {
		panic("workloads: stencil steps must be even")
	}
	src := fmt.Sprintf(`def n = %d:
def half = %d:
var va[n], vb[n]:
proc cell(vec s, vec d, value i) =
  d[i] := (s[i-1] + (2 * s[i])) + s[i+1]
seq
  par t = [0 for n]
    seq
      va[t] := ((t * 13) \ 23) - 11
      vb[t] := ((t * 13) \ 23) - 11
  var t:
  seq
    t := 0
    while t < half
      seq
        par i = [1 for n-2]
          cell(va, vb, i)
        par i = [1 for n-2]
          cell(vb, va, i)
        t := t + 1
`, n, steps/2)
	return Workload{
		Name:   fmt.Sprintf("stencil-%dx%d", n, steps),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "va", RefStencil(n, steps))
		},
	}
}

// RefStencil runs the identical sweeps in Go.
func RefStencil(n, steps int) []int32 {
	cur := make([]int32, n)
	next := make([]int32, n)
	for t := range cur {
		cur[t] = stencilInput(t)
		next[t] = stencilInput(t)
	}
	for s := 0; s < steps; s++ {
		for i := 1; i < n-1; i++ {
			next[i] = cur[i-1] + 2*cur[i] + cur[i+1]
		}
		cur, next = next, cur
	}
	return cur
}

// ---------------------------------------------------------------------------
// Producer-consumer chain: m values flow through a four-stage rendezvous
// pipeline — producer → two transform stages → consumer — so every value
// crosses three channels. The whole run is communication: 3·m rendezvous
// with almost no arithmetic between them, which keeps the ring and the
// mcache's context-state traffic on the critical path.

func chainInput(k int) int32 { return int32(k*7 - 3) }

// Chain builds the m-value pipeline program.
func Chain(m int) Workload {
	src := fmt.Sprintf(`def m = %d:
var out[m]:
chan c0, c1, c2:
par
  seq k = [0 for m]
    c0 ! (k * 7) - 3
  seq k = [0 for m]
    var x:
    seq
      c0 ? x
      c1 ! (x * 3) + 1
  seq k = [0 for m]
    var x:
    seq
      c1 ? x
      c2 ! x - (x >> 2)
  seq k = [0 for m]
    var x:
    seq
      c2 ? x
      out[k] := x
`, m)
	return Workload{
		Name:   fmt.Sprintf("chain-%d", m),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "out", RefChain(m))
		},
	}
}

// RefChain applies the same three transforms in Go.
func RefChain(m int) []int32 {
	out := make([]int32, m)
	for k := range out {
		x := chainInput(k)
		x = x*3 + 1
		x = x - x>>2
		out[k] = x
	}
	return out
}
