package workloads

import (
	"sort"
	"testing"
)

func TestBitonicSmall(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		runCheck(t, Bitonic(3), pes) // 8 keys
	}
}

func TestBitonic16(t *testing.T) {
	if testing.Short() {
		t.Skip("16-key bitonic in -short mode")
	}
	runCheck(t, Bitonic(4), 8)
}

func TestLUSmall(t *testing.T) {
	for _, pes := range []int{1, 4} {
		runCheck(t, LU(4), pes)
	}
}

func TestLUFull(t *testing.T) {
	if testing.Short() {
		t.Skip("6x6 LU in -short mode")
	}
	runCheck(t, LU(6), 8)
}

func TestStencilSmall(t *testing.T) {
	for _, pes := range []int{1, 4} {
		runCheck(t, Stencil(8, 4), pes)
	}
}

func TestChainSmall(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		runCheck(t, Chain(8), pes)
	}
}

func TestChainLong(t *testing.T) {
	if testing.Short() {
		t.Skip("32-value chain in -short mode")
	}
	res := runCheck(t, Chain(32), 4)
	// Every value crosses three channels; the run should be dominated by
	// rendezvous, visible as a large dynamic context population from the
	// replicated-seq iteration contexts.
	if res.Kernel.ContextsCreated < 64 {
		t.Errorf("contexts = %d; expected rendezvous-dominated execution", res.Kernel.ContextsCreated)
	}
}

// TestGen2ReferencesAreExact checks reference self-consistency the same way
// TestReferencesAreExact does for the first-generation suite.
func TestGen2ReferencesAreExact(t *testing.T) {
	// Bitonic must agree with a plain sort of the same input.
	got := RefBitonic(4)
	want := make([]int32, len(got))
	for i := range want {
		want[i] = bitonicInput(i)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bitonic[%d] = %d, want %d", i, got[i], want[i])
		}
	}

	// L·U must reproduce A, and the compact result must divide exactly.
	n := 6
	a := RefLUA(n)
	lu := RefLU(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				var l, u int32
				if k < i {
					l = lu[i*n+k]
				} else if k == i {
					l = 1
				}
				if k <= j {
					u = lu[k*n+j]
				}
				s += l * u
			}
			if s != a[i*n+j] {
				t.Fatalf("A != L·U at (%d,%d): %d vs %d", i, j, s, a[i*n+j])
			}
		}
	}

	// Zero stencil sweeps is the identity.
	z := RefStencil(6, 0)
	for i, v := range z {
		if v != stencilInput(i) {
			t.Fatalf("stencil identity broken at %d: %d", i, v)
		}
	}
}
