package workloads

import (
	"testing"

	"queuemachine/internal/compile"
	"queuemachine/internal/sim"
)

// runCheck compiles a workload, executes it on numPEs, and verifies the
// result against its Go reference.
func runCheck(t *testing.T, w Workload, numPEs int) *sim.Result {
	t.Helper()
	art, err := compile.Compile(w.Source, compile.Options{})
	if err != nil {
		t.Fatalf("%s: Compile: %v", w.Name, err)
	}
	res, err := sim.Run(art.Object, numPEs, sim.DefaultParams())
	if err != nil {
		t.Fatalf("%s: Run on %d PEs: %v", w.Name, numPEs, err)
	}
	if err := w.Check(art, res.Data); err != nil {
		t.Errorf("%s on %d PEs: %v", w.Name, numPEs, err)
	}
	return res
}

func TestMatMulSmall(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		runCheck(t, MatMul(4), pes)
	}
}

func TestMatMulFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full 8x8 matmul in -short mode")
	}
	res := runCheck(t, MatMul(8), 8)
	if res.Kernel.ContextsCreated < 100 {
		t.Errorf("contexts = %d; expected a large dynamic context population", res.Kernel.ContextsCreated)
	}
}

func TestFFTSmall(t *testing.T) {
	for _, pes := range []int{1, 4} {
		runCheck(t, FFT(3), pes) // 8-point
	}
}

func TestFFT64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-point FFT in -short mode")
	}
	runCheck(t, FFT(6), 8)
}

func TestCholeskySmall(t *testing.T) {
	for _, pes := range []int{1, 4} {
		runCheck(t, Cholesky(4), pes)
	}
}

func TestCholeskyFull(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 Cholesky in -short mode")
	}
	runCheck(t, Cholesky(8), 8)
}

func TestCongruenceSmall(t *testing.T) {
	runCheck(t, Congruence(4), 4)
}

func TestBinarySumBothForms(t *testing.T) {
	rec := BinaryRecursiveSum(16)
	iter := IterativeSum(16)
	r1 := runCheck(t, rec, 4)
	r2 := runCheck(t, iter, 4)
	// The recursive form spawns a context tree; the iterative form walks
	// iteration contexts. Both must agree on the answer (checked above),
	// and the recursive form should exploit more parallelism.
	if r1.Kernel.RForks <= r2.Kernel.RForks {
		t.Errorf("recursive rforks %d <= iterative %d", r1.Kernel.RForks, r2.Kernel.RForks)
	}
}

// TestReferencesAreExact double-checks reference self-consistency.
func TestReferencesAreExact(t *testing.T) {
	// Cholesky: L·Lᵀ must reproduce A.
	n := 6
	a := RefCholeskyA(n)
	l := RefCholeskyL(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += l[i*n+k] * l[j*n+k]
			}
			if s != a[i*n+j] {
				t.Fatalf("A != L·Lᵀ at (%d,%d)", i, j)
			}
		}
	}
	// FFT of the 4-point transform, hand-checkable energy conservation:
	// the DC bin equals the sum of inputs (within fixed-point exactness
	// the twiddle for k=0 is exactly 1.0).
	re, _ := RefFFT(2)
	var dc int32
	for i := 0; i < 4; i++ {
		dc += fftInputRe(i)
	}
	if re[0] != dc {
		t.Errorf("FFT DC bin = %d, want %d", re[0], dc)
	}
}

func TestSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup sweep in -short mode")
	}
	w := MatMul(6)
	art, err := compile.Compile(w.Source, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cycles []int64
	for _, pes := range []int{1, 2, 4} {
		res, err := sim.Run(art.Object, pes, sim.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Check(art, res.Data); err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, res.Cycles)
	}
	if !(cycles[0] > cycles[1] && cycles[1] > cycles[2]) {
		t.Errorf("no monotone speedup: %v", cycles)
	}
	s2 := float64(cycles[0]) / float64(cycles[1])
	s4 := float64(cycles[0]) / float64(cycles[2])
	t.Logf("matmul-6x6 speedup: 2 PEs %.2f, 4 PEs %.2f", s2, s4)
	if s2 < 1.5 || s4 < 2.2 {
		t.Errorf("speedup too low: S(2)=%.2f S(4)=%.2f", s2, s4)
	}
}
