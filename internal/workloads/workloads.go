// Package workloads provides the four OCCAM benchmark programs of the
// thesis's Chapter 6 evaluation — matrix multiplication, the fast Fourier
// transform, Cholesky decomposition and the congruence transformation — as
// parameterized source generators, together with Go reference
// implementations using bit-identical integer arithmetic for verification.
//
// The queue machine is a 32-bit integer machine, so the FFT uses Q14
// block-fixed-point twiddle factors and Cholesky operates on an exactly
// decomposable integer matrix (A = L·Lᵀ for an integer L), making every
// expected result exact.
package workloads

import (
	"fmt"
	"math"
	"strings"

	"queuemachine/internal/compile"
)

// Workload couples an OCCAM program with its result checker.
type Workload struct {
	Name   string
	Source string
	// Check verifies the final data segment of a simulated run.
	Check func(art *compile.Artifact, data []int32) error
}

// vec reads vector name[i] out of a run's data segment.
func vec(art *compile.Artifact, data []int32, name string, i int) (int32, error) {
	base, err := art.VectorBase(name)
	if err != nil {
		return 0, err
	}
	idx := int(base)/4 + i
	if idx < 0 || idx >= len(data) {
		return 0, fmt.Errorf("workloads: %s[%d] outside data segment", name, i)
	}
	return data[idx], nil
}

func checkVector(art *compile.Artifact, data []int32, name string, want []int32) error {
	for i, w := range want {
		got, err := vec(art, data, name, i)
		if err != nil {
			return err
		}
		if got != w {
			return fmt.Errorf("workloads: %s[%d] = %d, want %d", name, i, got, w)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Matrix multiplication (Table 6.2 / Figure 6.8): C = A·B with one context
// tree per row, spawned by a replicated par.

// matInit gives the deterministic test matrices.
func matInitA(t int) int32 { return int32(t%7 - 3) }
func matInitB(t int) int32 { return int32(t%5 - 2) }

// MatMul builds the n×n matrix multiplication program.
func MatMul(n int) Workload {
	src := fmt.Sprintf(`def n = %d:
def nn = %d:
var a[nn], b[nn], c[nn]:
proc dorow(value i) =
  var j, k, s:
  seq
    j := 0
    while j < n
      seq
        s := 0
        k := 0
        while k < n
          seq
            s := s + (a[(i*n)+k] * b[(k*n)+j])
            k := k + 1
        c[(i*n)+j] := s
        j := j + 1
seq
  par t = [0 for nn]
    seq
      a[t] := (t \ 7) - 3
      b[t] := (t \ 5) - 2
  par i = [0 for n]
    dorow(i)
`, n, n*n)
	return Workload{
		Name:   fmt.Sprintf("matmul-%dx%d", n, n),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			want := RefMatMul(n)
			return checkVector(art, data, "c", want)
		},
	}
}

// RefMatMul computes the expected C with the same arithmetic.
func RefMatMul(n int) []int32 {
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	for t := range a {
		a[t] = matInitA(t)
		b[t] = matInitB(t)
	}
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

// ---------------------------------------------------------------------------
// Fast Fourier transform (Table 6.3 / Figure 6.10): radix-2 decimation in
// time on Q14 fixed point; every stage's butterflies run as a replicated
// par.

func fftInputRe(i int) int32 { return int32(100 * (i%5 - 2)) }
func fftInputIm(i int) int32 { return int32(50 * (i%3 - 1)) }

func bitRev(i, logN int) int {
	r := 0
	for b := 0; b < logN; b++ {
		r = r<<1 | i&1
		i >>= 1
	}
	return r
}

// fftTwiddles returns the Q14 twiddle factors for an n-point transform.
func fftTwiddles(n int) (re, im []int32) {
	re = make([]int32, n/2)
	im = make([]int32, n/2)
	for k := 0; k < n/2; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		re[k] = int32(math.Round(math.Cos(ang) * 16384))
		im[k] = int32(math.Round(math.Sin(ang) * 16384))
	}
	return re, im
}

// FFT builds the 2^logN-point transform program. The input is loaded in
// bit-reversed order (the permutation is baked into the generated
// initialization), and each of the logN stages spawns one context per
// butterfly.
func FFT(logN int) Workload {
	n := 1 << logN
	wre, wim := fftTwiddles(n)
	var b strings.Builder
	fmt.Fprintf(&b, "def n = %d:\ndef half = %d:\n", n, n/2)
	fmt.Fprintf(&b, "var xr[n], xi[n], wre[half], wim[half]:\n")
	b.WriteString(`proc butterfly(value bf, value len, value hl) =
  var k, j, tw, wr, wi, vr, vi, tr, ti, ur, ui:
  seq
    k := (bf / hl) * len
    j := bf \ hl
    tw := (j * n) / len
    wr := wre[tw]
    wi := wim[tw]
    vr := xr[(k + j) + hl]
    vi := xi[(k + j) + hl]
    tr := ((wr * vr) - (wi * vi)) >> 14
    ti := ((wr * vi) + (wi * vr)) >> 14
    ur := xr[k + j]
    ui := xi[k + j]
    xr[k + j] := ur + tr
    xi[k + j] := ui + ti
    xr[(k + j) + hl] := ur - tr
    xi[(k + j) + hl] := ui - ti
seq
`)
	// Load the input in bit-reversed order and the twiddle table.
	for i := 0; i < n; i++ {
		src := bitRev(i, logN)
		fmt.Fprintf(&b, "  xr[%d] := %d\n", i, fftInputRe(src))
		fmt.Fprintf(&b, "  xi[%d] := %d\n", i, fftInputIm(src))
	}
	for k := 0; k < n/2; k++ {
		fmt.Fprintf(&b, "  wre[%d] := %d\n", k, wre[k])
		fmt.Fprintf(&b, "  wim[%d] := %d\n", k, wim[k])
	}
	b.WriteString(`  var len, hl:
  seq
    len := 2
    while len <= n
      seq
        hl := len / 2
        par bf = [0 for half]
          butterfly(bf, len, hl)
        len := len * 2
`)
	return Workload{
		Name:   fmt.Sprintf("fft-%d", n),
		Source: b.String(),
		Check: func(art *compile.Artifact, data []int32) error {
			re, im := RefFFT(logN)
			if err := checkVector(art, data, "xr", re); err != nil {
				return err
			}
			return checkVector(art, data, "xi", im)
		},
	}
}

// RefFFT runs the identical fixed-point transform in Go.
func RefFFT(logN int) (re, im []int32) {
	n := 1 << logN
	re = make([]int32, n)
	im = make([]int32, n)
	for i := 0; i < n; i++ {
		src := bitRev(i, logN)
		re[i] = fftInputRe(src)
		im[i] = fftInputIm(src)
	}
	wre, wim := fftTwiddles(n)
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for bf := 0; bf < n/2; bf++ {
			k := bf / half * length
			j := bf % half
			tw := j * n / length
			wr, wi := wre[tw], wim[tw]
			vr, vi := re[k+j+half], im[k+j+half]
			tr := (wr*vr - wi*vi) >> 14
			ti := (wr*vi + wi*vr) >> 14
			ur, ui := re[k+j], im[k+j]
			re[k+j], im[k+j] = ur+tr, ui+ti
			re[k+j+half], im[k+j+half] = ur-tr, ui-ti
		}
	}
	return re, im
}

// ---------------------------------------------------------------------------
// Cholesky decomposition (Table 6.4 / Figure 6.11): A = L·Lᵀ for an integer
// lower-triangular L, recovered exactly with an integer Newton square root;
// each column's below-diagonal entries compute in a replicated par.

// cholL gives the generating factor.
func cholL(n, i, j int) int32 {
	switch {
	case i == j:
		return int32(i + 2)
	case j < i:
		return int32((i+j)%4 + 1)
	default:
		return 0
	}
}

// RefCholeskyA builds A = L·Lᵀ.
func RefCholeskyA(n int) []int32 {
	a := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += cholL(n, i, k) * cholL(n, j, k)
			}
			a[i*n+j] = s
		}
	}
	return a
}

// RefCholeskyL gives the expected factor.
func RefCholeskyL(n int) []int32 {
	l := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			l[i*n+j] = cholL(n, i, j)
		}
	}
	return l
}

// Cholesky builds the n×n decomposition program.
func Cholesky(n int) Workload {
	a := RefCholeskyA(n)
	var b strings.Builder
	fmt.Fprintf(&b, "def n = %d:\ndef nn = %d:\n", n, n*n)
	b.WriteString(`var a[nn], l[nn]:
proc isqrt(value x, var r) =
  var g:
  seq
    g := x
    while (g * g) > x
      g := (g + (x / g)) / 2
    r := g
proc colentry(value i, value j) =
  var s, k:
  seq
    s := a[(i*n)+j]
    k := 0
    while k < j
      seq
        s := s - (l[(i*n)+k] * l[(j*n)+k])
        k := k + 1
    l[(i*n)+j] := s / l[(j*n)+j]
seq
`)
	for i, v := range a {
		fmt.Fprintf(&b, "  a[%d] := %d\n", i, v)
	}
	b.WriteString(`  var j, s, k, d:
  seq
    j := 0
    while j < n
      seq
        s := a[(j*n)+j]
        k := 0
        while k < j
          seq
            s := s - (l[(j*n)+k] * l[(j*n)+k])
            k := k + 1
        isqrt(s, d)
        l[(j*n)+j] := d
        par i = [j+1 for (n-1)-j]
          colentry(i, j)
        j := j + 1
`)
	return Workload{
		Name:   fmt.Sprintf("cholesky-%dx%d", n, n),
		Source: b.String(),
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "l", RefCholeskyL(n))
		},
	}
}

// ---------------------------------------------------------------------------
// Congruence transformation (Table 6.5 / Figure 6.12): B = Pᵀ·A·P via two
// row-parallel matrix products with an intermediate T = Pᵀ·A.

func congA(t int) int32 { return int32(t%6 - 2) }
func congP(t int) int32 { return int32(t%4 - 1) }

// Congruence builds the n×n transformation program.
func Congruence(n int) Workload {
	src := fmt.Sprintf(`def n = %d:
def nn = %d:
var a[nn], p[nn], tm[nn], bm[nn]:
proc trow(value i) =
  var j, k, s:
  seq
    j := 0
    while j < n
      seq
        s := 0
        k := 0
        while k < n
          seq
            s := s + (p[(k*n)+i] * a[(k*n)+j])
            k := k + 1
        tm[(i*n)+j] := s
        j := j + 1
proc brow(value i) =
  var j, k, s:
  seq
    j := 0
    while j < n
      seq
        s := 0
        k := 0
        while k < n
          seq
            s := s + (tm[(i*n)+k] * p[(k*n)+j])
            k := k + 1
        bm[(i*n)+j] := s
        j := j + 1
seq
  par t = [0 for nn]
    seq
      a[t] := (t \ 6) - 2
      p[t] := (t \ 4) - 1
  par i = [0 for n]
    trow(i)
  par i = [0 for n]
    brow(i)
`, n, n*n)
	return Workload{
		Name:   fmt.Sprintf("congruence-%dx%d", n, n),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "bm", RefCongruence(n))
		},
	}
}

// RefCongruence computes the expected B.
func RefCongruence(n int) []int32 {
	a := make([]int32, n*n)
	p := make([]int32, n*n)
	for t := range a {
		a[t] = congA(t)
		p[t] = congP(t)
	}
	tm := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += p[k*n+i] * a[k*n+j]
			}
			tm[i*n+j] = s
		}
	}
	b := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for k := 0; k < n; k++ {
				s += tm[i*n+k] * p[k*n+j]
			}
			b[i*n+j] = s
		}
	}
	return b
}

// ---------------------------------------------------------------------------
// Figure 6.9: a binary-recursive procedure and its non-recursive
// counterpart, both summing a vector; the thesis uses the transformation to
// compare the recursive and iterative context-creation patterns.

// BinaryRecursiveSum builds the recursive form: sum(lo, n) splits in half.
func BinaryRecursiveSum(n int) Workload {
	src := fmt.Sprintf(`def n = %d:
var v[n], out[1]:
proc sum(value lo, value cnt, var s) =
  var a, b:
  if
    cnt = 1
      s := v[lo]
    cnt > 1
      seq
        sum(lo, cnt / 2, a)
        sum(lo + (cnt / 2), cnt - (cnt / 2), b)
        s := a + b
seq
  par t = [0 for n]
    v[t] := (t * t) - (3 * t)
  var r:
  seq
    sum(0, n, r)
    out[0] := r
`, n)
	return Workload{
		Name:   fmt.Sprintf("binsum-recursive-%d", n),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "out", []int32{refBinSum(n)})
		},
	}
}

// IterativeSum is the Figure 6.9 non-recursive counterpart.
func IterativeSum(n int) Workload {
	src := fmt.Sprintf(`def n = %d:
var v[n], out[1]:
seq
  par t = [0 for n]
    v[t] := (t * t) - (3 * t)
  var s, k:
  seq
    s := 0
    k := 0
    while k < n
      seq
        s := s + v[k]
        k := k + 1
    out[0] := s
`, n)
	return Workload{
		Name:   fmt.Sprintf("binsum-iterative-%d", n),
		Source: src,
		Check: func(art *compile.Artifact, data []int32) error {
			return checkVector(art, data, "out", []int32{refBinSum(n)})
		},
	}
}

func refBinSum(n int) int32 {
	var s int32
	for t := 0; t < n; t++ {
		s += int32(t*t - 3*t)
	}
	return s
}
