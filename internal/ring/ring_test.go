package ring

import "testing"

func mustNew(t *testing.T, pes, parts int) *Ring {
	t.Helper()
	r, err := New(pes, parts, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, DefaultParams()); err == nil {
		t.Error("zero PEs accepted")
	}
	if _, err := New(4, 3, DefaultParams()); err == nil {
		t.Error("uneven partitioning accepted")
	}
	if _, err := New(4, 5, DefaultParams()); err == nil {
		t.Error("more partitions than PEs accepted")
	}
	r := mustNew(t, 8, 4)
	if r.NumPEs() != 8 || r.Partitions() != 4 {
		t.Error("accessors broken")
	}
}

func TestPartitionAssignment(t *testing.T) {
	r := mustNew(t, 8, 4)
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for pe, p := range want {
		if got := r.Partition(pe); got != p {
			t.Errorf("Partition(%d) = %d, want %d", pe, got, p)
		}
	}
}

func TestHopsShorterDirection(t *testing.T) {
	r := mustNew(t, 8, 4)
	cases := []struct{ from, to, want int }{
		{0, 1, 0}, // same partition
		{0, 2, 1},
		{0, 4, 2}, // opposite side
		{0, 6, 1}, // shorter to go the other way
		{6, 0, 1},
	}
	for _, c := range cases {
		if got := r.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestIntraprocessorFree(t *testing.T) {
	r := mustNew(t, 4, 2)
	if got := r.Transfer(100, 2, 2); got != 100 {
		t.Errorf("self transfer arrives at %d", got)
	}
	if r.Stats.Messages != 1 {
		t.Error("message not counted")
	}
}

func TestTransferLatency(t *testing.T) {
	p := Params{BusCycles: 4, LinkCycles: 4}
	r, _ := New(8, 4, p)
	// Same partition: one bus occupancy.
	if got := r.Transfer(0, 0, 1); got != 4 {
		t.Errorf("same partition arrival = %d, want 4", got)
	}
	// One hop: bus + link + bus.
	r2, _ := New(8, 4, p)
	if got := r2.Transfer(0, 0, 2); got != 12 {
		t.Errorf("one hop arrival = %d, want 12", got)
	}
	// Two hops: bus + 2 links + bus.
	r3, _ := New(8, 4, p)
	if got := r3.Transfer(0, 0, 4); got != 16 {
		t.Errorf("two hop arrival = %d, want 16", got)
	}
}

func TestContentionSerializes(t *testing.T) {
	p := Params{BusCycles: 4, LinkCycles: 4}
	r, _ := New(4, 1, p) // single shared bus
	t1 := r.Transfer(0, 0, 1)
	t2 := r.Transfer(0, 2, 3)
	if t1 != 4 || t2 != 8 {
		t.Errorf("arrivals = %d, %d; want 4, 8", t1, t2)
	}
	if r.Stats.WaitCycles != 4 {
		t.Errorf("wait cycles = %d, want 4", r.Stats.WaitCycles)
	}
}

func TestNoFalseContentionAcrossPartitions(t *testing.T) {
	p := Params{BusCycles: 4, LinkCycles: 4}
	r, _ := New(8, 4, p)
	// Transfers inside disjoint partitions do not interfere.
	t1 := r.Transfer(0, 0, 1)
	t2 := r.Transfer(0, 2, 3)
	if t1 != 4 || t2 != 4 {
		t.Errorf("arrivals = %d, %d; want both 4", t1, t2)
	}
	if r.Stats.WaitCycles != 0 {
		t.Error("false contention")
	}
}

func TestFixedLatency(t *testing.T) {
	r, err := New(8, 4, Params{BusCycles: 4, LinkCycles: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.FixedLatency(0, 0); got != 0 {
		t.Errorf("self latency = %d", got)
	}
	if got := r.FixedLatency(0, 1); got != 4 {
		t.Errorf("same partition latency = %d", got)
	}
	if got := r.FixedLatency(0, 4); got != 4+8+4 {
		t.Errorf("two-hop latency = %d", got)
	}
	// FixedLatency must not disturb the resource clocks.
	if got := r.Transfer(0, 0, 1); got != 4 {
		t.Errorf("transfer after FixedLatency = %d", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		r := mustNew(t, 8, 4)
		var out []int64
		for i := 0; i < 50; i++ {
			out = append(out, r.Transfer(int64(i), i%8, (i*3)%8))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSinglePE(t *testing.T) {
	r := mustNew(t, 1, 1)
	if got := r.Transfer(5, 0, 0); got != 5 {
		t.Errorf("single PE transfer = %d", got)
	}
}
