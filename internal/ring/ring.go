// Package ring models the multiprocessor interconnect of §5.6: a shared,
// segmented (partitioned) bus configured in a ring topology (Figure 5.18).
// Each partition of processing elements shares one bus segment; adjacent
// partitions are joined by ring links. A message from one processing
// element to another occupies, in sequence, the source partition's bus, the
// ring links between the partitions (taking the shorter direction), and the
// destination partition's bus. Every segment and link is a serially shared
// resource: transfers queue behind one another, which models bus contention
// deterministically.
package ring

import (
	"fmt"

	"queuemachine/internal/trace"
)

// Params sets the interconnect timing.
type Params struct {
	// BusCycles is the occupancy of one partition bus per message.
	BusCycles int64
	// LinkCycles is the occupancy of one inter-partition ring link.
	LinkCycles int64
}

// DefaultParams matches the Chapter 6 simulations: the partitioned bus
// moves one word-sized message per cycle per segment (the partitioning
// exists precisely to multiply this bandwidth).
func DefaultParams() Params { return Params{BusCycles: 1, LinkCycles: 1} }

// Stats aggregates interconnect behaviour.
type Stats struct {
	Messages   int64
	LocalMsgs  int64 // messages within one partition
	HopsTotal  int64 // ring links traversed
	WaitCycles int64 // cycles spent queued behind other transfers
}

// Ring is the interconnect state.
type Ring struct {
	numPEs     int
	partitions int
	perPart    int
	params     Params
	busFree    []int64 // next free time per partition bus
	linkFree   []int64 // next free time per ring link i -> (i+1) mod n
	rec        trace.Recorder
	Stats      Stats
}

// SetRecorder installs the instrumentation recorder (nil disables). The
// recorder observes transfers; it never alters their timing.
func (r *Ring) SetRecorder(rec trace.Recorder) { r.rec = rec }

// New builds a ring of the given number of processing elements divided into
// the given number of partitions. The PE count must divide evenly; one
// partition degenerates to a single shared bus.
func New(numPEs, partitions int, params Params) (*Ring, error) {
	if numPEs < 1 {
		return nil, fmt.Errorf("ring: need at least one processing element")
	}
	if partitions < 1 || partitions > numPEs || numPEs%partitions != 0 {
		return nil, fmt.Errorf("ring: %d PEs cannot form %d equal partitions", numPEs, partitions)
	}
	return &Ring{
		numPEs:     numPEs,
		partitions: partitions,
		perPart:    numPEs / partitions,
		params:     params,
		busFree:    make([]int64, partitions),
		linkFree:   make([]int64, partitions),
	}, nil
}

// Partition reports the partition hosting a processing element.
func (r *Ring) Partition(peID int) int { return peID / r.perPart }

// Hops reports the number of ring links between two processing elements'
// partitions along the shorter direction.
func (r *Ring) Hops(from, to int) int {
	a, b := r.Partition(from), r.Partition(to)
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := r.partitions - d; alt < d {
		d = alt
	}
	return d
}

// Transfer routes one message from PE `from` to PE `to`, starting no
// earlier than `now`, and returns its arrival time. Resources along the
// path are occupied in sequence; the call mutates the ring's resource
// clocks, so transfers must be issued in simulation-time order.
func (r *Ring) Transfer(now int64, from, to int) int64 {
	r.Stats.Messages++
	if from == to {
		// Intraprocessor: handled by the local message processor
		// without touching the interconnect.
		return now
	}
	t := now
	var waited int64
	a, b := r.Partition(from), r.Partition(to)
	acquire := func(free *int64, occupancy int64) {
		if *free > t {
			waited += *free - t
			t = *free
		}
		t += occupancy
		*free = t
	}
	acquire(&r.busFree[a], r.params.BusCycles)
	if a != b {
		// Choose the shorter ring direction (ties clockwise).
		d := b - a
		if d < 0 {
			d += r.partitions
		}
		step := 1
		if d > r.partitions-d {
			step = -1
		}
		hops := min(d, r.partitions-d)
		part := a
		for h := 0; h < hops; h++ {
			link := part
			if step < 0 {
				link = (part - 1 + r.partitions) % r.partitions
			}
			acquire(&r.linkFree[link], r.params.LinkCycles)
			part = (part + step + r.partitions) % r.partitions
			r.Stats.HopsTotal++
		}
		acquire(&r.busFree[b], r.params.BusCycles)
	} else {
		r.Stats.LocalMsgs++
	}
	r.Stats.WaitCycles += waited
	if r.rec != nil {
		r.rec.RingTransfer(from, to, now, t, waited)
	}
	return t
}

// FixedLatency reports the contention-free transfer latency between two
// processing elements — used for the closed-form remote-memory cost model.
func (r *Ring) FixedLatency(from, to int) int64 {
	if from == to {
		return 0
	}
	lat := r.params.BusCycles
	if hops := r.Hops(from, to); hops > 0 {
		lat += int64(hops)*r.params.LinkCycles + r.params.BusCycles
	}
	return lat
}

// NumPEs reports the number of processing elements on the ring.
func (r *Ring) NumPEs() int { return r.numPEs }

// Partitions reports the number of bus partitions.
func (r *Ring) Partitions() int { return r.partitions }
