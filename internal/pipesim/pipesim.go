// Package pipesim models the execution of expression parse trees on stack
// and queue machines equipped with an s-stage pipelined ALU, reproducing the
// study of §3.4 (Tables 3.2 and 3.3) of the thesis.
//
// Both machines issue at most one instruction per cycle, in program order.
// An ALU operation issued at cycle t occupies the pipeline through cycle
// t+s-1 and its result becomes usable by an instruction issued at cycle t+s.
// A fetch takes one cycle and its result is usable the following cycle.
// The two experimental cases of the thesis are:
//
//   - Case 1 (non-overlapped fetch/execute): a fetch cannot be issued until
//     the ALU pipeline is empty, and fetches share the single issue slot
//     with ALU operations.
//   - Case 2 (overlapped fetch/execute): a fetch is issued immediately
//     through a dedicated operand-fetch stream, fully overlapped with ALU
//     issue. (The thesis notes this lets the stack machine perform its
//     pushes and pops out of order, which is unrealistically favorable to
//     the stack model — hence the queue advantage *decreases* with deeper
//     pipelines under this case.)
//
// The stack machine executes the post-order instruction sequence of the
// tree; because each result must return to the stack top before it can be
// consumed, dependent operations serialize on the full pipeline latency.
// The queue machine executes the level-order sequence, in which the
// operations of one tree level are mutually independent and can stream
// through the pipeline back to back.
package pipesim

import (
	"fmt"

	"queuemachine/internal/bintree"
)

// Case selects the fetch/execute overlap model of §3.4.
type Case int

const (
	// Case1 forbids issuing a fetch while an ALU operation is in flight.
	Case1 Case = 1
	// Case2 allows fetches to issue immediately.
	Case2 Case = 2
)

func (c Case) String() string {
	switch c {
	case Case1:
		return "case 1 (non-overlapped fetch)"
	case Case2:
		return "case 2 (overlapped fetch)"
	default:
		return fmt.Sprintf("case %d", int(c))
	}
}

// Cycles is the simulated completion time of one evaluation order.
type Cycles int

// run simulates the issue of the instruction sequence given by order, where
// operand ready times flow front-to-back through a FIFO (queue machine) or
// last-in-first-out (stack machine) discipline. The discipline does not
// actually matter for timing correctness here because both orders deliver
// each instruction exactly the ready times of its children; we therefore
// track ready times per tree node.
func run(order []*bintree.Node, stages int, c Case) Cycles {
	ready := make(map[*bintree.Node]int, len(order))
	issuePrev := 0  // cycle of the previously issued ALU (or case-1 fetch) instruction
	fetchPrev := 0  // cycle of the previously issued case-2 fetch
	aluBusyEnd := 0 // last cycle occupied by an ALU operation
	completion := 0 // completion time of the whole evaluation
	for _, n := range order {
		if n.Arity() == 0 {
			var issue int
			if c == Case2 {
				// Dedicated fetch stream: one fetch per cycle,
				// independent of the ALU.
				issue = fetchPrev + 1
				fetchPrev = issue
			} else {
				issue = issuePrev + 1
				if aluBusyEnd >= issue {
					issue = aluBusyEnd + 1
				}
				issuePrev = issue
			}
			ready[n] = issue + 1
		} else {
			issue := issuePrev + 1
			if t := ready[n.Left]; t > issue {
				issue = t
			}
			if n.Right != nil {
				if t := ready[n.Right]; t > issue {
					issue = t
				}
			}
			ready[n] = issue + stages
			if end := issue + stages - 1; end > aluBusyEnd {
				aluBusyEnd = end
			}
			issuePrev = issue
		}
		if ready[n] > completion {
			completion = ready[n]
		}
	}
	// The result is complete when the root's value is available; subtract
	// the initial idle cycle so that a single fetch costs one cycle.
	return Cycles(completion - 1)
}

// StackCycles reports the number of cycles a stack machine with an s-stage
// pipelined ALU needs to evaluate the tree (post-order instruction sequence).
func StackCycles(t *bintree.Node, stages int, c Case) Cycles {
	return run(bintree.PostOrder(t), stages, c)
}

// QueueCycles reports the number of cycles a queue machine with an s-stage
// pipelined ALU needs to evaluate the tree (level-order instruction
// sequence).
func QueueCycles(t *bintree.Node, stages int, c Case) Cycles {
	return run(bintree.LevelOrder(t), stages, c)
}

// Result aggregates one (node count, stage count, case) cell of Tables 3.2
// and 3.3.
type Result struct {
	Nodes       int
	Stages      int
	Case        Case
	Trees       int
	StackCycles int64
	QueueCycles int64
}

// SpeedUp is the thesis's figure of merit: the ratio of total stack-machine
// cycles to total queue-machine cycles over all enumerated trees.
func (r Result) SpeedUp() float64 {
	if r.QueueCycles == 0 {
		return 0
	}
	return float64(r.StackCycles) / float64(r.QueueCycles)
}

// Sweep evaluates every parse-tree shape with the given node count on both
// machines and returns the aggregate. The enumeration callback is supplied
// by the caller (normally exprgen.ForEach) to keep this package free of an
// enumeration dependency.
func Sweep(nodes, stages int, c Case, forEach func(n int, fn func(*bintree.Node) bool)) Result {
	r := Result{Nodes: nodes, Stages: stages, Case: c}
	forEach(nodes, func(t *bintree.Node) bool {
		r.Trees++
		r.StackCycles += int64(StackCycles(t, stages, c))
		r.QueueCycles += int64(QueueCycles(t, stages, c))
		return true
	})
	return r
}
