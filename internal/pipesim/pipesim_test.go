package pipesim

import (
	"strings"
	"testing"

	"queuemachine/internal/bintree"
	"queuemachine/internal/exprgen"
)

func TestSingleFetch(t *testing.T) {
	leaf := bintree.Leaf("x")
	for _, c := range []Case{Case1, Case2} {
		if got := StackCycles(leaf, 2, c); got != 1 {
			t.Errorf("%v: stack single fetch = %d cycles", c, got)
		}
		if got := QueueCycles(leaf, 2, c); got != 1 {
			t.Errorf("%v: queue single fetch = %d cycles", c, got)
		}
	}
}

// TestQueueNeverSlower verifies the thesis claim that the queue-based model
// "always meets or exceeds the performance of the stack-based machine" —
// for every enumerated tree, not just on average. The claim is made for
// pipelined ALUs; under case 2 with a degenerate one-stage ALU the
// free-running fetch stream can favor the stack order, so case 2 is checked
// from two stages up.
func TestQueueNeverSlower(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for stages := 1; stages <= 4; stages++ {
			for _, c := range []Case{Case1, Case2} {
				if c == Case2 && stages < 2 {
					continue
				}
				exprgen.ForEach(n, func(tr *bintree.Node) bool {
					s := StackCycles(tr, stages, c)
					q := QueueCycles(tr, stages, c)
					if q > s {
						t.Fatalf("n=%d stages=%d %v: queue %d > stack %d for %s",
							n, stages, c, q, s, shape(tr))
					}
					return true
				})
			}
		}
	}
}

func shape(t *bintree.Node) string {
	if t == nil {
		return "."
	}
	return "(" + shape(t.Left) + shape(t.Right) + ")"
}

// TestSpeedupKnownTree checks the hand-computed timing of the tree
// neg(x) * neg(y) with a two-stage ALU under case 1: the stack machine takes
// 8 cycles (fetch y waits for the first neg to drain, and mul waits for the
// second neg's full latency) while the queue machine takes 7 (both negations
// overlap in the pipeline).
func TestSpeedupKnownTree(t *testing.T) {
	tree := bintree.Binary("*",
		bintree.Unary("neg", bintree.Leaf("x")),
		bintree.Unary("neg", bintree.Leaf("y")))
	if got := StackCycles(tree, 2, Case1); got != 8 {
		t.Errorf("stack cycles = %d, want 8", got)
	}
	if got := QueueCycles(tree, 2, Case1); got != 7 {
		t.Errorf("queue cycles = %d, want 7", got)
	}
}

// TestUnpipelinedEquivalence: with a single-stage ALU there is no pipelining
// to exploit under case 1's serialized fetches, so stack and queue agree.
func TestUnpipelinedEquivalence(t *testing.T) {
	for n := 1; n <= 8; n++ {
		exprgen.ForEach(n, func(tr *bintree.Node) bool {
			s := StackCycles(tr, 1, Case1)
			q := QueueCycles(tr, 1, Case1)
			if s != q {
				t.Fatalf("n=%d: unpipelined stack %d != queue %d for %s", n, s, q, shape(tr))
			}
			return true
		})
	}
}

// TestTable32Shape reproduces the shape of Table 3.2: with a 2-stage ALU the
// mean speed-up is 1.00 for trees of up to 4 nodes, strictly above 1 from 5
// nodes on, non-decreasing with tree size, and case 2 dominates case 1 for
// the larger trees.
func TestTable32Shape(t *testing.T) {
	prev1, prev2 := 0.0, 0.0
	for n := 1; n <= 11; n++ {
		r1 := Sweep(n, 2, Case1, exprgen.ForEach)
		r2 := Sweep(n, 2, Case2, exprgen.ForEach)
		if r1.Trees != exprgen.Count(n) {
			t.Errorf("n=%d: swept %d trees, want %d", n, r1.Trees, exprgen.Count(n))
		}
		s1, s2 := r1.SpeedUp(), r2.SpeedUp()
		if n <= 4 && s1 != 1.0 {
			t.Errorf("n=%d case1: speedup %.3f, want 1.00", n, s1)
		}
		if n <= 3 && s2 != 1.0 {
			t.Errorf("n=%d case2: speedup %.3f, want 1.00", n, s2)
		}
		if n >= 5 && s1 <= 1.0 {
			t.Errorf("n=%d case1: speedup %.4f not > 1", n, s1)
		}
		if s1 < prev1-1e-9 {
			t.Errorf("n=%d case1: speedup %.4f decreased from %.4f", n, s1, prev1)
		}
		if n >= 7 && s2 < s1 {
			t.Errorf("n=%d: case2 speedup %.4f below case1 %.4f", n, s2, s1)
		}
		prev1, prev2 = s1, s2
	}
	_ = prev2
}

// TestTable33Shape reproduces the shape of Table 3.3 (11-node trees): under
// case 1 the queue advantage grows with pipeline depth; under case 2 it
// peaks at two stages.
func TestTable33Shape(t *testing.T) {
	var case1, case2 []float64
	for stages := 1; stages <= 5; stages++ {
		case1 = append(case1, Sweep(11, stages, Case1, exprgen.ForEach).SpeedUp())
		case2 = append(case2, Sweep(11, stages, Case2, exprgen.ForEach).SpeedUp())
	}
	for i := 1; i < len(case1); i++ {
		if case1[i] < case1[i-1]-1e-9 {
			t.Errorf("case1 speedup not non-decreasing with stages: %v", case1)
			break
		}
	}
	// Case 2 peaks at 2 stages.
	maxIdx := 0
	for i, v := range case2 {
		if v > case2[maxIdx] {
			maxIdx = i
		}
	}
	if maxIdx != 1 {
		t.Errorf("case2 speedup peaks at %d stages, want 2: %v", maxIdx+1, case2)
	}
}

func TestCaseString(t *testing.T) {
	if !strings.Contains(Case1.String(), "case 1") || !strings.Contains(Case2.String(), "case 2") {
		t.Error("Case.String malformed")
	}
	if got := Case(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown case string %q", got)
	}
}

func TestResultSpeedUpZero(t *testing.T) {
	if (Result{}).SpeedUp() != 0 {
		t.Error("zero result should report 0 speedup")
	}
}
