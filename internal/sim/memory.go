package sim

import (
	"fmt"

	"queuemachine/internal/isa"
)

// replicatedMemory implements pe.MemoryBus for the multiprocessor: the
// static data segment is replicated in every processing element's local
// memory under the multiple-readers/single-writer array discipline of §4.6.
// Reads are therefore always local; a write updates every replica, which
// costs one bus broadcast. Because the replicas are always identical, a
// single backing array represents them all.
type replicatedMemory struct {
	words      []int32
	storeExtra int64
	// Reads and Writes count data-memory traffic for the statistics
	// tables.
	Reads, Writes int64
}

func newReplicatedMemory(words int, storeExtra int64) *replicatedMemory {
	return &replicatedMemory{words: make([]int32, words), storeExtra: storeExtra}
}

func (m *replicatedMemory) load(obj *isa.Object) {
	for addr, v := range obj.DataInit {
		if addr >= 0 && addr < len(m.words) {
			m.words[addr] = v
		}
	}
}

func (m *replicatedMemory) wordIndex(byteAddr int32, aligned bool) (int, error) {
	if byteAddr < 0 {
		return 0, fmt.Errorf("sim: negative address %d", byteAddr)
	}
	if aligned && byteAddr%isa.WordSize != 0 {
		return 0, fmt.Errorf("sim: unaligned word address %d", byteAddr)
	}
	idx := int(byteAddr) / isa.WordSize
	if idx >= len(m.words) {
		return 0, fmt.Errorf("sim: address %d beyond data segment of %d words", byteAddr, len(m.words))
	}
	return idx, nil
}

func (m *replicatedMemory) FetchWord(_ int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, 0, err
	}
	m.Reads++
	return m.words[idx], 0, nil
}

func (m *replicatedMemory) StoreWord(_ int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, err
	}
	m.Writes++
	m.words[idx] = val
	return int(m.storeExtra), nil
}

func (m *replicatedMemory) FetchByte(_ int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, 0, err
	}
	m.Reads++
	shift := uint(byteAddr%isa.WordSize) * 8
	return int32(uint32(m.words[idx]) >> shift & 0xff), 0, nil
}

func (m *replicatedMemory) StoreByte(_ int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, err
	}
	m.Writes++
	shift := uint(byteAddr%isa.WordSize) * 8
	mask := uint32(0xff) << shift
	m.words[idx] = int32(uint32(m.words[idx])&^mask | uint32(val&0xff)<<shift)
	return int(m.storeExtra), nil
}
