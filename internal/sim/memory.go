package sim

import (
	"fmt"

	"queuemachine/internal/isa"
)

// replicatedMemory implements pe.MemoryBus for the multiprocessor: the
// static data segment is replicated in every processing element's local
// memory under the multiple-readers/single-writer array discipline of §4.6.
// Reads are therefore always local; a write updates every replica, which
// costs one bus broadcast. Because the replicas are always identical, a
// single backing array represents them all.
type replicatedMemory struct {
	words      []int32
	storeExtra int64
	// reads and writes count data-memory traffic for the statistics
	// tables, sharded per processing element: under the host-parallel
	// engine several worker goroutines execute memory instructions
	// concurrently, so a shared counter would be a data race. Reads() and
	// Writes() sum the shards.
	reads, writes []int64
}

func newReplicatedMemory(words, numPEs int, storeExtra int64) *replicatedMemory {
	return &replicatedMemory{
		words:      make([]int32, words),
		storeExtra: storeExtra,
		reads:      make([]int64, numPEs),
		writes:     make([]int64, numPEs),
	}
}

// Reads and Writes total the per-element data-memory traffic counters.
func (m *replicatedMemory) Reads() int64 {
	var n int64
	for _, v := range m.reads {
		n += v
	}
	return n
}

func (m *replicatedMemory) Writes() int64 {
	var n int64
	for _, v := range m.writes {
		n += v
	}
	return n
}

func (m *replicatedMemory) load(obj *isa.Object) {
	for addr, v := range obj.DataInit {
		if addr >= 0 && addr < len(m.words) {
			m.words[addr] = v
		}
	}
}

func (m *replicatedMemory) wordIndex(byteAddr int32, aligned bool) (int, error) {
	if byteAddr < 0 {
		return 0, fmt.Errorf("sim: negative address %d", byteAddr)
	}
	if aligned && byteAddr%isa.WordSize != 0 {
		return 0, fmt.Errorf("sim: unaligned word address %d", byteAddr)
	}
	idx := int(byteAddr) / isa.WordSize
	if idx >= len(m.words) {
		return 0, fmt.Errorf("sim: address %d beyond data segment of %d words", byteAddr, len(m.words))
	}
	return idx, nil
}

func (m *replicatedMemory) FetchWord(peID int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, 0, err
	}
	m.reads[peID]++
	return m.words[idx], 0, nil
}

func (m *replicatedMemory) StoreWord(peID int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, true)
	if err != nil {
		return 0, err
	}
	m.writes[peID]++
	m.words[idx] = val
	return int(m.storeExtra), nil
}

func (m *replicatedMemory) FetchByte(peID int, byteAddr int32) (int32, int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, 0, err
	}
	m.reads[peID]++
	shift := uint(byteAddr%isa.WordSize) * 8
	return int32(uint32(m.words[idx]) >> shift & 0xff), 0, nil
}

func (m *replicatedMemory) StoreByte(peID int, byteAddr, val int32) (int, error) {
	idx, err := m.wordIndex(byteAddr, false)
	if err != nil {
		return 0, err
	}
	m.writes[peID]++
	shift := uint(byteAddr%isa.WordSize) * 8
	mask := uint32(0xff) << shift
	m.words[idx] = int32(uint32(m.words[idx])&^mask | uint32(val&0xff)<<shift)
	return int(m.storeExtra), nil
}
