package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

// infiniteLoop spins forever; only a watchdog or a context can stop it.
const infiniteLoop = `
.graph main queue=32
lp:
	bne+0 #1,@lp
	trap #0,#0
`

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, assemble(t, infiniteLoop), 1, DefaultParams())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, assemble(t, infiniteLoop), 1, DefaultParams())
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunContext did not abort on deadline")
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	// A context that never fires must not perturb a normal run.
	res, err := RunContext(context.Background(), assemble(t, singleContext), 1, DefaultParams())
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	ref := run(t, singleContext, 1)
	if res.Cycles != ref.Cycles || res.Instructions != ref.Instructions {
		t.Errorf("RunContext stats (%d cycles, %d instr) differ from Run (%d, %d)",
			res.Cycles, res.Instructions, ref.Cycles, ref.Instructions)
	}
}
