package sim

import (
	"fmt"
	"strings"
	"testing"

	"queuemachine/internal/asm"
	"queuemachine/internal/isa"
)

func assemble(t *testing.T, src string) *isa.Object {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

func run(t *testing.T, src string, numPEs int) *Result {
	t.Helper()
	res, err := Run(assemble(t, src), numPEs, DefaultParams())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

const singleContext = `
.data 6
.init 0 7
.init 1 3
.init 2 20
.init 3 6
.init 4 2
.graph main queue=32
	fetch #8 :r0
	fetch #12 :r1
	fetch #0 :r2
	fetch #4 :r3
	minus++ r0,r1 :r2
	fetch #16 :r3
	mul++ r0,r1 :r2
	div++ r0,r1 :r1
	plus++ r0,r1 :r0
	store #20,r0
	trap #0,#0
`

func TestSingleContextProgram(t *testing.T) {
	res := run(t, singleContext, 1)
	if got := res.Data[5]; got != 7*3+(20-6)/2 {
		t.Errorf("result = %d", got)
	}
	if res.Cycles <= 0 || res.Instructions != 11 {
		t.Errorf("cycles=%d instructions=%d", res.Cycles, res.Instructions)
	}
	if res.Kernel.ContextsCreated != 1 || res.Kernel.ContextsFinished != 1 {
		t.Errorf("kernel stats = %+v", res.Kernel)
	}
}

const producerConsumer = `
.data 1
.entry main
.graph main queue=32
	trap #1,@worker :r17,r18
	send r17,#21
	recv r18 :r0
	store+1 #0,r0
	trap #0,#0
.graph worker queue=32
	recv cin :r0
	plus+1 r0,r0 :r0
	send+1 cout,r0
	trap #0,#0
`

func TestProducerConsumer(t *testing.T) {
	for _, pes := range []int{1, 2, 4} {
		res := run(t, producerConsumer, pes)
		if got := res.Data[0]; got != 42 {
			t.Errorf("%d PEs: result = %d, want 42", pes, got)
		}
		if res.Kernel.ContextsCreated != 2 || res.Kernel.RForks != 1 {
			t.Errorf("%d PEs: kernel = %+v", pes, res.Kernel)
		}
		if res.Cache.Rendezvous != 2 {
			t.Errorf("%d PEs: rendezvous = %d", pes, res.Cache.Rendezvous)
		}
	}
}

// fanOut builds a program where the main context forks `workers` contexts,
// each summing 1..n, and accumulates their results.
func fanOut(workers, n int) string {
	var b strings.Builder
	b.WriteString(".data 1\n.entry main\n.graph main queue=64\n")
	// Fork phase first (highest priority per the §4.7 heuristic).
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&b, "\ttrap #1,@worker :r%d,r%d\n", 17+w*2, 18+w*2)
	}
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&b, "\tsend r%d,#%d\n", 17+w*2, n)
	}
	b.WriteString("\tplus #0,#0 :r25\n")
	for w := 0; w < workers; w++ {
		fmt.Fprintf(&b, "\trecv r%d :r0\n", 18+w*2)
		b.WriteString("\tplus+1 r25,r0 :r25\n")
	}
	b.WriteString("\tstore #0,r25\n\ttrap #0,#0\n")
	b.WriteString(`.graph worker queue=32
	recv cin :r17
	plus #0,#0 :r19
lp:
	plus r19,r17 :r19
	minus r17,#1 :r17
	gt r17,#0 :r0
	bne+1 r0,@lp
	send cout,r19
	trap #0,#0
`)
	return b.String()
}

func TestFanOutCorrectAcrossPEs(t *testing.T) {
	const workers, n = 4, 50
	want := int32(workers * n * (n + 1) / 2)
	var base int64
	for _, pes := range []int{1, 2, 4, 8} {
		res := run(t, fanOut(workers, n), pes)
		if got := res.Data[0]; got != want {
			t.Errorf("%d PEs: result = %d, want %d", pes, got, want)
		}
		if pes == 1 {
			base = res.Cycles
		}
	}
	if base == 0 {
		t.Fatal("no baseline")
	}
}

// TestParallelSpeedup checks that compute-heavy fan-out actually runs
// faster on more processing elements.
func TestParallelSpeedup(t *testing.T) {
	src := fanOut(4, 400)
	res1 := run(t, src, 1)
	res4 := run(t, src, 4)
	if res4.Cycles >= res1.Cycles {
		t.Errorf("no speedup: 1 PE %d cycles, 4 PEs %d cycles", res1.Cycles, res4.Cycles)
	}
	speedup := float64(res1.Cycles) / float64(res4.Cycles)
	if speedup < 2.0 {
		t.Errorf("speedup %.2f too low for 4 independent workers", speedup)
	}
}

func TestDeterminism(t *testing.T) {
	src := fanOut(4, 100)
	r1 := run(t, src, 4)
	r2 := run(t, src, 4)
	if r1.Cycles != r2.Cycles || r1.Instructions != r2.Instructions {
		t.Errorf("runs diverge: %d/%d vs %d/%d cycles/instructions",
			r1.Cycles, r1.Instructions, r2.Cycles, r2.Instructions)
	}
	for i := range r1.Data {
		if r1.Data[i] != r2.Data[i] {
			t.Fatalf("data diverges at %d", i)
		}
	}
}

const deadlocked = `
.graph main queue=32
	trap #3,#0 :r17
	recv r17 :r0
	trap #0,#0
`

func TestDeadlockDetected(t *testing.T) {
	_, err := Run(assemble(t, deadlocked), 2, DefaultParams())
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("want deadlock error, got %v", err)
	}
	if err != nil && !strings.Contains(err.Error(), "blocked-recv") {
		t.Errorf("deadlock report lacks context state: %v", err)
	}
}

const waitProgram = `
.data 1
.graph main queue=32
	trap #4,#0 :r17      ; now
	plus r17,#50 :r17
	trap #5,r17 :r0      ; wait until now+50
	trap #4,#0 :r18      ; now again
	store+1 #0,r18
	trap #0,#0
`

func TestWaitAndNow(t *testing.T) {
	res := run(t, waitProgram, 1)
	if res.Data[0] < 50 {
		t.Errorf("time after wait = %d, want >= 50", res.Data[0])
	}
}

func TestIFork(t *testing.T) {
	// main rforks a relay; the relay iforks a child that inherits the
	// relay's out channel and answers main directly.
	src := `
.data 1
.entry main
.graph main queue=32
	trap #1,@relay :r17,r18
	send r17,#5
	recv r18 :r0
	store+1 #0,r0
	trap #0,#0
.graph relay queue=32
	recv cin :r17
	trap #2,@leaf :r19
	send r19,r17
	trap #0,#0
.graph leaf queue=32
	recv cin :r0
	mul+1 r0,#3 :r0
	send+1 cout,r0
	trap #0,#0
`
	res := run(t, src, 2)
	if got := res.Data[0]; got != 15 {
		t.Errorf("result = %d, want 15", got)
	}
	if res.Kernel.IForks != 1 || res.Kernel.RForks != 1 {
		t.Errorf("forks = %+v", res.Kernel)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(assemble(t, singleContext), 0, DefaultParams()); err == nil {
		t.Error("zero PEs accepted")
	}
	// Unknown kernel entry point.
	bad := `
.graph main queue=32
	trap #9,#0
	trap #0,#0
`
	if _, err := Run(assemble(t, bad), 1, DefaultParams()); err == nil {
		t.Error("unknown trap accepted")
	}
	// Fork of an out-of-range graph.
	badFork := `
.graph main queue=32
	trap #1,#7 :r17,r18
	trap #0,#0
`
	if _, err := Run(assemble(t, badFork), 1, DefaultParams()); err == nil {
		t.Error("wild fork accepted")
	}
	// Invalid channel.
	badChan := `
.graph main queue=32
	send #0,#1
	trap #0,#0
`
	if _, err := Run(assemble(t, badChan), 1, DefaultParams()); err == nil {
		t.Error("channel 0 accepted")
	}
}

func TestWatchdog(t *testing.T) {
	loop := `
.graph main queue=32
lp:
	bne+0 #1,@lp
	trap #0,#0
`
	p := DefaultParams()
	p.MaxInstructions = 1000
	if _, err := Run(assemble(t, loop), 1, p); err == nil || !strings.Contains(err.Error(), "instructions") {
		t.Errorf("watchdog: %v", err)
	}
	p = DefaultParams()
	p.MaxCycles = 500
	if _, err := Run(assemble(t, loop), 1, p); err == nil || !strings.Contains(err.Error(), "cycles") {
		t.Errorf("cycle watchdog: %v", err)
	}
}

func TestUtilization(t *testing.T) {
	res := run(t, fanOut(4, 200), 2)
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %f", u)
	}
	if (&Result{}).Utilization() != 0 {
		t.Error("empty utilization")
	}
}

// TestSwitchAccounting checks that a single-context run never pays a
// roll-out switch and that multi-context single-PE runs do.
func TestSwitchAccounting(t *testing.T) {
	res := run(t, singleContext, 1)
	if res.Switches != 1 { // initial dispatch only
		t.Errorf("switches = %d, want 1", res.Switches)
	}
	res = run(t, fanOut(4, 50), 1)
	if res.Switches < 5 {
		t.Errorf("switches = %d, want several (5 contexts on one PE)", res.Switches)
	}
}

const byteProgram = `
.data 2
.graph main queue=32
	storb #1,#171
	fchb #1 :r0
	store+1 #4,r0
	trap #0,#0
`

func TestByteMemoryOps(t *testing.T) {
	res := run(t, byteProgram, 1)
	if res.Data[1] != 171 {
		t.Errorf("fetched byte = %d", res.Data[1])
	}
	if res.Data[0] != 171<<8 {
		t.Errorf("packed word = %#x", res.Data[0])
	}
	if res.MemReads == 0 || res.MemWrites == 0 {
		t.Error("memory traffic not counted")
	}
}

func TestAvgQueueLength(t *testing.T) {
	res := run(t, singleContext, 1)
	if got := res.AvgQueueLength(); got <= 0 || got > 32 {
		t.Errorf("avg queue length = %f", got)
	}
	if (&Result{}).AvgQueueLength() != 0 {
		t.Error("empty result queue length")
	}
}

func TestMemoryFaults(t *testing.T) {
	cases := []string{
		".graph main queue=32\n\tstorb #999,#1\n\ttrap #0,#0\n",
		".graph main queue=32\n\tfchb #-1 :r0\n\ttrap #0,#0\n",
		".graph main queue=32\n\tfetch #2 :r0\n\ttrap #0,#0\n", // unaligned
	}
	for i, src := range cases {
		if _, err := Run(assemble(t, src), 1, DefaultParams()); err == nil {
			t.Errorf("case %d: fault not detected", i)
		}
	}
}
