package sim

import (
	"fmt"
	"strings"
)

// DeadlockError reports that the event queue drained while contexts were
// still live: every remaining context is blocked on a rendezvous that can
// never complete. Snapshot carries the kernel's per-context state lines so
// callers (and CI) can print a diagnosis; qsim uses errors.As on this type
// to pick a distinct exit code.
type DeadlockError struct {
	// Cycle is the simulated time at which the machine stalled.
	Cycle int64
	// Live is the number of contexts still allocated.
	Live int
	// Snapshot lists the live contexts and their blocking states.
	Snapshot []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d with %d live contexts:\n%s",
		e.Cycle, e.Live, strings.Join(e.Snapshot, "\n"))
}

// ConfigError reports an invalid simulation configuration: a Params field
// (or the machine size) whose value cannot be simulated. Callers that
// surface configuration over a wire (qmd) use errors.As on this type to
// answer with a client error rather than a simulation failure.
type ConfigError struct {
	// Field names the offending configuration knob ("HostParallel", "pes").
	Field string
	// Reason explains the rejection in one sentence.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("sim: invalid %s: %s", e.Field, e.Reason)
}
