// Package sim is the queue machine multiprocessor simulator of Chapter 6: a
// deterministic discrete-event simulation of N queue-machine processing
// elements, each with a message processor and channel cache, joined by a
// partitioned ring bus and managed by the multiprocessing kernel. It
// executes object programs produced by the OCCAM compiler (or the
// assembler) and reports the run statistics of Tables 6.2–6.5.
package sim

import (
	"queuemachine/internal/pe"
	"queuemachine/internal/ring"
	"queuemachine/internal/sched"
)

// Params collects every architectural timing constant of the simulated
// system. The defaults model the thesis's three-stage-pipeline processing
// element with a lean software kernel and dedicated message processors.
type Params struct {
	PE   pe.Params
	Ring ring.Params
	// Partitions is the number of ring bus partitions; 0 selects the
	// largest legal count with two processing elements per partition
	// (the Figure 5.18 configuration).
	Partitions int
	// Scheduler selects the kernel scheduling policy (context placement on
	// fork, ready-queue ordering on dispatch). The zero value is the
	// thesis baseline: least-loaded placement with per-element FIFO
	// dispatch. Per-run configuration — there is no process-global
	// scheduling state, so concurrent runs with different policies never
	// interfere.
	Scheduler sched.Config
	// MsgCacheEntries is the per-message-processor channel cache size.
	MsgCacheEntries int
	// MPCycles is the message processor's base cost per operation.
	MPCycles int64
	// MPMissPenalty is the extra cost when the channel entry must be
	// reloaded from (or spilled to) memory.
	MPMissPenalty int64
	// ForkCycles is the kernel's context-creation service time beyond
	// the trap overhead.
	ForkCycles int64
	// Resume is the cost of resuming the context whose window registers
	// are still loaded (no roll-out was needed).
	Resume int64
	// StoreBroadcast is the extra cost of a data-memory write: the data
	// segment is replicated in every processing element's local memory
	// under the multiple-readers/single-writer discipline (§4.6), so
	// reads are local and writes update every copy over the bus.
	StoreBroadcast int64
	// MaxCycles and MaxInstructions bound runaway simulations.
	MaxCycles       int64
	MaxInstructions int64
	// KeepData copies the final data segment into Result.Data. On by
	// default (tests and examples verify computed results against it);
	// services that never read the segment turn it off to skip an
	// O(DataWords) copy per request.
	KeepData bool
	// NoBatch disables straight-line step batching, forcing the event loop
	// back to one heap round-trip per instruction. Results are identical
	// either way — the flag exists purely as the differential-testing
	// oracle for the batching equivalence property test and as a
	// diagnostic escape hatch; it is never faster.
	NoBatch bool
}

// DefaultParams is the configuration used for all Chapter 6 experiments.
func DefaultParams() Params {
	return Params{
		PE:              pe.DefaultParams(),
		Ring:            ring.DefaultParams(),
		MsgCacheEntries: 64,
		MPCycles:        3,
		MPMissPenalty:   8,
		ForkCycles:      20,
		Resume:          2,
		StoreBroadcast:  2,
		MaxCycles:       2_000_000_000,
		MaxInstructions: 500_000_000,
		KeepData:        true,
	}
}

// defaultPartitions picks the Figure 5.18 layout: two processing elements
// per partition where the count divides evenly, otherwise the largest
// divisor that keeps at least two per partition (a single shared bus for
// small or prime machine sizes).
func defaultPartitions(numPEs int) int {
	if numPEs < 4 {
		return 1
	}
	for p := numPEs / 2; p > 1; p-- {
		if numPEs%p == 0 {
			return p
		}
	}
	return 1
}
