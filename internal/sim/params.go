// Package sim is the queue machine multiprocessor simulator of Chapter 6: a
// deterministic discrete-event simulation of N queue-machine processing
// elements, each with a message processor and channel cache, joined by a
// partitioned ring bus and managed by the multiprocessing kernel. It
// executes object programs produced by the OCCAM compiler (or the
// assembler) and reports the run statistics of Tables 6.2–6.5.
package sim

import (
	"fmt"
	"runtime"

	"queuemachine/internal/pe"
	"queuemachine/internal/ring"
	"queuemachine/internal/sched"
)

// Params collects every architectural timing constant of the simulated
// system. The defaults model the thesis's three-stage-pipeline processing
// element with a lean software kernel and dedicated message processors.
type Params struct {
	PE   pe.Params
	Ring ring.Params
	// Partitions is the number of ring bus partitions; 0 selects the
	// largest legal count with two processing elements per partition
	// (the Figure 5.18 configuration).
	Partitions int
	// Scheduler selects the kernel scheduling policy (context placement on
	// fork, ready-queue ordering on dispatch). The zero value is the
	// thesis baseline: least-loaded placement with per-element FIFO
	// dispatch. Per-run configuration — there is no process-global
	// scheduling state, so concurrent runs with different policies never
	// interfere.
	Scheduler sched.Config
	// MsgCacheEntries is the per-message-processor channel cache size.
	MsgCacheEntries int
	// MPCycles is the message processor's base cost per operation.
	MPCycles int64
	// MPMissPenalty is the extra cost when the channel entry must be
	// reloaded from (or spilled to) memory.
	MPMissPenalty int64
	// ForkCycles is the kernel's context-creation service time beyond
	// the trap overhead.
	ForkCycles int64
	// Resume is the cost of resuming the context whose window registers
	// are still loaded (no roll-out was needed).
	Resume int64
	// StoreBroadcast is the extra cost of a data-memory write: the data
	// segment is replicated in every processing element's local memory
	// under the multiple-readers/single-writer discipline (§4.6), so
	// reads are local and writes update every copy over the bus.
	StoreBroadcast int64
	// MaxCycles and MaxInstructions bound runaway simulations.
	MaxCycles       int64
	MaxInstructions int64
	// KeepData copies the final data segment into Result.Data. On by
	// default (tests and examples verify computed results against it);
	// services that never read the segment turn it off to skip an
	// O(DataWords) copy per request.
	KeepData bool
	// NoBatch disables straight-line step batching, forcing the event loop
	// back to one heap round-trip per instruction. Results are identical
	// either way — the flag exists purely as the differential-testing
	// oracle for the batching equivalence property test and as a
	// diagnostic escape hatch; it is never faster.
	NoBatch bool
	// HostParallel selects the host-parallel execution engine and its
	// worker-goroutine count. 0 (the default) keeps the sequential engine
	// unchanged; a positive count shards the processing elements across
	// that many workers along ring-partition boundaries (a ConfigError if
	// the count exceeds the partition count); a negative value selects
	// min(partitions, GOMAXPROCS) automatically. Simulated results are
	// bit-identical to the sequential engine at every worker count — the
	// sequential engine is the differential oracle, exactly like NoBatch.
	HostParallel int
}

// DefaultParams is the configuration used for all Chapter 6 experiments.
func DefaultParams() Params {
	return Params{
		PE:              pe.DefaultParams(),
		Ring:            ring.DefaultParams(),
		MsgCacheEntries: 64,
		MPCycles:        3,
		MPMissPenalty:   8,
		ForkCycles:      20,
		Resume:          2,
		StoreBroadcast:  2,
		MaxCycles:       2_000_000_000,
		MaxInstructions: 500_000_000,
		KeepData:        true,
	}
}

// MaxPEs bounds the simulated machine size. The Chapter 6 experiments stop
// at 8 processing elements; the host-parallel engine makes 64–256-element
// scaling sweeps affordable, and the cap leaves generous headroom beyond
// them while still rejecting nonsense sizes with a structured error before
// any per-element allocation happens.
const MaxPEs = 1024

// defaultPartitions picks the Figure 5.18 layout: two processing elements
// per partition where the count divides evenly, otherwise the largest
// divisor that keeps at least two per partition (a single shared bus for
// small or prime machine sizes).
func defaultPartitions(numPEs int) int {
	if numPEs < 4 {
		return 1
	}
	for p := numPEs / 2; p > 1; p-- {
		if numPEs%p == 0 {
			return p
		}
	}
	return 1
}

// PartitionCount reports the ring partition count a machine of numPEs
// elements runs with under p: the explicit Partitions value, or the Figure
// 5.18 default when it is zero. It is the upper bound on HostParallel
// worker counts.
func (p Params) PartitionCount(numPEs int) int {
	if p.Partitions != 0 {
		return p.Partitions
	}
	return defaultPartitions(numPEs)
}

// HostWorkers resolves the effective host-parallel worker count for a
// machine of numPEs elements: 0 keeps the sequential engine; a negative
// value selects min(partitions, GOMAXPROCS); a positive value is validated
// against the partition count (a worker owns whole ring partitions, so
// workers beyond the partition count could never receive a shard).
func (p Params) HostWorkers(numPEs int) (int, error) {
	if p.HostParallel == 0 {
		return 0, nil
	}
	parts := p.PartitionCount(numPEs)
	if p.HostParallel < 0 {
		return min(parts, runtime.GOMAXPROCS(0)), nil
	}
	if p.HostParallel > parts {
		return 0, &ConfigError{Field: "HostParallel", Reason: fmt.Sprintf(
			"%d workers exceed the %d ring partitions of a %d-element machine (workers own whole partitions)",
			p.HostParallel, parts, numPEs)}
	}
	return p.HostParallel, nil
}
