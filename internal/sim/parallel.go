package sim

// Host-parallel execution engine: run-to-block lookahead with sequential
// commit.
//
// A literal parallel discrete-event scheme — partitioning the event queue
// across workers and synchronising on the ring's inter-partition latency —
// cannot be bit-exact here: the kernel's least-loaded placement, the global
// context and channel counters (a channel's home element is ch % numPEs),
// the ring's shared contention clocks, and the queue's seq tie-breaks all
// couple every partition to every other at zero lookahead. Instead the
// engine exploits the property the batching oracle (Params.NoBatch) already
// proves: a dispatched context runs deterministically until its own
// blocking action, regardless of what the rest of the machine does in the
// meantime. Worker goroutines therefore pre-execute each armed context
// through its private machine into a per-element entry buffer ("fill
// pass"), while a single commit loop — this file's run() — pops events in
// exactly the sequential (time, seq) order and replays the recorded entries
// for all global bookkeeping: instruction counts, watchdogs, recorder
// hooks, sampling, kernel, caches, and ring. Everything that couples
// elements happens on the commit goroutine, in the sequential order, so the
// simulated results are bit-identical by construction; the workers only
// move the per-instruction execute work off the critical path.
//
// Memory safety follows the simulated machine's own synchronisation: any
// simulated-time ordering between conflicting data accesses of two
// contexts is established by a rendezvous or fork chain, and every such
// chain passes through the commit loop, which receives the first worker's
// pass (channel receive in sync) before arming the dependent context
// (channel send in enqueue). The host happens-before relation therefore
// contains the simulated one, and a race-free simulated program executes
// race-free on the host at every worker count.

import (
	"fmt"
	"sync"

	"queuemachine/internal/pe"
	"queuemachine/internal/trace"
)

// HostStats counts the host-parallel engine's own execution events. Unlike
// every other Result field it describes the simulator, not the simulated
// machine: simulated statistics are bit-identical across engines and worker
// counts, while these vary with the host's scheduling.
type HostStats struct {
	// Workers is the resolved worker-goroutine count; zero means the run
	// used the sequential engine.
	Workers int
	// Epochs counts lookahead fill passes queued to workers (one per arm
	// or window extension).
	Epochs int64
	// Barriers counts fill passes the commit loop had to block on — the
	// lookahead was not ready when the commit order needed it.
	Barriers int64
	// CrossMessages counts ring transfers between processing elements
	// owned by different workers.
	CrossMessages int64
}

// hostBufInit and hostBufMax bound a job's recorded-lookahead window in
// instructions. The window starts small (most contexts block within a few
// dozen instructions), grows fourfold whenever the commit loop finds it too
// short for the batching horizon, and saturates at hostBufMax — beyond
// that the commit loop replays what was recorded and continues inline,
// which is exactly the sequential engine's loop body.
const (
	hostBufInit = 1 << 10
	hostBufMax  = 1 << 16
)

// hostEntry records one pre-executed instruction: everything the commit
// loop needs to replay the sequential engine's bookkeeping — the Instr
// hook (graph, pc, stall), the sampling mirror (cycles, queue), and the
// simulated clock (cycles) — without touching the machine.
type hostEntry struct {
	cycles int32
	queue  int32
	stall  int32
	graph  int32
	pc     int32
}

// hostJob is one processing element's lookahead state. The commit loop and
// the owning worker alternate ownership: enqueue hands the job to the
// worker (channel send), sync takes it back (channel receive); between
// those edges exactly one side touches it.
type hostJob struct {
	c         *pe.Context
	buf       []hostEntry
	consumed  int   // entries already replayed by the commit loop
	summed    int   // entries folded into remCycles
	remCycles int64 // total cycles of unconsumed entries
	capacity  int   // current pass target: fill until len(buf) reaches it
	done      bool  // context reached a blocking action; final is valid
	final     pe.Outcome
	err       error
	armed     bool
	queued    bool          // a fill pass is queued or running
	ready     chan struct{} // worker publishes pass completion (capacity 1)
}

// hostMirror is the commit loop's copy of a processing element's sampled
// machine counters. Workers run machines ahead of simulated time, so
// emitSample cannot read machine Stats under this engine; the mirror
// advances exactly as instructions commit.
type hostMirror struct {
	cycles int64
	instrs int64
	qsum   int64
}

// parEngine is the host-parallel engine of one System.
type parEngine struct {
	s      *System
	stats  HostStats
	owner  []int // processing element -> worker index
	jobs   []hostJob
	mirror []hostMirror
	workCh []chan int // per-worker queue of processing-element ids
	wg     sync.WaitGroup
}

func newParEngine(s *System, workers int) *parEngine {
	p := &parEngine{
		s:      s,
		owner:  make([]int, s.numPEs),
		jobs:   make([]hostJob, s.numPEs),
		mirror: make([]hostMirror, s.numPEs),
		workCh: make([]chan int, workers),
	}
	p.stats.Workers = workers
	// Shard whole ring partitions onto workers: elements of one partition
	// share a bus segment (and hence communication locality), so keeping a
	// partition on one worker keeps the cross-worker message count — and
	// the CrossMessages counter — meaningful.
	parts := s.bus.Partitions()
	for id := 0; id < s.numPEs; id++ {
		p.owner[id] = s.bus.Partition(id) * workers / parts
	}
	for i := range p.jobs {
		p.jobs[i].ready = make(chan struct{}, 1)
	}
	for w := range p.workCh {
		// Buffered to the element count: at most one queued pass per
		// element, so enqueue never blocks the commit loop.
		p.workCh[w] = make(chan int, s.numPEs)
	}
	return p
}

// run is the commit loop: the sequential event loop of System.runLoop with
// evStep handling replaced by recorded-entry replay. Workers live exactly
// as long as this call.
func (p *parEngine) run() {
	s := p.s
	for w := range p.workCh {
		p.wg.Add(1)
		go p.worker(p.workCh[w])
	}
	defer func() {
		for _, ch := range p.workCh {
			close(ch)
		}
		p.wg.Wait()
	}()
	var polled uint
	for s.q.len() > 0 && !s.finished && s.err == nil {
		if polled++; polled%ctxPollEvents == 0 {
			if err := s.runCtx.Err(); err != nil {
				s.fail(fmt.Errorf("sim: aborted at cycle %d: %w", s.now, err))
				return
			}
		}
		p.await()
		e := s.q.pop()
		s.now = e.time
		if s.now > s.p.MaxCycles {
			s.err = fmt.Errorf("sim: exceeded %d cycles", s.p.MaxCycles)
			return
		}
		if s.sampleEvery > 0 {
			for s.now >= s.nextSample {
				s.emitSample(s.nextSample)
				s.nextSample += s.sampleEvery
			}
		}
		switch e.kind {
		case evStep:
			p.step(e)
		case evChanReq:
			s.handleChanReq(e)
		case evRecvDone:
			s.handleRecvDone(e)
		case evSendDone:
			s.handleSendDone(e)
		case evWake:
			s.handleWake(e)
		case evKick:
			s.dispatch(int(e.pe))
		}
	}
}

// await makes the root event committable. For a step event this means the
// element's recorded lookahead provably carries the commit loop past the
// event: to the context's blocking action, to the batching horizon, to a
// watchdog trip, or to window saturation. Anything short of that extends
// the window and waits for the worker — the only place the commit loop
// ever blocks.
func (p *parEngine) await() {
	s := p.s
	for {
		e := &s.q.a[0]
		if e.kind != evStep {
			return
		}
		c := s.running[e.pe]
		if c == nil || c.ID != int(e.ctx) {
			return // stale event; step discards it
		}
		j := &p.jobs[e.pe]
		if !j.armed || j.c != c {
			return // not under lookahead; step runs it inline
		}
		p.sync(j)
		if j.done || j.err != nil {
			return
		}
		avail := len(j.buf) - j.consumed
		if s.instructions+int64(avail) > s.p.MaxInstructions {
			return // the instruction watchdog trips inside the window
		}
		if avail >= hostBufMax {
			return // saturated: replay the window, then continue inline
		}
		horizon := s.q.secondTime()
		if s.p.NoBatch {
			horizon = e.time
		}
		if avail > 0 && e.time+j.remCycles >= horizon {
			return // the batch defers at the horizon inside the window
		}
		p.extend(int(e.pe))
	}
}

// step commits one step event: the exact bookkeeping System.handleStep
// performs, fed from the recorded entries instead of live execution. When
// the entries run out without a blocking action (saturated window), it
// continues inline with ExecOne — the sequential loop body verbatim.
func (p *parEngine) step(e event) {
	s := p.s
	c := s.running[e.pe]
	if c == nil || c.ID != int(e.ctx) {
		return // stale event after a switch
	}
	j := &p.jobs[e.pe]
	m := s.machines[e.pe]
	mm := &p.mirror[e.pe]
	live := j.armed && j.c == c
	horizon := s.q.peekTime()
	if s.p.NoBatch {
		horizon = s.now // every step reaches the horizon: event-per-step
	}
	for {
		s.instructions++
		if s.instructions > s.p.MaxInstructions {
			s.fail(fmt.Errorf("sim: exceeded %d instructions", s.p.MaxInstructions))
			return
		}
		var out pe.Outcome
		switch {
		case live && j.consumed < len(j.buf):
			ent := &j.buf[j.consumed]
			j.consumed++
			j.remCycles -= int64(ent.cycles)
			if s.rec != nil {
				s.rec.Instr(int(e.pe), c.ID, int(ent.graph), int(ent.pc),
					s.prog.Mnemonic(int(ent.graph), int(ent.pc)), s.now, int(ent.cycles), int(ent.stall))
			}
			if s.sampleEvery > 0 {
				mm.cycles += int64(ent.cycles)
				mm.instrs++
				mm.qsum += int64(ent.queue)
			}
			if j.consumed == len(j.buf) && j.done {
				out = j.final
			} else {
				out = pe.Outcome{Cycles: int(ent.cycles), Queue: int(ent.queue)}
			}
		case live && j.err != nil:
			// The erroring instruction recorded no entry; it charges the
			// instruction count (incremented above) and fails, exactly as
			// the sequential engine's failing ExecOne.
			s.fail(j.err)
			return
		default:
			// Past the recorded window (or never under lookahead): the
			// worker is idle on this job, so the machine is ours; ExecOne
			// fires the Instr hook itself.
			o, err := m.ExecOne(c, s.now)
			if err != nil {
				s.fail(err)
				return
			}
			if s.sampleEvery > 0 {
				mm.cycles += int64(o.Cycles)
				mm.instrs++
				mm.qsum += int64(o.Queue)
			}
			out = o
		}
		t := s.now + int64(out.Cycles)
		switch out.Act {
		case pe.ActNone:
			// Straight-line: fall through to the batch continuation test.
		case pe.ActSend:
			p.disarm(j)
			c.Status = pe.BlockedSend
			s.running[e.pe] = nil
			if s.rec != nil {
				s.rec.EndRun(int(e.pe), c.ID, t, trace.EndBlockedSend)
			}
			s.routeChanOp(t, int(e.pe), opSend, out.Ch, out.Val, c.ID)
			s.scheduleKick(int(e.pe), t)
			return
		case pe.ActRecv:
			p.disarm(j)
			c.Status = pe.BlockedRecv
			s.running[e.pe] = nil
			if s.rec != nil {
				s.rec.EndRun(int(e.pe), c.ID, t, trace.EndBlockedRecv)
			}
			s.routeChanOp(t, int(e.pe), opRecv, out.Ch, 0, c.ID)
			s.scheduleKick(int(e.pe), t)
			return
		case pe.ActTrap:
			// handleTrap re-arms the job itself on the resuming entry
			// points (fork, channel allocation, clock read).
			p.disarm(j)
			s.handleTrap(int(e.pe), c, out.Code, out.Arg, t)
			return
		}
		if t >= horizon {
			s.schedule(t, event{kind: evStep, pe: e.pe, ctx: int32(c.ID)})
			return
		}
		// The next step would be the heap minimum anyway; take it without
		// the round-trip, replaying the bookkeeping the event pop would
		// have done: advance the clock, trip the cycle watchdog, close
		// sampling buckets, and poll for cancellation.
		s.now = t
		if s.now > s.p.MaxCycles {
			s.fail(fmt.Errorf("sim: exceeded %d cycles", s.p.MaxCycles))
			return
		}
		if s.sampleEvery > 0 {
			for s.now >= s.nextSample {
				s.emitSample(s.nextSample)
				s.nextSample += s.sampleEvery
			}
		}
		if s.instrsToPoll--; s.instrsToPoll <= 0 {
			s.instrsToPoll = ctxPollInstrs
			if err := s.runCtx.Err(); err != nil {
				s.fail(fmt.Errorf("sim: aborted at cycle %d: %w", s.now, err))
				return
			}
		}
	}
}

// arm starts lookahead on a freshly dispatched (or resumed) context: reset
// the job and queue the first fill pass. The job cannot be queued here —
// every arm site follows a disarm (or a fresh dispatch) on a synced job.
func (p *parEngine) arm(peID int, c *pe.Context) {
	j := &p.jobs[peID]
	j.c = c
	j.buf = j.buf[:0]
	j.consumed = 0
	j.summed = 0
	j.remCycles = 0
	j.capacity = hostBufInit
	j.done = false
	j.final = pe.Outcome{}
	j.err = nil
	j.armed = true
	p.enqueue(peID)
}

func (p *parEngine) disarm(j *hostJob) {
	j.armed = false
	j.c = nil
}

// extend grows a too-short lookahead window and queues another fill pass:
// the consumed prefix is compacted away, and the pass target grows fourfold
// up to the saturation bound.
func (p *parEngine) extend(peID int) {
	j := &p.jobs[peID]
	if j.consumed > 0 {
		n := copy(j.buf, j.buf[j.consumed:])
		j.buf = j.buf[:n]
		j.summed -= j.consumed
		j.consumed = 0
	}
	if j.capacity < hostBufMax {
		j.capacity *= 4
		if j.capacity > hostBufMax {
			j.capacity = hostBufMax
		}
	}
	p.enqueue(peID)
}

// enqueue hands the job to its owning worker. The channel send publishes
// every commit-side write to the job and its context to the worker.
func (p *parEngine) enqueue(peID int) {
	j := &p.jobs[peID]
	j.queued = true
	p.stats.Epochs++
	p.workCh[p.owner[peID]] <- peID
}

// sync takes the job back from its worker, blocking until the queued fill
// pass has published. The channel receive publishes every worker-side write
// to the job, its context, and its machine to the commit loop. A blocking
// sync is a barrier: the lookahead was not ready when the commit order
// needed it.
func (p *parEngine) sync(j *hostJob) {
	if !j.queued {
		return
	}
	select {
	case <-j.ready:
	default:
		p.stats.Barriers++
		<-j.ready
	}
	j.queued = false
	for i := j.summed; i < len(j.buf); i++ {
		j.remCycles += int64(j.buf[i].cycles)
	}
	j.summed = len(j.buf)
}

// worker drains fill passes for the processing elements this worker owns.
func (p *parEngine) worker(ch chan int) {
	defer p.wg.Done()
	for peID := range ch {
		p.fill(peID)
	}
}

// fill pre-executes the job's context on its private machine until the
// context blocks, an error trips, or the pass target is reached, recording
// one entry per retired instruction. ExecRecorded keeps the recorder
// silent — hooks are not safe off the commit goroutine and need issue
// times the worker does not know — and reports the presence-bit stall the
// commit loop will replay into the Instr hook.
func (p *parEngine) fill(peID int) {
	j := &p.jobs[peID]
	m := p.s.machines[peID]
	c := j.c
	for len(j.buf) < j.capacity {
		graph, pc := c.Graph, c.PC
		out, stall, err := m.ExecRecorded(c)
		if err != nil {
			j.err = err
			break
		}
		j.buf = append(j.buf, hostEntry{
			cycles: int32(out.Cycles),
			queue:  int32(out.Queue),
			stall:  int32(stall),
			graph:  int32(graph),
			pc:     int32(pc),
		})
		if out.Act != pe.ActNone {
			j.done = true
			j.final = out
			break
		}
	}
	j.ready <- struct{}{}
}
