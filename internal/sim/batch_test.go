package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"queuemachine/internal/bintree"
	"queuemachine/internal/compile"
	"queuemachine/internal/exprgen"
	"queuemachine/internal/isa"
	"queuemachine/internal/trace"
	"queuemachine/internal/workloads"
)

// logRecorder serializes every instrumentation hook into one text log, in
// arrival order. Two runs with byte-identical logs made exactly the same
// hook calls with exactly the same arguments — the strongest observable
// equality the recorder interface offers.
type logRecorder struct {
	every int64
	b     strings.Builder
}

func (l *logRecorder) SampleEvery() int64 { return l.every }

func (l *logRecorder) BeginRun(pe, ctx int, at, sw int64, resumed bool) {
	fmt.Fprintf(&l.b, "begin %d %d %d %d %v\n", pe, ctx, at, sw, resumed)
}

func (l *logRecorder) EndRun(pe, ctx int, at int64, reason trace.EndReason) {
	fmt.Fprintf(&l.b, "end %d %d %d %v\n", pe, ctx, at, reason)
}

func (l *logRecorder) Instr(pe, ctx, graph, pc int, op string, at int64, cycles, stall int) {
	fmt.Fprintf(&l.b, "instr %d %d %d %d %s %d %d %d\n", pe, ctx, graph, pc, op, at, cycles, stall)
}

func (l *logRecorder) ContextCreated(ctx, parent, pe int, at int64) {
	fmt.Fprintf(&l.b, "created %d %d %d %d\n", ctx, parent, pe, at)
}

func (l *logRecorder) ContextReady(ctx, pe, depth int, at int64) {
	fmt.Fprintf(&l.b, "ready %d %d %d %d\n", ctx, pe, depth, at)
}

func (l *logRecorder) ContextExited(ctx, pe int, at int64) {
	fmt.Fprintf(&l.b, "exited %d %d %d\n", ctx, pe, at)
}

func (l *logRecorder) MsgOp(pe int, ch int32, op trace.ChanOp, start, end int64, hit, completed bool, sendCtx, recvCtx int) {
	fmt.Fprintf(&l.b, "msgop %d %d %v %d %d %v %v %d %d\n", pe, ch, op, start, end, hit, completed, sendCtx, recvCtx)
}

func (l *logRecorder) RingTransfer(from, to int, start, end, wait int64) {
	fmt.Fprintf(&l.b, "ring %d %d %d %d %d\n", from, to, start, end, wait)
}

func (l *logRecorder) Sample(at int64, s trace.MachineSample) {
	fmt.Fprintf(&l.b, "sample %d %+v\n", at, s)
}

// renderExpr turns a Decorate-labelled exprgen tree into an OCCAM
// expression over its leaf variables.
func renderExpr(n *bintree.Node) string {
	switch n.Arity() {
	case 0:
		return n.Label
	case 1:
		return "(0 - " + renderExpr(n.Left) + ")"
	default:
		return "(" + renderExpr(n.Left) + " " + n.Label + " " + renderExpr(n.Right) + ")"
	}
}

// exprProgram generates a seeded random OCCAM program: a par of workers,
// each evaluating a random expression tree over leaf variables derived from
// the worker index. The result values don't matter — only that batched and
// unbatched simulations of the same program agree on everything.
func exprProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	nodes := 5 + rng.Intn(9) // ≤ 13 nodes → ≤ 7 leaves, all named a..g
	tree, leaves := exprgen.Decorate(exprgen.Random(nodes, rng))
	workers := 2 + rng.Intn(5)

	var b strings.Builder
	fmt.Fprintf(&b, "def nw = %d:\nvar out[nw]:\n", workers)
	b.WriteString("proc eval(value t) =\n")
	// Decorate names leaves "aa", "ab", ... (exprgen.leafName).
	names := make([]string, leaves)
	for i := range names {
		names[i] = "a" + string(rune('a'+i))
	}
	fmt.Fprintf(&b, "  var %s:\n", strings.Join(names, ", "))
	b.WriteString("  seq\n")
	for i, name := range names {
		fmt.Fprintf(&b, "    %s := ((t + %d) \\ 9) - 4\n", name, i+rng.Intn(5))
	}
	fmt.Fprintf(&b, "    out[t] := %s\n", renderExpr(tree))
	b.WriteString("seq\n  par t = [0 for nw]\n    eval(t)\n")
	return b.String()
}

// runMode executes obj once, batched or not, with a full-log recorder and a
// Chrome recorder attached, and returns the result plus both serializations.
func runMode(t *testing.T, obj *isa.Object, numPEs int, noBatch bool) (*Result, string, []byte) {
	t.Helper()
	params := DefaultParams()
	params.NoBatch = noBatch
	sys, err := New(obj, numPEs, params)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	logRec := &logRecorder{every: 64}
	chrome := trace.NewChrome(64)
	sys.SetRecorder(trace.Multi(chrome, logRec))
	res, err := sys.Run()
	if err != nil {
		t.Fatalf("Run (noBatch=%v): %v", noBatch, err)
	}
	var buf bytes.Buffer
	if err := chrome.Write(&buf); err != nil {
		t.Fatalf("Chrome.Write: %v", err)
	}
	return res, logRec.b.String(), buf.Bytes()
}

// checkBatchEquivalence asserts the straight-line batching property: with
// batching on and off, a program produces an identical Result, an identical
// hook-call log, and a byte-identical Chrome trace on every PE count.
func checkBatchEquivalence(t *testing.T, name string, obj *isa.Object, peCounts []int) {
	t.Helper()
	for _, pes := range peCounts {
		batched, batchedLog, batchedTrace := runMode(t, obj, pes, false)
		plain, plainLog, plainTrace := runMode(t, obj, pes, true)
		if !reflect.DeepEqual(batched, plain) {
			t.Errorf("%s on %d PEs: batched Result differs from event-per-step Result\nbatched: %+v\nplain:   %+v",
				name, pes, batched, plain)
		}
		if batchedLog != plainLog {
			t.Errorf("%s on %d PEs: recorder hook streams differ (batched %d bytes, plain %d bytes): %s",
				name, pes, len(batchedLog), len(plainLog), firstLogDiff(batchedLog, plainLog))
		}
		if !bytes.Equal(batchedTrace, plainTrace) {
			t.Errorf("%s on %d PEs: Chrome traces differ (%d vs %d bytes)",
				name, pes, len(batchedTrace), len(plainTrace))
		}
	}
}

// firstLogDiff reports the first differing line of two hook logs.
func firstLogDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line count %d vs %d", len(al), len(bl))
}

// TestBatchEquivalenceWorkloads drives the property over the Chapter 6
// benchmark programs at small sizes.
func TestBatchEquivalenceWorkloads(t *testing.T) {
	cases := []workloads.Workload{
		workloads.MatMul(3),
		workloads.FFT(2),
		workloads.Cholesky(3),
		workloads.Congruence(3),
		workloads.BinaryRecursiveSum(6),
		workloads.IterativeSum(6),
	}
	for _, w := range cases {
		art, err := compile.Compile(w.Source, compile.Options{})
		if err != nil {
			t.Fatalf("%s: Compile: %v", w.Name, err)
		}
		checkBatchEquivalence(t, w.Name, art.Object, []int{1, 2, 3, 8})
	}
}

// TestBatchEquivalenceRandomPrograms drives the property over seeded random
// expression programs with varying fan-out.
func TestBatchEquivalenceRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		src := exprProgram(seed)
		art, err := compile.Compile(src, compile.Options{})
		if err != nil {
			t.Fatalf("seed %d: Compile: %v\n%s", seed, err, src)
		}
		checkBatchEquivalence(t, fmt.Sprintf("expr-seed-%d", seed), art.Object, []int{1, 2, 5, 8})
	}
}

// TestBatchEquivalenceAssembly covers hand-written assembly patterns that
// stress blocking shapes the compiler doesn't emit: tight rendezvous
// ping-pong and real-time waits.
func TestBatchEquivalenceAssembly(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		pes  []int
	}{
		{"single-context", singleContext, []int{1, 2}},
		{"producer-consumer", producerConsumer, []int{1, 2, 4}},
		{"fan-out", fanOut(4, 10), []int{1, 2, 4, 8}},
		{"wait", waitProgram, []int{1, 2}},
	} {
		checkBatchEquivalence(t, tc.name, assemble(t, tc.src), tc.pes)
	}
}

// TestKeepDataOptOut: with KeepData off the result omits the data-segment
// copy and is otherwise unchanged.
func TestKeepDataOptOut(t *testing.T) {
	obj := assemble(t, singleContext)
	params := DefaultParams()
	withData, err := Run(obj, 1, params)
	if err != nil {
		t.Fatal(err)
	}
	params.KeepData = false
	without, err := Run(obj, 1, params)
	if err != nil {
		t.Fatal(err)
	}
	if withData.Data == nil {
		t.Error("KeepData=true run has no Data")
	}
	if without.Data != nil {
		t.Errorf("KeepData=false run still copies Data (%d words)", len(without.Data))
	}
	without.Data = withData.Data
	if !reflect.DeepEqual(withData, without) {
		t.Errorf("KeepData changed more than Data:\nwith:    %+v\nwithout: %+v", withData, without)
	}
}
